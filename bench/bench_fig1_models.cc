// Figure 1: the models of the Example 1.1 data. Enumerates the minimal
// models of the espionage database (two 4-chains: Delannoy(4,4) = 321
// sorts) and of growing two-observer databases, measuring enumeration
// throughput.

#include <benchmark/benchmark.h>

#include "core/minimal_models.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace iodb {
namespace {

void BM_Fig1_EspionageModels(benchmark::State& state) {
  EspionageScenario scenario = MakeEspionageScenario();
  Result<NormDb> norm = Normalize(scenario.db);
  IODB_CHECK(norm.ok());
  long long count = 0;
  for (auto _ : state) {
    count = CountMinimalModels(norm.value());
    benchmark::DoNotOptimize(count);
  }
  state.counters["models"] = static_cast<double>(count);  // 321 expected
}
BENCHMARK(BM_Fig1_EspionageModels)->Unit(benchmark::kMillisecond);

void BM_Fig1_TwoObserverModels(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  Rng rng(17);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = chain_length;
  params.num_predicates = 2;
  params.le_probability = 0.0;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  long long count = 0;
  for (auto _ : state) {
    count = CountMinimalModels(norm.value());
    benchmark::DoNotOptimize(count);
  }
  state.counters["models"] = static_cast<double>(count);
}
BENCHMARK(BM_Fig1_TwoObserverModels)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
