// Figure 1: the models of the Example 1.1 data. Enumerates the minimal
// models of the espionage database (two 4-chains: Delannoy(4,4) = 321
// sorts) and of growing two-observer databases, measuring enumeration
// throughput.

#include <benchmark/benchmark.h>

#include "core/entail_bruteforce.h"
#include "core/minimal_models.h"
#include "workload/generators.h"
#include "workload/scenarios.h"

namespace iodb {
namespace {

void BM_Fig1_EspionageModels(benchmark::State& state) {
  EspionageScenario scenario = MakeEspionageScenario();
  Result<NormDb> norm = Normalize(scenario.db);
  IODB_CHECK(norm.ok());
  long long count = 0;
  for (auto _ : state) {
    count = CountMinimalModels(norm.value());
    benchmark::DoNotOptimize(count);
  }
  state.counters["models"] = static_cast<double>(count);  // 321 expected
}
BENCHMARK(BM_Fig1_EspionageModels)->Unit(benchmark::kMillisecond);

void BM_Fig1_TwoObserverModels(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  Rng rng(17);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = chain_length;
  params.num_predicates = 2;
  params.le_probability = 0.0;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  long long count = 0;
  for (auto _ : state) {
    count = CountMinimalModels(norm.value());
    benchmark::DoNotOptimize(count);
  }
  state.counters["models"] = static_cast<double>(count);
}
BENCHMARK(BM_Fig1_TwoObserverModels)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMillisecond);

// Entailment over the same enumeration: the incremental evaluation core
// (in-place ModelBuilder + FactIndex + compiled matchers) against the
// legacy rebuild-per-model reference path, on a rarely-satisfied query
// that forces deep countermodel search across the whole model space.

void RunTwoObserverEntail(benchmark::State& state, bool incremental) {
  const int chain_length = static_cast<int>(state.range(0));
  Rng rng(17);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = chain_length;
  params.num_predicates = 2;
  params.le_probability = 0.0;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  // P0 then P1 then P0 in strict succession: satisfied by few sorts, so
  // pruning rarely cuts and the enumeration mostly runs to full depth.
  Rng qrng(5);
  Query query = RandomSequentialQuery(3, 2, 0.9, 0.0, vocab, qrng);
  Result<NormQuery> norm_query = NormalizeQuery(query);
  IODB_CHECK(norm_query.ok());
  BruteForceOptions options;
  options.use_incremental = incremental;
  long long models = 0;
  for (auto _ : state) {
    BruteForceOutcome outcome =
        EntailBruteForce(norm.value(), norm_query.value(), options);
    models = outcome.models_enumerated;
    benchmark::DoNotOptimize(outcome.entailed);
  }
  state.counters["models"] = static_cast<double>(models);
}

void BM_Fig1_EntailIncremental(benchmark::State& state) {
  RunTwoObserverEntail(state, /*incremental=*/true);
}
BENCHMARK(BM_Fig1_EntailIncremental)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Fig1_EntailRebuild(benchmark::State& state) {
  RunTwoObserverEntail(state, /*incremental=*/false);
}
BENCHMARK(BM_Fig1_EntailRebuild)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
