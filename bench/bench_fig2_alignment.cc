// Figure 2 / Example 1.2: gene alignment as a monadic indefinite order
// database. The alignment-consistency question ("does an alignment
// satisfying the integrity constraints exist?") is the complement of an
// entailment, answered by the Theorem 5.3 engine on a width-2 database.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "workload/generators.h"

namespace iodb {
namespace {

const std::vector<std::pair<char, char>>& MismatchPairs() {
  static const std::vector<std::pair<char, char>> kPairs = {
      {'A', 'G'}, {'A', 'C'}, {'A', 'T'},
      {'C', 'G'}, {'C', 'T'}, {'G', 'T'}};
  return kPairs;
}

void BM_Fig2_AlignmentConsistency(benchmark::State& state) {
  const int length = static_cast<int>(state.range(0));
  Rng rng(23);
  auto vocab = std::make_shared<Vocabulary>();
  std::string s1 = RandomDnaSequence(length, rng);
  std::string s2 = RandomDnaSequence(length, rng);
  Database db = AlignmentDb(s1, s2, vocab);
  Query violation = AlignmentViolationQuery(MismatchPairs(), vocab);
  for (auto _ : state) {
    Result<EntailResult> result = Entails(db, violation);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.SetComplexityN(length);
}
BENCHMARK(BM_Fig2_AlignmentConsistency)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Complexity();

}  // namespace
}  // namespace iodb
