// Figures 3 and 4: the ternary-disjunction gadget of Theorem 3.2, in
// both layouts (disconnected components vs. the width-two chains of
// Figure 4). Measures reduction construction cost and end-to-end
// entailment on small instances, cross-checking against DPLL inside the
// measurement loop's setup.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "logic/sat_solver.h"
#include "reductions/sat_to_entailment.h"

namespace iodb {
namespace {

void BM_Fig3_GadgetConstruction(benchmark::State& state) {
  const int num_clauses = static_cast<int>(state.range(0));
  Rng rng(31);
  CnfFormula cnf = RandomMonotone3Sat(6, num_clauses, rng);
  for (auto _ : state) {
    auto vocab = std::make_shared<Vocabulary>();
    Result<SatReduction> reduction = MonotoneSatToEntailment(cnf, vocab);
    IODB_CHECK(reduction.ok());
    benchmark::DoNotOptimize(reduction.value().db.SizeAtoms());
  }
  state.SetComplexityN(num_clauses);
}
BENCHMARK(BM_Fig3_GadgetConstruction)
    ->RangeMultiplier(2)
    ->Range(4, 128)
    ->Complexity(benchmark::oN);

void BM_Fig4_WidthTwoLayoutEntailment(benchmark::State& state) {
  const int num_clauses = static_cast<int>(state.range(0));
  Rng rng(37);
  CnfFormula cnf = RandomMonotone3Sat(4, num_clauses, rng);
  SatSolver solver;
  bool satisfiable = solver.Solve(cnf).has_value();
  auto vocab = std::make_shared<Vocabulary>();
  Result<SatReduction> reduction =
      MonotoneSatToEntailment(cnf, vocab, /*bounded_width=*/true);
  IODB_CHECK(reduction.ok());
  for (auto _ : state) {
    Result<EntailResult> result =
        Entails(reduction.value().db, reduction.value().query);
    IODB_CHECK(result.ok());
    IODB_CHECK(result.value().entailed == !satisfiable);
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.counters["db_width"] = 2;
}
BENCHMARK(BM_Fig4_WidthTwoLayoutEntailment)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
