// Figure 5: the labelled-dag view of conjunctive monadic queries and
// their path decomposition (Lemma 4.1). Measures path enumeration over
// random query dags; the path count grows exponentially with query
// width, which is exactly why data complexity (fixed query) is cheap
// while combined complexity is not.

#include <benchmark/benchmark.h>

#include "core/flexiword.h"
#include "workload/generators.h"

namespace iodb {
namespace {

void BM_Fig5_PathEnumeration(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  Rng rng(41);
  auto vocab = std::make_shared<Vocabulary>();
  Query query = RandomConjunctiveMonadicQuery(num_vars, 3, 0.25, 0.4, 0.2,
                                              vocab, rng);
  Result<NormQuery> norm = NormalizeQuery(query);
  IODB_CHECK(norm.ok());
  const NormConjunct& conjunct = norm.value().disjuncts[0];
  long long paths = 0;
  for (auto _ : state) {
    paths = 0;
    ForEachPath(conjunct.dag, conjunct.labels, [&](const FlexiWord&) {
      ++paths;
      return true;
    });
    benchmark::DoNotOptimize(paths);
  }
  state.counters["paths"] = static_cast<double>(paths);
  state.counters["width"] = conjunct.Width();
}
BENCHMARK(BM_Fig5_PathEnumeration)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace iodb
