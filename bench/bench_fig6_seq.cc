// Figure 6: the SEQ algorithm. The paper claims O(|D| · |p| · |Pred|);
// the three series sweep each factor with the others held fixed. The
// measured shape should be (near-)linear in every sweep.

#include <benchmark/benchmark.h>

#include "core/seq.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct SeqInstance {
  NormDb db;
  FlexiWord pattern;
};

SeqInstance Make(int db_scale, int pattern_len, int num_preds) {
  Rng rng(47);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 3;
  params.chain_length = db_scale / 3 + 1;
  params.num_predicates = num_preds;
  params.label_probability = 0.5;
  params.le_probability = 0.3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query =
      RandomSequentialQuery(pattern_len, num_preds, 0.4, 0.3, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  return {std::move(norm.value()),
          SequentialPattern(nq.value().disjuncts[0])};
}

void BM_Fig6_Seq_DbSweep(benchmark::State& state) {
  SeqInstance inst = Make(static_cast<int>(state.range(0)), 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeqEntails(inst.db, inst.pattern));
  }
  state.SetComplexityN(inst.db.num_points());
}
BENCHMARK(BM_Fig6_Seq_DbSweep)
    ->RangeMultiplier(2)
    ->Range(32, 4096)
    ->Complexity(benchmark::oN);

void BM_Fig6_Seq_PatternSweep(benchmark::State& state) {
  SeqInstance inst = Make(512, static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeqEntails(inst.db, inst.pattern));
  }
  state.SetComplexityN(inst.pattern.size());
}
BENCHMARK(BM_Fig6_Seq_PatternSweep)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_Fig6_Seq_PredicateSweep(benchmark::State& state) {
  SeqInstance inst = Make(512, 8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeqEntails(inst.db, inst.pattern));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Fig6_Seq_PredicateSweep)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

}  // namespace
}  // namespace iodb
