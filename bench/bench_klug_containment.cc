// Proposition 2.10 / Klug: containment of conjunctive queries with
// inequalities. Order-free containment (NP, homomorphism) is compared
// with order-enriched containment through the entailment reduction (Π₂ᵖ
// in general); the shape to observe is the cost gap as order atoms enter.

#include <benchmark/benchmark.h>

#include "containment/containment.h"
#include "util/random.h"

namespace iodb {
namespace {

RelationalQuery RandomOrderFreeQuery(int num_vars, int num_atoms,
                                     const std::string& prefix, Rng& rng) {
  QueryConjunct body;
  for (int i = 0; i < num_vars; ++i) body.Exists(prefix + std::to_string(i));
  for (int a = 0; a < num_atoms; ++a) {
    body.Atom("R", {prefix + std::to_string(rng.UniformInt(0, num_vars - 1)),
                    prefix + std::to_string(rng.UniformInt(0, num_vars - 1))});
  }
  return {std::move(body), {}};
}

RelationalQuery RandomOrderQuery(int num_vars, const std::string& prefix,
                                 Rng& rng) {
  QueryConjunct body;
  for (int i = 0; i < num_vars; ++i) {
    std::string v = prefix + std::to_string(i);
    body.Exists(v);
    body.Atom("A", {v});
  }
  for (int i = 0; i < num_vars; ++i) {
    for (int j = i + 1; j < num_vars; ++j) {
      if (rng.Bernoulli(0.4)) {
        body.Order(prefix + std::to_string(i),
                   rng.Bernoulli(0.5) ? OrderRel::kLt : OrderRel::kLe,
                   prefix + std::to_string(j));
      }
    }
  }
  return {std::move(body), {}};
}

void BM_Klug_OrderFreeHomomorphism(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  Rng rng(83);
  RelationalQuery q1 = RandomOrderFreeQuery(num_vars, num_vars + 1, "x", rng);
  RelationalQuery q2 = RandomOrderFreeQuery(num_vars, num_vars, "y", rng);
  for (auto _ : state) {
    Result<bool> result = HomomorphismContained(q1, q2);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value());
  }
}
BENCHMARK(BM_Klug_OrderFreeHomomorphism)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_Klug_OrderFreeViaReduction(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  Rng rng(83);
  RelationalQuery q1 = RandomOrderFreeQuery(num_vars, num_vars + 1, "x", rng);
  RelationalQuery q2 = RandomOrderFreeQuery(num_vars, num_vars, "y", rng);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("R", {Sort::kObject, Sort::kObject});
  for (auto _ : state) {
    Result<ContainmentResult> result =
        Contained(q1, q2, vocab, OrderSemantics::kFinite);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().contained);
  }
}
BENCHMARK(BM_Klug_OrderFreeViaReduction)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMicrosecond);

void BM_Klug_WithOrderAtoms(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  Rng rng(89);
  RelationalQuery q1 = RandomOrderQuery(num_vars, "x", rng);
  RelationalQuery q2 = RandomOrderQuery(std::max(2, num_vars - 1), "y", rng);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("A", {Sort::kOrder});
  for (auto _ : state) {
    Result<ContainmentResult> result =
        Contained(q1, q2, vocab, OrderSemantics::kFinite);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().contained);
  }
}
BENCHMARK(BM_Klug_WithOrderAtoms)
    ->DenseRange(2, 6)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace iodb
