// Planner A/B: the same workloads evaluated with and without the
// cost-based planner (stats::PlannerFor) injected into Prepare().
//
// Unlike the other bench files, the A/B switch is an environment
// variable so both arms publish under the SAME benchmark names:
//
//   IODB_COSTING=off  -> EntailOptions::planner left null (baseline)
//   IODB_COSTING=on   -> planner = stats::PlannerFor(db)   (default)
//
// Run the binary twice through tools/run_benches.sh and diff the two
// aggregates with tools/bench_compare.py --filter BM_PlannerAB
// --min-improvement 16.7 (a 1.2x speedup is a -16.7% time delta).
// The CI bench-smoke job does exactly that.
//
// Two families, each exercising one of the planner's two levers:
//
//  * ScheduleSkew — conjunct-schedule win. A labelled chain where the
//    default variable order binds two unselective Common variables
//    before discovering that the Rare&Exclusive variable has no
//    candidates (the labels never co-occur). The cost model sees the
//    empty pair in the co-occurrence sketch and schedules that
//    variable first, turning an O(N^2) match failure into O(1). The
//    engine is pinned to brute force on both arms so the delta is the
//    schedule alone.
//
//  * EngineRoute — engine-route win. A strict total chain (exactly one
//    minimal model) with a non-entailed multi-disjunct monadic query
//    under EngineKind::kAuto: the default classification picks the
//    disjunctive search engine, which pays the full countermodel
//    certification over the chain, while the cost model routes to
//    brute force, which refutes both disjuncts against the single
//    minimal model directly.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "core/engine.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "stats/stats.h"

namespace iodb {
namespace {

bool CostingOn() {
  const char* env = std::getenv("IODB_COSTING");
  return env == nullptr || std::string(env) != "off";
}

Database MustParseDb(const std::string& text, const VocabularyPtr& vocab) {
  Result<Database> parsed = ParseDatabase(text, vocab);
  IODB_CHECK(parsed.ok());
  return std::move(parsed.value());
}

Query MustParseQuery(const std::string& text, const VocabularyPtr& vocab) {
  Result<Query> parsed = ParseQuery(text, vocab);
  IODB_CHECK(parsed.ok());
  return std::move(parsed.value());
}

// A strict chain c0 < c1 < ... < c{n-1}, every point Common, with Rare
// on the bottom and Exclusive on the top — so Rare and Exclusive never
// co-occur and the pair sketch records an exact zero for them.
std::string SkewedChainText(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "Common(c" + std::to_string(i) + ")\n";
  }
  text += "Rare(c0)\n";
  text += "Exclusive(c" + std::to_string(n - 1) + ")\n";
  for (int i = 0; i + 1 < n; ++i) {
    text += "c" + std::to_string(i) + " < c" + std::to_string(i + 1) + "\n";
  }
  return text;
}

void BM_PlannerAB_ScheduleSkew(benchmark::State& state) {
  VocabularyPtr vocab = std::make_shared<Vocabulary>();
  Database db = MustParseDb(SkewedChainText(static_cast<int>(state.range(0))),
                            vocab);
  Query query = MustParseQuery(
      "exists t1 t2 t3: Common(t1) & Common(t2) & Rare(t3) & Exclusive(t3)",
      vocab);

  EntailOptions options;
  // Pin the engine so both arms pay the same match loop; only the
  // variable schedule differs.
  options.engine = EngineKind::kBruteForce;
  if (CostingOn()) options.planner = stats::PlannerFor(db);

  PreparedQuery plan = MustPrepare(vocab, query, options);
  if (CostingOn()) {
    // The benchmark is only meaningful while the planner actually picks
    // a non-default schedule; fail loudly if it ever stops doing so.
    IODB_CHECK(plan.PlanChoiceSummary().find("sched=1/1") !=
               std::string::npos);
  }

  for (auto _ : state) {
    Result<EntailResult> result = plan.Evaluate(db);
    IODB_CHECK(result.ok());
    IODB_CHECK(!result.value().entailed);  // Rare & Exclusive never meet.
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_PlannerAB_ScheduleSkew)->Arg(64)->Arg(256);

// A strict total chain of P points with a single Q fact: exactly one
// minimal model, and any disjunct needing two Q points must fail.
std::string TotalChainText(int n) {
  std::string text;
  for (int i = 0; i < n; ++i) {
    text += "P(c" + std::to_string(i) + ")\n";
  }
  text += "Q(c0)\n";
  for (int i = 0; i + 1 < n; ++i) {
    text += "c" + std::to_string(i) + " < c" + std::to_string(i + 1) + "\n";
  }
  return text;
}

void BM_PlannerAB_EngineRoute(benchmark::State& state) {
  VocabularyPtr vocab = std::make_shared<Vocabulary>();
  Database db = MustParseDb(TotalChainText(static_cast<int>(state.range(0))),
                            vocab);
  Query query = MustParseQuery(
      "exists t1 t2: Q(t1) & t1 < t2 & Q(t2) | "
      "exists t1 t2: Q(t1) & t2 < t1 & Q(t2)", vocab);

  EntailOptions options;  // EngineKind::kAuto — the route is the lever.
  if (CostingOn()) options.planner = stats::PlannerFor(db);

  PreparedQuery plan = MustPrepare(vocab, query, options);
  if (CostingOn()) {
    IODB_CHECK(plan.PlanChoiceSummary().find("engine=brute-force") !=
               std::string::npos);
  }

  for (auto _ : state) {
    Result<EntailResult> result = plan.Evaluate(db);
    IODB_CHECK(result.ok());
    IODB_CHECK(!result.value().entailed);  // only one Q point exists
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_PlannerAB_EngineRoute)->Arg(128)->Arg(256);

}  // namespace
}  // namespace iodb
