// The point algebra (Sections 1 and 7 context): deriving the entailed
// relation between two order constants is polynomial — in sharp contrast
// with positive existential queries. Sweeps database size; each relation
// query is a constant number of linear-time consistency probes.

#include <benchmark/benchmark.h>

#include "core/intervals.h"
#include "core/point_algebra.h"
#include "workload/generators.h"

namespace iodb {
namespace {

Database MakeDb(int num_chains, int chain_length, double neq_probability,
                Rng& rng) {
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = num_chains;
  params.chain_length = chain_length;
  params.num_predicates = 1;
  params.label_probability = 0.0;
  Database db = RandomMonadicDb(params, vocab, rng);
  // Sprinkle inequalities across chains.
  for (int c = 0; c + 1 < num_chains; ++c) {
    for (int i = 0; i < chain_length; ++i) {
      if (rng.Bernoulli(neq_probability)) {
        db.AddNotEqual("c" + std::to_string(c) + "_" + std::to_string(i),
                       "c" + std::to_string(c + 1) + "_" +
                           std::to_string(i));
      }
    }
  }
  return db;
}

void BM_PointAlgebra_RelationQueries(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  Rng rng(131);
  Database db = MakeDb(3, chain_length, 0.2, rng);
  for (auto _ : state) {
    Result<PointRelation> r =
        RelationBetween(db, "c0_0", "c2_" + std::to_string(chain_length - 1));
    IODB_CHECK(r.ok());
    benchmark::DoNotOptimize(r.value().can_lt);
  }
  state.SetComplexityN(3 * chain_length);
}
BENCHMARK(BM_PointAlgebra_RelationQueries)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity(benchmark::oN);

void BM_PointAlgebra_AllenPossibleRelations(benchmark::State& state) {
  const int num_intervals = static_cast<int>(state.range(0));
  Rng rng(137);
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  std::vector<Interval> intervals;
  for (int i = 0; i < num_intervals; ++i) {
    Interval iv{"s" + std::to_string(i), "e" + std::to_string(i)};
    DeclareInterval(db, iv);
    intervals.push_back(iv);
  }
  // Chain them loosely: i meets-or-overlaps i+1 via a shared witness.
  for (int i = 0; i + 1 < num_intervals; ++i) {
    db.AddOrder(intervals[i].start, OrderRel::kLt, intervals[i + 1].start);
    db.AddOrder(intervals[i].end, OrderRel::kLe, intervals[i + 1].end);
  }
  for (auto _ : state) {
    Result<std::vector<AllenRelation>> possible =
        PossibleRelations(db, intervals.front(), intervals.back());
    IODB_CHECK(possible.ok());
    benchmark::DoNotOptimize(possible.value().size());
  }
  state.SetComplexityN(num_intervals);
}
BENCHMARK(BM_PointAlgebra_AllenPossibleRelations)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

}  // namespace
}  // namespace iodb
