// Prepared vs. unprepared repeated evaluation: the compile-once /
// evaluate-many payoff of the core/prepare.h pipeline.
//
// Each pair of benchmarks runs the same (db, query) workload two ways:
// `Entails()` in a loop re-compiles the query on every call, while the
// prepared variant calls `Prepare()` once and then only
// `PreparedQuery::Evaluate()`. Both sides share the database-side
// normalization memoization (Database::NormView and the per-plan
// transformed-db cache), so the gap isolates query-compilation cost —
// constant elimination, inequality rewriting, normalization, the
// rational-closure transform, the object/order split. The batch pair
// additionally measures `EvaluateBatch` across many databases.

#include <benchmark/benchmark.h>

#include <vector>

#include "core/engine.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "util/random.h"
#include "workload/scenarios.h"

namespace iodb {
namespace {

// --- Standing alert: compile-heavy query, small hot database ---------------
// A monitoring-style standing query whose three "!=" atoms blow up into
// 2^3 disjuncts during compilation (Section 7); the database being
// re-checked is small. This is the classic prepared-statement shape:
// compilation dwarfs a single evaluation.

struct AlertFixture {
  VocabularyPtr vocab = std::make_shared<Vocabulary>();
  Database db;
  Query query;

  AlertFixture()
      : db(MustParseDb("P(u)\nP(v)\nP(w)\nu < v\nv < w")),
        query(MustParseQuery(
            "exists t1 t2 t3: P(t1) & P(t2) & P(t3) & "
            "t1 != t2 & t1 != t3 & t2 != t3")) {}

  Database MustParseDb(const char* text) {
    Result<Database> parsed = ParseDatabase(text, vocab);
    IODB_CHECK(parsed.ok());
    return std::move(parsed.value());
  }
  Query MustParseQuery(const char* text) {
    Result<Query> parsed = ParseQuery(text, vocab);
    IODB_CHECK(parsed.ok());
    return std::move(parsed.value());
  }
};

void BM_AlertUnprepared(benchmark::State& state) {
  AlertFixture fixture;
  for (auto _ : state) {
    Result<EntailResult> result = Entails(fixture.db, fixture.query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_AlertUnprepared);

void BM_AlertPrepared(benchmark::State& state) {
  AlertFixture fixture;
  PreparedQuery plan = MustPrepare(fixture.vocab, fixture.query);
  for (auto _ : state) {
    Result<EntailResult> result = plan.Evaluate(fixture.db);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_AlertPrepared);

// --- Espionage (Example 1.1): constants + rational semantics ---------------
// Five disjuncts with constants under the dense-order reading: every
// unprepared call pays constant shifting, normalization of all disjuncts
// and the Corollary 2.6 closure.

void BM_EspionageUnprepared(benchmark::State& state) {
  EspionageScenario scenario = MakeEspionageScenario();
  EntailOptions dense;
  dense.semantics = OrderSemantics::kRational;
  for (auto _ : state) {
    Result<EntailResult> result =
        Entails(scenario.db, scenario.twice_either, dense);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_EspionageUnprepared);

void BM_EspionagePrepared(benchmark::State& state) {
  EspionageScenario scenario = MakeEspionageScenario();
  EntailOptions dense;
  dense.semantics = OrderSemantics::kRational;
  PreparedQuery plan = MustPrepare(scenario.vocab, scenario.twice_either,
                                   dense);
  for (auto _ : state) {
    Result<EntailResult> result = plan.Evaluate(scenario.db);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_EspionagePrepared);

// --- Scheduling: constant-free monadic disjunct ----------------------------
// The forbidden-pattern check against a partially ordered plan; the
// prepared side reduces to the bounded-width engine run alone.

void BM_SchedulingUnprepared(benchmark::State& state) {
  Rng rng(7);
  SchedulingScenario scenario =
      MakeSchedulingScenario(static_cast<int>(state.range(0)), 4, rng);
  for (auto _ : state) {
    Result<EntailResult> result = Entails(scenario.db, scenario.forbidden);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_SchedulingUnprepared)->Arg(2)->Arg(4);

void BM_SchedulingPrepared(benchmark::State& state) {
  Rng rng(7);
  SchedulingScenario scenario =
      MakeSchedulingScenario(static_cast<int>(state.range(0)), 4, rng);
  PreparedQuery plan = PrepareForbiddenPlan(scenario);
  for (auto _ : state) {
    Result<EntailResult> result = plan.Evaluate(scenario.db);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_SchedulingPrepared)->Arg(2)->Arg(4);

// --- Batch: one plan, many databases ---------------------------------------
// A fleet of plan variants checked against the same compiled forbidden
// pattern: the EvaluateBatch seam.

std::vector<SchedulingScenario> MakeFleet(int n) {
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<SchedulingScenario> fleet;
  fleet.reserve(n);
  for (int i = 0; i < n; ++i) {
    Rng rng(100 + i);
    fleet.push_back(MakeSchedulingScenario(2, 4, rng, vocab));
  }
  return fleet;
}

void BM_BatchUnprepared(benchmark::State& state) {
  std::vector<SchedulingScenario> fleet =
      MakeFleet(static_cast<int>(state.range(0)));
  // All fleet members share the forbidden pattern; take it from the first.
  const Query& forbidden = fleet[0].forbidden;
  for (auto _ : state) {
    for (const SchedulingScenario& scenario : fleet) {
      Result<EntailResult> result = Entails(scenario.db, forbidden);
      IODB_CHECK(result.ok());
      benchmark::DoNotOptimize(result.value().entailed);
    }
  }
}
BENCHMARK(BM_BatchUnprepared)->Arg(16);

void BM_BatchPrepared(benchmark::State& state) {
  std::vector<SchedulingScenario> fleet =
      MakeFleet(static_cast<int>(state.range(0)));
  PreparedQuery plan = PrepareForbiddenPlan(fleet[0]);
  std::vector<const Database*> dbs;
  dbs.reserve(fleet.size());
  for (const SchedulingScenario& scenario : fleet) {
    dbs.push_back(&scenario.db);
  }
  for (auto _ : state) {
    std::vector<Result<EntailResult>> results = plan.EvaluateBatch(dbs);
    for (const Result<EntailResult>& result : results) {
      IODB_CHECK(result.ok());
      benchmark::DoNotOptimize(result.value().entailed);
    }
  }
}
BENCHMARK(BM_BatchPrepared)->Arg(16);

// --- Parallel batch: the scheduling fleet sharded across workers -----------
// Same workload as BM_BatchPrepared with a larger fleet of heavier plan
// variants, evaluated through ParallelEvaluateBatch. Args: (fleet size,
// workers). Workers=1 is the serial baseline through the same code path;
// scaling tops out at the machine's core count (this is a per-database
// sharding, so a 16-db fleet feeds at most 16 workers).

void BM_BatchParallel(benchmark::State& state) {
  auto vocab = std::make_shared<Vocabulary>();
  std::vector<SchedulingScenario> fleet;
  const int fleet_size = static_cast<int>(state.range(0));
  fleet.reserve(fleet_size);
  for (int i = 0; i < fleet_size; ++i) {
    Rng rng(100 + i);
    fleet.push_back(MakeSchedulingScenario(3, 5, rng, vocab));
  }
  PreparedQuery plan = PrepareForbiddenPlan(fleet[0]);
  std::vector<const Database*> dbs;
  dbs.reserve(fleet.size());
  for (const SchedulingScenario& scenario : fleet) {
    dbs.push_back(&scenario.db);
  }
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    std::vector<Result<EntailResult>> results =
        plan.ParallelEvaluateBatch(dbs, workers);
    for (const Result<EntailResult>& result : results) {
      IODB_CHECK(result.ok());
      benchmark::DoNotOptimize(result.value().entailed);
    }
  }
}
BENCHMARK(BM_BatchParallel)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->UseRealTime();

}  // namespace
}  // namespace iodb
