// The reachability index against the closure it replaces: build cost,
// probe throughput, and incremental append cost on the three dag shapes
// that bracket the index's behaviour — deep chains (one exact interval
// per vertex, the best case), wide antichains (no edges, trivial lists),
// and random layered dags (cross edges force interval merging and, past
// the cap, approximate intervals with fallback walks).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <span>
#include <vector>

#include "graph/digraph.h"
#include "graph/reachability_index.h"
#include "graph/topo.h"
#include "util/random.h"

namespace iodb {
namespace {

Digraph DeepChain(int n) {
  Digraph g(n);
  for (int v = 0; v + 1 < n; ++v) {
    g.AddEdge(v, v + 1, (v % 2 == 0) ? OrderRel::kLt : OrderRel::kLe);
  }
  return g;
}

Digraph WideAntichain(int n) { return Digraph(n); }

// Layered random dag: n vertices in layers of 8, each vertex drawing up
// to three parents from the previous two layers. Edges go strictly
// forward in vertex order, so the graph is acyclic by construction.
Digraph RandomLayeredDag(int n, uint64_t seed) {
  Rng rng(seed);
  Digraph g(n);
  const int kLayer = 8;
  for (int v = kLayer; v < n; ++v) {
    const int lo = ((v / kLayer) - 2 > 0 ? (v / kLayer) - 2 : 0) * kLayer;
    const int parents = rng.UniformInt(1, 3);
    for (int i = 0; i < parents; ++i) {
      const int u = rng.UniformInt(lo, (v / kLayer) * kLayer - 1);
      g.AddEdge(u, v, rng.UniformInt(0, 2) == 0 ? OrderRel::kLe
                                                : OrderRel::kLt);
    }
  }
  return g;
}

Digraph MakeShape(int shape, int n) {
  switch (shape) {
    case 0:
      return DeepChain(n);
    case 1:
      return WideAntichain(n);
    default:
      return RandomLayeredDag(n, 97);
  }
}

const char* ShapeName(int shape) {
  switch (shape) {
    case 0:
      return "chain";
    case 1:
      return "antichain";
    default:
      return "random";
  }
}

// --- Build: index vs closure -----------------------------------------

void BM_Reach_IndexBuild(benchmark::State& state) {
  const Digraph g = MakeShape(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)));
  size_t intervals = 0;
  for (auto _ : state) {
    ReachabilityIndex index(g);
    intervals = index.total_intervals();
    benchmark::DoNotOptimize(intervals);
  }
  state.SetLabel(ShapeName(static_cast<int>(state.range(0))));
  state.counters["intervals"] = static_cast<double>(intervals);
}
BENCHMARK(BM_Reach_IndexBuild)
    ->ArgsProduct({{0, 1, 2}, {64, 256, 1024}})
    ->Unit(benchmark::kMicrosecond);

void BM_Reach_ClosureBuild(benchmark::State& state) {
  const Digraph g = MakeShape(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)));
  for (auto _ : state) {
    Reachability closure = ComputeReachability(g);
    benchmark::DoNotOptimize(closure.reach);
  }
  state.SetLabel(ShapeName(static_cast<int>(state.range(0))));
}
BENCHMARK(BM_Reach_ClosureBuild)
    ->ArgsProduct({{0, 1, 2}, {64, 256, 1024}})
    ->Unit(benchmark::kMicrosecond);

// --- Probe throughput -------------------------------------------------

// All-pairs weak + strict probes. The fallbacks counter reports how
// often the interval lists failed to answer outright (the acceptance
// budget is < 5% of probes).
void BM_Reach_IndexProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(1));
  const Digraph g = MakeShape(static_cast<int>(state.range(0)), n);
  const ReachabilityIndex index(g);
  ReachProbeStats stats;
  long long reachable = 0;
  for (auto _ : state) {
    reachable = 0;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        reachable += index.Reaches(u, v, &stats) ? 1 : 0;
        reachable += index.StrictlyReaches(u, v, &stats) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(reachable);
  }
  state.SetLabel(ShapeName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  state.counters["reachable"] = static_cast<double>(reachable);
  state.counters["fallback_pct"] =
      stats.probes > 0 ? 100.0 * static_cast<double>(stats.fallbacks) /
                             static_cast<double>(stats.probes)
                       : 0.0;
}
BENCHMARK(BM_Reach_IndexProbe)
    ->ArgsProduct({{0, 1, 2}, {64, 256}})
    ->Unit(benchmark::kMicrosecond);

void BM_Reach_ClosureProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(1));
  const Digraph g = MakeShape(static_cast<int>(state.range(0)), n);
  const Reachability closure = ComputeReachability(g);
  long long reachable = 0;
  for (auto _ : state) {
    reachable = 0;
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        reachable += closure.reach.Get(u, v) ? 1 : 0;
        reachable += closure.strict.Get(u, v) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(reachable);
  }
  state.SetLabel(ShapeName(static_cast<int>(state.range(0))));
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
  state.counters["reachable"] = static_cast<double>(reachable);
}
BENCHMARK(BM_Reach_ClosureProbe)
    ->ArgsProduct({{0, 1, 2}, {64, 256}})
    ->Unit(benchmark::kMicrosecond);

// --- Incremental append ----------------------------------------------

// The APPEND/WAL-replay shape: an indexed base graph gains a tail of
// fresh vertices and edges, then answers probes against the delta. The
// closure path must rebuild from scratch for the same revision; the
// index stays below the dirty-ratio threshold and searches the delta.
void BM_Reach_IndexAppendProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(1));
  const Digraph base = MakeShape(static_cast<int>(state.range(0)), n);
  ReachabilityIndex index(base);
  const int kTail = 8;
  std::vector<LabeledEdge> tail;
  for (int i = 0; i < kTail; ++i) {
    tail.push_back({n - 1 + i, n + i, i % 2 == 0 ? OrderRel::kLt
                                                 : OrderRel::kLe});
  }
  long long reachable = 0;
  for (auto _ : state) {
    const ReachabilityIndex::Checkpoint mark = index.Mark();
    for (int i = 0; i < kTail; ++i) index.AddVertex();
    index.AppendEdges(std::span<const LabeledEdge>(tail));
    reachable = 0;
    for (int u = 0; u < n + kTail; ++u) {
      reachable += index.Reaches(u, n + kTail - 1) ? 1 : 0;
    }
    index.RewindTo(mark);
    benchmark::DoNotOptimize(reachable);
  }
  state.SetLabel(ShapeName(static_cast<int>(state.range(0))));
  state.counters["reachable"] = static_cast<double>(reachable);
}
BENCHMARK(BM_Reach_IndexAppendProbe)
    ->ArgsProduct({{0, 2}, {256, 1024}})
    ->Unit(benchmark::kMicrosecond);

void BM_Reach_ClosureRebuildProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(1));
  Digraph g = MakeShape(static_cast<int>(state.range(0)), n);
  const int kTail = 8;
  for (int i = 0; i < kTail; ++i) {
    const int v = g.AddVertex();
    g.AddEdge(v - 1, v, i % 2 == 0 ? OrderRel::kLt : OrderRel::kLe);
  }
  long long reachable = 0;
  for (auto _ : state) {
    Reachability closure = ComputeReachability(g);
    reachable = 0;
    for (int u = 0; u < n + kTail; ++u) {
      reachable += closure.reach.Get(u, n + kTail - 1) ? 1 : 0;
    }
    benchmark::DoNotOptimize(reachable);
  }
  state.SetLabel(ShapeName(static_cast<int>(state.range(0))));
  state.counters["reachable"] = static_cast<double>(reachable);
}
BENCHMARK(BM_Reach_ClosureRebuildProbe)
    ->ArgsProduct({{0, 2}, {256, 1024}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace iodb
