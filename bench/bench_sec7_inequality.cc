// Section 7 / Theorem 7.1: inequality brings hardness back. The two
// 3-colorability reductions are swept over graph size: the expression-
// complexity instance (fixed 3-point database, growing "!="-query whose
// rewriting doubles per edge) and the data-complexity instance (fixed
// sequential query, growing "!="-database handled by the brute-force
// engine).

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "reductions/coloring_to_inequality.h"

namespace iodb {
namespace {

void BM_Sec7_ExpressionComplexity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(97);
  SimpleGraph graph = RandomGraph(n, 0.4, rng);
  auto vocab = std::make_shared<Vocabulary>();
  ColoringExpressionInstance inst = ColoringToExpression(graph, vocab);
  for (auto _ : state) {
    Result<EntailResult> result = Entails(inst.db, inst.query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.counters["edges"] = static_cast<double>(graph.edges.size());
}
BENCHMARK(BM_Sec7_ExpressionComplexity)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Sec7_DataComplexity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(101);
  SimpleGraph graph = RandomGraph(n, 0.4, rng);
  auto vocab = std::make_shared<Vocabulary>();
  ColoringDataInstance inst = ColoringToData(graph, vocab);
  for (auto _ : state) {
    Result<EntailResult> result = Entails(inst.db, inst.query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.counters["edges"] = static_cast<double>(graph.edges.size());
}
BENCHMARK(BM_Sec7_DataComplexity)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond);

void BM_Sec7_ColoringOracle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(101);
  SimpleGraph graph = RandomGraph(n, 0.4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsThreeColorable(graph));
  }
}
BENCHMARK(BM_Sec7_ColoringOracle)
    ->DenseRange(3, 7)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace iodb
