// Concurrent serving throughput: how read (EVAL) throughput scales with
// client threads against one shared EvaluationService, with and without
// a concurrent writer republishing versions.
//
// This is the acceptance bench of the MVCC serving layer: readers pin a
// published version and run lock-free, so aggregate read throughput
// should scale with threads (no reader-writer convoy), and a background
// appender (fork → publish per mutation) should dent it only by the
// publish work itself — never by blocking readers. The ->Threads(N)
// ranges report items_per_second aggregated across N benchmark threads;
// compare 1 vs 4 vs 8 threads to see the scaling, and the
// WithWriter variants against the read-only ones to see writer impact.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "service/service.h"

namespace iodb {
namespace {

// A moderately sized database so one EVAL is real work (points spread
// over two ordered chains), but small enough that throughput is request
// dominated, not enumeration dominated.
std::string BenchDatabaseText() {
  std::string text;
  for (int i = 0; i < 8; ++i) {
    text += "P(a" + std::to_string(i) + ")\n";
    text += "Q(b" + std::to_string(i) + ")\n";
    if (i > 0) {
      text += "a" + std::to_string(i - 1) + " < a" + std::to_string(i) + "\n";
      text += "b" + std::to_string(i - 1) + " < b" + std::to_string(i) + "\n";
    }
  }
  text += "a0 < b7\n";
  return text;
}

EvalRequest ReadRequest() {
  EvalRequest request;
  request.db = "bench";
  request.query = "exists t1 t2: P(t1) & t1 < t2 & Q(t2)";
  return request;
}

// --- Read scaling: N reader threads over one shared service ----------------

void BM_ServerConcurrentReads(benchmark::State& state) {
  // One shared fixture across the benchmark's threads.
  static EvaluationService* service = nullptr;
  if (state.thread_index() == 0) {
    service = new EvaluationService();
    Result<DbInfo> info = service->Load("bench", BenchDatabaseText());
    IODB_CHECK(info.ok());
    // Warm the plan cache so the steady state measures evaluation, not
    // one-time compilation.
    Result<EvalResponse> warm = service->Eval(ReadRequest());
    IODB_CHECK(warm.ok());
  }
  const EvalRequest request = ReadRequest();
  for (auto _ : state) {
    Result<EvalResponse> response = service->Eval(request);
    IODB_CHECK(response.ok());
    benchmark::DoNotOptimize(response.value().entailed);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete service;
    service = nullptr;
  }
}
BENCHMARK(BM_ServerConcurrentReads)->Threads(1)->Threads(2)->Threads(4)
    ->Threads(8)->UseRealTime();

// --- Read scaling under a writer: background publishes ---------------------
// Same read load, plus one non-benchmark thread continuously mutating
// and republishing the database. Readers must never block on the
// publish path; the measured dent is the version-build cost stealing
// CPU, not lock contention.

void BM_ServerConcurrentReadsWithWriter(benchmark::State& state) {
  static EvaluationService* service = nullptr;
  static std::atomic<bool>* stop_writer = nullptr;
  static std::thread* writer = nullptr;
  if (state.thread_index() == 0) {
    service = new EvaluationService();
    Result<DbInfo> info = service->Load("bench", BenchDatabaseText());
    IODB_CHECK(info.ok());
    Result<EvalResponse> warm = service->Eval(ReadRequest());
    IODB_CHECK(warm.ok());
    stop_writer = new std::atomic<bool>(false);
    writer = new std::thread([] {
      long long i = 0;
      while (!stop_writer->load(std::memory_order_acquire)) {
        Result<DbInfo> mutated = service->Mutate("bench", [&](Database* db) {
          db->AddFact("P", {"w" + std::to_string(i % 64)});
          return Status::Ok();
        });
        IODB_CHECK(mutated.ok());
        ++i;
      }
    });
  }
  const EvalRequest request = ReadRequest();
  for (auto _ : state) {
    Result<EvalResponse> response = service->Eval(request);
    IODB_CHECK(response.ok());
    benchmark::DoNotOptimize(response.value().entailed);
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    stop_writer->store(true, std::memory_order_release);
    writer->join();
    delete writer;
    writer = nullptr;
    delete stop_writer;
    stop_writer = nullptr;
    delete service;
    service = nullptr;
  }
}
BENCHMARK(BM_ServerConcurrentReadsWithWriter)->Threads(1)->Threads(4)
    ->Threads(8)->UseRealTime();

// --- Writer-side cost: a publish per mutation ------------------------------
// The single-writer fork → apply → materialize → swap pipeline, alone:
// the latency an APPEND pays beyond WAL I/O.

void BM_ServerPublishLatency(benchmark::State& state) {
  EvaluationService service;
  Result<DbInfo> info = service.Load("bench", BenchDatabaseText());
  IODB_CHECK(info.ok());
  long long i = 0;
  for (auto _ : state) {
    Result<DbInfo> mutated = service.Mutate("bench", [&](Database* db) {
      db->AddFact("P", {"w" + std::to_string(i % 64)});
      return Status::Ok();
    });
    IODB_CHECK(mutated.ok());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerPublishLatency);

}  // namespace
}  // namespace iodb
