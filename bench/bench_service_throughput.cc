// EvaluationService request-path throughput: what the plan cache and the
// batch scheduler buy over per-request compilation.
//
// The cold/cached pairs serve the same request stream two ways: the cold
// side clears the plan cache before every request (every EVAL pays parse
// + Prepare() + evaluate, the lifecycle a caller without the service
// hand-manages), the cached side compiles once and then only parses and
// evaluates. The acceptance bar for the serving layer is cached >= 2x
// cold on the compile-heavy shapes. The batch benchmarks measure the
// EvalBatch path (group by plan, fan databases across the worker pool)
// against a loop of single Evals.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/printer.h"
#include "service/service.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

// --- Standing alert: compile-heavy query, small hot database ---------------
// Three "!=" atoms blow up into 2^3 disjuncts at compile time (Section 7);
// evaluation against the 5-atom database is cheap. The classic
// prepared-statement shape.

struct AlertFixture {
  EvaluationService service;

  AlertFixture() {
    Result<DbInfo> info =
        service.Load("alert", "P(u)\nP(v)\nP(w)\nu < v\nv < w");
    IODB_CHECK(info.ok());
  }
};

EvalRequest AlertRequest() {
  EvalRequest request;
  request.db = "alert";
  request.query =
      "exists t1 t2 t3: P(t1) & P(t2) & P(t3) & "
      "t1 != t2 & t1 != t3 & t2 != t3";
  return request;
}

void BM_ServiceAlertCold(benchmark::State& state) {
  AlertFixture fixture;
  const EvalRequest request = AlertRequest();
  for (auto _ : state) {
    fixture.service.plan_cache().Clear();
    Result<EvalResponse> response = fixture.service.Eval(request);
    IODB_CHECK(response.ok());
    benchmark::DoNotOptimize(response.value().entailed);
  }
}
BENCHMARK(BM_ServiceAlertCold);

void BM_ServiceAlertCached(benchmark::State& state) {
  AlertFixture fixture;
  const EvalRequest request = AlertRequest();
  IODB_CHECK(fixture.service.Eval(request).ok());  // warm the cache
  for (auto _ : state) {
    Result<EvalResponse> response = fixture.service.Eval(request);
    IODB_CHECK(response.ok());
    IODB_CHECK(response.value().plan_cache_hit);
    benchmark::DoNotOptimize(response.value().entailed);
  }
}
BENCHMARK(BM_ServiceAlertCached);

// --- Monadic workload: generated k-observer fleet --------------------------
// A fleet of random width-2 observer databases sharing one vocabulary,
// probed by a generated disjunctive sequential pattern — the paper's
// motivating workload served through the request path. Args: fleet size.

struct FleetFixture {
  EvaluationService service;
  std::vector<EvalRequest> requests;

  explicit FleetFixture(int fleet_size, ServiceOptions options = {})
      : service(options) {
    Rng rng(2026);
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 8;
    for (int i = 0; i < fleet_size; ++i) {
      Database db = RandomMonadicDb(params, service.vocab(), rng);
      Result<DbInfo> info =
          service.Register("fleet" + std::to_string(i), std::move(db));
      IODB_CHECK(info.ok());
    }
    Query pattern = RandomDisjunctiveSequentialQuery(
        /*num_disjuncts=*/3, /*length=*/4, /*num_predicates=*/3,
        /*label_probability=*/0.4, /*le_probability=*/0.2, service.vocab(),
        rng);
    const std::string text = ToString(pattern);
    for (int i = 0; i < fleet_size; ++i) {
      EvalRequest request;
      request.db = "fleet" + std::to_string(i);
      request.query = text;
      requests.push_back(std::move(request));
    }
  }
};

void BM_ServiceFleetCold(benchmark::State& state) {
  FleetFixture fixture(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (const EvalRequest& request : fixture.requests) {
      fixture.service.plan_cache().Clear();
      Result<EvalResponse> response = fixture.service.Eval(request);
      IODB_CHECK(response.ok());
      benchmark::DoNotOptimize(response.value().entailed);
    }
  }
}
BENCHMARK(BM_ServiceFleetCold)->Arg(16);

void BM_ServiceFleetCached(benchmark::State& state) {
  FleetFixture fixture(static_cast<int>(state.range(0)));
  IODB_CHECK(fixture.service.Eval(fixture.requests[0]).ok());
  for (auto _ : state) {
    for (const EvalRequest& request : fixture.requests) {
      Result<EvalResponse> response = fixture.service.Eval(request);
      IODB_CHECK(response.ok());
      benchmark::DoNotOptimize(response.value().entailed);
    }
  }
}
BENCHMARK(BM_ServiceFleetCached)->Arg(16);

// --- Batch path: one EvalBatch vs a loop of Evals --------------------------
// Same fleet requests served as one batch. Workers > 1 additionally fans
// the group across the pool (needs real cores to pay off). Args: (fleet
// size, workers).

void BM_ServiceFleetBatch(benchmark::State& state) {
  ServiceOptions options;
  options.num_workers = static_cast<int>(state.range(1));
  FleetFixture fixture(static_cast<int>(state.range(0)), options);
  for (auto _ : state) {
    std::vector<Result<EvalResponse>> responses =
        fixture.service.EvalBatch(fixture.requests);
    for (const Result<EvalResponse>& response : responses) {
      IODB_CHECK(response.ok());
      benchmark::DoNotOptimize(response.value().entailed);
    }
  }
}
BENCHMARK(BM_ServiceFleetBatch)
    ->Args({16, 1})
    ->Args({16, 2})
    ->Args({16, 4})
    ->UseRealTime();

}  // namespace
}  // namespace iodb
