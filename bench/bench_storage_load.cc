// bench_storage_load: text-parse load vs binary snapshot open.
//
// The acceptance bar of the storage layer: opening a large generated
// database from a snapshot must be an order of magnitude faster than
// re-parsing its text rendering — the snapshot's predicate-bucketed
// flat segments decode by bounds-checked byte reads instead of
// tokenization, identifier interning and sort inference.
//
// BM_TextParseLoad and BM_SnapshotOpen consume the SAME database at
// each size (rendered to text vs encoded to a snapshot, both
// in-memory), so their ratio is the pure format effect.
// BM_SnapshotOpenFile adds the filesystem read on top.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>

#include "core/parser.h"
#include "core/printer.h"
#include "storage/snapshot.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

// A k-observer database with `chains` chains of `length` labelled
// events: the paper's motivating shape at serving scale.
Database MakeDatabase(int chains, int length, VocabularyPtr vocab) {
  Rng rng(42);
  MonadicDbParams params;
  params.num_chains = chains;
  params.chain_length = length;
  params.num_predicates = 8;
  params.label_probability = 0.5;
  params.le_probability = 0.2;
  return RandomMonadicDb(params, vocab, rng);
}

void BM_TextParseLoad(benchmark::State& state) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MakeDatabase(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), vocab);
  const std::string text = ToString(db);
  for (auto _ : state) {
    auto fresh = std::make_shared<Vocabulary>();
    Result<Database> parsed = ParseDatabase(text, fresh);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(text.size()));
  state.counters["atoms"] = static_cast<double>(db.SizeAtoms());
}

void BM_SnapshotOpen(benchmark::State& state) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MakeDatabase(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), vocab);
  const std::string bytes = storage::EncodeSnapshot(db);
  for (auto _ : state) {
    Result<Database> opened = storage::DecodeSnapshot(bytes);
    if (!opened.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
  state.counters["atoms"] = static_cast<double>(db.SizeAtoms());
}

void BM_SnapshotOpenFile(benchmark::State& state) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MakeDatabase(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), vocab);
  const std::string path = "bench_storage_load.tmp.snap";
  if (!storage::SaveSnapshot(db, path).ok()) {
    state.SkipWithError("save failed");
    return;
  }
  for (auto _ : state) {
    Result<Database> opened = storage::OpenSnapshot(path);
    if (!opened.ok()) state.SkipWithError("open failed");
    benchmark::DoNotOptimize(opened);
  }
  std::remove(path.c_str());
}

void BM_SnapshotEncode(benchmark::State& state) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = MakeDatabase(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(1)), vocab);
  for (auto _ : state) {
    std::string bytes = storage::EncodeSnapshot(db);
    benchmark::DoNotOptimize(bytes);
  }
}

// (chains, chain length): ~200, ~2k and ~20k events.
#define STORAGE_SIZES                                                     \
  Args({4, 50})->Args({8, 250})->Args({16, 1250})

BENCHMARK(BM_TextParseLoad)->STORAGE_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotOpen)->STORAGE_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotOpenFile)->STORAGE_SIZES->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotEncode)->STORAGE_SIZES->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace iodb
