// Table 1, row "n-ary", column "Combined": Π₂ᵖ-complete combined
// complexity, via the Theorem 3.3 reduction from Π₂-SAT. Both the
// database (universal gadgets) and the query (Val encoding) grow.
// The direct Π₂ evaluator provides the baseline.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "logic/qbf.h"
#include "reductions/qbf_to_entailment.h"

namespace iodb {
namespace {

void BM_Table1_Combined_Pi2(benchmark::State& state) {
  const int num_universal = static_cast<int>(state.range(0));
  Rng rng(11);
  Pi2Formula formula = RandomPi2(num_universal, 2, 6, rng);
  auto vocab = std::make_shared<Vocabulary>();
  QbfReduction reduction = Pi2ToEntailment(formula, vocab);
  for (auto _ : state) {
    Result<EntailResult> result = Entails(reduction.db, reduction.query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.counters["db_atoms"] = reduction.db.SizeAtoms();
}
BENCHMARK(BM_Table1_Combined_Pi2)
    ->DenseRange(1, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Table1_Combined_Pi2Baseline(benchmark::State& state) {
  const int num_universal = static_cast<int>(state.range(0));
  Rng rng(11);
  Pi2Formula formula = RandomPi2(num_universal, 2, 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluatePi2(formula));
  }
}
BENCHMARK(BM_Table1_Combined_Pi2Baseline)
    ->DenseRange(1, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
