// Table 1, row "n-ary", column "Data": co-NP-complete data complexity.
//
// The query is FIXED (the Theorem 3.2 query); the database grows with the
// size of a random monotone 3-SAT instance. The expected shape: runtime
// grows superpolynomially in the database size (the engine is the generic
// minimal-model countermodel search), in contrast with the monadic row
// (bench_table1_monadic), which stays polynomial. A DPLL baseline decides
// the same underlying instances directly.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "logic/sat_solver.h"
#include "reductions/sat_to_entailment.h"

namespace iodb {
namespace {

void BM_Table1_Data_Nary(benchmark::State& state) {
  const int num_clauses = static_cast<int>(state.range(0));
  Rng rng(42);
  CnfFormula cnf = RandomMonotone3Sat(4, num_clauses, rng);
  auto vocab = std::make_shared<Vocabulary>();
  Result<SatReduction> reduction =
      MonotoneSatToEntailment(cnf, vocab, /*bounded_width=*/true);
  IODB_CHECK(reduction.ok());
  long long models = 0;
  for (auto _ : state) {
    Result<EntailResult> result =
        Entails(reduction.value().db, reduction.value().query);
    IODB_CHECK(result.ok());
    models = result.value().models_enumerated;
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.counters["db_atoms"] = reduction.value().db.SizeAtoms();
  state.counters["models"] = static_cast<double>(models);
}
BENCHMARK(BM_Table1_Data_Nary)->DenseRange(1, 3)->Unit(benchmark::kMillisecond);

void BM_Table1_Data_DpllBaseline(benchmark::State& state) {
  const int num_clauses = static_cast<int>(state.range(0));
  Rng rng(42);
  CnfFormula cnf = RandomMonotone3Sat(4, num_clauses, rng);
  for (auto _ : state) {
    SatSolver solver;
    benchmark::DoNotOptimize(solver.Solve(cnf).has_value());
  }
}
BENCHMARK(BM_Table1_Data_DpllBaseline)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
