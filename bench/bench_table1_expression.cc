// Table 1, row "n-ary", column "Expression": NP-complete expression
// complexity. The database is FIXED (the Theorem 3.3/3.4 truth-table
// database E); queries encode random 3-SAT formulas of growing size via
// the Val construction. Expected shape: growth in the query size that
// outpaces any fixed polynomial on adversarial instances (model checking
// of a conjunctive query is homomorphism search).

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "logic/sat_solver.h"
#include "reductions/qbf_to_entailment.h"

namespace iodb {
namespace {

void BM_Table1_Expression_Nary(benchmark::State& state) {
  const int num_clauses = static_cast<int>(state.range(0));
  Rng rng(7);
  CnfFormula cnf = RandomKSat(4, num_clauses, 3, rng);
  auto vocab = std::make_shared<Vocabulary>();
  Database db = TruthTableDb(vocab);
  Query query = SatQuery(CnfToFormula(cnf), 4, vocab);
  for (auto _ : state) {
    Result<EntailResult> result = Entails(db, query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  int query_atoms = 0;
  for (const QueryConjunct& c : query.disjuncts()) {
    query_atoms += static_cast<int>(c.proper_atoms.size());
  }
  state.counters["query_atoms"] = query_atoms;
}
BENCHMARK(BM_Table1_Expression_Nary)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
