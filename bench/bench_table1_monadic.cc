// Table 1, row "Monadic": data and expression complexity drop to PTIME,
// combined complexity to co-NP.
//
//  * Data cell: a FIXED conjunctive monadic query over growing random
//    width-2 databases — linear shape (Corollary 4.4, realized by the
//    path/SEQ engine).
//  * Expression cell: a FIXED database, growing disjunctive monadic
//    queries evaluated in a fixed model — polynomial shape
//    (Corollary 5.1).
//  * Combined cell: the Theorem 4.6 tautology family — exponential shape
//    in the number of DNF variables (co-NP-hard).

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/entail_paths.h"
#include "core/parser.h"
#include "logic/dnf.h"
#include "reductions/dnf_taut_to_monadic.h"
#include "workload/generators.h"

namespace iodb {
namespace {

void BM_Table1_Monadic_Data(benchmark::State& state) {
  const int chain_length = static_cast<int>(state.range(0));
  Rng rng(3);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = chain_length;
  params.num_predicates = 4;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  // Fixed query: P0 < P1 <= P2 (a fixed set of paths).
  Query query = RandomConjunctiveMonadicQuery(3, 4, 0.6, 0.5, 0.3, vocab,
                                              rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EntailByPaths(norm.value(), nq.value().disjuncts[0]).entailed);
  }
  state.counters["db_points"] = norm.value().num_points();
  state.SetComplexityN(norm.value().num_points());
}
BENCHMARK(BM_Table1_Monadic_Data)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity(benchmark::oN);

void BM_Table1_Monadic_Expression(benchmark::State& state) {
  // Fixed width-one database (a single model, Corollary 5.1); growing
  // disjunctive query.
  const int num_disjuncts = static_cast<int>(state.range(0));
  Rng rng(5);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 1;
  params.chain_length = 64;
  params.num_predicates = 4;
  params.le_probability = 0.0;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query = RandomDisjunctiveSequentialQuery(num_disjuncts, 4, 4, 0.4,
                                                 0.3, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  for (auto _ : state) {
    Result<EntailResult> result = Entails(db, query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.SetComplexityN(num_disjuncts);
}
BENCHMARK(BM_Table1_Monadic_Expression)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->Complexity(benchmark::oN);

void BM_Table1_Monadic_Combined(benchmark::State& state) {
  // Theorem 4.6: combined complexity is co-NP-hard; the complete
  // tautology over k variables has 2^k database components.
  const int k = static_cast<int>(state.range(0));
  auto vocab = std::make_shared<Vocabulary>();
  Result<MonadicTautReduction> reduction =
      DnfTautToEntailment(CompleteTautology(k), vocab);
  IODB_CHECK(reduction.ok());
  for (auto _ : state) {
    Result<EntailResult> result =
        Entails(reduction.value().db, reduction.value().query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
  state.counters["db_atoms"] = reduction.value().db.SizeAtoms();
}
BENCHMARK(BM_Table1_Monadic_Combined)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
