// Table 2: combined complexity of conjunctive monadic queries.
//
//   Sequential / bounded width      -> PTIME  (SEQ)
//   Sequential / unbounded width    -> PTIME  (SEQ)
//   Nonsequential / bounded width   -> PTIME  (Theorem 4.7)
//   Nonsequential / unbounded width -> co-NP  (Theorem 4.6 family)
//
// The first three series grow both database and query and stay
// polynomial; the fourth uses the DNF tautology family and blows up
// exponentially in the variable count.

#include <benchmark/benchmark.h>

#include "core/engine.h"
#include "core/entail_bounded_width.h"
#include "core/seq.h"
#include "logic/dnf.h"
#include "reductions/dnf_taut_to_monadic.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct SequentialInstance {
  NormDb db;
  FlexiWord pattern;
};

SequentialInstance MakeSequential(int scale, int num_chains) {
  Rng rng(13 + scale + num_chains);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = num_chains;
  params.chain_length = scale / num_chains + 1;
  params.num_predicates = 4;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query = RandomSequentialQuery(scale / 4 + 1, 4, 0.4, 0.3, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  return {std::move(norm.value()),
          SequentialPattern(nq.value().disjuncts[0])};
}

void BM_Table2_SequentialBoundedWidth(benchmark::State& state) {
  SequentialInstance inst =
      MakeSequential(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeqEntails(inst.db, inst.pattern));
  }
  state.SetComplexityN(inst.db.num_points() * inst.pattern.size());
}
BENCHMARK(BM_Table2_SequentialBoundedWidth)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oN);

void BM_Table2_SequentialUnboundedWidth(benchmark::State& state) {
  // Width grows with the database (one chain per 4 points): SEQ stays
  // polynomial regardless (Corollary 4.3).
  const int scale = static_cast<int>(state.range(0));
  SequentialInstance inst = MakeSequential(scale, std::max(2, scale / 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SeqEntails(inst.db, inst.pattern));
  }
  state.SetComplexityN(inst.db.num_points() * inst.pattern.size());
}
BENCHMARK(BM_Table2_SequentialUnboundedWidth)
    ->RangeMultiplier(2)
    ->Range(32, 1024)
    ->Complexity(benchmark::oN);

void BM_Table2_NonsequentialBoundedWidth(benchmark::State& state) {
  // Random nonsequential conjunctive queries over width-2 databases:
  // Theorem 4.7 keeps this polynomial.
  const int scale = static_cast<int>(state.range(0));
  Rng rng(29 + scale);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = scale / 2;
  params.num_predicates = 4;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query =
      RandomConjunctiveMonadicQuery(6, 4, 0.3, 0.4, 0.3, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EntailBoundedWidth(norm.value(), nq.value().disjuncts[0]).entailed);
  }
  state.SetComplexityN(norm.value().num_points());
}
BENCHMARK(BM_Table2_NonsequentialBoundedWidth)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity();

void BM_Table2_NonsequentialUnboundedWidth(benchmark::State& state) {
  // The co-NP cell: the Theorem 4.6 family; database width = 2 * number
  // of disjuncts, and runtime grows exponentially in k.
  const int k = static_cast<int>(state.range(0));
  auto vocab = std::make_shared<Vocabulary>();
  Result<MonadicTautReduction> reduction =
      DnfTautToEntailment(CompleteTautology(k), vocab);
  IODB_CHECK(reduction.ok());
  for (auto _ : state) {
    Result<EntailResult> result =
        Entails(reduction.value().db, reduction.value().query);
    IODB_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value().entailed);
  }
}
BENCHMARK(BM_Table2_NonsequentialUnboundedWidth)
    ->DenseRange(1, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
