// Theorem 4.7 ablation: the bound is O(|D|^{k+1} · |Φ|) for width-k
// databases. Two sweeps: database size at fixed width (polynomial of
// fixed degree) and width at fixed size (the degree itself grows — the
// exponential dependence on k that Theorem 4.6 shows unavoidable).

#include <benchmark/benchmark.h>

#include "core/entail_bounded_width.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct Instance {
  NormDb db;
  NormConjunct conjunct;
};

Instance Make(int num_chains, int chain_length, uint64_t seed) {
  Rng rng(seed);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = num_chains;
  params.chain_length = chain_length;
  params.num_predicates = 3;
  params.label_probability = 0.5;
  params.le_probability = 0.2;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query =
      RandomConjunctiveMonadicQuery(5, 3, 0.3, 0.4, 0.3, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  return {std::move(norm.value()), nq.value().disjuncts[0]};
}

void BM_Thm47_DbSweepAtWidth2(benchmark::State& state) {
  Instance inst = Make(2, static_cast<int>(state.range(0)), 53);
  long long states = 0;
  for (auto _ : state) {
    BoundedWidthOutcome outcome = EntailBoundedWidth(inst.db, inst.conjunct);
    states = outcome.states_visited;
    benchmark::DoNotOptimize(outcome.entailed);
  }
  state.counters["states"] = static_cast<double>(states);
  state.SetComplexityN(inst.db.num_points());
}
BENCHMARK(BM_Thm47_DbSweepAtWidth2)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_Thm47_WidthSweep(benchmark::State& state) {
  // Fixed total point budget, growing number of chains (width).
  const int k = static_cast<int>(state.range(0));
  Instance inst = Make(k, 24 / k, 59);
  long long states = 0;
  for (auto _ : state) {
    BoundedWidthOutcome outcome = EntailBoundedWidth(inst.db, inst.conjunct);
    states = outcome.states_visited;
    benchmark::DoNotOptimize(outcome.entailed);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["width"] = k;
}
BENCHMARK(BM_Thm47_WidthSweep)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace iodb
