// Theorem 5.3 ablation: the bound O(|D|^{2k} · |Pred| · Π|Φᵢ|) is
// exponential in both the database width and the number of disjuncts
// (Propositions 5.4/5.5 show neither dependence is removable). Sweeps:
// disjunct count, width, and countermodel-enumeration throughput (the
// paper's polynomial-delay remark).

#include <benchmark/benchmark.h>

#include "core/entail_disjunctive.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct Instance {
  NormDb db;
  NormQuery query;
};

Instance Make(int num_chains, int chain_length, int num_disjuncts,
              uint64_t seed) {
  Rng rng(seed);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = num_chains;
  params.chain_length = chain_length;
  params.num_predicates = 3;
  params.label_probability = 0.5;
  params.le_probability = 0.2;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query = RandomDisjunctiveSequentialQuery(num_disjuncts, 3, 3, 0.3,
                                                 0.2, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  return {std::move(norm.value()), std::move(nq.value())};
}

void BM_Thm53_DisjunctSweep(benchmark::State& state) {
  Instance inst = Make(2, 8, static_cast<int>(state.range(0)), 61);
  long long states = 0;
  for (auto _ : state) {
    DisjunctiveOutcome outcome = EntailDisjunctive(inst.db, inst.query);
    states = outcome.states_visited;
    benchmark::DoNotOptimize(outcome.entailed);
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_Thm53_DisjunctSweep)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_Thm53_WidthSweep(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Instance inst = Make(k, 16 / k, 2, 67);
  long long states = 0;
  for (auto _ : state) {
    DisjunctiveOutcome outcome = EntailDisjunctive(inst.db, inst.query);
    states = outcome.states_visited;
    benchmark::DoNotOptimize(outcome.entailed);
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["width"] = k;
}
BENCHMARK(BM_Thm53_WidthSweep)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);

void BM_Thm53_CountermodelEnumeration(benchmark::State& state) {
  // Throughput of countermodel (valid-schedule) enumeration: models per
  // second over a capped enumeration. Long specific patterns keep the
  // query falsifiable so there are countermodels to enumerate.
  Rng rng(71);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = static_cast<int>(state.range(0));
  params.num_predicates = 3;
  params.label_probability = 0.3;
  Database raw_db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(raw_db);
  IODB_CHECK(norm.ok());
  Query raw_query =
      RandomDisjunctiveSequentialQuery(2, 6, 3, 0.5, 0.1, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(raw_query);
  IODB_CHECK(nq.ok());
  Instance inst{std::move(norm.value()), std::move(nq.value())};
  long long total = 0;
  for (auto _ : state) {
    long long count = 0;
    DisjunctiveOptions options;
    options.on_countermodel = [&](const FiniteModel&) {
      return ++count < 2000;
    };
    EntailDisjunctive(inst.db, inst.query, options);
    total += count;
    benchmark::DoNotOptimize(count);
  }
  state.counters["countermodels_per_iter"] =
      static_cast<double>(total) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Thm53_CountermodelEnumeration)
    ->DenseRange(3, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
