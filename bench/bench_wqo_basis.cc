// Section 6 / Theorem 6.5: compiled-query (basis) evaluation. For a fixed
// conjunctive monadic query the basis is {D_Φ}; evaluating the compiled
// form is |Paths(Φ)| SEQ sweeps — linear in |D| — compared here against
// the Theorem 4.7 engine (O(|D|^{k+1})) on the same instances, plus the
// cost of the experimental word-basis search.

#include <benchmark/benchmark.h>

#include "core/entail_bounded_width.h"
#include "core/wqo.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct Instance {
  NormDb db;
  NormConjunct conjunct;
};

Instance Make(int chain_length) {
  Rng rng(73);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = chain_length;
  params.num_predicates = 3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  Query query =
      RandomConjunctiveMonadicQuery(4, 3, 0.4, 0.4, 0.3, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  return {std::move(norm.value()), nq.value().disjuncts[0]};
}

void BM_Wqo_CompiledEvaluation(benchmark::State& state) {
  Instance inst = Make(static_cast<int>(state.range(0)));
  CompiledQuery compiled = CompiledQuery::CompileConjunctive(inst.conjunct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiled.Entails(inst.db));
  }
  state.SetComplexityN(inst.db.num_points());
}
BENCHMARK(BM_Wqo_CompiledEvaluation)
    ->RangeMultiplier(2)
    ->Range(16, 2048)
    ->Complexity(benchmark::oN);

void BM_Wqo_BoundedWidthComparison(benchmark::State& state) {
  Instance inst = Make(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EntailBoundedWidth(inst.db, inst.conjunct).entailed);
  }
  state.SetComplexityN(inst.db.num_points());
}
BENCHMARK(BM_Wqo_BoundedWidthComparison)
    ->RangeMultiplier(2)
    ->Range(16, 2048)
    ->Complexity();

void BM_Wqo_WordBasisSearch(benchmark::State& state) {
  Rng rng(79);
  auto vocab = std::make_shared<Vocabulary>();
  Query query = RandomDisjunctiveSequentialQuery(
      2, static_cast<int>(state.range(0)), 2, 0.2, 0.0, vocab, rng);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(nq.ok());
  size_t basis_size = 0;
  for (auto _ : state) {
    std::vector<FlexiWord> basis =
        WordBasisSearch(nq.value(), static_cast<int>(state.range(0)) + 1,
                        20000);
    basis_size = basis.size();
    benchmark::DoNotOptimize(basis);
  }
  state.counters["basis_words"] = static_cast<double>(basis_size);
}
BENCHMARK(BM_Wqo_WordBasisSearch)
    ->DenseRange(1, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace iodb
