// Gene alignment (Example 1.2): monadic indefinite order databases.
//
// Two base sequences become two chains of monadic facts; the space of
// alignments is the space of minimal models. Integrity constraints
// ("never align A with G") are disjunctive monadic queries; an alignment
// satisfying the constraints exists iff the violation query is NOT
// entailed, and the countermodel IS such an alignment.

#include <cstdio>

#include "core/engine.h"
#include "core/printer.h"
#include "workload/generators.h"

int main() {
  using namespace iodb;

  auto vocab = std::make_shared<Vocabulary>();
  const std::string s1 = "GACGGATTAG";
  const std::string s2 = "GATCGGAATAG";
  Database db = AlignmentDb(s1, s2, vocab);
  std::printf("Sequence 1: %s\nSequence 2: %s\n", s1.c_str(), s2.c_str());

  // Forbid aligning two different bases at the same position.
  Query violation = AlignmentViolationQuery(
      {{'A', 'G'}, {'A', 'C'}, {'A', 'T'}, {'C', 'G'}, {'C', 'T'},
       {'G', 'T'}},
      vocab);

  EntailOptions options;
  options.want_countermodel = true;
  Result<EntailResult> result = Entails(db, violation, options);
  IODB_CHECK(result.ok());

  if (result.value().entailed) {
    std::printf(
        "Every alignment violates the constraints: no match-only "
        "alignment exists.\n");
  } else {
    std::printf(
        "A constraint-respecting alignment exists (engine: %s).\n",
        EngineKindName(result.value().engine_used));
    IODB_CHECK(result.value().countermodel.has_value());
    std::printf("One such alignment (columns left to right):\n  %s\n",
                result.value().countermodel->ToString().c_str());
  }

  // A pair of sequences with NO consistent alignment under a constraint
  // that also forbids gaps between co-aligned duplicates is harder to
  // force with monadic facts alone; instead show the entailed direction
  // with a degenerate constraint (A aligned with A is "forbidden"):
  auto vocab2 = std::make_shared<Vocabulary>();
  Database db2 = AlignmentDb("A", "AA", vocab2);
  Query forced = AlignmentViolationQuery({{'A', 'A'}}, vocab2);
  Result<EntailResult> result2 = Entails(db2, forced);
  IODB_CHECK(result2.ok());
  std::printf(
      "\nDegenerate check (constraint '∃t A(t)' against A-sequences): %s\n",
      result2.value().entailed ? "entailed, as expected" : "NOT entailed?!");
  return 0;
}
