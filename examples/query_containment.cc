// Klug's problem (Proposition 2.10): containment of relational
// conjunctive queries with inequalities, decided through indefinite-order
// entailment. Shows a containment that the classical homomorphism test
// can also certify, one involving order atoms where only the reduction
// applies, and the asymmetry between "<" and "<=".

#include <cstdio>

#include "containment/containment.h"

namespace {

void Report(const char* label, bool contained) {
  std::printf("  %-58s %s\n", label, contained ? "CONTAINED" : "not contained");
}

}  // namespace

int main() {
  using namespace iodb;

  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("E", {Sort::kObject, Sort::kObject});
  vocab->MustAddPredicate("A", {Sort::kOrder});

  // Order-free: a 2-path query is contained in the single-edge query.
  QueryConjunct two_path;
  two_path.Exists("x").Exists("y").Exists("z");
  two_path.Atom("E", {"x", "y"}).Atom("E", {"y", "z"});
  QueryConjunct one_edge;
  one_edge.Exists("u").Exists("v");
  one_edge.Atom("E", {"u", "v"});
  RelationalQuery q_path{two_path, {}};
  RelationalQuery q_edge{one_edge, {}};

  std::printf("Order-free conjunctive queries:\n");
  Result<ContainmentResult> r1 =
      Contained(q_path, q_edge, vocab, OrderSemantics::kFinite);
  IODB_CHECK(r1.ok());
  Report("E(x,y) & E(y,z)  vs  E(u,v)", r1.value().contained);
  Result<bool> hom = HomomorphismContained(q_path, q_edge);
  IODB_CHECK(hom.ok());
  std::printf("  (homomorphism baseline agrees: %s)\n",
              hom.value() == r1.value().contained ? "yes" : "NO");

  // With order atoms: three increasing A's are contained in two.
  QueryConjunct three;
  three.Exists("t1").Exists("t2").Exists("t3");
  three.Atom("A", {"t1"}).Atom("A", {"t2"}).Atom("A", {"t3"});
  three.Order("t1", OrderRel::kLt, "t2").Order("t2", OrderRel::kLt, "t3");
  QueryConjunct two;
  two.Exists("s1").Exists("s2");
  two.Atom("A", {"s1"}).Atom("A", {"s2"});
  two.Order("s1", OrderRel::kLt, "s2");
  RelationalQuery q3{three, {}};
  RelationalQuery q2{two, {}};

  std::printf("\nQueries with order atoms (homomorphism test inapplicable):\n");
  Result<ContainmentResult> r2 =
      Contained(q3, q2, vocab, OrderSemantics::kFinite);
  IODB_CHECK(r2.ok());
  Report("A(t1)<A(t2)<A(t3)  vs  A(s1)<A(s2)", r2.value().contained);
  Result<ContainmentResult> r3 =
      Contained(q2, q3, vocab, OrderSemantics::kFinite);
  IODB_CHECK(r3.ok());
  Report("A(s1)<A(s2)  vs  A(t1)<A(t2)<A(t3)", r3.value().contained);

  // "<" is contained in "<=" but not conversely.
  QueryConjunct weak;
  weak.Exists("s1").Exists("s2");
  weak.Atom("A", {"s1"}).Atom("A", {"s2"});
  weak.Order("s1", OrderRel::kLe, "s2");
  RelationalQuery q_weak{weak, {}};
  std::printf("\nStrict vs. weak comparisons:\n");
  Result<ContainmentResult> r4 =
      Contained(q2, q_weak, vocab, OrderSemantics::kFinite);
  IODB_CHECK(r4.ok());
  Report("A(s1)<A(s2)  vs  A(s1)<=A(s2)", r4.value().contained);
  Result<ContainmentResult> r5 =
      Contained(q_weak, q2, vocab, OrderSemantics::kFinite);
  IODB_CHECK(r5.ok());
  Report("A(s1)<=A(s2)  vs  A(s1)<A(s2)", r5.value().contained);

  std::printf(
      "\nTheorem 3.3 of the paper shows this problem is Pi^p_2-complete\n"
      "in general, resolving Klug's open lower bound.\n");
  return 0;
}
