// Quickstart: Example 1.1 of the paper, end to end.
//
// A classified document leaked from a security compound. The guard's log
// and agent A's testimony only partially order the events; we ask what
// holds in EVERY compatible time line. The library concludes that someone
// entered the compound twice — but that neither agent can be individually
// charged.
//
// Demonstrates: the text format, order semantics, disjunctive queries
// with constants, integrity constraints by query modification,
// countermodel extraction, and the compiled query plan (Prepare /
// PreparedQuery::Explain).

#include <cstdio>

#include "core/engine.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "core/printer.h"

namespace {

void Report(const char* label, const iodb::Result<iodb::EntailResult>& r) {
  IODB_CHECK(r.ok());
  std::printf("  %-42s %s   [engine: %s]\n", label,
              r.value().entailed ? "YES" : "no ",
              iodb::EngineKindName(r.value().engine_used));
}

}  // namespace

int main() {
  using namespace iodb;

  auto vocab = std::make_shared<Vocabulary>();
  // IC(u, v, x): x was in the compound from time u to time v.
  Result<Database> db = ParseDatabase(R"(
    pred IC(order, order, object)
    # The guard's log: A enters, A leaves, later B enters.
    IC(z1, z2, A)
    IC(z3, z4, B)
    z1 < z2 < z3 < z4
    # Agent A's testimony: B came in while A was inside; A left first.
    IC(u1, u3, A)
    IC(u2, u4, B)
    u1 < u2 < u3 < u4
  )",
                                      vocab);
  IODB_CHECK(db.ok());

  std::printf("The evidence:\n%s\n", ToString(db.value()).c_str());

  // Ψ: the integrity violation (two overlapping but distinct presence
  // intervals of the same agent). Queries are posed as Ψ ∨ Φ so that the
  // integrity constraint is honored (Section 1 of the paper).
  const std::string psi =
      "exists x t1 t2 t3 t4 w: IC(t1,t2,x) & IC(t3,t4,x) & t1<w & w<t2 & "
      "t3<w & w<t4 & t1<t3 "
      "| exists x t1 t2 t3 t4 w: IC(t1,t2,x) & IC(t3,t4,x) & t1<w & w<t2 & "
      "t3<w & w<t4 & t2<t4";
  auto phi = [](const std::string& agent, bool quantified) {
    std::string vars = "t1 t2 t3 t4";
    if (quantified) vars = "x " + vars;
    return "exists " + vars + ": IC(t1,t2," + agent + ") & IC(t3,t4," +
           agent + ") & t1<t3";
  };

  auto ask = [&](const char* label, const std::string& text,
                 bool want_countermodel = false) {
    Result<Query> query = ParseQuery(text, vocab);
    IODB_CHECK(query.ok());
    EntailOptions options;
    // Time is dense: Ψ's in-between point w makes the queries nontight,
    // so we evaluate under the rational-order semantics (the library
    // applies the Corollary 2.6 reduction to finite models internally).
    options.semantics = OrderSemantics::kRational;
    options.want_countermodel = want_countermodel;
    Result<EntailResult> result = Entails(db.value(), query.value(), options);
    Report(label, result);
    if (want_countermodel && result.ok() && !result.value().entailed &&
        result.value().countermodel.has_value()) {
      std::printf("    countermodel: %s\n",
                  result.value().countermodel->ToString().c_str());
    }
  };

  std::printf("Entailment under the dense (rational) order semantics:\n");
  ask("Did someone enter twice?", psi + " | " + phi("x", true));
  ask("Did agent A or agent B enter twice?",
      psi + " | " + phi("A", false) + " | " + phi("B", false));
  ask("Did agent A enter twice?", psi + " | " + phi("A", false), true);
  ask("Did agent B enter twice?", psi + " | " + phi("B", false), true);

  std::printf(
      "\nConclusion: the evidence convicts *someone*, but no one in "
      "particular —\nexactly the paper's Example 1.1.\n");

  // Under the hood each ask compiles into a pass-based plan. Prepare the
  // first question once and inspect it; repeated evaluations (new
  // testimony arriving, what-if variants of the log) reuse the plan and
  // the database's memoized normalization.
  Result<Query> someone = ParseQuery(psi + " | " + phi("x", true), vocab);
  IODB_CHECK(someone.ok());
  EntailOptions dense;
  dense.semantics = OrderSemantics::kRational;
  Result<PreparedQuery> plan = Prepare(vocab, someone.value(), dense);
  IODB_CHECK(plan.ok());
  std::printf("\nThe compiled plan for \"did someone enter twice?\":\n%s",
              plan.value().Explain().c_str());
  return 0;
}
