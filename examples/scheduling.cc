// Nonlinear planning (Section 1): a partially ordered plan's possible
// executions are the compatible linear orders. The Theorem 5.3 engine
// does double duty: it decides whether a forbidden pattern occurs in
// EVERY execution, and (as a countermodel enumerator) lists the valid
// schedules with polynomial delay.

#include <cstdio>
#include <set>
#include <string>

#include "core/entail_disjunctive.h"
#include "core/printer.h"
#include "workload/scenarios.h"

int main() {
  using namespace iodb;

  Rng rng(2026);
  SchedulingScenario scenario = MakeSchedulingScenario(
      /*num_workers=*/2, /*tasks_per_worker=*/3, rng);

  std::printf("The partially ordered plan:\n%s\n",
              ToString(scenario.db).c_str());
  std::printf("Forbidden pattern: %s\n\n",
              ToString(scenario.forbidden).c_str());

  Result<NormDb> db = Normalize(scenario.db);
  Result<NormQuery> forbidden = NormalizeQuery(scenario.forbidden);
  IODB_CHECK(db.ok());
  IODB_CHECK(forbidden.ok());

  // Decide: does every execution hit the forbidden pattern?
  DisjunctiveOutcome verdict = EntailDisjunctive(db.value(), forbidden.value());
  if (verdict.entailed) {
    std::printf("Every execution violates the constraint: replan needed.\n");
    return 0;
  }

  // Enumerate the valid schedules (countermodels of the pattern).
  std::printf("Valid schedules (first 10 shown):\n");
  long long shown = 0;
  std::set<std::string> seen;  // the enumeration may revisit a schedule
  DisjunctiveOptions options;
  options.on_countermodel = [&](const FiniteModel& model) {
    std::string rendered = model.ToString();
    if (seen.insert(rendered).second) {
      std::printf("  %2lld. %s\n", ++shown, rendered.c_str());
    }
    return shown < 10;
  };
  EntailDisjunctive(db.value(), forbidden.value(), options);
  std::printf("\n(Each line is one linearization of the plan in which no\n"
              "Release precedes an Acquire.)\n");
  return 0;
}
