// Interval reasoning (Section 1's Allen-algebra motivation) on top of
// indefinite order databases: archeological seriation in the style of
// Kendall/Golumbic. Artifact types have unknown use intervals; finding
// two types in one grave proves their intervals share the deposit moment.
// The point algebra answers "what order relations are forced?", the
// interval layer answers "which Allen relations remain possible?".

#include <cstdio>

#include "core/intervals.h"
#include "core/point_algebra.h"
#include "util/strings.h"

int main() {
  using namespace iodb;

  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);

  // Three artifact types with unknown use intervals.
  Interval amphora{"amph_start", "amph_end"};
  Interval bowl{"bowl_start", "bowl_end"};
  Interval cup{"cup_start", "cup_end"};
  for (const Interval* iv : {&amphora, &bowl, &cup}) {
    DeclareInterval(db, *iv);
  }

  // Grave 1 contains amphorae and bowls; grave 2 contains bowls and cups:
  // each deposit moment lies strictly inside both intervals.
  auto bury = [&](const char* grave, const Interval& a, const Interval& b) {
    db.AddOrder(a.start, OrderRel::kLt, grave);
    db.AddOrder(grave, OrderRel::kLt, a.end);
    db.AddOrder(b.start, OrderRel::kLt, grave);
    db.AddOrder(grave, OrderRel::kLt, b.end);
  };
  bury("grave1", amphora, bowl);
  bury("grave2", bowl, cup);
  // Stratigraphy: amphora use ended before cup use began.
  AddAllenConstraint(db, amphora, cup, AllenRelation::kBefore);

  std::printf("Possible Allen relations given the grave evidence:\n");
  auto report = [&](const char* label, const Interval& i, const Interval& j) {
    Result<std::vector<AllenRelation>> possible = PossibleRelations(db, i, j);
    IODB_CHECK(possible.ok());
    std::vector<std::string> names;
    for (AllenRelation r : possible.value()) {
      names.push_back(AllenRelationName(r));
    }
    std::printf("  %-18s {%s}\n", label, Join(names, ", ").c_str());
  };
  report("amphora vs bowl:", amphora, bowl);
  report("bowl vs cup:", bowl, cup);
  report("amphora vs cup:", amphora, cup);

  std::printf("\nForced point relations (the Section 7 point algebra):\n");
  auto point = [&](const char* u, const char* v) {
    Result<PointRelation> r = RelationBetween(db, u, v);
    IODB_CHECK(r.ok());
    std::printf("  %-12s %-2s %s\n", u, r.value().Name(), v);
  };
  point("amph_start", "bowl_end");   // amphora starts before bowl ends
  point("bowl_start", "cup_end");    // bowl starts before cup ends
  point("grave1", "grave2");         // grave 1 predates grave 2
  point("amph_end", "cup_start");    // the stratigraphic fact itself

  std::printf(
      "\nThe seriation conclusion: the bowl period spans the gap — it\n"
      "overlaps both the amphora and the cup periods, and grave 1 is\n"
      "necessarily older than grave 2.\n");
  return 0;
}
