#include "containment/containment.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace iodb {

Result<ContainmentResult> Contained(const RelationalQuery& q1,
                                    const RelationalQuery& q2,
                                    VocabularyPtr vocab,
                                    OrderSemantics semantics,
                                    EngineKind engine, ExecBudget* budget) {
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("containment requires equal head arity");
  }
  for (const std::string& h : q1.head) {
    if (!q1.body.IsVariable(h)) {
      return Status::InvalidArgument("Q1 head '" + h + "' is not a variable");
    }
  }

  // Canonical database of Q1: every variable is frozen into a constant of
  // its sort, constants stay themselves. Order atoms are interned first so
  // order-sort constants are known when facts are added.
  Database db(vocab);
  for (const QueryOrderAtom& atom : q1.body.order_atoms) {
    db.AddOrder(atom.lhs.name, atom.rel, atom.rhs.name);
  }
  for (const QueryInequality& atom : q1.body.inequalities) {
    db.AddNotEqual(atom.lhs.name, atom.rhs.name);
  }
  for (const QueryProperAtom& atom : q1.body.proper_atoms) {
    std::vector<std::string> args;
    for (const QueryTerm& term : atom.args) args.push_back(term.name);
    Status s = db.AddFact(atom.pred, args);
    if (!s.ok()) return s;
  }

  // Q2 with its head variables replaced by the frozen head constants of Q1
  // and its existential variables renamed apart. Existential variables
  // that occur in no atom are dropped: they are vacuous over any database
  // with a nonempty domain of their sort (and their sort is not even
  // determined), so keeping them would wrongly demand witnesses.
  QueryConjunct body = q2.body;
  {
    std::set<std::string> used;
    for (const QueryProperAtom& atom : body.proper_atoms) {
      for (const QueryTerm& term : atom.args) used.insert(term.name);
    }
    for (const QueryOrderAtom& atom : body.order_atoms) {
      used.insert(atom.lhs.name);
      used.insert(atom.rhs.name);
    }
    for (const QueryInequality& atom : body.inequalities) {
      used.insert(atom.lhs.name);
      used.insert(atom.rhs.name);
    }
    std::vector<std::string> kept;
    for (const std::string& v : body.variables) {
      bool is_head = std::find(q2.head.begin(), q2.head.end(), v) !=
                     q2.head.end();
      if (used.contains(v) || is_head) kept.push_back(v);
    }
    body.variables = std::move(kept);
  }
  std::map<std::string, std::string> rename;
  for (size_t i = 0; i < q2.head.size(); ++i) {
    if (q2.body.IsVariable(q2.head[i])) {
      rename[q2.head[i]] = q1.head[i];
    } else if (q2.head[i] != q1.head[i]) {
      // A constant head position must match syntactically to be contained
      // on all databases... unless Q1's head var is constrained; handle by
      // substituting the constant and letting entailment decide.
      rename[q2.head[i]] = q2.head[i];
    }
  }
  int fresh = 0;
  std::vector<std::string> new_vars;
  for (const std::string& v : body.variables) {
    auto it = rename.find(v);
    if (it != rename.end()) continue;  // head variable: now a constant
    std::string nv = "@z" + std::to_string(fresh++);
    rename[v] = nv;
    new_vars.push_back(nv);
  }
  body.variables = new_vars;
  auto apply = [&](QueryTerm& term) {
    auto it = rename.find(term.name);
    if (it != rename.end()) term.name = it->second;
  };
  for (QueryProperAtom& atom : body.proper_atoms) {
    for (QueryTerm& term : atom.args) apply(term);
  }
  for (QueryOrderAtom& atom : body.order_atoms) {
    apply(atom.lhs);
    apply(atom.rhs);
  }
  for (QueryInequality& atom : body.inequalities) {
    apply(atom.lhs);
    apply(atom.rhs);
  }

  Query query(vocab);
  query.AddDisjunct(std::move(body));

  EntailOptions options;
  options.semantics = semantics;
  options.engine = engine;
  Result<EntailResult> entailment = Entails(db, query, options, budget);
  if (!entailment.ok()) return entailment.status();
  ContainmentResult result;
  result.contained = entailment.value().entailed;
  result.entailment = std::move(entailment.value());
  return result;
}

Result<bool> HomomorphismContained(const RelationalQuery& q1,
                                   const RelationalQuery& q2) {
  if (!q1.body.order_atoms.empty() || !q2.body.order_atoms.empty() ||
      !q1.body.inequalities.empty() || !q2.body.inequalities.empty()) {
    return Status::Unsupported(
        "homomorphism containment applies to order-free, inequality-free "
        "queries only (Klug's observation: it fails with inequalities)");
  }
  if (q1.head.size() != q2.head.size()) {
    return Status::InvalidArgument("containment requires equal head arity");
  }

  // Targets: the terms of Q1 (variables frozen + constants).
  std::set<std::string> targets;
  for (const QueryProperAtom& atom : q1.body.proper_atoms) {
    for (const QueryTerm& term : atom.args) targets.insert(term.name);
  }
  for (const std::string& v : q1.body.variables) targets.insert(v);

  // Q1's atom set for O(1) membership.
  std::set<std::pair<std::string, std::vector<std::string>>> q1_atoms;
  for (const QueryProperAtom& atom : q1.body.proper_atoms) {
    std::vector<std::string> args;
    for (const QueryTerm& term : atom.args) args.push_back(term.name);
    q1_atoms.insert({atom.pred, std::move(args)});
  }

  // Forced head mapping.
  std::map<std::string, std::string> mapping;
  for (size_t i = 0; i < q2.head.size(); ++i) {
    if (q2.body.IsVariable(q2.head[i])) {
      auto [it, inserted] = mapping.emplace(q2.head[i], q1.head[i]);
      if (!inserted && it->second != q1.head[i]) return false;
    } else if (q2.head[i] != q1.head[i]) {
      return false;  // constant head position must match syntactically
    }
  }

  // Remaining Q2 variables to map.
  std::vector<std::string> free_vars;
  for (const std::string& v : q2.body.variables) {
    if (!mapping.contains(v)) free_vars.push_back(v);
  }

  auto image = [&](const QueryTerm& term) -> std::optional<std::string> {
    if (q2.body.IsVariable(term.name)) {
      auto it = mapping.find(term.name);
      if (it == mapping.end()) return std::nullopt;
      return it->second;
    }
    return term.name;  // constants map to themselves
  };
  auto atoms_ok = [&]() {
    for (const QueryProperAtom& atom : q2.body.proper_atoms) {
      std::vector<std::string> args;
      bool complete = true;
      for (const QueryTerm& term : atom.args) {
        std::optional<std::string> img = image(term);
        if (!img.has_value()) {
          complete = false;
          break;
        }
        args.push_back(*img);
      }
      if (complete && !q1_atoms.contains({atom.pred, args})) return false;
    }
    return true;
  };

  std::function<bool(size_t)> search = [&](size_t index) -> bool {
    if (!atoms_ok()) return false;
    if (index == free_vars.size()) return true;
    for (const std::string& target : targets) {
      mapping[free_vars[index]] = target;
      if (search(index + 1)) return true;
    }
    mapping.erase(free_vars[index]);
    return false;
  };
  if (!atoms_ok()) return false;
  return search(0);
}

}  // namespace iodb
