// O-containment of relational conjunctive queries with inequalities.
//
// Q1 is O-contained in Q2 if Ans(Q1, M) ⊆ Ans(Q2, M) for every relational
// database M whose order is of type O. Proposition 2.10 makes this
// interreducible with entailment in indefinite order databases:
//   * freeze the body of Q1 into a canonical indefinite database D (its
//     variables become fresh typed constants, order atoms become
//     indefinite order facts), and
//   * ask D |=O ∃z φ2(a, z) with Q2's head variables replaced by the
//     corresponding frozen head constants of Q1.
// Theorem 3.3 then yields Π₂ᵖ-completeness of containment with
// inequalities over Fin, resolving Klug's open problem.
//
// The classical homomorphism test (Chandra–Merlin) is provided as an
// independent baseline; it is sound and complete only for order-free,
// inequality-free conjunctive queries.

#ifndef IODB_CONTAINMENT_CONTAINMENT_H_
#define IODB_CONTAINMENT_CONTAINMENT_H_

#include "containment/relational.h"
#include "core/engine.h"
#include "core/semantics.h"

namespace iodb {

/// Outcome of a containment test.
struct ContainmentResult {
  bool contained = false;
  /// Diagnostics from the underlying entailment check.
  EntailResult entailment;
};

/// Decides O-containment of Q1 in Q2 via the Proposition 2.10 reduction.
/// Heads must have equal length (checked) and compatible sorts (checked
/// during evaluation). Predicates must be declared in `vocab`. `budget`,
/// when non-null, governs the underlying entailment check; on exhaustion
/// the call fails with kDeadlineExceeded / kCancelled.
Result<ContainmentResult> Contained(const RelationalQuery& q1,
                                    const RelationalQuery& q2,
                                    VocabularyPtr vocab,
                                    OrderSemantics semantics,
                                    EngineKind engine = EngineKind::kAuto,
                                    ExecBudget* budget = nullptr);

/// Classical homomorphism containment for order-free, inequality-free
/// conjunctive queries: Q1 ⊆ Q2 iff there is a homomorphism from Q2 to Q1
/// mapping head to head. Fails with kUnsupported if either query has
/// order atoms or inequalities.
Result<bool> HomomorphismContained(const RelationalQuery& q1,
                                   const RelationalQuery& q2);

}  // namespace iodb

#endif  // IODB_CONTAINMENT_CONTAINMENT_H_
