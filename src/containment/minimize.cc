#include "containment/minimize.h"

#include <set>

namespace iodb {

Result<bool> Equivalent(const RelationalQuery& q1, const RelationalQuery& q2,
                        VocabularyPtr vocab, OrderSemantics semantics) {
  Result<ContainmentResult> forward = Contained(q1, q2, vocab, semantics);
  if (!forward.ok()) return forward.status();
  if (!forward.value().contained) return false;
  Result<ContainmentResult> backward = Contained(q2, q1, vocab, semantics);
  if (!backward.ok()) return backward.status();
  return backward.value().contained;
}

namespace {

// Drops existential variables that occur in no atom.
void DropUnusedVariables(RelationalQuery& query, MinimizeStats* stats) {
  std::set<std::string> used(query.head.begin(), query.head.end());
  for (const QueryProperAtom& atom : query.body.proper_atoms) {
    for (const QueryTerm& term : atom.args) used.insert(term.name);
  }
  for (const QueryOrderAtom& atom : query.body.order_atoms) {
    used.insert(atom.lhs.name);
    used.insert(atom.rhs.name);
  }
  for (const QueryInequality& atom : query.body.inequalities) {
    used.insert(atom.lhs.name);
    used.insert(atom.rhs.name);
  }
  std::vector<std::string> kept;
  for (const std::string& v : query.body.variables) {
    if (used.contains(v)) {
      kept.push_back(v);
    } else if (stats != nullptr) {
      ++stats->variables_removed;
    }
  }
  query.body.variables = std::move(kept);
}

}  // namespace

Result<RelationalQuery> MinimizeQuery(const RelationalQuery& query,
                                      VocabularyPtr vocab,
                                      OrderSemantics semantics,
                                      MinimizeStats* stats) {
  RelationalQuery current = query;
  bool changed = true;
  while (changed) {
    changed = false;
    // Try removing each proper atom.
    for (size_t a = 0; a < current.body.proper_atoms.size(); ++a) {
      RelationalQuery candidate = current;
      candidate.body.proper_atoms.erase(candidate.body.proper_atoms.begin() +
                                        static_cast<long>(a));
      if (stats != nullptr) ++stats->containment_checks;
      Result<bool> equivalent =
          Equivalent(current, candidate, vocab, semantics);
      if (!equivalent.ok()) return equivalent.status();
      if (equivalent.value()) {
        current = std::move(candidate);
        if (stats != nullptr) ++stats->proper_atoms_removed;
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Try removing each order atom.
    for (size_t a = 0; a < current.body.order_atoms.size(); ++a) {
      RelationalQuery candidate = current;
      candidate.body.order_atoms.erase(candidate.body.order_atoms.begin() +
                                       static_cast<long>(a));
      if (stats != nullptr) ++stats->containment_checks;
      Result<bool> equivalent =
          Equivalent(current, candidate, vocab, semantics);
      if (!equivalent.ok()) return equivalent.status();
      if (equivalent.value()) {
        current = std::move(candidate);
        if (stats != nullptr) ++stats->order_atoms_removed;
        changed = true;
        break;
      }
    }
  }
  DropUnusedVariables(current, stats);
  return current;
}

}  // namespace iodb
