// Conjunctive query minimization via containment.
//
// Klug's motivation for the containment problem (Section 2): "testing for
// containment allows for the optimization of conjunctive queries by the
// elimination of redundant atoms". This module removes every proper atom
// and order atom whose deletion leaves an equivalent query, using the
// Proposition 2.10 containment test as the equivalence oracle, then drops
// existential variables that no longer occur.

#ifndef IODB_CONTAINMENT_MINIMIZE_H_
#define IODB_CONTAINMENT_MINIMIZE_H_

#include "containment/containment.h"
#include "containment/relational.h"
#include "core/semantics.h"

namespace iodb {

/// Statistics of a minimization run.
struct MinimizeStats {
  int proper_atoms_removed = 0;
  int order_atoms_removed = 0;
  int variables_removed = 0;
  long long containment_checks = 0;
};

/// Returns an equivalent query from which no single atom can be removed
/// without changing the answer set on some database with order of the
/// given type. Head variables are never removed.
Result<RelationalQuery> MinimizeQuery(const RelationalQuery& query,
                                      VocabularyPtr vocab,
                                      OrderSemantics semantics,
                                      MinimizeStats* stats = nullptr);

/// Equivalence of two queries (mutual containment).
Result<bool> Equivalent(const RelationalQuery& q1, const RelationalQuery& q2,
                        VocabularyPtr vocab, OrderSemantics semantics);

}  // namespace iodb

#endif  // IODB_CONTAINMENT_MINIMIZE_H_
