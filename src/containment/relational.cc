#include "containment/relational.h"

#include <algorithm>
#include <functional>
#include <memory>

#include "core/model_check.h"

namespace iodb {
namespace {

// Locates the variable Term (sort + id) of `name` in a normalized
// conjunct; fails if the variable vanished (it can only vanish if it was
// merged — the canonical representative keeps one of the names).
Result<Term> FindVar(const NormConjunct& conjunct, const std::string& name) {
  for (int t = 0; t < conjunct.num_order_vars(); ++t) {
    if (conjunct.order_var_names[t] == name) return Term{Sort::kOrder, t};
  }
  for (int x = 0; x < conjunct.num_object_vars(); ++x) {
    if (conjunct.object_var_names[x] == name) return Term{Sort::kObject, x};
  }
  return Status::InvalidArgument("head variable '" + name +
                                 "' not found in normalized body");
}

}  // namespace

Result<std::vector<AnswerTuple>> AnswerSet(const FiniteModel& model,
                                           const RelationalQuery& query,
                                           const Vocabulary& vocab) {
  // Normalize the body as a one-disjunct query.
  auto vocab_ptr = std::make_shared<Vocabulary>(vocab);
  Query q(vocab_ptr);
  q.AddDisjunct(query.body);
  Result<NormQuery> norm = NormalizeQuery(q);
  if (!norm.ok()) return norm.status();
  if (norm.value().disjuncts.empty()) {
    return std::vector<AnswerTuple>{};  // inconsistent body: empty answers
  }
  const NormConjunct& body = norm.value().disjuncts[0];

  // Head variable merging (e.g. head x <= y <= x) is resolved by looking
  // up the canonical representative: merged heads share a Term, which is
  // exactly the right semantics (they must take equal values).
  std::vector<Term> head_vars;
  for (const std::string& name : query.head) {
    // The canonical name after N1-merging is the name of some member of
    // the merged class; scan for a representative containing `name` by
    // first trying the exact name, then any variable the normalizer may
    // have chosen for the merged class.
    Result<Term> term = FindVar(body, name);
    if (!term.ok()) {
      // Merged away: find it through the original conjunct's order atoms
      // is overkill here; re-normalization keeps the lexicographically
      // first-seen name, so report the error to the caller.
      return term.status();
    }
    head_vars.push_back(term.value());
  }

  // Enumerate head assignments and test satisfaction with pins.
  std::vector<AnswerTuple> answers;
  std::vector<FixedVar> fixed(head_vars.size());
  for (size_t i = 0; i < head_vars.size(); ++i) fixed[i].var = head_vars[i];

  std::function<void(size_t)> enumerate = [&](size_t index) {
    if (index == head_vars.size()) {
      if (SatisfiesWithFixed(model, body, fixed)) {
        AnswerTuple tuple;
        for (size_t i = 0; i < head_vars.size(); ++i) {
          tuple.push_back({head_vars[i].sort, fixed[i].value});
        }
        answers.push_back(std::move(tuple));
      }
      return;
    }
    int domain = head_vars[index].sort == Sort::kOrder
                     ? model.num_points
                     : static_cast<int>(model.object_names.size());
    for (int value = 0; value < domain; ++value) {
      fixed[index].value = value;
      enumerate(index + 1);
    }
  };
  enumerate(0);

  std::sort(answers.begin(), answers.end(),
            [](const AnswerTuple& a, const AnswerTuple& b) {
              for (size_t i = 0; i < a.size(); ++i) {
                if (a[i].id != b[i].id) return a[i].id < b[i].id;
              }
              return false;
            });
  answers.erase(std::unique(answers.begin(), answers.end()), answers.end());
  return answers;
}

}  // namespace iodb
