// Relational conjunctive queries with inequalities (Section 2, Klug).
//
// A relational query Q = {x : ∃y φ(x, y)} has distinguished (head)
// variables x and existential variables y, with φ a conjunction of proper
// and order atoms. Relational databases with order are finite structures
// whose order relation is a linear order — i.e. exactly the finite models
// of core/model.h. Answer sets are computed by homomorphism search.

#ifndef IODB_CONTAINMENT_RELATIONAL_H_
#define IODB_CONTAINMENT_RELATIONAL_H_

#include <string>
#include <vector>

#include "core/model.h"
#include "core/query.h"
#include "core/types.h"

namespace iodb {

/// A relational conjunctive query with inequalities: a conjunct plus a
/// list of distinguished variables (names declared in the conjunct).
struct RelationalQuery {
  QueryConjunct body;
  std::vector<std::string> head;  // subset of body.variables
};

/// One answer tuple: values per head variable (object id or point id,
/// sort-tagged).
using AnswerTuple = std::vector<Term>;

/// Computes the answer set of `query` in `model` (all head assignments a
/// with model |= ∃y φ(a, y)). Sorted and deduplicated. Fails on malformed
/// queries (unknown predicates, sort conflicts).
Result<std::vector<AnswerTuple>> AnswerSet(const FiniteModel& model,
                                           const RelationalQuery& query,
                                           const Vocabulary& vocab);

}  // namespace iodb

#endif  // IODB_CONTAINMENT_RELATIONAL_H_
