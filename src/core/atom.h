// Atom representations shared by databases and queries.
//
// The language has two kinds of atomic formulae (Section 2):
//   1. proper atoms P(a1, ..., an) over typed terms, and
//   2. order atoms u < v, u <= v (and, for Section 7, u != v) over
//      order-sort terms.

#ifndef IODB_CORE_ATOM_H_
#define IODB_CORE_ATOM_H_

#include <string>
#include <vector>

#include "graph/digraph.h"
#include "core/types.h"

namespace iodb {

/// A resolved term: a sort plus an index into the owner's table for that
/// sort. In a `Database` the index identifies a constant; in normalized
/// databases order-sort indices identify canonical points; in normalized
/// queries indices identify variables.
struct Term {
  Sort sort = Sort::kObject;
  int id = 0;

  friend bool operator==(const Term&, const Term&) = default;
};

/// A proper atom over resolved terms.
struct ProperAtom {
  int pred = 0;
  std::vector<Term> args;

  friend bool operator==(const ProperAtom&, const ProperAtom&) = default;
};

/// An order atom `lhs rel rhs` over order-sort indices.
struct OrderAtom {
  int lhs = 0;
  int rhs = 0;
  OrderRel rel = OrderRel::kLe;

  friend bool operator==(const OrderAtom&, const OrderAtom&) = default;
};

/// An inequality atom `lhs != rhs` over order-sort indices (Section 7).
struct InequalityAtom {
  int lhs = 0;
  int rhs = 0;

  friend bool operator==(const InequalityAtom&, const InequalityAtom&) =
      default;
};

}  // namespace iodb

#endif  // IODB_CORE_ATOM_H_
