// Atom representations shared by databases and queries.
//
// The language has two kinds of atomic formulae (Section 2):
//   1. proper atoms P(a1, ..., an) over typed terms, and
//   2. order atoms u < v, u <= v (and, for Section 7, u != v) over
//      order-sort terms.

#ifndef IODB_CORE_ATOM_H_
#define IODB_CORE_ATOM_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "core/types.h"

namespace iodb {

/// A resolved term: a sort plus an index into the owner's table for that
/// sort. In a `Database` the index identifies a constant; in normalized
/// databases order-sort indices identify canonical points; in normalized
/// queries indices identify variables.
struct Term {
  Sort sort = Sort::kObject;
  int id = 0;

  friend bool operator==(const Term&, const Term&) = default;
};

/// Argument list of a proper atom, with inline storage for the common
/// arities. Monadic and binary predicates dominate every workload in
/// this domain (the paper's language is mostly monadic-order), so atom
/// construction — the inner loop of database restore from binary
/// snapshots and of countermodel assembly — stays malloc-free for
/// arity <= 2 and spills to the heap only beyond. The API is the
/// read/append subset of std::vector<Term> the codebase uses.
class TermVec {
 public:
  TermVec() = default;
  TermVec(std::initializer_list<Term> terms) {
    reserve(terms.size());
    for (const Term& term : terms) push_back(term);
  }
  explicit TermVec(const std::vector<Term>& terms) {
    reserve(terms.size());
    for (const Term& term : terms) push_back(term);
  }

  TermVec(const TermVec&) = default;
  TermVec& operator=(const TermVec&) = default;
  // Moves must keep the moved-from object consistent: a vector move
  // empties spill_, so size_ has to follow it to zero or data()/end()
  // would read past the inline array on the source.
  TermVec(TermVec&& other) noexcept
      : size_(other.size_), spill_(std::move(other.spill_)) {
    for (size_t i = 0; i < kInline; ++i) inline_[i] = other.inline_[i];
    other.size_ = 0;
    other.spill_.clear();
  }
  TermVec& operator=(TermVec&& other) noexcept {
    if (this == &other) return *this;
    for (size_t i = 0; i < kInline; ++i) inline_[i] = other.inline_[i];
    size_ = other.size_;
    spill_ = std::move(other.spill_);
    other.size_ = 0;
    other.spill_.clear();
    return *this;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pre-sizes the spill buffer when `n` exceeds the inline capacity
  /// (no-op otherwise).
  void reserve(size_t n) {
    if (n > kInline) {
      Spill();
      spill_.reserve(n);
    }
  }

  void push_back(const Term& term) {
    if (!spill_.empty()) {
      spill_.push_back(term);
    } else if (size_ < kInline) {
      inline_[size_] = term;
    } else {
      Spill();
      spill_.push_back(term);
    }
    ++size_;
  }

  Term* begin() { return data(); }
  Term* end() { return data() + size_; }
  const Term* begin() const { return data(); }
  const Term* end() const { return data() + size_; }

  Term& operator[](size_t i) { return data()[i]; }
  const Term& operator[](size_t i) const { return data()[i]; }

  friend bool operator==(const TermVec& a, const TermVec& b) {
    if (a.size_ != b.size_) return false;
    for (size_t i = 0; i < a.size_; ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  static constexpr size_t kInline = 2;

  Term* data() { return spill_.empty() ? inline_ : spill_.data(); }
  const Term* data() const {
    return spill_.empty() ? inline_ : spill_.data();
  }
  // Moves the inline elements into the spill buffer; afterwards every
  // element lives in spill_ (the invariant data() relies on).
  void Spill() {
    if (spill_.empty()) {
      spill_.assign(inline_, inline_ + size_);
    }
  }

  Term inline_[kInline] = {};
  size_t size_ = 0;
  std::vector<Term> spill_;
};

/// A proper atom over resolved terms.
struct ProperAtom {
  int pred = 0;
  TermVec args;

  friend bool operator==(const ProperAtom&, const ProperAtom&) = default;
};

/// An order atom `lhs rel rhs` over order-sort indices.
struct OrderAtom {
  int lhs = 0;
  int rhs = 0;
  OrderRel rel = OrderRel::kLe;

  friend bool operator==(const OrderAtom&, const OrderAtom&) = default;
};

/// An inequality atom `lhs != rhs` over order-sort indices (Section 7).
struct InequalityAtom {
  int lhs = 0;
  int rhs = 0;

  friend bool operator==(const InequalityAtom&, const InequalityAtom&) =
      default;
};

}  // namespace iodb

#endif  // IODB_CORE_ATOM_H_
