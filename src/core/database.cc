#include "core/database.h"

#include <algorithm>
#include <atomic>

#include "graph/scc.h"
#include "graph/width.h"
#include "util/strings.h"

namespace iodb {

namespace {

std::atomic<uint64_t>& DatabaseUidCounter() {
  static std::atomic<uint64_t> next{0};
  return next;
}

uint64_t NextDatabaseUid() {
  return DatabaseUidCounter().fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Database::Database(VocabularyPtr vocab)
    : vocab_(std::move(vocab)), uid_(NextDatabaseUid()) {
  IODB_CHECK(vocab_ != nullptr);
}

Database::Database(const Database& other)
    : vocab_(other.vocab_),
      uid_(NextDatabaseUid()),
      revision_(other.revision_),
      object_names_(other.object_names_),
      order_names_(other.order_names_),
      constant_index_(other.constant_index_),
      proper_atoms_(other.proper_atoms_),
      order_atoms_(other.order_atoms_),
      inequalities_(other.inequalities_),
      norm_cache_(other.norm_cache_),
      norm_cache_revision_(other.norm_cache_revision_),
      stats_slot_(other.stats_slot_) {}

Database& Database::operator=(const Database& other) {
  if (this == &other) return *this;
  vocab_ = other.vocab_;
  uid_ = NextDatabaseUid();
  revision_ = other.revision_;
  object_names_ = other.object_names_;
  order_names_ = other.order_names_;
  constant_index_ = other.constant_index_;
  proper_atoms_ = other.proper_atoms_;
  order_atoms_ = other.order_atoms_;
  inequalities_ = other.inequalities_;
  norm_cache_ = other.norm_cache_;
  norm_cache_revision_ = other.norm_cache_revision_;
  stats_slot_ = other.stats_slot_;
  return *this;
}

Database::Database(Database&& other) noexcept
    : vocab_(std::move(other.vocab_)),
      uid_(other.uid_),
      revision_(other.revision_),
      object_names_(std::move(other.object_names_)),
      order_names_(std::move(other.order_names_)),
      constant_index_(std::move(other.constant_index_)),
      proper_atoms_(std::move(other.proper_atoms_)),
      order_atoms_(std::move(other.order_atoms_)),
      inequalities_(std::move(other.inequalities_)),
      norm_cache_(std::move(other.norm_cache_)),
      norm_cache_revision_(other.norm_cache_revision_),
      stats_slot_(std::move(other.stats_slot_)) {
  // Re-identify the hollowed-out source so external (uid, revision) cache
  // keys can never match its new (empty) content.
  other.uid_ = NextDatabaseUid();
  other.norm_cache_.reset();
  other.stats_slot_ = {};
}

Database& Database::operator=(Database&& other) noexcept {
  if (this == &other) return *this;
  vocab_ = std::move(other.vocab_);
  uid_ = other.uid_;
  revision_ = other.revision_;
  object_names_ = std::move(other.object_names_);
  order_names_ = std::move(other.order_names_);
  constant_index_ = std::move(other.constant_index_);
  proper_atoms_ = std::move(other.proper_atoms_);
  order_atoms_ = std::move(other.order_atoms_);
  inequalities_ = std::move(other.inequalities_);
  norm_cache_ = std::move(other.norm_cache_);
  norm_cache_revision_ = other.norm_cache_revision_;
  stats_slot_ = std::move(other.stats_slot_);
  other.uid_ = NextDatabaseUid();
  other.norm_cache_.reset();
  other.stats_slot_ = {};
  return *this;
}

int Database::GetOrAddConstant(const std::string& name, Sort sort) {
  auto it = constant_index_.find(name);
  if (it != constant_index_.end()) {
    IODB_CHECK(it->second.first == sort);  // one name, one typed constant
    return it->second.second;
  }
  std::vector<std::string>& table =
      sort == Sort::kObject ? object_names_ : order_names_;
  int id = static_cast<int>(table.size());
  table.push_back(name);
  constant_index_.emplace(name, std::make_pair(sort, id));
  BumpRevision();
  return id;
}

std::optional<int> Database::FindConstant(const std::string& name,
                                          Sort sort) const {
  auto it = constant_index_.find(name);
  if (it == constant_index_.end() || it->second.first != sort) {
    return std::nullopt;
  }
  return it->second.second;
}

void Database::AddProperAtom(int pred, std::vector<Term> args) {
  const PredicateInfo& info = vocab_->predicate(pred);
  IODB_CHECK_EQ(static_cast<int>(args.size()), info.arity());
  for (int i = 0; i < info.arity(); ++i) {
    IODB_CHECK(args[i].sort == info.arg_sorts[i]);
    int table_size = args[i].sort == Sort::kObject ? num_object_constants()
                                                   : num_order_constants();
    IODB_CHECK_GE(args[i].id, 0);
    IODB_CHECK_LT(args[i].id, table_size);
  }
  proper_atoms_.push_back({pred, TermVec(args)});
  BumpRevision();
}

Status Database::AddFact(const std::string& pred_name,
                         const std::vector<std::string>& constant_names) {
  // Infer argument sorts: a name already interned keeps its sort; fresh
  // names default to the predicate's declared sort if the predicate exists,
  // else to object sort.
  std::optional<int> existing = vocab_->FindPredicate(pred_name);
  std::vector<Sort> sorts;
  sorts.reserve(constant_names.size());
  for (size_t i = 0; i < constant_names.size(); ++i) {
    auto it = constant_index_.find(constant_names[i]);
    if (it != constant_index_.end()) {
      sorts.push_back(it->second.first);
    } else if (existing.has_value() &&
               i < static_cast<size_t>(vocab_->predicate(*existing).arity())) {
      sorts.push_back(vocab_->predicate(*existing).arg_sorts[i]);
    } else {
      sorts.push_back(Sort::kObject);
    }
  }
  Result<int> pred = vocab_->GetOrAddPredicate(pred_name, sorts);
  if (!pred.ok()) return pred.status();
  const PredicateInfo& info = vocab_->predicate(pred.value());
  if (info.arity() != static_cast<int>(constant_names.size())) {
    return Status::InvalidArgument("arity mismatch for '" + pred_name + "'");
  }
  std::vector<Term> args;
  args.reserve(constant_names.size());
  for (size_t i = 0; i < constant_names.size(); ++i) {
    Sort sort = info.arg_sorts[i];
    auto it = constant_index_.find(constant_names[i]);
    if (it != constant_index_.end() && it->second.first != sort) {
      return Status::InvalidArgument("constant '" + constant_names[i] +
                                     "' used with conflicting sorts");
    }
    args.push_back({sort, GetOrAddConstant(constant_names[i], sort)});
  }
  proper_atoms_.push_back({pred.value(), TermVec(args)});
  BumpRevision();
  return Status::Ok();
}

void Database::AddOrderAtom(int u, int v, OrderRel rel) {
  IODB_CHECK_GE(u, 0);
  IODB_CHECK_LT(u, num_order_constants());
  IODB_CHECK_GE(v, 0);
  IODB_CHECK_LT(v, num_order_constants());
  order_atoms_.push_back({u, v, rel});
  BumpRevision();
}

void Database::AddOrder(const std::string& u, OrderRel rel,
                        const std::string& v) {
  int uid = GetOrAddConstant(u, Sort::kOrder);
  int vid = GetOrAddConstant(v, Sort::kOrder);
  AddOrderAtom(uid, vid, rel);
}

void Database::AddInequality(int u, int v) {
  IODB_CHECK_GE(u, 0);
  IODB_CHECK_LT(u, num_order_constants());
  IODB_CHECK_GE(v, 0);
  IODB_CHECK_LT(v, num_order_constants());
  inequalities_.push_back({u, v});
  BumpRevision();
}

void Database::AddNotEqual(const std::string& u, const std::string& v) {
  int uid = GetOrAddConstant(u, Sort::kOrder);
  int vid = GetOrAddConstant(v, Sort::kOrder);
  AddInequality(uid, vid);
}

void Database::ReserveAtoms(size_t proper_atoms, size_t order_atoms,
                            size_t inequalities) {
  proper_atoms_.reserve(proper_atoms_.size() + proper_atoms);
  order_atoms_.reserve(order_atoms_.size() + order_atoms);
  inequalities_.reserve(inequalities_.size() + inequalities);
}

Status Database::RestoreConstantTables(
    std::vector<std::string> object_names,
    std::vector<std::string> order_names) {
  IODB_CHECK_EQ(num_object_constants(), 0);
  IODB_CHECK_EQ(num_order_constants(), 0);
  object_names_ = std::move(object_names);
  order_names_ = std::move(order_names);
  constant_index_.reserve(object_names_.size() + order_names_.size());
  for (size_t sort = 0; sort < 2; ++sort) {
    const std::vector<std::string>& table =
        sort == 0 ? object_names_ : order_names_;
    for (size_t i = 0; i < table.size(); ++i) {
      auto [it, inserted] = constant_index_.emplace(
          table[i], std::make_pair(static_cast<Sort>(sort),
                                   static_cast<int>(i)));
      if (!inserted) {
        // Build the message before the rollback: clear() frees the
        // node `it` points into.
        Status status = Status::InvalidArgument("duplicate constant name '" +
                                                it->first + "'");
        // Roll the half-built tables back so the database stays usable.
        object_names_.clear();
        order_names_.clear();
        constant_index_.clear();
        return status;
      }
    }
  }
  revision_ += object_names_.size() + order_names_.size();
  return Status::Ok();
}

void Database::AppendFactSegment(int pred, const int* flat_args,
                                 size_t count) {
  const PredicateInfo& info = vocab_->predicate(pred);
  const size_t arity = static_cast<size_t>(info.arity());
  // One range-validation pass per (segment, argument position) instead
  // of per fact: same invariant AddProperAtom enforces, hoisted.
  for (size_t a = 0; a < arity; ++a) {
    const int limit = info.arg_sorts[a] == Sort::kObject
                          ? num_object_constants()
                          : num_order_constants();
    for (size_t t = 0; t < count; ++t) {
      const int id = flat_args[t * arity + a];
      IODB_CHECK_GE(id, 0);
      IODB_CHECK_LT(id, limit);
    }
  }
  proper_atoms_.reserve(proper_atoms_.size() + count);
  for (size_t t = 0; t < count; ++t) {
    TermVec args;
    args.reserve(arity);
    for (size_t a = 0; a < arity; ++a) {
      args.push_back({info.arg_sorts[a], flat_args[t * arity + a]});
    }
    proper_atoms_.push_back({pred, std::move(args)});
  }
  revision_ += count;  // one bump per fact, as repeated AddProperAtom
}

Database Database::ForkNextVersion() const {
  Database fork(*this);  // fresh uid, shares the memoized NormView
  fork.uid_ = uid_;      // ...which the original identity reclaims
  return fork;
}

void Database::RestoreIdentity(uint64_t uid, uint64_t revision) {
  uid_ = uid;
  revision_ = revision;
  norm_cache_.reset();
  norm_cache_revision_ = revision;
  stats_slot_ = {};  // the storage layer re-installs persisted stats after
  std::atomic<uint64_t>& counter = DatabaseUidCounter();
  uint64_t seen = counter.load(std::memory_order_relaxed);
  while (seen < uid &&
         !counter.compare_exchange_weak(seen, uid,
                                        std::memory_order_relaxed)) {
  }
}

Result<const NormDb*> Database::NormView() const {
  if (norm_cache_ == nullptr || norm_cache_revision_ != revision_) {
    // Hand the outgoing view's order context to the fresh view so the
    // reachability index can be grown across an append instead of being
    // rebuilt (see NormDb::prev_order_context).
    std::shared_ptr<const void> prev_context;
    if (norm_cache_ != nullptr && norm_cache_->ok()) {
      prev_context = norm_cache_->value().order_context_cache;
    }
    norm_cache_ = std::make_shared<const Result<NormDb>>(Normalize(*this));
    norm_cache_revision_ = revision_;
    ++norm_view_computations_;
    if (norm_cache_->ok()) {
      norm_cache_->value().prev_order_context = std::move(prev_context);
    }
  }
  if (!norm_cache_->ok()) return norm_cache_->status();
  return &norm_cache_->value();
}

std::string NormDb::PointName(int p) const {
  return Join(point_members[p], "=");
}

bool NormDb::OrderFactsAreMonadic() const {
  for (const ProperAtom& atom : other_atoms) {
    for (const Term& term : atom.args) {
      if (term.sort == Sort::kOrder) return false;
    }
  }
  return true;
}

int NormDb::SizeAtoms() const {
  int count = dag.num_edges() + static_cast<int>(other_atoms.size()) +
              static_cast<int>(inequalities.size());
  for (const PredSet& label : labels) count += label.Count();
  return count;
}

Result<NormDb> Normalize(const Database& db) {
  const int n = db.num_order_constants();

  // Build the raw order graph over constants.
  Digraph raw(n);
  for (const OrderAtom& atom : db.order_atoms()) {
    raw.AddEdge(atom.lhs, atom.rhs, atom.rel);
  }

  // Rule N1: strongly connected constants are identified. Cycles are only
  // consistent when every edge inside the component is "<=".
  SccResult scc = StronglyConnectedComponents(raw);
  for (const OrderAtom& atom : db.order_atoms()) {
    if (scc.component[atom.lhs] == scc.component[atom.rhs] &&
        atom.rel == OrderRel::kLt) {
      return Status::Inconsistent(
          "order atoms entail " + db.order_name(atom.lhs) + " < " +
          db.order_name(atom.rhs) + " inside an equality cycle");
    }
  }

  NormDb norm;
  norm.vocab = db.vocab();
  norm.object_names.reserve(db.num_object_constants());
  for (int i = 0; i < db.num_object_constants(); ++i) {
    norm.object_names.push_back(db.object_name(i));
  }

  // Components become points. Renumber them in first-seen order so point
  // ids are stable with respect to the input.
  std::vector<int> point_of_component(scc.num_components, -1);
  norm.point_of_constant.resize(n);
  for (int c = 0; c < n; ++c) {
    int comp = scc.component[c];
    if (point_of_component[comp] == -1) {
      point_of_component[comp] = static_cast<int>(norm.point_members.size());
      norm.point_members.emplace_back();
    }
    int point = point_of_component[comp];
    norm.point_of_constant[c] = point;
    norm.point_members[point].push_back(db.order_name(c));
  }
  const int num_points = static_cast<int>(norm.point_members.size());
  norm.dag = Digraph(num_points);
  norm.labels.assign(num_points,
                     PredSet(norm.vocab->num_predicates()));

  // Deduplicate edges; "<" dominates "<=". Rule N2 (u <= u) drops here.
  std::unordered_map<int64_t, OrderRel> strongest;
  for (const OrderAtom& atom : db.order_atoms()) {
    int u = norm.point_of_constant[atom.lhs];
    int v = norm.point_of_constant[atom.rhs];
    if (u == v) continue;  // internal to a merged component: all "<="
    int64_t key = static_cast<int64_t>(u) * num_points + v;
    auto [it, inserted] = strongest.emplace(key, atom.rel);
    if (!inserted && atom.rel == OrderRel::kLt) it->second = OrderRel::kLt;
  }
  // Insertion order of the map is unspecified; emit edges sorted by key so
  // normalization is deterministic.
  std::vector<std::pair<int64_t, OrderRel>> sorted_edges(strongest.begin(),
                                                         strongest.end());
  std::sort(sorted_edges.begin(), sorted_edges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [key, rel] : sorted_edges) {
    norm.dag.AddEdge(static_cast<int>(key / num_points),
                     static_cast<int>(key % num_points), rel);
  }

  // Facts: monadic-order facts become labels; everything else keeps its
  // atom shape with order constants remapped to points.
  for (const ProperAtom& atom : db.proper_atoms()) {
    const PredicateInfo& info = norm.vocab->predicate(atom.pred);
    if (info.IsMonadicOrder()) {
      norm.labels[norm.point_of_constant[atom.args[0].id]].Add(atom.pred);
      continue;
    }
    ProperAtom mapped = atom;
    for (Term& term : mapped.args) {
      if (term.sort == Sort::kOrder) {
        term.id = norm.point_of_constant[term.id];
      }
    }
    // Deduplicate exact repeats.
    if (std::find(norm.other_atoms.begin(), norm.other_atoms.end(), mapped) ==
        norm.other_atoms.end()) {
      norm.other_atoms.push_back(std::move(mapped));
    }
  }

  // Inequalities over points; a collapsed pair is inconsistent.
  for (const InequalityAtom& atom : db.inequalities()) {
    int u = norm.point_of_constant[atom.lhs];
    int v = norm.point_of_constant[atom.rhs];
    if (u == v) {
      return Status::Inconsistent("inequality " + db.order_name(atom.lhs) +
                                  " != " + db.order_name(atom.rhs) +
                                  " contradicts entailed equality");
    }
    auto pair = std::minmax(u, v);
    std::pair<int, int> entry{pair.first, pair.second};
    if (std::find(norm.inequalities.begin(), norm.inequalities.end(), entry) ==
        norm.inequalities.end()) {
      norm.inequalities.push_back(entry);
    }
  }

  // The condensation of an SCC decomposition is acyclic by construction,
  // but assert it in debug spirit: a cycle here would be a bug.
  IODB_CHECK(!HasCycle(norm.dag));
  return norm;
}

int Width(const NormDb& db) { return DagWidth(db.dag); }

}  // namespace iodb
