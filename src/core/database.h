// Indefinite order databases (Section 2 of the paper).
//
// A database is a finite set of ground proper atoms plus order atoms
// (u < v, u <= v, optionally u != v) over "order constants" — null-like
// values denoting unknown points of a linearly ordered domain.
//
// `Database` is the mutable fact store. `NormDb` is the normalized view
// used by all engines: order constants that are forced equal by rule N1
// (cycles of "<=" atoms) are merged into canonical *points*, trivial atoms
// are dropped (rule N2), the remaining order atoms form a dag with deduped
// edges ("<" dominates "<="), and monadic-order facts become per-point
// label sets.

#ifndef IODB_CORE_DATABASE_H_
#define IODB_CORE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/atom.h"
#include "core/types.h"
#include "graph/digraph.h"
#include "graph/topo.h"
#include "util/status.h"

namespace iodb {

struct NormDb;

/// Mutable indefinite order database.
///
/// The database memoizes its normalized view (see NormView): repeated
/// evaluations of prepared queries against the same unmutated database
/// skip re-normalization. Copies receive a fresh identity (uid) so caches
/// keyed by (uid, revision) never confuse two objects.
class Database {
 public:
  explicit Database(VocabularyPtr vocab);

  Database(const Database& other);
  Database& operator=(const Database& other);
  Database(Database&& other) noexcept;
  Database& operator=(Database&& other) noexcept;

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Identity of this database object. Unique per live object: copies get
  /// a fresh uid, moves transfer it (and re-identify the source).
  uint64_t uid() const { return uid_; }

  /// Mutation counter: bumped by every constant/atom addition. A (uid,
  /// revision) pair identifies immutable database content, so it can key
  /// external caches of derived structures.
  uint64_t revision() const { return revision_; }

  /// Interns the constant `name` with the given sort; returns its id within
  /// that sort. Aborts if `name` already exists with the other sort (a
  /// name denotes one typed constant).
  int GetOrAddConstant(const std::string& name, Sort sort);

  /// Looks up a constant id; nullopt if absent or of the other sort.
  std::optional<int> FindConstant(const std::string& name, Sort sort) const;

  int num_object_constants() const {
    return static_cast<int>(object_names_.size());
  }
  int num_order_constants() const {
    return static_cast<int>(order_names_.size());
  }
  const std::string& object_name(int id) const { return object_names_[id]; }
  const std::string& order_name(int id) const { return order_names_[id]; }

  /// Adds a ground proper atom; argument sorts must match the predicate
  /// signature (checked).
  void AddProperAtom(int pred, std::vector<Term> args);

  /// Convenience: adds `pred_name(constants...)`, registering the predicate
  /// (inferring sorts from existing constants: known order constants are
  /// order-sort, everything else object-sort) and interning constants.
  /// Fails if `pred_name` exists with an incompatible signature.
  Status AddFact(const std::string& pred_name,
                 const std::vector<std::string>& constant_names);

  /// Adds the order atom `u rel v` by order-constant id.
  void AddOrderAtom(int u, int v, OrderRel rel);

  /// Convenience: interns the names as order constants and adds the atom.
  void AddOrder(const std::string& u, OrderRel rel, const std::string& v);

  /// Adds the inequality `u != v` by order-constant id (Section 7).
  void AddInequality(int u, int v);

  /// Convenience variant of AddInequality by name.
  void AddNotEqual(const std::string& u, const std::string& v);

  const std::vector<ProperAtom>& proper_atoms() const { return proper_atoms_; }
  const std::vector<OrderAtom>& order_atoms() const { return order_atoms_; }
  const std::vector<InequalityAtom>& inequalities() const {
    return inequalities_;
  }

  /// |D|: the total number of atoms.
  int SizeAtoms() const {
    return static_cast<int>(proper_atoms_.size() + order_atoms_.size() +
                            inequalities_.size());
  }

  /// Memoized normalized view: Normalize(*this), recomputed only when the
  /// database has been mutated since the last call. The returned pointer
  /// (and any references into the view) stays valid until the next
  /// mutation. Normalization failures (inconsistent order atoms) are
  /// memoized too. NOT thread-safe: the lazy fill mutates cache state
  /// under const, so concurrent NormView/Evaluate calls on one Database
  /// need external synchronization.
  Result<const NormDb*> NormView() const;

  /// Number of times NormView() actually ran Normalize (test/bench hook
  /// for asserting cache reuse).
  long long norm_view_computations() const { return norm_view_computations_; }

  /// Storage-layer hook: pre-sizes the atom tables for a bulk restore.
  void ReserveAtoms(size_t proper_atoms, size_t order_atoms,
                    size_t inequalities);

  /// Storage-layer hook: restores both constant tables wholesale on a
  /// database that has no constants yet (ids are the vector indices —
  /// the persisted interning order). Equivalent to GetOrAddConstant per
  /// name (including revision bumps) minus the per-call overhead; a
  /// duplicate name across or within the tables is a Status error, so
  /// corrupt input never trips an internal invariant.
  Status RestoreConstantTables(std::vector<std::string> object_names,
                               std::vector<std::string> order_names);

  /// Storage-layer hook: bulk-appends one predicate-bucketed fact
  /// segment — `count` ground facts of `pred` with argument ids
  /// flattened in signature order (the snapshot segment layout).
  /// Equivalent to `count` AddProperAtom calls (including one revision
  /// bump each) without per-call overhead; ids are range-checked per
  /// segment, so callers decoding untrusted bytes must validate first.
  void AppendFactSegment(int pred, const int* flat_args, size_t count);

  /// Storage-layer hook: adopts a persisted (uid, revision) identity, so
  /// caches keyed by (uid, revision) recognize a database restored from a
  /// snapshot as the same content they saw before the restart. The
  /// process-wide uid counter is advanced past `uid` (fresh databases can
  /// never collide with a restored identity) and the memoized NormView is
  /// dropped. Only the storage layer should call this, and only right
  /// after reconstructing the content the identity describes.
  void RestoreIdentity(uint64_t uid, uint64_t revision);

  /// Type-erased memo slot for the statistics layer (src/stats): one
  /// entry describing this database's content at `revision`. The core
  /// layer only stores it; iodb::stats owns the concrete type. Same
  /// thread contract as NormView: the slot fills lazily under const, so
  /// the first fill must not race concurrent readers (the service
  /// pre-materializes it on the writer before publishing a version).
  struct StatsSlot {
    std::shared_ptr<const void> value;
    /// The revision `value` describes; a mismatch means stale.
    uint64_t revision = 0;
    /// True if the entry was installed from persisted snapshot bytes
    /// (vs rebuilt in-process) — surfaced by `iodb_serve INFO`.
    bool from_snapshot = false;
  };
  const StatsSlot& stats_slot() const { return stats_slot_; }
  void set_stats_slot(std::shared_ptr<const void> value, uint64_t revision,
                      bool from_snapshot) const {
    stats_slot_ = {std::move(value), revision, from_snapshot};
  }

  /// Serving-layer hook: a copy that KEEPS this database's uid (unlike the
  /// copy constructor, which mints a fresh one). The fork is the next
  /// version of the same logical database: mutating it bumps the shared
  /// revision line, and because it inherits the memoized NormView it also
  /// inherits the previous version's enumeration context, so the
  /// reachability index grows incrementally across published versions
  /// instead of rebuilding. The caller must retire the original from
  /// further mutation (two live mutable objects with one uid would fork
  /// the revision line) — the MVCC publish path does so by construction,
  /// as the original is frozen behind shared_ptr<const Database>.
  Database ForkNextVersion() const;

 private:
  void BumpRevision() { ++revision_; }

  VocabularyPtr vocab_;
  uint64_t uid_;
  uint64_t revision_ = 0;
  std::vector<std::string> object_names_;
  std::vector<std::string> order_names_;
  // name -> (sort, id)
  std::unordered_map<std::string, std::pair<Sort, int>> constant_index_;
  std::vector<ProperAtom> proper_atoms_;
  std::vector<OrderAtom> order_atoms_;
  std::vector<InequalityAtom> inequalities_;

  // NormView memoization. shared_ptr so database copies share the cached
  // view until either side mutates (each object replaces only its own
  // pointer). The revision stamp says which content the view reflects.
  mutable std::shared_ptr<const Result<NormDb>> norm_cache_;
  mutable uint64_t norm_cache_revision_ = 0;
  mutable long long norm_view_computations_ = 0;
  // Statistics memo (see StatsSlot). Copies share the entry like the
  // NormView cache — the revision stamp makes staleness detectable.
  mutable StatsSlot stats_slot_;
};

/// Normalized database: the labelled dag view of Sections 2 and 4.
struct NormDb {
  VocabularyPtr vocab;

  /// Canonical points after N1 merging. `point_members[p]` lists the names
  /// of the order constants merged into point p; `point_of_constant[c]`
  /// maps an order-constant id of the source database to its point.
  std::vector<std::vector<std::string>> point_members;
  std::vector<int> point_of_constant;

  /// The order dag over points; edges deduplicated, "<" dominating "<=".
  Digraph dag{0};

  /// labels[p]: the monadic-order predicates asserted of point p (D[u] in
  /// the paper's notation).
  std::vector<PredSet> labels;

  /// Proper atoms that are not monadic-order (pure object facts and mixed
  /// n-ary facts). Order-sort argument ids are point ids.
  std::vector<ProperAtom> other_atoms;

  /// Inequality constraints over points, normalized with lhs < rhs
  /// (index-wise) and deduplicated.
  std::vector<std::pair<int, int>> inequalities;

  /// Object constant names (ids are shared with the source database).
  std::vector<std::string> object_names;

  /// Lazily-built shared order-reachability context, owned by
  /// SharedEnumerationContext() (minimal_models.h); type-erased so the
  /// core-layer type stays out of this header. Same thread contract as
  /// Database::NormView: the lazy fill mutates under const, so the first
  /// build on a given NormDb must not race concurrent readers (the
  /// parallel engines build it once before spawning workers).
  mutable std::shared_ptr<const void> order_context_cache;

  /// The previous revision's order context, carried over by NormView on
  /// re-normalization (the service APPEND / WAL-replay pattern mutates
  /// the database and evaluates again). When this revision's dag is a
  /// prefix-extension of the predecessor's, SharedEnumerationContext
  /// grows the predecessor's reachability index by the appended edges
  /// instead of rebuilding it; either way the slot is cleared after the
  /// first context build.
  mutable std::shared_ptr<const void> prev_order_context;

  int num_points() const { return dag.num_vertices(); }

  /// Display name for a point ("u" or "u=v=w" for merged constants).
  std::string PointName(int p) const;

  /// True if every proper atom involving a point is a monadic label.
  /// (Pure object facts may still be present in other_atoms.)
  bool OrderFactsAreMonadic() const;

  /// |D| measured on the normalized form.
  int SizeAtoms() const;
};

/// Applies normalization rules N1/N2 and builds the dag view. Fails with
/// kInconsistent if the order atoms entail u < u for some constant or an
/// inequality collapses (u != v with u, v identified).
Result<NormDb> Normalize(const Database& db);

/// Width of the normalized database: the maximum antichain of its dag
/// (Section 2). Width 0 means there are no points.
int Width(const NormDb& db);

}  // namespace iodb

#endif  // IODB_CORE_DATABASE_H_
