#include "core/engine.h"

#include <algorithm>
#include <numeric>

#include "core/entail_bounded_width.h"
#include "core/entail_bruteforce.h"
#include "core/entail_disjunctive.h"
#include "core/entail_paths.h"
#include "core/inequality.h"
#include "core/minimal_models.h"
#include "core/model_check.h"

namespace iodb {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAuto:
      return "auto";
    case EngineKind::kBruteForce:
      return "brute-force";
    case EngineKind::kPathDecomposition:
      return "path-decomposition";
    case EngineKind::kBoundedWidth:
      return "bounded-width";
    case EngineKind::kDisjunctiveSearch:
      return "disjunctive-search";
  }
  return "unknown";
}

namespace {

// Union-find over the variables of one conjunct.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

// Evaluates and removes the atom components of `conjunct` that touch no
// order variable, checking them against the ground object facts of `db`.
// Returns nullopt if such a component fails (the disjunct is false in
// every model).
std::optional<NormConjunct> SplitObjectPart(const NormDb& db,
                                            const NormConjunct& conjunct) {
  const int nv = conjunct.num_order_vars();
  const int no = conjunct.num_object_vars();
  if (no == 0) return conjunct;  // nothing to split

  UnionFind uf(nv + no);
  auto node = [&](const Term& term) {
    return term.sort == Sort::kOrder ? term.id : nv + term.id;
  };
  for (const ProperAtom& atom : conjunct.other_atoms) {
    for (size_t i = 1; i < atom.args.size(); ++i) {
      uf.Union(node(atom.args[0]), node(atom.args[i]));
    }
  }
  for (const LabeledEdge& e : conjunct.dag.edges()) uf.Union(e.from, e.to);
  for (const auto& [u, v] : conjunct.inequalities) uf.Union(u, v);

  std::vector<bool> component_has_order(nv + no, false);
  for (int t = 0; t < nv; ++t) component_has_order[uf.Find(t)] = true;

  // Build the object-only sub-conjunct and the reduced conjunct.
  NormConjunct object_part;
  NormConjunct reduced = conjunct;
  reduced.object_var_names.clear();
  reduced.other_atoms.clear();
  std::vector<int> remap(no, -1);
  for (int x = 0; x < no; ++x) {
    if (component_has_order[uf.Find(nv + x)]) {
      remap[x] = static_cast<int>(reduced.object_var_names.size());
      reduced.object_var_names.push_back(conjunct.object_var_names[x]);
    } else {
      object_part.object_var_names.push_back(conjunct.object_var_names[x]);
    }
  }
  std::vector<int> object_remap(no, -1);
  {
    int next = 0;
    for (int x = 0; x < no; ++x) {
      if (remap[x] == -1) object_remap[x] = next++;
    }
  }
  for (const ProperAtom& atom : conjunct.other_atoms) {
    bool order_side = component_has_order[uf.Find(node(atom.args[0]))];
    ProperAtom mapped = atom;
    for (Term& term : mapped.args) {
      if (term.sort == Sort::kObject) {
        term.id = order_side ? remap[term.id] : object_remap[term.id];
        IODB_CHECK_NE(term.id, -1);
      }
    }
    (order_side ? reduced.other_atoms : object_part.other_atoms)
        .push_back(std::move(mapped));
  }

  if (object_part.num_object_vars() > 0 || !object_part.other_atoms.empty()) {
    // Evaluate against a zero-point model holding the ground object facts.
    FiniteModel facts;
    facts.vocab = db.vocab;
    facts.object_names = db.object_names;
    for (const ProperAtom& atom : db.other_atoms) {
      bool pure_object = true;
      for (const Term& term : atom.args) {
        if (term.sort == Sort::kOrder) {
          pure_object = false;
          break;
        }
      }
      if (pure_object) facts.other_facts.push_back(atom);
    }
    if (!Satisfies(facts, object_part)) return std::nullopt;
  }
  return reduced;
}

// Picks the first minimal model (used as a countermodel for the empty
// disjunction).
FiniteModel FirstMinimalModel(const NormDb& db) {
  FiniteModel model;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    model = BuildMinimalModel(db, groups);
    return false;
  };
  ForEachMinimalModel(db, visitor);
  return model;
}

}  // namespace

namespace {

// The instance after the Section 2 / Section 7 preprocessing pipeline:
// a normalized database plus the effective normalized query with object
// components evaluated away.
struct PreparedInstance {
  NormDb ndb;
  NormQuery query;
};

Result<PreparedInstance> PrepareInstance(const Database& db,
                                         const Query& query,
                                         const EntailOptions& options) {
  // Step 1: constant elimination.
  Database working_db = db;
  Query working_query = query;
  if (query.HasConstants()) {
    Result<ConstantFreePair> pair = EliminateConstants(db, query);
    if (!pair.ok()) return pair.status();
    working_db = std::move(pair.value().db);
    working_query = std::move(pair.value().query);
  }

  // Step 2: query inequality rewriting (Section 7). Mandatory for the Z/Q
  // reductions; otherwise done when it fits the budget so the monadic
  // engines can apply.
  bool has_inequalities = false;
  for (const QueryConjunct& conjunct : working_query.disjuncts()) {
    if (!conjunct.inequalities.empty()) has_inequalities = true;
  }
  if (has_inequalities) {
    Result<Query> rewritten =
        RewriteInequalities(working_query, options.max_rewritten_disjuncts);
    if (rewritten.ok()) {
      working_query = std::move(rewritten.value());
    } else if (options.semantics != OrderSemantics::kFinite) {
      return rewritten.status();  // transforms below need "!="-free queries
    }
    // Else: keep the inequalities; the brute-force engine handles them.
  }

  Result<NormQuery> norm_query = NormalizeQuery(working_query);
  if (!norm_query.ok()) return norm_query.status();
  NormQuery effective_query = std::move(norm_query.value());

  // Step 3: reduce the semantics to finite models. Tight queries need no
  // transformation (Proposition 2.2).
  if (options.semantics != OrderSemantics::kFinite &&
      !effective_query.IsTight()) {
    if (options.semantics == OrderSemantics::kInteger) {
      working_db = AddIntegerSentinels(working_db,
                                       effective_query.MaxOrderVars());
    } else {
      effective_query = RationalTransform(effective_query);
    }
  }

  Result<NormDb> norm_db = Normalize(working_db);
  if (!norm_db.ok()) return norm_db.status();
  const NormDb& ndb = norm_db.value();

  // Step 4: evaluate and strip object-only components per disjunct.
  NormQuery split_query;
  split_query.vocab = effective_query.vocab;
  split_query.trivially_true = effective_query.trivially_true;
  for (const NormConjunct& conjunct : effective_query.disjuncts) {
    std::optional<NormConjunct> reduced = SplitObjectPart(ndb, conjunct);
    if (!reduced.has_value()) continue;  // disjunct false in every model
    if (reduced->IsEmpty()) split_query.trivially_true = true;
    split_query.disjuncts.push_back(std::move(*reduced));
  }
  return PreparedInstance{std::move(norm_db.value()),
                          std::move(split_query)};
}

}  // namespace

Result<EntailResult> Entails(const Database& db, const Query& query,
                             const EntailOptions& options) {
  Result<PreparedInstance> prepared = PrepareInstance(db, query, options);
  if (!prepared.ok()) return prepared.status();
  const NormDb& ndb = prepared.value().ndb;
  const NormQuery& split_query = prepared.value().query;

  EntailResult result;
  if (split_query.trivially_true) {
    result.entailed = true;
    result.engine_used = EngineKind::kAuto;
    return result;
  }
  if (split_query.disjuncts.empty()) {
    // The query reduced to FALSE: any minimal model is a countermodel.
    result.entailed = false;
    result.engine_used = EngineKind::kAuto;
    if (options.want_countermodel) {
      result.countermodel = FirstMinimalModel(ndb);
    }
    return result;
  }

  // Step 5: dispatch. The conjunctive engines need an inequality-free
  // database; the Theorem 5.3 engine handles database inequalities via
  // the Section 7 sorting modification.
  const bool monadic_ok = split_query.IsMonadicOrderOnly();
  const bool db_neq_free = ndb.inequalities.empty();
  const bool conjunctive = split_query.IsConjunctive();

  EngineKind engine = options.engine;
  if (engine == EngineKind::kAuto) {
    engine = monadic_ok ? ((conjunctive && db_neq_free)
                               ? EngineKind::kBoundedWidth
                               : EngineKind::kDisjunctiveSearch)
                        : EngineKind::kBruteForce;
  } else if (engine == EngineKind::kPathDecomposition ||
             engine == EngineKind::kBoundedWidth) {
    if (!monadic_ok || !conjunctive || !db_neq_free) {
      return Status::Unsupported(
          "conjunctive monadic engine requested for a non-conjunctive, "
          "non-monadic, or inequality-carrying instance");
    }
  } else if (engine == EngineKind::kDisjunctiveSearch) {
    if (!monadic_ok) {
      return Status::Unsupported(
          "disjunctive monadic engine requested for a non-monadic instance");
    }
  }
  result.engine_used = engine;

  switch (engine) {
    case EngineKind::kBruteForce: {
      BruteForceOutcome outcome = EntailBruteForce(ndb, split_query);
      result.entailed = outcome.entailed;
      result.models_enumerated = outcome.models_enumerated;
      if (options.want_countermodel) {
        result.countermodel = std::move(outcome.countermodel);
      }
      break;
    }
    case EngineKind::kPathDecomposition: {
      PathEngineOutcome outcome =
          EntailByPaths(ndb, split_query.disjuncts[0]);
      result.entailed = outcome.entailed;
      result.states_visited = outcome.paths_checked;
      if (!result.entailed && options.want_countermodel) {
        // The path engine proves non-entailment without a witness; the
        // bounded-width engine reconstructs one.
        BoundedWidthOutcome witness =
            EntailBoundedWidth(ndb, split_query.disjuncts[0], true);
        IODB_CHECK(!witness.entailed);
        result.countermodel = std::move(witness.countermodel);
      }
      break;
    }
    case EngineKind::kBoundedWidth: {
      BoundedWidthOutcome outcome = EntailBoundedWidth(
          ndb, split_query.disjuncts[0], options.want_countermodel);
      result.entailed = outcome.entailed;
      result.states_visited = outcome.states_visited;
      if (options.want_countermodel) {
        result.countermodel = std::move(outcome.countermodel);
      }
      break;
    }
    case EngineKind::kDisjunctiveSearch: {
      DisjunctiveOutcome outcome = EntailDisjunctive(ndb, split_query);
      result.entailed = outcome.entailed;
      result.states_visited = outcome.states_visited;
      if (options.want_countermodel) {
        result.countermodel = std::move(outcome.countermodel);
      }
      break;
    }
    case EngineKind::kAuto:
      IODB_CHECK(false);  // resolved above
  }
  return result;
}

bool MustEntail(const Database& db, const Query& query,
                const EntailOptions& options) {
  Result<EntailResult> result = Entails(db, query, options);
  IODB_CHECK(result.ok());
  return result.value().entailed;
}

Result<long long> EnumerateCountermodels(
    const Database& db, const Query& query,
    const std::function<bool(const FiniteModel&)>& on_countermodel,
    const EntailOptions& options) {
  IODB_CHECK(on_countermodel != nullptr);
  Result<PreparedInstance> prepared = PrepareInstance(db, query, options);
  if (!prepared.ok()) return prepared.status();
  const NormDb& ndb = prepared.value().ndb;
  const NormQuery& split_query = prepared.value().query;

  if (split_query.trivially_true) return 0;  // no model falsifies TRUE

  long long reported = 0;
  if (split_query.IsMonadicOrderOnly() && !split_query.disjuncts.empty()) {
    DisjunctiveOptions engine_options;
    engine_options.on_countermodel = [&](const FiniteModel& model) {
      ++reported;
      return on_countermodel(model);
    };
    EntailDisjunctive(ndb, split_query, engine_options);
    return reported;
  }

  // Generic fallback (n-ary predicates or the FALSE query): enumerate the
  // minimal models and filter.
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    FiniteModel model = BuildMinimalModel(ndb, groups);
    if (Satisfies(model, split_query)) return true;
    ++reported;
    return on_countermodel(model);
  };
  ForEachMinimalModel(ndb, visitor);
  return reported;
}

}  // namespace iodb
