#include "core/engine.h"

#include "core/prepare.h"

namespace iodb {

const char* EngineKindName(EngineKind kind) {
  switch (kind) {
    case EngineKind::kAuto:
      return "auto";
    case EngineKind::kBruteForce:
      return "brute-force";
    case EngineKind::kPathDecomposition:
      return "path-decomposition";
    case EngineKind::kBoundedWidth:
      return "bounded-width";
    case EngineKind::kDisjunctiveSearch:
      return "disjunctive-search";
  }
  return "unknown";
}

std::optional<EngineKind> ParseEngineKind(const std::string& name) {
  for (EngineKind kind :
       {EngineKind::kAuto, EngineKind::kBruteForce,
        EngineKind::kPathDecomposition, EngineKind::kBoundedWidth,
        EngineKind::kDisjunctiveSearch}) {
    if (name == EngineKindName(kind)) return kind;
  }
  // Historical CLI shorthands, kept so existing scripts don't break.
  if (name == "paths") return EngineKind::kPathDecomposition;
  if (name == "disjunctive") return EngineKind::kDisjunctiveSearch;
  return std::nullopt;
}

Result<EntailResult> Entails(const Database& db, const Query& query,
                             const EntailOptions& options, ExecBudget* budget) {
  Result<PreparedQuery> prepared = Prepare(query.vocab(), query, options);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().Evaluate(db, budget);
}

bool MustEntail(const Database& db, const Query& query,
                const EntailOptions& options) {
  Result<EntailResult> result = Entails(db, query, options);
  IODB_CHECK(result.ok());
  return result.value().entailed;
}

Result<long long> EnumerateCountermodels(
    const Database& db, const Query& query,
    const std::function<bool(const FiniteModel&)>& on_countermodel,
    const EntailOptions& options, ExecBudget* budget) {
  Result<PreparedQuery> prepared = Prepare(query.vocab(), query, options);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().EnumerateCountermodels(db, on_countermodel, budget);
}

}  // namespace iodb
