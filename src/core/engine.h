// The unified entailment API.
//
// `Entails` pipelines the paper's reductions and picks the best algorithm:
//   1. constants are eliminated (Section 2's marker-predicate trick);
//   2. the requested order semantics is reduced to finite models
//      (Propositions 2.2/2.3, Corollary 2.6);
//   3. query inequalities are rewritten into disjunctions when a monadic
//      engine can then apply (Section 7);
//   4. per disjunct, atom components touching no order variable are
//      evaluated directly against the ground facts (the object/order
//      split discussed at the start of Section 4) and removed;
//   5. dispatch: conjunctive monadic -> Theorem 4.7 engine; disjunctive
//      monadic -> Theorem 5.3 engine; everything else (n-ary predicates,
//      database inequalities) -> brute-force minimal-model search.

#ifndef IODB_CORE_ENGINE_H_
#define IODB_CORE_ENGINE_H_

#include <functional>
#include <optional>
#include <string>

#include "core/database.h"
#include "core/model.h"
#include "core/query.h"
#include "core/semantics.h"
#include "util/status.h"

namespace iodb {

/// Algorithm selection.
enum class EngineKind {
  kAuto,               // classify and pick the best applicable engine
  kBruteForce,         // minimal-model countermodel search (always applies)
  kPathDecomposition,  // Lemma 4.1 + SEQ (conjunctive monadic)
  kBoundedWidth,       // Theorem 4.7 (conjunctive monadic)
  kDisjunctiveSearch,  // Theorem 5.3 (disjunctive monadic)
};

/// Returns a short name, e.g. "bounded-width".
const char* EngineKindName(EngineKind kind);

/// Options for Entails().
struct EntailOptions {
  OrderSemantics semantics = OrderSemantics::kFinite;
  EngineKind engine = EngineKind::kAuto;
  /// Request a countermodel witness when the query is not entailed.
  bool want_countermodel = false;
  /// Budget for query-inequality rewriting (see RewriteInequalities).
  int max_rewritten_disjuncts = 1 << 16;
};

/// Result of an entailment check.
struct EntailResult {
  bool entailed = false;
  /// The engine that produced the verdict.
  EngineKind engine_used = EngineKind::kAuto;
  /// A falsifying minimal model, when not entailed and requested (brute
  /// force, bounded-width and disjunctive engines provide one).
  std::optional<FiniteModel> countermodel;
  /// Work counters (meaning depends on the engine).
  long long states_visited = 0;
  long long models_enumerated = 0;
};

/// Decides db |= query under the chosen semantics. Fails with
/// kInconsistent if the database has no model, kUnsupported if a forced
/// engine does not apply to the (transformed) instance, kInvalidArgument
/// on malformed queries.
Result<EntailResult> Entails(const Database& db, const Query& query,
                             const EntailOptions& options = {});

/// Convenience wrapper that aborts on error; for tests and examples where
/// inputs are known to be well-formed and consistent.
bool MustEntail(const Database& db, const Query& query,
                const EntailOptions& options = {});

/// Enumerates the countermodels of `query` in `db` — the minimal models in
/// which the query is FALSE. With the query-modification reading of
/// integrity constraints (Examples 1.1/1.2), these are precisely the
/// "solutions": valid schedules, admissible alignments, consistent
/// scenarios. Monadic instances use the Theorem 5.3 machine (polynomial
/// delay, possibly repeating a model across witnessing path choices);
/// everything else falls back to filtered minimal-model enumeration.
/// `on_countermodel` returns false to stop. Returns the number of
/// callbacks made (counting repeats).
Result<long long> EnumerateCountermodels(
    const Database& db, const Query& query,
    const std::function<bool(const FiniteModel&)>& on_countermodel,
    const EntailOptions& options = {});

}  // namespace iodb

#endif  // IODB_CORE_ENGINE_H_
