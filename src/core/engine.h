// The unified entailment API.
//
// `Entails` is a thin wrapper over the pass-based query-compilation
// pipeline of core/prepare.h: it compiles the query once with `Prepare()`
// (constant elimination, inequality rewriting, normalization, semantics
// reduction, object/order split, engine classification) and evaluates the
// resulting plan against the database. Callers that ask the same query
// repeatedly should hold a `PreparedQuery` instead and call `Evaluate()`
// / `EvaluateBatch()` directly — the compilation happens once and the
// database's normalized view is memoized (Database::NormView).

#ifndef IODB_CORE_ENGINE_H_
#define IODB_CORE_ENGINE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "core/database.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/query.h"
#include "core/semantics.h"
#include "util/budget.h"
#include "util/status.h"

namespace iodb {

class QueryPlanner;  // core/planner.h

/// Algorithm selection.
enum class EngineKind {
  kAuto,               // classify and pick the best applicable engine
  kBruteForce,         // minimal-model countermodel search (always applies)
  kPathDecomposition,  // Lemma 4.1 + SEQ (conjunctive monadic)
  kBoundedWidth,       // Theorem 4.7 (conjunctive monadic)
  kDisjunctiveSearch,  // Theorem 5.3 (disjunctive monadic)
};

/// Returns a short name, e.g. "bounded-width".
const char* EngineKindName(EngineKind kind);

/// Parses an engine name back into its kind: the exact strings produced
/// by EngineKindName() round-trip, and the historical CLI shorthands
/// "paths" / "disjunctive" are accepted. Returns nullopt for anything
/// else.
std::optional<EngineKind> ParseEngineKind(const std::string& name);

/// Options for Entails().
struct EntailOptions {
  OrderSemantics semantics = OrderSemantics::kFinite;
  EngineKind engine = EngineKind::kAuto;
  /// Request a countermodel witness when the query is not entailed.
  bool want_countermodel = false;
  /// Budget for query-inequality rewriting (see RewriteInequalities).
  int max_rewritten_disjuncts = 1 << 16;
  /// Cost oracle for the Prepare() cost-plan pass (core/planner.h);
  /// null disables costing (the default static heuristics apply). The
  /// planner influences schedules and engine routes, never verdicts,
  /// and its fingerprint() is part of the plan fingerprint.
  std::shared_ptr<const QueryPlanner> planner;
};

/// Result of an entailment check.
struct EntailResult {
  bool entailed = false;
  /// The engine that produced the verdict.
  EngineKind engine_used = EngineKind::kAuto;
  /// A falsifying minimal model, when not entailed and requested (brute
  /// force, bounded-width and disjunctive engines provide one).
  std::optional<FiniteModel> countermodel;
  /// Work counters (meaning depends on the engine).
  long long states_visited = 0;
  long long models_enumerated = 0;
  /// Incremental-core counters (brute-force engine): group push/pop
  /// operations of the in-place model builder.
  long long groups_pushed = 0;
  long long groups_popped = 0;
  /// Model-check counters summed over every prefix/model check (brute
  /// force; zero for the monadic automata engines, which never
  /// materialize models during the decision).
  ModelCheckStats check_stats;
};

/// Decides db |= query under the chosen semantics. Fails with
/// kInconsistent if the database has no model, kUnsupported if a forced
/// engine does not apply to the (transformed) instance, kInvalidArgument
/// on malformed queries. `budget`, when non-null, governs the evaluation:
/// on exhaustion the call fails with kDeadlineExceeded / kCancelled and
/// partial work counters attached to the budget. A run that completes
/// under a budget is bit-identical to an ungoverned run.
Result<EntailResult> Entails(const Database& db, const Query& query,
                             const EntailOptions& options = {},
                             ExecBudget* budget = nullptr);

/// Convenience wrapper that aborts on error; for tests and examples where
/// inputs are known to be well-formed and consistent.
bool MustEntail(const Database& db, const Query& query,
                const EntailOptions& options = {});

/// Enumerates the countermodels of `query` in `db` — the minimal models in
/// which the query is FALSE. With the query-modification reading of
/// integrity constraints (Examples 1.1/1.2), these are precisely the
/// "solutions": valid schedules, admissible alignments, consistent
/// scenarios. Monadic instances use the Theorem 5.3 machine (polynomial
/// delay, possibly repeating a model across witnessing path choices);
/// everything else falls back to filtered minimal-model enumeration.
/// `on_countermodel` returns false to stop. Returns the number of
/// callbacks made (counting repeats).
Result<long long> EnumerateCountermodels(
    const Database& db, const Query& query,
    const std::function<bool(const FiniteModel&)>& on_countermodel,
    const EntailOptions& options = {}, ExecBudget* budget = nullptr);

}  // namespace iodb

#endif  // IODB_CORE_ENGINE_H_
