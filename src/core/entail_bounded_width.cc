#include "core/entail_bounded_width.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_set>
#include <utility>

#include "core/minimal_models.h"
#include "graph/topo.h"

namespace iodb {
namespace {

struct MaskKeyHash {
  size_t operator()(const std::pair<uint64_t, int>& k) const {
    uint64_t h = k.first * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.second) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

struct Engine {
  const NormDb& db;
  const NormConjunct& query;
  bool want_countermodel;
  // Governance: charged once per search state. When the budget trips,
  // `exhausted` goes sticky, every recursion unwinds via false, and no
  // partially explored state is inserted into the failed memos (a state
  // abandoned mid-exploration has not been proven counterexample-free).
  ExecBudget* budget = nullptr;
  bool exhausted = false;
  long long states_visited = 0;
  // Incremental paths: the database's shared reachability context.
  // Null in oracle mode.
  std::shared_ptr<const EnumerationContext> ctx;
  ReachProbeStats rstats;
  // States (S, u) fully explored without finding a countermodel.
  std::unordered_set<std::vector<int>, IntVectorHash> failed;
  std::unordered_set<std::pair<uint64_t, int>, MaskKeyHash> failed_packed;
  // Countermodel groups, collected deepest-first on unwind.
  std::vector<std::vector<int>> groups_reversed;

  // Counter-path state: the alive region plus, per vertex, the number of
  // alive direct in-arcs (minimal ⇔ 0) and alive strict ancestors
  // (minor ⇔ 0), maintained under LIFO delete/undo instead of being
  // recomputed from the dag per state.
  std::vector<char> alive_;
  std::vector<int> in_deg_;
  std::vector<int> strict_in_;
  std::vector<int> undo_;  // deleted vertices, in deletion order
  int alive_count_ = 0;

  Engine(const NormDb& d, const NormConjunct& q, bool want, bool incremental)
      : db(d), query(q), want_countermodel(want) {
    if (incremental) {
      ctx = SharedEnumerationContext(db);
      if (!ctx->has_masks) InitCounters();
    }
  }

  void InitCounters() {
    const int n = db.num_points();
    alive_.assign(n, 1);
    in_deg_.assign(n, 0);
    for (const LabeledEdge& e : db.dag.edges()) ++in_deg_[e.to];
    strict_in_ = ctx->strict_in_all_alive;
    alive_count_ = n;
  }

  // The unsorted region is the up-set of the antichain S.
  std::vector<bool> AliveFrom(const std::vector<int>& s) const {
    std::vector<bool> alive(db.num_points(), false);
    std::vector<int> queue(s);
    for (int v : queue) alive[v] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const Digraph::Arc& arc : db.dag.out(queue[head])) {
        if (!alive[arc.vertex]) {
          alive[arc.vertex] = true;
          queue.push_back(arc.vertex);
        }
      }
    }
    return alive;
  }

  static std::vector<int> Key(const std::vector<int>& s, int u) {
    std::vector<int> key(s);
    key.push_back(-1);
    key.push_back(u);
    return key;
  }

  // Entry point: dispatches the initial state (whole region alive) to
  // the active path. `initial` is nonempty (checked by the caller).
  bool FindCounterTop(const std::vector<int>& initial, int u0) {
    if (ctx == nullptr) return FindCounter(initial, u0);
    if (ctx->has_masks) {
      const int n = db.num_points();
      uint64_t all = n == 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
      return FindCounterMask(all, u0);
    }
    return FindCounterCounters(u0);
  }

  // ---------------------------------------------------------------------
  // Oracle path: recompute the region and its minimal/minor vertices from
  // the dag at every state. Kept verbatim as the differential reference.
  // ---------------------------------------------------------------------

  // True iff a sort of the region S falsifying the path suffix rooted at
  // query vertex u exists (i.e. a countermodel for this branch).
  bool FindCounter(const std::vector<int>& s, int u) {
    if (exhausted) return false;
    IODB_CHECK(!s.empty());
    std::vector<int> key = Key(s, u);
    if (failed.contains(key)) return false;
    if (budget != nullptr && !budget->Charge()) {
      exhausted = true;
      return false;
    }
    ++states_visited;

    std::vector<bool> alive = AliveFrom(s);

    // Edge (a): some minimal vertex fails the label of u.
    int failing = -1;
    for (int v : s) {
      if (!query.labels[u].IsSubsetOf(db.labels[v])) {
        failing = v;
        break;
      }
    }
    if (failing != -1) {
      alive[failing] = false;
      std::vector<int> next = MinimalVertices(db.dag, alive);
      bool found = next.empty() ? true : FindCounter(next, u);
      if (found) {
        if (want_countermodel) groups_reversed.push_back({failing});
        return true;
      }
      if (exhausted) return false;
      failed.insert(std::move(key));
      return false;
    }

    // All minimal vertices satisfy Φ[u]: the symbol at u is consumed.
    // Lazily computed minor deletion shared by all "<" successors.
    std::vector<int> after_lt;  // minimals after deleting minors
    std::vector<int> minor_group;
    bool lt_computed = false;
    for (const Digraph::Arc& arc : query.dag.out(u)) {
      if (arc.rel == OrderRel::kLe) {
        if (FindCounter(s, arc.vertex)) return true;
      } else {
        if (!lt_computed) {
          lt_computed = true;
          std::vector<bool> minor = MinorVertices(db.dag, alive);
          std::vector<bool> next_alive = alive;
          for (int v = 0; v < db.num_points(); ++v) {
            if (alive[v] && minor[v]) {
              minor_group.push_back(v);
              next_alive[v] = false;
            }
          }
          after_lt = MinimalVertices(db.dag, next_alive);
        }
        bool found = after_lt.empty() ? true : FindCounter(after_lt, arc.vertex);
        if (found) {
          if (want_countermodel) groups_reversed.push_back(minor_group);
          return true;
        }
      }
    }
    // No successor branch yields a countermodel: if u is terminal the path
    // is fully matched; either way this state fails.
    if (exhausted) return false;
    failed.insert(std::move(key));
    return false;
  }

  // ---------------------------------------------------------------------
  // Mask fast path (<= 64 points): the region is one word; minimal and
  // minor tests are single-word probes against the context masks. Same
  // states, same exploration order as the oracle path.
  // ---------------------------------------------------------------------

  bool FindCounterMask(uint64_t alive, int u) {
    if (exhausted) return false;
    std::pair<uint64_t, int> key{alive, u};
    if (failed_packed.contains(key)) return false;
    if (budget != nullptr && !budget->Charge()) {
      exhausted = true;
      return false;
    }
    ++states_visited;

    // Minimal vertices of the region, ascending (the region is an up-set,
    // so "some alive proper ancestor" ⇔ "some alive direct predecessor").
    uint64_t minimals = 0;
    for (uint64_t rest = alive; rest != 0; rest &= rest - 1) {
      int v = std::countr_zero(rest);
      if ((ctx->anc_mask[v] & alive & ~(uint64_t{1} << v)) == 0) {
        minimals |= uint64_t{1} << v;
      }
    }
    rstats.probes += std::popcount(alive);
    rstats.fast_hits += std::popcount(alive);

    // Edge (a): some minimal vertex fails the label of u.
    int failing = -1;
    for (uint64_t rest = minimals; rest != 0; rest &= rest - 1) {
      int v = std::countr_zero(rest);
      if (!query.labels[u].IsSubsetOf(db.labels[v])) {
        failing = v;
        break;
      }
    }
    if (failing != -1) {
      uint64_t next = alive & ~(uint64_t{1} << failing);
      bool found = next == 0 ? true : FindCounterMask(next, u);
      if (found) {
        if (want_countermodel) groups_reversed.push_back({failing});
        return true;
      }
      if (exhausted) return false;
      failed_packed.insert(key);
      return false;
    }

    uint64_t after_lt = 0;
    std::vector<int> minor_group;
    bool lt_computed = false;
    for (const Digraph::Arc& arc : query.dag.out(u)) {
      if (arc.rel == OrderRel::kLe) {
        if (FindCounterMask(alive, arc.vertex)) return true;
      } else {
        if (!lt_computed) {
          lt_computed = true;
          uint64_t minors = 0;
          for (uint64_t rest = alive; rest != 0; rest &= rest - 1) {
            int v = std::countr_zero(rest);
            if ((ctx->strict_anc_mask[v] & alive) == 0) {
              minors |= uint64_t{1} << v;
              minor_group.push_back(v);
            }
          }
          rstats.probes += std::popcount(alive);
          rstats.fast_hits += std::popcount(alive);
          after_lt = alive & ~minors;
        }
        bool found =
            after_lt == 0 ? true : FindCounterMask(after_lt, arc.vertex);
        if (found) {
          if (want_countermodel) groups_reversed.push_back(minor_group);
          return true;
        }
      }
    }
    if (exhausted) return false;
    failed_packed.insert(key);
    return false;
  }

  // ---------------------------------------------------------------------
  // Counter path (> 64 points): alive / in-degree / strict-in-degree are
  // maintained incrementally under LIFO delete/undo; each state costs
  // O(alive + Σ deg(deleted)) instead of rebuilding the region and two
  // closures from the dag. Successful branches return without undoing —
  // the search unwinds completely once a countermodel is found.
  // ---------------------------------------------------------------------

  void Delete(int v) {
    alive_[v] = 0;
    --alive_count_;
    for (const Digraph::Arc& arc : db.dag.out(v)) --in_deg_[arc.vertex];
    for (int w = ctx->strict_out_off[v]; w < ctx->strict_out_off[v + 1]; ++w) {
      --strict_in_[ctx->strict_out[w]];
    }
    undo_.push_back(v);
  }

  void UndoTo(size_t mark) {
    while (undo_.size() > mark) {
      int v = undo_.back();
      undo_.pop_back();
      alive_[v] = 1;
      ++alive_count_;
      for (const Digraph::Arc& arc : db.dag.out(v)) ++in_deg_[arc.vertex];
      for (int w = ctx->strict_out_off[v]; w < ctx->strict_out_off[v + 1];
           ++w) {
        ++strict_in_[ctx->strict_out[w]];
      }
    }
  }

  bool FindCounterCounters(int u) {
    if (exhausted) return false;
    std::vector<int> s;
    for (int v = 0; v < db.num_points(); ++v) {
      if (alive_[v] && in_deg_[v] == 0) s.push_back(v);
    }
    rstats.probes += alive_count_;
    rstats.fast_hits += alive_count_;
    std::vector<int> key = Key(s, u);
    if (failed.contains(key)) return false;
    if (budget != nullptr && !budget->Charge()) {
      exhausted = true;
      return false;
    }
    ++states_visited;

    // Edge (a): some minimal vertex fails the label of u.
    int failing = -1;
    for (int v : s) {
      if (!query.labels[u].IsSubsetOf(db.labels[v])) {
        failing = v;
        break;
      }
    }
    if (failing != -1) {
      size_t mark = undo_.size();
      Delete(failing);
      bool found = alive_count_ == 0 ? true : FindCounterCounters(u);
      if (found) {
        if (want_countermodel) groups_reversed.push_back({failing});
        return true;
      }
      UndoTo(mark);
      if (exhausted) return false;
      failed.insert(std::move(key));
      return false;
    }

    // Per-arc loop with a pushed flag: "<" successors share one lazily
    // computed minor-group deletion; a "<=" successor between two "<"
    // successors pops it first (and the next "<" re-pushes the same
    // group — the "<=" recursion restored the region exactly).
    std::vector<int> minor_group;
    bool minors_computed = false;
    bool pushed = false;
    size_t mark = undo_.size();
    for (const Digraph::Arc& arc : query.dag.out(u)) {
      if (arc.rel == OrderRel::kLe) {
        if (pushed) {
          UndoTo(mark);
          pushed = false;
        }
        if (FindCounterCounters(arc.vertex)) return true;
      } else {
        if (!pushed) {
          if (!minors_computed) {
            minors_computed = true;
            for (int v = 0; v < db.num_points(); ++v) {
              if (alive_[v] && strict_in_[v] == 0) minor_group.push_back(v);
            }
            rstats.probes += alive_count_;
            rstats.fast_hits += alive_count_;
          }
          for (int v : minor_group) Delete(v);
          pushed = true;
        }
        bool found =
            alive_count_ == 0 ? true : FindCounterCounters(arc.vertex);
        if (found) {
          if (want_countermodel) groups_reversed.push_back(minor_group);
          return true;
        }
      }
    }
    if (pushed) UndoTo(mark);
    if (exhausted) return false;
    failed.insert(std::move(key));
    return false;
  }
};

}  // namespace

BoundedWidthOutcome EntailBoundedWidth(const NormDb& db,
                                       const NormConjunct& raw_conjunct,
                                       bool want_countermodel,
                                       bool already_reduced,
                                       bool use_incremental,
                                       ExecBudget* budget) {
  IODB_CHECK(raw_conjunct.IsMonadicOrderOnly());
  IODB_CHECK(db.inequalities.empty());
  // Redundant query atoms would add shortcut paths to the search without
  // changing the constraints; drop them up front (unless the caller's
  // plan already did, once, at prepare time).
  NormConjunct reduced_storage;
  if (!already_reduced) {
    reduced_storage = TransitiveReduceConjunct(raw_conjunct);
  }
  const NormConjunct& conjunct =
      already_reduced ? raw_conjunct : reduced_storage;
  BoundedWidthOutcome outcome;
  if (conjunct.num_order_vars() == 0) return outcome;  // empty: trivially true

  std::vector<bool> all_alive(db.num_points(), true);
  std::vector<int> initial = MinimalVertices(db.dag, all_alive);
  if (initial.empty()) {
    // Empty database: the single (empty) minimal model falsifies any
    // conjunct with at least one order variable.
    outcome.entailed = false;
    if (want_countermodel) outcome.countermodel = BuildMinimalModel(db, {});
    return outcome;
  }

  Engine engine(db, conjunct, want_countermodel, use_incremental);
  engine.budget = budget;
  std::vector<bool> query_alive(conjunct.num_order_vars(), true);
  for (int u0 : MinimalVertices(conjunct.dag, query_alive)) {
    if (engine.exhausted) break;
    if (engine.FindCounterTop(initial, u0)) {
      outcome.entailed = false;
      if (want_countermodel) {
        std::vector<std::vector<int>> groups(engine.groups_reversed.rbegin(),
                                             engine.groups_reversed.rend());
        // The search may stop with vertices still unsorted only when the
        // region emptied; by construction it did. Assert coverage.
        outcome.countermodel = BuildMinimalModel(db, groups);
      }
      break;
    }
  }
  // A countermodel found before the trip is definite; only an
  // inconclusive "no counter found" turns into an exhausted outcome.
  outcome.exhausted = engine.exhausted && outcome.entailed;
  outcome.states_visited = engine.states_visited;
  outcome.check_stats.AddReachProbes(engine.rstats);
  outcome.check_stats.index_rebuilds =
      engine.ctx != nullptr ? engine.ctx->index_rebuilds() : 0;
  return outcome;
}

}  // namespace iodb
