#include "core/entail_bounded_width.h"

#include <algorithm>
#include <unordered_set>

#include "graph/topo.h"

namespace iodb {
namespace {

struct Engine {
  const NormDb& db;
  const NormConjunct& query;
  bool want_countermodel;
  long long states_visited = 0;
  // States (S, u) fully explored without finding a countermodel.
  std::unordered_set<std::vector<int>, IntVectorHash> failed;
  // Countermodel groups, collected deepest-first on unwind.
  std::vector<std::vector<int>> groups_reversed;

  Engine(const NormDb& d, const NormConjunct& q, bool want)
      : db(d), query(q), want_countermodel(want) {}

  // The unsorted region is the up-set of the antichain S.
  std::vector<bool> AliveFrom(const std::vector<int>& s) const {
    std::vector<bool> alive(db.num_points(), false);
    std::vector<int> queue(s);
    for (int v : queue) alive[v] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const Digraph::Arc& arc : db.dag.out(queue[head])) {
        if (!alive[arc.vertex]) {
          alive[arc.vertex] = true;
          queue.push_back(arc.vertex);
        }
      }
    }
    return alive;
  }

  static std::vector<int> Key(const std::vector<int>& s, int u) {
    std::vector<int> key(s);
    key.push_back(-1);
    key.push_back(u);
    return key;
  }

  // True iff a sort of the region S falsifying the path suffix rooted at
  // query vertex u exists (i.e. a countermodel for this branch).
  bool FindCounter(const std::vector<int>& s, int u) {
    IODB_CHECK(!s.empty());
    std::vector<int> key = Key(s, u);
    if (failed.contains(key)) return false;
    ++states_visited;

    std::vector<bool> alive = AliveFrom(s);

    // Edge (a): some minimal vertex fails the label of u.
    int failing = -1;
    for (int v : s) {
      if (!query.labels[u].IsSubsetOf(db.labels[v])) {
        failing = v;
        break;
      }
    }
    if (failing != -1) {
      alive[failing] = false;
      std::vector<int> next = MinimalVertices(db.dag, alive);
      bool found = next.empty() ? true : FindCounter(next, u);
      if (found) {
        if (want_countermodel) groups_reversed.push_back({failing});
        return true;
      }
      failed.insert(std::move(key));
      return false;
    }

    // All minimal vertices satisfy Φ[u]: the symbol at u is consumed.
    // Lazily computed minor deletion shared by all "<" successors.
    std::vector<int> after_lt;  // minimals after deleting minors
    std::vector<int> minor_group;
    bool lt_computed = false;
    for (const Digraph::Arc& arc : query.dag.out(u)) {
      if (arc.rel == OrderRel::kLe) {
        if (FindCounter(s, arc.vertex)) return true;
      } else {
        if (!lt_computed) {
          lt_computed = true;
          std::vector<bool> minor = MinorVertices(db.dag, alive);
          std::vector<bool> next_alive = alive;
          for (int v = 0; v < db.num_points(); ++v) {
            if (alive[v] && minor[v]) {
              minor_group.push_back(v);
              next_alive[v] = false;
            }
          }
          after_lt = MinimalVertices(db.dag, next_alive);
        }
        bool found = after_lt.empty() ? true : FindCounter(after_lt, arc.vertex);
        if (found) {
          if (want_countermodel) groups_reversed.push_back(minor_group);
          return true;
        }
      }
    }
    // No successor branch yields a countermodel: if u is terminal the path
    // is fully matched; either way this state fails.
    failed.insert(std::move(key));
    return false;
  }
};

}  // namespace

BoundedWidthOutcome EntailBoundedWidth(const NormDb& db,
                                       const NormConjunct& raw_conjunct,
                                       bool want_countermodel,
                                       bool already_reduced) {
  IODB_CHECK(raw_conjunct.IsMonadicOrderOnly());
  IODB_CHECK(db.inequalities.empty());
  // Redundant query atoms would add shortcut paths to the search without
  // changing the constraints; drop them up front (unless the caller's
  // plan already did, once, at prepare time).
  NormConjunct reduced_storage;
  if (!already_reduced) {
    reduced_storage = TransitiveReduceConjunct(raw_conjunct);
  }
  const NormConjunct& conjunct =
      already_reduced ? raw_conjunct : reduced_storage;
  BoundedWidthOutcome outcome;
  if (conjunct.num_order_vars() == 0) return outcome;  // empty: trivially true

  std::vector<bool> all_alive(db.num_points(), true);
  std::vector<int> initial = MinimalVertices(db.dag, all_alive);
  if (initial.empty()) {
    // Empty database: the single (empty) minimal model falsifies any
    // conjunct with at least one order variable.
    outcome.entailed = false;
    if (want_countermodel) outcome.countermodel = BuildMinimalModel(db, {});
    return outcome;
  }

  Engine engine(db, conjunct, want_countermodel);
  std::vector<bool> query_alive(conjunct.num_order_vars(), true);
  for (int u0 : MinimalVertices(conjunct.dag, query_alive)) {
    if (engine.FindCounter(initial, u0)) {
      outcome.entailed = false;
      if (want_countermodel) {
        std::vector<std::vector<int>> groups(engine.groups_reversed.rbegin(),
                                             engine.groups_reversed.rend());
        // The search may stop with vertices still unsorted only when the
        // region emptied; by construction it did. Assert coverage.
        outcome.countermodel = BuildMinimalModel(db, groups);
      }
      outcome.states_visited = engine.states_visited;
      return outcome;
    }
  }
  outcome.states_visited = engine.states_visited;
  return outcome;
}

}  // namespace iodb
