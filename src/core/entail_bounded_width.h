// The Theorem 4.7 engine: conjunctive monadic queries over width-k
// databases in O(|D|^{k+1} · |Φ|).
//
// The paper reduces entailment to reachability in a graph of tuples
// (S, u), where S is an antichain of the database dag (here: the minimal
// vertices of the not-yet-sorted up-set) and u is a query vertex. The
// edges mirror the three SEQ cases:
//   (a) some s ∈ S has Φ[u] ⊄ D[s]: delete s (one such edge suffices —
//       Case I of SEQ is an equivalence for any choice of s);
//   (b) all of S satisfies Φ[u] and Φ has an edge u -<- v: delete the
//       minor vertices and advance to v;
//   (c) all of S satisfies Φ[u] and Φ has an edge u -<=- v: advance to v.
// D ⊭ Φ iff a tuple with empty S is reachable from some initial tuple
// (minimal vertices of D, minimal vertex of Φ): the database is exhausted
// while some maximal path of Φ still has an unmatched vertex.
//
// The search is memoized on (S, u); with width k there are O(|D|^k · |Φ|)
// tuples, each processed in O(|D|), giving the paper's bound.

#ifndef IODB_CORE_ENTAIL_BOUNDED_WIDTH_H_
#define IODB_CORE_ENTAIL_BOUNDED_WIDTH_H_

#include <optional>

#include "core/database.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/query.h"
#include "util/budget.h"

namespace iodb {

/// Outcome of the Theorem 4.7 engine.
struct BoundedWidthOutcome {
  bool entailed = true;
  /// The ExecBudget tripped before the search finished and no definite
  /// verdict was reached; `entailed` must be ignored. A countermodel
  /// found before the trip is still reported as a definite "not
  /// entailed" (exhausted stays false then).
  bool exhausted = false;
  long long states_visited = 0;
  /// When not entailed and requested: a minimal model falsifying the
  /// query, reconstructed from the SEQ countermodel construction along
  /// the successful reachability path.
  std::optional<FiniteModel> countermodel;
  /// Reachability-probe counters of the incremental path (zeroes under
  /// the oracle path, which predates the counting seam).
  ModelCheckStats check_stats;
};

/// Decides db |= conjunct for a monadic-order-only conjunct over a
/// database without inequality constraints. `already_reduced` skips the
/// internal transitive reduction when the caller passes a conjunct that
/// is already reduced (PreparedQuery memoizes the reduction at Prepare()
/// time so repeated evaluations don't pay it). `use_incremental` routes
/// minor/minimal tests through the database's shared reachability context
/// (single-word masks for at most 64 points, incrementally maintained
/// in-degree counters otherwise) instead of recomputing them per state
/// from the dag; false runs the original path, kept as the differential
/// oracle. Both paths visit the same states in the same order. `budget`,
/// when non-null, is charged once per search state; on a trip the
/// outcome reports `exhausted` (partially explored states are never
/// memoized as failed, so a re-run starts sound).
BoundedWidthOutcome EntailBoundedWidth(const NormDb& db,
                                       const NormConjunct& conjunct,
                                       bool want_countermodel = false,
                                       bool already_reduced = false,
                                       bool use_incremental = true,
                                       ExecBudget* budget = nullptr);

}  // namespace iodb

#endif  // IODB_CORE_ENTAIL_BOUNDED_WIDTH_H_
