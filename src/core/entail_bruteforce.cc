#include "core/entail_bruteforce.h"

#include <atomic>
#include <limits>
#include <utility>

#include "core/minimal_models.h"
#include "core/model_builder.h"
#include "util/parallel.h"

namespace iodb {
namespace {

// Legacy reference path: rebuild the prefix model from scratch per group
// append and run the generic checker. Kept verbatim as the oracle for the
// differential test suite.
BruteForceOutcome EntailRebuildPerModel(const NormDb& db,
                                        const NormQuery& query,
                                        const BruteForceOptions& options) {
  BruteForceOutcome outcome;
  ModelVisitor visitor;
  std::vector<std::vector<int>> prefix;
  visitor.on_group = [&](int depth, const std::vector<int>& group) {
    if (options.budget != nullptr && !options.budget->Charge()) {
      outcome.exhausted = true;
      return false;
    }
    if (options.prune_satisfied_prefix) {
      prefix.resize(depth);
      prefix.push_back(group);
      FiniteModel model = BuildPrefixModel(db, prefix);
      if (Satisfies(model, query, &outcome.check_stats)) {
        ++outcome.prefixes_pruned;
        return false;  // no countermodel below a satisfied prefix
      }
    }
    return true;
  };
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    if (options.budget != nullptr && !options.budget->Charge()) {
      outcome.exhausted = true;
      return false;
    }
    ++outcome.models_enumerated;
    FiniteModel model = BuildMinimalModel(db, groups);
    // With pruning on, every level of this sort was already checked and
    // found unsatisfied — the complete model is a countermodel. Without
    // pruning, check now.
    bool satisfied = options.prune_satisfied_prefix
                         ? false
                         : Satisfies(model, query, &outcome.check_stats);
    if (!satisfied) {
      outcome.entailed = false;
      outcome.countermodel = std::move(model);
      return false;
    }
    if (options.max_models >= 0 &&
        outcome.models_enumerated >= options.max_models) {
      outcome.limit_hit = true;
      return false;
    }
    return true;
  };
  ForEachMinimalModel(db, visitor);
  return outcome;
}

// One incremental enumeration run: serial, optionally restricted to the
// subtree below `prefix` (empty = whole forest), optionally aborting when
// `aborted` fires (cross-worker early exit). `context`, when given, is
// the shared read-only enumeration state (the parallel engine builds it
// once instead of once per subtree).
BruteForceOutcome RunIncremental(const NormDb& db, const NormQuery& query,
                                 const BruteForceOptions& options,
                                 const EnumerationContext* context,
                                 const std::vector<std::vector<int>>& prefix,
                                 const std::function<bool()>& aborted) {
  BruteForceOutcome outcome;
  ModelBuilder builder(db);
  QueryMatcher matcher(query, options.compiled);

  // Push (and with pruning on, check) the seeded prefix groups.
  for (const std::vector<int>& group : prefix) {
    builder.PushGroup(builder.depth(), group);
    if (options.prune_satisfied_prefix &&
        matcher.Matches(builder.view(), &builder.index(),
                        &outcome.check_stats)) {
      ++outcome.prefixes_pruned;
      outcome.groups_pushed = builder.groups_pushed();
      outcome.groups_popped = builder.groups_popped();
      return outcome;  // the whole subtree is satisfied
    }
  }

  ModelVisitor visitor;
  visitor.stats = &outcome.check_stats;
  visitor.on_group = [&](int depth, const std::vector<int>& group) {
    if (aborted != nullptr && aborted()) return false;
    if (options.budget != nullptr && !options.budget->Charge()) {
      outcome.exhausted = true;
      return false;
    }
    builder.PushGroup(depth, group);
    if (options.prune_satisfied_prefix &&
        matcher.Matches(builder.view(), &builder.index(),
                        &outcome.check_stats)) {
      ++outcome.prefixes_pruned;
      return false;
    }
    return true;
  };
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    if (aborted != nullptr && aborted()) return false;
    if (options.budget != nullptr && !options.budget->Charge()) {
      outcome.exhausted = true;
      return false;
    }
    ++outcome.models_enumerated;
    // The builder tracked every on_group append, so the complete model is
    // already materialized and indexed — no rebuild.
    builder.PopToDepth(static_cast<int>(groups.size()));
    bool satisfied =
        options.prune_satisfied_prefix
            ? false
            : matcher.Matches(builder.view(), &builder.index(),
                              &outcome.check_stats);
    if (!satisfied) {
      outcome.entailed = false;
      outcome.countermodel = builder.Snapshot();
      return false;
    }
    if (options.max_models >= 0 &&
        outcome.models_enumerated >= options.max_models) {
      outcome.limit_hit = true;
      return false;
    }
    return true;
  };
  if (context != nullptr) {
    ForEachMinimalModelFrom(db, *context, prefix, visitor);
  } else if (prefix.empty()) {
    ForEachMinimalModel(db, visitor);
  } else {
    ForEachMinimalModelFrom(db, prefix, visitor);
  }
  outcome.groups_pushed = builder.groups_pushed();
  outcome.groups_popped = builder.groups_popped();
  return outcome;
}

void MergeCounters(BruteForceOutcome& into, const BruteForceOutcome& from) {
  into.models_enumerated += from.models_enumerated;
  into.prefixes_pruned += from.prefixes_pruned;
  into.groups_pushed += from.groups_pushed;
  into.groups_popped += from.groups_popped;
  into.check_stats.Accumulate(from.check_stats);
  into.limit_hit = into.limit_hit || from.limit_hit;
  into.exhausted = into.exhausted || from.exhausted;
}

// Root-sharded parallel search: one task per first-group choice.
BruteForceOutcome EntailParallel(const NormDb& db, const NormQuery& query,
                                 const BruteForceOptions& options) {
  // The read-only enumeration state (reachability index + derived masks)
  // is built once per database and shared by the root collection and
  // every subtree worker. Building it here, before any worker spawns,
  // satisfies the lazy-fill thread contract.
  std::shared_ptr<const EnumerationContext> context =
      SharedEnumerationContext(db);

  // Collect the first-level groups; each is the root of an independent
  // enumeration subtree. The depth-0 probes are counted once, here (the
  // subtree workers seed past depth 0), so an entailed parallel run
  // reports exactly the serial counter totals.
  std::vector<std::vector<int>> roots;
  ModelCheckStats root_stats;
  ModelVisitor collect;
  collect.stats = &root_stats;
  collect.on_group = [&](int depth, const std::vector<int>& group) {
    IODB_CHECK_EQ(depth, 0);
    roots.push_back(group);
    return false;  // record the root, skip its subtree
  };
  collect.on_model = [](const std::vector<std::vector<int>>&) {
    return true;
  };
  ForEachMinimalModelFrom(db, *context, {}, collect);

  if (roots.size() <= 1) {
    // Whole forest in one serial run; drop the collection pass counters
    // (that run re-traverses depth 0 itself).
    return RunIncremental(db, query, options, context.get(), {}, nullptr);
  }

  // Lowest subtree index that produced a countermodel so far. A subtree k
  // aborts only when some i < k already found one — then k's outcome can
  // no longer be the reported countermodel — so the final winner is the
  // first countermodel of the lowest-indexed subtree containing any:
  // exactly what the serial search reports.
  std::atomic<int> found_min{std::numeric_limits<int>::max()};
  std::vector<BruteForceOutcome> outcomes(roots.size());
  ParallelFor(static_cast<int>(roots.size()), options.num_threads,
              [&](int k) {
                if (found_min.load(std::memory_order_relaxed) < k) {
                  return;  // a lower subtree already holds the verdict
                }
                auto aborted = [&found_min, k]() {
                  return found_min.load(std::memory_order_relaxed) < k;
                };
                outcomes[k] = RunIncremental(db, query, options, context.get(),
                                             {roots[k]}, aborted);
                if (!outcomes[k].entailed) {
                  int seen = found_min.load(std::memory_order_relaxed);
                  while (k < seen &&
                         !found_min.compare_exchange_weak(
                             seen, k, std::memory_order_relaxed)) {
                  }
                }
              });

  BruteForceOutcome merged;
  merged.check_stats.Accumulate(root_stats);
  const int winner = found_min.load(std::memory_order_relaxed);
  for (size_t k = 0; k < outcomes.size(); ++k) {
    MergeCounters(merged, outcomes[k]);
  }
  if (winner != std::numeric_limits<int>::max()) {
    merged.entailed = false;
    merged.countermodel = std::move(outcomes[winner].countermodel);
    // A found countermodel is a definite "not entailed" even if the
    // budget tripped in sibling subtrees afterwards.
    merged.exhausted = false;
  }
  return merged;
}

}  // namespace

BruteForceOutcome EntailBruteForce(const NormDb& db, const NormQuery& query,
                                   const BruteForceOptions& options) {
  if (query.trivially_true) return BruteForceOutcome{};
  if (options.compiled != nullptr) {
    IODB_CHECK_EQ(options.compiled->size(), query.disjuncts.size());
  }
  if (!options.use_incremental) return EntailRebuildPerModel(db, query, options);
  // A model budget is a global counter; sharding would make it racy.
  if (options.num_threads > 1 && options.max_models < 0) {
    return EntailParallel(db, query, options);
  }
  return RunIncremental(db, query, options, nullptr, {}, nullptr);
}

}  // namespace iodb
