#include "core/entail_bruteforce.h"

#include "core/minimal_models.h"
#include "core/model_check.h"

namespace iodb {

BruteForceOutcome EntailBruteForce(const NormDb& db, const NormQuery& query,
                                   const BruteForceOptions& options) {
  BruteForceOutcome outcome;
  if (query.trivially_true) return outcome;

  ModelVisitor visitor;
  // Prefix models are rebuilt per group append. Rebuilding is O(prefix)
  // and is dominated by the model check itself.
  std::vector<std::vector<int>> prefix;
  if (options.prune_satisfied_prefix) {
    visitor.on_group = [&](int depth, const std::vector<int>& group) {
      prefix.resize(depth);
      prefix.push_back(group);
      FiniteModel model = BuildPrefixModel(db, prefix);
      if (Satisfies(model, query)) {
        ++outcome.prefixes_pruned;
        return false;  // no countermodel below a satisfied prefix
      }
      return true;
    };
  }
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    ++outcome.models_enumerated;
    FiniteModel model = BuildMinimalModel(db, groups);
    // With pruning on, every level of this sort was already checked and
    // found unsatisfied — the complete model is a countermodel. Without
    // pruning, check now.
    bool satisfied =
        options.prune_satisfied_prefix ? false : Satisfies(model, query);
    if (!satisfied) {
      outcome.entailed = false;
      outcome.countermodel = std::move(model);
      return false;
    }
    if (options.max_models >= 0 &&
        outcome.models_enumerated >= options.max_models) {
      outcome.limit_hit = true;
      return false;
    }
    return true;
  };
  ForEachMinimalModel(db, visitor);
  return outcome;
}

}  // namespace iodb
