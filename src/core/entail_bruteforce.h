// Brute-force entailment by countermodel search over minimal models.
//
// By Corollary 2.9, D |= Φ iff every minimal model of D satisfies Φ; the
// engine enumerates minimal models and model-checks each. This realizes
// the generic upper bounds of Proposition 3.1 (co-NP data complexity, Π₂ᵖ
// combined complexity) and is the only engine applicable to arbitrary-
// arity queries and to databases carrying "!=" constraints (Section 7).
//
// Monotone prefix pruning: positive existential queries are preserved
// under homomorphisms, and a sort prefix embeds into each of its
// completions, so a branch whose prefix model already satisfies Φ cannot
// produce a countermodel and is cut.
//
// Evaluation is incremental by default: a ModelBuilder extends/retracts
// the prefix model in place (one group per enumeration edge) with a
// FactIndex maintained alongside, and the query runs through compiled
// matchers (model_matcher.h) so no per-model setup survives. The legacy
// rebuild-per-model path (BuildPrefixModel + the generic checker) is kept
// behind `use_incremental = false` as the reference implementation for
// the differential test suite.
//
// With `num_threads > 1` the enumeration forest is sharded at the root:
// each first-group subtree is an independent enumeration
// (ForEachMinimalModelFrom) handed to a worker. Verdict and countermodel
// are deterministic (the winning countermodel is the first one of the
// lowest-indexed subtree containing any, i.e. the one the serial search
// reports). Work counters are exact only when the query is entailed
// (every subtree runs to completion); with a countermodel they may
// differ from the serial run in either direction — aborted siblings
// undercount their subtrees, while subtrees past the winner count
// partial work a serial search never starts.

#ifndef IODB_CORE_ENTAIL_BRUTEFORCE_H_
#define IODB_CORE_ENTAIL_BRUTEFORCE_H_

#include <optional>
#include <vector>

#include "core/database.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/model_matcher.h"
#include "core/query.h"
#include "util/budget.h"

namespace iodb {

/// Options for the brute-force engine.
struct BruteForceOptions {
  /// Cut branches whose prefix already satisfies the query. Usually a
  /// large win; disable to measure the raw model count.
  bool prune_satisfied_prefix = true;
  /// Stop after enumerating this many complete models (-1 = unlimited).
  /// If the limit is hit before a countermodel is found the outcome is
  /// reported as entailed with `limit_hit` set — treat it as unknown.
  long long max_models = -1;
  /// Evaluate through the incremental ModelBuilder/FactIndex core
  /// (default). False selects the legacy rebuild-per-model path — slower,
  /// kept as the reference for differential testing.
  bool use_incremental = true;
  /// Shard independent root subtrees of the enumeration across this many
  /// workers (incremental path only; a max_models budget forces serial).
  int num_threads = 1;
  /// Optional plan-memoized schedules, parallel to query.disjuncts
  /// (PreparedQuery passes these so the topological variable orders are
  /// computed once at Prepare() time). Null compiles per engine run.
  const std::vector<const CompiledConjunct*>* compiled = nullptr;
  /// Optional execution budget, charged once per enumeration push and
  /// once per complete model; shared across all subtree workers when
  /// sharded. Null (the default) is the zero-overhead ungoverned path.
  /// When the budget trips the outcome reports `exhausted` and the
  /// verdict fields are meaningless — unless a countermodel was found,
  /// which stays a definite "not entailed".
  ExecBudget* budget = nullptr;
};

/// Outcome of a brute-force entailment check.
struct BruteForceOutcome {
  bool entailed = true;
  bool limit_hit = false;
  /// The ExecBudget tripped before the search finished and no definite
  /// verdict was reached; `entailed` must be ignored. Counters hold the
  /// partial work done up to the trip.
  bool exhausted = false;
  long long models_enumerated = 0;
  long long prefixes_pruned = 0;
  /// Incremental-core work counters (0 on the legacy path).
  long long groups_pushed = 0;
  long long groups_popped = 0;
  /// Model-check counters summed over every prefix/model check.
  ModelCheckStats check_stats;
  std::optional<FiniteModel> countermodel;
};

/// Decides db |= query over the finite-model semantics.
BruteForceOutcome EntailBruteForce(const NormDb& db, const NormQuery& query,
                                   const BruteForceOptions& options = {});

}  // namespace iodb

#endif  // IODB_CORE_ENTAIL_BRUTEFORCE_H_
