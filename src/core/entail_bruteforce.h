// Brute-force entailment by countermodel search over minimal models.
//
// By Corollary 2.9, D |= Φ iff every minimal model of D satisfies Φ; the
// engine enumerates minimal models and model-checks each. This realizes
// the generic upper bounds of Proposition 3.1 (co-NP data complexity, Π₂ᵖ
// combined complexity) and is the only engine applicable to arbitrary-
// arity queries and to databases carrying "!=" constraints (Section 7).
//
// Monotone prefix pruning: positive existential queries are preserved
// under homomorphisms, and a sort prefix embeds into each of its
// completions, so a branch whose prefix model already satisfies Φ cannot
// produce a countermodel and is cut.

#ifndef IODB_CORE_ENTAIL_BRUTEFORCE_H_
#define IODB_CORE_ENTAIL_BRUTEFORCE_H_

#include <optional>

#include "core/database.h"
#include "core/model.h"
#include "core/query.h"

namespace iodb {

/// Options for the brute-force engine.
struct BruteForceOptions {
  /// Cut branches whose prefix already satisfies the query. Usually a
  /// large win; disable to measure the raw model count.
  bool prune_satisfied_prefix = true;
  /// Stop after enumerating this many complete models (-1 = unlimited).
  /// If the limit is hit before a countermodel is found the outcome is
  /// reported as entailed with `limit_hit` set — treat it as unknown.
  long long max_models = -1;
};

/// Outcome of a brute-force entailment check.
struct BruteForceOutcome {
  bool entailed = true;
  bool limit_hit = false;
  long long models_enumerated = 0;
  long long prefixes_pruned = 0;
  std::optional<FiniteModel> countermodel;
};

/// Decides db |= query over the finite-model semantics.
BruteForceOutcome EntailBruteForce(const NormDb& db, const NormQuery& query,
                                   const BruteForceOptions& options = {});

}  // namespace iodb

#endif  // IODB_CORE_ENTAIL_BRUTEFORCE_H_
