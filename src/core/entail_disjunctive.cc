#include "core/entail_disjunctive.h"

#include <algorithm>
#include <unordered_set>

#include "graph/topo.h"

namespace iodb {
namespace {

struct Engine {
  const NormDb& db;
  const NormQuery& query;
  const DisjunctiveOptions& options;
  DisjunctiveOutcome outcome;
  Reachability reach;
  std::unordered_set<std::vector<int>, IntVectorHash> failed;
  std::vector<std::vector<int>> groups;  // current partial sort
  bool stop = false;

  Engine(const NormDb& d, const NormQuery& q, const DisjunctiveOptions& o)
      : db(d), query(q), options(o), reach(ComputeReachability(d.dag)) {}

  bool Comparable(int u, int v) const {
    return reach.reach.Get(u, v) || reach.reach.Get(v, u);
  }

  std::vector<bool> AliveFrom(const std::vector<int>& s) const {
    std::vector<bool> alive(db.num_points(), false);
    std::vector<int> queue(s);
    for (int v : queue) alive[v] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const Digraph::Arc& arc : db.dag.out(queue[head])) {
        if (!alive[arc.vertex]) {
          alive[arc.vertex] = true;
          queue.push_back(arc.vertex);
        }
      }
    }
    return alive;
  }

  // Forced greedy advance of the path position `u` of disjunct `i` when a
  // point with label union `a` is appended. Collects the possible next
  // positions (one per lazily chosen path continuation); a fully matched
  // path contributes nothing (that continuation is satisfied and dies).
  void AdvanceSet(int i, int u, const PredSet& a,
                  std::vector<int>& results,
                  std::vector<bool>& seen) const {
    const NormConjunct& conjunct = query.disjuncts[i];
    if (seen[u]) return;
    seen[u] = true;
    if (!conjunct.labels[u].IsSubsetOf(a)) {
      results.push_back(u);  // cannot be matched at this point: stays
      return;
    }
    // Matched at this point: must advance along some edge.
    for (const Digraph::Arc& arc : conjunct.dag.out(u)) {
      if (arc.rel == OrderRel::kLe) {
        AdvanceSet(i, arc.vertex, a, results, seen);  // may match same point
      } else if (!seen[conjunct.num_order_vars() + arc.vertex]) {
        // "<" successor waits for a strictly later point. (Offset marks in
        // `seen` distinguish "emitted as stopped" from "visited".)
        seen[conjunct.num_order_vars() + arc.vertex] = true;
        results.push_back(arc.vertex);
      }
    }
    // No out-arc: the chosen path is fully matched; nothing is emitted.
  }

  std::vector<int> ComputeAdvance(int i, int u, const PredSet& a) const {
    std::vector<int> results;
    std::vector<bool> seen(
        2 * static_cast<size_t>(query.disjuncts[i].num_order_vars()), false);
    AdvanceSet(i, u, a, results, seen);
    return results;
  }

  static std::vector<int> Key(const std::vector<int>& s,
                              const std::vector<int>& u_vec) {
    std::vector<int> key(s);
    key.push_back(-1);
    key.insert(key.end(), u_vec.begin(), u_vec.end());
    return key;
  }

  // Reports the current complete sort as a countermodel. Returns true if
  // the search should continue looking for more countermodels.
  bool ReportCounter() {
    ++outcome.countermodels_reported;
    FiniteModel model = BuildMinimalModel(db, groups);
    if (outcome.entailed) {
      outcome.entailed = false;
      outcome.countermodel = model;
    }
    if (options.on_countermodel != nullptr) {
      if (!options.on_countermodel(model)) stop = true;
      return !stop;
    }
    stop = true;  // decision mode: first countermodel suffices
    return false;
  }

  // Search for a completion of region S falsifying all disjunct paths.
  // Returns true if at least one countermodel was found below this state.
  bool Search(const std::vector<int>& s, const std::vector<int>& u_vec) {
    if (stop) return false;
    std::vector<int> key = Key(s, u_vec);
    if (failed.contains(key)) return false;
    ++outcome.states_visited;

    std::vector<bool> alive = AliveFrom(s);
    std::vector<bool> minor = MinorVertices(db.dag, alive);
    std::vector<int> candidates;
    for (int v = 0; v < db.num_points(); ++v) {
      if (alive[v] && minor[v]) candidates.push_back(v);
    }
    IODB_CHECK(!candidates.empty());

    bool found_any = false;
    std::vector<int> chosen;
    EnumerateGroups(candidates, 0, chosen, alive, u_vec, found_any);
    if (!found_any && !stop) failed.insert(std::move(key));
    return found_any;
  }

  // Enumerates the next-point group choices (antichains of minor vertices,
  // taken with their down-closures) and recurses.
  void EnumerateGroups(const std::vector<int>& candidates, size_t next,
                       std::vector<int>& chosen,
                       const std::vector<bool>& alive,
                       const std::vector<int>& u_vec, bool& found_any) {
    if (stop) return;
    for (size_t i = next; i < candidates.size() && !stop; ++i) {
      int v = candidates[i];
      bool independent = true;
      for (int u : chosen) {
        if (Comparable(u, v)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      chosen.push_back(v);
      if (TryGroup(candidates, chosen, alive, u_vec)) found_any = true;
      EnumerateGroups(candidates, i + 1, chosen, alive, u_vec, found_any);
      chosen.pop_back();
    }
  }

  bool TryGroup(const std::vector<int>& minors, const std::vector<int>& chosen,
                const std::vector<bool>& alive,
                const std::vector<int>& u_vec) {
    // Down-closure of the chosen antichain within the minor set.
    std::vector<int> group;
    PredSet point_label(db.vocab->num_predicates());
    for (int m : minors) {
      for (int a : chosen) {
        if (reach.reach.Get(m, a)) {
          group.push_back(m);
          point_label.UnionWith(db.labels[m]);
          break;
        }
      }
    }
    // Section 7 generalization: a sort group may not identify two points
    // declared unequal.
    for (const auto& [u, v] : db.inequalities) {
      bool has_u = std::find(group.begin(), group.end(), u) != group.end();
      bool has_v = std::find(group.begin(), group.end(), v) != group.end();
      if (has_u && has_v) return false;
    }

    // Per-disjunct forced advance; a disjunct whose every path choice is
    // satisfied by this point kills the group.
    std::vector<std::vector<int>> advance(query.disjuncts.size());
    for (size_t i = 0; i < query.disjuncts.size(); ++i) {
      advance[i] =
          ComputeAdvance(static_cast<int>(i), u_vec[i], point_label);
      if (advance[i].empty()) return false;
    }

    // Remaining region.
    std::vector<bool> next_alive = alive;
    for (int g : group) next_alive[g] = false;
    std::vector<int> next_s = MinimalVertices(db.dag, next_alive);

    groups.push_back(group);
    bool found = false;
    std::vector<int> next_u(u_vec.size());
    ProductSearch(advance, 0, next_u, next_s, found);
    groups.pop_back();
    return found;
  }

  void ProductSearch(const std::vector<std::vector<int>>& advance,
                     size_t index, std::vector<int>& next_u,
                     const std::vector<int>& next_s, bool& found) {
    if (stop) return;
    if (index == advance.size()) {
      if (next_s.empty()) {
        if (ReportCounter()) found = true;
        // ReportCounter() returning false may mean "stop everything"; the
        // countermodel itself still counts as found.
        found = true;
      } else if (Search(next_s, next_u)) {
        found = true;
      }
      return;
    }
    for (int u : advance[index]) {
      next_u[index] = u;
      ProductSearch(advance, index + 1, next_u, next_s, found);
      if (stop) return;
    }
  }
};

}  // namespace

DisjunctiveOutcome EntailDisjunctive(const NormDb& db,
                                     const NormQuery& raw_query,
                                     const DisjunctiveOptions& options) {
  IODB_CHECK(raw_query.IsMonadicOrderOnly());

  DisjunctiveOutcome trivial;
  if (raw_query.trivially_true) return trivial;

  // Drop redundant query atoms so per-disjunct path automata track only
  // maximal paths (see TransitiveReduceConjunct) — unless the caller's
  // plan already holds the reduced disjuncts (memoized at prepare time).
  NormQuery reduced_storage;
  if (!options.already_reduced) {
    reduced_storage.vocab = raw_query.vocab;
    for (const NormConjunct& conjunct : raw_query.disjuncts) {
      reduced_storage.disjuncts.push_back(TransitiveReduceConjunct(conjunct));
    }
  }
  const NormQuery& query =
      options.already_reduced ? raw_query : reduced_storage;

  Engine engine(db, query, options);

  // Initial per-disjunct positions: a minimal vertex of each disjunct dag.
  // A disjunct without order variables is the empty conjunction and makes
  // the query trivially true (handled above).
  std::vector<std::vector<int>> initial_choices;
  for (const NormConjunct& conjunct : query.disjuncts) {
    IODB_CHECK_GT(conjunct.num_order_vars(), 0);
    std::vector<bool> all(conjunct.num_order_vars(), true);
    initial_choices.push_back(MinimalVertices(conjunct.dag, all));
  }

  if (db.num_points() == 0) {
    // The unique minimal model is empty; every disjunct (which needs at
    // least one point) is falsified.
    engine.outcome.entailed = false;
    FiniteModel model = BuildMinimalModel(db, {});
    engine.outcome.countermodel = model;
    engine.outcome.countermodels_reported = 1;
    if (options.on_countermodel != nullptr) options.on_countermodel(model);
    return engine.outcome;
  }

  // Branch over the product of initial path starts.
  std::vector<bool> all_alive(db.num_points(), true);
  std::vector<int> s0 = MinimalVertices(db.dag, all_alive);
  std::vector<int> u0(query.disjuncts.size(), -1);
  std::function<void(size_t)> product = [&](size_t index) {
    if (engine.stop) return;
    if (index == initial_choices.size()) {
      engine.Search(s0, u0);
      return;
    }
    for (int u : initial_choices[index]) {
      u0[index] = u;
      product(index + 1);
      if (engine.stop) return;
    }
  };
  product(0);
  return engine.outcome;
}

}  // namespace iodb
