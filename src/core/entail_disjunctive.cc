#include "core/entail_disjunctive.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_set>

#include "core/minimal_models.h"
#include "graph/topo.h"

namespace iodb {
namespace {

// Packed search-state key for the mask fast path: the alive-region word
// plus the per-disjunct path positions (12 bits each). The alive word is
// a canonical stand-in for the seed set s (s = minimal vertices of the
// region, the region = up-closure of s).
struct PackedKeyHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& k) const {
    uint64_t h = k.first * 0x9e3779b97f4a7c15ULL;
    h ^= k.second + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

struct Engine {
  const NormDb& db;
  const NormQuery& query;
  const DisjunctiveOptions& options;
  DisjunctiveOutcome outcome;
  // Oracle path: per-call closure. Incremental path: the database's
  // shared context (interval index + masks when num_points <= 64).
  std::optional<Reachability> reach;
  std::shared_ptr<const EnumerationContext> ctx;
  bool fast = false;  // mask fast path active
  ReachProbeStats rstats;
  std::unordered_set<std::vector<int>, IntVectorHash> failed;
  std::unordered_set<std::pair<uint64_t, uint64_t>, PackedKeyHash>
      failed_packed;
  std::vector<std::vector<int>> groups;  // current partial sort
  bool stop = false;
  bool exhausted = false;

  // Budget seam: counts one unit of search work; on a trip sets the
  // sticky exhausted flag and the stop flag so every loop unwinds (and,
  // via the existing `!stop` guards, nothing half-explored is memoized).
  bool ChargeBudget() {
    if (options.budget == nullptr || options.budget->Charge()) return true;
    exhausted = true;
    stop = true;
    return false;
  }

  // The packed key holds 12 bits per disjunct position; the fast path
  // additionally needs every point in one machine word.
  static constexpr size_t kMaxPackedDisjuncts = 5;
  static constexpr int kMaxPackedPosition = 1 << 12;

  Engine(const NormDb& d, const NormQuery& q, const DisjunctiveOptions& o)
      : db(d), query(q), options(o) {
    if (options.use_incremental) {
      ctx = SharedEnumerationContext(db);
      fast = ctx->has_masks && query.disjuncts.size() <= kMaxPackedDisjuncts;
      for (const NormConjunct& conjunct : query.disjuncts) {
        if (conjunct.num_order_vars() >= kMaxPackedPosition) fast = false;
      }
    } else {
      reach.emplace(ComputeReachability(d.dag));
    }
  }

  bool Comparable(int u, int v) {
    if (reach.has_value()) {
      return reach->reach.Get(u, v) || reach->reach.Get(v, u);
    }
    return ctx->Comparable(u, v, &rstats);
  }

  // Weak order-reachability m -> a (true when m == a).
  bool Reaches(int m, int a) {
    if (reach.has_value()) return reach->reach.Get(m, a);
    return ctx->Reaches(m, a, &rstats);
  }

  std::vector<bool> AliveFrom(const std::vector<int>& s) const {
    std::vector<bool> alive(db.num_points(), false);
    std::vector<int> queue(s);
    for (int v : queue) alive[v] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const Digraph::Arc& arc : db.dag.out(queue[head])) {
        if (!alive[arc.vertex]) {
          alive[arc.vertex] = true;
          queue.push_back(arc.vertex);
        }
      }
    }
    return alive;
  }

  // Forced greedy advance of the path position `u` of disjunct `i` when a
  // point with label union `a` is appended. Collects the possible next
  // positions (one per lazily chosen path continuation); a fully matched
  // path contributes nothing (that continuation is satisfied and dies).
  void AdvanceSet(int i, int u, const PredSet& a,
                  std::vector<int>& results,
                  std::vector<bool>& seen) const {
    const NormConjunct& conjunct = query.disjuncts[i];
    if (seen[u]) return;
    seen[u] = true;
    if (!conjunct.labels[u].IsSubsetOf(a)) {
      results.push_back(u);  // cannot be matched at this point: stays
      return;
    }
    // Matched at this point: must advance along some edge.
    for (const Digraph::Arc& arc : conjunct.dag.out(u)) {
      if (arc.rel == OrderRel::kLe) {
        AdvanceSet(i, arc.vertex, a, results, seen);  // may match same point
      } else if (!seen[conjunct.num_order_vars() + arc.vertex]) {
        // "<" successor waits for a strictly later point. (Offset marks in
        // `seen` distinguish "emitted as stopped" from "visited".)
        seen[conjunct.num_order_vars() + arc.vertex] = true;
        results.push_back(arc.vertex);
      }
    }
    // No out-arc: the chosen path is fully matched; nothing is emitted.
  }

  std::vector<int> ComputeAdvance(int i, int u, const PredSet& a) const {
    std::vector<int> results;
    std::vector<bool> seen(
        2 * static_cast<size_t>(query.disjuncts[i].num_order_vars()), false);
    AdvanceSet(i, u, a, results, seen);
    return results;
  }

  static std::vector<int> Key(const std::vector<int>& s,
                              const std::vector<int>& u_vec) {
    std::vector<int> key(s);
    key.push_back(-1);
    key.insert(key.end(), u_vec.begin(), u_vec.end());
    return key;
  }

  static uint64_t PackPositions(const std::vector<int>& u_vec) {
    uint64_t pack = 0;
    for (size_t i = 0; i < u_vec.size(); ++i) {
      pack |= static_cast<uint64_t>(u_vec[i]) << (12 * i);
    }
    return pack;
  }

  // Reports the current complete sort as a countermodel. Returns true if
  // the search should continue looking for more countermodels.
  bool ReportCounter() {
    ++outcome.countermodels_reported;
    FiniteModel model = BuildMinimalModel(db, groups);
    if (outcome.entailed) {
      outcome.entailed = false;
      outcome.countermodel = model;
    }
    if (options.on_countermodel != nullptr) {
      if (!options.on_countermodel(model)) stop = true;
      return !stop;
    }
    stop = true;  // decision mode: first countermodel suffices
    return false;
  }

  // Entry point: dispatches the initial state to the active path.
  bool SearchTop(const std::vector<int>& s, const std::vector<int>& u_vec) {
    if (fast) {
      uint64_t alive = 0;
      for (int v : s) alive |= ctx->desc_mask[v];
      return SearchMask(alive, u_vec);
    }
    return Search(s, u_vec);
  }

  // ---------------------------------------------------------------------
  // General path (oracle closure, or interval probes for > 64 points).
  // ---------------------------------------------------------------------

  // Search for a completion of region S falsifying all disjunct paths.
  // Returns true if at least one countermodel was found below this state.
  bool Search(const std::vector<int>& s, const std::vector<int>& u_vec) {
    if (stop) return false;
    std::vector<int> key = Key(s, u_vec);
    if (failed.contains(key)) return false;
    if (!ChargeBudget()) return false;
    ++outcome.states_visited;

    std::vector<bool> alive = AliveFrom(s);
    std::vector<bool> minor = MinorVertices(db.dag, alive);
    std::vector<int> candidates;
    for (int v = 0; v < db.num_points(); ++v) {
      if (alive[v] && minor[v]) candidates.push_back(v);
    }
    IODB_CHECK(!candidates.empty());

    bool found_any = false;
    std::vector<int> chosen;
    EnumerateGroups(candidates, 0, chosen, alive, u_vec, found_any);
    if (!found_any && !stop) failed.insert(std::move(key));
    return found_any;
  }

  // Enumerates the next-point group choices (antichains of minor vertices,
  // taken with their down-closures) and recurses.
  void EnumerateGroups(const std::vector<int>& candidates, size_t next,
                       std::vector<int>& chosen,
                       const std::vector<bool>& alive,
                       const std::vector<int>& u_vec, bool& found_any) {
    if (stop) return;
    for (size_t i = next; i < candidates.size() && !stop; ++i) {
      int v = candidates[i];
      bool independent = true;
      for (int u : chosen) {
        if (Comparable(u, v)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      chosen.push_back(v);
      if (TryGroup(candidates, chosen, alive, u_vec)) found_any = true;
      EnumerateGroups(candidates, i + 1, chosen, alive, u_vec, found_any);
      chosen.pop_back();
    }
  }

  bool TryGroup(const std::vector<int>& minors, const std::vector<int>& chosen,
                const std::vector<bool>& alive,
                const std::vector<int>& u_vec) {
    if (!ChargeBudget()) return false;
    // Down-closure of the chosen antichain within the minor set.
    std::vector<int> group;
    PredSet point_label(db.vocab->num_predicates());
    for (int m : minors) {
      for (int a : chosen) {
        if (Reaches(m, a)) {
          group.push_back(m);
          point_label.UnionWith(db.labels[m]);
          break;
        }
      }
    }
    // Section 7 generalization: a sort group may not identify two points
    // declared unequal.
    for (const auto& [u, v] : db.inequalities) {
      bool has_u = std::find(group.begin(), group.end(), u) != group.end();
      bool has_v = std::find(group.begin(), group.end(), v) != group.end();
      if (has_u && has_v) return false;
    }

    // Per-disjunct forced advance; a disjunct whose every path choice is
    // satisfied by this point kills the group.
    std::vector<std::vector<int>> advance(query.disjuncts.size());
    for (size_t i = 0; i < query.disjuncts.size(); ++i) {
      advance[i] =
          ComputeAdvance(static_cast<int>(i), u_vec[i], point_label);
      if (advance[i].empty()) return false;
    }

    // Remaining region.
    std::vector<bool> next_alive = alive;
    for (int g : group) next_alive[g] = false;
    std::vector<int> next_s = MinimalVertices(db.dag, next_alive);

    groups.push_back(group);
    bool found = false;
    std::vector<int> next_u(u_vec.size());
    ProductSearch(advance, 0, next_u, next_s, found);
    groups.pop_back();
    return found;
  }

  void ProductSearch(const std::vector<std::vector<int>>& advance,
                     size_t index, std::vector<int>& next_u,
                     const std::vector<int>& next_s, bool& found) {
    if (stop) return;
    if (index == advance.size()) {
      if (next_s.empty()) {
        if (ReportCounter()) found = true;
        // ReportCounter() returning false may mean "stop everything"; the
        // countermodel itself still counts as found.
        found = true;
      } else if (Search(next_s, next_u)) {
        found = true;
      }
      return;
    }
    for (int u : advance[index]) {
      next_u[index] = u;
      ProductSearch(advance, index + 1, next_u, next_s, found);
      if (stop) return;
    }
  }

  // ---------------------------------------------------------------------
  // Mask fast path (<= 64 points, <= 5 disjuncts). Identical state space,
  // group enumeration order and countermodel sequence as the general
  // path; the alive region, minor test, antichain independence and group
  // down-closure all become single-word operations on the context masks.
  // ---------------------------------------------------------------------

  bool SearchMask(uint64_t alive, const std::vector<int>& u_vec) {
    if (stop) return false;
    std::pair<uint64_t, uint64_t> key{alive, PackPositions(u_vec)};
    if (failed_packed.contains(key)) return false;
    if (!ChargeBudget()) return false;
    ++outcome.states_visited;

    // A vertex is minor iff no strict ancestor is alive.
    uint64_t minors = 0;
    for (uint64_t rest = alive; rest != 0; rest &= rest - 1) {
      int v = std::countr_zero(rest);
      if ((ctx->strict_anc_mask[v] & alive) == 0) minors |= uint64_t{1} << v;
    }
    rstats.probes += std::popcount(alive);
    rstats.fast_hits += std::popcount(alive);
    IODB_CHECK(minors != 0);

    bool found_any = false;
    EnumerateGroupsMask(minors, minors, alive, /*incompat=*/0,
                        /*chosen_anc=*/0, u_vec, found_any);
    if (!found_any && !stop) failed_packed.insert(key);
    return found_any;
  }

  // `rest` iterates the candidate minors in ascending vertex order (the
  // same order the general path scans `candidates[i..]`); `incompat`
  // accumulates every vertex comparable to a chosen one; `chosen_anc` is
  // the union of the chosen vertices' ancestor masks, so the group's
  // down-closure is one AND away.
  void EnumerateGroupsMask(uint64_t minors, uint64_t rest, uint64_t alive,
                           uint64_t incompat, uint64_t chosen_anc,
                           const std::vector<int>& u_vec, bool& found_any) {
    if (stop) return;
    for (; rest != 0 && !stop; rest &= rest - 1) {
      int v = std::countr_zero(rest);
      ++rstats.probes;
      ++rstats.fast_hits;
      if ((incompat >> v) & 1) continue;
      uint64_t next_anc = chosen_anc | ctx->anc_mask[v];
      if (TryGroupMask(minors, next_anc, alive, u_vec)) found_any = true;
      EnumerateGroupsMask(minors, rest & (rest - 1), alive,
                          incompat | ctx->desc_mask[v] | ctx->anc_mask[v],
                          next_anc, u_vec, found_any);
    }
  }

  bool TryGroupMask(uint64_t minors, uint64_t chosen_anc, uint64_t alive,
                    const std::vector<int>& u_vec) {
    if (!ChargeBudget()) return false;
    // Down-closure of the chosen antichain within the minor set: the
    // minors that (weakly) reach a chosen vertex.
    uint64_t group_mask = minors & chosen_anc;
    rstats.probes += std::popcount(minors);
    rstats.fast_hits += std::popcount(minors);
    for (const auto& [u, v] : db.inequalities) {
      if (((group_mask >> u) & 1) && ((group_mask >> v) & 1)) return false;
    }

    std::vector<int> group;
    PredSet point_label(db.vocab->num_predicates());
    for (uint64_t g = group_mask; g != 0; g &= g - 1) {
      int m = std::countr_zero(g);
      group.push_back(m);
      point_label.UnionWith(db.labels[m]);
    }

    std::vector<std::vector<int>> advance(query.disjuncts.size());
    for (size_t i = 0; i < query.disjuncts.size(); ++i) {
      advance[i] =
          ComputeAdvance(static_cast<int>(i), u_vec[i], point_label);
      if (advance[i].empty()) return false;
    }

    uint64_t next_alive = alive & ~group_mask;
    groups.push_back(std::move(group));
    bool found = false;
    std::vector<int> next_u(u_vec.size());
    ProductSearchMask(advance, 0, next_u, next_alive, found);
    groups.pop_back();
    return found;
  }

  void ProductSearchMask(const std::vector<std::vector<int>>& advance,
                         size_t index, std::vector<int>& next_u,
                         uint64_t next_alive, bool& found) {
    if (stop) return;
    if (index == advance.size()) {
      if (next_alive == 0) {
        if (ReportCounter()) found = true;
        found = true;
      } else if (SearchMask(next_alive, next_u)) {
        found = true;
      }
      return;
    }
    for (int u : advance[index]) {
      next_u[index] = u;
      ProductSearchMask(advance, index + 1, next_u, next_alive, found);
      if (stop) return;
    }
  }
};

}  // namespace

DisjunctiveOutcome EntailDisjunctive(const NormDb& db,
                                     const NormQuery& raw_query,
                                     const DisjunctiveOptions& options) {
  IODB_CHECK(raw_query.IsMonadicOrderOnly());

  DisjunctiveOutcome trivial;
  if (raw_query.trivially_true) return trivial;

  // Drop redundant query atoms so per-disjunct path automata track only
  // maximal paths (see TransitiveReduceConjunct) — unless the caller's
  // plan already holds the reduced disjuncts (memoized at prepare time).
  NormQuery reduced_storage;
  if (!options.already_reduced) {
    reduced_storage.vocab = raw_query.vocab;
    for (const NormConjunct& conjunct : raw_query.disjuncts) {
      reduced_storage.disjuncts.push_back(TransitiveReduceConjunct(conjunct));
    }
  }
  const NormQuery& query =
      options.already_reduced ? raw_query : reduced_storage;

  Engine engine(db, query, options);

  // Initial per-disjunct positions: a minimal vertex of each disjunct dag.
  // A disjunct without order variables is the empty conjunction and makes
  // the query trivially true (handled above).
  std::vector<std::vector<int>> initial_choices;
  for (const NormConjunct& conjunct : query.disjuncts) {
    IODB_CHECK_GT(conjunct.num_order_vars(), 0);
    std::vector<bool> all(conjunct.num_order_vars(), true);
    initial_choices.push_back(MinimalVertices(conjunct.dag, all));
  }

  if (db.num_points() == 0) {
    // The unique minimal model is empty; every disjunct (which needs at
    // least one point) is falsified.
    engine.outcome.entailed = false;
    FiniteModel model = BuildMinimalModel(db, {});
    engine.outcome.countermodel = model;
    engine.outcome.countermodels_reported = 1;
    if (options.on_countermodel != nullptr) options.on_countermodel(model);
    return engine.outcome;
  }

  // Branch over the product of initial path starts.
  std::vector<bool> all_alive(db.num_points(), true);
  std::vector<int> s0 = MinimalVertices(db.dag, all_alive);
  std::vector<int> u0(query.disjuncts.size(), -1);
  std::function<void(size_t)> product = [&](size_t index) {
    if (engine.stop) return;
    if (index == initial_choices.size()) {
      engine.SearchTop(s0, u0);
      return;
    }
    for (int u : initial_choices[index]) {
      u0[index] = u;
      product(index + 1);
      if (engine.stop) return;
    }
  };
  product(0);
  engine.outcome.exhausted = engine.exhausted;
  engine.outcome.check_stats.AddReachProbes(engine.rstats);
  engine.outcome.check_stats.index_rebuilds =
      engine.ctx != nullptr ? engine.ctx->index_rebuilds() : 0;
  return engine.outcome;
}

}  // namespace iodb
