// The Theorem 5.3 engine: disjunctive monadic queries over width-k
// databases in O(|D|^{2k} · |Pred| · Π|Φᵢ|), with countermodel
// enumeration.
//
// The engine searches for a countermodel by building a topological sort of
// the database point by point while running, for every disjunct Φᵢ, a
// nondeterministically chosen maximal path of Φᵢ through a *forced greedy*
// matcher:
//   * the state per disjunct is the next unmatched vertex uᵢ of the chosen
//     path (the path itself is chosen lazily, one successor at a time);
//   * when a new point with label set `a` is appended, the matcher must
//     advance uᵢ as long as Φᵢ[uᵢ] ⊆ a (greedy leftmost matching is
//     complete for sequential patterns, so refusing to advance would
//     wrongly report a satisfied path as falsified); a "<=" successor may
//     continue matching at the same point, a "<" successor stops;
//   * a path whose final vertex gets matched is satisfied — that branch
//     dies (by Lemma 4.1, a model falsifies Φᵢ iff it falsifies SOME
//     maximal path of Φᵢ; the search tries the other paths on other
//     branches).
// A completed sort in which every disjunct still has a pending vertex is a
// countermodel. Failure states are memoized, so deciding entailment stays
// within the paper's bound and enumeration has (amortized) polynomial
// delay between outputs, mirroring the paper's remark after Theorem 5.3.

#ifndef IODB_CORE_ENTAIL_DISJUNCTIVE_H_
#define IODB_CORE_ENTAIL_DISJUNCTIVE_H_

#include <functional>
#include <optional>

#include "core/database.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/query.h"
#include "util/budget.h"

namespace iodb {

/// Options for the disjunctive engine.
struct DisjunctiveOptions {
  /// When set, every countermodel found is reported (the same model may be
  /// reported more than once, reached through different path choices — the
  /// paper's enumeration has the same redundancy). Return false to stop.
  /// When unset, the search stops at the first countermodel.
  std::function<bool(const FiniteModel&)> on_countermodel;
  /// The query's disjuncts are already transitively reduced; skip the
  /// per-call reduction (PreparedQuery memoizes it at Prepare() time).
  bool already_reduced = false;
  /// Route order tests through the database's shared reachability context
  /// (single-word mask probes for databases of at most 64 points, interval
  /// probes otherwise). False runs the original per-call closure path,
  /// kept as the differential oracle. Both paths visit the same states and
  /// report countermodels in the same sequence.
  bool use_incremental = true;
  /// Optional execution budget, charged once per search state and once
  /// per group candidate tried. Null (the default) is the zero-overhead
  /// ungoverned path. On a trip the outcome reports `exhausted`;
  /// partially explored states are never memoized as failed.
  ExecBudget* budget = nullptr;
};

/// Outcome of the disjunctive engine.
struct DisjunctiveOutcome {
  bool entailed = true;
  /// The ExecBudget tripped before the search finished. In decision mode
  /// this implies no countermodel was found and `entailed` must be
  /// ignored. In enumeration mode countermodels reported before the trip
  /// are genuine but the enumeration (and any count) is incomplete.
  bool exhausted = false;
  long long states_visited = 0;
  long long countermodels_reported = 0;
  std::optional<FiniteModel> countermodel;
  /// Reachability-probe counters of the incremental path (zeroes under
  /// the oracle path, which predates the counting seam).
  ModelCheckStats check_stats;
};

/// Decides db |= query for a monadic-order-only query (every disjunct).
/// Databases MAY carry "!=" constraints: per the Section 7 remark, the
/// sorting procedure is modified so that a group never identifies two
/// points declared unequal, preserving the O(|D|^{2k}·|Φ|^l) bound for
/// monadic [<,<=]-queries over [<,<=,!=]-databases of width k.
DisjunctiveOutcome EntailDisjunctive(const NormDb& db, const NormQuery& query,
                                     const DisjunctiveOptions& options = {});

}  // namespace iodb

#endif  // IODB_CORE_ENTAIL_DISJUNCTIVE_H_
