#include "core/entail_paths.h"

namespace iodb {

PathEngineOutcome EntailByPaths(const NormDb& db,
                                const NormConjunct& conjunct,
                                ExecBudget* budget) {
  IODB_CHECK(conjunct.IsMonadicOrderOnly());
  PathEngineOutcome outcome;
  ForEachPath(conjunct.dag, conjunct.labels, [&](const FlexiWord& path) {
    if (budget != nullptr && !budget->Charge()) {
      outcome.exhausted = true;
      return false;
    }
    ++outcome.paths_checked;
    if (!SeqEntails(db, path, &outcome.seq_stats)) {
      outcome.entailed = false;
      outcome.failing_path = path;
      return false;
    }
    return true;
  });
  return outcome;
}

}  // namespace iodb
