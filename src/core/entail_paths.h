// Path-decomposition engine for conjunctive monadic queries (Lemma 4.1).
//
// D |= Φ iff D |= p for every maximal path p of Φ, so entailment reduces
// to |Paths(Φ)| runs of SEQ. The number of paths can grow exponentially in
// |Φ| (which is why combined complexity is co-NP-hard, Theorem 4.6), but
// for a fixed query it is a constant: this engine realizes the linear-time
// data complexity of Corollary 4.4.

#ifndef IODB_CORE_ENTAIL_PATHS_H_
#define IODB_CORE_ENTAIL_PATHS_H_

#include <optional>

#include "core/database.h"
#include "core/flexiword.h"
#include "core/query.h"
#include "core/seq.h"
#include "util/budget.h"

namespace iodb {

/// Outcome of the path-decomposition engine.
struct PathEngineOutcome {
  bool entailed = true;
  /// The ExecBudget tripped before every path was checked and no failing
  /// path had been found; `entailed` must be ignored. A failing path
  /// found before the trip stays a definite "not entailed".
  bool exhausted = false;
  long long paths_checked = 0;
  /// A path of the query not entailed by the database, when not entailed.
  std::optional<FlexiWord> failing_path;
  SeqStats seq_stats;
};

/// Decides db |= conjunct for a monadic-order-only conjunct. Paths are
/// enumerated lazily; the engine stops at the first failing path.
/// `budget`, when non-null, is charged once per path checked.
PathEngineOutcome EntailByPaths(const NormDb& db,
                                const NormConjunct& conjunct,
                                ExecBudget* budget = nullptr);

}  // namespace iodb

#endif  // IODB_CORE_ENTAIL_PATHS_H_
