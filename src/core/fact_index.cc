#include "core/fact_index.h"

#include <bit>

namespace iodb {

FactIndex::FactIndex(const VocabularyPtr& vocab, int max_points)
    : max_points_(max_points), words_((max_points + 63) / 64) {
  IODB_CHECK(vocab != nullptr);
  const int n = vocab->num_predicates();
  arity_.reserve(n);
  for (int p = 0; p < n; ++p) arity_.push_back(vocab->predicate(p).arity());
  buckets_.resize(n);
  tuple_count_.assign(n, 0);
  point_bits_.assign(static_cast<size_t>(n) * words_, 0);
}

FactIndex FactIndex::FromModel(const FiniteModel& model) {
  FactIndex index(model.vocab, model.num_points);
  for (int p = 0; p < model.num_points; ++p) {
    index.SetPointLabel(p, model.point_labels[p]);
  }
  for (const ProperAtom& fact : model.other_facts) index.AddFact(fact);
  return index;
}

void FactIndex::SetPointLabel(int point, const PredSet& label) {
  IODB_CHECK_GE(point, 0);
  IODB_CHECK_LT(point, max_points_);
  const std::vector<uint64_t>& words = label.words();
  const uint64_t bit = uint64_t{1} << (point & 63);
  const size_t slot = static_cast<size_t>(point) >> 6;
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int pred = static_cast<int>(w) * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      point_bits_[static_cast<size_t>(pred) * words_ + slot] |= bit;
    }
  }
}

void FactIndex::ClearPointLabel(int point, const PredSet& label) {
  const std::vector<uint64_t>& words = label.words();
  const uint64_t bit = uint64_t{1} << (point & 63);
  const size_t slot = static_cast<size_t>(point) >> 6;
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      const int pred = static_cast<int>(w) * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      point_bits_[static_cast<size_t>(pred) * words_ + slot] &= ~bit;
    }
  }
}

void FactIndex::AddFact(const ProperAtom& atom) {
  IODB_CHECK_EQ(static_cast<int>(atom.args.size()), arity_[atom.pred]);
  std::vector<int>& bucket = buckets_[atom.pred];
  for (const Term& term : atom.args) bucket.push_back(term.id);
  ++tuple_count_[atom.pred];
  undo_preds_.push_back(atom.pred);
}

void FactIndex::RewindTo(size_t mark) {
  IODB_CHECK_LE(mark, undo_preds_.size());
  while (undo_preds_.size() > mark) {
    const int pred = undo_preds_.back();
    undo_preds_.pop_back();
    std::vector<int>& bucket = buckets_[pred];
    bucket.resize(bucket.size() - arity_[pred]);
    --tuple_count_[pred];
  }
}

bool FactIndex::ContainsTuple(int pred, const int* args, int arity,
                              ModelCheckStats* stats) const {
  IODB_CHECK_EQ(arity, arity_[pred]);
  const std::vector<int>& bucket = buckets_[pred];
  if (stats != nullptr) ++stats->index_probes;
  if (arity == 0) return tuple_count_[pred] > 0;
  const size_t tuples = bucket.size() / arity;
  if (stats != nullptr) stats->facts_scanned += static_cast<long long>(tuples);
  for (size_t t = 0; t < tuples; ++t) {
    const int* fact = bucket.data() + t * arity;
    bool match = true;
    for (int i = 0; i < arity; ++i) {
      if (fact[i] != args[i]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

}  // namespace iodb
