// FactIndex: interned, predicate-bucketed fact storage for model checking.
//
// Facts are bucketed by predicate id in flat int vectors (argument ids
// flattened in signature order, stride = arity), so a Satisfies() probe is
// a stride scan over contiguous memory instead of a per-call hash-map
// rebuild — the co-located index layout of RDF-3X applied to the
// enumerate-and-probe loop of the brute-force engine. The index also
// keeps the transposed monadic-label matrix (predicate -> bitset of model
// points), which the compiled matcher intersects to enumerate the
// candidate points of an order variable directly instead of testing every
// point's label for subset inclusion.
//
// Both structures support O(1) amortized incremental append and strict
// LIFO rewind, so ModelBuilder maintains them across push/pop of
// enumeration groups without ever rebuilding (the "index once" half of
// the incremental evaluation core).

#ifndef IODB_CORE_FACT_INDEX_H_
#define IODB_CORE_FACT_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/atom.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/types.h"

namespace iodb {

class FactIndex {
 public:
  /// An index over models with at most `max_points` order points, for the
  /// predicates of `vocab` (the vocabulary must not grow afterwards).
  FactIndex(const VocabularyPtr& vocab, int max_points);

  /// Convenience for non-incremental callers: indexes every non-monadic
  /// fact and every point label of `model` in one pass.
  static FactIndex FromModel(const FiniteModel& model);

  int num_predicates() const { return static_cast<int>(arity_.size()); }
  int max_points() const { return max_points_; }

  // --- incremental maintenance (LIFO) --------------------------------------

  /// Records that `point` carries exactly the monadic labels of `label`.
  /// The point must currently be unlabelled (freshly pushed).
  void SetPointLabel(int point, const PredSet& label);
  /// Clears the labels of `point` again; `label` must be the set passed to
  /// the matching SetPointLabel.
  void ClearPointLabel(int point, const PredSet& label);

  /// Appends a non-monadic fact (argument ids flattened in signature
  /// order; order-sort ids are model points).
  void AddFact(const ProperAtom& atom);

  /// Position marker for RewindTo: facts added after Mark() are removed,
  /// in LIFO order, by RewindTo(mark).
  size_t Mark() const { return undo_preds_.size(); }
  void RewindTo(size_t mark);

  // --- probes --------------------------------------------------------------

  /// True if the tuple pred(args[0..arity-1]) was added (and not rewound).
  bool ContainsTuple(int pred, const int* args, int arity,
                     ModelCheckStats* stats) const;

  /// The point bitset of `pred`: bit p of word p/64 is set iff point p
  /// carries the label `pred`. Always words_per_point_set() words long.
  const uint64_t* PointsWith(int pred) const {
    return point_bits_.data() + static_cast<size_t>(pred) * words_;
  }
  int words_per_point_set() const { return words_; }

 private:
  int max_points_ = 0;
  int words_ = 0;                          // words per point bitset
  std::vector<int> arity_;                 // per predicate
  std::vector<std::vector<int>> buckets_;  // per predicate, flattened args
  std::vector<long long> tuple_count_;     // per predicate (covers arity 0)
  std::vector<int> undo_preds_;            // predicate ids in add order
  std::vector<uint64_t> point_bits_;       // [pred * words_ + w]
};

}  // namespace iodb

#endif  // IODB_CORE_FACT_INDEX_H_
