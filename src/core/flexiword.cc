#include "core/flexiword.h"

#include <algorithm>

#include "graph/topo.h"
#include "util/strings.h"

namespace iodb {

bool FlexiWord::IsWord() const {
  return std::all_of(rels.begin(), rels.end(),
                     [](OrderRel r) { return r == OrderRel::kLt; });
}

std::string FlexiWord::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (int i = 0; i < size(); ++i) {
    if (i > 0) {
      out += rels[i - 1] == OrderRel::kLt ? " < " : " <= ";
    }
    std::vector<std::string> names;
    for (int pred : symbols[i].Elements()) {
      names.push_back(vocab.predicate(pred).name);
    }
    out += "[" + Join(names, ",") + "]";
  }
  return out;
}

FlexiWord WordOfModel(const FiniteModel& model) {
  for (const ProperAtom& fact : model.other_facts) {
    for (const Term& term : fact.args) {
      IODB_CHECK(term.sort != Sort::kOrder);  // monadic view only
    }
  }
  FlexiWord word;
  word.symbols = model.point_labels;
  if (model.num_points > 1) {
    word.rels.assign(model.num_points - 1, OrderRel::kLt);
  }
  return word;
}

bool WordSatisfies(const FlexiWord& word, const FlexiWord& pattern) {
  IODB_CHECK(word.IsWord());
  const int n = pattern.size();
  int j = 0;
  if (j == n) return true;
  for (int i = 0; i < word.size(); ++i) {
    // Greedy: match as many consecutive pattern symbols at point i as the
    // separators allow ("<=" permits same point, "<" forces a later one).
    while (j < n && pattern.symbols[j].IsSubsetOf(word.symbols[i])) {
      ++j;
      if (j == n) return true;
      if (pattern.rels[j - 1] == OrderRel::kLt) break;
    }
  }
  return j == n;
}

bool IsSubword(const FlexiWord& p, const FlexiWord& q) {
  IODB_CHECK(p.IsWord());
  IODB_CHECK(q.IsWord());
  int j = 0;
  const int n = p.size();
  for (int i = 0; i < q.size() && j < n; ++i) {
    if (p.symbols[j].IsSubsetOf(q.symbols[i])) ++j;
  }
  return j == n;
}

bool FlexiEntails(const FlexiWord& q, const FlexiWord& p) {
  // The Lemma 4.2 recursion, specialized to the width-one database q:
  // the unique minimal vertex is the first alive symbol, and the minor
  // vertices are the maximal "<="-connected prefix.
  int qi = 0;
  int j = 0;
  const int n = p.size();
  for (;;) {
    if (j == n) return true;
    if (qi == q.size()) return false;
    if (!p.symbols[j].IsSubsetOf(q.symbols[qi])) {
      ++qi;  // Case I: delete the minimal vertex.
      continue;
    }
    if (j == n - 1) return true;  // last pattern symbol matched
    if (p.rels[j] == OrderRel::kLt) {
      // Case II: delete the minor prefix, consume the symbol.
      while (qi < q.size() - 1 && q.rels[qi] == OrderRel::kLe) ++qi;
      ++qi;
      ++j;
    } else {
      // Case III: consume the symbol without deleting.
      ++j;
    }
  }
}

namespace {

// Enumerates the maximal edge paths (source-to-sink) of a transitively
// reduced dag. Maximal sequential subqueries are exactly these paths:
// a source-to-sink edge path cannot be extended at either end, and no
// atom superset of a chain stays in sequential (consecutive-atom) form.
struct PathEnumerator {
  Digraph reduced;
  const std::vector<PredSet>& labels;
  const std::function<bool(const FlexiWord&)>& fn;
  std::vector<int> path;       // vertex sequence
  std::vector<OrderRel> rels;  // edge labels along the path

  PathEnumerator(const Digraph& d, const std::vector<PredSet>& l,
                 const std::function<bool(const FlexiWord&)>& f)
      : reduced(TransitiveReduce(d)), labels(l), fn(f) {}

  FlexiWord Materialize() const {
    FlexiWord word;
    for (size_t i = 0; i < path.size(); ++i) {
      word.symbols.push_back(labels[path[i]]);
    }
    word.rels = rels;
    return word;
  }

  bool Dfs(int u) {
    path.push_back(u);
    bool keep_going = true;
    if (reduced.out(u).empty()) {
      keep_going = fn(Materialize());
    } else {
      for (const Digraph::Arc& arc : reduced.out(u)) {
        rels.push_back(arc.rel);
        keep_going = Dfs(arc.vertex);
        rels.pop_back();
        if (!keep_going) break;
      }
    }
    path.pop_back();
    return keep_going;
  }

  bool Run() {
    std::vector<bool> alive(reduced.num_vertices(), true);
    for (int u : MinimalVertices(reduced, alive)) {
      if (!Dfs(u)) return false;
    }
    return true;
  }
};

}  // namespace

bool ForEachPath(const Digraph& dag, const std::vector<PredSet>& labels,
                 const std::function<bool(const FlexiWord&)>& fn) {
  PathEnumerator e(dag, labels, fn);
  return e.Run();
}

std::vector<FlexiWord> ConjunctPaths(const NormConjunct& conjunct) {
  std::vector<FlexiWord> paths;
  ForEachPath(conjunct.dag, conjunct.labels, [&](const FlexiWord& p) {
    paths.push_back(p);
    return true;
  });
  return paths;
}

std::vector<FlexiWord> DbPaths(const NormDb& db) {
  std::vector<FlexiWord> paths;
  ForEachPath(db.dag, db.labels, [&](const FlexiWord& p) {
    paths.push_back(p);
    return true;
  });
  return paths;
}

FlexiWord SequentialPattern(const NormConjunct& conjunct) {
  IODB_CHECK(conjunct.IsSequential());
  FlexiWord word;
  std::vector<int> order = TopologicalOrder(conjunct.dag);
  Reachability reach = ComputeReachability(conjunct.dag);
  for (size_t i = 0; i < order.size(); ++i) {
    word.symbols.push_back(conjunct.labels[order[i]]);
    if (i > 0) {
      IODB_CHECK(reach.reach.Get(order[i - 1], order[i]));  // width one
      word.rels.push_back(reach.strict.Get(order[i - 1], order[i])
                              ? OrderRel::kLt
                              : OrderRel::kLe);
    }
  }
  return word;
}

Database DbOfFlexiWord(const FlexiWord& word, VocabularyPtr vocab) {
  Database db(std::move(vocab));
  int prev = -1;
  for (int i = 0; i < word.size(); ++i) {
    int point = db.GetOrAddConstant("w" + std::to_string(i), Sort::kOrder);
    for (int pred : word.symbols[i].Elements()) {
      IODB_CHECK(db.vocab()->predicate(pred).IsMonadicOrder());
      db.AddProperAtom(pred, {{Sort::kOrder, point}});
    }
    if (prev != -1) {
      db.AddOrderAtom(prev, point, word.rels[i - 1]);
    }
    prev = point;
  }
  return db;
}

NormConjunct ConjunctOfFlexiWord(const FlexiWord& word, int num_predicates) {
  NormConjunct conjunct;
  conjunct.dag = Digraph(word.size());
  for (int i = 0; i < word.size(); ++i) {
    conjunct.order_var_names.push_back("t" + std::to_string(i));
    PredSet label(num_predicates);
    label.UnionWith(word.symbols[i]);
    conjunct.labels.push_back(std::move(label));
    if (i > 0) conjunct.dag.AddEdge(i - 1, i, word.rels[i - 1]);
  }
  return conjunct;
}

}  // namespace iodb
