// Flexi-words (Section 4).
//
// Given a predicate set Pred and alphabet A = P(Pred), the flexi-words
// FW(Pred) = A · ({<, <=} · A)* represent three things at once:
//   * sequential queries (patterns),
//   * width-one databases, and
//   * finite models (all separators "<"): plain words.
// The central relations are greedy pattern matching in a word model,
// Higman's subword order on words (Proposition 4.5), and entailment of a
// sequential pattern by a width-one database (the width-one special case
// of the SEQ algorithm).

#ifndef IODB_CORE_FLEXIWORD_H_
#define IODB_CORE_FLEXIWORD_H_

#include <functional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/model.h"
#include "core/query.h"
#include "core/types.h"

namespace iodb {

/// A flexi-word a₀ r₀ a₁ r₁ ... a_{n-1} with aᵢ ∈ P(Pred), rᵢ ∈ {<, <=}.
struct FlexiWord {
  std::vector<PredSet> symbols;
  std::vector<OrderRel> rels;  // rels.size() == symbols.size() - 1 (or 0)

  int size() const { return static_cast<int>(symbols.size()); }
  bool empty() const { return symbols.empty(); }

  /// True if every separator is "<" (a plain word).
  bool IsWord() const;

  /// Renders e.g. "[P,Q] < [P] <= [R]".
  std::string ToString(const Vocabulary& vocab) const;

  friend bool operator==(const FlexiWord&, const FlexiWord&) = default;
};

/// The word representation of a finite model (Section 4): the sequence of
/// point label sets separated by "<". Requires the model to carry no
/// non-monadic facts over points.
FlexiWord WordOfModel(const FiniteModel& model);

/// Greedy leftmost matching: does the plain word `word` satisfy the
/// sequential pattern `pattern`? (Positions for consecutive pattern
/// symbols must be strictly increasing across "<" and non-decreasing
/// across "<=".) Greedy leftmost matching is complete for sequential
/// patterns by the standard exchange argument.
bool WordSatisfies(const FlexiWord& word, const FlexiWord& pattern);

/// Subword order on plain words (Proposition 4.5): p is a subword of q if
/// the symbols of p embed order-preservingly into q with containment.
/// By Proposition 4.5, q |= p iff p is a subword of q.
bool IsSubword(const FlexiWord& p, const FlexiWord& q);

/// Entailment of a sequential pattern by a width-one database, both given
/// as flexi-words: the three-case recursion of Lemma 4.2 specialized to
/// width one. q |= p.
bool FlexiEntails(const FlexiWord& q, const FlexiWord& p);

/// Enumerates the maximal paths of a labelled dag (the paper's Paths(·)):
/// source-to-sink edge paths of the *transitively reduced* dag (redundant
/// order atoms contribute no paths of their own — the reduced dag imposes
/// the same constraints). The callback returns false to stop; ForEachPath
/// then returns false.
bool ForEachPath(const Digraph& dag, const std::vector<PredSet>& labels,
                 const std::function<bool(const FlexiWord&)>& fn);

/// Materialized path sets of queries and databases.
std::vector<FlexiWord> ConjunctPaths(const NormConjunct& conjunct);
std::vector<FlexiWord> DbPaths(const NormDb& db);

/// The flexi-word of a sequential conjunct (Width() <= 1): its variables
/// in chain order with the connecting relations.
FlexiWord SequentialPattern(const NormConjunct& conjunct);

/// Builds a width-one database whose dag is the chain of `word` (fresh
/// order constants w0, w1, ...). Inverse of the word representation.
Database DbOfFlexiWord(const FlexiWord& word, VocabularyPtr vocab);

/// Builds the sequential conjunct whose pattern is `word`.
NormConjunct ConjunctOfFlexiWord(const FlexiWord& word, int num_predicates);

}  // namespace iodb

#endif  // IODB_CORE_FLEXIWORD_H_
