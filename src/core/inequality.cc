#include "core/inequality.h"

namespace iodb {

Result<Query> RewriteInequalities(const Query& query,
                                  int max_result_disjuncts) {
  Query out(query.vocab());
  long long total = 0;
  for (const QueryConjunct& conjunct : query.disjuncts()) {
    const size_t m = conjunct.inequalities.size();
    if (m >= 63) {
      return Status::ResourceExhausted(
          "too many inequalities in one disjunct");
    }
    long long expansions = 1LL << m;
    total += expansions;
    if (total > max_result_disjuncts) {
      return Status::ResourceExhausted(
          "inequality rewriting exceeds the disjunct budget");
    }
    for (long long bits = 0; bits < expansions; ++bits) {
      QueryConjunct expanded = conjunct;
      expanded.inequalities.clear();
      for (size_t i = 0; i < m; ++i) {
        const QueryInequality& ineq = conjunct.inequalities[i];
        if ((bits >> i) & 1) {
          expanded.order_atoms.push_back({ineq.lhs, ineq.rhs, OrderRel::kLt});
        } else {
          expanded.order_atoms.push_back({ineq.rhs, ineq.lhs, OrderRel::kLt});
        }
      }
      out.AddDisjunct(std::move(expanded));
    }
  }
  return out;
}

}  // namespace iodb
