// Inequality support (Section 7).
//
// Queries and databases may carry atoms u != v. The paper's observation:
// in queries, u != v is eliminable as the disjunction u < v ∨ v < u, at
// the cost of an exponential blowup in the number of inequalities per
// disjunct (and the blowup is unavoidable in general: Theorem 7.1 shows
// NP/co-NP hardness as soon as "!=" enters the monadic picture).
// Databases carrying "!=" are handled natively by the minimal-model
// enumerator (a sort group may not merge two constants declared unequal),
// hence by the brute-force engine; the polynomial monadic engines require
// inequality-free databases.

#ifndef IODB_CORE_INEQUALITY_H_
#define IODB_CORE_INEQUALITY_H_

#include "core/query.h"

namespace iodb {

/// Rewrites every inequality t1 != t2 of every disjunct into the two
/// disjuncts obtained with t1 < t2 and t2 < t1. A disjunct with m
/// inequalities becomes 2^m disjuncts. `max_result_disjuncts` guards the
/// blowup.
Result<Query> RewriteInequalities(const Query& query,
                                  int max_result_disjuncts = 1 << 20);

}  // namespace iodb

#endif  // IODB_CORE_INEQUALITY_H_
