#include "core/intervals.h"

#include "core/point_algebra.h"

namespace iodb {
namespace {

// Endpoint indices: 0 = I.start, 1 = I.end, 2 = J.start, 3 = J.end.
struct EndpointConstraint {
  int lhs;
  bool equal;  // lhs = rhs (else lhs < rhs)
  int rhs;
};

// The defining endpoint constraints of each relation.
std::vector<EndpointConstraint> ConstraintsOf(AllenRelation relation) {
  switch (relation) {
    case AllenRelation::kBefore:
      return {{1, false, 2}};
    case AllenRelation::kMeets:
      return {{1, true, 2}};
    case AllenRelation::kOverlaps:
      return {{0, false, 2}, {2, false, 1}, {1, false, 3}};
    case AllenRelation::kStarts:
      return {{0, true, 2}, {1, false, 3}};
    case AllenRelation::kDuring:
      return {{2, false, 0}, {1, false, 3}};
    case AllenRelation::kFinishes:
      return {{2, false, 0}, {1, true, 3}};
    case AllenRelation::kEquals:
      return {{0, true, 2}, {1, true, 3}};
    default: {
      // Inverse relation: swap the interval roles (0<->2, 1<->3).
      std::vector<EndpointConstraint> base = ConstraintsOf(Inverse(relation));
      for (EndpointConstraint& c : base) {
        c.lhs ^= 2;
        c.rhs ^= 2;
      }
      return base;
    }
  }
}

Result<std::vector<int>> ResolveEndpoints(const Database& db,
                                          const Interval& i,
                                          const Interval& j) {
  std::vector<int> ids;
  for (const std::string* name : {&i.start, &i.end, &j.start, &j.end}) {
    std::optional<int> id = db.FindConstant(*name, Sort::kOrder);
    if (!id.has_value()) {
      return Status::InvalidArgument("endpoint '" + *name +
                                     "' is not an order constant");
    }
    ids.push_back(*id);
  }
  return ids;
}

}  // namespace

const char* AllenRelationName(AllenRelation relation) {
  switch (relation) {
    case AllenRelation::kBefore:
      return "before";
    case AllenRelation::kMeets:
      return "meets";
    case AllenRelation::kOverlaps:
      return "overlaps";
    case AllenRelation::kStarts:
      return "starts";
    case AllenRelation::kDuring:
      return "during";
    case AllenRelation::kFinishes:
      return "finishes";
    case AllenRelation::kEquals:
      return "equals";
    case AllenRelation::kAfter:
      return "after";
    case AllenRelation::kMetBy:
      return "met-by";
    case AllenRelation::kOverlappedBy:
      return "overlapped-by";
    case AllenRelation::kStartedBy:
      return "started-by";
    case AllenRelation::kContains:
      return "contains";
    case AllenRelation::kFinishedBy:
      return "finished-by";
  }
  return "unknown";
}

AllenRelation Inverse(AllenRelation relation) {
  switch (relation) {
    case AllenRelation::kBefore:
      return AllenRelation::kAfter;
    case AllenRelation::kMeets:
      return AllenRelation::kMetBy;
    case AllenRelation::kOverlaps:
      return AllenRelation::kOverlappedBy;
    case AllenRelation::kStarts:
      return AllenRelation::kStartedBy;
    case AllenRelation::kDuring:
      return AllenRelation::kContains;
    case AllenRelation::kFinishes:
      return AllenRelation::kFinishedBy;
    case AllenRelation::kEquals:
      return AllenRelation::kEquals;
    case AllenRelation::kAfter:
      return AllenRelation::kBefore;
    case AllenRelation::kMetBy:
      return AllenRelation::kMeets;
    case AllenRelation::kOverlappedBy:
      return AllenRelation::kOverlaps;
    case AllenRelation::kStartedBy:
      return AllenRelation::kStarts;
    case AllenRelation::kContains:
      return AllenRelation::kDuring;
    case AllenRelation::kFinishedBy:
      return AllenRelation::kFinishes;
  }
  IODB_CHECK(false);
  return AllenRelation::kEquals;
}

const std::vector<AllenRelation>& AllAllenRelations() {
  static const std::vector<AllenRelation>* kAll =
      new std::vector<AllenRelation>{
          AllenRelation::kBefore,       AllenRelation::kMeets,
          AllenRelation::kOverlaps,     AllenRelation::kStarts,
          AllenRelation::kDuring,       AllenRelation::kFinishes,
          AllenRelation::kEquals,       AllenRelation::kAfter,
          AllenRelation::kMetBy,        AllenRelation::kOverlappedBy,
          AllenRelation::kStartedBy,    AllenRelation::kContains,
          AllenRelation::kFinishedBy};
  return *kAll;
}

void DeclareInterval(Database& db, const Interval& interval) {
  db.AddOrder(interval.start, OrderRel::kLt, interval.end);
}

void AddAllenConstraint(Database& db, const Interval& i, const Interval& j,
                        AllenRelation relation) {
  int ids[4] = {db.GetOrAddConstant(i.start, Sort::kOrder),
                db.GetOrAddConstant(i.end, Sort::kOrder),
                db.GetOrAddConstant(j.start, Sort::kOrder),
                db.GetOrAddConstant(j.end, Sort::kOrder)};
  for (const EndpointConstraint& c : ConstraintsOf(relation)) {
    if (c.equal) {
      db.AddOrderAtom(ids[c.lhs], ids[c.rhs], OrderRel::kLe);
      db.AddOrderAtom(ids[c.rhs], ids[c.lhs], OrderRel::kLe);
    } else {
      db.AddOrderAtom(ids[c.lhs], ids[c.rhs], OrderRel::kLt);
    }
  }
}

Result<bool> PossiblyHolds(const Database& db, const Interval& i,
                           const Interval& j, AllenRelation relation) {
  Result<std::vector<int>> ids = ResolveEndpoints(db, i, j);
  if (!ids.ok()) return ids.status();
  Database probe = db;
  for (const EndpointConstraint& c : ConstraintsOf(relation)) {
    if (c.equal) {
      probe.AddOrderAtom(ids.value()[c.lhs], ids.value()[c.rhs],
                         OrderRel::kLe);
      probe.AddOrderAtom(ids.value()[c.rhs], ids.value()[c.lhs],
                         OrderRel::kLe);
    } else {
      probe.AddOrderAtom(ids.value()[c.lhs], ids.value()[c.rhs],
                         OrderRel::kLt);
    }
  }
  return OrderConstraintsConsistent(probe);
}

Result<bool> NecessarilyHolds(const Database& db, const Interval& i,
                              const Interval& j, AllenRelation relation) {
  Result<std::vector<int>> ids = ResolveEndpoints(db, i, j);
  if (!ids.ok()) return ids.status();
  if (!OrderConstraintsConsistent(db)) return true;  // vacuous
  // Entailment distributes over the conjunction of endpoint constraints.
  const std::string names[4] = {i.start, i.end, j.start, j.end};
  for (const EndpointConstraint& c : ConstraintsOf(relation)) {
    Result<PointRelation> rel =
        RelationBetween(db, names[c.lhs], names[c.rhs]);
    if (!rel.ok()) return rel.status();
    if (c.equal ? !rel.value().DefinitelyEq() : !rel.value().DefinitelyLt()) {
      return false;
    }
  }
  return true;
}

Result<std::vector<AllenRelation>> PossibleRelations(const Database& db,
                                                     const Interval& i,
                                                     const Interval& j) {
  std::vector<AllenRelation> possible;
  for (AllenRelation relation : AllAllenRelations()) {
    Result<bool> holds = PossiblyHolds(db, i, j, relation);
    if (!holds.ok()) return holds.status();
    if (holds.value()) possible.push_back(relation);
  }
  return possible;
}

}  // namespace iodb
