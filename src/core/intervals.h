// Allen's interval algebra over indefinite order databases (Section 1).
//
// The paper motivates indefinite order data with Allen's observation that
// natural-language temporal reports relate *intervals*. This module
// encodes the thirteen primitive interval relations as endpoint
// constraints over order constants, so interval knowledge bases become
// ordinary [<, <=]-databases, and answers the classical questions:
//   * PossiblyHolds(I r J): some compatible linear order realizes r;
//   * NecessarilyHolds(I r J): every compatible linear order does.
// Both reduce to point-algebra probes (point_algebra.h). Note Vilain,
// Kautz & van Beek: deciding relations between intervals *given interval-
// algebra constraints* is NP-hard in general; what stays tractable — and
// what this module implements — is reasoning over point-expressible
// (pointisable) constraints.

#ifndef IODB_CORE_INTERVALS_H_
#define IODB_CORE_INTERVALS_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace iodb {

/// The thirteen Allen relations. kAfter..kPreceded are the inverses of
/// kBefore..kOverlaps in the listed pairing.
enum class AllenRelation {
  kBefore,      // I.end < J.start
  kMeets,       // I.end = J.start
  kOverlaps,    // I.start < J.start < I.end < J.end
  kStarts,      // I.start = J.start, I.end < J.end
  kDuring,      // J.start < I.start, I.end < J.end
  kFinishes,    // J.start < I.start, I.end = J.end
  kEquals,      // both endpoints equal
  kAfter,       // inverse of kBefore
  kMetBy,       // inverse of kMeets
  kOverlappedBy,  // inverse of kOverlaps
  kStartedBy,   // inverse of kStarts
  kContains,    // inverse of kDuring
  kFinishedBy,  // inverse of kFinishes
};

/// Returns e.g. "before", "overlapped-by".
const char* AllenRelationName(AllenRelation relation);

/// The inverse relation (swap the interval arguments).
AllenRelation Inverse(AllenRelation relation);

/// All thirteen relations, for sweeps.
const std::vector<AllenRelation>& AllAllenRelations();

/// An interval named by its endpoint order constants.
struct Interval {
  std::string start;
  std::string end;
};

/// Interns the endpoints of `interval` and asserts start < end (proper,
/// nonempty interval).
void DeclareInterval(Database& db, const Interval& interval);

/// Adds the endpoint constraints of `I relation J` to the database. The
/// relation becomes definite knowledge; indefiniteness arises from NOT
/// constraining pairs.
void AddAllenConstraint(Database& db, const Interval& i, const Interval& j,
                        AllenRelation relation);

/// True if some model of `db` realizes `I relation J`. Fails if an
/// endpoint is not an order constant of `db`.
Result<bool> PossiblyHolds(const Database& db, const Interval& i,
                           const Interval& j, AllenRelation relation);

/// True if every model of `db` realizes `I relation J`.
Result<bool> NecessarilyHolds(const Database& db, const Interval& i,
                              const Interval& j, AllenRelation relation);

/// The set of relations possible between I and J (at least one for a
/// consistent database: the thirteen relations partition the cases).
Result<std::vector<AllenRelation>> PossibleRelations(const Database& db,
                                                     const Interval& i,
                                                     const Interval& j);

}  // namespace iodb

#endif  // IODB_CORE_INTERVALS_H_
