#include "core/minimal_models.h"

#include <algorithm>

#include "graph/topo.h"

namespace iodb {
namespace {

struct Enumerator {
  const NormDb& db;
  const ModelVisitor& visitor;
  Reachability reach;
  std::vector<bool> alive;
  int alive_count;
  std::vector<std::vector<int>> groups;

  Enumerator(const NormDb& d, const ModelVisitor& v)
      : db(d),
        visitor(v),
        reach(ComputeReachability(d.dag)),
        alive(d.num_points(), true),
        alive_count(d.num_points()) {}

  bool Comparable(int u, int v) const {
    return reach.reach.Get(u, v) || reach.reach.Get(v, u);
  }

  // The down-closure of antichain `chosen` within the minor set: all minor
  // vertices that reach a chosen vertex. (Paths between minors stay within
  // the minor set and use only "<=" edges; see DESIGN.md.)
  std::vector<int> Closure(const std::vector<int>& minors,
                           const std::vector<int>& chosen) const {
    std::vector<int> group;
    for (int m : minors) {
      for (int a : chosen) {
        if (reach.reach.Get(m, a)) {
          group.push_back(m);
          break;
        }
      }
    }
    return group;
  }

  bool GroupRespectsInequalities(const std::vector<int>& group) const {
    for (const auto& [u, v] : db.inequalities) {
      bool has_u = std::find(group.begin(), group.end(), u) != group.end();
      bool has_v = std::find(group.begin(), group.end(), v) != group.end();
      if (has_u && has_v) return false;
    }
    return true;
  }

  // Returns false iff the enumeration was stopped by on_model.
  bool Recurse() {
    if (alive_count == 0) {
      return visitor.on_model == nullptr || visitor.on_model(groups);
    }
    std::vector<bool> minor = MinorVertices(db.dag, alive);
    std::vector<int> candidates;
    for (int v = 0; v < db.num_points(); ++v) {
      if (alive[v] && minor[v]) candidates.push_back(v);
    }
    // A consistent database always has a minor vertex while nonempty.
    IODB_CHECK(!candidates.empty());
    std::vector<int> chosen;
    return EnumerateAntichains(candidates, 0, chosen);
  }

  bool EnumerateAntichains(const std::vector<int>& candidates, size_t next,
                           std::vector<int>& chosen) {
    for (size_t i = next; i < candidates.size(); ++i) {
      int v = candidates[i];
      bool independent = true;
      for (int u : chosen) {
        if (Comparable(u, v)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      chosen.push_back(v);
      std::vector<int> group = Closure(candidates, chosen);
      if (GroupRespectsInequalities(group) &&
          (visitor.on_group == nullptr ||
           visitor.on_group(static_cast<int>(groups.size()), group))) {
        for (int g : group) alive[g] = false;
        alive_count -= static_cast<int>(group.size());
        groups.push_back(group);
        bool keep_going = Recurse();
        groups.pop_back();
        for (int g : group) alive[g] = true;
        alive_count += static_cast<int>(group.size());
        if (!keep_going) return false;
      }
      if (!EnumerateAntichains(candidates, i + 1, chosen)) return false;
      chosen.pop_back();
    }
    return true;
  }
};

}  // namespace

bool ForEachMinimalModel(const NormDb& db, const ModelVisitor& visitor) {
  Enumerator e(db, visitor);
  return e.Recurse();
}

long long CountMinimalModels(const NormDb& db, long long limit) {
  long long count = 0;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>&) {
    ++count;
    return limit < 0 || count < limit;
  };
  ForEachMinimalModel(db, visitor);
  return count;
}

}  // namespace iodb
