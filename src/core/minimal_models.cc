#include "core/minimal_models.h"

#include <algorithm>
#include <utility>

#include "graph/topo.h"

namespace iodb {
namespace {

// Incremental enumerator. The removed set is always a down-set of the
// dag (groups are down-closures of minor antichains), so for alive u, v a
// strict path u -> v in the full dag never passes through a removed
// vertex; hence "v is minor within the alive subgraph" is exactly
// "strict_in_[v] == 0" where strict_in_[v] counts the alive u with a
// strict path u -> v. Push/pop of a group maintains the counts via the
// precomputed strict-reachability adjacency instead of re-deriving minor
// vertices from scratch per node.
struct Enumerator {
  const NormDb& db;
  const ModelVisitor& visitor;
  const EnumerationContext& ctx;
  std::vector<uint8_t> alive;
  std::vector<int> strict_in;
  std::vector<uint8_t> in_group;  // scratch for inequality checks
  int alive_count;

  // The exact group prefix handed to the callbacks. Popped inner vectors
  // park in `spare` so their capacity is reused (no steady-state
  // allocation).
  std::vector<std::vector<int>> groups;
  std::vector<std::vector<int>> spare;

  // Per-depth scratch (candidates + chosen antichain). Sized up front so
  // references stay valid across recursion.
  struct Level {
    std::vector<int> candidates;
    std::vector<int> chosen;
  };
  std::vector<Level> levels;

  Enumerator(const NormDb& d, const EnumerationContext& c,
             const ModelVisitor& v)
      : db(d),
        visitor(v),
        ctx(c),
        alive(d.num_points(), 1),
        strict_in(c.strict_in_all_alive),
        in_group(d.num_points(), 0),
        alive_count(d.num_points()),
        levels(d.num_points() + 1) {
    groups.reserve(d.num_points());
    spare.reserve(d.num_points());
  }

  bool Comparable(int u, int v) const {
    return ctx.reach.reach.Get(u, v) || ctx.reach.reach.Get(v, u);
  }

  bool GroupRespectsInequalities(const std::vector<int>& group) {
    if (db.inequalities.empty()) return true;
    for (int g : group) in_group[g] = 1;
    bool ok = true;
    for (const auto& [u, v] : db.inequalities) {
      if (in_group[u] && in_group[v]) {
        ok = false;
        break;
      }
    }
    for (int g : group) in_group[g] = 0;
    return ok;
  }

  // Borrows a pooled vector as groups[depth] (depth == groups.size()).
  std::vector<int>& AcquireGroupBuffer() {
    if (spare.empty()) {
      groups.emplace_back();
    } else {
      groups.push_back(std::move(spare.back()));
      spare.pop_back();
    }
    groups.back().clear();
    return groups.back();
  }

  void ReleaseGroupBuffer() {
    spare.push_back(std::move(groups.back()));
    groups.pop_back();
  }

  void Apply(const std::vector<int>& group) {
    for (int g : group) {
      alive[g] = 0;
      --alive_count;
      for (int k = ctx.strict_out_off[g]; k < ctx.strict_out_off[g + 1];
           ++k) {
        --strict_in[ctx.strict_out[k]];
      }
    }
  }

  void Unapply(const std::vector<int>& group) {
    for (int g : group) {
      alive[g] = 1;
      ++alive_count;
      for (int k = ctx.strict_out_off[g]; k < ctx.strict_out_off[g + 1];
           ++k) {
        ++strict_in[ctx.strict_out[k]];
      }
    }
  }

  // Returns false iff the enumeration was stopped by on_model.
  bool Recurse() {
    if (alive_count == 0) {
      return visitor.on_model == nullptr || visitor.on_model(groups);
    }
    const int depth = static_cast<int>(groups.size());
    Level& level = levels[depth];
    level.candidates.clear();
    for (int v = 0; v < db.num_points(); ++v) {
      if (alive[v] && strict_in[v] == 0) level.candidates.push_back(v);
    }
    // A consistent database always has a minor vertex while nonempty.
    IODB_CHECK(!level.candidates.empty());
    level.chosen.clear();
    return EnumerateAntichains(depth, 0);
  }

  bool EnumerateAntichains(int depth, size_t next) {
    Level& level = levels[depth];
    for (size_t i = next; i < level.candidates.size(); ++i) {
      const int v = level.candidates[i];
      bool independent = true;
      for (int u : level.chosen) {
        if (Comparable(u, v)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      level.chosen.push_back(v);
      // The down-closure of the chosen antichain within the minor set.
      std::vector<int>& group = AcquireGroupBuffer();
      for (int m : level.candidates) {
        for (int a : level.chosen) {
          if (ctx.reach.reach.Get(m, a)) {
            group.push_back(m);
            break;
          }
        }
      }
      if (GroupRespectsInequalities(group) &&
          (visitor.on_group == nullptr || visitor.on_group(depth, group))) {
        Apply(group);
        const bool keep_going = Recurse();
        Unapply(groups.back());
        ReleaseGroupBuffer();
        if (!keep_going) return false;
      } else {
        ReleaseGroupBuffer();
      }
      if (!EnumerateAntichains(depth, i + 1)) return false;
      level.chosen.pop_back();
    }
    return true;
  }

  // Seeds the enumeration with an already-chosen prefix. Each group must
  // consist of currently-minor vertices (checked), i.e. be a group the
  // unseeded enumeration could have produced at that depth.
  void SeedPrefix(const std::vector<std::vector<int>>& prefix) {
    for (const std::vector<int>& group : prefix) {
      IODB_CHECK(!group.empty());
      for (int g : group) {
        IODB_CHECK(alive[g]);
        IODB_CHECK_EQ(strict_in[g], 0);
      }
      std::vector<int>& stored = AcquireGroupBuffer();
      stored.assign(group.begin(), group.end());
      Apply(stored);
    }
  }
};

}  // namespace

EnumerationContext::EnumerationContext(const NormDb& db)
    : reach(ComputeReachability(db.dag)) {
  const int n = db.num_points();
  strict_in_all_alive.assign(n, 0);
  strict_out_off.assign(n + 1, 0);
  for (int u = 0; u < n; ++u) {
    int degree = 0;
    for (int v = 0; v < n; ++v) degree += reach.strict.Get(u, v) ? 1 : 0;
    strict_out_off[u + 1] = strict_out_off[u] + degree;
  }
  strict_out.resize(strict_out_off[n]);
  for (int u = 0, k = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (reach.strict.Get(u, v)) {
        strict_out[k++] = v;
        ++strict_in_all_alive[v];
      }
    }
  }
}

bool ForEachMinimalModel(const NormDb& db, const ModelVisitor& visitor) {
  EnumerationContext context(db);
  Enumerator e(db, context, visitor);
  return e.Recurse();
}

bool ForEachMinimalModelFrom(const NormDb& db,
                             const EnumerationContext& context,
                             const std::vector<std::vector<int>>& prefix,
                             const ModelVisitor& visitor) {
  Enumerator e(db, context, visitor);
  e.SeedPrefix(prefix);
  return e.Recurse();
}

bool ForEachMinimalModelFrom(const NormDb& db,
                             const std::vector<std::vector<int>>& prefix,
                             const ModelVisitor& visitor) {
  EnumerationContext context(db);
  return ForEachMinimalModelFrom(db, context, prefix, visitor);
}

long long CountMinimalModels(const NormDb& db, long long limit) {
  long long count = 0;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>&) {
    ++count;
    return limit < 0 || count < limit;
  };
  ForEachMinimalModel(db, visitor);
  return count;
}

}  // namespace iodb
