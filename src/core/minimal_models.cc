#include "core/minimal_models.h"

#include <algorithm>
#include <bit>
#include <span>
#include <utility>

#include "graph/topo.h"

namespace iodb {
namespace {

// Shared group-prefix bookkeeping: the exact group prefix handed to the
// callbacks, with popped inner vectors parked in `spare` so their
// capacity is reused (no steady-state allocation).
struct GroupStack {
  std::vector<std::vector<int>> groups;
  std::vector<std::vector<int>> spare;

  // Borrows a pooled vector as groups[depth] (depth == groups.size()).
  std::vector<int>& Acquire() {
    if (spare.empty()) {
      groups.emplace_back();
    } else {
      groups.push_back(std::move(spare.back()));
      spare.pop_back();
    }
    groups.back().clear();
    return groups.back();
  }

  void Release() {
    spare.push_back(std::move(groups.back()));
    groups.pop_back();
  }
};

// Incremental enumerator, general form (any point count, index or
// closure mode). The removed set is always a down-set of the dag (groups
// are down-closures of minor antichains), so for alive u, v a strict
// path u -> v in the full dag never passes through a removed vertex;
// hence "v is minor within the alive subgraph" is exactly
// "strict_in_[v] == 0" where strict_in_[v] counts the alive u with a
// strict path u -> v. Push/pop of a group maintains the counts via the
// precomputed strict-reachability adjacency instead of re-deriving minor
// vertices from scratch per node.
struct Enumerator {
  const NormDb& db;
  const ModelVisitor& visitor;
  const EnumerationContext& ctx;
  std::vector<uint8_t> alive;
  std::vector<int> strict_in;
  std::vector<uint8_t> in_group;  // scratch for inequality checks
  int alive_count;
  ReachProbeStats rstats;
  GroupStack stack;

  // Per-depth scratch (candidates + chosen antichain). Sized up front so
  // references stay valid across recursion.
  struct Level {
    std::vector<int> candidates;
    std::vector<int> chosen;
  };
  std::vector<Level> levels;

  Enumerator(const NormDb& d, const EnumerationContext& c,
             const ModelVisitor& v)
      : db(d),
        visitor(v),
        ctx(c),
        alive(d.num_points(), 1),
        strict_in(c.strict_in_all_alive),
        in_group(d.num_points(), 0),
        alive_count(d.num_points()),
        levels(d.num_points() + 1) {
    stack.groups.reserve(d.num_points());
    stack.spare.reserve(d.num_points());
  }

  bool GroupRespectsInequalities(const std::vector<int>& group) {
    if (db.inequalities.empty()) return true;
    for (int g : group) in_group[g] = 1;
    bool ok = true;
    for (const auto& [u, v] : db.inequalities) {
      if (in_group[u] && in_group[v]) {
        ok = false;
        break;
      }
    }
    for (int g : group) in_group[g] = 0;
    return ok;
  }

  void Apply(const std::vector<int>& group) {
    for (int g : group) {
      alive[g] = 0;
      --alive_count;
      for (int k = ctx.strict_out_off[g]; k < ctx.strict_out_off[g + 1];
           ++k) {
        --strict_in[ctx.strict_out[k]];
      }
    }
  }

  void Unapply(const std::vector<int>& group) {
    for (int g : group) {
      alive[g] = 1;
      ++alive_count;
      for (int k = ctx.strict_out_off[g]; k < ctx.strict_out_off[g + 1];
           ++k) {
        ++strict_in[ctx.strict_out[k]];
      }
    }
  }

  // Returns false iff the enumeration was stopped by on_model.
  bool Recurse() {
    if (alive_count == 0) {
      return visitor.on_model == nullptr || visitor.on_model(stack.groups);
    }
    const int depth = static_cast<int>(stack.groups.size());
    Level& level = levels[depth];
    level.candidates.clear();
    for (int v = 0; v < db.num_points(); ++v) {
      if (!alive[v]) continue;
      // The minor test is one O(1) counter read served by the
      // reachability layer's precomputed strict adjacency.
      ++rstats.probes;
      ++rstats.fast_hits;
      if (strict_in[v] == 0) level.candidates.push_back(v);
    }
    // A consistent database always has a minor vertex while nonempty.
    IODB_CHECK(!level.candidates.empty());
    level.chosen.clear();
    return EnumerateAntichains(depth, 0);
  }

  bool EnumerateAntichains(int depth, size_t next) {
    Level& level = levels[depth];
    for (size_t i = next; i < level.candidates.size(); ++i) {
      const int v = level.candidates[i];
      bool independent = true;
      for (int u : level.chosen) {
        if (ctx.Comparable(u, v, &rstats)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      level.chosen.push_back(v);
      // The down-closure of the chosen antichain within the minor set.
      std::vector<int>& group = stack.Acquire();
      for (int m : level.candidates) {
        for (int a : level.chosen) {
          if (ctx.Reaches(m, a, &rstats)) {
            group.push_back(m);
            break;
          }
        }
      }
      if (GroupRespectsInequalities(group) &&
          (visitor.on_group == nullptr ||
           visitor.on_group(depth, group))) {
        Apply(group);
        const bool keep_going = Recurse();
        Unapply(stack.groups.back());
        stack.Release();
        if (!keep_going) return false;
      } else {
        stack.Release();
      }
      if (!EnumerateAntichains(depth, i + 1)) return false;
      level.chosen.pop_back();
    }
    return true;
  }

  // Seeds the enumeration with an already-chosen prefix. Each group must
  // consist of currently-minor vertices (checked), i.e. be a group the
  // unseeded enumeration could have produced at that depth.
  void SeedPrefix(const std::vector<std::vector<int>>& prefix) {
    for (const std::vector<int>& group : prefix) {
      IODB_CHECK(!group.empty());
      for (int g : group) {
        IODB_CHECK(alive[g]);
        IODB_CHECK_EQ(strict_in[g], 0);
      }
      std::vector<int>& stored = stack.Acquire();
      stored.assign(group.begin(), group.end());
      Apply(stored);
    }
  }

  bool Run(const std::vector<std::vector<int>>& prefix) {
    SeedPrefix(prefix);
    const bool completed = Recurse();
    if (visitor.stats != nullptr) {
      visitor.stats->AddReachProbes(rstats);
      visitor.stats->index_rebuilds =
          std::max(visitor.stats->index_rebuilds, ctx.index_rebuilds());
    }
    return completed;
  }
};

// Word-mask enumerator for databases of at most 64 points: the alive
// set, the minor test, antichain independence, and group down-closures
// all become single-word operations on the context's index-derived
// masks. Visits exactly the same group sequences as the general
// enumerator (candidates and group members are produced in increasing
// vertex order either way).
struct MaskEnumerator {
  const NormDb& db;
  const ModelVisitor& visitor;
  const EnumerationContext& ctx;
  uint64_t alive_mask;
  ReachProbeStats rstats;
  GroupStack stack;

  struct Level {
    std::vector<int> candidates;
    uint64_t minors = 0;
  };
  std::vector<Level> levels;

  MaskEnumerator(const NormDb& d, const EnumerationContext& c,
                 const ModelVisitor& v)
      : db(d),
        visitor(v),
        ctx(c),
        alive_mask(d.num_points() == 64
                       ? ~uint64_t{0}
                       : (uint64_t{1} << d.num_points()) - 1),
        levels(d.num_points() + 1) {
    stack.groups.reserve(d.num_points());
    stack.spare.reserve(d.num_points());
  }

  bool GroupRespectsInequalities(uint64_t group_mask) const {
    for (const auto& [u, v] : db.inequalities) {
      if (((group_mask >> u) & 1) && ((group_mask >> v) & 1)) return false;
    }
    return true;
  }

  bool Recurse() {
    if (alive_mask == 0) {
      return visitor.on_model == nullptr || visitor.on_model(stack.groups);
    }
    const int depth = static_cast<int>(stack.groups.size());
    Level& level = levels[depth];
    level.candidates.clear();
    uint64_t minors = 0;
    for (uint64_t rest = alive_mask; rest != 0; rest &= rest - 1) {
      const int v = std::countr_zero(rest);
      ++rstats.probes;
      ++rstats.fast_hits;
      if ((ctx.strict_anc_mask[v] & alive_mask) == 0) {
        minors |= rest & (~rest + 1);
        level.candidates.push_back(v);
      }
    }
    // A consistent database always has a minor vertex while nonempty.
    IODB_CHECK(minors != 0);
    level.minors = minors;
    return EnumerateAntichains(depth, 0, /*incompat=*/0, /*chosen_anc=*/0);
  }

  // `incompat` accumulates everything comparable to the chosen antichain
  // (so independence is one bit test); `chosen_anc` accumulates the
  // ancestor masks of the chosen vertices (so the group down-closure is
  // one AND against the minor set).
  bool EnumerateAntichains(int depth, size_t next, uint64_t incompat,
                           uint64_t chosen_anc) {
    Level& level = levels[depth];
    for (size_t i = next; i < level.candidates.size(); ++i) {
      const int v = level.candidates[i];
      ++rstats.probes;
      ++rstats.fast_hits;
      if ((incompat >> v) & 1) continue;
      const uint64_t anc_with_v = chosen_anc | ctx.anc_mask[v];
      const uint64_t group_mask = level.minors & anc_with_v;
      if (GroupRespectsInequalities(group_mask)) {
        std::vector<int>& group = stack.Acquire();
        for (uint64_t g = group_mask; g != 0; g &= g - 1) {
          group.push_back(std::countr_zero(g));
        }
        if (visitor.on_group == nullptr ||
            visitor.on_group(depth, group)) {
          alive_mask &= ~group_mask;
          const bool keep_going = Recurse();
          alive_mask |= group_mask;
          stack.Release();
          if (!keep_going) return false;
        } else {
          stack.Release();
        }
      }
      if (!EnumerateAntichains(
              depth, i + 1,
              incompat | ctx.desc_mask[v] | ctx.anc_mask[v], anc_with_v)) {
        return false;
      }
    }
    return true;
  }

  void SeedPrefix(const std::vector<std::vector<int>>& prefix) {
    for (const std::vector<int>& group : prefix) {
      IODB_CHECK(!group.empty());
      uint64_t group_mask = 0;
      for (int g : group) {
        IODB_CHECK((alive_mask >> g) & 1);
        IODB_CHECK_EQ(ctx.strict_anc_mask[g] & alive_mask, 0u);
        group_mask |= uint64_t{1} << g;
      }
      std::vector<int>& stored = stack.Acquire();
      stored.assign(group.begin(), group.end());
      alive_mask &= ~group_mask;
    }
  }

  bool Run(const std::vector<std::vector<int>>& prefix) {
    SeedPrefix(prefix);
    const bool completed = Recurse();
    if (visitor.stats != nullptr) {
      visitor.stats->AddReachProbes(rstats);
      visitor.stats->index_rebuilds =
          std::max(visitor.stats->index_rebuilds, ctx.index_rebuilds());
    }
    return completed;
  }
};

bool RunEnumeration(const NormDb& db, const EnumerationContext& context,
                    const std::vector<std::vector<int>>& prefix,
                    const ModelVisitor& visitor) {
  if (context.has_masks) {
    MaskEnumerator e(db, context, visitor);
    return e.Run(prefix);
  }
  Enumerator e(db, context, visitor);
  return e.Run(prefix);
}

}  // namespace

EnumerationContext::EnumerationContext(const NormDb& db, Mode mode)
    : mode(mode), num_points(db.num_points()) {
  const int n = num_points;
  strict_in_all_alive.assign(n, 0);
  strict_out_off.assign(n + 1, 0);
  if (mode == Mode::kClosure) {
    closure.emplace(ComputeReachability(db.dag));
    for (int u = 0; u < n; ++u) {
      int degree = 0;
      for (int v = 0; v < n; ++v) {
        degree += closure->strict.Get(u, v) ? 1 : 0;
      }
      strict_out_off[u + 1] = strict_out_off[u] + degree;
    }
    strict_out.resize(strict_out_off[n]);
    for (int u = 0, k = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (closure->strict.Get(u, v)) {
          strict_out[k++] = v;
          ++strict_in_all_alive[v];
        }
      }
    }
    return;
  }

  // Mask-width dags: the dense closure is cheaper to build than the
  // interval-list index (a fresh tiny database costs ~1 closure vs ~2-10
  // index builds — and containment reductions evaluate thousands of
  // them), and the word masks answer every probe afterwards either way.
  // The index takes over where its near-linear build and incremental
  // maintenance actually pay.
  if (n <= 64) {
    closure.emplace(ComputeReachability(db.dag));
    DeriveFromClosure();
    return;
  }
  index = std::make_shared<ReachabilityIndex>(db.dag);
  DeriveFromIndex();
}

EnumerationContext::EnumerationContext(
    const NormDb& db, std::shared_ptr<const ReachabilityIndex> grown)
    : mode(Mode::kIndex), num_points(db.num_points()) {
  IODB_CHECK_EQ(grown->num_vertices(), num_points);
  const int n = num_points;
  strict_in_all_alive.assign(n, 0);
  strict_out_off.assign(n + 1, 0);
  index = std::move(grown);
  DeriveFromIndex();
}

void EnumerationContext::DeriveFromIndex() {
  const int n = num_points;
  has_masks = n <= 64;
  if (has_masks) {
    desc_mask.assign(n, 0);
    anc_mask.assign(n, 0);
    strict_anc_mask.assign(n, 0);
  }
  std::vector<uint8_t> scratch;
  std::vector<int> weak;
  std::vector<int> strict;
  for (int u = 0; u < n; ++u) {
    weak.clear();
    strict.clear();
    index->CollectReachable(u, &weak, &strict, &scratch);
    strict_out_off[u + 1] = strict_out_off[u] + static_cast<int>(strict.size());
    strict_out.insert(strict_out.end(), strict.begin(), strict.end());
    for (int v : strict) ++strict_in_all_alive[v];
    if (has_masks) {
      const uint64_t u_bit = uint64_t{1} << u;
      uint64_t down = u_bit;
      for (int v : weak) {
        down |= uint64_t{1} << v;
        anc_mask[v] |= u_bit;
      }
      desc_mask[u] = down;
      anc_mask[u] |= u_bit;
      for (int v : strict) strict_anc_mask[v] |= u_bit;
    }
  }
}

void EnumerationContext::DeriveFromClosure() {
  const int n = num_points;
  has_masks = true;
  desc_mask.assign(n, 0);
  anc_mask.assign(n, 0);
  strict_anc_mask.assign(n, 0);
  for (int u = 0; u < n; ++u) {
    const uint64_t u_bit = uint64_t{1} << u;
    uint64_t down = 0;
    int degree = 0;
    for (int v = 0; v < n; ++v) {
      if (closure->reach.Get(u, v)) {  // diagonal set: self included
        down |= uint64_t{1} << v;
        anc_mask[v] |= u_bit;
      }
      if (closure->strict.Get(u, v)) {
        ++degree;
        strict_anc_mask[v] |= u_bit;
      }
    }
    desc_mask[u] = down;
    strict_out_off[u + 1] = strict_out_off[u] + degree;
  }
  strict_out.resize(strict_out_off[n]);
  for (int u = 0, k = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (closure->strict.Get(u, v)) {
        strict_out[k++] = v;
        ++strict_in_all_alive[v];
      }
    }
  }
}

bool EnumerationContext::Reaches(int u, int v, ReachProbeStats* stats) const {
  if (has_masks) {
    if (stats != nullptr) {
      ++stats->probes;
      ++stats->fast_hits;
    }
    return (desc_mask[u] >> v) & 1;
  }
  if (mode == Mode::kClosure) {
    if (stats != nullptr) {
      ++stats->probes;
      ++stats->fast_hits;
    }
    return closure->reach.Get(u, v);
  }
  return index->Reaches(u, v, stats);
}

bool EnumerationContext::Comparable(int u, int v,
                                    ReachProbeStats* stats) const {
  if (has_masks) {
    if (stats != nullptr) {
      ++stats->probes;
      ++stats->fast_hits;
    }
    return (((desc_mask[u] >> v) | (desc_mask[v] >> u)) & 1) != 0;
  }
  if (mode == Mode::kClosure) {
    if (stats != nullptr) {
      ++stats->probes;
      ++stats->fast_hits;
    }
    return closure->reach.Get(u, v) || closure->reach.Get(v, u);
  }
  return index->Comparable(u, v, stats);
}

namespace {

// Cross-revision reuse: when the new dag extends the dag the previous
// revision's index was built for (same leading vertices, the old edge
// log a prefix of the new edge list — the shape a service APPEND or WAL
// replay produces), grow a copy of that index by the appended vertices
// and edges instead of rebuilding from scratch. Returns null when the
// dags diverged (points merged, edges upgraded or reordered).
std::shared_ptr<const EnumerationContext> TryExtendPreviousContext(
    const NormDb& db) {
  auto prev = std::static_pointer_cast<const EnumerationContext>(
      db.prev_order_context);
  if (prev->mode != EnumerationContext::Mode::kIndex ||
      prev->index == nullptr) {
    return nullptr;
  }
  const std::vector<LabeledEdge>& log = prev->index->edge_log();
  const std::vector<LabeledEdge>& edges = db.dag.edges();
  if (db.num_points() < prev->index->num_vertices() ||
      edges.size() < log.size()) {
    return nullptr;
  }
  for (size_t i = 0; i < log.size(); ++i) {
    if (edges[i].from != log[i].from || edges[i].to != log[i].to ||
        edges[i].rel != log[i].rel) {
      return nullptr;
    }
  }
  auto grown = std::make_shared<ReachabilityIndex>(*prev->index);
  while (grown->num_vertices() < db.num_points()) grown->AddVertex();
  grown->AppendEdges(std::span<const LabeledEdge>(edges).subspan(log.size()));
  return std::make_shared<const EnumerationContext>(db, std::move(grown));
}

}  // namespace

std::shared_ptr<const EnumerationContext> SharedEnumerationContext(
    const NormDb& db) {
  if (db.order_context_cache != nullptr) {
    return std::static_pointer_cast<const EnumerationContext>(
        db.order_context_cache);
  }
  std::shared_ptr<const EnumerationContext> context;
  if (db.prev_order_context != nullptr) {
    context = TryExtendPreviousContext(db);
    db.prev_order_context = nullptr;  // one hop; release the old context
  }
  if (context == nullptr) {
    context = std::make_shared<const EnumerationContext>(db);
  }
  db.order_context_cache = context;
  return context;
}

bool ForEachMinimalModel(const NormDb& db, const ModelVisitor& visitor) {
  return RunEnumeration(db, *SharedEnumerationContext(db), {}, visitor);
}

bool ForEachMinimalModelFrom(const NormDb& db,
                             const EnumerationContext& context,
                             const std::vector<std::vector<int>>& prefix,
                             const ModelVisitor& visitor) {
  return RunEnumeration(db, context, prefix, visitor);
}

bool ForEachMinimalModelFrom(const NormDb& db,
                             const std::vector<std::vector<int>>& prefix,
                             const ModelVisitor& visitor) {
  return RunEnumeration(db, *SharedEnumerationContext(db), prefix, visitor);
}

long long CountMinimalModels(const NormDb& db, long long limit) {
  long long count = 0;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>&) {
    ++count;
    return limit < 0 || count < limit;
  };
  ForEachMinimalModel(db, visitor);
  return count;
}

}  // namespace iodb
