#include "core/model.h"

#include "util/strings.h"

namespace iodb {

std::string FiniteModel::ToString() const {
  std::string out;
  for (int p = 0; p < num_points; ++p) {
    if (p > 0) out += " < ";
    out += "[";
    std::vector<std::string> parts;
    if (p < static_cast<int>(point_names.size()) &&
        !point_names[p].empty()) {
      parts.push_back(point_names[p] + ":");
    }
    for (int pred : point_labels[p].Elements()) {
      parts.push_back(vocab->predicate(pred).name);
    }
    out += Join(parts, " ");
    out += "]";
  }
  if (!other_facts.empty()) {
    out += " |";
    for (const ProperAtom& atom : other_facts) {
      out += " " + vocab->predicate(atom.pred).name + "(";
      std::vector<std::string> args;
      for (const Term& term : atom.args) {
        if (term.sort == Sort::kObject) {
          args.push_back(object_names[term.id]);
        } else {
          args.push_back("p" + std::to_string(term.id));
        }
      }
      out += Join(args, ",") + ")";
    }
  }
  return out;
}

namespace {

FiniteModel BuildFromGroups(const NormDb& db,
                            const std::vector<std::vector<int>>& groups,
                            bool require_complete) {
  FiniteModel model;
  model.vocab = db.vocab;
  model.object_names = db.object_names;
  model.num_points = static_cast<int>(groups.size());
  model.point_labels.assign(model.num_points,
                            PredSet(db.vocab->num_predicates()));
  model.point_names.resize(model.num_points);

  std::vector<int> model_point(db.num_points(), -1);
  for (int i = 0; i < model.num_points; ++i) {
    std::vector<std::string> names;
    for (int dbp : groups[i]) {
      IODB_CHECK_EQ(model_point[dbp], -1);
      model_point[dbp] = i;
      model.point_labels[i].UnionWith(db.labels[dbp]);
      names.push_back(db.PointName(dbp));
    }
    model.point_names[i] = Join(names, "=");
  }
  if (require_complete) {
    for (int dbp = 0; dbp < db.num_points(); ++dbp) {
      IODB_CHECK_NE(model_point[dbp], -1);  // groups must cover all points
    }
  }

  for (const ProperAtom& atom : db.other_atoms) {
    ProperAtom mapped = atom;
    bool placed = true;
    for (Term& term : mapped.args) {
      if (term.sort == Sort::kOrder) {
        if (model_point[term.id] == -1) {
          placed = false;
          break;
        }
        term.id = model_point[term.id];
      }
    }
    if (placed) model.other_facts.push_back(std::move(mapped));
  }
  return model;
}

}  // namespace

FiniteModel BuildMinimalModel(const NormDb& db,
                              const std::vector<std::vector<int>>& groups) {
  return BuildFromGroups(db, groups, /*require_complete=*/true);
}

FiniteModel BuildPrefixModel(const NormDb& db,
                             const std::vector<std::vector<int>>& groups) {
  return BuildFromGroups(db, groups, /*require_complete=*/false);
}

}  // namespace iodb
