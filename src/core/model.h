// Finite models of indefinite order databases.
//
// A finite model has an order domain of points 0..num_points-1 (ordered by
// index) and an object domain of named constants. The minimal models of a
// database (Proposition 2.8) are built by topologically sorting its dag;
// `BuildMinimalModel` materializes one from a group sequence produced by
// the enumerator in minimal_models.h.

#ifndef IODB_CORE_MODEL_H_
#define IODB_CORE_MODEL_H_

#include <string>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/types.h"

namespace iodb {

/// A finite two-sorted structure.
struct FiniteModel {
  VocabularyPtr vocab;

  int num_points = 0;
  /// point_labels[p]: monadic-order facts holding at point p.
  std::vector<PredSet> point_labels;
  /// Display names, e.g. "z1=u1" for a point interpreting two constants.
  std::vector<std::string> point_names;

  std::vector<std::string> object_names;
  /// Facts that are not monadic-order; order-sort Term ids are points.
  std::vector<ProperAtom> other_facts;

  /// Renders the model as "a1 < a2 < ..." with fact annotations.
  std::string ToString() const;
};

/// Materializes the minimal model in which the database points listed in
/// `groups[i]` are interpreted as model point i (Example 2.7). `groups`
/// must partition the points of `db` into a valid topological sort.
FiniteModel BuildMinimalModel(const NormDb& db,
                              const std::vector<std::vector<int>>& groups);

/// As BuildMinimalModel, but `groups` may cover only a prefix of the
/// points. Facts mentioning unplaced points are omitted; the result is the
/// restriction of any completion to the placed points, which embeds
/// homomorphically into that completion (used for monotone pruning).
FiniteModel BuildPrefixModel(const NormDb& db,
                             const std::vector<std::vector<int>>& groups);

}  // namespace iodb

#endif  // IODB_CORE_MODEL_H_
