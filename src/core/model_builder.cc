#include "core/model_builder.h"

#include <utility>

#include "util/strings.h"

namespace iodb {

ModelBuilder::ModelBuilder(const NormDb& db)
    : db_(&db), index_(db.vocab, db.num_points()) {
  const int n = db.num_points();
  model_.vocab = db.vocab;
  model_.object_names = db.object_names;
  model_.num_points = 0;
  // Full-capacity label slots; only the first num_points are live. The
  // matcher reads point_labels[p] for p < num_points only, so the view is
  // a valid FiniteModel at every depth.
  model_.point_labels.assign(n, PredSet(db.vocab->num_predicates()));
  model_point_.assign(n, -1);

  // CSR of order-term occurrences: point -> atom indices.
  unplaced_count_.assign(db.other_atoms.size(), 0);
  std::vector<int> degree(n, 0);
  for (size_t ai = 0; ai < db.other_atoms.size(); ++ai) {
    for (const Term& term : db.other_atoms[ai].args) {
      if (term.sort == Sort::kOrder) {
        ++degree[term.id];
        ++unplaced_count_[ai];
      }
    }
  }
  atoms_of_point_off_.assign(n + 1, 0);
  for (int p = 0; p < n; ++p) {
    atoms_of_point_off_[p + 1] = atoms_of_point_off_[p] + degree[p];
  }
  atoms_of_point_.resize(atoms_of_point_off_[n]);
  std::vector<int> cursor(atoms_of_point_off_.begin(),
                          atoms_of_point_off_.end() - 1);
  for (size_t ai = 0; ai < db.other_atoms.size(); ++ai) {
    for (const Term& term : db.other_atoms[ai].args) {
      if (term.sort == Sort::kOrder) {
        atoms_of_point_[cursor[term.id]++] = static_cast<int>(ai);
      }
    }
  }
  // Pure object facts mention no order term: they hold at every depth
  // (including the empty prefix) and are never retracted.
  for (size_t ai = 0; ai < db.other_atoms.size(); ++ai) {
    if (unplaced_count_[ai] == 0) {
      index_.AddFact(db.other_atoms[ai]);
      model_.other_facts.push_back(db.other_atoms[ai]);
    }
  }
  levels_.reserve(n);
  spare_levels_.reserve(n);
}

void ModelBuilder::PushGroup(int depth, const std::vector<int>& group) {
  PopToDepth(depth);
  IODB_CHECK_EQ(depth, static_cast<int>(levels_.size()));
  if (spare_levels_.empty()) {
    levels_.emplace_back();
  } else {
    levels_.push_back(std::move(spare_levels_.back()));
    spare_levels_.pop_back();
  }
  Level& level = levels_.back();
  level.members.assign(group.begin(), group.end());
  level.index_mark = index_.Mark();
  level.facts_before = model_.other_facts.size();

  PredSet& label = model_.point_labels[depth];
  label.Clear();
  for (int g : group) {
    IODB_CHECK_EQ(model_point_[g], -1);
    model_point_[g] = depth;
    label.UnionWith(db_->labels[g]);
  }
  model_.num_points = depth + 1;
  index_.SetPointLabel(depth, label);

  // Facts whose last order occurrence was just placed materialize now.
  for (int g : group) {
    for (int k = atoms_of_point_off_[g]; k < atoms_of_point_off_[g + 1];
         ++k) {
      const int ai = atoms_of_point_[k];
      if (--unplaced_count_[ai] == 0) {
        ProperAtom mapped = db_->other_atoms[ai];
        for (Term& term : mapped.args) {
          if (term.sort == Sort::kOrder) term.id = model_point_[term.id];
        }
        index_.AddFact(mapped);
        model_.other_facts.push_back(std::move(mapped));
      }
    }
  }
  ++pushed_;
}

void ModelBuilder::PopToDepth(int depth) {
  IODB_CHECK_GE(depth, 0);
  while (static_cast<int>(levels_.size()) > depth) {
    Level& level = levels_.back();
    const int point = static_cast<int>(levels_.size()) - 1;
    for (int g : level.members) {
      model_point_[g] = -1;
      for (int k = atoms_of_point_off_[g]; k < atoms_of_point_off_[g + 1];
           ++k) {
        ++unplaced_count_[atoms_of_point_[k]];
      }
    }
    index_.RewindTo(level.index_mark);
    index_.ClearPointLabel(point, model_.point_labels[point]);
    model_.other_facts.resize(level.facts_before);
    model_.num_points = point;
    spare_levels_.push_back(std::move(levels_.back()));
    levels_.pop_back();
    ++popped_;
  }
}

FiniteModel ModelBuilder::Snapshot() const {
  FiniteModel out;
  out.vocab = model_.vocab;
  out.object_names = model_.object_names;
  out.num_points = model_.num_points;
  out.point_labels.assign(model_.point_labels.begin(),
                          model_.point_labels.begin() + model_.num_points);
  out.point_names.resize(model_.num_points);
  for (int p = 0; p < model_.num_points; ++p) {
    std::vector<std::string> names;
    for (int g : levels_[p].members) names.push_back(db_->PointName(g));
    out.point_names[p] = Join(names, "=");
  }
  // Facts in database order, exactly as BuildPrefixModel emits them.
  for (size_t ai = 0; ai < db_->other_atoms.size(); ++ai) {
    if (unplaced_count_[ai] != 0) continue;
    ProperAtom mapped = db_->other_atoms[ai];
    for (Term& term : mapped.args) {
      if (term.sort == Sort::kOrder) term.id = model_point_[term.id];
    }
    out.other_facts.push_back(std::move(mapped));
  }
  return out;
}

}  // namespace iodb
