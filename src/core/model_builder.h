// ModelBuilder: incremental prefix-model maintenance for the enumeration
// engines.
//
// The minimal-model enumerators visit a tree of group appends; the old
// evaluation path rebuilt a FiniteModel from scratch at every node
// (BuildPrefixModel, O(prefix) per node). ModelBuilder instead maintains
// ONE model in place under push/pop of a single group:
//
//   * point labels are dense PredSet bitsets keyed by point, refilled in
//     place (no allocation in steady state);
//   * non-monadic facts become "placed" exactly when their last order
//     term is pushed — tracked by a per-fact unplaced-occurrence counter
//     seeded from a db-point -> fact adjacency built once;
//   * a FactIndex (predicate-bucketed flat fact vectors + transposed
//     label bitsets) is maintained in lockstep, so Satisfies() probes
//     never re-hash the model's facts.
//
// view() is a valid FiniteModel at every depth (point names left empty,
// facts in placement order); Snapshot() materializes a full countermodel
// bit-identical to BuildMinimalModel's output (names filled, facts in
// database order).

#ifndef IODB_CORE_MODEL_BUILDER_H_
#define IODB_CORE_MODEL_BUILDER_H_

#include <vector>

#include "core/database.h"
#include "core/fact_index.h"
#include "core/model.h"

namespace iodb {

class ModelBuilder {
 public:
  explicit ModelBuilder(const NormDb& db);

  /// Pops to `depth`, then appends the database points of `group` as model
  /// point `depth`. Cost: O(|group| + facts completed), independent of the
  /// prefix length.
  void PushGroup(int depth, const std::vector<int>& group);

  /// Retracts groups until only `depth` points remain.
  void PopToDepth(int depth);

  int depth() const { return static_cast<int>(levels_.size()); }

  /// The current prefix model. Valid for model checking at every depth;
  /// point_names are left empty and other_facts are in placement order
  /// (use Snapshot() for a display/comparison-grade model).
  const FiniteModel& view() const { return model_; }

  /// The fact index maintained alongside the model.
  const FactIndex& index() const { return index_; }

  /// Materializes the current (complete or prefix) model with point names
  /// and facts in database order — identical to BuildPrefixModel /
  /// BuildMinimalModel on the same groups.
  FiniteModel Snapshot() const;

  /// Incremental work counters (surfaced through engine stats).
  long long groups_pushed() const { return pushed_; }
  long long groups_popped() const { return popped_; }

 private:
  const NormDb* db_;
  FiniteModel model_;
  FactIndex index_;
  std::vector<int> model_point_;  // db point -> model point or -1
  // db point -> indices into db->other_atoms, one entry per order-term
  // occurrence of that point (flat CSR).
  std::vector<int> atoms_of_point_;
  std::vector<int> atoms_of_point_off_;
  std::vector<int> unplaced_count_;  // per db atom
  struct Level {
    std::vector<int> members;
    size_t index_mark = 0;
    size_t facts_before = 0;
  };
  std::vector<Level> levels_;
  std::vector<Level> spare_levels_;  // capacity pool for popped levels
  long long pushed_ = 0;
  long long popped_ = 0;
};

}  // namespace iodb

#endif  // IODB_CORE_MODEL_BUILDER_H_
