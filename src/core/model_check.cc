#include "core/model_check.h"

#include <algorithm>
#include <unordered_map>

#include "graph/topo.h"

namespace iodb {
namespace {

// Backtracking search state for one conjunct.
struct Checker {
  const FiniteModel& model;
  const NormConjunct& conjunct;
  ModelCheckStats* stats;

  // Facts of the model indexed by predicate (only non-monadic ones; Term
  // ids flattened: object id or point id in signature position order).
  std::unordered_map<int, std::vector<const ProperAtom*>> facts_by_pred;

  std::vector<int> order_assignment;   // order var -> point or -1
  std::vector<int> object_assignment;  // object var -> object id or -1

  // Variable processing order: order vars in topological order of the
  // conjunct dag (so order atoms are checked as early as possible), then
  // object vars.
  std::vector<std::pair<Sort, int>> var_order;

  explicit Checker(const FiniteModel& m, const NormConjunct& c,
                   ModelCheckStats* s)
      : model(m), conjunct(c), stats(s) {
    for (const ProperAtom& fact : model.other_facts) {
      facts_by_pred[fact.pred].push_back(&fact);
    }
    order_assignment.assign(conjunct.num_order_vars(), -1);
    object_assignment.assign(conjunct.num_object_vars(), -1);
    std::vector<int> topo = TopologicalOrder(conjunct.dag);
    for (int t : topo) var_order.push_back({Sort::kOrder, t});
    for (int x = 0; x < conjunct.num_object_vars(); ++x) {
      var_order.push_back({Sort::kObject, x});
    }
  }

  bool TermAssigned(const Term& term) const {
    return term.sort == Sort::kOrder ? order_assignment[term.id] != -1
                                     : object_assignment[term.id] != -1;
  }
  int TermValue(const Term& term) const {
    return term.sort == Sort::kOrder ? order_assignment[term.id]
                                     : object_assignment[term.id];
  }

  // Checks all constraints whose variables are fully assigned and that
  // involve the just-assigned variable (sort, id).
  bool ConstraintsHold(Sort sort, int id) const {
    if (sort == Sort::kOrder) {
      int point = order_assignment[id];
      if (!conjunct.labels[id].IsSubsetOf(model.point_labels[point])) {
        return false;
      }
      for (const Digraph::Arc& arc : conjunct.dag.in(id)) {
        int other = order_assignment[arc.vertex];
        if (other == -1) continue;
        if (arc.rel == OrderRel::kLt ? !(other < point) : !(other <= point)) {
          return false;
        }
      }
      for (const Digraph::Arc& arc : conjunct.dag.out(id)) {
        int other = order_assignment[arc.vertex];
        if (other == -1) continue;
        if (arc.rel == OrderRel::kLt ? !(point < other) : !(point <= other)) {
          return false;
        }
      }
      for (const auto& [a, b] : conjunct.inequalities) {
        if (a != id && b != id) continue;
        int va = order_assignment[a], vb = order_assignment[b];
        if (va != -1 && vb != -1 && va == vb) return false;
      }
    }
    // Proper atoms that are now fully assigned and mention this variable.
    for (const ProperAtom& atom : conjunct.other_atoms) {
      bool mentions = false;
      bool complete = true;
      for (const Term& term : atom.args) {
        if (term.sort == sort && term.id == id) mentions = true;
        if (!TermAssigned(term)) complete = false;
      }
      if (!mentions || !complete) continue;
      if (!FactHolds(atom)) return false;
    }
    return true;
  }

  bool FactHolds(const ProperAtom& atom) const {
    auto it = facts_by_pred.find(atom.pred);
    if (it == facts_by_pred.end()) return false;
    for (const ProperAtom* fact : it->second) {
      bool match = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        if (fact->args[i].id != TermValue(atom.args[i])) {
          match = false;
          break;
        }
      }
      if (match) return true;
    }
    return false;
  }

  bool Search(size_t next) {
    while (next < var_order.size()) {
      auto [sort, id] = var_order[next];
      bool assigned = sort == Sort::kOrder ? order_assignment[id] != -1
                                           : object_assignment[id] != -1;
      if (!assigned) break;
      ++next;  // pinned by SatisfiesWithFixed
    }
    if (next == var_order.size()) return true;
    auto [sort, id] = var_order[next];
    int domain = sort == Sort::kOrder
                     ? model.num_points
                     : static_cast<int>(model.object_names.size());
    for (int value = 0; value < domain; ++value) {
      if (stats != nullptr) ++stats->assignments_tried;
      (sort == Sort::kOrder ? order_assignment[id]
                            : object_assignment[id]) = value;
      if (ConstraintsHold(sort, id) && Search(next + 1)) return true;
    }
    (sort == Sort::kOrder ? order_assignment[id] : object_assignment[id]) =
        -1;
    return false;
  }
};

}  // namespace

bool Satisfies(const FiniteModel& model, const NormConjunct& conjunct,
               ModelCheckStats* stats) {
  Checker checker(model, conjunct, stats);
  return checker.Search(0);
}

bool SatisfiesWithFixed(const FiniteModel& model, const NormConjunct& conjunct,
                        const std::vector<FixedVar>& fixed,
                        ModelCheckStats* stats) {
  Checker checker(model, conjunct, stats);
  for (const FixedVar& f : fixed) {
    (f.var.sort == Sort::kOrder ? checker.order_assignment[f.var.id]
                                : checker.object_assignment[f.var.id]) =
        f.value;
  }
  // Pinned values must themselves satisfy the constraints they complete.
  for (const FixedVar& f : fixed) {
    if (!checker.ConstraintsHold(f.var.sort, f.var.id)) return false;
  }
  return checker.Search(0);
}

bool Satisfies(const FiniteModel& model, const NormQuery& query,
               ModelCheckStats* stats) {
  if (query.trivially_true) return true;
  for (const NormConjunct& conjunct : query.disjuncts) {
    if (Satisfies(model, conjunct, stats)) return true;
  }
  return false;
}

}  // namespace iodb
