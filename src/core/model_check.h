// Satisfaction of positive existential queries in finite models.
//
// Model checking a conjunctive query is homomorphism search (NP in the
// query, polynomial for a fixed query); this backtracking checker is the
// inner loop of the brute-force entailment engine and of the upper-bound
// arguments of Proposition 3.1. For monadic queries in word models the
// specialized engines (Corollary 5.1) are asymptotically better; this one
// works for arbitrary arity and inequalities.

#ifndef IODB_CORE_MODEL_CHECK_H_
#define IODB_CORE_MODEL_CHECK_H_

#include <algorithm>

#include "core/model.h"
#include "core/query.h"
#include "graph/reachability_index.h"

namespace iodb {

/// Statistics of a model-check call. Counters accumulate across calls
/// when the same struct is passed repeatedly (the brute-force engine sums
/// over every prefix check of an enumeration).
struct ModelCheckStats {
  /// Variable -> value assignments attempted by the backtracking search.
  long long assignments_tried = 0;
  /// FactIndex bucket lookups (per fully-assigned proper atom checked).
  long long index_probes = 0;
  /// Fact tuples compared during index probes (bucket scan length).
  long long facts_scanned = 0;
  /// Precedence tests ("is u (strictly) before v?") answered by the
  /// reachability layer: interval/mask probes plus matcher dag lower
  /// bounds.
  long long reach_probes = 0;
  /// Probes answered in O(1) (interval containment, single-word mask
  /// test, or a precomputed lower bound) with no graph walk.
  long long reach_fast_hits = 0;
  /// Probes that needed a residual walk (approximate-interval
  /// verification or appended-edge search).
  long long reach_fallbacks = 0;
  /// Cumulative base rebuilds of the reachability index serving the
  /// evaluated database (1 = built once, never dirtied past threshold).
  long long index_rebuilds = 0;

  void Accumulate(const ModelCheckStats& other) {
    assignments_tried += other.assignments_tried;
    index_probes += other.index_probes;
    facts_scanned += other.facts_scanned;
    reach_probes += other.reach_probes;
    reach_fast_hits += other.reach_fast_hits;
    reach_fallbacks += other.reach_fallbacks;
    index_rebuilds = std::max(index_rebuilds, other.index_rebuilds);
  }

  void AddReachProbes(const ReachProbeStats& reach) {
    reach_probes += reach.probes;
    reach_fast_hits += reach.fast_hits;
    reach_fallbacks += reach.fallbacks;
  }
};

/// True if `model` satisfies the conjunct (with its variables existentially
/// quantified).
bool Satisfies(const FiniteModel& model, const NormConjunct& conjunct,
               ModelCheckStats* stats = nullptr);

/// A pinned variable: `var` (sort + variable id within the conjunct) must
/// take the value `value` (point id or object id).
struct FixedVar {
  Term var;
  int value = 0;
};

/// As Satisfies, but with some variables pre-assigned (used to compute
/// relational answer sets, where head variables are fixed per tuple).
bool SatisfiesWithFixed(const FiniteModel& model, const NormConjunct& conjunct,
                        const std::vector<FixedVar>& fixed,
                        ModelCheckStats* stats = nullptr);

/// True if `model` satisfies some disjunct of `query`.
bool Satisfies(const FiniteModel& model, const NormQuery& query,
               ModelCheckStats* stats = nullptr);

}  // namespace iodb

#endif  // IODB_CORE_MODEL_CHECK_H_
