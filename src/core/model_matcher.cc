#include "core/model_matcher.h"

#include <algorithm>
#include <bit>

#include "graph/topo.h"

namespace iodb {

CompiledConjunct CompileConjunct(const NormConjunct& conjunct,
                                 const std::vector<int>* order_var_sequence) {
  CompiledConjunct out;
  const int nv = conjunct.num_order_vars();
  const int no = conjunct.num_object_vars();

  std::vector<int> topo;
  if (order_var_sequence != nullptr) {
    IODB_CHECK_EQ(static_cast<int>(order_var_sequence->size()), nv);
    topo = *order_var_sequence;
  } else {
    topo = TopologicalOrder(conjunct.dag);
  }
  out.var_order.reserve(topo.size() + no);
  std::vector<int> pos_of_order(nv, -1);
  for (int t : topo) {
    IODB_CHECK_GE(t, 0);
    IODB_CHECK_LT(t, nv);
    IODB_CHECK_EQ(pos_of_order[t], -1);  // a permutation visits each once
    pos_of_order[t] = static_cast<int>(out.var_order.size());
    out.var_order.push_back({Sort::kOrder, t});
  }
  if (order_var_sequence != nullptr) {
    // Linear-extension invariant: every dag source precedes its target.
    for (const LabeledEdge& e : conjunct.dag.edges()) {
      IODB_CHECK_LT(pos_of_order[e.from], pos_of_order[e.to]);
    }
  }
  std::vector<int> pos_of_object(no, -1);
  for (int x = 0; x < no; ++x) {
    pos_of_object[x] = static_cast<int>(out.var_order.size());
    out.var_order.push_back({Sort::kObject, x});
  }

  out.in_arcs.resize(nv);
  for (int t = 0; t < nv; ++t) {
    for (const Digraph::Arc& arc : conjunct.dag.in(t)) {
      out.in_arcs[t].push_back({arc.vertex, arc.rel == OrderRel::kLt});
    }
  }

  out.ineq_partners.resize(nv);
  for (const auto& [a, b] : conjunct.inequalities) {
    // Checked at whichever endpoint is assigned later.
    if (pos_of_order[a] < pos_of_order[b]) {
      out.ineq_partners[b].push_back(a);
    } else {
      out.ineq_partners[a].push_back(b);
    }
  }

  out.label_preds.resize(nv);
  for (int t = 0; t < nv; ++t) out.label_preds[t] = conjunct.labels[t].Elements();

  out.atoms_at.resize(out.var_order.size());
  for (size_t ai = 0; ai < conjunct.other_atoms.size(); ++ai) {
    const ProperAtom& atom = conjunct.other_atoms[ai];
    int last = -1;
    for (const Term& term : atom.args) {
      const int pos = term.sort == Sort::kOrder ? pos_of_order[term.id]
                                                : pos_of_object[term.id];
      last = std::max(last, pos);
    }
    // Variable-free atoms were never checked by the generic checker
    // (nothing mentions them); keep the same contract.
    if (last >= 0) out.atoms_at[last].push_back(static_cast<int>(ai));
  }
  return out;
}

ConjunctMatcher::ConjunctMatcher(const NormConjunct& conjunct,
                                 const CompiledConjunct* compiled)
    : conjunct_(&conjunct), external_(compiled) {
  if (compiled == nullptr) owned_ = CompileConjunct(conjunct);
  order_assignment_.assign(conjunct.num_order_vars(), -1);
  object_assignment_.assign(conjunct.num_object_vars(), -1);
}

bool ConjunctMatcher::Matches(const FiniteModel& model, const FactIndex* index,
                              ModelCheckStats* stats) {
  model_ = &model;
  index_ = index;
  stats_ = stats;
  const bool found = Search(0);
  std::fill(order_assignment_.begin(), order_assignment_.end(), -1);
  std::fill(object_assignment_.begin(), object_assignment_.end(), -1);
  return found;
}

bool ConjunctMatcher::AtomsHold(size_t pos) {
  for (int ai : compiled().atoms_at[pos]) {
    const ProperAtom& atom = conjunct_->other_atoms[ai];
    const int arity = static_cast<int>(atom.args.size());
    atom_args_.resize(arity);
    for (int i = 0; i < arity; ++i) {
      const Term& term = atom.args[i];
      atom_args_[i] = term.sort == Sort::kOrder ? order_assignment_[term.id]
                                                : object_assignment_[term.id];
    }
    if (index_ != nullptr) {
      if (!index_->ContainsTuple(atom.pred, atom_args_.data(), arity,
                                 stats_)) {
        return false;
      }
      continue;
    }
    // No index: scan the model's facts for this predicate.
    if (stats_ != nullptr) ++stats_->index_probes;
    bool holds = false;
    for (const ProperAtom& fact : model_->other_facts) {
      if (fact.pred != atom.pred) continue;
      if (stats_ != nullptr) ++stats_->facts_scanned;
      bool match = true;
      for (int i = 0; i < arity; ++i) {
        if (fact.args[i].id != atom_args_[i]) {
          match = false;
          break;
        }
      }
      if (match) {
        holds = true;
        break;
      }
    }
    if (!holds) return false;
  }
  return true;
}

bool ConjunctMatcher::TryPoint(int var, size_t pos, int point) {
  for (int partner : compiled().ineq_partners[var]) {
    if (order_assignment_[partner] == point) return false;
  }
  if (stats_ != nullptr) ++stats_->assignments_tried;
  order_assignment_[var] = point;
  if (AtomsHold(pos) && Search(pos + 1)) return true;
  order_assignment_[var] = -1;
  return false;
}

bool ConjunctMatcher::Search(size_t pos) {
  const CompiledConjunct& cc = compiled();
  if (pos == cc.var_order.size()) return true;
  const auto [sort, id] = cc.var_order[pos];

  if (sort == Sort::kObject) {
    const int domain = static_cast<int>(model_->object_names.size());
    for (int value = 0; value < domain; ++value) {
      if (stats_ != nullptr) ++stats_->assignments_tried;
      object_assignment_[id] = value;
      if (AtomsHold(pos) && Search(pos + 1)) return true;
    }
    object_assignment_[id] = -1;
    return false;
  }

  // Order variable: the dag predecessors (all assigned earlier) induce an
  // exact lower bound, so the scan starts there instead of at 0. Each
  // in-arc bound is one precedence test answered in O(1) — counted with
  // the reachability-layer probes.
  int start = 0;
  for (const CompiledConjunct::InArc& arc : cc.in_arcs[id]) {
    const int v = order_assignment_[arc.var];
    start = std::max(start, v + (arc.strict ? 1 : 0));
  }
  if (stats_ != nullptr && !cc.in_arcs[id].empty()) {
    stats_->reach_probes += static_cast<long long>(cc.in_arcs[id].size());
    stats_->reach_fast_hits += static_cast<long long>(cc.in_arcs[id].size());
  }
  const int num_points = model_->num_points;
  const std::vector<int>& labels = cc.label_preds[id];

  if (index_ == nullptr || labels.empty()) {
    // Domain scan with per-point label subset tests.
    const PredSet& required = conjunct_->labels[id];
    for (int point = start; point < num_points; ++point) {
      if (!labels.empty() && !required.IsSubsetOf(model_->point_labels[point])) {
        continue;
      }
      if (TryPoint(id, pos, point)) return true;
    }
    order_assignment_[id] = -1;
    return false;
  }

  // Candidate points from the transposed label index: the AND of the
  // required predicates' point bitsets, masked to [start, num_points).
  const int words = index_->words_per_point_set();
  const int start_word = start >> 6;
  for (int w = start_word; w < words; ++w) {
    uint64_t bits = index_->PointsWith(labels[0])[w];
    for (size_t l = 1; l < labels.size(); ++l) {
      bits &= index_->PointsWith(labels[l])[w];
    }
    if (w == start_word && (start & 63) != 0) {
      bits &= ~uint64_t{0} << (start & 63);
    }
    while (bits != 0) {
      const int point = w * 64 + std::countr_zero(bits);
      bits &= bits - 1;
      if (TryPoint(id, pos, point)) return true;
    }
  }
  order_assignment_[id] = -1;
  return false;
}

QueryMatcher::QueryMatcher(
    const NormQuery& query,
    const std::vector<const CompiledConjunct*>* compiled)
    : query_(&query) {
  if (compiled != nullptr) {
    IODB_CHECK_EQ(compiled->size(), query.disjuncts.size());
  }
  matchers_.reserve(query.disjuncts.size());
  for (size_t i = 0; i < query.disjuncts.size(); ++i) {
    matchers_.emplace_back(query.disjuncts[i],
                           compiled != nullptr ? (*compiled)[i] : nullptr);
  }
}

bool QueryMatcher::Matches(const FiniteModel& model, const FactIndex* index,
                           ModelCheckStats* stats) {
  if (query_->trivially_true) return true;
  for (ConjunctMatcher& matcher : matchers_) {
    if (matcher.Matches(model, index, stats)) return true;
  }
  return false;
}

}  // namespace iodb
