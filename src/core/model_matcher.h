// Compiled model checking: prepare-once / probe-many satisfaction tests.
//
// The generic checker in model_check.h recomputes, on EVERY Satisfies()
// call, the conjunct's variable order (a topological sort), a hash map of
// the model's facts by predicate, and fresh assignment buffers. Inside
// the enumeration engines that call is made at every node of the
// enumeration tree, so the setup dominates the actual search.
//
// This header splits the work the way the rest of the pipeline does:
//
//   CompileConjunct   once per conjunct (at Prepare() time for plans):
//                     topological variable order, per-variable in-arc /
//                     inequality / label schedules, and the position at
//                     which each proper atom becomes fully assigned;
//   ConjunctMatcher   a reusable search state (assignment buffers) that
//                     checks one conjunct against a model, probing a
//                     FactIndex instead of hashing facts; candidate
//                     points for an order variable are enumerated from
//                     the index's transposed label bitsets and from the
//                     dag lower bound induced by already-assigned
//                     predecessors;
//   QueryMatcher      the disjunction wrapper used by the engines.
//
// Verdicts are identical to model_check.h's Satisfies() (the generic
// checker remains the reference implementation, compared against in the
// differential test suite); only the work counters differ.

#ifndef IODB_CORE_MODEL_MATCHER_H_
#define IODB_CORE_MODEL_MATCHER_H_

#include <utility>
#include <vector>

#include "core/fact_index.h"
#include "core/model.h"
#include "core/model_check.h"
#include "core/query.h"

namespace iodb {

/// The memoized per-conjunct evaluation schedule (see header comment).
struct CompiledConjunct {
  /// An order-dag arc whose source is assigned before its target.
  struct InArc {
    int var = 0;       // the earlier-assigned source variable
    bool strict = false;  // "<" (true) vs "<=" (false)
  };

  /// Variable processing order: order variables in topological order of
  /// the conjunct dag, then object variables.
  std::vector<std::pair<Sort, int>> var_order;
  /// in_arcs[t]: dag arcs into order variable t (sources precede t).
  std::vector<std::vector<InArc>> in_arcs;
  /// ineq_partners[t]: order variables u with u != t assigned before t.
  std::vector<std::vector<int>> ineq_partners;
  /// label_preds[t]: the monadic predicates required of t, as a list.
  std::vector<std::vector<int>> label_preds;
  /// atoms_at[pos]: indices into other_atoms of the proper atoms whose
  /// last variable (in var_order) sits at position pos.
  std::vector<std::vector<int>> atoms_at;
};

/// Compiles the schedule of `conjunct`. Plans memoize this at Prepare()
/// time; standalone callers may compile per engine run (still once per
/// run instead of once per model).
///
/// `order_var_sequence`, when non-null, replaces the default topological
/// order of the order variables (cost-based planning, core/planner.h).
/// It must be a permutation of [0, num_order_vars) that is a linear
/// extension of the conjunct dag — Search()'s in-arc lower bound reads
/// the assignments of dag predecessors, so a non-extension order would
/// silently break it (checked).
CompiledConjunct CompileConjunct(
    const NormConjunct& conjunct,
    const std::vector<int>* order_var_sequence = nullptr);

/// Reusable satisfaction checker for one conjunct. Holds the assignment
/// buffers across calls, so the per-model cost is the search itself.
/// The conjunct (and compiled schedule, if external) must outlive the
/// matcher. Not thread-safe; each worker owns its matchers.
class ConjunctMatcher {
 public:
  /// With `compiled` null the schedule is compiled and owned internally.
  explicit ConjunctMatcher(const NormConjunct& conjunct,
                           const CompiledConjunct* compiled = nullptr);

  /// True if `model` satisfies the conjunct. `index` may be null (labels
  /// are then tested per point and facts scanned from the model).
  bool Matches(const FiniteModel& model, const FactIndex* index,
               ModelCheckStats* stats = nullptr);

 private:
  const CompiledConjunct& compiled() const {
    return external_ != nullptr ? *external_ : owned_;
  }
  bool Search(size_t pos);
  bool AtomsHold(size_t pos);
  bool TryPoint(int var, size_t pos, int point);

  const NormConjunct* conjunct_;
  const CompiledConjunct* external_;
  CompiledConjunct owned_;

  const FiniteModel* model_ = nullptr;
  const FactIndex* index_ = nullptr;
  ModelCheckStats* stats_ = nullptr;
  std::vector<int> order_assignment_;
  std::vector<int> object_assignment_;
  std::vector<int> atom_args_;  // scratch for fact probes
};

/// The disjunction wrapper: one matcher per disjunct, first match wins.
class QueryMatcher {
 public:
  /// `compiled`, when given, must be parallel to query.disjuncts (the
  /// plan-memoized schedules); null compiles internally. The query must
  /// outlive the matcher.
  explicit QueryMatcher(
      const NormQuery& query,
      const std::vector<const CompiledConjunct*>* compiled = nullptr);

  bool Matches(const FiniteModel& model, const FactIndex* index,
               ModelCheckStats* stats = nullptr);

 private:
  const NormQuery* query_;
  std::vector<ConjunctMatcher> matchers_;
};

}  // namespace iodb

#endif  // IODB_CORE_MODEL_MATCHER_H_
