#include "core/parser.h"

#include <cctype>
#include <optional>
#include <vector>

#include "util/strings.h"

namespace iodb {
namespace {

enum class TokKind {
  kIdent,
  kLParen,
  kRParen,
  kComma,
  kColon,
  kAmp,
  kBar,
  kLt,
  kLe,
  kNeq,
  kSemicolon,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
};

// Tokenizes `text`; newlines are emitted as kSemicolon so both separators
// behave alike in the database format (queries ignore them).
Result<std::vector<Token>> Tokenize(const std::string& text,
                                    bool newline_separates) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (c == '\n') {
      if (newline_separates) tokens.push_back({TokKind::kSemicolon, ";"});
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
        c == '@') {
      size_t start = i;
      ++i;
      while (i < text.size()) {
        char d = text[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '_' ||
            d == '\'') {
          ++i;
        } else {
          break;
        }
      }
      tokens.push_back({TokKind::kIdent, text.substr(start, i - start)});
      continue;
    }
    switch (c) {
      case '(':
        tokens.push_back({TokKind::kLParen, "("});
        ++i;
        break;
      case ')':
        tokens.push_back({TokKind::kRParen, ")"});
        ++i;
        break;
      case ',':
        tokens.push_back({TokKind::kComma, ","});
        ++i;
        break;
      case ':':
        tokens.push_back({TokKind::kColon, ":"});
        ++i;
        break;
      case '&':
        tokens.push_back({TokKind::kAmp, "&"});
        ++i;
        break;
      case '|':
        tokens.push_back({TokKind::kBar, "|"});
        ++i;
        break;
      case ';':
        tokens.push_back({TokKind::kSemicolon, ";"});
        ++i;
        break;
      case '<':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back({TokKind::kLe, "<="});
          i += 2;
        } else {
          tokens.push_back({TokKind::kLt, "<"});
          ++i;
        }
        break;
      case '!':
        if (i + 1 < text.size() && text[i + 1] == '=') {
          tokens.push_back({TokKind::kNeq, "!="});
          i += 2;
        } else {
          return Status::InvalidArgument("unexpected '!' in input");
        }
        break;
      default:
        return Status::InvalidArgument(std::string("unexpected character '") +
                                       c + "'");
    }
  }
  tokens.push_back({TokKind::kEnd, ""});
  return tokens;
}

bool IsRel(TokKind kind) {
  return kind == TokKind::kLt || kind == TokKind::kLe || kind == TokKind::kNeq;
}

struct Cursor {
  const std::vector<Token>& tokens;
  size_t pos = 0;

  const Token& Peek() const { return tokens[pos]; }
  const Token& Next() { return tokens[pos++]; }
  bool Accept(TokKind kind) {
    if (tokens[pos].kind == kind) {
      ++pos;
      return true;
    }
    return false;
  }
};

// One parsed database statement.
struct DbStatement {
  enum Kind { kDecl, kAtom, kChain } kind;
  // kDecl / kAtom:
  std::string name;
  std::vector<std::string> args;  // sort names for kDecl, constants for kAtom
  // kChain: terms[0] rel[0] terms[1] rel[1] ...
  std::vector<std::string> terms;
  std::vector<TokKind> rels;
};

Result<std::vector<DbStatement>> ParseDbStatements(Cursor& cursor) {
  std::vector<DbStatement> statements;
  for (;;) {
    while (cursor.Accept(TokKind::kSemicolon)) {
    }
    if (cursor.Peek().kind == TokKind::kEnd) break;
    if (cursor.Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     cursor.Peek().text + "'");
    }
    std::string first = cursor.Next().text;
    if (first == "pred" && cursor.Peek().kind == TokKind::kIdent) {
      DbStatement decl;
      decl.kind = DbStatement::kDecl;
      decl.name = cursor.Next().text;
      if (!cursor.Accept(TokKind::kLParen)) {
        return Status::InvalidArgument("expected '(' after pred name");
      }
      for (;;) {
        if (cursor.Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument("expected sort name");
        }
        decl.args.push_back(cursor.Next().text);
        if (cursor.Accept(TokKind::kComma)) continue;
        break;
      }
      if (!cursor.Accept(TokKind::kRParen)) {
        return Status::InvalidArgument("expected ')' in pred declaration");
      }
      statements.push_back(std::move(decl));
      continue;
    }
    if (cursor.Peek().kind == TokKind::kLParen) {
      cursor.Next();
      DbStatement atom;
      atom.kind = DbStatement::kAtom;
      atom.name = first;
      for (;;) {
        if (cursor.Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument("expected constant in atom '" +
                                         first + "'");
        }
        atom.args.push_back(cursor.Next().text);
        if (cursor.Accept(TokKind::kComma)) continue;
        break;
      }
      if (!cursor.Accept(TokKind::kRParen)) {
        return Status::InvalidArgument("expected ')' in atom '" + first +
                                       "'");
      }
      statements.push_back(std::move(atom));
      continue;
    }
    if (IsRel(cursor.Peek().kind)) {
      DbStatement chain;
      chain.kind = DbStatement::kChain;
      chain.terms.push_back(first);
      while (IsRel(cursor.Peek().kind)) {
        chain.rels.push_back(cursor.Next().kind);
        if (cursor.Peek().kind != TokKind::kIdent) {
          return Status::InvalidArgument("expected constant after relation");
        }
        chain.terms.push_back(cursor.Next().text);
      }
      statements.push_back(std::move(chain));
      continue;
    }
    return Status::InvalidArgument("unexpected token after '" + first + "'");
  }
  return statements;
}

}  // namespace

Result<Database> ParseDatabase(const std::string& text, VocabularyPtr vocab) {
  Result<std::vector<Token>> tokens =
      Tokenize(text, /*newline_separates=*/true);
  if (!tokens.ok()) return tokens.status();
  Cursor cursor{tokens.value()};
  Result<std::vector<DbStatement>> statements = ParseDbStatements(cursor);
  if (!statements.ok()) return statements.status();

  Database db(std::move(vocab));

  // Pass 1: names occurring in order chains are order constants.
  for (const DbStatement& st : statements.value()) {
    if (st.kind != DbStatement::kChain) continue;
    for (const std::string& name : st.terms) {
      db.GetOrAddConstant(name, Sort::kOrder);
    }
  }
  // Pass 2: declarations, atoms and chains.
  for (const DbStatement& st : statements.value()) {
    switch (st.kind) {
      case DbStatement::kDecl: {
        std::vector<Sort> sorts;
        for (const std::string& s : st.args) {
          if (s == "object") {
            sorts.push_back(Sort::kObject);
          } else if (s == "order") {
            sorts.push_back(Sort::kOrder);
          } else {
            return Status::InvalidArgument("unknown sort '" + s + "'");
          }
        }
        Result<int> pred = db.vocab()->GetOrAddPredicate(st.name, sorts);
        if (!pred.ok()) return pred.status();
        break;
      }
      case DbStatement::kAtom: {
        Status s = db.AddFact(st.name, st.args);
        if (!s.ok()) return s;
        break;
      }
      case DbStatement::kChain: {
        for (size_t i = 0; i < st.rels.size(); ++i) {
          int u = db.GetOrAddConstant(st.terms[i], Sort::kOrder);
          int v = db.GetOrAddConstant(st.terms[i + 1], Sort::kOrder);
          if (st.rels[i] == TokKind::kNeq) {
            db.AddInequality(u, v);
          } else {
            db.AddOrderAtom(u, v,
                            st.rels[i] == TokKind::kLt ? OrderRel::kLt
                                                       : OrderRel::kLe);
          }
        }
        break;
      }
    }
  }
  return db;
}

Result<Query> ParseQuery(const std::string& text, VocabularyPtr vocab) {
  Result<std::vector<Token>> tokens =
      Tokenize(text, /*newline_separates=*/false);
  if (!tokens.ok()) return tokens.status();
  Cursor cursor{tokens.value()};

  Query query(std::move(vocab));
  for (;;) {
    QueryConjunct conjunct;
    if (cursor.Peek().kind == TokKind::kIdent &&
        cursor.Peek().text == "exists") {
      cursor.Next();
      while (cursor.Peek().kind == TokKind::kIdent) {
        conjunct.Exists(cursor.Next().text);
      }
      if (!cursor.Accept(TokKind::kColon)) {
        return Status::InvalidArgument("expected ':' after exists list");
      }
    }
    // Conjunction of atoms.
    for (;;) {
      if (cursor.Peek().kind != TokKind::kIdent) {
        return Status::InvalidArgument("expected atom, got '" +
                                       cursor.Peek().text + "'");
      }
      std::string first = cursor.Next().text;
      // Bare `true` is the empty conjunction: it contributes no atom, so
      // a disjunct that quantifies variables without constraining them
      // ("exists t0 t1: true", the printer's form) parses back exactly.
      // A predicate named "true" still works — it is followed by '('.
      if (first == "true" && cursor.Peek().kind != TokKind::kLParen &&
          !IsRel(cursor.Peek().kind)) {
        if (cursor.Accept(TokKind::kAmp)) continue;
        break;
      }
      if (cursor.Peek().kind == TokKind::kLParen) {
        cursor.Next();
        QueryProperAtom atom;
        atom.pred = first;
        for (;;) {
          if (cursor.Peek().kind != TokKind::kIdent) {
            return Status::InvalidArgument("expected term in atom '" + first +
                                           "'");
          }
          atom.args.push_back({cursor.Next().text});
          if (cursor.Accept(TokKind::kComma)) continue;
          break;
        }
        if (!cursor.Accept(TokKind::kRParen)) {
          return Status::InvalidArgument("expected ')' in atom '" + first +
                                         "'");
        }
        conjunct.proper_atoms.push_back(std::move(atom));
      } else if (IsRel(cursor.Peek().kind)) {
        std::string prev = first;
        while (IsRel(cursor.Peek().kind)) {
          TokKind rel = cursor.Next().kind;
          if (cursor.Peek().kind != TokKind::kIdent) {
            return Status::InvalidArgument("expected term after relation");
          }
          std::string next = cursor.Next().text;
          if (rel == TokKind::kNeq) {
            conjunct.inequalities.push_back({{prev}, {next}});
          } else {
            conjunct.order_atoms.push_back(
                {{prev},
                 {next},
                 rel == TokKind::kLt ? OrderRel::kLt : OrderRel::kLe});
          }
          prev = next;
        }
      } else {
        return Status::InvalidArgument("expected '(' or relation after '" +
                                       first + "'");
      }
      if (cursor.Accept(TokKind::kAmp)) continue;
      break;
    }
    query.AddDisjunct(std::move(conjunct));
    if (cursor.Accept(TokKind::kBar)) continue;
    break;
  }
  if (cursor.Peek().kind != TokKind::kEnd) {
    return Status::InvalidArgument("trailing input: '" + cursor.Peek().text +
                                   "'");
  }
  return query;
}

}  // namespace iodb
