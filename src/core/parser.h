// Text formats for databases and queries.
//
// Database: one statement per line (or ';'-separated), '#' comments.
//   pred IC(order, order, object)        # optional declaration
//   P(u)                                 # ground proper atom
//   IC(z1, z2, A)
//   z1 < z2 <= z3                        # order chains
//   u != v                               # inequality (Section 7)
// Constant sorts are inferred: names occurring in order chains are order
// constants; other names default to the predicate's declared sort, else
// to object.
//
// Query (disjunctive normal form):
//   exists t1 t2 x: P(t1) & t1 < t2 & Q(x, t2)
//   | exists t: R(t)
// Names listed after `exists` are variables of that disjunct; every other
// name is a constant. Variable sorts are inferred during normalization.
// A bare `true` is the empty conjunction, so a disjunct that quantifies
// variables without constraining them ("exists t0 t1: true") parses; the
// printer emits exactly that form for atomless disjuncts.

#ifndef IODB_CORE_PARSER_H_
#define IODB_CORE_PARSER_H_

#include <string>

#include "core/database.h"
#include "core/query.h"
#include "util/status.h"

namespace iodb {

/// Parses a database, registering predicates into `vocab`.
Result<Database> ParseDatabase(const std::string& text, VocabularyPtr vocab);

/// Parses a query in disjunctive normal form. Predicates must already be
/// known to `vocab` (parse the database first, or declare them).
Result<Query> ParseQuery(const std::string& text, VocabularyPtr vocab);

}  // namespace iodb

#endif  // IODB_CORE_PARSER_H_
