// Cost-based planning interface consulted by Prepare().
//
// The core layer knows nothing about where cost estimates come from: a
// QueryPlanner is an abstract oracle that, given the normalized disjuncts
// of a query, proposes per-disjunct variable-assignment schedules, an
// evaluation order over the disjuncts, and (optionally) an engine route.
// The concrete implementation backed by persisted database statistics
// lives in src/stats/cost_model.h; tests stub the interface directly.
//
// Planner proposals are strictly advisory and can never change a
// verdict: Prepare() validates every proposed schedule (it must be a
// permutation of the disjunct's order variables AND a linear extension
// of its dag — the compiled matcher's lower-bound scan requires dag
// sources to be assigned before their targets) and ignores anything
// invalid; engine suggestions are honored only when the caller asked for
// kAuto and the suggestion is applicable to the instance.

#ifndef IODB_CORE_PLANNER_H_
#define IODB_CORE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query.h"

namespace iodb {

/// The planner's proposal for one normalized disjunct.
struct DisjunctCost {
  /// Proposed assignment order over the disjunct's order variables (a
  /// permutation of [0, num_order_vars)). Empty keeps the default
  /// topological order. Invalid sequences (wrong length, not a
  /// permutation, not a linear extension of the dag) are ignored.
  std::vector<int> order_var_sequence;
  /// Estimated matcher work (candidate assignments tried); negative when
  /// the planner has no estimate.
  double est_cost = -1.0;
};

/// The planner's proposal for a whole normalized query.
struct QueryPlanChoice {
  /// Parallel to the input disjuncts (a size mismatch discards the whole
  /// proposal).
  std::vector<DisjunctCost> disjuncts;
  /// Evaluation order over the disjuncts (a permutation of [0, n));
  /// empty keeps the input order. First-match-wins evaluation paths try
  /// cheap disjuncts first for early exit.
  std::vector<int> disjunct_order;
  /// Suggested engine route; kAuto means no opinion. Honored only when
  /// the prepared options also say kAuto and the route is applicable.
  EngineKind engine = EngineKind::kAuto;
  /// One-line provenance note, recorded in the plan's cost-plan pass.
  std::string detail;
};

/// Abstract cost oracle. Implementations must be deterministic (the same
/// input always yields the same choice) and thread-safe for concurrent
/// PlanQuery calls — one planner is shared across service requests.
class QueryPlanner {
 public:
  virtual ~QueryPlanner() = default;

  virtual QueryPlanChoice PlanQuery(
      const std::vector<NormConjunct>& disjuncts) const = 0;

  /// Mixed into FingerprintPlanInputs: two planners whose fingerprints
  /// differ may produce different (equally correct) plans, so plan
  /// caches must not serve one's plan for the other. Implementations
  /// may deliberately coarsen this (quantized statistics) to keep cache
  /// hits across small database mutations — verdicts are planner-
  /// independent by construction, only schedules vary.
  virtual uint64_t fingerprint() const = 0;
};

}  // namespace iodb

#endif  // IODB_CORE_PLANNER_H_
