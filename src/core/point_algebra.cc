#include "core/point_algebra.h"

#include "graph/scc.h"

namespace iodb {

const char* PointRelation::Name() const {
  int possible = can_lt + can_eq + can_gt;
  if (possible == 0) return "inconsistent";
  if (possible == 3) return "?";
  if (DefinitelyLt()) return "<";
  if (DefinitelyEq()) return "=";
  if (can_gt && !can_eq && !can_lt) return ">";
  if (!can_gt) return can_eq ? "<=" : "<";  // can_lt&&can_eq => "<="
  if (!can_lt) return ">=";
  return "!=";  // can_lt && can_gt, !can_eq
}

bool OrderConstraintsConsistent(const Database& db) {
  Digraph graph(db.num_order_constants());
  for (const OrderAtom& atom : db.order_atoms()) {
    graph.AddEdge(atom.lhs, atom.rhs, atom.rel);
  }
  SccResult scc = StronglyConnectedComponents(graph);
  for (const OrderAtom& atom : db.order_atoms()) {
    if (atom.rel == OrderRel::kLt &&
        scc.component[atom.lhs] == scc.component[atom.rhs]) {
      return false;
    }
  }
  for (const InequalityAtom& atom : db.inequalities()) {
    if (scc.component[atom.lhs] == scc.component[atom.rhs]) return false;
  }
  return true;
}

namespace {

// Consistency of db's order constraints plus one probe atom.
bool ConsistentWith(const Database& db, int u, int v, OrderRel rel,
                    bool and_converse) {
  Database probe = db;
  probe.AddOrderAtom(u, v, rel);
  if (and_converse) probe.AddOrderAtom(v, u, rel);
  return OrderConstraintsConsistent(probe);
}

}  // namespace

Result<PointRelation> RelationBetween(const Database& db,
                                      const std::string& u,
                                      const std::string& v) {
  std::optional<int> uid = db.FindConstant(u, Sort::kOrder);
  std::optional<int> vid = db.FindConstant(v, Sort::kOrder);
  if (!uid.has_value() || !vid.has_value()) {
    return Status::InvalidArgument("'" + u + "' / '" + v +
                                   "' must be order constants");
  }
  PointRelation relation;
  // Every consistent [<, <=, !=] constraint set has a model (contract the
  // "<="-cycles, topologically sort all-distinct), so "possible" is
  // exactly "consistent with the probe".
  relation.can_lt = ConsistentWith(db, *uid, *vid, OrderRel::kLt, false);
  relation.can_gt = ConsistentWith(db, *vid, *uid, OrderRel::kLt, false);
  // Probing u <= v and v <= u together forces u = v; the SCC merge then
  // detects any "<" or "!=" separating the class.
  relation.can_eq = ConsistentWith(db, *uid, *vid, OrderRel::kLe, true);
  return relation;
}

}  // namespace iodb
