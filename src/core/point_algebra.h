// The point algebra: entailed relations between individual order
// constants.
//
// Section 1 contrasts the paper's query problem with the classical
// tractable problem of deriving point relationships — deciding whether
// u R v follows for R ∈ {<, <=, !=} (van Beek & Cohen; Ullman §14.2,
// both cited in Section 7). This module solves that problem exactly over
// [<, <=, !=]-databases by possibility probes: an atomic relation
// (u < v, u = v, u > v) is possible iff the database extended with it is
// consistent, and consistency of [<, <=, !=]-constraints is a linear-time
// SCC check. Note that plain transitive closure would be incomplete here:
// in u <= v <= w, u <= v' <= w with v != v', the relation u < w is
// entailed even though no path derives it — the probe method catches
// this.

#ifndef IODB_CORE_POINT_ALGEBRA_H_
#define IODB_CORE_POINT_ALGEBRA_H_

#include <string>

#include "core/database.h"
#include "util/status.h"

namespace iodb {

/// The set of atomic order relations between two points that remain
/// possible across the models of a database.
struct PointRelation {
  bool can_lt = false;  // some model has u < v
  bool can_eq = false;  // some model has u = v
  bool can_gt = false;  // some model has u > v

  bool DefinitelyLt() const { return can_lt && !can_eq && !can_gt; }
  bool DefinitelyLe() const { return !can_gt; }
  bool DefinitelyEq() const { return can_eq && !can_lt && !can_gt; }
  bool DefinitelyNeq() const { return !can_eq; }
  /// All three relations possible: the pair is fully unconstrained.
  bool Unconstrained() const { return can_lt && can_eq && can_gt; }

  /// Renders the strongest entailed relation: "<", "<=", "=", ">", ">=",
  /// "!=", "?" (unconstrained), or "inconsistent" (no relation possible,
  /// i.e. the database itself has no model).
  const char* Name() const;

  friend bool operator==(const PointRelation&, const PointRelation&) =
      default;
};

/// Computes the possible relations between order constants `u` and `v` of
/// `db` (by name). Fails with kInvalidArgument if either name is not an
/// order constant. A database without models yields all-false.
Result<PointRelation> RelationBetween(const Database& db,
                                      const std::string& u,
                                      const std::string& v);

/// True if the [<, <=, !=] constraint set of `db` is consistent (ignores
/// proper atoms). Linear time: contract "<="-cycles and check that no "<"
/// or "!=" atom connects two identified constants.
bool OrderConstraintsConsistent(const Database& db);

}  // namespace iodb

#endif  // IODB_CORE_POINT_ALGEBRA_H_
