#include "core/prepare.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/entail_bounded_width.h"
#include "core/entail_bruteforce.h"
#include "core/entail_disjunctive.h"
#include "core/entail_paths.h"
#include "core/inequality.h"
#include "core/minimal_models.h"
#include "core/model_builder.h"
#include "core/model_check.h"
#include "core/planner.h"
#include "core/semantics.h"
#include "util/parallel.h"

namespace iodb {

const char* QueryPassName(QueryPassId id) {
  switch (id) {
    case QueryPassId::kConstantElimination:
      return "constant-elimination";
    case QueryPassId::kInequalityRewrite:
      return "inequality-rewrite";
    case QueryPassId::kNormalize:
      return "normalize";
    case QueryPassId::kSemanticsReduction:
      return "semantics-reduction";
    case QueryPassId::kObjectSplit:
      return "object-split";
    case QueryPassId::kEngineClassification:
      return "engine-classification";
    case QueryPassId::kCostPlan:
      return "cost-plan";
  }
  return "unknown";
}

namespace {

// Union-find over the variables of one conjunct.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

// The static half of the object/order split (Section 4): carves the atom
// components of `conjunct` that touch no order variable into an
// object-only sub-conjunct. Whether that sub-conjunct holds in a concrete
// database is decided at evaluation time.
struct SplitConjunct {
  NormConjunct reduced;
  std::optional<NormConjunct> object_part;
};

SplitConjunct SplitObjectComponents(const NormConjunct& conjunct) {
  const int nv = conjunct.num_order_vars();
  const int no = conjunct.num_object_vars();
  if (no == 0) return {conjunct, std::nullopt};  // nothing to split

  UnionFind uf(nv + no);
  auto node = [&](const Term& term) {
    return term.sort == Sort::kOrder ? term.id : nv + term.id;
  };
  for (const ProperAtom& atom : conjunct.other_atoms) {
    for (size_t i = 1; i < atom.args.size(); ++i) {
      uf.Union(node(atom.args[0]), node(atom.args[i]));
    }
  }
  for (const LabeledEdge& e : conjunct.dag.edges()) uf.Union(e.from, e.to);
  for (const auto& [u, v] : conjunct.inequalities) uf.Union(u, v);

  std::vector<bool> component_has_order(nv + no, false);
  for (int t = 0; t < nv; ++t) component_has_order[uf.Find(t)] = true;

  // Build the object-only sub-conjunct and the reduced conjunct.
  NormConjunct object_part;
  NormConjunct reduced = conjunct;
  reduced.object_var_names.clear();
  reduced.other_atoms.clear();
  std::vector<int> remap(no, -1);
  for (int x = 0; x < no; ++x) {
    if (component_has_order[uf.Find(nv + x)]) {
      remap[x] = static_cast<int>(reduced.object_var_names.size());
      reduced.object_var_names.push_back(conjunct.object_var_names[x]);
    } else {
      object_part.object_var_names.push_back(conjunct.object_var_names[x]);
    }
  }
  std::vector<int> object_remap(no, -1);
  {
    int next = 0;
    for (int x = 0; x < no; ++x) {
      if (remap[x] == -1) object_remap[x] = next++;
    }
  }
  for (const ProperAtom& atom : conjunct.other_atoms) {
    bool order_side = component_has_order[uf.Find(node(atom.args[0]))];
    ProperAtom mapped = atom;
    for (Term& term : mapped.args) {
      if (term.sort == Sort::kObject) {
        term.id = order_side ? remap[term.id] : object_remap[term.id];
        IODB_CHECK_NE(term.id, -1);
      }
    }
    (order_side ? reduced.other_atoms : object_part.other_atoms)
        .push_back(std::move(mapped));
  }

  if (object_part.num_object_vars() > 0 || !object_part.other_atoms.empty()) {
    return {std::move(reduced), std::move(object_part)};
  }
  return {std::move(reduced), std::nullopt};
}

// The zero-point model holding the ground object facts of `db`, against
// which stripped object parts are checked.
FiniteModel GroundObjectFacts(const NormDb& db) {
  FiniteModel facts;
  facts.vocab = db.vocab;
  facts.object_names = db.object_names;
  for (const ProperAtom& atom : db.other_atoms) {
    bool pure_object = true;
    for (const Term& term : atom.args) {
      if (term.sort == Sort::kOrder) {
        pure_object = false;
        break;
      }
    }
    if (pure_object) facts.other_facts.push_back(atom);
  }
  return facts;
}

// Picks the first minimal model (used as a countermodel for the empty
// disjunction).
FiniteModel FirstMinimalModel(const NormDb& db) {
  FiniteModel model;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    model = BuildMinimalModel(db, groups);
    return false;
  };
  ForEachMinimalModel(db, visitor);
  return model;
}

std::string Plural(size_t n, const char* noun) {
  return std::to_string(n) + " " + noun + "(s)";
}

// Turns an exhausted budget into the typed status, salvaging the partial
// work counters of `partial` into the budget's side channel first so the
// caller (service, tools, tests) can report how far the evaluation got.
Status ExhaustedStatus(ExecBudget* budget, const std::string& what,
                       const EntailResult& partial) {
  ExecBudget::Partial p;
  p.states_visited = partial.states_visited;
  p.models_enumerated = partial.models_enumerated;
  p.groups_pushed = partial.groups_pushed;
  p.groups_popped = partial.groups_popped;
  p.reach_probes = partial.check_stats.reach_probes;
  p.assignments_tried = partial.check_stats.assignments_tried;
  budget->MergePartial(p);
  return budget->ToStatus(what);
}

}  // namespace

Result<PreparedQuery> Prepare(const VocabularyPtr& vocab, const Query& query,
                              const EntailOptions& options) {
  IODB_CHECK(vocab != nullptr);
  IODB_CHECK(vocab == query.vocab());
  PreparedQuery plan;
  plan.vocab_ = vocab;
  plan.options_ = options;
  plan.fingerprint_ = FingerprintPlanInputs(query, options);

  // Pass 1: constant elimination (query side; the marker facts are
  // recorded for evaluation-time injection).
  Query working_query = query;
  {
    PassRecord record{QueryPassId::kConstantElimination, false, ""};
    if (query.HasConstants()) {
      Result<ConstantShift> shift = ShiftConstants(query);
      if (!shift.ok()) return shift.status();
      working_query = std::move(shift.value().query);
      plan.markers_ = std::move(shift.value().markers);
      record.applied = true;
      record.detail = Plural(plan.markers_.size(), "constant") +
                      " -> marker atoms";
    } else {
      record.detail = "no constants";
    }
    plan.passes_.push_back(std::move(record));
  }

  // Pass 2: query inequality rewriting (Section 7). Mandatory for the Z/Q
  // reductions; otherwise done when it fits the budget so the monadic
  // engines can apply.
  {
    PassRecord record{QueryPassId::kInequalityRewrite, false, ""};
    bool has_inequalities = false;
    for (const QueryConjunct& conjunct : working_query.disjuncts()) {
      if (!conjunct.inequalities.empty()) has_inequalities = true;
    }
    if (has_inequalities) {
      Result<Query> rewritten =
          RewriteInequalities(working_query, options.max_rewritten_disjuncts);
      if (rewritten.ok()) {
        record.applied = true;
        record.detail = Plural(working_query.disjuncts().size(), "disjunct") +
                        " -> " +
                        Plural(rewritten.value().disjuncts().size(),
                               "disjunct");
        working_query = std::move(rewritten.value());
      } else if (options.semantics != OrderSemantics::kFinite) {
        return rewritten.status();  // transforms below need "!="-free queries
      } else {
        // Keep the inequalities; the brute-force engine handles them.
        record.detail = "budget exceeded; kept for brute force";
      }
    } else {
      record.detail = "no query inequalities";
    }
    plan.passes_.push_back(std::move(record));
  }

  // Pass 3: normalization (rules N1/N2, dag + label views).
  NormQuery effective_query;
  {
    const size_t surface_disjuncts = working_query.disjuncts().size();
    Result<NormQuery> norm_query = NormalizeQuery(working_query);
    if (!norm_query.ok()) return norm_query.status();
    effective_query = std::move(norm_query.value());
    PassRecord record{QueryPassId::kNormalize, true, ""};
    record.detail = "kept " +
                    std::to_string(effective_query.disjuncts.size()) + " of " +
                    Plural(surface_disjuncts, "disjunct");
    if (effective_query.trivially_true) record.detail += "; trivially true";
    plan.passes_.push_back(std::move(record));
  }

  // Pass 4: reduce the semantics to finite models. Tight queries need no
  // transformation (Proposition 2.2).
  {
    PassRecord record{QueryPassId::kSemanticsReduction, false, ""};
    if (options.semantics == OrderSemantics::kFinite) {
      record.detail = "finite semantics";
    } else if (effective_query.IsTight()) {
      record.detail = "tight query (Proposition 2.2)";
    } else if (options.semantics == OrderSemantics::kInteger) {
      plan.needs_sentinels_ = true;
      plan.sentinel_vars_ = effective_query.MaxOrderVars();
      record.applied = true;
      record.detail = "integer: sentinel chains of length " +
                      std::to_string(plan.sentinel_vars_);
    } else {
      effective_query = RationalTransform(effective_query);
      record.applied = true;
      record.detail = "rational: full closure + drop non-proper variables";
    }
    plan.passes_.push_back(std::move(record));
  }

  plan.trivially_true_ = effective_query.trivially_true;

  // Pass 5: object/order split (static half; ground-fact filtering is the
  // evaluation-time half).
  {
    size_t with_object_part = 0;
    for (NormConjunct& conjunct : effective_query.disjuncts) {
      SplitConjunct split = SplitObjectComponents(conjunct);
      DisjunctPlan entry;
      entry.reduced = std::move(split.reduced);
      entry.object_part = std::move(split.object_part);
      // Memoized evaluation artifacts: the monadic engines' transitive
      // reduction and the brute-force matcher's variable-order schedule
      // are computed once here, never per evaluation.
      entry.reduced_transitive = TransitiveReduceConjunct(entry.reduced);
      entry.compiled = CompileConjunct(entry.reduced);
      if (entry.object_part.has_value()) ++with_object_part;
      plan.disjuncts_.push_back(std::move(entry));
    }
    PassRecord record{QueryPassId::kObjectSplit, with_object_part > 0, ""};
    record.detail = with_object_part > 0
                        ? Plural(with_object_part, "disjunct") +
                              " carry an object-only component"
                        : "no object-only components";
    plan.passes_.push_back(std::move(record));
  }

  // Pass 6: engine classification (static; the db-dependent demotions —
  // database inequalities, ground-fact filtering — happen at Evaluate).
  {
    bool all_monadic = true;
    for (DisjunctPlan& entry : plan.disjuncts_) {
      entry.monadic_order_only = entry.reduced.IsMonadicOrderOnly();
      entry.order_vars = entry.reduced.num_order_vars();
      entry.width = entry.reduced.Width();
      entry.engine = entry.monadic_order_only ? EngineKind::kBoundedWidth
                                              : EngineKind::kBruteForce;
      all_monadic = all_monadic && entry.monadic_order_only;
    }
    if (options.engine != EngineKind::kAuto) {
      plan.planned_engine_ = options.engine;
    } else if (!all_monadic) {
      plan.planned_engine_ = EngineKind::kBruteForce;
    } else {
      plan.planned_engine_ = plan.disjuncts_.size() == 1
                                 ? EngineKind::kBoundedWidth
                                 : EngineKind::kDisjunctiveSearch;
    }
    PassRecord record{QueryPassId::kEngineClassification, true, ""};
    record.detail = std::string("planned engine: ") +
                    EngineKindName(plan.planned_engine_);
    plan.passes_.push_back(std::move(record));
  }

  // Pass 7: cost-based planning. Advisory by contract (core/planner.h):
  // anything invalid is dropped here, so the engines below never see a
  // schedule that could change a verdict. Runs BEFORE the static-split
  // build so a disjunct reordering flows into the precomputed queries.
  {
    PassRecord record{QueryPassId::kCostPlan, false, ""};
    const QueryPlanner* planner = options.planner.get();
    if (planner == nullptr) {
      record.detail = "no planner (costing off)";
    } else if (plan.disjuncts_.empty()) {
      record.detail = "no disjuncts to cost";
    } else {
      std::vector<NormConjunct> reduced;
      reduced.reserve(plan.disjuncts_.size());
      for (const DisjunctPlan& entry : plan.disjuncts_) {
        reduced.push_back(entry.reduced);
      }
      QueryPlanChoice choice = planner->PlanQuery(reduced);

      // Per-disjunct schedules: accept only valid linear extensions
      // that differ from the default topological order.
      if (choice.disjuncts.size() == plan.disjuncts_.size()) {
        for (size_t i = 0; i < plan.disjuncts_.size(); ++i) {
          DisjunctPlan& entry = plan.disjuncts_[i];
          const DisjunctCost& cost = choice.disjuncts[i];
          entry.est_cost = cost.est_cost;
          const std::vector<int>& seq = cost.order_var_sequence;
          const int nv = entry.reduced.num_order_vars();
          if (seq.empty()) continue;
          if (static_cast<int>(seq.size()) != nv) continue;
          std::vector<int> pos(nv, -1);
          bool valid = true;
          for (int p = 0; p < nv && valid; ++p) {
            const int t = seq[p];
            valid = t >= 0 && t < nv && pos[t] == -1;
            if (valid) pos[t] = p;
          }
          for (const LabeledEdge& e : entry.reduced.dag.edges()) {
            if (!valid) break;
            valid = pos[e.from] < pos[e.to];
          }
          if (!valid) continue;
          std::vector<int> default_seq;
          default_seq.reserve(nv);
          for (const auto& [sort, id] : entry.compiled.var_order) {
            if (sort == Sort::kOrder) default_seq.push_back(id);
          }
          if (seq == default_seq) continue;
          entry.compiled = CompileConjunct(entry.reduced, &seq);
          entry.costed_schedule = true;
          ++plan.costed_schedules_;
        }
      }

      // Disjunct evaluation order: first-match-wins paths try cheap
      // disjuncts first. Accept only a genuine permutation.
      const std::vector<int>& order = choice.disjunct_order;
      if (order.size() == plan.disjuncts_.size()) {
        std::vector<bool> seen(order.size(), false);
        bool valid = true;
        bool identity = true;
        for (size_t p = 0; p < order.size() && valid; ++p) {
          const int d = order[p];
          valid = d >= 0 && d < static_cast<int>(order.size()) && !seen[d];
          if (valid) seen[d] = true;
          identity = identity && d == static_cast<int>(p);
        }
        if (valid && !identity) {
          std::vector<DisjunctPlan> permuted;
          permuted.reserve(plan.disjuncts_.size());
          for (int d : order) permuted.push_back(std::move(plan.disjuncts_[d]));
          plan.disjuncts_ = std::move(permuted);
          plan.costed_reorder_ = true;
        }
      }

      // Engine route: only a suggestion, only when the caller said
      // kAuto; applicability is re-checked per database at Evaluate.
      if (choice.engine != EngineKind::kAuto &&
          options.engine == EngineKind::kAuto) {
        plan.costed_engine_ = choice.engine;
      }

      record.applied = plan.costed_schedules_ > 0 || plan.costed_reorder_ ||
                       plan.costed_engine_.has_value();
      record.detail = "schedules " + std::to_string(plan.costed_schedules_) +
                      "/" + std::to_string(plan.disjuncts_.size()) +
                      ", reorder=" + (plan.costed_reorder_ ? "yes" : "no") +
                      ", engine=" +
                      (plan.costed_engine_.has_value()
                           ? EngineKindName(*plan.costed_engine_)
                           : "no-opinion");
      if (!choice.detail.empty()) record.detail += "; " + choice.detail;
    }
    plan.passes_.push_back(std::move(record));
  }

  // With no object parts, ground-fact filtering never drops a disjunct,
  // so the assembled query is database-independent: build it once here
  // and let every evaluation borrow it.
  bool any_object_part = false;
  for (const DisjunctPlan& entry : plan.disjuncts_) {
    any_object_part = any_object_part || entry.object_part.has_value();
  }
  if (!any_object_part) {
    NormQuery split_query;
    split_query.vocab = plan.vocab_;
    split_query.trivially_true = plan.trivially_true_;
    NormQuery reduced_query;
    reduced_query.vocab = plan.vocab_;
    for (const DisjunctPlan& entry : plan.disjuncts_) {
      if (entry.reduced.IsEmpty()) split_query.trivially_true = true;
      split_query.disjuncts.push_back(entry.reduced);
      reduced_query.disjuncts.push_back(entry.reduced_transitive);
      plan.static_plan_index_.push_back(
          static_cast<int>(plan.static_plan_index_.size()));
    }
    reduced_query.trivially_true = split_query.trivially_true;
    plan.static_split_ = std::move(split_query);
    plan.static_reduced_split_ = std::move(reduced_query);
  }

  return plan;
}

PreparedQuery MustPrepare(const VocabularyPtr& vocab, const Query& query,
                          const EntailOptions& options) {
  Result<PreparedQuery> plan = Prepare(vocab, query, options);
  IODB_CHECK(plan.ok());
  return std::move(plan.value());
}

uint64_t FingerprintPlanInputs(const Query& query,
                               const EntailOptions& options) {
  // 64-bit mixing throughout (not size_t HashCombine): the query
  // fingerprint's ~2^-64 collision bound must survive on 32-bit targets.
  uint64_t hash = FingerprintQuery(query);
  auto mix = [&hash](uint64_t value) {
    hash ^= value + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
  };
  mix(static_cast<uint64_t>(options.semantics));
  mix(static_cast<uint64_t>(options.engine));
  mix(static_cast<uint64_t>(options.want_countermodel));
  mix(static_cast<uint64_t>(options.max_rewritten_disjuncts));
  // Costing changes schedules, never verdicts — but a cached plan built
  // with one planner must not be served for another (or for costing
  // off), so the planner's own fingerprint is part of the key.
  mix(options.planner != nullptr ? options.planner->fingerprint() : 0);
  return hash;
}

PreparedQuery::PreparedQuery(const PreparedQuery& other)
    : vocab_(other.vocab_),
      options_(other.options_),
      fingerprint_(other.fingerprint_),
      passes_(other.passes_),
      disjuncts_(other.disjuncts_),
      markers_(other.markers_),
      needs_sentinels_(other.needs_sentinels_),
      sentinel_vars_(other.sentinel_vars_),
      trivially_true_(other.trivially_true_),
      planned_engine_(other.planned_engine_),
      costed_engine_(other.costed_engine_),
      costed_schedules_(other.costed_schedules_),
      costed_reorder_(other.costed_reorder_),
      static_split_(other.static_split_),
      static_reduced_split_(other.static_reduced_split_),
      static_plan_index_(other.static_plan_index_) {
  // Copies start with a cold transform cache (and their own mutex).
}

PreparedQuery& PreparedQuery::operator=(const PreparedQuery& other) {
  if (this == &other) return *this;
  PreparedQuery copy(other);
  *this = std::move(copy);
  return *this;
}

Result<PreparedQuery::NormDbRef> PreparedQuery::NormDbFor(
    const Database& db) const {
  // Predicate ids in the compiled disjuncts are only meaningful against
  // the vocabulary the query was prepared with; a mismatch would produce
  // silently wrong verdicts.
  if (db.vocab() != vocab_) {
    return Status::InvalidArgument(
        "database and prepared query use different vocabularies");
  }
  if (!NeedsDbTransform()) {
    Result<const NormDb*> view = db.NormView();
    if (!view.ok()) return view.status();
    return NormDbRef{view.value(), nullptr};
  }

  {
    std::scoped_lock lock(*cache_mu_);
    auto it = transform_cache_.find(db.uid());
    if (it != transform_cache_.end() &&
        it->second->revision == db.revision()) {
      const std::shared_ptr<const TransformCache>& entry = it->second;
      if (!entry->ndb.ok()) return entry->ndb.status();
      return NormDbRef{&entry->ndb.value(), entry};
    }
  }

  // Transform and normalize outside the lock (the expensive part); a
  // racing worker on the same (uid, revision) just computes it twice and
  // last-write-wins — both entries are equivalent.
  Database working = db;
  for (const ConstantShift::Marker& marker : markers_) {
    int cid = working.GetOrAddConstant(marker.constant, marker.sort);
    working.AddProperAtom(marker.pred, {{marker.sort, cid}});
  }
  if (needs_sentinels_) {
    working = AddIntegerSentinels(working, sentinel_vars_);
  }
  auto entry = std::make_shared<const TransformCache>(
      TransformCache{db.revision(), Normalize(working)});
  // Pre-build the enumeration context before the entry becomes visible:
  // once cached, concurrent readers share the NormDb, and its context
  // slot fills lazily under const — safe only if it is already filled.
  if (entry->ndb.ok()) (void)SharedEnumerationContext(entry->ndb.value());
  {
    std::scoped_lock lock(*cache_mu_);
    if (transform_cache_.find(db.uid()) == transform_cache_.end() &&
        transform_cache_.size() >= kMaxTransformCacheEntries) {
      transform_cache_.clear();
    }
    transform_cache_[db.uid()] = entry;
  }
  if (!entry->ndb.ok()) return entry->ndb.status();
  return NormDbRef{&entry->ndb.value(), entry};
}

std::optional<PreparedQuery::AssembledQuery> PreparedQuery::AssembleSplitQuery(
    const NormDb& ndb) const {
  if (static_split_.has_value()) return std::nullopt;  // precomputed
  AssembledQuery assembled;
  assembled.query.vocab = vocab_;
  assembled.query.trivially_true = trivially_true_;
  std::optional<FiniteModel> facts;  // built lazily, shared by disjuncts
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    const DisjunctPlan& entry = disjuncts_[i];
    if (entry.object_part.has_value()) {
      if (!facts.has_value()) facts = GroundObjectFacts(ndb);
      // Object component false in `ndb`: the disjunct is false in every
      // model of the database.
      if (!Satisfies(*facts, *entry.object_part)) continue;
    }
    if (entry.reduced.IsEmpty()) assembled.query.trivially_true = true;
    assembled.query.disjuncts.push_back(entry.reduced);
    assembled.plan_index.push_back(static_cast<int>(i));
  }
  return assembled;
}

Result<EntailResult> PreparedQuery::Evaluate(const Database& db,
                                             ExecBudget* budget) const {
  return EvaluateWith(db, 1, budget);
}

Result<EntailResult> PreparedQuery::EvaluateWith(const Database& db,
                                                 int num_threads,
                                                 ExecBudget* budget) const {
  // Admission check: a request whose deadline already passed (or whose
  // batch was cancelled) fails fast instead of starting the search.
  if (budget != nullptr && !budget->Poll()) {
    return ExhaustedStatus(budget, "evaluation admission", EntailResult{});
  }
  Result<NormDbRef> view = NormDbFor(db);
  if (!view.ok()) return view.status();
  const NormDb& ndb = *view.value().ndb;
  const std::optional<AssembledQuery> assembled = AssembleSplitQuery(ndb);
  const NormQuery& split_query =
      assembled.has_value() ? assembled->query : *static_split_;
  const std::vector<int>& plan_index =
      assembled.has_value() ? assembled->plan_index : static_plan_index_;

  EntailResult result;
  if (split_query.trivially_true) {
    result.entailed = true;
    result.engine_used = EngineKind::kAuto;
    return result;
  }
  if (split_query.disjuncts.empty()) {
    // The query reduced to FALSE: any minimal model is a countermodel.
    result.entailed = false;
    result.engine_used = EngineKind::kAuto;
    if (options_.want_countermodel) {
      result.countermodel = FirstMinimalModel(ndb);
    }
    return result;
  }

  // Dispatch. The conjunctive engines need an inequality-free database;
  // the Theorem 5.3 engine handles database inequalities via the
  // Section 7 sorting modification.
  const bool monadic_ok = split_query.IsMonadicOrderOnly();
  const bool db_neq_free = ndb.inequalities.empty();
  const bool conjunctive = split_query.IsConjunctive();

  EngineKind engine = options_.engine;
  if (engine == EngineKind::kAuto) {
    // A costed route is taken only when applicable to THIS database's
    // instance; otherwise the static auto rule decides. Suggestions are
    // advisory, so inapplicability falls back instead of erroring.
    std::optional<EngineKind> costed = costed_engine_;
    if (costed.has_value()) {
      const bool applicable =
          *costed == EngineKind::kBruteForce ||
          (*costed == EngineKind::kDisjunctiveSearch && monadic_ok) ||
          ((*costed == EngineKind::kBoundedWidth ||
            *costed == EngineKind::kPathDecomposition) &&
           monadic_ok && conjunctive && db_neq_free);
      if (!applicable) costed.reset();
    }
    if (costed.has_value()) {
      engine = *costed;
    } else {
      engine = monadic_ok ? ((conjunctive && db_neq_free)
                                 ? EngineKind::kBoundedWidth
                                 : EngineKind::kDisjunctiveSearch)
                          : EngineKind::kBruteForce;
    }
  } else if (engine == EngineKind::kPathDecomposition ||
             engine == EngineKind::kBoundedWidth) {
    if (!monadic_ok || !conjunctive || !db_neq_free) {
      return Status::Unsupported(
          "conjunctive monadic engine requested for a non-conjunctive, "
          "non-monadic, or inequality-carrying instance");
    }
  } else if (engine == EngineKind::kDisjunctiveSearch) {
    if (!monadic_ok) {
      return Status::Unsupported(
          "disjunctive monadic engine requested for a non-monadic instance");
    }
  }
  result.engine_used = engine;

  switch (engine) {
    case EngineKind::kBruteForce: {
      BruteForceOptions bf_options;
      bf_options.num_threads = num_threads;
      bf_options.budget = budget;
      // Hand the engine the plan-memoized matcher schedules, parallel to
      // the surviving disjuncts.
      std::vector<const CompiledConjunct*> compiled;
      compiled.reserve(plan_index.size());
      for (int idx : plan_index) {
        compiled.push_back(&disjuncts_[idx].compiled);
      }
      bf_options.compiled = &compiled;
      BruteForceOutcome outcome =
          EntailBruteForce(ndb, split_query, bf_options);
      result.entailed = outcome.entailed;
      result.models_enumerated = outcome.models_enumerated;
      result.groups_pushed = outcome.groups_pushed;
      result.groups_popped = outcome.groups_popped;
      result.check_stats = outcome.check_stats;
      if (outcome.exhausted) {
        return ExhaustedStatus(budget, "engine brute-force", result);
      }
      if (options_.want_countermodel) {
        result.countermodel = std::move(outcome.countermodel);
      }
      break;
    }
    case EngineKind::kPathDecomposition: {
      PathEngineOutcome outcome =
          EntailByPaths(ndb, split_query.disjuncts[0], budget);
      result.entailed = outcome.entailed;
      result.states_visited = outcome.paths_checked;
      if (outcome.exhausted) {
        return ExhaustedStatus(budget, "engine path-decomposition", result);
      }
      if (!result.entailed && options_.want_countermodel) {
        // The path engine proves non-entailment without a witness; the
        // bounded-width engine reconstructs one (also governed: the
        // witness search is part of the same request).
        BoundedWidthOutcome witness = EntailBoundedWidth(
            ndb, disjuncts_[plan_index[0]].reduced_transitive, true,
            /*already_reduced=*/true, /*use_incremental=*/true, budget);
        if (witness.exhausted) {
          return ExhaustedStatus(budget, "engine path-decomposition", result);
        }
        IODB_CHECK(!witness.entailed);
        result.countermodel = std::move(witness.countermodel);
      }
      break;
    }
    case EngineKind::kBoundedWidth: {
      BoundedWidthOutcome outcome = EntailBoundedWidth(
          ndb, disjuncts_[plan_index[0]].reduced_transitive,
          options_.want_countermodel, /*already_reduced=*/true,
          /*use_incremental=*/true, budget);
      result.entailed = outcome.entailed;
      result.states_visited = outcome.states_visited;
      result.check_stats = outcome.check_stats;
      if (outcome.exhausted) {
        return ExhaustedStatus(budget, "engine bounded-width", result);
      }
      if (options_.want_countermodel) {
        result.countermodel = std::move(outcome.countermodel);
      }
      break;
    }
    case EngineKind::kDisjunctiveSearch: {
      DisjunctiveOptions engine_options;
      engine_options.already_reduced = true;
      engine_options.budget = budget;
      DisjunctiveOutcome outcome;
      if (static_reduced_split_.has_value()) {
        outcome = EntailDisjunctive(ndb, *static_reduced_split_,
                                    engine_options);
      } else {
        NormQuery reduced_query;
        reduced_query.vocab = vocab_;
        reduced_query.trivially_true = split_query.trivially_true;
        for (int idx : plan_index) {
          reduced_query.disjuncts.push_back(
              disjuncts_[idx].reduced_transitive);
        }
        outcome = EntailDisjunctive(ndb, reduced_query, engine_options);
      }
      result.entailed = outcome.entailed;
      result.states_visited = outcome.states_visited;
      result.check_stats = outcome.check_stats;
      // Decision mode stops at the first countermodel, so an exhausted
      // outcome always means "no verdict" here.
      if (outcome.exhausted) {
        return ExhaustedStatus(budget, "engine disjunctive-search", result);
      }
      if (options_.want_countermodel) {
        result.countermodel = std::move(outcome.countermodel);
      }
      break;
    }
    case EngineKind::kAuto:
      IODB_CHECK(false);  // resolved above
  }
  return result;
}

std::vector<Result<EntailResult>> PreparedQuery::EvaluateBatch(
    std::span<const Database* const> dbs, ExecBudget* budget) const {
  std::vector<Result<EntailResult>> results;
  results.reserve(dbs.size());
  for (const Database* db : dbs) {
    IODB_CHECK(db != nullptr);
    results.push_back(Evaluate(*db, budget));
  }
  return results;
}

std::vector<Result<EntailResult>> PreparedQuery::ParallelEvaluateBatch(
    std::span<const Database* const> dbs, int num_workers,
    ExecBudget* budget) const {
  for (const Database* db : dbs) IODB_CHECK(db != nullptr);
  if (num_workers <= 1) return EvaluateBatch(dbs, budget);
  if (dbs.size() == 1) {
    // One hard query: shard its enumeration subtrees instead.
    std::vector<Result<EntailResult>> results;
    results.push_back(EvaluateWith(*dbs[0], num_workers, budget));
    return results;
  }

  // Duplicate pointers must not be evaluated concurrently (a Database's
  // NormView fills lazily); evaluate the first occurrence, copy the rest.
  std::unordered_map<const Database*, size_t> first_of;
  std::vector<size_t> owners(dbs.size());
  std::vector<size_t> unique;
  for (size_t i = 0; i < dbs.size(); ++i) {
    auto [it, inserted] = first_of.try_emplace(dbs[i], i);
    owners[i] = it->second;
    if (inserted) unique.push_back(i);
  }

  std::vector<Result<EntailResult>> results(
      dbs.size(), Result<EntailResult>(EntailResult{}));
  ParallelFor(static_cast<int>(unique.size()), num_workers, [&](int k) {
    const size_t i = unique[k];
    results[i] = Evaluate(*dbs[i], budget);
  });
  for (size_t i = 0; i < dbs.size(); ++i) {
    if (owners[i] != i) results[i] = results[owners[i]];
  }
  return results;
}

Result<long long> PreparedQuery::EnumerateCountermodels(
    const Database& db,
    const std::function<bool(const FiniteModel&)>& on_countermodel,
    ExecBudget* budget) const {
  IODB_CHECK(on_countermodel != nullptr);
  if (budget != nullptr && !budget->Poll()) {
    return ExhaustedStatus(budget, "enumeration admission", EntailResult{});
  }
  Result<NormDbRef> view = NormDbFor(db);
  if (!view.ok()) return view.status();
  const NormDb& ndb = *view.value().ndb;
  const std::optional<AssembledQuery> assembled = AssembleSplitQuery(ndb);
  const NormQuery& split_query =
      assembled.has_value() ? assembled->query : *static_split_;
  const std::vector<int>& plan_index =
      assembled.has_value() ? assembled->plan_index : static_plan_index_;

  if (split_query.trivially_true) return 0;  // no model falsifies TRUE

  long long reported = 0;
  if (split_query.IsMonadicOrderOnly() && !split_query.disjuncts.empty()) {
    DisjunctiveOptions engine_options;
    engine_options.already_reduced = true;
    engine_options.budget = budget;
    engine_options.on_countermodel = [&](const FiniteModel& model) {
      ++reported;
      return on_countermodel(model);
    };
    DisjunctiveOutcome outcome;
    if (static_reduced_split_.has_value()) {
      outcome = EntailDisjunctive(ndb, *static_reduced_split_,
                                  engine_options);
    } else {
      NormQuery reduced_query;
      reduced_query.vocab = vocab_;
      for (int idx : plan_index) {
        reduced_query.disjuncts.push_back(
            disjuncts_[idx].reduced_transitive);
      }
      outcome = EntailDisjunctive(ndb, reduced_query, engine_options);
    }
    if (outcome.exhausted) {
      EntailResult partial;
      partial.states_visited = outcome.states_visited;
      partial.check_stats = outcome.check_stats;
      return ExhaustedStatus(budget, "countermodel enumeration", partial);
    }
    return reported;
  }

  // Generic fallback (n-ary predicates or the FALSE query): enumerate the
  // minimal models through the incremental builder and filter with the
  // plan-memoized matchers; only actual countermodels are materialized.
  std::vector<const CompiledConjunct*> compiled;
  compiled.reserve(plan_index.size());
  for (int idx : plan_index) compiled.push_back(&disjuncts_[idx].compiled);
  ModelBuilder builder(ndb);
  QueryMatcher matcher(split_query,
                       split_query.disjuncts.empty() ? nullptr : &compiled);
  bool exhausted = false;
  ModelVisitor visitor;
  visitor.on_group = [&](int depth, const std::vector<int>& group) {
    if (budget != nullptr && !budget->Charge()) {
      exhausted = true;
      return false;
    }
    builder.PushGroup(depth, group);
    return true;
  };
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    if (budget != nullptr && !budget->Charge()) {
      exhausted = true;
      return false;
    }
    builder.PopToDepth(static_cast<int>(groups.size()));
    if (matcher.Matches(builder.view(), &builder.index())) return true;
    ++reported;
    return on_countermodel(builder.Snapshot());
  };
  ForEachMinimalModel(ndb, visitor);
  if (exhausted) {
    EntailResult partial;
    partial.groups_pushed = builder.groups_pushed();
    partial.groups_popped = builder.groups_popped();
    return ExhaustedStatus(budget, "countermodel enumeration", partial);
  }
  return reported;
}

std::string PreparedQuery::Explain() const {
  auto pad = [](const char* text, size_t width) {
    std::string out = text;
    while (out.size() < width) out += ' ';
    return out;
  };
  std::string out = "prepared query: " + Plural(disjuncts_.size(), "disjunct") +
                    ", semantics=" + OrderSemanticsName(options_.semantics) +
                    ", engine=" + EngineKindName(options_.engine) + "\n";
  if (trivially_true_) out += "  (trivially true)\n";
  out += "passes:\n";
  for (const PassRecord& record : passes_) {
    out += "  " + pad(QueryPassName(record.id), 22) +
           (record.applied ? "applied  " : "no-op    ") + record.detail + "\n";
  }
  if (!disjuncts_.empty()) out += "disjuncts:\n";
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    const DisjunctPlan& entry = disjuncts_[i];
    out += "  #" + std::to_string(i) +
           " monadic=" + (entry.monadic_order_only ? "yes" : "no") +
           " order-vars=" + std::to_string(entry.order_vars) +
           " width=" + std::to_string(entry.width) +
           (entry.object_part.has_value() ? " object-part=yes" : "") +
           " engine=" + EngineKindName(entry.engine);
    if (entry.est_cost >= 0) {
      out += " est-cost=" + std::to_string(static_cast<long long>(
                                entry.est_cost));
    }
    if (entry.costed_schedule) out += " schedule=costed";
    out += "\n";
  }
  out += std::string("dispatch: ") + EngineKindName(planned_engine_);
  if (costed_engine_.has_value()) {
    out += std::string(" -> ") + EngineKindName(*costed_engine_) +
           " (costed route, where applicable)";
  }
  out += " (database-dependent filtering may adjust)\n";
  out += "plan-choice: " + PlanChoiceSummary() + "\n";
  return out;
}

std::string PreparedQuery::PlanChoiceSummary() const {
  if (costed_schedules_ == 0 && !costed_reorder_ &&
      !costed_engine_.has_value()) {
    return "default";
  }
  std::string out = "costed(sched=" + std::to_string(costed_schedules_) +
                    "/" + std::to_string(disjuncts_.size()) +
                    ",reorder=" + (costed_reorder_ ? "yes" : "no");
  if (costed_engine_.has_value()) {
    out += std::string(",engine=") + EngineKindName(*costed_engine_);
  }
  return out + ")";
}

std::string PreparedQuery::Explain(const EntailResult& result) const {
  return Explain() + ExplainEvaluation(result);
}

std::string PreparedQuery::ExplainEvaluation(const EntailResult& result) const {
  std::string out = "evaluation:\n";
  out += std::string("  engine                ") +
         EngineKindName(result.engine_used) + "\n";
  out += std::string("  verdict               ") +
         (result.entailed ? "entailed" : "not entailed") + "\n";
  auto counter = [&out](const char* name, long long value) {
    std::string line = "  ";
    line += name;
    while (line.size() < 24) line += ' ';
    out += line + std::to_string(value) + "\n";
  };
  counter("states-visited", result.states_visited);
  counter("models-enumerated", result.models_enumerated);
  counter("groups-pushed", result.groups_pushed);
  counter("groups-popped", result.groups_popped);
  counter("assignments-tried", result.check_stats.assignments_tried);
  counter("index-probes", result.check_stats.index_probes);
  counter("facts-scanned", result.check_stats.facts_scanned);
  counter("reach-probes", result.check_stats.reach_probes);
  counter("reach-fast-hits", result.check_stats.reach_fast_hits);
  counter("reach-fallbacks", result.check_stats.reach_fallbacks);
  counter("index-rebuilds", result.check_stats.index_rebuilds);
  // Estimated-vs-actual: the planner's work estimate next to the
  // counters above (assignments-tried is the matcher-side actual).
  double est_total = 0;
  bool any_est = false;
  for (const DisjunctPlan& entry : disjuncts_) {
    if (entry.est_cost >= 0) {
      est_total += entry.est_cost;
      any_est = true;
    }
  }
  if (any_est) {
    counter("est-assignments", static_cast<long long>(est_total));
  }
  return out;
}

}  // namespace iodb
