// Pass-based query compilation (the compile-once / evaluate-many shape
// of production query processors, after rdf3x).
//
// `Prepare()` runs the database-independent passes of the entailment
// cascade exactly once over a query:
//
//   constant-elimination   constants -> marker-guarded fresh variables
//                          (Section 2); the marker *facts* are recorded
//                          for evaluation-time injection
//   inequality-rewrite     query "!=" atoms -> disjunction blowup
//                          (Section 7), when it fits the budget
//   normalize              rules N1/N2, dag + label views per disjunct
//   semantics-reduction    Z sentinels / Q closure (Propositions 2.2/2.3,
//                          Corollary 2.6) for nontight queries
//   object-split           per disjunct, atom components touching no
//                          order variable are carved off (Section 4);
//                          checking them against ground facts is the
//                          evaluation-time half
//   engine-classification  per-disjunct static engine choice
//   cost-plan              when the options carry a QueryPlanner
//                          (core/planner.h), rank alternative conjunct
//                          schedules, reorder disjuncts for early exit,
//                          and suggest an engine route — all advisory,
//                          never verdict-changing
//
// The resulting `PreparedQuery` is an inspectable plan: `Evaluate(db)`
// finishes the cheap database-dependent work (memoized normalization via
// Database::NormView, ground-fact filtering, dispatch), `EvaluateBatch`
// amortizes one plan across many databases, and `Explain()` renders the
// plan as text. `Entails()` in core/engine.h is a thin wrapper over
// Prepare + Evaluate, so both paths return identical verdicts and engine
// choices by construction.

#ifndef IODB_CORE_PREPARE_H_
#define IODB_CORE_PREPARE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/engine.h"
#include "core/model.h"
#include "core/model_matcher.h"
#include "core/query.h"
#include "util/budget.h"
#include "util/status.h"

namespace iodb {

/// The compilation passes run by Prepare(), in execution order.
enum class QueryPassId {
  kConstantElimination,
  kInequalityRewrite,
  kNormalize,
  kSemanticsReduction,
  kObjectSplit,
  kEngineClassification,
  kCostPlan,
};

/// Returns the pass name, e.g. "constant-elimination".
const char* QueryPassName(QueryPassId id);

/// Provenance: what one pass did to the plan.
struct PassRecord {
  QueryPassId id;
  /// True if the pass transformed the plan; false for a recorded no-op.
  bool applied = false;
  /// One-line human-readable note, e.g. "2 constant(s) -> marker atoms".
  std::string detail;
};

/// Per-disjunct plan entry: the compiled disjunct plus its static
/// classification.
struct DisjunctPlan {
  /// The disjunct after normalization, semantics reduction and the static
  /// object/order split (object components disconnected from every order
  /// variable are stripped).
  NormConjunct reduced;
  /// `reduced` after labelled transitive reduction, memoized here so the
  /// monadic automata engines never pay the reduction per evaluation.
  NormConjunct reduced_transitive;
  /// The memoized model-check schedule of `reduced` (topological variable
  /// order, constraint/atom schedules) for the brute-force matcher: the
  /// topological sort runs once at prepare time, not per model.
  CompiledConjunct compiled;
  /// The stripped object-only sub-conjunct, if nonempty. At evaluation
  /// time a database whose ground object facts falsify it kills the whole
  /// disjunct.
  std::optional<NormConjunct> object_part;
  /// True if `reduced` is in the monadic-order fragment of Sections 4-6.
  bool monadic_order_only = false;
  int order_vars = 0;
  int width = 0;
  /// The engine this disjunct runs on when it is the only survivor
  /// against an inequality-free database (the conjunctive case).
  EngineKind engine = EngineKind::kBruteForce;
  /// Cost-plan pass outputs: the planner's work estimate for this
  /// disjunct (negative = no estimate) and whether `compiled` uses a
  /// cost-chosen variable order instead of the default topological one.
  double est_cost = -1.0;
  bool costed_schedule = false;
};

/// A compiled entailment query: the output of Prepare(). Cheap to
/// evaluate repeatedly; copyable (copies start with cold caches);
/// independent of any database (databases evaluated against must share
/// the plan's vocabulary — a mismatch is an InvalidArgument error).
///
/// Thread-safety: the plan's own caches are internally synchronized, so
/// concurrent Evaluate calls on ONE plan against DISTINCT Database
/// objects are safe (ParallelEvaluateBatch relies on this). A single
/// Database object still must not be evaluated concurrently — its
/// memoized NormView fills lazily under const.
class PreparedQuery {
 public:
  PreparedQuery(const PreparedQuery& other);
  PreparedQuery& operator=(const PreparedQuery& other);
  PreparedQuery(PreparedQuery&& other) noexcept = default;
  PreparedQuery& operator=(PreparedQuery&& other) noexcept = default;
  /// Decides db |= query. Equivalent to Entails(db, query, options) for
  /// the prepared (query, options), but all query compilation has already
  /// happened, and db-side normalization is memoized (Database::NormView
  /// for plain plans; a per-plan cache keyed by (db.uid, db.revision) for
  /// plans that must inject marker facts or sentinels).
  ///
  /// `budget`, when non-null, governs the evaluation: the engines charge
  /// it per unit of search work, and if it trips before a definite
  /// verdict the call returns kDeadlineExceeded / kCancelled with the
  /// partial work counters merged into the budget (ExecBudget::partial).
  /// Budgets are evaluation-time state, deliberately NOT part of the plan
  /// or its fingerprint, so governed and ungoverned requests share cached
  /// plans. A governed run that does not exhaust its budget returns
  /// results bit-identical to an ungoverned run.
  Result<EntailResult> Evaluate(const Database& db,
                                ExecBudget* budget = nullptr) const;

  /// Evaluates the plan against every database of the batch. One plan,
  /// many stores. A shared `budget` governs the whole batch: once it
  /// trips, every remaining member fails fast with the typed status.
  std::vector<Result<EntailResult>> EvaluateBatch(
      std::span<const Database* const> dbs,
      ExecBudget* budget = nullptr) const;

  /// As EvaluateBatch, sharded across a small worker pool. Results are
  /// written to their input slots (deterministic merge: result[i] is
  /// always db[i]'s verdict, independent of scheduling); duplicate
  /// Database pointers are evaluated once and their result copied. A
  /// single-database batch with a brute-force plan shards the enumeration
  /// subtrees of that one query instead. `num_workers <= 1` degrades to
  /// EvaluateBatch; callers pick DefaultWorkerCount() (util/parallel.h)
  /// for "whatever the machine has". The shared `budget` (thread-safe)
  /// governs every in-flight shard at once — the seam batch-level
  /// deadlines and cancellation propagate through.
  std::vector<Result<EntailResult>> ParallelEvaluateBatch(
      std::span<const Database* const> dbs, int num_workers,
      ExecBudget* budget = nullptr) const;

  /// Enumerates the countermodels of the prepared query in `db`; see
  /// EnumerateCountermodels in core/engine.h for the contract. On budget
  /// exhaustion the enumeration is incomplete and the count is replaced
  /// by the typed status (countermodels already reported were genuine).
  Result<long long> EnumerateCountermodels(
      const Database& db,
      const std::function<bool(const FiniteModel&)>& on_countermodel,
      ExecBudget* budget = nullptr) const;

  /// Renders the plan: passes with provenance, per-disjunct
  /// classification, and the planned engine.
  std::string Explain() const;

  /// As Explain(), followed by ExplainEvaluation(result).
  std::string Explain(const EntailResult& result) const;

  /// Renders just the "evaluation:" section: the work counters of
  /// `result` (models enumerated, incremental push/pop operations, index
  /// probes, assignments tried), so speedups are observable rather than
  /// asserted.
  std::string ExplainEvaluation(const EntailResult& result) const;

  /// Pass provenance, in execution order (one record per pass).
  const std::vector<PassRecord>& passes() const { return passes_; }

  /// The compiled disjuncts with their static classification.
  const std::vector<DisjunctPlan>& disjuncts() const { return disjuncts_; }

  /// The options the query was prepared with.
  const EntailOptions& options() const { return options_; }

  /// The plan fingerprint: FingerprintPlanInputs(query, options) of the
  /// inputs this plan was compiled from, recorded at Prepare() time. Plan
  /// caches key on (Vocabulary::uid(), fingerprint()).
  uint64_t fingerprint() const { return fingerprint_; }

  /// True if compilation already proved the query TRUE in every model.
  bool trivially_true() const { return trivially_true_; }

  /// The statically planned engine: the dispatch choice assuming every
  /// disjunct survives ground-fact filtering against an inequality-free
  /// database. Evaluate() reports the actual choice per database.
  EngineKind planned_engine() const { return planned_engine_; }

  /// Compact descriptor of the cost-plan pass outcome, for per-request
  /// plan-choice tags (iodb_replay, the serving protocol): "default"
  /// when no planner ran or nothing changed, else e.g.
  /// "costed(sched=1/2,reorder=yes,engine=brute-force)".
  std::string PlanChoiceSummary() const;

  /// Marker facts injected into each evaluated database (the db-side half
  /// of constant elimination); empty for constant-free queries.
  const std::vector<ConstantShift::Marker>& markers() const {
    return markers_;
  }

 private:
  PreparedQuery() = default;
  friend Result<PreparedQuery> Prepare(const VocabularyPtr& vocab,
                                       const Query& query,
                                       const EntailOptions& options);

  /// True if Evaluate must transform the database (marker facts or
  /// integer sentinels) instead of using Database::NormView directly.
  bool NeedsDbTransform() const {
    return !markers_.empty() || needs_sentinels_;
  }

  /// A borrowed normalized view. `owner` (when set) keeps the plan's
  /// cache entry alive, so a concurrent eviction cannot free the view
  /// while a worker still evaluates against it.
  struct NormDbRef {
    const NormDb* ndb = nullptr;
    std::shared_ptr<const void> owner;
  };

  /// The normalized database the engines run on: the memoized NormView
  /// for plain plans, a per-plan cached transformed copy otherwise.
  Result<NormDbRef> NormDbFor(const Database& db) const;

  /// The evaluation-time assembly: the surviving disjuncts plus their
  /// indices into disjuncts_ (for the memoized per-disjunct artifacts).
  struct AssembledQuery {
    NormQuery query;
    /// query.disjuncts[i] == disjuncts_[plan_index[i]].reduced.
    std::vector<int> plan_index;
  };

  /// Evaluation-time half of the object/order split: drops the disjuncts
  /// whose object part fails against the ground facts of `ndb`. When no
  /// disjunct carries an object part the result is database-independent;
  /// `static_split_` holds it precomputed and this returns nothing.
  std::optional<AssembledQuery> AssembleSplitQuery(const NormDb& ndb) const;

  /// Evaluate with the brute-force enumeration sharded over num_threads
  /// workers (1 = serial; Evaluate() is EvaluateWith(db, 1, budget)).
  Result<EntailResult> EvaluateWith(const Database& db, int num_threads,
                                    ExecBudget* budget) const;

  VocabularyPtr vocab_;
  EntailOptions options_;
  uint64_t fingerprint_ = 0;
  std::vector<PassRecord> passes_;
  std::vector<DisjunctPlan> disjuncts_;
  std::vector<ConstantShift::Marker> markers_;
  bool needs_sentinels_ = false;
  int sentinel_vars_ = 0;
  bool trivially_true_ = false;
  EngineKind planned_engine_ = EngineKind::kAuto;
  // Cost-plan pass outputs: the planner's engine-route suggestion
  // (applied at Evaluate when the options say kAuto and the route is
  // applicable) and the counts behind PlanChoiceSummary().
  std::optional<EngineKind> costed_engine_;
  int costed_schedules_ = 0;
  bool costed_reorder_ = false;
  // The assembled query, precomputed when no disjunct has an object part
  // (then ground-fact filtering never drops anything, so the split is
  // database-independent and evaluations skip the per-call rebuild). A
  // second copy of the reduced conjuncts: plan-sized memory traded for
  // evaluation-path speed. static_reduced_split_ is the same query with
  // the memoized transitive-reduced disjuncts, handed to the disjunctive
  // automata engine. Both share static_plan_index_ (identity).
  std::optional<NormQuery> static_split_;
  std::optional<NormQuery> static_reduced_split_;
  std::vector<int> static_plan_index_;

  // Per-database cache of the transformed-and-normalized view for plans
  // with NeedsDbTransform(), keyed by Database::uid with a revision stamp
  // (the pair identifies immutable content), so batch rounds over a fleet
  // amortize the transform per store. Bounded: once full, a miss on a new
  // database evicts everything, keeping long-lived plans from
  // accumulating entries for short-lived databases. Guarded by cache_mu_
  // (ParallelEvaluateBatch workers share the plan); entries are
  // shared_ptrs so an eviction never frees a view a worker still holds.
  struct TransformCache {
    uint64_t revision;
    Result<NormDb> ndb;
  };
  static constexpr size_t kMaxTransformCacheEntries = 64;
  mutable std::unique_ptr<std::mutex> cache_mu_ =
      std::make_unique<std::mutex>();
  mutable std::unordered_map<uint64_t,
                             std::shared_ptr<const TransformCache>>
      transform_cache_;
};

/// Compiles (query, options) into a PreparedQuery. `vocab` must be the
/// query's vocabulary; marker predicates for constant elimination are
/// registered into it. Fails exactly when the query-side passes of
/// Entails() fail (malformed query, unknown predicate, inequality-rewrite
/// budget under Z/Q semantics).
Result<PreparedQuery> Prepare(const VocabularyPtr& vocab, const Query& query,
                              const EntailOptions& options = {});

/// Convenience wrapper that aborts on error; for fixtures and examples
/// where the query is known to be well-formed.
PreparedQuery MustPrepare(const VocabularyPtr& vocab, const Query& query,
                          const EntailOptions& options = {});

/// Fingerprint of the full Prepare() input: the structural query
/// fingerprint (FingerprintQuery) mixed with every option that changes
/// the compiled plan or its verdict payload — semantics, forced engine,
/// countermodel request, inequality-rewrite budget, and the planner's
/// own fingerprint (0 when costing is off). Two Prepare() calls
/// with equal fingerprints over the same vocabulary produce
/// interchangeable plans, which is exactly the plan-cache contract.
uint64_t FingerprintPlanInputs(const Query& query,
                               const EntailOptions& options);

}  // namespace iodb

#endif  // IODB_CORE_PREPARE_H_
