#include "core/printer.h"

#include "util/strings.h"

namespace iodb {
namespace {

std::string RelText(OrderRel rel) {
  return rel == OrderRel::kLt ? " < " : " <= ";
}

std::string LabelText(const PredSet& label, const Vocabulary& vocab) {
  std::vector<std::string> names;
  for (int pred : label.Elements()) {
    names.push_back(vocab.predicate(pred).name);
  }
  return Join(names, ",");
}

std::string DotOfDag(const Digraph& dag,
                     const std::vector<std::string>& names,
                     const std::vector<PredSet>& labels,
                     const Vocabulary& vocab) {
  std::string out = "digraph G {\n  rankdir=LR;\n";
  for (int v = 0; v < dag.num_vertices(); ++v) {
    std::string label = names[v];
    if (!labels[v].Empty()) {
      label += "\\n{" + LabelText(labels[v], vocab) + "}";
    }
    out += "  n" + std::to_string(v) + " [label=\"" + label + "\"];\n";
  }
  for (const LabeledEdge& e : dag.edges()) {
    out += "  n" + std::to_string(e.from) + " -> n" + std::to_string(e.to);
    // Figure 5 convention: solid for "<", dashed for "<=".
    out += e.rel == OrderRel::kLt ? ";\n" : " [style=dashed];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string ToString(const Database& db) {
  std::string out;
  for (const ProperAtom& atom : db.proper_atoms()) {
    out += db.vocab()->predicate(atom.pred).name + "(";
    std::vector<std::string> args;
    for (const Term& term : atom.args) {
      args.push_back(term.sort == Sort::kObject ? db.object_name(term.id)
                                                : db.order_name(term.id));
    }
    out += Join(args, ", ") + ")\n";
  }
  for (const OrderAtom& atom : db.order_atoms()) {
    out += db.order_name(atom.lhs) + RelText(atom.rel) +
           db.order_name(atom.rhs) + "\n";
  }
  for (const InequalityAtom& atom : db.inequalities()) {
    out += db.order_name(atom.lhs) + " != " + db.order_name(atom.rhs) + "\n";
  }
  return out;
}

std::string ToString(const Query& query) {
  std::vector<std::string> disjuncts;
  for (const QueryConjunct& conjunct : query.disjuncts()) {
    std::string d;
    if (!conjunct.variables.empty()) {
      d += "exists " + Join(conjunct.variables, " ") + ": ";
    }
    std::vector<std::string> atoms;
    for (const QueryProperAtom& atom : conjunct.proper_atoms) {
      std::vector<std::string> args;
      for (const QueryTerm& term : atom.args) args.push_back(term.name);
      atoms.push_back(atom.pred + "(" + Join(args, ", ") + ")");
    }
    for (const QueryOrderAtom& atom : conjunct.order_atoms) {
      atoms.push_back(atom.lhs.name +
                      (atom.rel == OrderRel::kLt ? "<" : "<=") +
                      atom.rhs.name);
    }
    for (const QueryInequality& atom : conjunct.inequalities) {
      atoms.push_back(atom.lhs.name + "!=" + atom.rhs.name);
    }
    // An atomless disjunct is the empty conjunction; print the `true`
    // the parser accepts back, so every query round-trips.
    d += atoms.empty() ? "true" : Join(atoms, " & ");
    disjuncts.push_back(d);
  }
  return Join(disjuncts, " | ");
}

std::string ToString(const NormConjunct& conjunct, const Vocabulary& vocab) {
  std::string out;
  std::vector<std::string> vars = conjunct.order_var_names;
  vars.insert(vars.end(), conjunct.object_var_names.begin(),
              conjunct.object_var_names.end());
  if (!vars.empty()) out += "exists " + Join(vars, " ") + ": ";
  std::vector<std::string> atoms;
  for (int t = 0; t < conjunct.num_order_vars(); ++t) {
    for (int pred : conjunct.labels[t].Elements()) {
      atoms.push_back(vocab.predicate(pred).name + "(" +
                      conjunct.order_var_names[t] + ")");
    }
  }
  for (const ProperAtom& atom : conjunct.other_atoms) {
    std::vector<std::string> args;
    for (const Term& term : atom.args) {
      args.push_back(term.sort == Sort::kOrder
                         ? conjunct.order_var_names[term.id]
                         : conjunct.object_var_names[term.id]);
    }
    atoms.push_back(vocab.predicate(atom.pred).name + "(" + Join(args, ", ") +
                    ")");
  }
  for (const LabeledEdge& e : conjunct.dag.edges()) {
    atoms.push_back(conjunct.order_var_names[e.from] +
                    (e.rel == OrderRel::kLt ? "<" : "<=") +
                    conjunct.order_var_names[e.to]);
  }
  for (const auto& [u, v] : conjunct.inequalities) {
    atoms.push_back(conjunct.order_var_names[u] +
                    "!=" + conjunct.order_var_names[v]);
  }
  if (atoms.empty()) return out + "true";
  return out + Join(atoms, " & ");
}

std::string ToString(const NormQuery& query) {
  std::vector<std::string> disjuncts;
  for (const NormConjunct& conjunct : query.disjuncts) {
    disjuncts.push_back(ToString(conjunct, *query.vocab));
  }
  if (disjuncts.empty()) return "false";
  return Join(disjuncts, " | ");
}

std::string DotOfDb(const NormDb& db) {
  std::vector<std::string> names;
  for (int p = 0; p < db.num_points(); ++p) names.push_back(db.PointName(p));
  return DotOfDag(db.dag, names, db.labels, *db.vocab);
}

std::string DotOfConjunct(const NormConjunct& conjunct,
                          const Vocabulary& vocab) {
  return DotOfDag(conjunct.dag, conjunct.order_var_names, conjunct.labels,
                  vocab);
}

}  // namespace iodb
