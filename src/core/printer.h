// Rendering of databases, queries and dags (text and Graphviz).
//
// The Graphviz output reproduces the paper's figures: vertices labelled by
// their predicate sets, solid arrows for "<" edges and dashed arrows for
// "<=" edges (the convention of Figure 5).

#ifndef IODB_CORE_PRINTER_H_
#define IODB_CORE_PRINTER_H_

#include <string>

#include "core/database.h"
#include "core/query.h"

namespace iodb {

/// Renders the database in the parser's input format.
std::string ToString(const Database& db);

/// Renders the query in the parser's input format.
std::string ToString(const Query& query);

/// Renders a normalized conjunct as "exists ...: atoms".
std::string ToString(const NormConjunct& conjunct, const Vocabulary& vocab);

/// Renders a normalized query (DNF of normalized conjuncts).
std::string ToString(const NormQuery& query);

/// Graphviz dot of the database dag (Figure 5 style).
std::string DotOfDb(const NormDb& db);

/// Graphviz dot of a conjunct dag (Figure 5 style).
std::string DotOfConjunct(const NormConjunct& conjunct,
                          const Vocabulary& vocab);

}  // namespace iodb

#endif  // IODB_CORE_PRINTER_H_
