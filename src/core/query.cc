#include "core/query.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "graph/scc.h"
#include "graph/topo.h"
#include "graph/width.h"

namespace iodb {

QueryConjunct& QueryConjunct::Exists(const std::string& var) {
  if (!IsVariable(var)) variables.push_back(var);
  return *this;
}

QueryConjunct& QueryConjunct::Atom(const std::string& pred,
                                   const std::vector<std::string>& args) {
  QueryProperAtom atom;
  atom.pred = pred;
  for (const std::string& a : args) atom.args.push_back({a});
  proper_atoms.push_back(std::move(atom));
  return *this;
}

QueryConjunct& QueryConjunct::Order(const std::string& lhs, OrderRel rel,
                                    const std::string& rhs) {
  order_atoms.push_back({{lhs}, {rhs}, rel});
  return *this;
}

QueryConjunct& QueryConjunct::NotEqual(const std::string& lhs,
                                       const std::string& rhs) {
  inequalities.push_back({{lhs}, {rhs}});
  return *this;
}

bool QueryConjunct::IsVariable(const std::string& name) const {
  return std::find(variables.begin(), variables.end(), name) !=
         variables.end();
}

Query::Query(VocabularyPtr vocab) : vocab_(std::move(vocab)) {
  IODB_CHECK(vocab_ != nullptr);
}

QueryConjunct& Query::AddDisjunct() {
  disjuncts_.emplace_back();
  return disjuncts_.back();
}

void Query::AddDisjunct(QueryConjunct conjunct) {
  disjuncts_.push_back(std::move(conjunct));
}

bool Query::HasConstants() const {
  for (const QueryConjunct& conjunct : disjuncts_) {
    for (const QueryProperAtom& atom : conjunct.proper_atoms) {
      for (const QueryTerm& term : atom.args) {
        if (!conjunct.IsVariable(term.name)) return true;
      }
    }
    for (const QueryOrderAtom& atom : conjunct.order_atoms) {
      if (!conjunct.IsVariable(atom.lhs.name) ||
          !conjunct.IsVariable(atom.rhs.name)) {
        return true;
      }
    }
    for (const QueryInequality& atom : conjunct.inequalities) {
      if (!conjunct.IsVariable(atom.lhs.name) ||
          !conjunct.IsVariable(atom.rhs.name)) {
        return true;
      }
    }
  }
  return false;
}

namespace {

// Incremental FNV-1a, fed length-prefixed fields so adjacent strings
// cannot alias ("ab","c" vs "a","bc") and structure tags separate the
// atom kinds.
struct Fnv1a {
  uint64_t hash = 1469598103934665603ULL;

  void Byte(uint8_t b) {
    hash ^= b;
    hash *= 1099511628211ULL;
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (8 * i)));
  }
  void Str(const std::string& s) {
    U64(s.size());
    for (char c : s) Byte(static_cast<uint8_t>(c));
  }
};

}  // namespace

uint64_t FingerprintQuery(const Query& query) {
  Fnv1a fnv;
  fnv.U64(query.disjuncts().size());
  for (const QueryConjunct& conjunct : query.disjuncts()) {
    fnv.Byte('D');
    fnv.U64(conjunct.variables.size());
    for (const std::string& var : conjunct.variables) fnv.Str(var);
    for (const QueryProperAtom& atom : conjunct.proper_atoms) {
      fnv.Byte('P');
      fnv.Str(atom.pred);
      fnv.U64(atom.args.size());
      for (const QueryTerm& term : atom.args) fnv.Str(term.name);
    }
    for (const QueryOrderAtom& atom : conjunct.order_atoms) {
      fnv.Byte(atom.rel == OrderRel::kLt ? '<' : 'L');
      fnv.Str(atom.lhs.name);
      fnv.Str(atom.rhs.name);
    }
    for (const QueryInequality& atom : conjunct.inequalities) {
      fnv.Byte('!');
      fnv.Str(atom.lhs.name);
      fnv.Str(atom.rhs.name);
    }
  }
  return fnv.hash;
}

bool NormConjunct::IsEmpty() const {
  return num_order_vars() == 0 && num_object_vars() == 0 &&
         other_atoms.empty();
}

bool NormConjunct::IsTight() const {
  std::vector<bool> in_proper(num_order_vars(), false);
  for (int t = 0; t < num_order_vars(); ++t) {
    if (!labels[t].Empty()) in_proper[t] = true;
  }
  for (const ProperAtom& atom : other_atoms) {
    for (const Term& term : atom.args) {
      if (term.sort == Sort::kOrder) in_proper[term.id] = true;
    }
  }
  for (int t = 0; t < num_order_vars(); ++t) {
    if (!in_proper[t]) return false;
  }
  return true;
}

int NormConjunct::Width() const { return DagWidth(dag); }

bool NormQuery::IsMonadicOrderOnly() const {
  for (const NormConjunct& conjunct : disjuncts) {
    if (!conjunct.IsMonadicOrderOnly()) return false;
  }
  return true;
}

bool NormQuery::IsTight() const {
  for (const NormConjunct& conjunct : disjuncts) {
    if (!conjunct.IsTight()) return false;
  }
  return true;
}

bool NormQuery::IsSequential() const {
  for (const NormConjunct& conjunct : disjuncts) {
    if (!conjunct.IsSequential()) return false;
  }
  return true;
}

int NormQuery::MaxOrderVars() const {
  int max_vars = 0;
  for (const NormConjunct& conjunct : disjuncts) {
    max_vars = std::max(max_vars, conjunct.num_order_vars());
  }
  return max_vars;
}

namespace {

// Per-conjunct normalization working state.
struct VarInfo {
  std::optional<Sort> sort;
  int id = -1;  // id within its sort, pre-merging
};

// Resolves the sort of every variable of `conjunct`, or fails on
// conflicts / constants / unknown predicates.
Status ResolveSorts(const Vocabulary& vocab, const QueryConjunct& conjunct,
                    std::map<std::string, VarInfo>& vars) {
  for (const std::string& v : conjunct.variables) vars[v];

  auto require_var = [&](const QueryTerm& term) -> Status {
    if (!conjunct.IsVariable(term.name)) {
      return Status::InvalidArgument(
          "constant '" + term.name +
          "' in normalized query; run EliminateConstants first");
    }
    return Status::Ok();
  };
  auto assign = [&](const std::string& name, Sort sort) -> Status {
    VarInfo& info = vars[name];
    if (info.sort.has_value() && *info.sort != sort) {
      return Status::InvalidArgument("variable '" + name +
                                     "' used with conflicting sorts");
    }
    info.sort = sort;
    return Status::Ok();
  };

  for (const QueryOrderAtom& atom : conjunct.order_atoms) {
    for (const QueryTerm* term : {&atom.lhs, &atom.rhs}) {
      Status s = require_var(*term);
      if (!s.ok()) return s;
      s = assign(term->name, Sort::kOrder);
      if (!s.ok()) return s;
    }
  }
  for (const QueryInequality& atom : conjunct.inequalities) {
    for (const QueryTerm* term : {&atom.lhs, &atom.rhs}) {
      Status s = require_var(*term);
      if (!s.ok()) return s;
      s = assign(term->name, Sort::kOrder);
      if (!s.ok()) return s;
    }
  }
  for (const QueryProperAtom& atom : conjunct.proper_atoms) {
    std::optional<int> pred = vocab.FindPredicate(atom.pred);
    if (!pred.has_value()) {
      return Status::InvalidArgument("unknown predicate '" + atom.pred +
                                     "' in query");
    }
    const PredicateInfo& info = vocab.predicate(*pred);
    if (info.arity() != static_cast<int>(atom.args.size())) {
      return Status::InvalidArgument("arity mismatch for '" + atom.pred +
                                     "' in query");
    }
    for (int i = 0; i < info.arity(); ++i) {
      Status s = require_var(atom.args[i]);
      if (!s.ok()) return s;
      s = assign(atom.args[i].name, info.arg_sorts[i]);
      if (!s.ok()) return s;
    }
  }
  // Variables used in no atom default to the order sort (the natural
  // reading of e.g. ∃t₂ in ∃t₁t₂t₃[P(t₁) ∧ t₁<t₂<t₃ ∧ P(t₃)]).
  for (auto& [name, info] : vars) {
    if (!info.sort.has_value()) info.sort = Sort::kOrder;
  }
  return Status::Ok();
}

// Normalizes one conjunct. Returns nullopt if the conjunct is
// inconsistent (to be dropped), a NormConjunct otherwise.
Result<std::optional<NormConjunct>> NormalizeConjunct(
    const Vocabulary& vocab, const QueryConjunct& conjunct) {
  std::map<std::string, VarInfo> vars;
  Status s = ResolveSorts(vocab, conjunct, vars);
  if (!s.ok()) return s;

  // Assign pre-merge ids.
  std::vector<std::string> order_names, object_names;
  for (auto& [name, info] : vars) {
    if (*info.sort == Sort::kOrder) {
      info.id = static_cast<int>(order_names.size());
      order_names.push_back(name);
    } else {
      info.id = static_cast<int>(object_names.size());
      object_names.push_back(name);
    }
  }

  // Rule N1 on the order variables.
  Digraph raw(static_cast<int>(order_names.size()));
  for (const QueryOrderAtom& atom : conjunct.order_atoms) {
    raw.AddEdge(vars[atom.lhs.name].id, vars[atom.rhs.name].id, atom.rel);
  }
  SccResult scc = StronglyConnectedComponents(raw);
  for (const QueryOrderAtom& atom : conjunct.order_atoms) {
    if (scc.component[vars[atom.lhs.name].id] ==
            scc.component[vars[atom.rhs.name].id] &&
        atom.rel == OrderRel::kLt) {
      return std::optional<NormConjunct>();  // inconsistent disjunct
    }
  }

  NormConjunct norm;
  norm.object_var_names = object_names;
  std::vector<int> var_of_component(scc.num_components, -1);
  std::vector<int> canonical(order_names.size());
  for (size_t v = 0; v < order_names.size(); ++v) {
    int comp = scc.component[static_cast<int>(v)];
    if (var_of_component[comp] == -1) {
      var_of_component[comp] = static_cast<int>(norm.order_var_names.size());
      norm.order_var_names.push_back(order_names[v]);
    }
    canonical[v] = var_of_component[comp];
  }
  const int nv = static_cast<int>(norm.order_var_names.size());
  norm.dag = Digraph(nv);
  norm.labels.assign(nv, PredSet(vocab.num_predicates()));

  // Dedup edges; "<" dominates.
  std::map<std::pair<int, int>, OrderRel> strongest;
  for (const QueryOrderAtom& atom : conjunct.order_atoms) {
    int u = canonical[vars[atom.lhs.name].id];
    int v = canonical[vars[atom.rhs.name].id];
    if (u == v) continue;  // rule N2 / internal to merged component
    auto [it, inserted] = strongest.emplace(std::make_pair(u, v), atom.rel);
    if (!inserted && atom.rel == OrderRel::kLt) it->second = OrderRel::kLt;
  }
  for (const auto& [key, rel] : strongest) {
    norm.dag.AddEdge(key.first, key.second, rel);
  }

  // Proper atoms.
  for (const QueryProperAtom& atom : conjunct.proper_atoms) {
    int pred = *vocab.FindPredicate(atom.pred);
    const PredicateInfo& info = vocab.predicate(pred);
    if (info.IsMonadicOrder()) {
      norm.labels[canonical[vars[atom.args[0].name].id]].Add(pred);
      continue;
    }
    ProperAtom mapped;
    mapped.pred = pred;
    for (int i = 0; i < info.arity(); ++i) {
      const VarInfo& vi = vars[atom.args[i].name];
      int id = *vi.sort == Sort::kOrder ? canonical[vi.id] : vi.id;
      mapped.args.push_back({*vi.sort, id});
    }
    if (std::find(norm.other_atoms.begin(), norm.other_atoms.end(), mapped) ==
        norm.other_atoms.end()) {
      norm.other_atoms.push_back(std::move(mapped));
    }
  }

  // Inequalities.
  for (const QueryInequality& atom : conjunct.inequalities) {
    int u = canonical[vars[atom.lhs.name].id];
    int v = canonical[vars[atom.rhs.name].id];
    if (u == v) return std::optional<NormConjunct>();  // t != t: inconsistent
    auto pair = std::minmax(u, v);
    std::pair<int, int> entry{pair.first, pair.second};
    if (std::find(norm.inequalities.begin(), norm.inequalities.end(),
                  entry) == norm.inequalities.end()) {
      norm.inequalities.push_back(entry);
    }
  }

  IODB_CHECK(!HasCycle(norm.dag));
  return std::optional<NormConjunct>(std::move(norm));
}

}  // namespace

Result<NormQuery> NormalizeQuery(const Query& query) {
  NormQuery norm;
  norm.vocab = query.vocab();
  for (const QueryConjunct& conjunct : query.disjuncts()) {
    Result<std::optional<NormConjunct>> result =
        NormalizeConjunct(*query.vocab(), conjunct);
    if (!result.ok()) return result.status();
    if (!result.value().has_value()) continue;  // inconsistent disjunct
    if (result.value()->IsEmpty()) norm.trivially_true = true;
    norm.disjuncts.push_back(std::move(*result.value()));
  }
  return norm;
}

Result<ConstantShift> ShiftConstants(const Query& query) {
  ConstantShift shift{Query(query.vocab()), {}};
  Vocabulary& vocab = *query.vocab();
  // constant name -> marker already recorded (markers are per query, not
  // per conjunct: one fact suffices however often the constant occurs)
  std::unordered_map<std::string, size_t> marker_index;

  for (const QueryConjunct& conjunct : query.disjuncts()) {
    QueryConjunct rewritten = conjunct;
    // constant name -> fresh variable name within this conjunct
    std::unordered_map<std::string, std::string> fresh;

    auto freshen = [&](QueryTerm& term, Sort sort) -> Status {
      if (rewritten.IsVariable(term.name)) return Status::Ok();
      const std::string constant = term.name;
      auto it = fresh.find(constant);
      if (it == fresh.end()) {
        std::string var = "@v_" + constant;
        while (rewritten.IsVariable(var)) var += "'";
        std::string marker = "@is_" + constant;
        Result<int> pred = vocab.GetOrAddPredicate(marker, {sort});
        if (!pred.ok()) {
          return Status::InvalidArgument("constant '" + constant +
                                         "' used with conflicting sorts");
        }
        if (marker_index.find(constant) == marker_index.end()) {
          marker_index.emplace(constant, shift.markers.size());
          shift.markers.push_back({constant, sort, pred.value()});
        }
        rewritten.Exists(var);
        rewritten.Atom(marker, {var});
        it = fresh.emplace(constant, var).first;
      }
      term.name = it->second;
      return Status::Ok();
    };

    for (QueryOrderAtom& atom : rewritten.order_atoms) {
      Status s = freshen(atom.lhs, Sort::kOrder);
      if (!s.ok()) return s;
      s = freshen(atom.rhs, Sort::kOrder);
      if (!s.ok()) return s;
    }
    for (QueryInequality& atom : rewritten.inequalities) {
      Status s = freshen(atom.lhs, Sort::kOrder);
      if (!s.ok()) return s;
      s = freshen(atom.rhs, Sort::kOrder);
      if (!s.ok()) return s;
    }
    // Proper atoms last: by now the conjunct may have gained marker atoms,
    // but constants can still occur in the original proper atoms.
    const size_t original_atom_count = conjunct.proper_atoms.size();
    for (size_t a = 0; a < original_atom_count; ++a) {
      QueryProperAtom& atom = rewritten.proper_atoms[a];
      std::optional<int> pred = vocab.FindPredicate(atom.pred);
      if (!pred.has_value()) {
        return Status::InvalidArgument("unknown predicate '" + atom.pred +
                                       "' in query");
      }
      // Copy the signature: freshen() may register marker predicates and
      // invalidate references into the vocabulary.
      const std::vector<Sort> arg_sorts = vocab.predicate(*pred).arg_sorts;
      if (arg_sorts.size() != atom.args.size()) {
        return Status::InvalidArgument("arity mismatch for '" + atom.pred +
                                       "' in query");
      }
      for (size_t i = 0; i < arg_sorts.size(); ++i) {
        Status s = freshen(atom.args[i], arg_sorts[i]);
        if (!s.ok()) return s;
      }
    }
    shift.query.AddDisjunct(std::move(rewritten));
  }
  return shift;
}

Result<ConstantFreePair> EliminateConstants(const Database& db,
                                            const Query& query) {
  Result<ConstantShift> shift = ShiftConstants(query);
  if (!shift.ok()) return shift.status();
  Database new_db = db;
  for (const ConstantShift::Marker& marker : shift.value().markers) {
    // Intern the constant if the database does not mention it.
    int cid = new_db.GetOrAddConstant(marker.constant, marker.sort);
    new_db.AddProperAtom(marker.pred, {{marker.sort, cid}});
  }
  return ConstantFreePair{std::move(new_db),
                          std::move(shift.value().query)};
}

NormConjunct FullClosure(const NormConjunct& conjunct) {
  NormConjunct full = conjunct;
  const int n = conjunct.num_order_vars();
  Reachability reach = ComputeReachability(conjunct.dag);
  full.dag = Digraph(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u == v || !reach.reach.Get(u, v)) continue;
      full.dag.AddEdge(
          u, v, reach.strict.Get(u, v) ? OrderRel::kLt : OrderRel::kLe);
    }
  }
  return full;
}

NormConjunct TransitiveReduceConjunct(const NormConjunct& conjunct) {
  NormConjunct out = conjunct;
  out.dag = TransitiveReduce(conjunct.dag);
  return out;
}

NormConjunct DropNonProperVars(const NormConjunct& conjunct) {
  IODB_CHECK(conjunct.inequalities.empty());
  const int n = conjunct.num_order_vars();
  std::vector<bool> keep(n, false);
  for (int t = 0; t < n; ++t) {
    if (!conjunct.labels[t].Empty()) keep[t] = true;
  }
  for (const ProperAtom& atom : conjunct.other_atoms) {
    for (const Term& term : atom.args) {
      if (term.sort == Sort::kOrder) keep[term.id] = true;
    }
  }
  NormConjunct out;
  out.object_var_names = conjunct.object_var_names;
  out.other_atoms = conjunct.other_atoms;
  std::vector<int> remap(n, -1);
  for (int t = 0; t < n; ++t) {
    if (keep[t]) {
      remap[t] = static_cast<int>(out.order_var_names.size());
      out.order_var_names.push_back(conjunct.order_var_names[t]);
      out.labels.push_back(conjunct.labels[t]);
    }
  }
  out.dag = Digraph(static_cast<int>(out.order_var_names.size()));
  for (const LabeledEdge& e : conjunct.dag.edges()) {
    if (keep[e.from] && keep[e.to]) {
      out.dag.AddEdge(remap[e.from], remap[e.to], e.rel);
    }
  }
  for (ProperAtom& atom : out.other_atoms) {
    for (Term& term : atom.args) {
      if (term.sort == Sort::kOrder) {
        IODB_CHECK_NE(remap[term.id], -1);
        term.id = remap[term.id];
      }
    }
  }
  return out;
}

}  // namespace iodb
