// Positive existential queries (Section 2 of the paper).
//
// Queries are built from proper atoms and order atoms with conjunction,
// disjunction and existential quantification. For complexity analysis the
// paper assumes disjunctive normal form; `Query` is accordingly a
// disjunction of `QueryConjunct`s, each an implicitly existentially
// quantified conjunction.
//
// `Query` is the surface form (string-named variables and constants);
// `NormQuery` is the normalized, constant-free form used by the engines:
// per disjunct, rules N1/N2 are applied, the order atoms become a deduped
// dag over canonical order variables, and monadic-order atoms become
// per-variable label sets (Φ[t] in the paper's notation).

#ifndef IODB_CORE_QUERY_H_
#define IODB_CORE_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/types.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace iodb {

/// A surface term: a variable or constant name. Whether a name denotes a
/// variable is decided by the conjunct's declared variable list.
struct QueryTerm {
  std::string name;

  friend bool operator==(const QueryTerm&, const QueryTerm&) = default;
};

/// A surface proper atom P(t1, ..., tn).
struct QueryProperAtom {
  std::string pred;
  std::vector<QueryTerm> args;
};

/// A surface order atom t1 rel t2.
struct QueryOrderAtom {
  QueryTerm lhs;
  QueryTerm rhs;
  OrderRel rel = OrderRel::kLe;
};

/// A surface inequality t1 != t2 (Section 7).
struct QueryInequality {
  QueryTerm lhs;
  QueryTerm rhs;
};

/// One disjunct: an existentially quantified conjunction. Any name in
/// `variables` is a variable of this disjunct; other names are constants.
struct QueryConjunct {
  std::vector<std::string> variables;
  std::vector<QueryProperAtom> proper_atoms;
  std::vector<QueryOrderAtom> order_atoms;
  std::vector<QueryInequality> inequalities;

  /// Convenience builders for programmatic construction.
  QueryConjunct& Exists(const std::string& var);
  QueryConjunct& Atom(const std::string& pred,
                      const std::vector<std::string>& args);
  QueryConjunct& Order(const std::string& lhs, OrderRel rel,
                       const std::string& rhs);
  QueryConjunct& NotEqual(const std::string& lhs, const std::string& rhs);

  bool IsVariable(const std::string& name) const;
};

/// A positive existential query in disjunctive normal form.
class Query {
 public:
  explicit Query(VocabularyPtr vocab);

  const VocabularyPtr& vocab() const { return vocab_; }

  /// Appends a disjunct and returns a reference for builder-style use.
  QueryConjunct& AddDisjunct();
  void AddDisjunct(QueryConjunct conjunct);

  const std::vector<QueryConjunct>& disjuncts() const { return disjuncts_; }

  /// True if any disjunct mentions a constant (a term name not declared as
  /// a variable of that disjunct).
  bool HasConstants() const;

 private:
  VocabularyPtr vocab_;
  std::vector<QueryConjunct> disjuncts_;
};

/// Normalized conjunct: the labelled-dag view of Section 4.
struct NormConjunct {
  /// Canonical order variables (after N1 merging) and object variables.
  std::vector<std::string> order_var_names;
  std::vector<std::string> object_var_names;

  /// Order dag over order variables; edges deduped, "<" dominates "<=".
  Digraph dag{0};

  /// labels[t]: monadic-order predicates asserted of order variable t.
  std::vector<PredSet> labels;

  /// Proper atoms that are not monadic-order. Term ids are variable ids
  /// (object or order by Term::sort).
  std::vector<ProperAtom> other_atoms;

  /// Inequalities over order variables, normalized lhs < rhs, deduped.
  std::vector<std::pair<int, int>> inequalities;

  int num_order_vars() const { return dag.num_vertices(); }
  int num_object_vars() const {
    return static_cast<int>(object_var_names.size());
  }

  /// True if the conjunct is empty (no atoms, no variables): the empty
  /// conjunction, which is trivially true.
  bool IsEmpty() const;

  /// True if the conjunct uses only monadic-order atoms and order atoms —
  /// the fragment handled by the Section 4-6 engines.
  bool IsMonadicOrderOnly() const {
    return other_atoms.empty() && inequalities.empty() &&
           object_var_names.empty();
  }

  /// True if every order variable occurs in some proper atom (the paper's
  /// "tight" condition, Section 2).
  bool IsTight() const;

  /// Width of the order dag.
  int Width() const;

  /// True if the order variables are linearly ordered by the order atoms
  /// (width <= 1): the paper's "sequential" queries.
  bool IsSequential() const { return Width() <= 1; }
};

/// Normalized query: disjunction of normalized conjuncts. Inconsistent
/// disjuncts (cyclic "<") are dropped during normalization; a disjunct
/// that normalizes to the empty conjunction makes the query trivially
/// true.
struct NormQuery {
  VocabularyPtr vocab;
  std::vector<NormConjunct> disjuncts;
  bool trivially_true = false;

  bool IsConjunctive() const { return disjuncts.size() == 1; }
  bool IsMonadicOrderOnly() const;
  bool IsTight() const;
  bool IsSequential() const;
  int MaxOrderVars() const;
};

/// Structural 64-bit fingerprint of a surface query: a platform-stable
/// FNV-1a hash over the disjuncts in order — variable lists, proper atoms
/// (predicate names and argument names), order atoms with their
/// relations, and inequalities. Structurally identical queries fingerprint
/// identically in every process and on every platform (no std::hash), so
/// the value can key plan caches and name fuzz repros; distinct queries
/// collide with probability ~2^-64. The fingerprint deliberately ignores
/// the vocabulary object — cache keys pair it with Vocabulary::uid().
uint64_t FingerprintQuery(const Query& query);

/// Normalizes a constant-free query: resolves variable sorts, applies
/// N1/N2 per disjunct, builds dags and label sets. Fails on constants
/// (eliminate them first, see EliminateConstants), unknown predicates,
/// arity mismatches, or conflicting sort usage.
Result<NormQuery> NormalizeQuery(const Query& query);

/// The query-side half of the constant-elimination construction
/// (Section 2): each constant u occurring in `query` is replaced by a
/// fresh variable t guarded by a marker atom @is_u(t), with the marker
/// predicates registered in the query's vocabulary. The database-side
/// half — asserting the fact @is_u(u) — is returned as `markers`, one per
/// distinct constant, so callers can inject it into any database the
/// rewritten query is later evaluated against (see PreparedQuery).
struct ConstantShift {
  /// A marker fact @is_<constant>(<constant>) to add to the database.
  struct Marker {
    std::string constant;
    Sort sort;
    int pred;  // the @is_<constant> predicate id
  };

  Query query;
  std::vector<Marker> markers;
};
Result<ConstantShift> ShiftConstants(const Query& query);

/// The full constant-elimination construction: ShiftConstants on the
/// query plus the marker facts added to a copy of `db`. Returns the
/// rewritten pair; entailment is preserved.
struct ConstantFreePair {
  Database db;
  Query query;
};
Result<ConstantFreePair> EliminateConstants(const Database& db,
                                            const Query& query);

/// Full closure of a conjunct (Section 2): adds every derived order atom
/// (u <= v for each path, u < v for each path through a "<" edge).
NormConjunct FullClosure(const NormConjunct& conjunct);

/// Deletes the order variables that occur in no proper atom, together with
/// their order atoms (the Lemma 2.5 transformation; apply to a full
/// conjunct). Requires the conjunct to have no inequalities.
NormConjunct DropNonProperVars(const NormConjunct& conjunct);

/// Drops the order atoms implied by the remaining ones (labelled
/// transitive reduction). The result is constraint-equivalent, and its
/// maximal dag paths — hence the engines' search spaces — are free of
/// redundant shortcut paths: a query whose dag is a "tournament" of
/// derived atoms reduces to a single chain. Note that a "<" atom parallel
/// to a "<="-only path is NOT redundant and is kept.
NormConjunct TransitiveReduceConjunct(const NormConjunct& conjunct);

}  // namespace iodb

#endif  // IODB_CORE_QUERY_H_
