#include "core/semantics.h"

namespace iodb {

const char* OrderSemanticsName(OrderSemantics semantics) {
  switch (semantics) {
    case OrderSemantics::kFinite:
      return "finite";
    case OrderSemantics::kInteger:
      return "integer";
    case OrderSemantics::kRational:
      return "rational";
  }
  return "unknown";
}

std::optional<OrderSemantics> ParseOrderSemantics(const std::string& name) {
  if (name == "finite") return OrderSemantics::kFinite;
  if (name == "integer") return OrderSemantics::kInteger;
  if (name == "rational") return OrderSemantics::kRational;
  return std::nullopt;
}

Database AddIntegerSentinels(const Database& db, int num_query_order_vars) {
  Database out = db;
  const int n = num_query_order_vars;
  if (n == 0) return out;

  // Names are prefixed with '@', which the parser reserves, so they cannot
  // collide with user constants.
  std::vector<int> left(n), right(n);
  for (int i = 0; i < n; ++i) {
    left[i] = out.GetOrAddConstant("@l" + std::to_string(i + 1), Sort::kOrder);
    right[i] =
        out.GetOrAddConstant("@r" + std::to_string(i + 1), Sort::kOrder);
  }
  for (int i = 0; i + 1 < n; ++i) {
    out.AddOrderAtom(left[i], left[i + 1], OrderRel::kLt);
    out.AddOrderAtom(right[i], right[i + 1], OrderRel::kLt);
  }
  // @ln < u < @r1 for every order constant u of the original database.
  for (int u = 0; u < db.num_order_constants(); ++u) {
    out.AddOrderAtom(left[n - 1], u, OrderRel::kLt);
    out.AddOrderAtom(u, right[0], OrderRel::kLt);
  }
  return out;
}

NormQuery RationalTransform(const NormQuery& query) {
  NormQuery out;
  out.vocab = query.vocab;
  out.trivially_true = query.trivially_true;
  for (const NormConjunct& conjunct : query.disjuncts) {
    NormConjunct transformed = DropNonProperVars(FullClosure(conjunct));
    if (transformed.IsEmpty()) out.trivially_true = true;
    out.disjuncts.push_back(std::move(transformed));
  }
  return out;
}

}  // namespace iodb
