// The three order semantics and their reductions to finite models
// (Section 2).
//
// ModO(D) restricts the linear order of models to a class O: finite
// orders (Fin), orders isomorphic to the integers (Z), or dense orders
// isomorphic to the rationals (Q). The consequence relations nest as
// |=Fin ⊆ |=Z ⊆ |=Q (Proposition 2.1) and coincide on *tight* queries
// (Proposition 2.2). For nontight queries:
//   * Z reduces to Fin by the sentinel construction of Proposition 2.3
//     (2n fresh constants below and above everything, n = the number of
//     query variables);
//   * Q reduces to Fin by Corollary 2.6: take the full closure of each
//     disjunct and delete the variables that occur in no proper atom;
//     the result is tight.

#ifndef IODB_CORE_SEMANTICS_H_
#define IODB_CORE_SEMANTICS_H_

#include <optional>
#include <string>

#include "core/database.h"
#include "core/query.h"

namespace iodb {

/// The class of linear orders that models may use.
enum class OrderSemantics {
  kFinite,    // Fin: finite linear orders
  kInteger,   // Z: orders isomorphic to the integers
  kRational,  // Q: dense orders isomorphic to the rationals
};

/// Returns "finite", "integer" or "rational".
const char* OrderSemanticsName(OrderSemantics semantics);

/// Parses a semantics name back into its value: exactly the strings
/// produced by OrderSemanticsName() round-trip (the shared mapping for
/// every CLI flag and trace field). Returns nullopt for anything else.
std::optional<OrderSemantics> ParseOrderSemantics(const std::string& name);

/// The Proposition 2.3 construction: returns D plus fresh sentinel chains
/// @l1 < ... < @ln and @r1 < ... < @rn with @ln < u < @r1 for every order
/// constant u of D. D |=Z Φ iff the result |=Fin Φ, for queries with at
/// most `num_query_order_vars` order variables per disjunct.
Database AddIntegerSentinels(const Database& db, int num_query_order_vars);

/// The Corollary 2.6 transformation: per disjunct, full closure followed
/// by deletion of the order variables occurring in no proper atom. The
/// result is tight and D |=Q Φ iff D |=Fin result. Disjuncts must be
/// inequality-free (rewrite inequalities first).
NormQuery RationalTransform(const NormQuery& query);

}  // namespace iodb

#endif  // IODB_CORE_SEMANTICS_H_
