#include "core/seq.h"

namespace iodb {
namespace {

// Mutable working copy of the database dag for SEQ's deletions.
struct SeqState {
  const NormDb& db;
  SeqStats* stats;
  std::vector<bool> alive;
  std::vector<int> indegree;
  // Work queue of vertices that became minimal; may contain stale (dead)
  // entries, filtered on pop.
  std::vector<int> minimal;
  size_t scan_from = 0;  // minimal[0..scan_from) processed in current scan
  int alive_count;

  explicit SeqState(const NormDb& d, SeqStats* s)
      : db(d),
        stats(s),
        alive(d.num_points(), true),
        indegree(d.num_points(), 0),
        alive_count(d.num_points()) {
    for (const LabeledEdge& e : db.dag.edges()) ++indegree[e.to];
    for (int v = 0; v < db.num_points(); ++v) {
      if (indegree[v] == 0) minimal.push_back(v);
    }
  }

  void Delete(int v) {
    IODB_CHECK(alive[v]);
    alive[v] = false;
    --alive_count;
    if (stats != nullptr) ++stats->vertices_deleted;
    for (const Digraph::Arc& arc : db.dag.out(v)) {
      if (--indegree[arc.vertex] == 0 && alive[arc.vertex]) {
        minimal.push_back(arc.vertex);
      }
    }
  }

  // Returns an alive minimal vertex whose label does not contain `a`, or
  // -1 if all alive minimal vertices satisfy a.
  int FindFailingMinimal(const PredSet& a) {
    // Compact dead entries lazily while scanning.
    size_t w = 0;
    int found = -1;
    for (size_t i = 0; i < minimal.size(); ++i) {
      int v = minimal[i];
      if (!alive[v] || indegree[v] != 0) continue;
      minimal[w++] = v;
      if (found == -1) {
        if (stats != nullptr) ++stats->subset_tests;
        if (!a.IsSubsetOf(db.labels[v])) found = v;
      }
    }
    minimal.resize(w);
    return found;
  }

  // Deletes the minor vertices of the alive subgraph (the paper's marking
  // procedure): delete unmarked minimal vertices, marking the
  // "<"-successors of each deleted vertex.
  void DeleteMinors() {
    std::vector<bool> marked(db.num_points(), false);
    // Local queue: current minimal vertices.
    std::vector<int> queue;
    for (int v : minimal) {
      if (alive[v] && indegree[v] == 0) queue.push_back(v);
    }
    for (size_t head = 0; head < queue.size(); ++head) {
      int v = queue[head];
      if (!alive[v] || marked[v]) continue;
      // Mark "<"-successors before deleting so they survive the phase.
      for (const Digraph::Arc& arc : db.dag.out(v)) {
        if (arc.rel == OrderRel::kLt) marked[arc.vertex] = true;
      }
      alive[v] = false;
      --alive_count;
      if (stats != nullptr) ++stats->vertices_deleted;
      for (const Digraph::Arc& arc : db.dag.out(v)) {
        if (--indegree[arc.vertex] == 0 && alive[arc.vertex]) {
          queue.push_back(arc.vertex);
          minimal.push_back(arc.vertex);
        }
      }
    }
  }
};

}  // namespace

bool SeqEntails(const NormDb& db, const FlexiWord& pattern, SeqStats* stats) {
  IODB_CHECK(db.inequalities.empty());
  const int n = pattern.size();
  if (n == 0) return true;
  SeqState state(db, stats);
  int j = 0;
  for (;;) {
    if (state.alive_count == 0) return false;
    int failing = state.FindFailingMinimal(pattern.symbols[j]);
    if (failing != -1) {
      state.Delete(failing);  // Case I
      continue;
    }
    if (j == n - 1) return true;  // final symbol matched at the next group
    if (pattern.rels[j] == OrderRel::kLt) {
      state.DeleteMinors();  // Case II
      ++j;
    } else {
      ++j;  // Case III
    }
  }
}

}  // namespace iodb
