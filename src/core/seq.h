// The SEQ algorithm (Figure 6 / Lemma 4.2): entailment of a sequential
// monadic query by an arbitrary monadic database in O(|D|·|p|·|Pred|).
//
// The algorithm follows the three cases of the Lemma 4.2 induction, each
// of which is an equivalence (D and p range over the remaining database
// and pattern suffix; a is the first pattern symbol):
//
//   Case I.  Some minimal vertex u of D has a ⊄ D[u].
//            Then D |= p iff D\{u} |= p.
//            ("=>" because D\{u} is a subset of D's atoms; "<=" because a
//            countermodel M of D\{u} extends to the countermodel D[u]<M.)
//   Case II. Every minimal vertex satisfies a, and p = a < p'.
//            Then D |= p iff D\S |= p', where S is the set of minor
//            vertices. (Every first sort group contains a minimal vertex,
//            hence satisfies a; conversely prepending the union of minor
//            labels to a countermodel of D\S gives a countermodel of D.)
//   Case III. Every minimal vertex satisfies a, and p = a <= p'.
//            Then D |= p iff D |= p'.
//
// Deleting the minor set uses the paper's marking trick: repeatedly delete
// unmarked minimal vertices, marking the "<"-successors of every deleted
// vertex; marked vertices survive the phase.

#ifndef IODB_CORE_SEQ_H_
#define IODB_CORE_SEQ_H_

#include "core/database.h"
#include "core/flexiword.h"

namespace iodb {

/// Counters reported by SeqEntails.
struct SeqStats {
  long long vertices_deleted = 0;
  long long subset_tests = 0;
};

/// Decides db |= pattern for a sequential monadic pattern. Ignores any
/// non-monadic facts of the database (they cannot satisfy monadic atoms)
/// and requires the database to carry no inequality constraints.
bool SeqEntails(const NormDb& db, const FlexiWord& pattern,
                SeqStats* stats = nullptr);

}  // namespace iodb

#endif  // IODB_CORE_SEQ_H_
