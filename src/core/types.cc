#include "core/types.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>

namespace iodb {

const char* SortName(Sort sort) {
  return sort == Sort::kObject ? "object" : "order";
}

namespace {

std::atomic<uint64_t>& VocabularyUidCounter() {
  static std::atomic<uint64_t> next{0};
  return next;
}

uint64_t NextVocabularyUid() {
  return VocabularyUidCounter().fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Vocabulary::Vocabulary() : uid_(NextVocabularyUid()) {}

Vocabulary::Vocabulary(const Vocabulary& other) : uid_(NextVocabularyUid()) {
  std::shared_lock<std::shared_mutex> lock(other.mu_);
  predicates_ = other.predicates_;
  index_ = other.index_;
}

Vocabulary& Vocabulary::operator=(const Vocabulary& other) {
  if (this == &other) return *this;
  std::deque<PredicateInfo> predicates;
  std::unordered_map<std::string, int> index;
  {
    std::shared_lock<std::shared_mutex> lock(other.mu_);
    predicates = other.predicates_;
    index = other.index_;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // The predicate table changes meaning, so this object is a new identity.
  uid_ = NextVocabularyUid();
  predicates_ = std::move(predicates);
  index_ = std::move(index);
  return *this;
}

Result<int> Vocabulary::GetOrAddPredicate(const std::string& name,
                                          std::vector<Sort> arg_sorts) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    const PredicateInfo& existing = predicates_[it->second];
    if (existing.arg_sorts != arg_sorts) {
      return Status::InvalidArgument("predicate '" + name +
                                     "' redeclared with a different "
                                     "signature");
    }
    return it->second;
  }
  int id = static_cast<int>(predicates_.size());
  predicates_.push_back({name, std::move(arg_sorts)});
  index_.emplace(name, id);
  return id;
}

int Vocabulary::MustAddPredicate(const std::string& name,
                                 std::vector<Sort> arg_sorts) {
  Result<int> result = GetOrAddPredicate(name, std::move(arg_sorts));
  IODB_CHECK(result.ok());
  return result.value();
}

void Vocabulary::RestoreUid(uint64_t uid) {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    uid_ = uid;
  }
  // Advance the counter to at least `uid` so no later-constructed
  // vocabulary is handed the restored identity.
  std::atomic<uint64_t>& counter = VocabularyUidCounter();
  uint64_t seen = counter.load(std::memory_order_relaxed);
  while (seen < uid &&
         !counter.compare_exchange_weak(seen, uid,
                                        std::memory_order_relaxed)) {
  }
}

std::optional<int> Vocabulary::FindPredicate(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

bool Vocabulary::AllMonadicOrder() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const PredicateInfo& info : predicates_) {
    if (!info.IsMonadicOrder()) return false;
  }
  return true;
}

void PredSet::Add(int id) {
  IODB_CHECK_GE(id, 0);
  size_t word = static_cast<size_t>(id) >> 6;
  if (word >= words_.size()) words_.resize(word + 1, 0);
  words_[word] |= uint64_t{1} << (id & 63);
}

void PredSet::Remove(int id) {
  IODB_CHECK_GE(id, 0);
  size_t word = static_cast<size_t>(id) >> 6;
  if (word < words_.size()) words_[word] &= ~(uint64_t{1} << (id & 63));
}

void PredSet::Clear() {
  std::fill(words_.begin(), words_.end(), 0);
}

bool PredSet::Contains(int id) const {
  IODB_CHECK_GE(id, 0);
  size_t word = static_cast<size_t>(id) >> 6;
  if (word >= words_.size()) return false;
  return (words_[word] >> (id & 63)) & 1;
}

bool PredSet::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

int PredSet::Count() const {
  int count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

bool PredSet::IsSubsetOf(const PredSet& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t theirs = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ~theirs) != 0) return false;
  }
  return true;
}

void PredSet::UnionWith(const PredSet& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
  }
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

std::vector<int> PredSet::Elements() const {
  std::vector<int> out;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      int bit = std::countr_zero(w);
      out.push_back(static_cast<int>(i) * 64 + bit);
      w &= w - 1;
    }
  }
  return out;
}

size_t PredSet::Hash() const {
  size_t seed = 0;
  // Skip trailing zero words so equal sets hash equally regardless of
  // capacity.
  size_t n = words_.size();
  while (n > 0 && words_[n - 1] == 0) --n;
  for (size_t i = 0; i < n; ++i) HashCombine(seed, words_[i]);
  return seed;
}

bool operator==(const PredSet& a, const PredSet& b) {
  size_t n = std::max(a.words_.size(), b.words_.size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
    uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
    if (wa != wb) return false;
  }
  return true;
}

}  // namespace iodb
