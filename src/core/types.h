// Core vocabulary types for the two-sorted language of the paper
// (Section 2): an object sort and an order sort, proper predicates with
// typed argument lists, and dense predicate-set bitsets used by the
// monadic engines.

#ifndef IODB_CORE_TYPES_H_
#define IODB_CORE_TYPES_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace iodb {

/// The two sorts of the language. Order-sort terms denote points of a
/// linearly ordered domain; object-sort terms denote ordinary individuals.
enum class Sort : uint8_t { kObject = 0, kOrder = 1 };

/// Returns "object" or "order".
const char* SortName(Sort sort);

/// Signature of a proper predicate.
struct PredicateInfo {
  std::string name;
  std::vector<Sort> arg_sorts;

  int arity() const { return static_cast<int>(arg_sorts.size()); }
  /// True if the predicate is monadic with an order-sort argument — the
  /// shape required by the monadic engines of Sections 4-6.
  bool IsMonadicOrder() const {
    return arg_sorts.size() == 1 && arg_sorts[0] == Sort::kOrder;
  }
};

/// Interns proper predicate symbols. A vocabulary is shared (by
/// shared_ptr) between the databases and queries that talk about the same
/// predicates, so predicate ids are directly comparable.
///
/// Thread-safety: fully synchronized. Registration
/// (GetOrAddPredicate / MustAddPredicate) may race lookups from any
/// number of threads — the serving layer parses queries and mutations
/// concurrently against one shared vocabulary. References returned by
/// predicate() stay valid forever (predicates are append-only in stable
/// storage), so engines can hold them across later registrations.
class Vocabulary {
 public:
  Vocabulary();
  Vocabulary(const Vocabulary& other);
  Vocabulary& operator=(const Vocabulary& other);

  /// Identity of this vocabulary object. Unique per live object (copies
  /// get a fresh uid), so external caches keyed by (vocabulary uid, query
  /// fingerprint) never confuse plans compiled against different
  /// vocabularies. Predicate registration does NOT change the uid:
  /// registering new predicates only extends the id space, it never
  /// re-means an existing id.
  uint64_t uid() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return uid_;
  }

  /// Registers `name` with the given signature, or returns the existing id.
  /// Fails (via Result) if `name` exists with a different signature.
  Result<int> GetOrAddPredicate(const std::string& name,
                                std::vector<Sort> arg_sorts);

  /// As GetOrAddPredicate but aborts on signature mismatch. Convenient for
  /// programmatic construction where the caller controls all names.
  int MustAddPredicate(const std::string& name, std::vector<Sort> arg_sorts);

  /// Looks up a predicate id by name.
  std::optional<int> FindPredicate(const std::string& name) const;

  /// Storage-layer hook: adopts a persisted identity. The process-wide uid
  /// counter is advanced past `uid`, so vocabularies constructed later can
  /// never collide with a restored identity. Only the storage layer should
  /// call this, and only on a vocabulary whose plans/caches have not been
  /// published yet (re-identifying a vocabulary re-keys every cache).
  void RestoreUid(uint64_t uid);

  /// The reference is stable: it survives later registrations (deque
  /// storage, append-only) and any concurrent GetOrAddPredicate.
  const PredicateInfo& predicate(int id) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    IODB_CHECK_GE(id, 0);
    IODB_CHECK_LT(id, static_cast<int>(predicates_.size()));
    return predicates_[id];
  }
  int num_predicates() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<int>(predicates_.size());
  }

  /// True if every predicate is monadic over the order sort.
  bool AllMonadicOrder() const;

 private:
  // Guards every member. A deque (not vector) holds the predicates so
  // references handed out by predicate() never move under a concurrent
  // registration's growth.
  mutable std::shared_mutex mu_;
  uint64_t uid_;
  std::deque<PredicateInfo> predicates_;
  std::unordered_map<std::string, int> index_;
};

using VocabularyPtr = std::shared_ptr<Vocabulary>;

/// A set of predicate ids, stored densely. This is the alphabet letter of
/// the flexi-word machinery of Section 4: labels D[u] and Φ[t] are
/// PredSets, and the central operation is the subset test.
class PredSet {
 public:
  PredSet() = default;

  /// Creates an empty set able to hold ids 0..num_predicates-1 without
  /// reallocation (it grows on demand anyway).
  explicit PredSet(int num_predicates) {
    words_.resize((num_predicates + 63) / 64, 0);
  }

  /// Adds predicate `id`.
  void Add(int id);
  /// Removes predicate `id` if present.
  void Remove(int id);
  /// Removes every predicate, keeping the allocated capacity (so label
  /// slots can be refilled in place by the incremental model builder).
  void Clear();
  /// Membership test.
  bool Contains(int id) const;
  /// True if no predicate is in the set.
  bool Empty() const;
  /// Number of predicates in the set.
  int Count() const;

  /// Subset test: every id of *this is in `other`.
  bool IsSubsetOf(const PredSet& other) const;
  /// In-place union.
  void UnionWith(const PredSet& other);

  /// The ids in increasing order.
  std::vector<int> Elements() const;

  /// Value hash for container keys.
  size_t Hash() const;

  /// Raw 64-bit words (bit i of word w = membership of predicate 64w+i).
  /// Trailing zero words may be absent; exposed so index structures can
  /// iterate members without materializing Elements().
  const std::vector<uint64_t>& words() const { return words_; }

  friend bool operator==(const PredSet& a, const PredSet& b);

 private:
  // Invariant: trailing zero words are permitted; comparisons normalize.
  std::vector<uint64_t> words_;
};

/// Hash functor for PredSet keys.
struct PredSetHash {
  size_t operator()(const PredSet& s) const { return s.Hash(); }
};

/// Combines a hash into a seed (boost-style).
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
}

/// Hash for small int vectors (state keys in the search engines).
struct IntVectorHash {
  size_t operator()(const std::vector<int>& v) const {
    size_t seed = v.size();
    for (int x : v) HashCombine(seed, static_cast<size_t>(x) * 0x9E3779B1u);
    return seed;
  }
};

}  // namespace iodb

#endif  // IODB_CORE_TYPES_H_
