#include "core/wqo.h"

#include <algorithm>

#include "core/entail_disjunctive.h"
#include "core/seq.h"

namespace iodb {

bool FlexiLeq(const FlexiWord& p, const FlexiWord& q) {
  return FlexiEntails(q, p);
}

bool DbLeq(const NormDb& d1, const NormDb& d2) {
  IODB_CHECK(d1.inequalities.empty());
  IODB_CHECK(d2.inequalities.empty());
  return ForEachPath(d1.dag, d1.labels, [&](const FlexiWord& p) {
    return SeqEntails(d2, p);
  });
}

Database DbOfConjunct(const NormConjunct& conjunct, VocabularyPtr vocab) {
  Database db(std::move(vocab));
  std::vector<int> constant(conjunct.num_order_vars());
  for (int t = 0; t < conjunct.num_order_vars(); ++t) {
    constant[t] =
        db.GetOrAddConstant(conjunct.order_var_names[t], Sort::kOrder);
    for (int pred : conjunct.labels[t].Elements()) {
      db.AddProperAtom(pred, {{Sort::kOrder, constant[t]}});
    }
  }
  for (const LabeledEdge& e : conjunct.dag.edges()) {
    db.AddOrderAtom(constant[e.from], constant[e.to], e.rel);
  }
  return db;
}

CompiledQuery CompiledQuery::CompileConjunctive(const NormConjunct& conjunct) {
  IODB_CHECK(conjunct.IsMonadicOrderOnly());
  CompiledQuery compiled;
  compiled.basis_.push_back(ConjunctPaths(conjunct));
  return compiled;
}

bool CompiledQuery::Entails(const NormDb& db) const {
  for (const std::vector<FlexiWord>& paths : basis_) {
    bool all = true;
    for (const FlexiWord& p : paths) {
      if (!SeqEntails(db, p)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

namespace {

// Distinct candidate symbols for the word-basis search: the labels of the
// query's vertices plus their pairwise unions (unions arise when a single
// model point must satisfy vertices of several disjuncts at once).
std::vector<PredSet> CandidateSymbols(const NormQuery& query) {
  std::vector<PredSet> symbols;
  auto add = [&](const PredSet& s) {
    if (s.Empty()) return;
    if (std::find(symbols.begin(), symbols.end(), s) == symbols.end()) {
      symbols.push_back(s);
    }
  };
  for (const NormConjunct& conjunct : query.disjuncts) {
    for (const PredSet& label : conjunct.labels) add(label);
  }
  const size_t base = symbols.size();
  for (size_t i = 0; i < base; ++i) {
    for (size_t j = i + 1; j < base; ++j) {
      PredSet u = symbols[i];
      u.UnionWith(symbols[j]);
      add(u);
    }
  }
  return symbols;
}

bool WordEntailsQuery(const FlexiWord& word, const NormQuery& query) {
  Database db = DbOfFlexiWord(word, query.vocab);
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  return EntailDisjunctive(norm.value(), query).entailed;
}

}  // namespace

std::vector<FlexiWord> WordBasisSearch(const NormQuery& query, int max_length,
                                       long long max_candidates) {
  IODB_CHECK(query.IsMonadicOrderOnly());
  std::vector<PredSet> alphabet = CandidateSymbols(query);
  std::vector<FlexiWord> entailing;
  long long budget = max_candidates;

  // Breadth-first over word lengths; a word with an entailing proper
  // prefix-shape below it is skipped implicitly by minimality pruning at
  // the end (subwords are visited first because they are shorter).
  std::vector<FlexiWord> frontier{FlexiWord{}};
  for (int len = 1; len <= max_length && budget > 0; ++len) {
    std::vector<FlexiWord> next;
    for (const FlexiWord& w : frontier) {
      for (const PredSet& symbol : alphabet) {
        if (--budget < 0) break;
        FlexiWord extended = w;
        if (!extended.symbols.empty()) {
          extended.rels.push_back(OrderRel::kLt);
        }
        extended.symbols.push_back(symbol);
        // Skip extensions of already-entailing words: they are not minimal.
        bool dominated = false;
        for (const FlexiWord& e : entailing) {
          if (FlexiLeq(e, extended)) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        if (WordEntailsQuery(extended, query)) {
          entailing.push_back(extended);
        } else {
          next.push_back(extended);
        }
      }
    }
    frontier = std::move(next);
  }

  // Keep only the ⪯-minimal entailing words.
  std::vector<FlexiWord> basis;
  for (size_t i = 0; i < entailing.size(); ++i) {
    bool minimal = true;
    for (size_t j = 0; j < entailing.size() && minimal; ++j) {
      if (i == j) continue;
      if (FlexiLeq(entailing[j], entailing[i]) &&
          !FlexiLeq(entailing[i], entailing[j])) {
        minimal = false;
      }
      if (j < i && entailing[j] == entailing[i]) minimal = false;
    }
    if (minimal) basis.push_back(entailing[i]);
  }
  return basis;
}

}  // namespace iodb
