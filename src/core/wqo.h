// Well-quasi-order machinery and basis evaluation (Section 6).
//
// Section 6 proves nonconstructively that every disjunctive monadic query
// has linear-time data complexity: the quasi-order D1 ⊑ D2 (defined by
// Paths(D1) ⪯ Paths(D2), where p ⪯ q iff q |= p) is a well-quasi-order
// (Higman-style argument on flexi-words, Lemma 6.3), entailment is upward
// closed in it (Lemma 6.4), so S(Φ) = {D : D |= Φ} has a finite basis of
// minimal elements, and testing D' ⊒ D for fixed D is linear time.
//
// Constructive pieces implemented here:
//   * the order p ⪯ q on flexi-words and D1 ⊑ D2 on databases;
//   * the exact basis for conjunctive queries: S(Φ) = up-closure of
//     {D_Φ}, where D_Φ is the database with the same labelled dag as Φ
//     (end of Section 6), giving compiled linear-time evaluation;
//   * an experimental bounded search for bases of disjunctive queries
//     over word-shaped candidate databases (the general computation is
//     left open by the paper; this heuristic is validated for soundness,
//     not completeness).

#ifndef IODB_CORE_WQO_H_
#define IODB_CORE_WQO_H_

#include <vector>

#include "core/database.h"
#include "core/flexiword.h"
#include "core/query.h"

namespace iodb {

/// The flexi-word quasi-order of Lemma 6.3: p ⪯ q iff q |= p (q read as a
/// width-one database, p as a sequential query).
bool FlexiLeq(const FlexiWord& p, const FlexiWord& q);

/// The database quasi-order of Section 6: D1 ⊑ D2 iff every path of D1 is
/// entailed by D2. (By Lemma 4.2, "∃q ∈ Paths(D2): q |= p" is exactly
/// "D2 |= p", so Paths(D2) need not be enumerated.) Both databases must be
/// inequality-free; non-monadic facts are ignored.
bool DbLeq(const NormDb& d1, const NormDb& d2);

/// The canonical database D_Φ of a monadic-order-only conjunct: same
/// labelled dag, variables read as order constants.
Database DbOfConjunct(const NormConjunct& conjunct, VocabularyPtr vocab);

/// A compiled monadic query: a finite basis B such that D |= Φ iff
/// B ⊑ D for some B in the basis. Evaluation is |B| SEQ sweeps: linear
/// time in |D| for a fixed compiled query (Theorem 6.5's promise).
class CompiledQuery {
 public:
  /// Compiles a conjunctive monadic query exactly: basis {D_Φ},
  /// represented by its path set.
  static CompiledQuery CompileConjunctive(const NormConjunct& conjunct);

  /// Evaluates the compiled query against a database.
  bool Entails(const NormDb& db) const;

  /// Basis elements, each as the path set of one minimal database.
  const std::vector<std::vector<FlexiWord>>& basis() const { return basis_; }

 private:
  // basis_[i]: the paths of the i-th minimal database; D is entailed iff
  // for some i every path is SEQ-entailed by D.
  std::vector<std::vector<FlexiWord>> basis_;
};

/// Experimental (Section 6 leaves basis computation open): searches for
/// minimal *word-shaped* databases entailing the disjunctive query, by
/// enumerating words over the query's predicate combinations up to
/// `max_length`, keeping the ⪯-minimal entailing ones. The result is a
/// sound under-approximation of the basis restricted to words: every
/// returned word entails the query. `max_candidates` bounds the search.
std::vector<FlexiWord> WordBasisSearch(const NormQuery& query,
                                       int max_length, long long max_candidates);

}  // namespace iodb

#endif  // IODB_CORE_WQO_H_
