#include "graph/antichains.h"

namespace iodb {
namespace {

bool Recurse(const std::vector<int>& candidates, size_t next,
             const std::function<bool(int, int)>& comparable,
             std::vector<int>& current,
             const std::function<bool(const std::vector<int>&)>& fn) {
  for (size_t i = next; i < candidates.size(); ++i) {
    int v = candidates[i];
    bool ok = true;
    for (int u : current) {
      if (comparable(u, v)) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    current.push_back(v);
    if (!fn(current)) return false;
    if (!Recurse(candidates, i + 1, comparable, current, fn)) return false;
    current.pop_back();
  }
  return true;
}

}  // namespace

bool ForEachAntichain(const std::vector<int>& candidates,
                      const std::function<bool(int, int)>& comparable,
                      const std::function<bool(const std::vector<int>&)>& fn) {
  std::vector<int> current;
  return Recurse(candidates, 0, comparable, current, fn);
}

}  // namespace iodb
