// Antichain enumeration.
//
// The model enumerators and the bounded-width engines (Theorems 4.7 / 5.3)
// iterate over antichains of the database dag; for a width-k database there
// are O(|D|^k) of them, which is the source of the polynomial bounds.

#ifndef IODB_GRAPH_ANTICHAINS_H_
#define IODB_GRAPH_ANTICHAINS_H_

#include <functional>
#include <vector>

namespace iodb {

/// Enumerates every nonempty antichain that can be formed from `candidates`
/// (kept in increasing index order inside each emitted antichain).
/// `comparable(u, v)` must return true iff u and v are comparable (some
/// directed path connects them, in either direction). The callback returns
/// false to abort the whole enumeration; ForEachAntichain then returns
/// false as well.
bool ForEachAntichain(const std::vector<int>& candidates,
                      const std::function<bool(int, int)>& comparable,
                      const std::function<bool(const std::vector<int>&)>& fn);

}  // namespace iodb

#endif  // IODB_GRAPH_ANTICHAINS_H_
