#include "graph/digraph.h"

namespace iodb {

const char* OrderRelName(OrderRel rel) {
  return rel == OrderRel::kLt ? "<" : "<=";
}

Digraph::Digraph(int num_vertices) {
  IODB_CHECK_GE(num_vertices, 0);
  out_.resize(num_vertices);
  in_.resize(num_vertices);
}

int Digraph::AddVertex() {
  out_.emplace_back();
  in_.emplace_back();
  return num_vertices() - 1;
}

void Digraph::AddEdge(int from, int to, OrderRel rel) {
  IODB_CHECK_GE(from, 0);
  IODB_CHECK_LT(from, num_vertices());
  IODB_CHECK_GE(to, 0);
  IODB_CHECK_LT(to, num_vertices());
  out_[from].push_back({to, rel});
  in_[to].push_back({from, rel});
  edges_.push_back({from, to, rel});
}

}  // namespace iodb
