// Directed graphs with order-relation edge labels.
//
// This is the backbone of both databases and conjunctive queries: after
// normalization (rules N1/N2 of the paper, Section 2) the order atoms of a
// database or query form a dag whose edges are labelled "<" or "<=".

#ifndef IODB_GRAPH_DIGRAPH_H_
#define IODB_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace iodb {

/// Label of an order-graph edge: `u < v` (strict) or `u <= v`.
enum class OrderRel : uint8_t { kLt = 0, kLe = 1 };

/// Returns "<" or "<=".
const char* OrderRelName(OrderRel rel);

/// A directed edge with an order label.
struct LabeledEdge {
  int from = 0;
  int to = 0;
  OrderRel rel = OrderRel::kLe;

  friend bool operator==(const LabeledEdge&, const LabeledEdge&) = default;
};

/// A mutable directed multigraph over vertices 0..n-1 with labelled edges.
/// Parallel edges are permitted (engines deduplicate where it matters).
class Digraph {
 public:
  /// An adjacency entry: the neighbour and the label of the connecting edge.
  struct Arc {
    int vertex;
    OrderRel rel;
  };

  /// Creates a graph with `num_vertices` isolated vertices.
  explicit Digraph(int num_vertices = 0);

  /// Appends a fresh isolated vertex and returns its index.
  int AddVertex();

  /// Adds the edge `from -> to` with label `rel`. Self-loops allowed at this
  /// layer (normalization removes or rejects them).
  void AddEdge(int from, int to, OrderRel rel);

  int num_vertices() const { return static_cast<int>(out_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  /// Outgoing arcs of `v`.
  const std::vector<Arc>& out(int v) const { return out_[v]; }
  /// Incoming arcs of `v` (Arc::vertex is the source).
  const std::vector<Arc>& in(int v) const { return in_[v]; }
  /// All edges in insertion order.
  const std::vector<LabeledEdge>& edges() const { return edges_; }

 private:
  std::vector<std::vector<Arc>> out_;
  std::vector<std::vector<Arc>> in_;
  std::vector<LabeledEdge> edges_;
};

}  // namespace iodb

#endif  // IODB_GRAPH_DIGRAPH_H_
