#include "graph/matching.h"

#include <limits>

#include "util/check.h"

namespace iodb {
namespace {

constexpr int kInf = std::numeric_limits<int>::max();

// Hopcroft–Karp state shared across phases.
struct HkState {
  const std::vector<std::vector<int>>& adj;
  std::vector<int> match_l;  // left -> right or -1
  std::vector<int> match_r;  // right -> left or -1
  std::vector<int> dist;     // BFS layer per left vertex
  std::vector<int> queue;
};

bool Bfs(HkState& s) {
  s.queue.clear();
  const int nl = static_cast<int>(s.match_l.size());
  bool reachable_free = false;
  for (int l = 0; l < nl; ++l) {
    if (s.match_l[l] == -1) {
      s.dist[l] = 0;
      s.queue.push_back(l);
    } else {
      s.dist[l] = kInf;
    }
  }
  for (size_t head = 0; head < s.queue.size(); ++head) {
    int l = s.queue[head];
    for (int r : s.adj[l]) {
      int l2 = s.match_r[r];
      if (l2 == -1) {
        reachable_free = true;
      } else if (s.dist[l2] == kInf) {
        s.dist[l2] = s.dist[l] + 1;
        s.queue.push_back(l2);
      }
    }
  }
  return reachable_free;
}

bool Dfs(HkState& s, int l) {
  for (int r : s.adj[l]) {
    int l2 = s.match_r[r];
    if (l2 == -1 || (s.dist[l2] == s.dist[l] + 1 && Dfs(s, l2))) {
      s.match_l[l] = r;
      s.match_r[r] = l;
      return true;
    }
  }
  s.dist[l] = kInf;
  return false;
}

}  // namespace

int MaxBipartiteMatching(int num_left, int num_right,
                         const std::vector<std::vector<int>>& adj,
                         std::vector<int>* match_left) {
  IODB_CHECK_EQ(static_cast<int>(adj.size()), num_left);
  HkState s{adj, std::vector<int>(num_left, -1),
            std::vector<int>(num_right, -1), std::vector<int>(num_left, 0),
            {}};
  int matching = 0;
  while (Bfs(s)) {
    for (int l = 0; l < num_left; ++l) {
      if (s.match_l[l] == -1 && Dfs(s, l)) ++matching;
    }
  }
  if (match_left != nullptr) *match_left = s.match_l;
  return matching;
}

}  // namespace iodb
