// Maximum bipartite matching (Hopcroft–Karp).
//
// Substrate for the width computation: by Dilworth's theorem the width of a
// dag (maximum antichain) equals the minimum number of chains covering it,
// which is n minus a maximum matching in the "split" bipartite graph of the
// transitive closure.

#ifndef IODB_GRAPH_MATCHING_H_
#define IODB_GRAPH_MATCHING_H_

#include <vector>

namespace iodb {

/// Computes a maximum matching in the bipartite graph with `num_left` left
/// vertices, `num_right` right vertices and adjacency `adj` (adj[l] lists
/// the right neighbours of left vertex l). Returns the matching size;
/// if `match_left` is non-null it receives, per left vertex, the matched
/// right vertex or -1.
int MaxBipartiteMatching(int num_left, int num_right,
                         const std::vector<std::vector<int>>& adj,
                         std::vector<int>* match_left = nullptr);

}  // namespace iodb

#endif  // IODB_GRAPH_MATCHING_H_
