#include "graph/reachability_index.h"

#include <algorithm>

#include "util/check.h"

namespace iodb {
namespace {

// Emits the two product-graph edges of one labelled dag edge. A "<=" edge
// preserves the crossed-"<" state; a "<" edge forces it to 1.
template <typename Emit>
void ProductEdges(const LabeledEdge& e, Emit&& emit) {
  if (e.rel == OrderRel::kLe) {
    emit(2 * e.from, 2 * e.to);
    emit(2 * e.from + 1, 2 * e.to + 1);
  } else {
    emit(2 * e.from, 2 * e.to + 1);
    emit(2 * e.from + 1, 2 * e.to + 1);
  }
}

}  // namespace

ReachabilityIndex::ReachabilityIndex(const Digraph& dag, int max_intervals)
    : n_(dag.num_vertices()),
      max_intervals_(std::max(1, max_intervals)),
      edge_log_(dag.edges()) {
  Rebuild();
}

void ReachabilityIndex::Rebuild() {
  ++rebuilds_;
  base_vertices_ = n_;
  base_edges_ = edge_log_.size();
  delta_.clear();

  const int P = 2 * n_;
  // Product adjacency, CSR.
  adj_off_.assign(P + 1, 0);
  for (const LabeledEdge& e : edge_log_) {
    IODB_CHECK(e.from >= 0 && e.from < n_ && e.to >= 0 && e.to < n_);
    ProductEdges(e, [&](int a, int) { ++adj_off_[a + 1]; });
  }
  for (int v = 0; v < P; ++v) adj_off_[v + 1] += adj_off_[v];
  adj_.resize(adj_off_[P]);
  {
    std::vector<int> cursor(adj_off_.begin(), adj_off_.end() - 1);
    for (const LabeledEdge& e : edge_log_) {
      ProductEdges(e, [&](int a, int b) { adj_[cursor[a]++] = b; });
    }
  }

  // Topological order of the product (Kahn); the product of a dag is a
  // dag, so a leftover node means the input had a cycle.
  std::vector<int> in_deg(P, 0);
  for (int b : adj_) ++in_deg[b];
  std::vector<int> topo;
  topo.reserve(P);
  for (int v = 0; v < P; ++v) {
    if (in_deg[v] == 0) topo.push_back(v);
  }
  for (size_t head = 0; head < topo.size(); ++head) {
    const int v = topo[head];
    for (int k = adj_off_[v]; k < adj_off_[v + 1]; ++k) {
      if (--in_deg[adj_[k]] == 0) topo.push_back(adj_[k]);
    }
  }
  IODB_CHECK_EQ(static_cast<int>(topo.size()), P);  // acyclic input only

  // DFS spanning forest, postorder numbering. Subtrees are contiguous
  // postorder ranges, so the interval merge below mostly coalesces.
  post_.assign(P, -1);
  node_of_post_.assign(P, 0);
  int counter = 0;
  std::vector<uint8_t> seen(P, 0);
  std::vector<std::pair<int, int>> stack;  // (node, next out-arc index)
  for (int root : topo) {
    if (seen[root]) continue;
    seen[root] = 1;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& top = stack.back();
      const int v = top.first;
      if (top.second < adj_off_[v + 1] - adj_off_[v]) {
        const int child = adj_[adj_off_[v] + top.second++];
        if (!seen[child]) {
          seen[child] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        post_[v] = counter;
        node_of_post_[counter] = v;
        ++counter;
        stack.pop_back();
      }
    }
  }

  // Interval lists, reverse topological order (successors first): the
  // list of v is its own postorder singleton merged with the lists of
  // its out-neighbours, coalesced, then pruned to the cap (merging the
  // smallest gaps first; a gap-spanning interval is approximate).
  std::vector<std::vector<Interval>> lists(P);
  std::vector<Interval> scratch;
  for (int idx = P - 1; idx >= 0; --idx) {
    const int v = topo[idx];
    scratch.clear();
    scratch.push_back(Interval{post_[v], post_[v], true});
    for (int k = adj_off_[v]; k < adj_off_[v + 1]; ++k) {
      const std::vector<Interval>& child = lists[adj_[k]];
      scratch.insert(scratch.end(), child.begin(), child.end());
    }
    std::sort(scratch.begin(), scratch.end(),
              [](const Interval& a, const Interval& b) {
                if (a.lo != b.lo) return a.lo < b.lo;
                return a.hi > b.hi;  // wider first, so containment merges
              });
    std::vector<Interval>& out = lists[v];
    out.clear();
    for (const Interval& iv : scratch) {
      if (!out.empty() && iv.lo <= out.back().hi + 1) {
        Interval& b = out.back();
        // The union stays exact when both parts are, when the new part
        // sits inside an exact one, or when an exact part covers it all.
        bool exact;
        if (b.exact && iv.exact) {
          exact = true;
        } else if (b.exact && iv.hi <= b.hi) {
          exact = true;
        } else {
          exact = iv.exact && iv.lo <= b.lo && iv.hi >= b.hi;
        }
        b.hi = std::max(b.hi, iv.hi);
        b.exact = exact;
      } else {
        out.push_back(iv);
      }
    }
    while (static_cast<int>(out.size()) > max_intervals_) {
      size_t best = 0;
      int best_gap = out[1].lo - out[0].hi;
      for (size_t i = 1; i + 1 < out.size(); ++i) {
        const int gap = out[i + 1].lo - out[i].hi;
        if (gap < best_gap) {
          best_gap = gap;
          best = i;
        }
      }
      out[best].hi = out[best + 1].hi;
      out[best].exact = false;
      out.erase(out.begin() + static_cast<long>(best) + 1);
    }
  }

  interval_off_.assign(P + 1, 0);
  for (int v = 0; v < P; ++v) {
    interval_off_[v + 1] =
        interval_off_[v] + static_cast<int>(lists[v].size());
  }
  intervals_.clear();
  intervals_.reserve(interval_off_[P]);
  for (int v = 0; v < P; ++v) {
    intervals_.insert(intervals_.end(), lists[v].begin(), lists[v].end());
  }
}

bool ReachabilityIndex::IntervalCovers(int a, int p) const {
  const Interval* begin = intervals_.data() + interval_off_[a];
  const Interval* end = intervals_.data() + interval_off_[a + 1];
  // Last interval with lo <= p.
  const Interval* it = std::upper_bound(
      begin, end, p, [](int x, const Interval& iv) { return x < iv.lo; });
  return it != begin && (it - 1)->hi >= p;
}

bool ReachabilityIndex::BaseReaches(int a, int b, bool* walked) const {
  if (a == b) return true;
  const int pb = post_[b];
  const Interval* begin = intervals_.data() + interval_off_[a];
  const Interval* end = intervals_.data() + interval_off_[a + 1];
  const Interval* it = std::upper_bound(
      begin, end, pb, [](int x, const Interval& iv) { return x < iv.lo; });
  if (it == begin || (it - 1)->hi < pb) return false;  // outside every interval
  if ((it - 1)->exact) return true;
  // Approximate hit: verify by DFS pruned to branches whose interval
  // lists still cover the target postorder.
  *walked = true;
  std::vector<uint8_t> seen(2 * base_vertices_, 0);
  std::vector<int> stack{a};
  seen[a] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int k = adj_off_[v]; k < adj_off_[v + 1]; ++k) {
      const int child = adj_[k];
      if (child == b) return true;
      if (!seen[child] && IntervalCovers(child, pb)) {
        seen[child] = 1;
        stack.push_back(child);
      }
    }
  }
  return false;
}

bool ReachabilityIndex::ReachesProduct(int a, int b, bool* walked) const {
  if (a == b) return true;
  const int base_nodes = 2 * base_vertices_;
  const bool b_base = b < base_nodes;
  if (a < base_nodes && b_base && BaseReaches(a, b, walked)) return true;
  if (delta_.empty()) return false;
  // Appended edges: bounded search alternating base-reachability hops
  // and delta edges.
  *walked = true;
  std::vector<uint8_t> seen(2 * n_, 0);
  std::vector<int> frontier{a};
  seen[a] = 1;
  bool ignored = false;
  for (size_t head = 0; head < frontier.size(); ++head) {
    const int w = frontier[head];
    if (w == b) return true;
    if (head > 0 && b_base && w < base_nodes && BaseReaches(w, b, &ignored)) {
      return true;
    }
    for (const auto& [x, y] : delta_) {
      if (seen[y]) continue;
      bool hops = x == w;
      if (!hops && w < base_nodes && x < base_nodes) {
        hops = BaseReaches(w, x, &ignored);
      }
      if (hops) {
        seen[y] = 1;
        frontier.push_back(y);
      }
    }
  }
  return false;
}

bool ReachabilityIndex::Reaches(int u, int v, ReachProbeStats* stats) const {
  bool walked = false;
  bool result = true;
  if (u != v) {
    result = ReachesProduct(2 * u, 2 * v, &walked) ||
             ReachesProduct(2 * u, 2 * v + 1, &walked);
  }
  if (stats != nullptr) {
    ++stats->probes;
    ++(walked ? stats->fallbacks : stats->fast_hits);
  }
  return result;
}

bool ReachabilityIndex::StrictlyReaches(int u, int v,
                                        ReachProbeStats* stats) const {
  bool walked = false;
  const bool result = ReachesProduct(2 * u, 2 * v + 1, &walked);
  if (stats != nullptr) {
    ++stats->probes;
    ++(walked ? stats->fallbacks : stats->fast_hits);
  }
  return result;
}

bool ReachabilityIndex::Comparable(int u, int v,
                                   ReachProbeStats* stats) const {
  bool walked = false;
  bool result = u == v;
  if (!result) {
    result = ReachesProduct(2 * u, 2 * v, &walked) ||
             ReachesProduct(2 * u, 2 * v + 1, &walked) ||
             ReachesProduct(2 * v, 2 * u, &walked) ||
             ReachesProduct(2 * v, 2 * u + 1, &walked);
  }
  if (stats != nullptr) {
    ++stats->probes;
    ++(walked ? stats->fallbacks : stats->fast_hits);
  }
  return result;
}

void ReachabilityIndex::CollectReachable(int u, std::vector<int>* weak,
                                         std::vector<int>* strict,
                                         std::vector<uint8_t>* scratch) const {
  IODB_CHECK(scratch != nullptr);
  std::vector<uint8_t>& seen = *scratch;
  seen.assign(2 * static_cast<size_t>(n_), 0);
  const int base_nodes = 2 * base_vertices_;
  std::vector<int> stack{2 * u};
  seen[2 * u] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (v < base_nodes) {
      for (int k = adj_off_[v]; k < adj_off_[v + 1]; ++k) {
        const int child = adj_[k];
        if (!seen[child]) {
          seen[child] = 1;
          stack.push_back(child);
        }
      }
    }
    if (!delta_.empty()) {
      for (const auto& [x, y] : delta_) {
        if (x == v && !seen[y]) {
          seen[y] = 1;
          stack.push_back(y);
        }
      }
    }
  }
  for (int v = 0; v < n_; ++v) {
    if (weak != nullptr && v != u && (seen[2 * v] || seen[2 * v + 1])) {
      weak->push_back(v);
    }
    if (strict != nullptr && seen[2 * v + 1]) strict->push_back(v);
  }
}

int ReachabilityIndex::AddVertex() { return n_++; }

void ReachabilityIndex::AppendEdges(std::span<const LabeledEdge> edges) {
  for (const LabeledEdge& e : edges) {
    IODB_CHECK(e.from >= 0 && e.from < n_ && e.to >= 0 && e.to < n_);
    edge_log_.push_back(e);
    ProductEdges(e, [&](int a, int b) { delta_.emplace_back(a, b); });
  }
  MaybeRebuild();
}

void ReachabilityIndex::MaybeRebuild() {
  const size_t appended = edge_log_.size() - base_edges_;
  // Small grace so tiny graphs don't rebuild per append.
  if (static_cast<double>(appended) >
      kRebuildDirtyRatio * static_cast<double>(base_edges_) + 8.0) {
    Rebuild();
  }
}

void ReachabilityIndex::RewindTo(const Checkpoint& mark) {
  IODB_CHECK_LE(mark.num_edges, edge_log_.size());
  IODB_CHECK_LE(mark.num_vertices, n_);
  edge_log_.resize(mark.num_edges);
  n_ = mark.num_vertices;
  if (base_edges_ > mark.num_edges || base_vertices_ > mark.num_vertices) {
    // The base build folded in state past the mark; rebuild from the
    // truncated log.
    Rebuild();
  } else {
    delta_.resize(2 * (mark.num_edges - base_edges_));
  }
}

bool ReachabilityIndex::all_exact() const {
  for (const Interval& iv : intervals_) {
    if (!iv.exact) return false;
  }
  return true;
}

}  // namespace iodb
