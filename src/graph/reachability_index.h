// FERRARI-style interval-list reachability index for order dags.
//
// Every entailment engine bottoms out in the same primitive — "is point
// u (strictly) before point v?" — which the closure-based path answers
// from an O(n²)-bit matrix rebuilt per database. This index answers the
// same probes from per-vertex interval lists over a DFS postorder
// numbering (cf. the FERRARI index of Seufert et al.): a spanning-forest
// subtree is one exact interval, cross edges merge in further intervals,
// and lists longer than a cap are coalesced into approximate intervals
// whose misses fall back to a pruned DFS. Build time is near-linear in
// the dag, probes are O(log cap) interval containment tests, and the
// structure maintains itself incrementally under edge appends with a
// LIFO checkpoint/rewind discipline mirroring ModelBuilder and the
// service APPEND/WAL-replay paths.
//
// Strictness ("some path crosses a '<' edge") is folded in by indexing
// the 2-state product graph: product node 2v+s stands for "at v, having
// crossed a '<' edge iff s". A "<=" edge u->v contributes (u,0)->(v,0)
// and (u,1)->(v,1); a "<" edge contributes (u,0)->(v,1) and (u,1)->(v,1).
// The product of a dag is a dag, weak reachability is (u,0) ->* (v,0|1),
// and strict reachability is (u,0) ->* (v,1) — one index serves both.
//
// Thread safety: all probe and collect methods are const and touch no
// shared mutable state (fallback walks allocate locally; statistics go
// to caller-provided out-params), so one index may serve many readers
// concurrently. Mutating methods (AppendEdges/AddVertex/RewindTo) need
// external exclusion, as usual.

#ifndef IODB_GRAPH_REACHABILITY_INDEX_H_
#define IODB_GRAPH_REACHABILITY_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/digraph.h"

namespace iodb {

/// Probe-side work counters. Each public probe counts once: as a fast
/// hit when it was answered purely from interval containment (or an
/// empty-delta short circuit), as a fallback when any graph walk —
/// approximate-interval verification or delta-edge search — was needed.
struct ReachProbeStats {
  long long probes = 0;
  long long fast_hits = 0;
  long long fallbacks = 0;

  void Accumulate(const ReachProbeStats& other) {
    probes += other.probes;
    fast_hits += other.fast_hits;
    fallbacks += other.fallbacks;
  }
};

class ReachabilityIndex {
 public:
  /// Interval lists longer than the cap are coalesced (smallest gap
  /// first) into approximate intervals. 16 keeps fallbacks rare on the
  /// dag shapes normalization produces; tests shrink it to force the
  /// fallback machinery.
  static constexpr int kDefaultMaxIntervals = 16;

  /// Appended edges are folded into the base structure (a full near-
  /// linear rebuild) once the delta exceeds this fraction of the base
  /// edge count; until then probes consult the delta by bounded search.
  static constexpr double kRebuildDirtyRatio = 0.25;

  /// Builds the index for an acyclic `dag` (aborts on a cycle, matching
  /// ComputeReachability).
  explicit ReachabilityIndex(const Digraph& dag,
                             int max_intervals = kDefaultMaxIntervals);

  int num_vertices() const { return n_; }
  size_t num_edges() const { return edge_log_.size(); }

  /// There is a (possibly empty) directed path u -> v.
  bool Reaches(int u, int v, ReachProbeStats* stats = nullptr) const;
  /// There is a path u -> v crossing a "<" edge (false for u == v).
  bool StrictlyReaches(int u, int v, ReachProbeStats* stats = nullptr) const;
  /// Reaches(u, v) || Reaches(v, u), counted as one probe.
  bool Comparable(int u, int v, ReachProbeStats* stats = nullptr) const;

  /// Appends every v != u with Reaches(u, v) to `weak` and every v with
  /// StrictlyReaches(u, v) to `strict` (both in increasing vertex order;
  /// strict is a subset of weak ∪ {u}). `scratch` is a caller-held seen
  /// buffer reused across calls (cleared and resized internally).
  void CollectReachable(int u, std::vector<int>* weak,
                        std::vector<int>* strict,
                        std::vector<uint8_t>* scratch) const;

  /// Appends a fresh isolated vertex and returns its index. Counts
  /// toward the checkpoint/rewind discipline like an edge append.
  int AddVertex();

  /// Appends edges to the indexed dag. The edges must keep the graph
  /// acyclic (violations surface on the next rebuild, matching the
  /// closure path's contract). May trigger a rebuild per the dirty-ratio
  /// policy.
  void AppendEdges(std::span<const LabeledEdge> edges);

  /// A LIFO checkpoint: RewindTo(Mark()) restores the indexed graph (and
  /// all probe answers) to the state at Mark(). Marks must be rewound in
  /// reverse order of creation (the usual ModelBuilder discipline).
  struct Checkpoint {
    int num_vertices = 0;
    size_t num_edges = 0;
  };
  Checkpoint Mark() const { return {n_, edge_log_.size()}; }
  void RewindTo(const Checkpoint& mark);

  /// The full logged edge history, in append order. Callers reusing an
  /// index across graph revisions compare this against the new graph's
  /// edge list: when it is a strict prefix, AddVertex + AppendEdges bring
  /// the index up to date without a rebuild.
  const std::vector<LabeledEdge>& edge_log() const { return edge_log_; }

  /// Number of base rebuilds since construction (the initial build
  /// counts as one). Surfaces through ModelCheckStats::index_rebuilds.
  long long rebuilds() const { return rebuilds_; }

  /// Appended-but-unmerged edges relative to the base build.
  size_t delta_edges() const { return delta_.size() / 2; }

  /// Introspection for tests and benches: total intervals stored, and
  /// whether every interval is exact (no probe can ever fall back to an
  /// approximate-interval walk).
  size_t total_intervals() const { return intervals_.size(); }
  bool all_exact() const;

 private:
  struct Interval {
    int lo = 0;
    int hi = 0;
    bool exact = true;
  };

  // Rebuilds the base structure from the full edge log.
  void Rebuild();
  void MaybeRebuild();

  // Product-graph probe: is product node `b` reachable from `a`?
  // `walked` is set when the answer needed a graph walk.
  bool ReachesProduct(int a, int b, bool* walked) const;
  bool BaseReaches(int a, int b, bool* walked) const;
  // Does some interval of product node `a` contain postorder `p`?
  bool IntervalCovers(int a, int p) const;

  int n_ = 0;  // vertices of the indexed dag
  int max_intervals_;
  long long rebuilds_ = 0;

  // The full edge history; the prefix [0, base_edges_) over the first
  // base_vertices_ vertices is what the base structure reflects.
  std::vector<LabeledEdge> edge_log_;
  int base_vertices_ = 0;
  size_t base_edges_ = 0;

  // Base structure over the product graph (2 * base_vertices_ nodes).
  std::vector<int> post_;          // product node -> postorder number
  std::vector<int> node_of_post_;  // inverse
  std::vector<int> adj_;           // product adjacency, CSR
  std::vector<int> adj_off_;
  std::vector<Interval> intervals_;  // per-node interval lists, flattened
  std::vector<int> interval_off_;

  // Product edges appended after the base build; exactly two per logged
  // edge, in log order (so RewindTo can truncate positionally).
  std::vector<std::pair<int, int>> delta_;
};

}  // namespace iodb

#endif  // IODB_GRAPH_REACHABILITY_INDEX_H_
