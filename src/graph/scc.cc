#include "graph/scc.h"

#include <algorithm>

namespace iodb {

SccResult StronglyConnectedComponents(const Digraph& graph) {
  const int n = graph.num_vertices();
  SccResult result;
  result.component.assign(n, -1);

  // Iterative Tarjan. `index` / `lowlink` per vertex; explicit DFS stack of
  // (vertex, next-arc-position) frames to stay safe on deep graphs.
  std::vector<int> index(n, -1);
  std::vector<int> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::pair<int, size_t>> frames;
  int next_index = 0;

  for (int root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    frames.emplace_back(root, 0);
    while (!frames.empty()) {
      auto& [v, arc_pos] = frames.back();
      if (arc_pos == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      bool descended = false;
      const auto& arcs = graph.out(v);
      while (arc_pos < arcs.size()) {
        int w = arcs[arc_pos].vertex;
        ++arc_pos;
        if (index[w] == -1) {
          frames.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        // v is the root of a component; pop it.
        for (;;) {
          int w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component[w] = result.num_components;
          if (w == v) break;
        }
        ++result.num_components;
      }
      int finished = v;
      frames.pop_back();
      if (!frames.empty()) {
        int parent = frames.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
      }
    }
  }
  return result;
}

}  // namespace iodb
