// Strongly connected components (iterative Tarjan).
//
// Used by normalization rule N1 (Section 2): constants linked by a cycle of
// "<=" edges denote the same point and are identified; a "<" edge inside a
// strongly connected component makes the database or query inconsistent.

#ifndef IODB_GRAPH_SCC_H_
#define IODB_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"

namespace iodb {

/// Result of an SCC decomposition.
struct SccResult {
  /// component[v] is the component index of vertex v. Components are
  /// numbered in reverse topological order of the condensation (i.e. if
  /// there is an edge from component a to component b, then a > b).
  std::vector<int> component;
  int num_components = 0;
};

/// Decomposes `graph` into strongly connected components, considering all
/// edges regardless of label.
SccResult StronglyConnectedComponents(const Digraph& graph);

}  // namespace iodb

#endif  // IODB_GRAPH_SCC_H_
