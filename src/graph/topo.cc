#include "graph/topo.h"

#include <algorithm>
#include <array>

namespace iodb {

BitMatrix::BitMatrix(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_(static_cast<size_t>((cols + 63) / 64)),
      words_(static_cast<size_t>(rows) * words_per_row_, 0) {}

void BitMatrix::OrRowInto(int other, int r) {
  uint64_t* dst = &words_[static_cast<size_t>(r) * words_per_row_];
  const uint64_t* src = &words_[static_cast<size_t>(other) * words_per_row_];
  for (size_t i = 0; i < words_per_row_; ++i) dst[i] |= src[i];
}

std::vector<int> TopologicalOrder(const Digraph& graph) {
  const int n = graph.num_vertices();
  std::vector<int> indegree(n, 0);
  for (const LabeledEdge& e : graph.edges()) ++indegree[e.to];
  std::vector<int> queue;
  queue.reserve(n);
  for (int v = 0; v < n; ++v) {
    if (indegree[v] == 0) queue.push_back(v);
  }
  std::vector<int> order;
  order.reserve(n);
  for (size_t head = 0; head < queue.size(); ++head) {
    int v = queue[head];
    order.push_back(v);
    for (const Digraph::Arc& arc : graph.out(v)) {
      if (--indegree[arc.vertex] == 0) queue.push_back(arc.vertex);
    }
  }
  if (static_cast<int>(order.size()) != n) return {};
  return order;
}

bool HasCycle(const Digraph& graph) {
  return graph.num_vertices() > 0 && TopologicalOrder(graph).empty();
}

Reachability ComputeReachability(const Digraph& graph) {
  const int n = graph.num_vertices();
  Reachability r(n);
  std::vector<int> order = TopologicalOrder(graph);
  IODB_CHECK(n == 0 || !order.empty());  // input must be acyclic

  // DP in reverse topological order (successors complete before u):
  //   reach(u)  = {u} ∪ ⋃_{(u,h)} reach(h)
  //   strict(u) = ⋃_{(u,h) labelled <} reach(h) ∪ ⋃_{(u,h)} strict(h)
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int u = *it;
    r.reach.Set(u, u);
    for (const Digraph::Arc& arc : graph.out(u)) {
      r.reach.OrRowInto(arc.vertex, u);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    int u = *it;
    for (const Digraph::Arc& arc : graph.out(u)) {
      int h = arc.vertex;
      if (arc.rel == OrderRel::kLt) {
        for (int c = 0; c < n; ++c) {
          if (r.reach.Get(h, c)) r.strict.Set(u, c);
        }
      }
      r.strict.OrRowInto(h, u);
    }
  }
  return r;
}

std::vector<bool> MinorVertices(const Digraph& graph,
                                const std::vector<bool>& alive) {
  const int n = graph.num_vertices();
  IODB_CHECK_EQ(static_cast<int>(alive.size()), n);
  // v is minor iff every alive in-arc (u, v) has label "<=" and u is minor.
  // Propagate in topological order of the alive subgraph.
  std::vector<int> remaining(n, 0);
  for (const LabeledEdge& e : graph.edges()) {
    if (alive[e.from] && alive[e.to]) ++remaining[e.to];
  }
  std::vector<int> queue;
  std::vector<bool> minor(n, false);
  for (int v = 0; v < n; ++v) {
    if (alive[v] && remaining[v] == 0) {
      queue.push_back(v);
      minor[v] = true;  // no alive in-arcs at all
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    int v = queue[head];
    for (const Digraph::Arc& arc : graph.out(v)) {
      int w = arc.vertex;
      if (!alive[w]) continue;
      if (--remaining[w] == 0) {
        bool w_minor = true;
        for (const Digraph::Arc& in_arc : graph.in(w)) {
          if (!alive[in_arc.vertex]) continue;
          if (in_arc.rel == OrderRel::kLt || !minor[in_arc.vertex]) {
            w_minor = false;
            break;
          }
        }
        minor[w] = w_minor;
        queue.push_back(w);
      }
    }
  }
  return minor;
}

std::vector<int> MinimalVertices(const Digraph& graph,
                                 const std::vector<bool>& alive) {
  const int n = graph.num_vertices();
  IODB_CHECK_EQ(static_cast<int>(alive.size()), n);
  std::vector<int> result;
  for (int v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    bool minimal = true;
    for (const Digraph::Arc& arc : graph.in(v)) {
      if (alive[arc.vertex]) {
        minimal = false;
        break;
      }
    }
    if (minimal) result.push_back(v);
  }
  return result;
}

namespace {

// Reach / strict-reach from `from` to `to` in `graph` with one edge
// (identified by endpoints + label) excluded.
bool ImpliedWithoutEdge(const Digraph& graph, const LabeledEdge& excluded) {
  const int n = graph.num_vertices();
  // BFS over states (vertex, crossed_lt): at most 2n states.
  std::vector<std::array<bool, 2>> seen(n, {false, false});
  std::vector<std::pair<int, bool>> queue;
  queue.emplace_back(excluded.from, false);
  seen[excluded.from][0] = true;
  for (size_t head = 0; head < queue.size(); ++head) {
    auto [v, strict] = queue[head];
    for (const Digraph::Arc& arc : graph.out(v)) {
      // The edge under test is removed for the implication check.
      if (v == excluded.from && arc.vertex == excluded.to &&
          arc.rel == excluded.rel) {
        continue;
      }
      bool next_strict = strict || arc.rel == OrderRel::kLt;
      if (arc.vertex == excluded.to) {
        if (excluded.rel == OrderRel::kLe || next_strict) return true;
      }
      if (!seen[arc.vertex][next_strict]) {
        seen[arc.vertex][next_strict] = true;
        queue.emplace_back(arc.vertex, next_strict);
      }
    }
  }
  return false;
}

}  // namespace

Digraph TransitiveReduce(const Digraph& graph) {
  // Sequential removal is sound: in an acyclic deduplicated graph an edge
  // implied through another edge cannot in turn help imply it (that would
  // close a cycle), so the result does not depend on order; still, test
  // each edge against the graph with previously dropped edges removed for
  // robustness.
  Digraph current = graph;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LabeledEdge& e : current.edges()) {
      if (ImpliedWithoutEdge(current, e)) {
        Digraph next(current.num_vertices());
        bool dropped = false;
        for (const LabeledEdge& f : current.edges()) {
          if (!dropped && f == e) {
            dropped = true;
            continue;
          }
          next.AddEdge(f.from, f.to, f.rel);
        }
        current = std::move(next);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace iodb
