// Topological utilities for order dags: cycle checks, topological order,
// reachability (plain and "through a < edge"), and minor vertices.
//
// Terminology follows the paper (Section 2):
//  * u "reaches" v if there is a directed path from u to v;
//  * u "strictly reaches" v if some such path passes through a "<" edge;
//  * a vertex is MINIMAL in a subgraph if it has no incoming edge;
//  * a vertex is MINOR if no ascending path ending in it passes through a
//    "<" edge (equivalently: all its ancestors reach it via "<=" edges
//    only). Minor vertices may be merged with "the next point" during the
//    generalized topological sort.

#ifndef IODB_GRAPH_TOPO_H_
#define IODB_GRAPH_TOPO_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"

namespace iodb {

/// A dense bit matrix, row-major; rows are vertex-indexed bitsets.
class BitMatrix {
 public:
  BitMatrix(int rows, int cols);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  bool Get(int r, int c) const {
    return (words_[Index(r, c)] >> (c & 63)) & 1;
  }
  void Set(int r, int c) { words_[Index(r, c)] |= uint64_t{1} << (c & 63); }

  /// rows_[r] |= rows_[other]: used for reachability DP.
  void OrRowInto(int other, int r);

 private:
  size_t Index(int r, int c) const {
    return static_cast<size_t>(r) * words_per_row_ + (c >> 6);
  }

  int rows_;
  int cols_;
  size_t words_per_row_;
  std::vector<uint64_t> words_;
};

/// Returns a topological order of `graph` (all edge labels treated alike),
/// or an empty vector if the graph has a cycle and is nonempty.
std::vector<int> TopologicalOrder(const Digraph& graph);

/// True if `graph` contains a directed cycle (any labels).
bool HasCycle(const Digraph& graph);

/// Reachability data for a dag.
struct Reachability {
  /// reach.Get(u, v): there is a path (possibly empty) from u to v.
  /// The diagonal is set (u reaches u).
  BitMatrix reach;
  /// strict.Get(u, v): there is a path from u to v through a "<" edge.
  BitMatrix strict;

  Reachability(int n) : reach(n, n), strict(n, n) {}
};

/// Computes reachability for an acyclic `graph`. Aborts on cyclic input.
Reachability ComputeReachability(const Digraph& graph);

/// Returns, for each vertex, whether it is minor within the sub-dag induced
/// by `alive` (vertices v with alive[v] true). Dead vertices map to false.
std::vector<bool> MinorVertices(const Digraph& graph,
                                const std::vector<bool>& alive);

/// Returns the minimal vertices (no incoming edge from an alive vertex)
/// of the sub-dag induced by `alive`, in increasing index order.
std::vector<int> MinimalVertices(const Digraph& graph,
                                 const std::vector<bool>& alive);

/// Labelled transitive reduction of an acyclic graph: drops every edge
/// whose constraint is implied by the remaining edges (a "<=" edge with
/// an alternative directed path, a "<" edge with an alternative path
/// crossing a "<" edge). The result imposes exactly the same reachability
/// and strictness; for deduplicated dags the result is unique (two
/// distinct edges cannot imply each other without creating a cycle).
Digraph TransitiveReduce(const Digraph& graph);

}  // namespace iodb

#endif  // IODB_GRAPH_TOPO_H_
