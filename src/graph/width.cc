#include "graph/width.h"

#include "graph/matching.h"
#include "util/check.h"

namespace iodb {
namespace {

// Builds the split bipartite graph of the transitive closure: an edge from
// left-u to right-v whenever u reaches v and u != v. Chains of the dag are
// exactly path covers of this graph.
std::vector<std::vector<int>> ClosureBipartite(const Digraph& graph,
                                               const Reachability& reach) {
  const int n = graph.num_vertices();
  std::vector<std::vector<int>> adj(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v && reach.reach.Get(u, v)) adj[u].push_back(v);
    }
  }
  return adj;
}

}  // namespace

int DagWidth(const Digraph& graph, const Reachability& reach) {
  const int n = graph.num_vertices();
  if (n == 0) return 0;
  auto adj = ClosureBipartite(graph, reach);
  int matching = MaxBipartiteMatching(n, n, adj);
  // Dilworth + Fulkerson: max antichain = min chain cover = n - matching.
  return n - matching;
}

int DagWidth(const Digraph& graph) {
  if (graph.num_vertices() == 0) return 0;
  return DagWidth(graph, ComputeReachability(graph));
}

std::vector<int> MaxAntichain(const Digraph& graph) {
  const int n = graph.num_vertices();
  if (n == 0) return {};
  Reachability reach = ComputeReachability(graph);
  auto adj = ClosureBipartite(graph, reach);
  std::vector<int> match_left;
  int matching = MaxBipartiteMatching(n, n, adj, &match_left);

  // König certificate: Z = vertices reachable by alternating paths from
  // free left vertices (left->right along non-matching edges, right->left
  // along matching edges). The antichain is {v : left_v in Z, right_v not
  // in Z}.
  std::vector<int> match_right(n, -1);
  for (int l = 0; l < n; ++l) {
    if (match_left[l] != -1) match_right[match_left[l]] = l;
  }
  std::vector<bool> z_left(n, false), z_right(n, false);
  std::vector<int> queue;
  for (int l = 0; l < n; ++l) {
    if (match_left[l] == -1) {
      z_left[l] = true;
      queue.push_back(l);
    }
  }
  for (size_t head = 0; head < queue.size(); ++head) {
    int l = queue[head];
    for (int r : adj[l]) {
      if (match_left[l] == r || z_right[r]) continue;
      z_right[r] = true;
      int l2 = match_right[r];
      if (l2 != -1 && !z_left[l2]) {
        z_left[l2] = true;
        queue.push_back(l2);
      }
    }
  }
  std::vector<int> antichain;
  for (int v = 0; v < n; ++v) {
    if (z_left[v] && !z_right[v]) antichain.push_back(v);
  }
  IODB_CHECK_EQ(static_cast<int>(antichain.size()), n - matching);
  return antichain;
}

}  // namespace iodb
