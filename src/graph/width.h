// Width of an order dag (Section 2 of the paper).
//
// The width of a normalized database or conjunctive query is the maximum
// cardinality of an antichain of its dag: the largest set of pairwise
// path-incomparable vertices. It measures "how many order constants are
// potentially concurrent" and is the key tractability parameter of the
// paper (Theorems 4.7 and 5.3).

#ifndef IODB_GRAPH_WIDTH_H_
#define IODB_GRAPH_WIDTH_H_

#include <vector>

#include "graph/digraph.h"
#include "graph/topo.h"

namespace iodb {

/// Computes the width (maximum antichain size) of the acyclic `graph` via
/// Dilworth's theorem and Hopcroft–Karp matching on the transitive closure.
/// Returns 0 for the empty graph.
int DagWidth(const Digraph& graph);

/// As `DagWidth` but reuses a precomputed `Reachability`.
int DagWidth(const Digraph& graph, const Reachability& reach);

/// Returns one maximum antichain of `graph` (vertices in increasing order).
/// Uses the König-style vertex-cover certificate of the matching.
std::vector<int> MaxAntichain(const Digraph& graph);

}  // namespace iodb

#endif  // IODB_GRAPH_WIDTH_H_
