#include "logic/cnf.h"

#include <algorithm>

#include "util/check.h"

namespace iodb {

bool CnfFormula::IsMonotone() const {
  for (const Clause& clause : clauses) {
    bool has_pos = false, has_neg = false;
    for (const Literal& lit : clause) {
      (lit.positive ? has_pos : has_neg) = true;
    }
    if (has_pos && has_neg) return false;
  }
  return true;
}

bool CnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  IODB_CHECK_EQ(static_cast<int>(assignment.size()), num_vars);
  for (const Clause& clause : clauses) {
    bool satisfied = false;
    for (const Literal& lit : clause) {
      if (assignment[lit.var] == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

std::string CnfFormula::ToString() const {
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += " | ";
      if (!clauses[i][j].positive) out += "~";
      out += "x" + std::to_string(clauses[i][j].var);
    }
    out += ")";
  }
  return out;
}

namespace {

Clause RandomClauseVars(int num_vars, int k, Rng& rng) {
  IODB_CHECK_GE(num_vars, k);
  Clause clause;
  std::vector<int> vars;
  while (static_cast<int>(vars.size()) < k) {
    int v = rng.UniformInt(0, num_vars - 1);
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  }
  for (int v : vars) clause.push_back({v, true});
  return clause;
}

}  // namespace

CnfFormula RandomKSat(int num_vars, int num_clauses, int k, Rng& rng) {
  CnfFormula formula;
  formula.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    Clause clause = RandomClauseVars(num_vars, k, rng);
    for (Literal& lit : clause) lit.positive = rng.Bernoulli(0.5);
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

CnfFormula RandomMonotone3Sat(int num_vars, int num_clauses, Rng& rng) {
  CnfFormula formula;
  formula.num_vars = num_vars;
  for (int i = 0; i < num_clauses; ++i) {
    Clause clause = RandomClauseVars(num_vars, 3, rng);
    bool positive = rng.Bernoulli(0.5);
    for (Literal& lit : clause) lit.positive = positive;
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

}  // namespace iodb
