// CNF formulas: literals, clauses, and generators for the instance families
// used by the paper's reductions (monotone 3-SAT for Theorem 3.2, general
// 3-SAT for Theorem 3.4).

#ifndef IODB_LOGIC_CNF_H_
#define IODB_LOGIC_CNF_H_

#include <string>
#include <vector>

#include "util/random.h"

namespace iodb {

/// A literal: variable index (0-based) plus polarity.
struct Literal {
  int var = 0;
  bool positive = true;

  friend bool operator==(const Literal&, const Literal&) = default;
};

/// A clause is a disjunction of literals.
using Clause = std::vector<Literal>;

/// A CNF formula over variables 0..num_vars-1.
struct CnfFormula {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// True if every clause is purely positive or purely negative
  /// (the "monotone" restriction used by Theorem 3.2).
  bool IsMonotone() const;

  /// Evaluates the formula under `assignment` (size num_vars).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Renders e.g. "(x0 | ~x1 | x2) & (...)".
  std::string ToString() const;
};

/// Generates a random k-SAT instance with `num_clauses` clauses over
/// `num_vars` variables (distinct variables within a clause).
CnfFormula RandomKSat(int num_vars, int num_clauses, int k, Rng& rng);

/// Generates a random *monotone* 3-SAT instance: each clause is all-positive
/// or all-negative with probability 1/2. Monotone 3-SAT is NP-complete
/// (Garey & Johnson); it is the source problem of Theorem 3.2.
CnfFormula RandomMonotone3Sat(int num_vars, int num_clauses, Rng& rng);

}  // namespace iodb

#endif  // IODB_LOGIC_CNF_H_
