#include "logic/dnf.h"

#include <algorithm>

#include "logic/sat_solver.h"
#include "util/check.h"

namespace iodb {

bool DnfFormula::Evaluate(const std::vector<bool>& assignment) const {
  for (const std::vector<Literal>& disjunct : disjuncts) {
    bool all = true;
    for (const Literal& lit : disjunct) {
      if (assignment[lit.var] != lit.positive) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

std::string DnfFormula::ToString() const {
  std::string out;
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    if (i > 0) out += " | ";
    out += "(";
    for (size_t j = 0; j < disjuncts[i].size(); ++j) {
      if (j > 0) out += " & ";
      if (!disjuncts[i][j].positive) out += "~";
      out += "x" + std::to_string(disjuncts[i][j].var);
    }
    out += ")";
  }
  return out;
}

CnfFormula NegateDnf(const DnfFormula& formula) {
  CnfFormula cnf;
  cnf.num_vars = formula.num_vars;
  for (const std::vector<Literal>& disjunct : formula.disjuncts) {
    Clause clause;
    for (const Literal& lit : disjunct) {
      clause.push_back({lit.var, !lit.positive});
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

bool IsTautology(const DnfFormula& formula) {
  // A DNF is a tautology iff its negation (a CNF) is unsatisfiable.
  SatSolver solver;
  return !solver.Solve(NegateDnf(formula)).has_value();
}

DnfFormula RandomDnf(int num_vars, int num_disjuncts,
                     int literals_per_disjunct, Rng& rng) {
  IODB_CHECK_GE(num_vars, literals_per_disjunct);
  DnfFormula formula;
  formula.num_vars = num_vars;
  for (int i = 0; i < num_disjuncts; ++i) {
    std::vector<int> vars;
    while (static_cast<int>(vars.size()) < literals_per_disjunct) {
      int v = rng.UniformInt(0, num_vars - 1);
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        vars.push_back(v);
      }
    }
    std::vector<Literal> disjunct;
    for (int v : vars) disjunct.push_back({v, rng.Bernoulli(0.5)});
    formula.disjuncts.push_back(std::move(disjunct));
  }
  return formula;
}

DnfFormula CompleteTautology(int k) {
  IODB_CHECK_GE(k, 1);
  IODB_CHECK_LE(k, 20);
  DnfFormula formula;
  formula.num_vars = k;
  for (uint64_t bits = 0; bits < (uint64_t{1} << k); ++bits) {
    std::vector<Literal> disjunct;
    for (int v = 0; v < k; ++v) {
      disjunct.push_back({v, ((bits >> v) & 1) != 0});
    }
    formula.disjuncts.push_back(std::move(disjunct));
  }
  return formula;
}

}  // namespace iodb
