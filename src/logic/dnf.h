// DNF formulas and tautology checking.
//
// Theorem 4.6 reduces DNF tautology (co-NP-complete) to combined complexity
// of width-2 conjunctive monadic queries. This module provides the DNF
// representation, an independent tautology checker, and instance
// generators.

#ifndef IODB_LOGIC_DNF_H_
#define IODB_LOGIC_DNF_H_

#include <string>
#include <vector>

#include "logic/cnf.h"
#include "util/random.h"

namespace iodb {

/// A DNF formula: a disjunction of conjunctions of literals, over
/// variables 0..num_vars-1.
struct DnfFormula {
  int num_vars = 0;
  std::vector<std::vector<Literal>> disjuncts;

  /// Evaluates under `assignment`.
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Renders e.g. "(x0 & ~x1) | (x2)".
  std::string ToString() const;
};

/// Decides whether `formula` is a tautology, by DPLL on the negation
/// (a CNF). Reference oracle for Theorem 4.6.
bool IsTautology(const DnfFormula& formula);

/// Negates a DNF into the equivalent-for-satisfiability CNF (De Morgan).
CnfFormula NegateDnf(const DnfFormula& formula);

/// Random DNF with `num_disjuncts` disjuncts of `literals_per_disjunct`
/// distinct literals each (consistent within a disjunct).
DnfFormula RandomDnf(int num_vars, int num_disjuncts,
                     int literals_per_disjunct, Rng& rng);

/// A guaranteed tautology: all 2^k sign patterns over variables 0..k-1.
/// Useful for exercising the worst case of Theorem 4.6.
DnfFormula CompleteTautology(int k);

}  // namespace iodb

#endif  // IODB_LOGIC_DNF_H_
