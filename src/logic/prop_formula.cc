#include "logic/prop_formula.h"

#include <algorithm>

#include "util/check.h"

namespace iodb {

PropFormula::Ptr PropFormula::Var(int var) {
  IODB_CHECK_GE(var, 0);
  return Ptr(new PropFormula(PropOp::kVar, var, nullptr, nullptr));
}

PropFormula::Ptr PropFormula::Not(Ptr operand) {
  IODB_CHECK(operand != nullptr);
  return Ptr(new PropFormula(PropOp::kNot, -1, std::move(operand), nullptr));
}

PropFormula::Ptr PropFormula::And(Ptr lhs, Ptr rhs) {
  IODB_CHECK(lhs != nullptr && rhs != nullptr);
  return Ptr(
      new PropFormula(PropOp::kAnd, -1, std::move(lhs), std::move(rhs)));
}

PropFormula::Ptr PropFormula::Or(Ptr lhs, Ptr rhs) {
  IODB_CHECK(lhs != nullptr && rhs != nullptr);
  return Ptr(new PropFormula(PropOp::kOr, -1, std::move(lhs), std::move(rhs)));
}

bool PropFormula::Evaluate(const std::vector<bool>& assignment) const {
  switch (op_) {
    case PropOp::kVar:
      IODB_CHECK_LT(var_, static_cast<int>(assignment.size()));
      return assignment[var_];
    case PropOp::kNot:
      return !lhs_->Evaluate(assignment);
    case PropOp::kAnd:
      return lhs_->Evaluate(assignment) && rhs_->Evaluate(assignment);
    case PropOp::kOr:
      return lhs_->Evaluate(assignment) || rhs_->Evaluate(assignment);
  }
  IODB_CHECK(false);
  return false;
}

int PropFormula::Size() const {
  switch (op_) {
    case PropOp::kVar:
      return 1;
    case PropOp::kNot:
      return 1 + lhs_->Size();
    case PropOp::kAnd:
    case PropOp::kOr:
      return 1 + lhs_->Size() + rhs_->Size();
  }
  IODB_CHECK(false);
  return 0;
}

int PropFormula::MaxVar() const {
  switch (op_) {
    case PropOp::kVar:
      return var_;
    case PropOp::kNot:
      return lhs_->MaxVar();
    case PropOp::kAnd:
    case PropOp::kOr:
      return std::max(lhs_->MaxVar(), rhs_->MaxVar());
  }
  IODB_CHECK(false);
  return -1;
}

std::string PropFormula::ToString() const {
  switch (op_) {
    case PropOp::kVar:
      return "x" + std::to_string(var_);
    case PropOp::kNot:
      return "~" + lhs_->ToString();
    case PropOp::kAnd:
      return "(" + lhs_->ToString() + " & " + rhs_->ToString() + ")";
    case PropOp::kOr:
      return "(" + lhs_->ToString() + " | " + rhs_->ToString() + ")";
  }
  IODB_CHECK(false);
  return "";
}

PropFormula::Ptr CnfToFormula(const CnfFormula& cnf) {
  PropFormula::Ptr result;
  for (const Clause& clause : cnf.clauses) {
    PropFormula::Ptr clause_formula;
    for (const Literal& lit : clause) {
      PropFormula::Ptr atom = PropFormula::Var(lit.var);
      if (!lit.positive) atom = PropFormula::Not(atom);
      clause_formula = clause_formula
                           ? PropFormula::Or(clause_formula, atom)
                           : atom;
    }
    IODB_CHECK(clause_formula != nullptr);  // no empty clauses here
    result = result ? PropFormula::And(result, clause_formula)
                    : clause_formula;
  }
  if (result == nullptr) {
    // Empty CNF is true; encode as (x0 | ~x0).
    result = PropFormula::Or(PropFormula::Var(0),
                             PropFormula::Not(PropFormula::Var(0)));
  }
  return result;
}

PropFormula::Ptr RandomFormula(int num_vars, int num_nodes, Rng& rng) {
  IODB_CHECK_GE(num_vars, 1);
  std::vector<PropFormula::Ptr> pool;
  for (int v = 0; v < num_vars; ++v) pool.push_back(PropFormula::Var(v));
  for (int i = 0; i < num_nodes; ++i) {
    int choice = rng.UniformInt(0, 2);
    if (choice == 0) {
      pool.push_back(PropFormula::Not(rng.Pick(pool)));
    } else {
      PropFormula::Ptr lhs = rng.Pick(pool);
      PropFormula::Ptr rhs = rng.Pick(pool);
      pool.push_back(choice == 1 ? PropFormula::And(lhs, rhs)
                                 : PropFormula::Or(lhs, rhs));
    }
  }
  return pool.back();
}

}  // namespace iodb
