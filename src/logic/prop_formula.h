// General propositional formula ASTs.
//
// Theorem 3.3 encodes the matrix of a Π₂ quantified boolean formula into a
// conjunctive query via the inductively defined Val(α, z, x) formula; that
// construction walks this AST. Theorem 3.4 uses the same encoding for
// expression complexity.

#ifndef IODB_LOGIC_PROP_FORMULA_H_
#define IODB_LOGIC_PROP_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "logic/cnf.h"
#include "util/random.h"

namespace iodb {

/// Node kind of a propositional formula.
enum class PropOp { kVar, kNot, kAnd, kOr };

/// An immutable propositional formula node. Build with the factory
/// functions below; share subtrees freely.
class PropFormula {
 public:
  using Ptr = std::shared_ptr<const PropFormula>;

  /// Leaf: propositional variable `var` (0-based).
  static Ptr Var(int var);
  /// Negation.
  static Ptr Not(Ptr operand);
  /// Binary conjunction / disjunction.
  static Ptr And(Ptr lhs, Ptr rhs);
  static Ptr Or(Ptr lhs, Ptr rhs);

  PropOp op() const { return op_; }
  int var() const { return var_; }
  const Ptr& lhs() const { return lhs_; }
  const Ptr& rhs() const { return rhs_; }

  /// Evaluates under `assignment` (indexed by variable).
  bool Evaluate(const std::vector<bool>& assignment) const;

  /// Number of AST nodes.
  int Size() const;

  /// Largest variable index appearing in the formula, or -1 if none.
  int MaxVar() const;

  /// Renders e.g. "((x0 & ~x1) | x2)".
  std::string ToString() const;

 private:
  PropFormula(PropOp op, int var, Ptr lhs, Ptr rhs)
      : op_(op), var_(var), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  PropOp op_;
  int var_;
  Ptr lhs_;
  Ptr rhs_;
};

/// Converts a CNF formula to a PropFormula AST.
PropFormula::Ptr CnfToFormula(const CnfFormula& cnf);

/// Generates a random formula with `num_nodes` internal nodes over
/// variables 0..num_vars-1.
PropFormula::Ptr RandomFormula(int num_vars, int num_nodes, Rng& rng);

}  // namespace iodb

#endif  // IODB_LOGIC_PROP_FORMULA_H_
