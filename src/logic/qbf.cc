#include "logic/qbf.h"

#include "util/check.h"

namespace iodb {
namespace {

// Searches an assignment of the existential block making `matrix` true,
// with the universal block fixed in `assignment`.
bool ExistsSatisfying(const Pi2Formula& f, std::vector<bool>& assignment,
                      int next) {
  if (next == f.num_universal + f.num_existential) {
    return f.matrix->Evaluate(assignment);
  }
  for (bool value : {false, true}) {
    assignment[next] = value;
    if (ExistsSatisfying(f, assignment, next + 1)) return true;
  }
  return false;
}

}  // namespace

bool EvaluatePi2(const Pi2Formula& formula) {
  IODB_CHECK(formula.matrix != nullptr);
  const int total = formula.num_universal + formula.num_existential;
  IODB_CHECK_LT(formula.matrix->MaxVar(), total);
  std::vector<bool> assignment(total, false);
  // Enumerate all universal assignments by binary counting.
  const uint64_t limit = uint64_t{1} << formula.num_universal;
  IODB_CHECK_LE(formula.num_universal, 30);
  for (uint64_t bits = 0; bits < limit; ++bits) {
    for (int i = 0; i < formula.num_universal; ++i) {
      assignment[i] = (bits >> i) & 1;
    }
    if (!ExistsSatisfying(formula, assignment, formula.num_universal)) {
      return false;
    }
  }
  return true;
}

Pi2Formula RandomPi2(int num_universal, int num_existential, int num_nodes,
                     Rng& rng) {
  Pi2Formula formula;
  formula.num_universal = num_universal;
  formula.num_existential = num_existential;
  formula.matrix =
      RandomFormula(num_universal + num_existential, num_nodes, rng);
  return formula;
}

}  // namespace iodb
