// Π₂ quantified boolean formulas: ∀p₁..pₙ ∃q₁..qₘ α.
//
// Π₂-SAT is the canonical Π₂ᵖ-complete problem (Chandra, Kozen,
// Stockmeyer); Theorem 3.3 reduces it to combined complexity of indefinite
// order databases. This module provides an independent (exponential-time)
// evaluator used to validate that reduction.

#ifndef IODB_LOGIC_QBF_H_
#define IODB_LOGIC_QBF_H_

#include "logic/prop_formula.h"
#include "util/random.h"

namespace iodb {

/// A Π₂ formula ∀p₀..p_{num_universal-1} ∃q₀..q_{num_existential-1} matrix.
/// Variable indices in `matrix`: universals are 0..num_universal-1,
/// existentials are num_universal..num_universal+num_existential-1.
struct Pi2Formula {
  int num_universal = 0;
  int num_existential = 0;
  PropFormula::Ptr matrix;
};

/// Decides truth of `formula` by enumerating universal assignments and
/// SAT-searching the existential block (via DPLL on the residual formula
/// when the matrix is CNF-shaped, else brute force). Exponential; intended
/// as the reference oracle for Theorem 3.3.
bool EvaluatePi2(const Pi2Formula& formula);

/// Generates a random Π₂ instance whose matrix is a random formula AST.
Pi2Formula RandomPi2(int num_universal, int num_existential, int num_nodes,
                     Rng& rng);

}  // namespace iodb

#endif  // IODB_LOGIC_QBF_H_
