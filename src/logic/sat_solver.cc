#include "logic/sat_solver.h"

#include <algorithm>

#include "util/check.h"

namespace iodb {

std::optional<std::vector<bool>> SatSolver::Solve(const CnfFormula& formula) {
  formula_ = &formula;
  decisions_ = 0;
  std::vector<Value> assignment(formula.num_vars, Value::kUnset);
  // Empty clause => trivially unsatisfiable.
  for (const Clause& clause : formula.clauses) {
    if (clause.empty()) return std::nullopt;
  }
  if (!Dpll(assignment)) return std::nullopt;
  std::vector<bool> model(formula.num_vars);
  for (int v = 0; v < formula.num_vars; ++v) {
    model[v] = assignment[v] != Value::kFalse;  // unset vars default true
  }
  IODB_CHECK(formula.Evaluate(model));
  return model;
}

bool SatSolver::Propagate(std::vector<Value>& assignment,
                          std::vector<int>& trail) {
  // Naive repeated scan: fine at the scales used in tests/benches.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Clause& clause : formula_->clauses) {
      int unassigned = 0;
      const Literal* last_free = nullptr;
      bool satisfied = false;
      for (const Literal& lit : clause) {
        Value v = assignment[lit.var];
        if (v == Value::kUnset) {
          ++unassigned;
          last_free = &lit;
        } else if ((v == Value::kTrue) == lit.positive) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      if (unassigned == 0) return false;  // conflict
      if (unassigned == 1) {
        assignment[last_free->var] =
            last_free->positive ? Value::kTrue : Value::kFalse;
        trail.push_back(last_free->var);
        changed = true;
      }
    }
  }
  return true;
}

bool SatSolver::Dpll(std::vector<Value>& assignment) {
  std::vector<int> trail;
  if (!Propagate(assignment, trail)) {
    for (int v : trail) assignment[v] = Value::kUnset;
    return false;
  }

  // Pure-literal elimination.
  const int n = formula_->num_vars;
  std::vector<bool> seen_pos(n, false), seen_neg(n, false);
  for (const Clause& clause : formula_->clauses) {
    bool satisfied = false;
    for (const Literal& lit : clause) {
      Value v = assignment[lit.var];
      if (v != Value::kUnset && (v == Value::kTrue) == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (satisfied) continue;
    for (const Literal& lit : clause) {
      if (assignment[lit.var] == Value::kUnset) {
        (lit.positive ? seen_pos : seen_neg)[lit.var] = true;
      }
    }
  }
  for (int v = 0; v < n; ++v) {
    if (assignment[v] == Value::kUnset && (seen_pos[v] != seen_neg[v])) {
      assignment[v] = seen_pos[v] ? Value::kTrue : Value::kFalse;
      trail.push_back(v);
    }
  }

  // Pick a branching variable: first unset variable of the first
  // unsatisfied clause (cheap MOM-like heuristic).
  int branch_var = -1;
  for (const Clause& clause : formula_->clauses) {
    bool satisfied = false;
    int candidate = -1;
    for (const Literal& lit : clause) {
      Value v = assignment[lit.var];
      if (v == Value::kUnset) {
        if (candidate == -1) candidate = lit.var;
      } else if ((v == Value::kTrue) == lit.positive) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied && candidate != -1) {
      branch_var = candidate;
      break;
    }
  }
  if (branch_var == -1) return true;  // all clauses satisfied

  ++decisions_;
  for (Value value : {Value::kTrue, Value::kFalse}) {
    assignment[branch_var] = value;
    if (Dpll(assignment)) return true;
  }
  assignment[branch_var] = Value::kUnset;
  for (int v : trail) assignment[v] = Value::kUnset;
  return false;
}

}  // namespace iodb
