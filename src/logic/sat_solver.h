// A small DPLL SAT solver.
//
// Role in the reproduction: the oracle against which the Theorem 3.2 / 3.4
// reductions are cross-validated (the reduction maps a CNF to an entailment
// instance; this solver independently decides the CNF), and the inner
// engine of the Π₂-QBF evaluator.

#ifndef IODB_LOGIC_SAT_SOLVER_H_
#define IODB_LOGIC_SAT_SOLVER_H_

#include <optional>
#include <vector>

#include "logic/cnf.h"

namespace iodb {

/// DPLL with unit propagation and pure-literal elimination. Intended for
/// the small-to-medium instances used in tests and benchmarks.
class SatSolver {
 public:
  /// Decides satisfiability of `formula`. If satisfiable, returns a model;
  /// otherwise returns std::nullopt.
  std::optional<std::vector<bool>> Solve(const CnfFormula& formula);

  /// Number of DPLL branching decisions made by the last Solve() call.
  long long decisions() const { return decisions_; }

 private:
  enum class Value : char { kUnset, kTrue, kFalse };

  bool Dpll(std::vector<Value>& assignment);
  // Applies unit propagation; returns false on conflict. Appends the
  // indices of variables it assigned to `trail`.
  bool Propagate(std::vector<Value>& assignment, std::vector<int>& trail);

  const CnfFormula* formula_ = nullptr;
  long long decisions_ = 0;
};

}  // namespace iodb

#endif  // IODB_LOGIC_SAT_SOLVER_H_
