#include "reductions/coloring_to_inequality.h"

namespace iodb {
namespace {

bool ColorSearch(const SimpleGraph& graph, std::vector<int>& colors,
                 int next) {
  if (next == graph.num_vertices) return true;
  for (int c = 0; c < 3; ++c) {
    bool ok = true;
    for (const auto& [a, b] : graph.edges) {
      int other = -1;
      if (a == next && b < next) other = b;
      if (b == next && a < next) other = a;
      if (other >= 0 && colors[other] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    colors[next] = c;
    if (ColorSearch(graph, colors, next + 1)) return true;
  }
  colors[next] = -1;
  return false;
}

}  // namespace

bool IsThreeColorable(const SimpleGraph& graph) {
  std::vector<int> colors(graph.num_vertices, -1);
  return ColorSearch(graph, colors, 0);
}

SimpleGraph RandomGraph(int num_vertices, double edge_probability, Rng& rng) {
  SimpleGraph graph;
  graph.num_vertices = num_vertices;
  for (int i = 0; i < num_vertices; ++i) {
    for (int j = i + 1; j < num_vertices; ++j) {
      if (rng.Bernoulli(edge_probability)) graph.edges.push_back({i, j});
    }
  }
  return graph;
}

ColoringExpressionInstance ColoringToExpression(const SimpleGraph& graph,
                                                VocabularyPtr vocab) {
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  db.AddOrder("u1", OrderRel::kLt, "u2");
  db.AddOrder("u2", OrderRel::kLt, "u3");
  for (const char* u : {"u1", "u2", "u3"}) {
    Status s = db.AddFact("P", {u});
    IODB_CHECK(s.ok());
  }

  Query query(vocab);
  QueryConjunct& conjunct = query.AddDisjunct();
  auto var = [](int v) { return "v" + std::to_string(v); };
  for (int v = 0; v < graph.num_vertices; ++v) {
    conjunct.Exists(var(v));
    conjunct.Atom("P", {var(v)});
  }
  for (const auto& [a, b] : graph.edges) {
    conjunct.NotEqual(var(a), var(b));
  }
  return {std::move(db), std::move(query)};
}

ColoringDataInstance ColoringToData(const SimpleGraph& graph,
                                    VocabularyPtr vocab) {
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  auto name = [](int v) { return "v" + std::to_string(v); };
  for (int v = 0; v < graph.num_vertices; ++v) {
    Status s = db.AddFact("P", {name(v)});
    IODB_CHECK(s.ok());
    // P's argument is order-sort by declaration, so the constant interns
    // as an order constant even before any order atom mentions it.
  }
  for (const auto& [a, b] : graph.edges) {
    db.AddNotEqual(name(a), name(b));
  }

  Query query(vocab);
  QueryConjunct& conjunct = query.AddDisjunct();
  for (int i = 1; i <= 4; ++i) {
    std::string t = "t" + std::to_string(i);
    conjunct.Exists(t);
    conjunct.Atom("P", {t});
    if (i > 1) {
      conjunct.Order("t" + std::to_string(i - 1), OrderRel::kLt, t);
    }
  }
  return {std::move(db), std::move(query)};
}

}  // namespace iodb
