// Theorem 7.1: once inequality atoms enter the monadic picture, hardness
// returns. Both parts reduce from graph 3-colorability:
//
//   Part 1 (expression complexity, NP-hard): against the fixed width-one
//   database D = [u1<u2<u3, P(u1), P(u2), P(u3)], the query
//   ∃v1..vn [∧ P(vi) ∧ ∧_{(i,j)∈E} vi != vj] is entailed iff G is
//   3-colorable (the three points are the three colors).
//
//   Part 2 (data complexity of a fixed sequential query, co-NP-hard):
//   against D(G) = {vi != vj : (i,j) ∈ E} ∪ {P(vi)}, the fixed query
//   ∃t1..t4 [P(t1) ∧ .. ∧ P(t4) ∧ t1<t2<t3<t4] is entailed iff G is NOT
//   3-colorable (a countermodel uses at most three points, i.e. a proper
//   3-coloring).
//
// A tiny graph substrate (random instances, brute-force colorability) is
// included for cross-validation.

#ifndef IODB_REDUCTIONS_COLORING_TO_INEQUALITY_H_
#define IODB_REDUCTIONS_COLORING_TO_INEQUALITY_H_

#include <utility>
#include <vector>

#include "core/database.h"
#include "core/query.h"
#include "util/random.h"

namespace iodb {

/// An undirected simple graph.
struct SimpleGraph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;
};

/// Brute-force 3-colorability check (reference oracle).
bool IsThreeColorable(const SimpleGraph& graph);

/// Erdős–Rényi random graph.
SimpleGraph RandomGraph(int num_vertices, double edge_probability, Rng& rng);

/// Part 1 instance: db |= query iff `graph` IS 3-colorable.
struct ColoringExpressionInstance {
  Database db;
  Query query;
};
ColoringExpressionInstance ColoringToExpression(const SimpleGraph& graph,
                                                VocabularyPtr vocab);

/// Part 2 instance: db |= query iff `graph` is NOT 3-colorable.
struct ColoringDataInstance {
  Database db;
  Query query;
};
ColoringDataInstance ColoringToData(const SimpleGraph& graph,
                                    VocabularyPtr vocab);

}  // namespace iodb

#endif  // IODB_REDUCTIONS_COLORING_TO_INEQUALITY_H_
