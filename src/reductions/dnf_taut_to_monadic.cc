#include "reductions/dnf_taut_to_monadic.h"

#include <optional>

namespace iodb {

Result<MonadicTautReduction> DnfTautToEntailment(const DnfFormula& dnf,
                                                 VocabularyPtr vocab) {
  const int m = dnf.num_vars;
  if (m < 1) return Status::InvalidArgument("DNF must have variables");

  vocab->MustAddPredicate("T", {Sort::kOrder});
  vocab->MustAddPredicate("F", {Sort::kOrder});

  // Query Φ(α): columns 1..m, two vertices per column, full "<" bipartite
  // wiring between consecutive columns (Figure 7).
  Query query(vocab);
  QueryConjunct& conjunct = query.AddDisjunct();
  auto qvar = [](int col, bool positive) {
    return std::string(positive ? "qt" : "qf") + std::to_string(col);
  };
  for (int j = 0; j < m; ++j) {
    conjunct.Exists(qvar(j, true)).Exists(qvar(j, false));
    conjunct.Atom("T", {qvar(j, true)});
    conjunct.Atom("F", {qvar(j, false)});
    if (j > 0) {
      for (bool prev : {true, false}) {
        for (bool cur : {true, false}) {
          conjunct.Order(qvar(j - 1, prev), OrderRel::kLt, qvar(j, cur));
        }
      }
    }
  }

  // Database D(α): one component per disjunct (Figure 8).
  Database db(vocab);
  for (size_t d = 0; d < dnf.disjuncts.size(); ++d) {
    // Column constraints: per variable, which polarity vertices survive.
    std::vector<std::optional<bool>> forced(m);
    for (const Literal& lit : dnf.disjuncts[d]) {
      if (lit.var >= m) {
        return Status::InvalidArgument("literal variable out of range");
      }
      if (forced[lit.var].has_value() && *forced[lit.var] != lit.positive) {
        return Status::InvalidArgument(
            "inconsistent disjunct in DNF (both polarities of one variable)");
      }
      forced[lit.var] = lit.positive;
    }
    auto cname = [&](int col, bool positive) {
      return std::string(positive ? "t" : "f") + std::to_string(d) + "_" +
             std::to_string(col);
    };
    std::vector<std::string> prev_kept;
    for (int j = 0; j < m; ++j) {
      std::vector<std::string> kept;
      for (bool polarity : {true, false}) {
        if (forced[j].has_value() && *forced[j] != polarity) continue;
        std::string name = cname(j, polarity);
        int point = db.GetOrAddConstant(name, Sort::kOrder);
        int pred = *vocab->FindPredicate(polarity ? "T" : "F");
        db.AddProperAtom(pred, {{Sort::kOrder, point}});
        kept.push_back(name);
      }
      for (const std::string& p : prev_kept) {
        for (const std::string& k : kept) {
          db.AddOrder(p, OrderRel::kLt, k);
        }
      }
      prev_kept = std::move(kept);
    }
  }
  return MonadicTautReduction{std::move(db), std::move(query)};
}

}  // namespace iodb
