// Theorem 4.6: DNF tautology reduces to the *combined complexity* of
// width-two conjunctive monadic queries over two fixed predicates —
// co-NP-hardness even in the monadic case.
//
// The query Φ(α) (Figure 7) has two rows of m vertices labelled T and F;
// every vertex of column j has "<" edges to both vertices of column j+1,
// so Paths(Φ(α)) = {T,F}^m — all valuations. The database D(α) (Figure 8)
// has one disconnected component per disjunct δ, keeping from column j
// only the vertices compatible with δ. A word of length m is a path of
// D(α) iff the corresponding valuation satisfies α, and D(α) |= Φ(α) iff
// every valuation does — iff α is a tautology.

#ifndef IODB_REDUCTIONS_DNF_TAUT_TO_MONADIC_H_
#define IODB_REDUCTIONS_DNF_TAUT_TO_MONADIC_H_

#include "core/database.h"
#include "core/query.h"
#include "logic/dnf.h"
#include "util/status.h"

namespace iodb {

/// The produced instance: db |= query iff `dnf` is a TAUTOLOGY. The query
/// is conjunctive, monadic, width two; the database width grows with the
/// number of disjuncts.
struct MonadicTautReduction {
  Database db;
  Query query;
};

/// Builds the Theorem 4.6 instance. Each disjunct must be a consistent
/// conjunction of literals (checked).
Result<MonadicTautReduction> DnfTautToEntailment(const DnfFormula& dnf,
                                                 VocabularyPtr vocab);

}  // namespace iodb

#endif  // IODB_REDUCTIONS_DNF_TAUT_TO_MONADIC_H_
