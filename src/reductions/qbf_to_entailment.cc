#include "reductions/qbf_to_entailment.h"

namespace iodb {
namespace {

// Declares the truth-table predicates and adds the facts of E.
void AddTruthTable(Database& db) {
  const VocabularyPtr& vocab = db.vocab();
  int t = db.GetOrAddConstant("t", Sort::kObject);
  int f = db.GetOrAddConstant("f", Sort::kObject);
  int istrue = vocab->MustAddPredicate("Istrue", {Sort::kObject});
  int p_and = vocab->MustAddPredicate(
      "And", {Sort::kObject, Sort::kObject, Sort::kObject});
  int p_or = vocab->MustAddPredicate(
      "Or", {Sort::kObject, Sort::kObject, Sort::kObject});
  int p_not = vocab->MustAddPredicate("Not", {Sort::kObject, Sort::kObject});

  auto obj = [](int id) { return Term{Sort::kObject, id}; };
  db.AddProperAtom(istrue, {obj(t)});
  for (int a : {0, 1}) {
    for (int b : {0, 1}) {
      int av = a ? t : f, bv = b ? t : f;
      db.AddProperAtom(p_and, {obj(av), obj(bv), obj((a && b) ? t : f)});
      db.AddProperAtom(p_or, {obj(av), obj(bv), obj((a || b) ? t : f)});
    }
    db.AddProperAtom(p_not, {obj(a ? t : f), obj(a ? f : t)});
  }
}

// Emits the Val(α, z, x) atoms into `conjunct` and returns the name of the
// variable (or z-variable) holding the truth value of `alpha`. `counter`
// numbers the fresh intermediate variables.
std::string BuildVal(const PropFormula::Ptr& alpha,
                     const std::vector<std::string>& z_vars,
                     QueryConjunct& conjunct, int& counter) {
  switch (alpha->op()) {
    case PropOp::kVar:
      return z_vars[alpha->var()];
    case PropOp::kNot: {
      std::string operand = BuildVal(alpha->lhs(), z_vars, conjunct, counter);
      std::string out = "val" + std::to_string(counter++);
      conjunct.Exists(out);
      conjunct.Atom("Not", {operand, out});
      return out;
    }
    case PropOp::kAnd:
    case PropOp::kOr: {
      std::string lhs = BuildVal(alpha->lhs(), z_vars, conjunct, counter);
      std::string rhs = BuildVal(alpha->rhs(), z_vars, conjunct, counter);
      std::string out = "val" + std::to_string(counter++);
      conjunct.Exists(out);
      conjunct.Atom(alpha->op() == PropOp::kAnd ? "And" : "Or",
                    {lhs, rhs, out});
      return out;
    }
  }
  IODB_CHECK(false);
  return "";
}

}  // namespace

Database TruthTableDb(VocabularyPtr vocab) {
  Database db(std::move(vocab));
  AddTruthTable(db);
  return db;
}

Query SatQuery(const PropFormula::Ptr& alpha, int num_vars,
               VocabularyPtr vocab) {
  Query query(std::move(vocab));
  QueryConjunct& conjunct = query.AddDisjunct();
  std::vector<std::string> z_vars;
  for (int i = 0; i < num_vars; ++i) {
    std::string z = "z" + std::to_string(i);
    conjunct.Exists(z);
    z_vars.push_back(z);
  }
  int counter = 0;
  std::string root = BuildVal(alpha, z_vars, conjunct, counter);
  conjunct.Atom("Istrue", {root});
  return query;
}

QbfReduction Pi2ToEntailment(const Pi2Formula& formula, VocabularyPtr vocab) {
  Database db(vocab);
  AddTruthTable(db);

  Query query(vocab);
  QueryConjunct& conjunct = query.AddDisjunct();

  // Universal gadgets D_i and their φ_i(z_i) query parts.
  std::vector<std::string> z_vars;
  for (int i = 0; i < formula.num_universal; ++i) {
    const std::string suffix = std::to_string(i);
    int pred =
        vocab->MustAddPredicate("P" + suffix, {Sort::kOrder, Sort::kObject});
    int t = db.GetOrAddConstant("t", Sort::kObject);
    int f = db.GetOrAddConstant("f", Sort::kObject);
    int u = db.GetOrAddConstant("u" + suffix, Sort::kOrder);
    int v = db.GetOrAddConstant("v" + suffix, Sort::kOrder);
    int w = db.GetOrAddConstant("w" + suffix, Sort::kOrder);
    db.AddProperAtom(pred, {{Sort::kOrder, u}, {Sort::kObject, t}});
    db.AddProperAtom(pred, {{Sort::kOrder, v}, {Sort::kObject, f}});
    db.AddOrderAtom(u, v, OrderRel::kLt);
    db.AddProperAtom(pred, {{Sort::kOrder, w}, {Sort::kObject, t}});
    db.AddProperAtom(pred, {{Sort::kOrder, w}, {Sort::kObject, f}});

    std::string z = "z" + suffix;
    std::string s1 = "s" + suffix + "_1", s2 = "s" + suffix + "_2";
    conjunct.Exists(z).Exists(s1).Exists(s2);
    conjunct.Atom("P" + suffix, {s1, z});
    conjunct.Atom("P" + suffix, {s2, z});
    conjunct.Order(s1, OrderRel::kLt, s2);
    z_vars.push_back(z);
  }
  // Existential variables range over {t, f} implicitly (only the
  // truth-table facts can support the Val atoms).
  for (int j = 0; j < formula.num_existential; ++j) {
    std::string z = "z" + std::to_string(formula.num_universal + j);
    conjunct.Exists(z);
    z_vars.push_back(z);
  }
  int counter = 0;
  std::string root = BuildVal(formula.matrix, z_vars, conjunct, counter);
  conjunct.Atom("Istrue", {root});

  return QbfReduction{std::move(db), std::move(query)};
}

}  // namespace iodb
