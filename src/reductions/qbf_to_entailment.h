// Theorem 3.3: Π₂-SAT reduces to the *combined complexity* of conjunctive
// queries over indefinite order databases — Π₂ᵖ-hardness (and, through
// Proposition 2.10, the Π₂ᵖ-hardness of conjunctive-query containment
// with inequalities, resolving Klug's open problem).
//
// Universal variables are simulated by binary-disjunction gadgets
//   Dᵢ = { Pᵢ(uᵢ,t), Pᵢ(vᵢ,f), uᵢ<vᵢ, Pᵢ(wᵢ,t), Pᵢ(wᵢ,f) }
// with φᵢ(x) = ∃s₁s₂ [Pᵢ(s₁,x) ∧ Pᵢ(s₂,x) ∧ s₁<s₂]: every model
// satisfies φᵢ(t) or φᵢ(f), and either can be made exclusive. The matrix
// is evaluated by the inductively defined Val formula against the
// truth-table database E (And/Or/Not/Istrue facts over constants t, f).
//
// Theorem 3.4 (expression complexity, NP-hardness) falls out of the same
// machinery: against the fixed database E, the query
// ∃x z [Istrue(x) ∧ Val(α, z, x)] is entailed iff α is satisfiable.

#ifndef IODB_REDUCTIONS_QBF_TO_ENTAILMENT_H_
#define IODB_REDUCTIONS_QBF_TO_ENTAILMENT_H_

#include "core/database.h"
#include "core/query.h"
#include "logic/qbf.h"

namespace iodb {

/// The produced instance: db |= query iff the Π₂ formula is TRUE.
struct QbfReduction {
  Database db;
  Query query;
};

/// Builds the Theorem 3.3 instance.
QbfReduction Pi2ToEntailment(const Pi2Formula& formula, VocabularyPtr vocab);

/// The fixed truth-table database E of Theorem 3.3 (declares the
/// predicates And, Or, Not, Istrue in `vocab`).
Database TruthTableDb(VocabularyPtr vocab);

/// The Theorem 3.4 query for a propositional formula α over variables
/// x0..x_{n-1}: entailed by TruthTableDb iff α is satisfiable.
Query SatQuery(const PropFormula::Ptr& alpha, int num_vars,
               VocabularyPtr vocab);

}  // namespace iodb

#endif  // IODB_REDUCTIONS_QBF_TO_ENTAILMENT_H_
