#include "reductions/sat_to_entailment.h"

namespace iodb {
namespace {

// Adds the Figure 3 component for one clause: the disjunction generator
// over fresh object constants (a, b, c) and order constants (u, v, w, t),
// plus the Q facts wiring the three literal constants.
void AddClauseComponent(Database& db, int pred_p, int pred_q, int index,
                        const std::string& lit1, const std::string& lit2,
                        const std::string& lit3, bool bounded_width,
                        std::string& chain_prev, std::string& t_chain_prev) {
  const std::string suffix = std::to_string(index);
  const std::string a = "a" + suffix, b = "b" + suffix, c = "c" + suffix;
  const std::string u = "u" + suffix, v = "v" + suffix, w = "w" + suffix,
                    t = "t" + suffix;
  int ua = db.GetOrAddConstant(a, Sort::kObject);
  int ub = db.GetOrAddConstant(b, Sort::kObject);
  int uc = db.GetOrAddConstant(c, Sort::kObject);
  int pu = db.GetOrAddConstant(u, Sort::kOrder);
  int pv = db.GetOrAddConstant(v, Sort::kOrder);
  int pw = db.GetOrAddConstant(w, Sort::kOrder);
  int pt = db.GetOrAddConstant(t, Sort::kOrder);

  auto p = [&](int point, int object) {
    db.AddProperAtom(pred_p, {{Sort::kOrder, point}, {Sort::kObject, object}});
  };
  p(pu, ua);
  p(pu, ub);
  db.AddOrderAtom(pu, pv, OrderRel::kLt);
  p(pv, ua);
  p(pv, uc);
  db.AddOrderAtom(pv, pw, OrderRel::kLt);
  p(pw, ub);
  p(pw, uc);
  p(pt, ua);
  p(pt, ub);
  p(pt, uc);

  if (bounded_width) {
    // Figure 4 layout: chain the u<v<w triples of successive clauses into
    // one sequence and the t's into a second, giving width two.
    if (!chain_prev.empty()) {
      db.AddOrder(chain_prev, OrderRel::kLt, u);
      db.AddOrder(t_chain_prev, OrderRel::kLt, t);
    }
    chain_prev = w;
    t_chain_prev = t;
  }

  auto q = [&](const std::string& lit, int object) {
    int lit_id = db.GetOrAddConstant(lit, Sort::kObject);
    db.AddProperAtom(pred_q,
                     {{Sort::kObject, lit_id}, {Sort::kObject, object}});
  };
  q(lit1, ua);
  q(lit2, ub);
  q(lit3, uc);
}

}  // namespace

Result<SatReduction> MonotoneSatToEntailment(const CnfFormula& cnf,
                                             VocabularyPtr vocab,
                                             bool bounded_width) {
  if (!cnf.IsMonotone()) {
    return Status::InvalidArgument("Theorem 3.2 requires a monotone CNF");
  }
  for (const Clause& clause : cnf.clauses) {
    if (clause.size() != 3) {
      return Status::InvalidArgument("Theorem 3.2 requires 3-clauses");
    }
  }

  int pred_p =
      vocab->MustAddPredicate("P", {Sort::kOrder, Sort::kObject});
  int pred_q =
      vocab->MustAddPredicate("Q", {Sort::kObject, Sort::kObject});
  int pred_comp =
      vocab->MustAddPredicate("Comp", {Sort::kObject, Sort::kObject});

  Database db(vocab);
  auto lit_name = [](const Literal& lit) {
    return (lit.positive ? "x" : "nx") + std::to_string(lit.var);
  };

  std::string chain_prev, t_chain_prev;
  for (size_t i = 0; i < cnf.clauses.size(); ++i) {
    const Clause& clause = cnf.clauses[i];
    AddClauseComponent(db, pred_p, pred_q, static_cast<int>(i),
                       lit_name(clause[0]), lit_name(clause[1]),
                       lit_name(clause[2]), bounded_width, chain_prev,
                       t_chain_prev);
  }
  // Comp(l, l̄) for every propositional letter.
  for (int v = 0; v < cnf.num_vars; ++v) {
    int pos = db.GetOrAddConstant("x" + std::to_string(v), Sort::kObject);
    int neg = db.GetOrAddConstant("nx" + std::to_string(v), Sort::kObject);
    db.AddProperAtom(pred_comp, {{Sort::kObject, pos}, {Sort::kObject, neg}});
  }

  // 8 = ∃x y [ψ(x) ∧ Comp(x, y) ∧ ψ(y)], ψ(x) = ∃g [Q(x, g) ∧ φ(g)].
  Query query(vocab);
  QueryConjunct& conjunct = query.AddDisjunct();
  // Iterate as const char*: a const std::string& loop variable would bind
  // to a temporary string per element, which -Wrange-loop-construct flags.
  for (const char* v :
       {"x", "y", "gx", "gy", "t1", "t2", "t3", "s1", "s2", "s3"}) {
    conjunct.Exists(v);
  }
  conjunct.Atom("Q", {"x", "gx"});
  conjunct.Atom("P", {"t1", "gx"});
  conjunct.Order("t1", OrderRel::kLt, "t2");
  conjunct.Atom("P", {"t2", "gx"});
  conjunct.Order("t2", OrderRel::kLt, "t3");
  conjunct.Atom("P", {"t3", "gx"});
  conjunct.Atom("Comp", {"x", "y"});
  conjunct.Atom("Q", {"y", "gy"});
  conjunct.Atom("P", {"s1", "gy"});
  conjunct.Order("s1", OrderRel::kLt, "s2");
  conjunct.Atom("P", {"s2", "gy"});
  conjunct.Order("s2", OrderRel::kLt, "s3");
  conjunct.Atom("P", {"s3", "gy"});

  return SatReduction{std::move(db), std::move(query)};
}

}  // namespace iodb
