// Theorem 3.2: monotone 3-SAT reduces to the *data complexity* of a fixed
// conjunctive query with binary predicates — co-NP-hardness.
//
// The gadget (Figure 3): the database D(a,b,c; u,v,w,t) with
//   P(u,a) P(u,b)  u<v  P(v,a) P(v,c)  v<w  P(w,b) P(w,c)
//   P(t,a) P(t,b) P(t,c)
// and the query φ(x) = ∃t1t2t3 [P(t1,x) ∧ t1<t2 ∧ P(t2,x) ∧ t2<t3 ∧
// P(t3,x)] "express" the ternary disjunction φ(a) ∨ φ(b) ∨ φ(c):
// every model satisfies one of the three (property D1), and each can be
// made the only one satisfied (property D2). Clause disjunctions are
// generated independently and transmitted to propositional letters via Q
// facts; the fixed query asks for a letter entailed both positively and
// negatively, which happens exactly when the clause set is unsatisfiable.
//
// The paper remarks the construction can be laid out with the
// disjunction-generating order constants in two chains, giving a database
// of width two (Figure 4); `bounded_width` selects that variant.

#ifndef IODB_REDUCTIONS_SAT_TO_ENTAILMENT_H_
#define IODB_REDUCTIONS_SAT_TO_ENTAILMENT_H_

#include "core/database.h"
#include "core/query.h"
#include "logic/cnf.h"
#include "util/status.h"

namespace iodb {

/// The produced entailment instance. db |= query iff `cnf` is
/// UNSATISFIABLE.
struct SatReduction {
  Database db;
  Query query;
};

/// Builds the Theorem 3.2 instance from a monotone 3-CNF (every clause
/// purely positive or purely negative, exactly three literals). Fails on
/// non-monotone or non-3 clauses.
Result<SatReduction> MonotoneSatToEntailment(const CnfFormula& cnf,
                                             VocabularyPtr vocab,
                                             bool bounded_width = false);

}  // namespace iodb

#endif  // IODB_REDUCTIONS_SAT_TO_ENTAILMENT_H_
