#include "server/line_channel.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>

#include "storage/io.h"

namespace iodb::server {

LineChannel::LineChannel(int read_fd, int write_fd, int wake_fd)
    : read_fd_(read_fd), write_fd_(write_fd), wake_fd_(wake_fd) {}

LineChannel::ReadStatus LineChannel::ReadLine(std::string* line) {
  for (;;) {
    // Serve from the buffer first: bytes already read must be consumed
    // before EOF/interrupt is reported, or pipelined commands would be
    // dropped.
    size_t newline = in_buffer_.find('\n', in_pos_);
    if (newline != std::string::npos) {
      line->assign(in_buffer_, in_pos_, newline - in_pos_);
      in_pos_ = newline + 1;
      if (in_pos_ == in_buffer_.size()) {
        in_buffer_.clear();
        in_pos_ = 0;
      }
      return ReadStatus::kLine;
    }
    if (eof_) {
      if (in_pos_ < in_buffer_.size()) {  // final line without a newline
        line->assign(in_buffer_, in_pos_, in_buffer_.size() - in_pos_);
        in_buffer_.clear();
        in_pos_ = 0;
        return ReadStatus::kLine;
      }
      return ReadStatus::kEof;
    }

    // Wait for data or a wake. The wake fd is checked by poll() itself,
    // so a wake byte written before this wait still interrupts it —
    // there is no unguarded window between a flag check and the read.
    struct pollfd fds[2];
    fds[0] = {read_fd_, POLLIN, 0};
    nfds_t nfds = 1;
    if (wake_fd_ >= 0) {
      fds[1] = {wake_fd_, POLLIN, 0};
      nfds = 2;
    }
    int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;  // the wake pipe carries the signal
      return ReadStatus::kError;
    }
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
      return ReadStatus::kInterrupted;
    }
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;

    char chunk[1 << 16];
    ssize_t n = ::read(read_fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ReadStatus::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // deliver any buffered final line first
    }
    in_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

void LineChannel::Write(std::string_view bytes) { out_buffer_ += bytes; }

bool LineChannel::Flush() {
  if (out_buffer_.empty()) return true;
  Status status = storage::WriteFull(write_fd_, out_buffer_, "session fd");
  out_buffer_.clear();
  return status.ok();
}

}  // namespace iodb::server
