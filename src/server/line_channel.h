// LineChannel: a buffered, interruptible line reader/writer over raw
// file descriptors — the transport under every serving session (stdin
// pipes, FIFOs, unix/TCP sockets alike).
//
// The read side fixes the lost-wakeup race of the old serve loop: a
// shutdown signal delivered between "check the flag" and "enter the
// blocking read" used to leave the process blocked until the next input
// line. Here every blocking wait is a poll() over {data fd, wake fd}, so
// a wake byte written at ANY point — before the wait, during it, or
// mid-payload — interrupts the very next (or current) wait. The wake fd
// is level-triggered by convention: the waker writes one byte and never
// drains it, so every subsequent wait returns kInterrupted too (shutdown
// is terminal).
//
// The write side buffers until Flush() (one syscall per response burst)
// and goes through the storage layer's EINTR/short-write-safe WriteFull.

#ifndef IODB_SERVER_LINE_CHANNEL_H_
#define IODB_SERVER_LINE_CHANNEL_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace iodb::server {

class LineChannel {
 public:
  /// `read_fd` and `write_fd` may be the same descriptor (a socket).
  /// `wake_fd` < 0 disables interruption. The channel borrows all three
  /// (no close on destruction).
  LineChannel(int read_fd, int write_fd, int wake_fd = -1);

  enum class ReadStatus {
    kLine,         // *line holds the next line (newline stripped)
    kEof,          // clean end of input
    kInterrupted,  // the wake fd is readable (shutdown/disconnect)
    kError,        // read failed (connection reset, ...)
  };

  /// Blocks until a full line is buffered, then strips the trailing
  /// newline. A final line without a newline is still delivered (kEof
  /// comes on the following call), matching std::getline.
  ReadStatus ReadLine(std::string* line);

  /// Appends to the output buffer. Call Flush() to push to the fd.
  void Write(std::string_view bytes);

  /// Writes the buffered output; false on a write error (broken pipe).
  /// Safe to call with an empty buffer.
  bool Flush();

 private:
  int read_fd_;
  int write_fd_;
  int wake_fd_;
  std::string in_buffer_;
  size_t in_pos_ = 0;  // consumed prefix of in_buffer_
  bool eof_ = false;
  std::string out_buffer_;
};

}  // namespace iodb::server

#endif  // IODB_SERVER_LINE_CHANNEL_H_
