#include "server/protocol.h"

#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "stats/stats.h"
#include "util/strings.h"

namespace iodb::server {

ServingState::ServingState(ServiceOptions options,
                           storage::WalSyncOptions sync)
    : options_(options),
      sync_(sync),
      bare_(std::make_unique<EvaluationService>(options)) {}

Status ServingState::OpenRegistry(const std::string& dir) {
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(dir, options_, sync_);
  if (!registry.ok()) return registry.status();
  registry_ = std::move(registry.value());
  return Status::Ok();
}

EvaluationService& ServingState::service() {
  return registry_ != nullptr ? registry_->service() : *bare_;
}

Status ServingState::FlushRegistry() {
  if (registry_ == nullptr) return Status::Ok();
  std::lock_guard<std::mutex> lock(write_mu_);
  return registry_->Flush();
}

ProtocolSession::ProtocolSession(ServingState* state, LineChannel* channel,
                                 Options options, const CancelToken* cancel)
    : state_(state), channel_(channel), options_(options), cancel_(cancel) {}

void ProtocolSession::Err(const std::string& message) {
  channel_->Write("ERR " + message + "\n");
}

// Prints the full response of one served request: the verdict line plus
// the optional countermodel and explain payloads. Budget exhaustion is
// rendered structured ("ERR deadline-exceeded ..."), so clients can
// retry-with-more-budget without parsing prose.
void ProtocolSession::PrintResponse(const Result<EvalResponse>& response) {
  if (!response.ok()) {
    const Status& status = response.status();
    if (status.code() == StatusCode::kDeadlineExceeded) {
      Err("deadline-exceeded " + status.message());
    } else if (status.code() == StatusCode::kCancelled) {
      Err("cancelled " + status.message());
    } else {
      Err(status.ToString());
    }
    return;
  }
  channel_->Write(FormatResponseLine(response.value()) + "\n");
  if (response.value().countermodel.has_value()) {
    channel_->Write("countermodel: " +
                    response.value().countermodel->ToString() + "\n");
  }
  if (!response.value().explain.empty()) {
    channel_->Write(response.value().explain);
  }
}

LineChannel::ReadStatus ProtocolSession::ReadUntilEnd(std::string* text) {
  std::string line;
  for (;;) {
    LineChannel::ReadStatus status = channel_->ReadLine(&line);
    if (status != LineChannel::ReadStatus::kLine) return status;
    if (std::string(StripWhitespace(line)) == "END") {
      return LineChannel::ReadStatus::kLine;
    }
    *text += line;
    *text += '\n';
  }
}

void ProtocolSession::HandleLoad(const std::string& name,
                                 const std::string& text) {
  storage::DurableRegistry* registry = state_->registry();
  Result<DbInfo> info =
      registry != nullptr ? registry->Load(name, text)
                          : state_->service().Load(name, text);
  if (!info.ok()) {
    Err(info.status().ToString());
  } else {
    channel_->Write("OK db=" + info.value().name +
                    " atoms=" + std::to_string(info.value().atoms) + "\n");
  }
}

void ProtocolSession::HandleAppend(const std::string& name,
                                   const std::string& text) {
  storage::DurableRegistry* registry = state_->registry();
  Result<DbInfo> info = [&] {
    if (registry != nullptr) return registry->AppendText(name, text);
    // Bare mode: the same parse/apply pipeline as the WAL path, minus
    // the log — still the single-writer publish seam of the service.
    EvaluationService& service = state_->service();
    Result<std::vector<storage::WalRecord>> records =
        storage::ParseMutationText(text, service.vocab());
    if (!records.ok()) return Result<DbInfo>(records.status());
    return service.Mutate(name, [&](Database* db) {
      return storage::ApplyWalRecords(records.value(), db);
    });
  }();
  if (!info.ok()) {
    Err(info.status().ToString());
    return;
  }
  channel_->Write("OK db=" + info.value().name +
                  " atoms=" + std::to_string(info.value().atoms) +
                  " revision=" + std::to_string(info.value().revision) +
                  "\n");
}

void ProtocolSession::HandleOpen(const std::string& dir) {
  Status status = state_->OpenRegistry(dir);
  if (!status.ok()) {
    Err(status.ToString());
    return;
  }
  channel_->Write(
      "OK dir=" + dir + " databases=" +
      std::to_string(state_->service().database_names().size()) + "\n");
}

void ProtocolSession::HandleSave(const std::string& name) {
  storage::DurableRegistry* registry = state_->registry();
  if (registry == nullptr) {
    Err("SAVE needs an open registry (use OPEN <dir> or --data-dir)");
    return;
  }
  Result<DbInfo> info = registry->Compact(name);
  if (!info.ok()) {
    Err(info.status().ToString());
    return;
  }
  channel_->Write("OK db=" + info.value().name +
                  " atoms=" + std::to_string(info.value().atoms) + "\n");
}

void ProtocolSession::HandleInfo(const std::string& name) {
  EvaluationService& service = state_->service();
  if (name.empty()) {
    channel_->Write(
        "OK databases=" +
        std::to_string(service.database_names().size()) +
        " vocab-uid=" + std::to_string(service.vocab()->uid()) + "\n");
    return;
  }
  EvaluationService::DatabasePtr db = service.Snapshot(name);
  if (db == nullptr) {
    Err("INVALID_ARGUMENT: unknown database '" + name + "'");
    return;
  }
  channel_->Write("OK db=" + name +
                  " atoms=" + std::to_string(db->SizeAtoms()) +
                  " uid=" + std::to_string(db->uid()) +
                  " revision=" + std::to_string(db->revision()) +
                  " stats=" +
                  (stats::StatsArePersisted(*db) ? "persisted" : "rebuilt") +
                  "\n");
}

void ProtocolSession::HandleEval(const std::string& args) {
  Result<EvalRequest> request = ParseEvalRequest(args);
  if (!request.ok()) {
    Err(request.status().ToString());
    return;
  }
  PrintResponse(state_->service().Eval(request.value(), cancel_));
}

void ProtocolSession::HandleBatch(const std::string& args, bool* quit) {
  // Bounded so a single protocol line cannot force a huge
  // pre-allocation; large workloads stream multiple batches.
  constexpr int kMaxBatch = 65536;
  int n = std::atoi(args.c_str());
  if (n <= 0 || n > kMaxBatch) {
    Err("BATCH needs a request count in [1, " + std::to_string(kMaxBatch) +
        "]");
    return;
  }
  // Consume all n request lines BEFORE parsing: a parse failure must
  // not leave unread batch payload to be re-interpreted as protocol
  // commands.
  std::vector<std::string> request_lines(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    LineChannel::ReadStatus status =
        channel_->ReadLine(&request_lines[static_cast<size_t>(i)]);
    if (status == LineChannel::ReadStatus::kInterrupted) {
      *quit = true;
      return;
    }
    if (status != LineChannel::ReadStatus::kLine) {
      Err("unexpected EOF inside BATCH");
      *quit = true;
      return;
    }
  }
  std::vector<EvalRequest> requests;
  bool parse_failed = false;
  for (int i = 0; i < n; ++i) {
    Result<EvalRequest> request =
        ParseEvalRequest(request_lines[static_cast<size_t>(i)]);
    if (!request.ok()) {
      // Abort the whole batch: slots after a dropped line would shift.
      if (!parse_failed) {
        Err("request " + std::to_string(i) + ": " +
            request.status().ToString());
      }
      parse_failed = true;
    } else {
      requests.push_back(std::move(request.value()));
    }
  }
  if (parse_failed) return;
  for (const Result<EvalResponse>& response :
       state_->service().EvalBatch(requests, cancel_)) {
    PrintResponse(response);
  }
}

ProtocolSession::ExitReason ProtocolSession::Run() {
  std::string line;
  for (;;) {
    if (!channel_->Flush()) return ExitReason::kChannelError;
    LineChannel::ReadStatus read = channel_->ReadLine(&line);
    if (read == LineChannel::ReadStatus::kInterrupted) {
      return ExitReason::kInterrupted;
    }
    if (read == LineChannel::ReadStatus::kEof) return ExitReason::kQuit;
    if (read == LineChannel::ReadStatus::kError) {
      return ExitReason::kChannelError;
    }
    if (line.size() > kMaxLineBytes) {
      Err("line-too-long (" + std::to_string(line.size()) +
          " bytes; limit " + std::to_string(kMaxLineBytes) + ")");
      continue;
    }
    std::string_view rest = StripWhitespace(line);
    if (rest.empty() || rest[0] == '#') continue;
    size_t space = rest.find(' ');
    std::string command(rest.substr(0, space));
    std::string args = space == std::string_view::npos
                           ? std::string()
                           : std::string(StripWhitespace(rest.substr(space)));

    if (command == "QUIT") {
      break;
    } else if (command == "LOAD" || command == "APPEND") {
      if (args.empty()) {
        Err(command + " needs a database name");
        continue;
      }
      std::string text;
      LineChannel::ReadStatus payload = ReadUntilEnd(&text);
      if (payload == LineChannel::ReadStatus::kInterrupted) {
        return ExitReason::kInterrupted;
      }
      if (payload != LineChannel::ReadStatus::kLine) {
        Err("unterminated " + command + " (missing END)");
        break;
      }
      // LOAD/APPEND serialize across sessions: the registry's
      // persistence bookkeeping is single-writer (the service's own
      // publish path serializes internally anyway).
      std::lock_guard<std::mutex> lock(state_->write_mu());
      if (command == "LOAD") {
        HandleLoad(args, text);
      } else {
        HandleAppend(args, text);
      }
    } else if (command == "OPEN") {
      if (!options_.allow_open) {
        Err("OPEN is not available on socket sessions (start the server "
            "with --data-dir)");
        continue;
      }
      if (args.empty()) {
        Err("OPEN needs a directory");
        continue;
      }
      HandleOpen(args);
    } else if (command == "SAVE") {
      if (args.empty()) {
        Err("SAVE needs a database name");
        continue;
      }
      std::lock_guard<std::mutex> lock(state_->write_mu());
      HandleSave(args);
    } else if (command == "INFO") {
      HandleInfo(args);
    } else if (command == "EVAL") {
      HandleEval(args);
    } else if (command == "BATCH") {
      bool quit = false;
      HandleBatch(args, &quit);
      if (quit) break;
    } else if (command == "STATS") {
      channel_->Write(state_->service().stats().ToString() + "OK\n");
    } else {
      // Structured so scripted clients can distinguish a typo'd verb
      // from a failed command; the session stays alive.
      Err("unknown-verb '" + command + "'");
    }
  }
  if (!channel_->Flush()) return ExitReason::kChannelError;
  return ExitReason::kQuit;
}

}  // namespace iodb::server
