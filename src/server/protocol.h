// The serving line protocol, factored out of tools/iodb_serve so the
// single-client stdin loop and the concurrent socket server speak
// byte-identical dialects of the same protocol (see the iodb_serve
// header comment and docs/SERVING.md for the verb reference).
//
// ServingState is the per-process half: the shared EvaluationService
// (or the durable registry wrapping one) that every session serves
// from. ProtocolSession is the per-client half: one command loop over
// one LineChannel.
//
// Concurrency contract: any number of ProtocolSessions may Run()
// concurrently over one ServingState. EVAL/BATCH/INFO/STATS go straight
// to the service (readers pin a published database version and never
// block); LOAD/APPEND/SAVE serialize on the state's writer mutex —
// against each other only, never against readers. OPEN (which swaps the
// whole registry) is only allowed on sessions that opted in
// (allow_open), i.e. the single-client stdin mode.

#ifndef IODB_SERVER_PROTOCOL_H_
#define IODB_SERVER_PROTOCOL_H_

#include <memory>
#include <mutex>
#include <string>

#include "server/line_channel.h"
#include "service/service.h"
#include "storage/durable_registry.h"
#include "storage/wal.h"
#include "util/budget.h"

namespace iodb::server {

/// Command lines (and BATCH request lines) over this limit are rejected
/// with a structured error instead of being buffered without bound.
inline constexpr size_t kMaxLineBytes = size_t{1} << 20;

/// The process-wide serving state: a bare in-memory service, swapped
/// for a durable registry's service when one is open.
class ServingState {
 public:
  ServingState(ServiceOptions options, storage::WalSyncOptions sync);

  /// Opens (creating if needed) a durable registry at `dir` and swaps it
  /// in as the serving state. Callers must guarantee no session is
  /// mid-request (startup, or the single-session stdin mode).
  Status OpenRegistry(const std::string& dir);

  EvaluationService& service();
  storage::DurableRegistry* registry() { return registry_.get(); }

  /// Shutdown hook: makes every acknowledged append durable.
  Status FlushRegistry();

  const ServiceOptions& options() const { return options_; }
  const storage::WalSyncOptions& sync() const { return sync_; }

  /// Serializes registry-writing verbs (LOAD/APPEND/SAVE) across
  /// sessions. Readers never take this.
  std::mutex& write_mu() { return write_mu_; }

 private:
  ServiceOptions options_;
  storage::WalSyncOptions sync_;
  std::unique_ptr<EvaluationService> bare_;
  std::unique_ptr<storage::DurableRegistry> registry_;
  std::mutex write_mu_;
};

/// One client's command loop. Reads commands from the channel, writes
/// responses to it, and flushes after every command.
class ProtocolSession {
 public:
  struct Options {
    /// Permit the OPEN verb (single-session modes only; a socket session
    /// may not swap the registry under its peers).
    bool allow_open = false;
  };

  /// `cancel` (optional, caller-owned) aborts in-flight evaluations —
  /// the socket server trips it when the peer disconnects.
  ProtocolSession(ServingState* state, LineChannel* channel, Options options,
                  const CancelToken* cancel = nullptr);

  enum class ExitReason {
    kQuit,         // QUIT verb or clean EOF
    kInterrupted,  // the channel's wake fd tripped (shutdown signal)
    kChannelError, // read or write failure (peer reset, broken pipe)
  };

  /// Serves commands until the session ends; returns why it ended.
  ExitReason Run();

 private:
  // Verb handlers append their response lines to the channel.
  void HandleLoad(const std::string& name, const std::string& text);
  void HandleAppend(const std::string& name, const std::string& text);
  void HandleOpen(const std::string& dir);
  void HandleSave(const std::string& name);
  void HandleInfo(const std::string& name);
  void HandleEval(const std::string& args);
  void HandleBatch(const std::string& args, bool* quit);
  void Err(const std::string& message);
  void PrintResponse(const Result<EvalResponse>& response);

  /// Reads payload lines up to the END terminator.
  LineChannel::ReadStatus ReadUntilEnd(std::string* text);

  ServingState* state_;
  LineChannel* channel_;
  Options options_;
  const CancelToken* cancel_;
};

}  // namespace iodb::server

#endif  // IODB_SERVER_PROTOCOL_H_
