#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace iodb::server {

namespace {

Status SocketError(const std::string& what) {
  return Status::InvalidArgument(what + ": " + std::strerror(errno));
}

// A stalled or dead peer must not wedge a session (and with it, Stop())
// forever on a blocked write.
constexpr int kSendTimeoutSeconds = 30;

void ConfigureSessionFd(int fd) {
  struct timeval timeout = {kSendTimeoutSeconds, 0};
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
}

}  // namespace

SocketServer::SocketServer(ServingState* state, ServerOptions options)
    : state_(state), options_(std::move(options)) {}

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    ServingState* state, ServerOptions options) {
  if (options.unix_path.empty() && options.tcp_port < 0) {
    return Status::InvalidArgument(
        "SocketServer needs a unix path or a TCP port");
  }
  // A peer that resets mid-response must surface as a write error, not
  // kill the process.
  ::signal(SIGPIPE, SIG_IGN);
  std::unique_ptr<SocketServer> server(
      new SocketServer(state, std::move(options)));
  Status status = server->Bind();
  if (!status.ok()) return status;
  server->accept_thread_ = std::thread([raw = server.get()] {
    raw->AcceptLoop();
  });
  return server;
}

Status SocketServer::Bind() {
  if (::pipe(wake_pipe_) != 0 || ::pipe(reap_pipe_) != 0) {
    return SocketError("pipe");
  }
  if (!options_.unix_path.empty()) {
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: '" +
                                     options_.unix_path + "'");
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (unix_listen_fd_ < 0) return SocketError("socket(AF_UNIX)");
    (void)::unlink(options_.unix_path.c_str());  // replace a stale socket
    if (::bind(unix_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return SocketError("bind('" + options_.unix_path + "')");
    }
    if (::listen(unix_listen_fd_, 64) != 0) return SocketError("listen");
  }
  if (options_.tcp_port >= 0) {
    tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (tcp_listen_fd_ < 0) return SocketError("socket(AF_INET)");
    int one = 1;
    (void)::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                       sizeof(one));
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(tcp_listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return SocketError("bind(127.0.0.1:" +
                         std::to_string(options_.tcp_port) + ")");
    }
    if (::listen(tcp_listen_fd_, 64) != 0) return SocketError("listen");
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_listen_fd_,
                      reinterpret_cast<struct sockaddr*>(&addr),
                      &len) != 0) {
      return SocketError("getsockname");
    }
    tcp_port_ = ntohs(addr.sin_port);
  }
  return Status::Ok();
}

void SocketServer::RunSession(Session* session) {
  LineChannel channel(session->fd, session->fd, wake_pipe_[0]);
  ProtocolSession protocol(state_, &channel, ProtocolSession::Options{},
                           &session->cancel);
  (void)protocol.Run();
  session->done.store(true, std::memory_order_release);
  // Wake the accept loop to join us; the byte is drained there.
  char byte = 'r';
  (void)!::write(reap_pipe_[1], &byte, 1);
}

void SocketServer::ReapFinishedSessions() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (size_t i = 0; i < sessions_.size();) {
    if (sessions_[i]->done.load(std::memory_order_acquire)) {
      sessions_[i]->thread.join();
      ::close(sessions_[i]->fd);
      sessions_.erase(sessions_.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void SocketServer::AcceptLoop() {
  for (;;) {
    // Rebuild the poll set every pass: reap pipe + listeners + every
    // live session fd (watched for peer hangup only — the session
    // thread owns the data).
    std::vector<struct pollfd> fds;
    std::vector<Session*> watched;
    fds.push_back({reap_pipe_[0], POLLIN, 0});
    if (unix_listen_fd_ >= 0 && !stopping_.load()) {
      fds.push_back({unix_listen_fd_, POLLIN, 0});
    }
    if (tcp_listen_fd_ >= 0 && !stopping_.load()) {
      fds.push_back({tcp_listen_fd_, POLLIN, 0});
    }
    const size_t first_session = fds.size();
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      for (const std::unique_ptr<Session>& session : sessions_) {
        if (session->done.load(std::memory_order_acquire) ||
            session->hangup_seen) {
          continue;
        }
        fds.push_back({session->fd, POLLRDHUP, 0});
        watched.push_back(session.get());
      }
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; Stop() still joins whatever is left
    }
    if ((fds[0].revents & POLLIN) != 0) {
      char drain[64];
      (void)!::read(reap_pipe_[0], drain, sizeof(drain));
    }
    // Peer hangups: fan the disconnect out to the session's in-flight
    // evaluation via its cancel token. The session itself exits through
    // its read/write path; we only trip the token once. This must run
    // BEFORE the reap — sessions are only ever freed by
    // ReapFinishedSessions() on this thread, so the watched pointers
    // stay valid exactly until then. A session that already finished on
    // its own gets no disconnect count.
    for (size_t i = first_session; i < fds.size(); ++i) {
      if ((fds[i].revents & (POLLRDHUP | POLLHUP | POLLERR)) == 0) continue;
      Session* session = watched[i - first_session];
      if (session->done.load(std::memory_order_acquire)) continue;
      session->hangup_seen = true;
      session->cancel.Cancel();
      ++disconnect_cancels_;
    }
    ReapFinishedSessions();
    if (stopping_.load()) {
      // Drain mode: no new connections; exit once every session thread
      // has been joined and removed.
      std::lock_guard<std::mutex> lock(sessions_mu_);
      if (sessions_.empty()) return;
      continue;
    }
    // New connections.
    for (size_t i = 1; i < first_session; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      int fd = ::accept4(fds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) continue;
      bool reject;
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        reject = static_cast<int>(sessions_.size()) >= options_.max_sessions;
      }
      if (reject) {
        static const char kBusy[] = "ERR too-many-sessions\n";
        (void)!::write(fd, kBusy, sizeof(kBusy) - 1);
        ::close(fd);
        ++rejected_;
        continue;
      }
      ConfigureSessionFd(fd);
      auto session = std::make_unique<Session>();
      session->fd = fd;
      Session* raw = session.get();
      {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        sessions_.push_back(std::move(session));
      }
      raw->thread = std::thread([this, raw] { RunSession(raw); });
      ++accepted_;
    }
  }
}

SocketServer::Stats SocketServer::stats() const {
  Stats stats;
  stats.sessions_accepted = accepted_;
  stats.sessions_rejected = rejected_;
  stats.disconnect_cancels = disconnect_cancels_;
  std::lock_guard<std::mutex> lock(sessions_mu_);
  stats.sessions_active = static_cast<long long>(sessions_.size());
  return stats;
}

void SocketServer::Stop() {
  if (stopped_) return;
  stopping_.store(true);
  // One never-drained wake byte: every session's next (or current)
  // blocked read returns kInterrupted, now and forever.
  char byte = 'w';
  (void)!::write(wake_pipe_[1], &byte, 1);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const std::unique_ptr<Session>& session : sessions_) {
      session->cancel.Cancel();
    }
  }
  (void)!::write(reap_pipe_[1], &byte, 1);  // wake the accept loop
  if (accept_thread_.joinable()) accept_thread_.join();
  ReapFinishedSessions();  // anything that finished after the loop exited
  if (unix_listen_fd_ >= 0) {
    ::close(unix_listen_fd_);
    unix_listen_fd_ = -1;
    (void)::unlink(options_.unix_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
  for (int* pipe_pair : {wake_pipe_, reap_pipe_}) {
    for (int i = 0; i < 2; ++i) {
      if (pipe_pair[i] >= 0) {
        ::close(pipe_pair[i]);
        pipe_pair[i] = -1;
      }
    }
  }
  stopped_ = true;
}

SocketServer::~SocketServer() { Stop(); }

}  // namespace iodb::server
