// SocketServer: the concurrent multi-client front end. An accept loop
// plus one session thread per connection, every session speaking the
// line protocol (server/protocol.h) against one shared ServingState.
//
// Concurrency model (see docs/SERVING.md):
//
//   * N sessions serve concurrently; EVAL/BATCH pin a published
//     database version at request start and run lock-free against it —
//     no reader ever blocks on a writer;
//   * LOAD/APPEND/SAVE funnel through the single-writer publish path
//     (WAL-log, build the next version, atomically republish); readers
//     on the old version drain naturally;
//   * per-session governance: every session owns a CancelToken wired
//     into its evaluations. The monitor thread watches session sockets
//     for peer hangup (POLLRDHUP) and trips the token, so a client that
//     disconnects mid-request cancels its in-flight work instead of
//     burning a worker. (Half-closing the write side counts as
//     disconnecting — keep the socket open until responses arrive.)
//   * shutdown (Stop): a never-drained wake byte interrupts every
//     session's next (or current) blocking read, all tokens are
//     cancelled, and the server joins every session before returning —
//     a drain, not an abort; acknowledged work is complete.

#ifndef IODB_SERVER_SERVER_H_
#define IODB_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/protocol.h"
#include "util/budget.h"
#include "util/status.h"

namespace iodb::server {

struct ServerOptions {
  /// Non-empty: listen on this unix-domain socket path (a stale socket
  /// file is replaced).
  std::string unix_path;
  /// >= 0: listen on 127.0.0.1:tcp_port (0 picks an ephemeral port,
  /// readable back via tcp_port()). Loopback only — the protocol has no
  /// authentication.
  int tcp_port = -1;
  /// Connections beyond this many live sessions are turned away with a
  /// one-line structured error.
  int max_sessions = 256;
};

class SocketServer {
 public:
  /// Binds the listeners and starts the accept/monitor thread. At least
  /// one of unix_path / tcp_port must be set.
  static Result<std::unique_ptr<SocketServer>> Start(ServingState* state,
                                                     ServerOptions options);

  ~SocketServer();

  /// The bound TCP port (resolved when options asked for port 0), or -1.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }

  struct Stats {
    long long sessions_accepted = 0;
    long long sessions_active = 0;
    long long sessions_rejected = 0;
    long long disconnect_cancels = 0;
  };
  Stats stats() const;

  /// Graceful drain: stops accepting, wakes every blocked session read,
  /// cancels in-flight evaluations, joins all session threads, closes
  /// the listeners (unlinking the unix path). Idempotent.
  void Stop();

 private:
  struct Session {
    int fd = -1;
    CancelToken cancel;
    std::thread thread;
    std::atomic<bool> done{false};
    bool hangup_seen = false;
  };

  SocketServer(ServingState* state, ServerOptions options);
  Status Bind();
  void AcceptLoop();
  void RunSession(Session* session);
  void ReapFinishedSessions();  // join + close + erase (accept thread only)

  ServingState* state_;
  ServerOptions options_;
  int tcp_port_ = -1;
  int unix_listen_fd_ = -1;
  int tcp_listen_fd_ = -1;
  // wake_pipe_: written once at Stop(), never drained — every session's
  // LineChannel polls the read end (level-triggered shutdown).
  // reap_pipe_: session threads write a byte when they finish so the
  // accept loop wakes to join them (drained each time).
  int wake_pipe_[2] = {-1, -1};
  int reap_pipe_[2] = {-1, -1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;  // Stop() ran to completion
  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::atomic<long long> accepted_{0};
  std::atomic<long long> rejected_{0};
  std::atomic<long long> disconnect_cancels_{0};
};

}  // namespace iodb::server

#endif  // IODB_SERVER_SERVER_H_
