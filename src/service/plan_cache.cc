#include "service/plan_cache.h"

#include "util/check.h"

namespace iodb {

PlanCache::PlanCache(size_t capacity) : capacity_(capacity) {
  IODB_CHECK_GT(capacity_, 0u);
}

std::shared_ptr<const PreparedQuery> PlanCache::Get(const PlanKey& key) {
  std::scoped_lock lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second);
  return it->second->second;
}

void PlanCache::Put(const PlanKey& key,
                    std::shared_ptr<const PreparedQuery> plan) {
  IODB_CHECK(plan != nullptr);
  std::scoped_lock lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(plan);
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.emplace_front(key, std::move(plan));
  index_[key] = order_.begin();
  while (order_.size() > capacity_) {
    index_.erase(order_.back().first);
    order_.pop_back();
    ++evictions_;
  }
}

void PlanCache::Clear() {
  std::scoped_lock lock(mu_);
  index_.clear();
  order_.clear();
}

std::vector<PlanKey> PlanCache::KeysByRecency() const {
  std::scoped_lock lock(mu_);
  std::vector<PlanKey> keys;
  keys.reserve(order_.size());
  for (const auto& [key, plan] : order_) keys.push_back(key);
  return keys;
}

PlanCacheStats PlanCache::stats() const {
  std::scoped_lock lock(mu_);
  PlanCacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = static_cast<long long>(order_.size());
  stats.capacity = static_cast<long long>(capacity_);
  return stats;
}

}  // namespace iodb
