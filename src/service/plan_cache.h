// Bounded LRU cache of compiled query plans.
//
// The serving layer compiles queries once (core/prepare.h) and reuses the
// plan across requests; this cache is the reuse point. Keys pair the
// vocabulary identity with the structural plan fingerprint
// (Vocabulary::uid(), FingerprintPlanInputs), so textual re-submissions
// of the same query hit, while plans compiled against different
// vocabularies — whose predicate ids are incomparable — can never be
// confused. Values are shared immutable plans: a Get() returns a
// shared_ptr that stays valid after the entry is evicted, so in-flight
// evaluations never race an eviction.
//
// Thread-safe: all operations take an internal mutex. PreparedQuery's own
// evaluation caches are internally synchronized as well, so a cached plan
// may be evaluated from many workers concurrently (against distinct
// Database objects).

#ifndef IODB_SERVICE_PLAN_CACHE_H_
#define IODB_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/prepare.h"

namespace iodb {

/// Cache key: the vocabulary identity plus the plan-input fingerprint.
struct PlanKey {
  uint64_t vocab_uid = 0;
  uint64_t fingerprint = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
};

/// Hash functor for PlanKey.
struct PlanKeyHash {
  size_t operator()(const PlanKey& key) const {
    size_t seed = static_cast<size_t>(key.vocab_uid);
    HashCombine(seed, static_cast<size_t>(key.fingerprint));
    return seed;
  }
};

/// Counter snapshot; see PlanCache::stats().
struct PlanCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long evictions = 0;
  long long entries = 0;   // current size
  long long capacity = 0;  // configured bound
};

/// Bounded, thread-safe LRU map from PlanKey to shared compiled plans.
class PlanCache {
 public:
  /// `capacity` is the maximum number of cached plans; must be positive.
  explicit PlanCache(size_t capacity);

  /// Looks up `key`, refreshing its recency on a hit. Counts one hit or
  /// one miss. Returns nullptr on a miss.
  std::shared_ptr<const PreparedQuery> Get(const PlanKey& key);

  /// Inserts (or replaces) the plan under `key` as the most recent entry,
  /// evicting least-recently-used entries while over capacity. Replacing
  /// an existing key is not an eviction.
  void Put(const PlanKey& key, std::shared_ptr<const PreparedQuery> plan);

  /// Drops every entry (stats are kept; no evictions are counted).
  void Clear();

  /// The cached keys, most recently used first (test hook for asserting
  /// the LRU order).
  std::vector<PlanKey> KeysByRecency() const;

  PlanCacheStats stats() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;

  mutable std::mutex mu_;
  // Front = most recently used. The index maps keys to list positions.
  std::list<std::pair<PlanKey, std::shared_ptr<const PreparedQuery>>> order_;
  std::unordered_map<
      PlanKey,
      std::list<std::pair<PlanKey,
                          std::shared_ptr<const PreparedQuery>>>::iterator,
      PlanKeyHash>
      index_;
  long long hits_ = 0;
  long long misses_ = 0;
  long long evictions_ = 0;
};

}  // namespace iodb

#endif  // IODB_SERVICE_PLAN_CACHE_H_
