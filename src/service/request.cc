#include "service/request.h"

#include <charconv>
#include <vector>

#include "core/semantics.h"
#include "util/strings.h"

namespace iodb {

namespace {

// Parses a non-negative decimal integer; rejects empty, signs, trailing
// junk.
bool ParseNonNegative(std::string_view text, long long* out) {
  long long value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) return false;
  if (value < 0) return false;
  *out = value;
  return true;
}

// Splits off the next whitespace-delimited token of `rest`; returns empty
// when exhausted. `rest` is advanced past the token and any following
// whitespace.
std::string_view NextToken(std::string_view& rest) {
  rest = StripWhitespace(rest);
  size_t end = 0;
  while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
  std::string_view token = rest.substr(0, end);
  rest = StripWhitespace(rest.substr(end));
  return token;
}

}  // namespace

Result<EvalRequest> ParseEvalRequest(const std::string& line) {
  std::string_view rest = line;
  EvalRequest request;
  request.db = std::string(NextToken(rest));
  if (request.db.empty()) {
    return Status::InvalidArgument("EVAL request needs a database name");
  }
  while (rest.rfind("--", 0) == 0) {
    std::string flag(NextToken(rest));
    if (flag == "--countermodel") {
      request.options.want_countermodel = true;
    } else if (flag == "--explain") {
      request.explain = true;
    } else if (flag == "--identity") {
      request.report_identity = true;
    } else if (flag.rfind("--semantics=", 0) == 0) {
      std::optional<OrderSemantics> semantics =
          ParseOrderSemantics(flag.substr(12));
      if (!semantics.has_value()) {
        return Status::InvalidArgument("unknown semantics in '" + flag + "'");
      }
      request.options.semantics = *semantics;
    } else if (flag.rfind("--engine=", 0) == 0) {
      std::optional<EngineKind> engine = ParseEngineKind(flag.substr(9));
      if (!engine.has_value()) {
        return Status::InvalidArgument("unknown engine in '" + flag + "'");
      }
      request.options.engine = *engine;
    } else if (flag.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseNonNegative(std::string_view(flag).substr(14),
                            &request.deadline_ms)) {
        return Status::InvalidArgument("bad deadline in '" + flag + "'");
      }
    } else if (flag.rfind("--step-budget=", 0) == 0) {
      if (!ParseNonNegative(std::string_view(flag).substr(14),
                            &request.step_budget)) {
        return Status::InvalidArgument("bad step budget in '" + flag + "'");
      }
    } else if (flag.rfind("--costing=", 0) == 0) {
      const std::string_view value = std::string_view(flag).substr(10);
      if (value == "on") {
        request.costing = 1;
      } else if (value == "off") {
        request.costing = 0;
      } else {
        return Status::InvalidArgument("bad costing value in '" + flag +
                                       "' (want on|off)");
      }
    } else {
      return Status::InvalidArgument("unknown flag '" + flag + "'");
    }
  }
  request.query = std::string(rest);
  if (request.query.empty()) {
    return Status::InvalidArgument("EVAL request needs a query");
  }
  return request;
}

std::string FormatEvalRequest(const EvalRequest& request) {
  std::string out = request.db;
  if (request.options.semantics != OrderSemantics::kFinite) {
    out += std::string(" --semantics=") +
           OrderSemanticsName(request.options.semantics);
  }
  if (request.options.engine != EngineKind::kAuto) {
    out += std::string(" --engine=") + EngineKindName(request.options.engine);
  }
  if (request.deadline_ms >= 0) {
    out += " --deadline-ms=" + std::to_string(request.deadline_ms);
  }
  if (request.step_budget >= 0) {
    out += " --step-budget=" + std::to_string(request.step_budget);
  }
  if (request.costing >= 0) {
    out += std::string(" --costing=") + (request.costing > 0 ? "on" : "off");
  }
  if (request.options.want_countermodel) out += " --countermodel";
  if (request.explain) out += " --explain";
  if (request.report_identity) out += " --identity";
  return out + " " + request.query;
}

std::string FormatResponseLine(const EvalResponse& response) {
  std::string out = response.entailed ? "ENTAILED" : "NOT ENTAILED";
  out += std::string("  [engine: ") + EngineKindName(response.engine_used) +
         ", cache: " + (response.plan_cache_hit ? "hit" : "miss");
  if (response.report_identity) {
    out += ", db: " + std::to_string(response.db_uid) + "@" +
           std::to_string(response.db_revision);
  }
  return out + "]";
}

}  // namespace iodb
