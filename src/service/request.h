// Request/response types of the evaluation service, plus their
// line-oriented wire forms (shared by tools/iodb_serve and
// tools/iodb_replay so the interactive protocol and replayed traces parse
// identically).
//
// Wire form of an EVAL request (one line):
//
//   <db-name> [--semantics=finite|integer|rational] [--engine=NAME]
//             [--deadline-ms=N] [--step-budget=N] [--costing=on|off]
//             [--countermodel] [--explain] [--identity] <query text>
//
// Flags follow the database name; the first token that is not a flag
// starts the query text (query text never begins with "--"). Flag names
// and values match tools/iodb_eval, so request lines and CLI invocations
// stay interchangeable.

#ifndef IODB_SERVICE_REQUEST_H_
#define IODB_SERVICE_REQUEST_H_

#include <optional>
#include <string>

#include "core/engine.h"
#include "core/model.h"
#include "util/status.h"

namespace iodb {

/// One evaluation request against a registered database.
struct EvalRequest {
  /// Name the database was registered under.
  std::string db;
  /// Query text in the parser's format.
  std::string query;
  /// Evaluation options (semantics, forced engine, countermodel request,
  /// rewrite budget). Part of the plan-cache key.
  EntailOptions options;
  /// Wall-clock deadline in milliseconds (< 0 = use the service default).
  /// Evaluation-time governance, NOT part of the plan-cache key: the same
  /// compiled plan serves governed and ungoverned requests.
  long long deadline_ms = -1;
  /// Step budget — units of search work (< 0 = use the service default).
  long long step_budget = -1;
  /// Statistics-backed cost-based planning: 1 = on, 0 = off, -1 = use
  /// the service default (ServiceOptions::use_cost_model). Advisory
  /// only — costing influences schedules and engine routes, never
  /// verdicts. The service injects the pinned version's planner into the
  /// effective EntailOptions, so this IS part of the plan-cache key.
  int costing = -1;
  /// Attach the rendered plan + evaluation counters to the response.
  bool explain = false;
  /// Report the pinned database version (uid@revision) in the verdict
  /// line — the observable MVCC handle: concurrent sessions use it to
  /// assert which published version served them.
  bool report_identity = false;
};

/// The verdict payload of one request.
struct EvalResponse {
  bool entailed = false;
  /// The engine that produced the verdict.
  EngineKind engine_used = EngineKind::kAuto;
  /// True if the compiled plan came from the service's plan cache.
  bool plan_cache_hit = false;
  /// Falsifying minimal model, when requested and not entailed.
  std::optional<FiniteModel> countermodel;
  /// PreparedQuery::Explain(result) rendering; nonempty iff requested.
  std::string explain;
  /// PreparedQuery::PlanChoiceSummary() of the plan that served the
  /// request ("default", or "costed(...)" when the cost-based pass
  /// changed the plan). Always filled; iodb_replay tags traces with it.
  std::string plan_summary;
  /// Identity of the published database version the evaluation ran
  /// against (the version pinned at request start).
  uint64_t db_uid = 0;
  uint64_t db_revision = 0;
  /// Mirrors EvalRequest::report_identity so FormatResponseLine knows
  /// whether to render the version handle.
  bool report_identity = false;
};

/// Parses the wire form above. Fails on an empty line, a missing query,
/// or an unknown flag/semantics/engine value.
Result<EvalRequest> ParseEvalRequest(const std::string& line);

/// Renders the wire form of `request` (canonical flag order; a parse
/// round-trips).
std::string FormatEvalRequest(const EvalRequest& request);

/// Renders the one-line verdict, e.g.
/// "ENTAILED [engine: bounded-width, cache: hit]". Countermodel and
/// explain payloads are multi-line and rendered by the caller.
std::string FormatResponseLine(const EvalResponse& response);

}  // namespace iodb

#endif  // IODB_SERVICE_REQUEST_H_
