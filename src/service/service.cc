#include "service/service.h"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "core/minimal_models.h"
#include "core/parser.h"
#include "stats/stats.h"
#include "util/parallel.h"

namespace iodb {

std::string ServiceStats::ToString() const {
  auto line = [](const char* name, long long value) {
    std::string out = name;
    while (out.size() < 22) out += ' ';
    return out + std::to_string(value) + "\n";
  };
  std::string out;
  out += line("requests", requests);
  out += line("batches", batches);
  out += line("plans-compiled", plans_compiled);
  out += line("databases", databases);
  out += line("publishes", publishes);
  out += line("plan-cache-hits", plan_cache.hits);
  out += line("plan-cache-misses", plan_cache.misses);
  out += line("plan-cache-evictions", plan_cache.evictions);
  out += line("plan-cache-entries", plan_cache.entries);
  out += line("plan-cache-capacity", plan_cache.capacity);
  return out;
}

EvaluationService::EvaluationService(ServiceOptions options)
    : vocab_(std::make_shared<Vocabulary>()),
      num_workers_(options.num_workers > 0 ? options.num_workers
                                           : DefaultWorkerCount()),
      default_deadline_ms_(options.default_deadline_ms),
      default_step_budget_(options.default_step_budget),
      use_cost_model_(options.use_cost_model),
      plan_cache_(options.plan_cache_capacity) {}

long long EvaluationService::EffectiveDeadlineMs(
    const EvalRequest& request) const {
  return request.deadline_ms >= 0 ? request.deadline_ms : default_deadline_ms_;
}

long long EvaluationService::EffectiveStepBudget(
    const EvalRequest& request) const {
  return request.step_budget >= 0 ? request.step_budget
                                  : default_step_budget_;
}

EntailOptions EvaluationService::EffectiveOptions(const EvalRequest& request,
                                                 const Database& db) const {
  EntailOptions options = request.options;
  const bool costing =
      request.costing >= 0 ? request.costing > 0 : use_cost_model_;
  // PlannerFor is memoized per published version (pre-materialized at
  // Publish), so this is a shared_ptr copy on the hot path. The planner
  // fingerprint flows into FingerprintPlanInputs, so plans costed
  // against different statistics never collide in the cache.
  options.planner = costing ? stats::PlannerFor(db) : nullptr;
  return options;
}

Result<DbInfo> EvaluationService::Load(const std::string& name,
                                       const std::string& text) {
  if (name.empty()) {
    return Status::InvalidArgument("database name must be nonempty");
  }
  Result<Database> db = ParseDatabase(text, vocab_);
  if (!db.ok()) return db.status();
  return Register(name, std::move(db.value()));
}

DbInfo EvaluationService::Publish(const std::string& name, Database db) {
  // Pre-materialize the derived structures on the writer, so no reader of
  // the published version ever triggers a lazy fill (NormView and the
  // enumeration context fill under const and are not built for
  // concurrent first-touch). A database the normalizer rejects publishes
  // anyway — evaluation reports the same error per request.
  Result<const NormDb*> view = db.NormView();
  if (view.ok()) (void)SharedEnumerationContext(*view.value());
  // Statistics + cost model too: readers fetch the memoized entry with
  // one shared_ptr copy, never filling the slot concurrently.
  (void)stats::PlannerFor(db);
  DbInfo info{name, db.SizeAtoms(), db.uid(), db.revision()};
  auto published = std::make_shared<const Database>(std::move(db));
  {
    std::unique_lock<std::shared_mutex> lock(db_mu_);
    databases_[name] = std::move(published);
  }
  ++publishes_;
  return info;
}

Result<DbInfo> EvaluationService::Register(const std::string& name,
                                           Database db) {
  if (name.empty()) {
    return Status::InvalidArgument("database name must be nonempty");
  }
  if (db.vocab() != vocab_) {
    return Status::InvalidArgument(
        "registered databases must share the service vocabulary "
        "(build against vocab())");
  }
  std::lock_guard<std::mutex> write_lock(write_mu_);
  return Publish(name, std::move(db));
}

EvaluationService::DatabasePtr EvaluationService::Snapshot(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  auto it = databases_.find(name);
  return it == databases_.end() ? nullptr : it->second;
}

const Database* EvaluationService::database(const std::string& name) const {
  return Snapshot(name).get();
}

Result<DbInfo> EvaluationService::Mutate(
    const std::string& name, const std::function<Status(Database*)>& mutate,
    const std::function<Status(const Database&)>& before_publish) {
  std::lock_guard<std::mutex> write_lock(write_mu_);
  DatabasePtr current = Snapshot(name);
  if (current == nullptr) {
    return Status::InvalidArgument("unknown database '" + name + "'");
  }
  // Build the next version off to the side; readers keep serving from
  // `current` the whole time. The fork keeps the uid and the memoized
  // NormView, so Publish() grows the previous reachability index
  // incrementally instead of rebuilding it.
  Database next = current->ForkNextVersion();
  Status status = mutate(&next);
  if (!status.ok()) return status;
  if (before_publish != nullptr) {
    status = before_publish(next);
    if (!status.ok()) return status;
  }
  return Publish(name, std::move(next));
}

std::vector<std::string> EvaluationService::database_names() const {
  std::shared_lock<std::shared_mutex> lock(db_mu_);
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, db] : databases_) names.push_back(name);
  return names;
}

Result<std::shared_ptr<const PreparedQuery>> EvaluationService::PlanFor(
    const std::string& query_text, const EntailOptions& options,
    bool* cache_hit) {
  Result<Query> query = ParseQuery(query_text, vocab_);
  if (!query.ok()) return query.status();
  const PlanKey key{vocab_->uid(),
                    FingerprintPlanInputs(query.value(), options)};
  if (std::shared_ptr<const PreparedQuery> plan = plan_cache_.Get(key)) {
    *cache_hit = true;
    return plan;
  }
  *cache_hit = false;
  Result<PreparedQuery> prepared = Prepare(vocab_, query.value(), options);
  if (!prepared.ok()) return prepared.status();
  auto plan = std::make_shared<const PreparedQuery>(
      std::move(prepared.value()));
  ++plans_compiled_;
  plan_cache_.Put(key, plan);
  return std::shared_ptr<const PreparedQuery>(plan);
}

EvalResponse EvaluationService::MakeResponse(const PreparedQuery& plan,
                                             const Database& db,
                                             EntailResult result,
                                             bool cache_hit,
                                             const EvalRequest& request) const {
  EvalResponse response;
  response.entailed = result.entailed;
  response.engine_used = result.engine_used;
  response.plan_cache_hit = cache_hit;
  response.db_uid = db.uid();
  response.db_revision = db.revision();
  response.report_identity = request.report_identity;
  response.plan_summary = plan.PlanChoiceSummary();
  if (request.explain) response.explain = plan.Explain(result);
  response.countermodel = std::move(result.countermodel);
  return response;
}

Result<EvalResponse> EvaluationService::Eval(const EvalRequest& request,
                                             const CancelToken* cancel) {
  ++requests_;
  // Pin the published version for the whole request: everything after
  // this line runs lock-free against an immutable database, however many
  // publishes land meanwhile.
  DatabasePtr db = Snapshot(request.db);
  if (db == nullptr) {
    return Status::InvalidArgument("unknown database '" + request.db + "'");
  }
  bool cache_hit = false;
  Result<std::shared_ptr<const PreparedQuery>> plan =
      PlanFor(request.query, EffectiveOptions(request, *db), &cache_hit);
  if (!plan.ok()) return plan.status();
  ExecBudget budget;
  const long long deadline_ms = EffectiveDeadlineMs(request);
  const long long step_budget = EffectiveStepBudget(request);
  if (deadline_ms >= 0) budget.SetDeadlineAfterMs(deadline_ms);
  if (step_budget >= 0) budget.SetStepLimit(step_budget);
  if (cancel != nullptr) budget.SetCancelToken(cancel);
  Result<EntailResult> result =
      plan.value()->Evaluate(*db, budget.limited() ? &budget : nullptr);
  if (!result.ok()) return result.status();
  return MakeResponse(*plan.value(), *db, std::move(result.value()),
                      cache_hit, request);
}

std::vector<Result<EvalResponse>> EvaluationService::EvalBatch(
    std::span<const EvalRequest> requests, const CancelToken* cancel) {
  ++batches_;
  requests_ += static_cast<long long>(requests.size());
  // Deadlines of batch members count from the batch start, not from the
  // moment their plan group reaches the front of the queue — a batch
  // deadline is an end-to-end promise.
  const std::chrono::steady_clock::time_point batch_start =
      std::chrono::steady_clock::now();

  // Phase 1 (serial): pin database versions and resolve plans. Parsing
  // and compiling touch the shared vocabulary and plan cache; evaluation
  // is the part worth fanning out. The pins are the batch's snapshot:
  // every member evaluates the version published at batch start, however
  // many publishes land while the batch runs. Pins are memoized per
  // name — members naming the same database share ONE pin, so a publish
  // landing mid-loop cannot split a batch across versions.
  struct Slot {
    DatabasePtr db;
    std::shared_ptr<const PreparedQuery> plan;
    bool cache_hit = false;
  };
  std::vector<Result<EvalResponse>> results(
      requests.size(), Result<EvalResponse>(EvalResponse{}));
  std::vector<Slot> slots(requests.size());
  std::unordered_map<std::string, DatabasePtr> pinned;
  for (size_t i = 0; i < requests.size(); ++i) {
    const EvalRequest& request = requests[i];
    Slot& slot = slots[i];
    auto [pin, first_use] = pinned.try_emplace(request.db, nullptr);
    if (first_use) pin->second = Snapshot(request.db);
    slot.db = pin->second;
    if (slot.db == nullptr) {
      results[i] =
          Status::InvalidArgument("unknown database '" + request.db + "'");
      continue;
    }
    Result<std::shared_ptr<const PreparedQuery>> plan =
        PlanFor(request.query, EffectiveOptions(request, *slot.db),
                &slot.cache_hit);
    if (!plan.ok()) {
      results[i] = plan.status();
      continue;
    }
    slot.plan = std::move(plan.value());
  }

  // Phase 2: group the healthy slots by plan (one group = one
  // ParallelEvaluateBatch call over its databases) in first-appearance
  // order, so scheduling is deterministic.
  std::unordered_map<const PreparedQuery*, size_t> group_of;
  std::vector<std::vector<size_t>> groups;
  for (size_t i = 0; i < slots.size(); ++i) {
    if (slots[i].plan == nullptr) continue;
    auto [it, inserted] =
        group_of.try_emplace(slots[i].plan.get(), groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(i);
  }

  // Phase 3: evaluate group by group; the pool shards within a group
  // (duplicate databases are deduped inside ParallelEvaluateBatch, and a
  // single-database brute-force group shards its enumeration subtrees).
  for (const std::vector<size_t>& group : groups) {
    const PreparedQuery& plan = *slots[group[0]].plan;
    std::vector<const Database*> dbs;
    dbs.reserve(group.size());
    for (size_t slot : group) dbs.push_back(slots[slot].db.get());
    // One shared budget per plan group: the tightest member limits govern
    // the whole group, and a trip cancels the group's in-flight shards
    // (see the EvalBatch doc comment for the scope contract).
    long long min_deadline_ms = -1;
    long long min_steps = -1;
    for (size_t slot : group) {
      const long long d = EffectiveDeadlineMs(requests[slot]);
      const long long s = EffectiveStepBudget(requests[slot]);
      if (d >= 0 && (min_deadline_ms < 0 || d < min_deadline_ms)) {
        min_deadline_ms = d;
      }
      if (s >= 0 && (min_steps < 0 || s < min_steps)) min_steps = s;
    }
    ExecBudget budget;
    if (min_deadline_ms >= 0) {
      budget.SetDeadline(batch_start +
                         std::chrono::milliseconds(min_deadline_ms));
    }
    if (min_steps >= 0) budget.SetStepLimit(min_steps);
    if (cancel != nullptr) budget.SetCancelToken(cancel);
    std::vector<Result<EntailResult>> verdicts = plan.ParallelEvaluateBatch(
        dbs, num_workers_, budget.limited() ? &budget : nullptr);
    for (size_t k = 0; k < group.size(); ++k) {
      const size_t i = group[k];
      if (!verdicts[k].ok()) {
        results[i] = verdicts[k].status();
        continue;
      }
      results[i] =
          MakeResponse(plan, *slots[i].db, std::move(verdicts[k].value()),
                       slots[i].cache_hit, requests[i]);
    }
  }
  return results;
}

ServiceStats EvaluationService::stats() const {
  ServiceStats stats;
  stats.requests = requests_;
  stats.batches = batches_;
  stats.plans_compiled = plans_compiled_;
  {
    std::shared_lock<std::shared_mutex> lock(db_mu_);
    stats.databases = static_cast<long long>(databases_.size());
  }
  stats.publishes = publishes_;
  stats.plan_cache = plan_cache_.stats();
  return stats;
}

}  // namespace iodb
