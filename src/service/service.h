// In-process evaluation service: the serving layer over the whole
// pipeline.
//
// The service owns the lifecycle every caller used to hand-manage:
//
//   * one shared Vocabulary for all registered databases and parsed
//     queries (predicate ids stay comparable across the fleet, which is
//     what lets one compiled plan serve every database);
//   * named databases published as immutable versions (MVCC): each name
//     maps to a shared_ptr<const Database>, and a mutation forks the
//     current version (Database::ForkNextVersion — same uid, next
//     revisions), applies the change, pre-materializes the derived
//     structures (NormView + enumeration context, grown incrementally
//     from the previous version's reachability index), and atomically
//     republishes. The (uid, revision) identity keys every derived
//     cache, so no request can be served from a stale structure;
//   * a bounded LRU plan cache (service/plan_cache.h) keyed by
//     (vocabulary uid, plan fingerprint) with hit/miss/eviction counters;
//   * batch scheduling onto the PR-3 worker pool
//     (PreparedQuery::ParallelEvaluateBatch): a batch is grouped by
//     compiled plan, each group fans its databases across the workers,
//     and results land in their request slots — the response order is
//     deterministic and independent of scheduling.
//
// Thread-safety: the service is fully synchronized — any number of
// threads may call Eval/EvalBatch concurrently with each other and with
// Load/Register/Mutate. Readers never block on a writer: Eval pins the
// published version at request start (one shared_ptr copy under a brief
// shared lock) and runs lock-free against that immutable version; the
// single-writer path builds the next version off to the side and
// publishes it with one pointer swap, so readers on the old version
// drain naturally as their requests finish. Writers serialize against
// each other on an internal mutex. The shared Vocabulary is itself
// internally synchronized (concurrent query/mutation parsing is safe).

#ifndef IODB_SERVICE_SERVICE_H_
#define IODB_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/prepare.h"
#include "service/plan_cache.h"
#include "service/request.h"
#include "util/budget.h"
#include "util/status.h"

namespace iodb {

/// Construction-time knobs.
struct ServiceOptions {
  /// Maximum number of cached plans.
  size_t plan_cache_capacity = 128;
  /// Worker threads for batch evaluation; 0 picks DefaultWorkerCount().
  int num_workers = 0;
  /// Default per-request wall-clock deadline in milliseconds, applied when
  /// a request does not set its own (< 0 = unlimited). Unlimited requests
  /// run the zero-overhead ungoverned path.
  long long default_deadline_ms = -1;
  /// Default per-request step budget (< 0 = unlimited).
  long long default_step_budget = -1;
  /// Statistics-backed cost-based planning (src/stats): when on, each
  /// request's effective options carry the pinned version's CostModel,
  /// so Prepare() can reorder conjunct schedules and disjuncts and
  /// suggest engine routes. Advisory only — never changes verdicts.
  /// Requests override per-call with EvalRequest::costing.
  bool use_cost_model = true;
};

/// Registration summary of one database.
struct DbInfo {
  std::string name;
  int atoms = 0;
  uint64_t uid = 0;
  uint64_t revision = 0;
};

/// Aggregate counters; see EvaluationService::stats().
struct ServiceStats {
  /// Evaluation requests served (batch members count individually).
  long long requests = 0;
  /// EvalBatch calls.
  long long batches = 0;
  /// Prepare() runs (== plan-cache misses that compiled successfully).
  long long plans_compiled = 0;
  /// Registered databases.
  long long databases = 0;
  /// Database versions published (every Load/Register/Mutate that
  /// swapped a new immutable version in).
  long long publishes = 0;
  PlanCacheStats plan_cache;

  /// Multi-line "name value" rendering (the STATS payload of iodb_serve).
  std::string ToString() const;
};

/// The in-process serving layer. See the file comment for the contract.
class EvaluationService {
 public:
  /// A pinned immutable database version. Holding one keeps that version
  /// alive (and every derived cache valid) regardless of later publishes.
  using DatabasePtr = std::shared_ptr<const Database>;

  explicit EvaluationService(ServiceOptions options = {});

  /// The vocabulary shared by every registered database and parsed query.
  const VocabularyPtr& vocab() const { return vocab_; }

  /// Parses `text` (parser database format) and registers it under
  /// `name`, replacing any previous registration (the replacement is a
  /// fresh Database object, so its uid differs and no cache can confuse
  /// the two). New predicates are registered into the service vocabulary.
  Result<DbInfo> Load(const std::string& name, const std::string& text);

  /// Registers an externally built database. It must share the service
  /// vocabulary (build it against vocab()), or the compiled plans'
  /// predicate ids would be meaningless against it.
  Result<DbInfo> Register(const std::string& name, Database db);

  /// Pins the currently published version of `name` (nullptr if
  /// unregistered). One shared_ptr copy under a brief shared lock; the
  /// returned version is immutable and survives later publishes.
  DatabasePtr Snapshot(const std::string& name) const;

  /// Borrowed pointer to the currently published version, or nullptr.
  /// Valid only until the next publish of `name` — single-threaded
  /// convenience for tools and tests; concurrent callers use Snapshot().
  const Database* database(const std::string& name) const;

  /// The single-writer mutation seam. Forks the published version
  /// (Database::ForkNextVersion — the fork keeps the uid, so the
  /// revision line and every cross-revision cache continue), applies
  /// `mutate` to the fork, pre-materializes the derived structures so no
  /// concurrent reader ever pays a lazy build, then runs `before_publish`
  /// (optional; the durability hook — WAL logging goes here, after the
  /// mutation validated but before it becomes visible) and atomically
  /// republishes. On any failure the published version is untouched.
  /// Writers serialize; readers are never blocked.
  Result<DbInfo> Mutate(
      const std::string& name,
      const std::function<Status(Database*)>& mutate,
      const std::function<Status(const Database&)>& before_publish = nullptr);

  /// Registered names in registration-independent (sorted) order.
  std::vector<std::string> database_names() const;

  /// Serves one request: pins the published database version, fetches the
  /// compiled plan from the cache (compiling on a miss), evaluates
  /// lock-free against the pinned version, and renders the optional
  /// explain payload. Governance: the request's deadline/step budget (or
  /// the service defaults) bound the evaluation, and `cancel` (optional,
  /// caller-owned, must outlive the call) aborts it from another thread;
  /// exhaustion surfaces as kDeadlineExceeded / kCancelled. With no
  /// limits and no token the evaluation runs the ungoverned zero-overhead
  /// path.
  Result<EvalResponse> Eval(const EvalRequest& request,
                            const CancelToken* cancel = nullptr);

  /// Serves a batch: requests are grouped by compiled plan, each group's
  /// databases are fanned across the worker pool, and results[i] is
  /// always the verdict of requests[i] regardless of scheduling. Every
  /// member pins its database version at batch start. Per-request
  /// failures (unknown database, parse errors) fail only their own slot.
  ///
  /// Batch governance scope: each plan group shares one ExecBudget — its
  /// deadline is the batch start plus the smallest effective member
  /// deadline, its step limit the smallest effective member budget, and
  /// `cancel` is attached to every group. A trip propagates to the
  /// group's in-flight worker shards at their next stride check, and the
  /// not-yet-finished members of the group fail with the same typed
  /// status (fail-fast is the point of a batch deadline). Members of
  /// all-unlimited groups run ungoverned.
  std::vector<Result<EvalResponse>> EvalBatch(
      std::span<const EvalRequest> requests,
      const CancelToken* cancel = nullptr);

  ServiceStats stats() const;

  /// The plan cache (exposed for tests and tools).
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  /// Parses the query and returns the cached-or-compiled plan for
  /// (query, options), recording whether it was a cache hit.
  Result<std::shared_ptr<const PreparedQuery>> PlanFor(
      const std::string& query_text, const EntailOptions& options,
      bool* cache_hit);

  /// Assembles the response from an evaluation result.
  EvalResponse MakeResponse(const PreparedQuery& plan, const Database& db,
                            EntailResult result, bool cache_hit,
                            const EvalRequest& request) const;

  /// Swaps `db` in as the published version of `name` (caller holds
  /// write_mu_). Pre-materializes the derived structures first.
  DbInfo Publish(const std::string& name, Database db);

  /// The request's effective limits (service defaults filled in).
  long long EffectiveDeadlineMs(const EvalRequest& request) const;
  long long EffectiveStepBudget(const EvalRequest& request) const;

  /// The request's effective EntailOptions: the cost-model planner of
  /// the pinned version injected when costing is enabled for this
  /// request (request override, else the service default).
  EntailOptions EffectiveOptions(const EvalRequest& request,
                                 const Database& db) const;

  VocabularyPtr vocab_;
  int num_workers_;
  long long default_deadline_ms_;
  long long default_step_budget_;
  bool use_cost_model_;
  PlanCache plan_cache_;
  // The published versions. db_mu_ guards the map only (lookup and
  // pointer swap — never held across parsing, evaluation, or version
  // building); write_mu_ serializes the writers end-to-end. Ordered map
  // so database_names() needs no extra sort.
  mutable std::shared_mutex db_mu_;
  std::mutex write_mu_;
  std::map<std::string, DatabasePtr> databases_;
  // Atomic so concurrent Eval calls stay race-free.
  std::atomic<long long> requests_{0};
  std::atomic<long long> batches_{0};
  std::atomic<long long> plans_compiled_{0};
  std::atomic<long long> publishes_{0};
};

}  // namespace iodb

#endif  // IODB_SERVICE_SERVICE_H_
