// In-process evaluation service: the serving layer over the whole
// pipeline.
//
// The service owns the lifecycle every caller used to hand-manage:
//
//   * one shared Vocabulary for all registered databases and parsed
//     queries (predicate ids stay comparable across the fleet, which is
//     what lets one compiled plan serve every database);
//   * named databases with Database's built-in uid/revision identity —
//     mutating a registered database bumps its revision, which
//     invalidates the memoized NormView and every per-plan transformed
//     view keyed by (uid, revision), so no request can be served from a
//     stale derived structure;
//   * a bounded LRU plan cache (service/plan_cache.h) keyed by
//     (vocabulary uid, plan fingerprint) with hit/miss/eviction counters;
//   * batch scheduling onto the PR-3 worker pool
//     (PreparedQuery::ParallelEvaluateBatch): a batch is grouped by
//     compiled plan, each group fans its databases across the workers,
//     and results land in their request slots — the response order is
//     deterministic and independent of scheduling.
//
// Thread-safety: the plan cache and the plans' own evaluation caches are
// internally synchronized. Registration (Load/Register) and mutation
// (mutable_database) must not race evaluations; concurrent Eval calls
// are safe when they target distinct databases (a single Database's
// NormView fills lazily under const) AND every concurrently compiled
// query is constant-free — compiling a constant-bearing query registers
// its marker predicates into the shared vocabulary, a single-writer
// operation (pre-warm such plans with one Eval, or serialize the
// misses). EvalBatch is the supported in-process concurrency seam — its
// compile phase is serial and it dedupes duplicate databases before
// sharding.

#ifndef IODB_SERVICE_SERVICE_H_
#define IODB_SERVICE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/prepare.h"
#include "service/plan_cache.h"
#include "service/request.h"
#include "util/budget.h"
#include "util/status.h"

namespace iodb {

/// Construction-time knobs.
struct ServiceOptions {
  /// Maximum number of cached plans.
  size_t plan_cache_capacity = 128;
  /// Worker threads for batch evaluation; 0 picks DefaultWorkerCount().
  int num_workers = 0;
  /// Default per-request wall-clock deadline in milliseconds, applied when
  /// a request does not set its own (< 0 = unlimited). Unlimited requests
  /// run the zero-overhead ungoverned path.
  long long default_deadline_ms = -1;
  /// Default per-request step budget (< 0 = unlimited).
  long long default_step_budget = -1;
};

/// Registration summary of one database.
struct DbInfo {
  std::string name;
  int atoms = 0;
  uint64_t uid = 0;
  uint64_t revision = 0;
};

/// Aggregate counters; see EvaluationService::stats().
struct ServiceStats {
  /// Evaluation requests served (batch members count individually).
  long long requests = 0;
  /// EvalBatch calls.
  long long batches = 0;
  /// Prepare() runs (== plan-cache misses that compiled successfully).
  long long plans_compiled = 0;
  /// Registered databases.
  long long databases = 0;
  PlanCacheStats plan_cache;

  /// Multi-line "name value" rendering (the STATS payload of iodb_serve).
  std::string ToString() const;
};

/// The in-process serving layer. See the file comment for the contract.
class EvaluationService {
 public:
  explicit EvaluationService(ServiceOptions options = {});

  /// The vocabulary shared by every registered database and parsed query.
  const VocabularyPtr& vocab() const { return vocab_; }

  /// Parses `text` (parser database format) and registers it under
  /// `name`, replacing any previous registration (the replacement is a
  /// fresh Database object, so its uid differs and no cache can confuse
  /// the two). New predicates are registered into the service vocabulary.
  Result<DbInfo> Load(const std::string& name, const std::string& text);

  /// Registers an externally built database. It must share the service
  /// vocabulary (build it against vocab()), or the compiled plans'
  /// predicate ids would be meaningless against it.
  Result<DbInfo> Register(const std::string& name, Database db);

  /// The registered database, or nullptr. The mutable overload is the
  /// in-process mutation seam: adding facts through it bumps the
  /// database's revision, which invalidates every derived cache.
  const Database* database(const std::string& name) const;
  Database* mutable_database(const std::string& name);

  /// Registered names in registration-independent (sorted) order.
  std::vector<std::string> database_names() const;

  /// Serves one request: resolves the database, fetches the compiled plan
  /// from the cache (compiling on a miss), evaluates, and renders the
  /// optional explain payload. Governance: the request's deadline/step
  /// budget (or the service defaults) bound the evaluation, and `cancel`
  /// (optional, caller-owned, must outlive the call) aborts it from
  /// another thread; exhaustion surfaces as kDeadlineExceeded /
  /// kCancelled. With no limits and no token the evaluation runs the
  /// ungoverned zero-overhead path.
  Result<EvalResponse> Eval(const EvalRequest& request,
                            const CancelToken* cancel = nullptr);

  /// Serves a batch: requests are grouped by compiled plan, each group's
  /// databases are fanned across the worker pool, and results[i] is
  /// always the verdict of requests[i] regardless of scheduling. Per-
  /// request failures (unknown database, parse errors) fail only their
  /// own slot.
  ///
  /// Batch governance scope: each plan group shares one ExecBudget — its
  /// deadline is the batch start plus the smallest effective member
  /// deadline, its step limit the smallest effective member budget, and
  /// `cancel` is attached to every group. A trip propagates to the
  /// group's in-flight worker shards at their next stride check, and the
  /// not-yet-finished members of the group fail with the same typed
  /// status (fail-fast is the point of a batch deadline). Members of
  /// all-unlimited groups run ungoverned.
  std::vector<Result<EvalResponse>> EvalBatch(
      std::span<const EvalRequest> requests,
      const CancelToken* cancel = nullptr);

  ServiceStats stats() const;

  /// The plan cache (exposed for tests and tools).
  PlanCache& plan_cache() { return plan_cache_; }

 private:
  /// Parses the query and returns the cached-or-compiled plan for
  /// (query, options), recording whether it was a cache hit.
  Result<std::shared_ptr<const PreparedQuery>> PlanFor(
      const std::string& query_text, const EntailOptions& options,
      bool* cache_hit);

  /// Assembles the response from an evaluation result.
  EvalResponse MakeResponse(const PreparedQuery& plan, EntailResult result,
                            bool cache_hit, bool explain) const;

  /// The request's effective limits (service defaults filled in).
  long long EffectiveDeadlineMs(const EvalRequest& request) const;
  long long EffectiveStepBudget(const EvalRequest& request) const;

  VocabularyPtr vocab_;
  int num_workers_;
  long long default_deadline_ms_;
  long long default_step_budget_;
  PlanCache plan_cache_;
  // Ordered map so database_names() needs no extra sort.
  std::map<std::string, std::unique_ptr<Database>> databases_;
  // Atomic so concurrent Eval calls (distinct databases) stay race-free.
  std::atomic<long long> requests_{0};
  std::atomic<long long> batches_{0};
  std::atomic<long long> plans_compiled_{0};
};

}  // namespace iodb

#endif  // IODB_SERVICE_SERVICE_H_
