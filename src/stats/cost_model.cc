#include "stats/cost_model.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "util/check.h"

namespace iodb::stats {

namespace {

uint64_t PairKey(int p, int q) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(p)) << 32) |
         static_cast<uint32_t>(q);
}

uint64_t BitWidth(long long value) {
  return value <= 0
             ? 0
             : std::bit_width(static_cast<unsigned long long>(value));
}

// Cost clamps: a zero candidate estimate would flatten everything after
// it, and unbounded products overflow to inf; neither helps ranking.
constexpr double kMinCandidates = 1e-3;
constexpr double kMaxCost = 1e18;

}  // namespace

CostModel::CostModel(std::shared_ptr<const DatabaseStats> stats)
    : stats_(std::move(stats)) {
  IODB_CHECK(stats_ != nullptr);
  for (const auto& [pred, count] : stats_->label_points) {
    label_points_[pred] = count;
  }
  for (const LabelPairStats& pair : stats_->label_pairs) {
    pair_points_[PairKey(pair.p, pair.q)] = pair.points;
  }

  // Quantized fingerprint: magnitude classes of every count plus the
  // exact structure bits the engine-route rule reads, so the route can
  // never change without the fingerprint changing.
  uint64_t hash = 0xCBF29CE484222325ULL;
  auto mix = [&hash](uint64_t value) {
    hash ^= value + 0x9E3779B97F4A7C15ULL + (hash << 6) + (hash >> 2);
  };
  const DatabaseStats& s = *stats_;
  mix(s.order_stats_valid ? 1 : 0);
  mix(BitWidth(s.points));
  mix(BitWidth(s.edges));
  mix(s.points > 0 && s.dag_depth == s.points ? 1 : 0);
  mix(s.strict_edges == s.edges ? 1 : 0);
  mix(BitWidth(s.object_constants));
  for (const PredicateStats& ps : s.predicates) {
    mix(static_cast<uint64_t>(ps.pred));
    mix(BitWidth(ps.tuples));
  }
  for (const auto& [pred, count] : s.label_points) {
    mix(static_cast<uint64_t>(pred));
    mix(BitWidth(count));
  }
  for (const LabelPairStats& pair : s.label_pairs) {
    mix(PairKey(pair.p, pair.q));
    mix(BitWidth(pair.points));
  }
  fingerprint_ = hash;
}

double CostModel::LabelCandidates(const PredSet& labels) const {
  const DatabaseStats& s = *stats_;
  if (!s.order_stats_valid || s.points <= 0) return 1.0;
  const double points = static_cast<double>(s.points);
  const std::vector<int> required = labels.Elements();
  if (required.empty()) return points;
  // Independence estimate, capped by every single-label count and every
  // sketched pair count (candidates can exceed neither).
  double independent = points;
  double cap = points;
  for (int pred : required) {
    auto it = label_points_.find(pred);
    const double lp =
        it != label_points_.end() ? static_cast<double>(it->second) : 0.0;
    cap = std::min(cap, lp);
    independent *= lp / points;
  }
  // A complete sketch (nothing truncated) makes absent pairs exact
  // zeros; a truncated one only says "not among the heaviest".
  const bool complete = s.label_pairs.size() < DatabaseStats::kMaxLabelPairs;
  for (size_t i = 0; i < required.size(); ++i) {
    for (size_t j = i + 1; j < required.size(); ++j) {
      auto it = pair_points_.find(PairKey(required[i], required[j]));
      if (it != pair_points_.end()) {
        cap = std::min(cap, static_cast<double>(it->second));
      } else if (complete) {
        cap = 0.0;
      }
    }
  }
  return std::clamp(std::min(independent, cap), 0.0, points);
}

double CostModel::EstimateConjunct(const NormConjunct& conjunct,
                                   std::vector<int>* sequence_out) const {
  const int nv = conjunct.num_order_vars();
  std::vector<double> base(nv);
  for (int t = 0; t < nv; ++t) {
    base[t] = LabelCandidates(conjunct.labels[t]);
  }
  std::vector<int> unscheduled_preds(nv, 0);
  for (const LabeledEdge& e : conjunct.dag.edges()) ++unscheduled_preds[e.to];
  std::vector<bool> scheduled(nv, false);
  std::vector<int> sequence;
  sequence.reserve(nv);
  double cost = 0.0;
  double product = 1.0;
  for (int step = 0; step < nv; ++step) {
    // Cheapest ready variable next (ascending scan breaks ties on the
    // smallest id, keeping the schedule deterministic). A ready
    // variable has every dag predecessor scheduled, so each of its
    // in-arcs narrows the matcher's scan range — discount accordingly.
    int best = -1;
    double best_cost = 0.0;
    for (int t = 0; t < nv; ++t) {
      if (scheduled[t] || unscheduled_preds[t] > 0) continue;
      const double c =
          base[t] / (1.0 + static_cast<double>(conjunct.dag.in(t).size()));
      if (best == -1 || c < best_cost) {
        best = t;
        best_cost = c;
      }
    }
    IODB_CHECK_GE(best, 0);  // a dag always has a ready vertex
    scheduled[best] = true;
    sequence.push_back(best);
    for (const Digraph::Arc& arc : conjunct.dag.out(best)) {
      --unscheduled_preds[arc.vertex];
    }
    product = std::min(product * std::max(best_cost, kMinCandidates),
                       kMaxCost);
    cost = std::min(cost + product, kMaxCost);
  }
  // Object variables scan the whole object domain after the order vars.
  const double object_domain =
      std::max(1, stats_->object_constants);
  for (int x = 0; x < conjunct.num_object_vars(); ++x) {
    product = std::min(product * object_domain, kMaxCost);
    cost = std::min(cost + product, kMaxCost);
  }
  if (sequence_out != nullptr) *sequence_out = std::move(sequence);
  return cost;
}

QueryPlanChoice CostModel::PlanQuery(
    const std::vector<NormConjunct>& disjuncts) const {
  QueryPlanChoice choice;
  choice.disjuncts.resize(disjuncts.size());
  bool all_monadic = !disjuncts.empty();
  for (size_t i = 0; i < disjuncts.size(); ++i) {
    std::vector<int> sequence;
    choice.disjuncts[i].est_cost =
        EstimateConjunct(disjuncts[i], &sequence);
    choice.disjuncts[i].order_var_sequence = std::move(sequence);
    all_monadic = all_monadic && disjuncts[i].IsMonadicOrderOnly();
  }

  // Cheapest disjunct first: every first-match-wins path (brute-force
  // matcher, disjunctive search) exits earlier on average.
  std::vector<int> order(disjuncts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return choice.disjuncts[a].est_cost < choice.disjuncts[b].est_cost;
  });
  choice.disjunct_order = std::move(order);

  // Engine route: an all-strict total chain admits exactly ONE minimal
  // model (no two points can merge or reorder), so a multi-disjunct
  // monadic query is cheaper as a single brute-force model check than
  // as a disjunctive automaton construction.
  const DatabaseStats& s = *stats_;
  if (all_monadic && disjuncts.size() > 1 && s.order_stats_valid &&
      s.points > 0 && s.dag_depth == s.points &&
      s.strict_edges == s.edges && s.components == 1) {
    choice.engine = EngineKind::kBruteForce;
  }

  choice.detail = "cost-model over stats " + std::to_string(s.db_uid) + "@" +
                  std::to_string(s.db_revision);
  return choice;
}

}  // namespace iodb::stats
