// The statistics-backed cost model: a QueryPlanner implementation.
//
// Estimation follows the textbook selectivity cascade (cf. RDF-3X's
// plan generator): the candidate count of an order variable is the
// database point count scaled by the selectivity of each required label
// (label_points / points), refined by the pairwise co-occurrence sketch
// (the candidates cannot exceed any single label's count nor any
// required pair's count), and discounted for dag in-arcs from already-
// scheduled variables (each in-arc lower-bounds the scan range). A
// greedy schedule assigns the cheapest ready variable next — a linear
// extension by construction — and the disjunct's cost is the sum of
// partial-assignment products along that schedule, the classic
// left-deep cost estimate.
//
// Disjuncts are reordered cheapest-first (first-match-wins evaluation
// exits early), and the one engine-route rule is deliberately
// conservative: when the database's order graph is one all-strict total
// chain it has exactly one minimal model, so a single brute-force model
// check beats building the disjunctive automaton — everything else
// keeps the static auto route.

#ifndef IODB_STATS_COST_MODEL_H_
#define IODB_STATS_COST_MODEL_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "core/planner.h"
#include "stats/stats.h"

namespace iodb::stats {

class CostModel : public QueryPlanner {
 public:
  /// `stats` must be non-null. Public so tests (and the conformance
  /// fuzzer's perturbed-statistics mode) can feed arbitrary stats.
  explicit CostModel(std::shared_ptr<const DatabaseStats> stats);

  QueryPlanChoice PlanQuery(
      const std::vector<NormConjunct>& disjuncts) const override;

  /// Quantized: hashes magnitude classes (bit widths) of the counts,
  /// not exact values, so plan-cache keys survive small mutations that
  /// do not change any magnitude. Coarseness is safe — plans built from
  /// slightly different stats are interchangeable verdict-wise.
  uint64_t fingerprint() const override { return fingerprint_; }

  const DatabaseStats& stats() const { return *stats_; }

  /// Estimated matcher work of one disjunct; `sequence_out`, when
  /// non-null, receives the greedy schedule (a linear extension of the
  /// conjunct dag). Exposed for tests and benches.
  double EstimateConjunct(const NormConjunct& conjunct,
                          std::vector<int>* sequence_out) const;

 private:
  double LabelCandidates(const PredSet& labels) const;

  std::shared_ptr<const DatabaseStats> stats_;
  uint64_t fingerprint_ = 0;
  // Lookup tables derived from the stats vectors.
  std::unordered_map<int, long long> label_points_;
  std::unordered_map<uint64_t, long long> pair_points_;
};

}  // namespace iodb::stats

#endif  // IODB_STATS_COST_MODEL_H_
