#include "stats/stats.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "graph/topo.h"
#include "stats/cost_model.h"
// Header-only byte codec shared by every on-disk format (no link
// dependency on the storage layer, which sits above this one).
#include "storage/codec.h"

namespace iodb::stats {

namespace {

constexpr uint8_t kStatsFormatVersion = 1;
// Bytes of [version u8][uid u64][revision u64]: the identity prefix
// excluded from ContentFingerprint().
constexpr size_t kIdentityPrefixBytes = 1 + 8 + 8;

// Union-find over dag vertices for the component histogram.
struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    for (int i = 0; i < n; ++i) parent[i] = i;
  }
  int Find(int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Union(int a, int b) { parent[Find(a)] = Find(b); }
};

}  // namespace

DatabaseStats CollectStats(const Database& db) {
  DatabaseStats s;
  s.db_uid = db.uid();
  s.db_revision = db.revision();
  s.proper_atoms = static_cast<long long>(db.proper_atoms().size());
  s.order_atoms = static_cast<long long>(db.order_atoms().size());
  s.inequality_atoms = static_cast<long long>(db.inequalities().size());
  s.object_constants = db.num_object_constants();
  s.order_constants = db.num_order_constants();

  // Per-predicate cardinalities + distinct-argument counts (raw facts).
  const int npreds = db.vocab()->num_predicates();
  std::vector<long long> tuples(npreds, 0);
  std::vector<std::vector<std::unordered_set<int>>> distinct(npreds);
  for (const ProperAtom& atom : db.proper_atoms()) {
    ++tuples[atom.pred];
    std::vector<std::unordered_set<int>>& sets = distinct[atom.pred];
    if (sets.empty()) sets.resize(atom.args.size());
    for (size_t i = 0; i < atom.args.size(); ++i) {
      sets[i].insert(atom.args[i].id);
    }
  }
  for (int p = 0; p < npreds; ++p) {
    if (tuples[p] == 0) continue;
    PredicateStats ps;
    ps.pred = p;
    ps.tuples = tuples[p];
    ps.distinct_args.reserve(distinct[p].size());
    for (const std::unordered_set<int>& set : distinct[p]) {
      ps.distinct_args.push_back(static_cast<long long>(set.size()));
    }
    s.predicates.push_back(std::move(ps));
  }

  // Order-graph shape, measured on the normalized view. An inconsistent
  // database has no view; fact-level stats remain valid.
  Result<const NormDb*> view = db.NormView();
  if (!view.ok()) return s;
  const NormDb& ndb = *view.value();
  s.order_stats_valid = true;
  s.points = ndb.num_points();
  s.edges = ndb.dag.num_edges();
  for (const LabeledEdge& e : ndb.dag.edges()) {
    if (e.rel == OrderRel::kLt) ++s.strict_edges;
  }

  // Longest-path depth and level width (levels = longest path from any
  // source, a cheap proxy for the antichain structure).
  if (s.points > 0) {
    std::vector<int> topo = TopologicalOrder(ndb.dag);
    std::vector<int> level(s.points, 1);
    for (int v : topo) {
      for (const Digraph::Arc& arc : ndb.dag.in(v)) {
        level[v] = std::max(level[v], level[arc.vertex] + 1);
      }
      s.dag_depth = std::max(s.dag_depth, level[v]);
    }
    std::vector<int> per_level(s.dag_depth + 1, 0);
    for (int v = 0; v < s.points; ++v) {
      s.level_width = std::max(s.level_width, ++per_level[level[v]]);
    }

    // Weakly connected components and their log2 size histogram.
    UnionFind uf(s.points);
    for (const LabeledEdge& e : ndb.dag.edges()) uf.Union(e.from, e.to);
    std::vector<long long> size_of(s.points, 0);
    for (int v = 0; v < s.points; ++v) ++size_of[uf.Find(v)];
    for (int v = 0; v < s.points; ++v) {
      const long long size = size_of[v];
      if (size == 0) continue;
      ++s.components;
      int bucket = 0;
      while ((1LL << (bucket + 1)) <= size) ++bucket;
      if (static_cast<size_t>(bucket) >= s.component_log2_histogram.size()) {
        s.component_log2_histogram.resize(bucket + 1, 0);
      }
      ++s.component_log2_histogram[bucket];
    }
  }

  // Label cardinalities and the pairwise co-occurrence sketch.
  std::vector<long long> label_count(npreds, 0);
  std::map<std::pair<int, int>, long long> pair_count;
  for (int p = 0; p < s.points; ++p) {
    const std::vector<int> labels = ndb.labels[p].Elements();
    for (size_t i = 0; i < labels.size(); ++i) {
      ++label_count[labels[i]];
      for (size_t j = i + 1; j < labels.size(); ++j) {
        ++pair_count[{labels[i], labels[j]}];
      }
    }
  }
  for (int p = 0; p < npreds; ++p) {
    if (label_count[p] > 0) s.label_points.emplace_back(p, label_count[p]);
  }
  std::vector<LabelPairStats> pairs;
  pairs.reserve(pair_count.size());
  for (const auto& [pq, count] : pair_count) {
    pairs.push_back({pq.first, pq.second, count});
  }
  if (pairs.size() > DatabaseStats::kMaxLabelPairs) {
    // Keep the heaviest pairs; ties break on (p, q) so the sketch is a
    // deterministic function of the content.
    std::sort(pairs.begin(), pairs.end(),
              [](const LabelPairStats& a, const LabelPairStats& b) {
                if (a.points != b.points) return a.points > b.points;
                return std::pair(a.p, a.q) < std::pair(b.p, b.q);
              });
    pairs.resize(DatabaseStats::kMaxLabelPairs);
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const LabelPairStats& a, const LabelPairStats& b) {
              return std::pair(a.p, a.q) < std::pair(b.p, b.q);
            });
  s.label_pairs = std::move(pairs);
  return s;
}

std::string EncodeStats(const DatabaseStats& s) {
  using storage::AppendU32;
  using storage::AppendU64;
  using storage::AppendU8;
  std::string out;
  AppendU8(&out, kStatsFormatVersion);
  AppendU64(&out, s.db_uid);
  AppendU64(&out, s.db_revision);
  AppendU64(&out, static_cast<uint64_t>(s.proper_atoms));
  AppendU64(&out, static_cast<uint64_t>(s.order_atoms));
  AppendU64(&out, static_cast<uint64_t>(s.inequality_atoms));
  AppendU32(&out, static_cast<uint32_t>(s.object_constants));
  AppendU32(&out, static_cast<uint32_t>(s.order_constants));
  AppendU32(&out, static_cast<uint32_t>(s.predicates.size()));
  for (const PredicateStats& ps : s.predicates) {
    AppendU32(&out, static_cast<uint32_t>(ps.pred));
    AppendU64(&out, static_cast<uint64_t>(ps.tuples));
    AppendU32(&out, static_cast<uint32_t>(ps.distinct_args.size()));
    for (long long d : ps.distinct_args) {
      AppendU64(&out, static_cast<uint64_t>(d));
    }
  }
  AppendU8(&out, s.order_stats_valid ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(s.points));
  AppendU32(&out, static_cast<uint32_t>(s.edges));
  AppendU32(&out, static_cast<uint32_t>(s.strict_edges));
  AppendU32(&out, static_cast<uint32_t>(s.dag_depth));
  AppendU32(&out, static_cast<uint32_t>(s.level_width));
  AppendU32(&out, static_cast<uint32_t>(s.components));
  AppendU32(&out, static_cast<uint32_t>(s.component_log2_histogram.size()));
  for (long long count : s.component_log2_histogram) {
    AppendU64(&out, static_cast<uint64_t>(count));
  }
  AppendU32(&out, static_cast<uint32_t>(s.label_points.size()));
  for (const auto& [pred, count] : s.label_points) {
    AppendU32(&out, static_cast<uint32_t>(pred));
    AppendU64(&out, static_cast<uint64_t>(count));
  }
  AppendU32(&out, static_cast<uint32_t>(s.label_pairs.size()));
  for (const LabelPairStats& pair : s.label_pairs) {
    AppendU32(&out, static_cast<uint32_t>(pair.p));
    AppendU32(&out, static_cast<uint32_t>(pair.q));
    AppendU64(&out, static_cast<uint64_t>(pair.points));
  }
  return out;
}

Result<DatabaseStats> DecodeStats(std::string_view bytes) {
  storage::ByteReader reader(bytes);
  DatabaseStats s;
  uint8_t version = 0;
  Status status = reader.ReadU8(&version);
  if (!status.ok()) return status;
  if (version != kStatsFormatVersion) {
    return Status::InvalidArgument("unsupported statistics format version " +
                                   std::to_string(version));
  }
  uint64_t u64 = 0;
  uint32_t u32 = 0;
  auto read_u64 = [&](long long* out) {
    Status st = reader.ReadU64(&u64);
    if (st.ok()) *out = static_cast<long long>(u64);
    return st;
  };
  auto read_int = [&](int* out) {
    Status st = reader.ReadU32(&u32);
    if (st.ok()) *out = static_cast<int>(u32);
    return st;
  };
  if (!(status = reader.ReadU64(&s.db_uid)).ok()) return status;
  if (!(status = reader.ReadU64(&s.db_revision)).ok()) return status;
  if (!(status = read_u64(&s.proper_atoms)).ok()) return status;
  if (!(status = read_u64(&s.order_atoms)).ok()) return status;
  if (!(status = read_u64(&s.inequality_atoms)).ok()) return status;
  if (!(status = read_int(&s.object_constants)).ok()) return status;
  if (!(status = read_int(&s.order_constants)).ok()) return status;
  uint32_t npreds = 0;
  if (!(status = reader.ReadU32(&npreds)).ok()) return status;
  // Every element of a count-prefixed list is at least this long, so an
  // inflated count on corrupt input fails fast instead of reserving.
  if (npreds > reader.remaining() / 16) {
    return Status::InvalidArgument("statistics predicate count exceeds input");
  }
  s.predicates.reserve(npreds);
  for (uint32_t i = 0; i < npreds; ++i) {
    PredicateStats ps;
    if (!(status = read_int(&ps.pred)).ok()) return status;
    if (!(status = read_u64(&ps.tuples)).ok()) return status;
    uint32_t arity = 0;
    if (!(status = reader.ReadU32(&arity)).ok()) return status;
    if (arity > reader.remaining() / 8) {
      return Status::InvalidArgument("statistics arity exceeds input");
    }
    ps.distinct_args.resize(arity);
    for (uint32_t a = 0; a < arity; ++a) {
      if (!(status = read_u64(&ps.distinct_args[a])).ok()) return status;
    }
    s.predicates.push_back(std::move(ps));
  }
  uint8_t valid = 0;
  if (!(status = reader.ReadU8(&valid)).ok()) return status;
  s.order_stats_valid = valid != 0;
  if (!(status = read_int(&s.points)).ok()) return status;
  if (!(status = read_int(&s.edges)).ok()) return status;
  if (!(status = read_int(&s.strict_edges)).ok()) return status;
  if (!(status = read_int(&s.dag_depth)).ok()) return status;
  if (!(status = read_int(&s.level_width)).ok()) return status;
  if (!(status = read_int(&s.components)).ok()) return status;
  uint32_t nhist = 0;
  if (!(status = reader.ReadU32(&nhist)).ok()) return status;
  if (nhist > reader.remaining() / 8) {
    return Status::InvalidArgument("statistics histogram exceeds input");
  }
  s.component_log2_histogram.resize(nhist);
  for (uint32_t i = 0; i < nhist; ++i) {
    if (!(status = read_u64(&s.component_log2_histogram[i])).ok()) {
      return status;
    }
  }
  uint32_t nlabels = 0;
  if (!(status = reader.ReadU32(&nlabels)).ok()) return status;
  if (nlabels > reader.remaining() / 12) {
    return Status::InvalidArgument("statistics label count exceeds input");
  }
  s.label_points.reserve(nlabels);
  for (uint32_t i = 0; i < nlabels; ++i) {
    int pred = 0;
    long long count = 0;
    if (!(status = read_int(&pred)).ok()) return status;
    if (!(status = read_u64(&count)).ok()) return status;
    s.label_points.emplace_back(pred, count);
  }
  uint32_t npairs = 0;
  if (!(status = reader.ReadU32(&npairs)).ok()) return status;
  if (npairs > reader.remaining() / 16) {
    return Status::InvalidArgument("statistics pair count exceeds input");
  }
  s.label_pairs.reserve(npairs);
  for (uint32_t i = 0; i < npairs; ++i) {
    LabelPairStats pair;
    if (!(status = read_int(&pair.p)).ok()) return status;
    if (!(status = read_int(&pair.q)).ok()) return status;
    if (!(status = read_u64(&pair.points)).ok()) return status;
    s.label_pairs.push_back(pair);
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after statistics payload");
  }
  return s;
}

uint64_t DatabaseStats::ContentFingerprint() const {
  const std::string bytes = EncodeStats(*this);
  return storage::Fnv1a64(
      std::string_view(bytes).substr(kIdentityPrefixBytes));
}

std::string RenderStats(const DatabaseStats& s) {
  auto line = [](const std::string& name, const std::string& value) {
    std::string out = "  " + name;
    while (out.size() < 26) out += ' ';
    return out + value + "\n";
  };
  std::string out;
  out += line("stats-revision",
              std::to_string(s.db_uid) + "@" + std::to_string(s.db_revision));
  out += line("fact-atoms", "proper=" + std::to_string(s.proper_atoms) +
                                " order=" + std::to_string(s.order_atoms) +
                                " neq=" + std::to_string(s.inequality_atoms));
  out += line("constants",
              "object=" + std::to_string(s.object_constants) +
                  " order=" + std::to_string(s.order_constants));
  for (const PredicateStats& ps : s.predicates) {
    std::string detail = "tuples=" + std::to_string(ps.tuples) + " distinct=";
    for (size_t i = 0; i < ps.distinct_args.size(); ++i) {
      if (i > 0) detail += "/";
      detail += std::to_string(ps.distinct_args[i]);
    }
    out += line("predicate #" + std::to_string(ps.pred), detail);
  }
  if (!s.order_stats_valid) {
    out += line("order-graph", "invalid (inconsistent database)");
    return out;
  }
  std::string density = "0";
  if (s.points > 1) {
    const double d = static_cast<double>(s.edges) /
                     (static_cast<double>(s.points) * (s.points - 1) / 2);
    density = std::to_string(d);
  }
  out += line("order-graph",
              "points=" + std::to_string(s.points) +
                  " edges=" + std::to_string(s.edges) +
                  " strict=" + std::to_string(s.strict_edges) +
                  " density=" + density);
  out += line("dag-shape", "depth=" + std::to_string(s.dag_depth) +
                               " level-width=" + std::to_string(s.level_width) +
                               " components=" + std::to_string(s.components));
  for (const auto& [pred, count] : s.label_points) {
    out += line("label #" + std::to_string(pred),
                "points=" + std::to_string(count));
  }
  for (const LabelPairStats& pair : s.label_pairs) {
    out += line("label-pair #" + std::to_string(pair.p) + ",#" +
                    std::to_string(pair.q),
                "points=" + std::to_string(pair.points));
  }
  return out;
}

namespace {

// The memoized entry held by the Database stats slot: the stats plus
// the cost model built over them (one per content version, shared by
// every request that evaluates against it).
struct StatsEntry {
  std::shared_ptr<const DatabaseStats> stats;
  std::shared_ptr<const QueryPlanner> planner;
};

std::shared_ptr<const StatsEntry> EntryFor(const Database& db) {
  const Database::StatsSlot& slot = db.stats_slot();
  if (slot.value != nullptr && slot.revision == db.revision()) {
    return std::static_pointer_cast<const StatsEntry>(slot.value);
  }
  auto stats = std::make_shared<const DatabaseStats>(CollectStats(db));
  auto entry = std::make_shared<const StatsEntry>(
      StatsEntry{stats, std::make_shared<const CostModel>(stats)});
  db.set_stats_slot(entry, db.revision(), /*from_snapshot=*/false);
  return entry;
}

}  // namespace

std::shared_ptr<const DatabaseStats> StatsFor(const Database& db) {
  return EntryFor(db)->stats;
}

std::shared_ptr<const QueryPlanner> PlannerFor(const Database& db) {
  return EntryFor(db)->planner;
}

bool StatsArePersisted(const Database& db) {
  const Database::StatsSlot& slot = db.stats_slot();
  return slot.value != nullptr && slot.revision == db.revision() &&
         slot.from_snapshot;
}

Status InstallPersistedStats(const Database& db, DatabaseStats stats) {
  if (stats.db_uid != db.uid() || stats.db_revision != db.revision()) {
    return Status::InvalidArgument(
        "persisted statistics describe " + std::to_string(stats.db_uid) +
        "@" + std::to_string(stats.db_revision) + " but the database is " +
        std::to_string(db.uid()) + "@" + std::to_string(db.revision()));
  }
  auto sp = std::make_shared<const DatabaseStats>(std::move(stats));
  auto entry = std::make_shared<const StatsEntry>(
      StatsEntry{sp, std::make_shared<const CostModel>(sp)});
  db.set_stats_slot(entry, db.revision(), /*from_snapshot=*/true);
  return Status::Ok();
}

}  // namespace iodb::stats
