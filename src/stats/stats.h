// Database statistics: collection, persistence, and memoized access.
//
// The statistics subsystem feeds the cost-based planner (cost_model.h):
// per-predicate cardinalities and distinct-argument counts measured on
// the raw fact store, order-graph shape summaries (edge density,
// strictness mix, depth, layer width, component histogram) measured on
// the normalized view, and a bounded co-occurrence sketch over monadic
// label pairs — the pairwise selectivity input for scheduling order
// variables that carry several labels.
//
// Staleness rules: a DatabaseStats describes one (uid, revision) of one
// database. The memoized entry lives in the Database's type-erased
// stats slot (core/database.h) with a revision stamp; `StatsFor`
// recomputes on mismatch. The MVCC service pre-materializes the entry
// on the writer's fork before publishing (like NormView), so readers of
// a published version never fill the slot concurrently.
//
// Persistence: EncodeStats/DecodeStats is the payload of the optional
// snapshot statistics section (docs/SNAPSHOT_FORMAT.md, format v2).
// Encoding is a pure function of the stats, decoding is lossless, so
// snapshots re-encode byte-stably whether their stats were persisted or
// rebuilt.

#ifndef IODB_STATS_STATS_H_
#define IODB_STATS_STATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/planner.h"
#include "util/status.h"

namespace iodb::stats {

/// Cardinalities of one proper predicate, measured on the raw facts.
struct PredicateStats {
  int pred = 0;
  long long tuples = 0;
  /// Distinct argument values per position (size = arity).
  std::vector<long long> distinct_args;

  friend bool operator==(const PredicateStats&,
                         const PredicateStats&) = default;
};

/// Points carrying both labels p and q (p < q): the pairwise
/// selectivity sketch, bounded to the heaviest pairs.
struct LabelPairStats {
  int p = 0;
  int q = 0;
  long long points = 0;

  friend bool operator==(const LabelPairStats&,
                         const LabelPairStats&) = default;
};

/// Statistics of one database at one (uid, revision).
struct DatabaseStats {
  uint64_t db_uid = 0;
  uint64_t db_revision = 0;

  // --- fact level (raw database; always valid) ---------------------------
  long long proper_atoms = 0;
  long long order_atoms = 0;
  long long inequality_atoms = 0;
  int object_constants = 0;
  int order_constants = 0;
  /// Per-predicate cardinalities, ascending by id; predicates with no
  /// facts are omitted.
  std::vector<PredicateStats> predicates;

  // --- order graph (normalized view) -------------------------------------
  /// False when normalization failed (inconsistent order atoms): the
  /// order-graph block below is then all zeros and must not be trusted.
  bool order_stats_valid = false;
  int points = 0;
  int edges = 0;
  int strict_edges = 0;
  /// Longest directed path, in vertices (so a total chain has
  /// dag_depth == points).
  int dag_depth = 0;
  /// Maximum size of a longest-path level — a cheap upper-structure
  /// proxy for antichain width (the exact Dilworth width is a matching
  /// computation, too heavy for a load-time sweep).
  int level_width = 0;
  /// Weakly connected components of the dag (isolated points included).
  int components = 0;
  /// component_log2_histogram[b]: components of size in [2^b, 2^(b+1)).
  std::vector<long long> component_log2_histogram;
  /// Points carrying each monadic label, ascending by predicate id;
  /// labels carried by no point are omitted.
  std::vector<std::pair<int, long long>> label_points;
  /// Co-occurrence sketch: the heaviest label pairs (at most
  /// kMaxLabelPairs), ascending by (p, q).
  std::vector<LabelPairStats> label_pairs;

  static constexpr size_t kMaxLabelPairs = 32;

  /// FNV-1a 64 over the encoded bytes EXCLUDING (uid, revision): two
  /// databases with identical content have identical content
  /// fingerprints, whatever their identities.
  uint64_t ContentFingerprint() const;

  friend bool operator==(const DatabaseStats&,
                         const DatabaseStats&) = default;
};

/// Measures `db`. Fact-level statistics always; order-graph statistics
/// via the memoized NormView (order_stats_valid = false when the
/// database is inconsistent). Deterministic: equal content yields equal
/// stats. Same thread contract as Database::NormView.
DatabaseStats CollectStats(const Database& db);

/// Byte encoding (the snapshot statistics-section payload; little-
/// endian, see storage/codec.h). Encode∘Decode∘Encode is the identity
/// on bytes.
std::string EncodeStats(const DatabaseStats& stats);
Result<DatabaseStats> DecodeStats(std::string_view bytes);

/// Multi-line "name value" rendering (iodb_pack inspect, docs).
std::string RenderStats(const DatabaseStats& stats);

// --- memoized access (the Database stats slot) ---------------------------

/// The stats of `db` at its current revision: the memoized entry when
/// fresh, else recomputed and re-installed (marked rebuilt). Never null.
std::shared_ptr<const DatabaseStats> StatsFor(const Database& db);

/// The cost model over StatsFor(db), memoized alongside the stats (one
/// CostModel per content version, shared by every request). Never null.
std::shared_ptr<const QueryPlanner> PlannerFor(const Database& db);

/// True if the database's CURRENT stats entry is fresh and was
/// installed from persisted snapshot bytes (vs rebuilt in-process).
bool StatsArePersisted(const Database& db);

/// Storage-layer hook: installs decoded snapshot stats as the memoized
/// entry. Fails (and installs nothing) unless `stats` describes exactly
/// the database's current (uid, revision) — persisted stats are only
/// trusted for the content they were measured on.
Status InstallPersistedStats(const Database& db, DatabaseStats stats);

}  // namespace iodb::stats

#endif  // IODB_STATS_STATS_H_
