// Byte-level codec shared by the storage formats (snapshot + WAL).
//
// Every multi-byte integer on disk is LITTLE-ENDIAN, encoded and decoded
// with explicit byte arithmetic (never memcpy of a host integer), so the
// formats are identical on little- and big-endian hosts and a snapshot
// written on one is readable on the other. Strings are u32
// length-prefixed raw bytes. Integrity is FNV-1a 64 over the exact bytes
// of a section/record payload.
//
// ByteReader is the safety boundary against corrupt or truncated input:
// every read is bounds-checked and reports failure as a value (the
// storage layer must never crash on a bad file — see the WAL
// crash-recovery contract in storage/wal.h).

#ifndef IODB_STORAGE_CODEC_H_
#define IODB_STORAGE_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace iodb::storage {

// --- little-endian primitives ------------------------------------------------

inline void AppendU8(std::string* out, uint8_t value) {
  out->push_back(static_cast<char>(value));
}

inline void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

inline void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

inline void AppendString(std::string* out, std::string_view value) {
  AppendU32(out, static_cast<uint32_t>(value.size()));
  out->append(value.data(), value.size());
}

/// FNV-1a 64 over `bytes` (the checksum of every section and record).
inline uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// Bounds-checked sequential reader over an in-memory byte buffer. All
/// failures are reported as Status values; no read ever touches memory
/// outside [data, data+size).
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  Status ReadU8(uint8_t* value) {
    if (remaining() < 1) return Truncated("u8");
    *value = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }

  Status ReadU32(uint32_t* value) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t out = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      out |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_++]))
             << shift;
    }
    *value = out;
    return Status::Ok();
  }

  Status ReadU64(uint64_t* value) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t out = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_++]))
             << shift;
    }
    *value = out;
    return Status::Ok();
  }

  Status ReadString(std::string* value) {
    uint32_t length = 0;
    Status status = ReadU32(&length);
    if (!status.ok()) return status;
    if (remaining() < length) return Truncated("string payload");
    value->assign(data_ + pos_, length);
    pos_ += length;
    return Status::Ok();
  }

  /// Returns a view of the next `length` bytes and advances past them.
  Status ReadBytes(size_t length, std::string_view* bytes) {
    if (remaining() < length) return Truncated("byte span");
    *bytes = std::string_view(data_ + pos_, length);
    pos_ += length;
    return Status::Ok();
  }

 private:
  Status Truncated(const char* what) const {
    return Status::InvalidArgument(
        std::string("truncated input: need ") + what + " at offset " +
        std::to_string(pos_) + " of " + std::to_string(size_));
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace iodb::storage

#endif  // IODB_STORAGE_CODEC_H_
