#include "storage/durable_registry.h"

#include <algorithm>
#include <filesystem>

#include "storage/snapshot.h"
#include "storage/wal.h"
#include "util/failpoint.h"

namespace iodb::storage {

namespace fs = std::filesystem;

namespace {

constexpr char kVocabFileName[] = "vocab.iodb";
constexpr char kSnapshotSuffix[] = ".snap";
constexpr char kWalSuffix[] = ".wal";

bool IsPlainByte(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string DurableRegistry::EncodeDbFileName(const std::string& name) {
  static const char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    if (IsPlainByte(c)) {
      out.push_back(c);
    } else {
      out.push_back('%');
      out.push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xF]);
      out.push_back(kHex[static_cast<unsigned char>(c) & 0xF]);
    }
  }
  return out;
}

std::optional<std::string> DurableRegistry::DecodeDbFileName(
    const std::string& stem) {
  std::string out;
  out.reserve(stem.size());
  for (size_t i = 0; i < stem.size(); ++i) {
    char c = stem[i];
    if (c == '%') {
      if (i + 2 >= stem.size()) return std::nullopt;
      int hi = HexValue(stem[i + 1]);
      int lo = HexValue(stem[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (IsPlainByte(c)) {
      out.push_back(c);
    } else {
      return std::nullopt;
    }
  }
  return out;
}

std::string DurableRegistry::SnapshotPath(const std::string& name) const {
  return (fs::path(dir_) / (EncodeDbFileName(name) + kSnapshotSuffix))
      .string();
}

std::string DurableRegistry::WalPath(const std::string& name) const {
  return (fs::path(dir_) / (EncodeDbFileName(name) + kWalSuffix)).string();
}

Result<std::unique_ptr<DurableRegistry>> DurableRegistry::Open(
    const std::string& dir, ServiceOptions options, WalSyncOptions sync) {
  Status fp = failpoint::CheckAndMaybeFail("registry-open");
  if (!fp.ok()) return fp;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory '" + dir +
                                   "': " + ec.message());
  }
  std::unique_ptr<DurableRegistry> registry(
      new DurableRegistry(dir, options, sync));

  // 1. The vocabulary sidecar pins predicate ids and the vocabulary uid
  //    before any database or plan touches the service vocabulary.
  const std::string vocab_path =
      (fs::path(dir) / kVocabFileName).string();
  if (fs::exists(vocab_path)) {
    Status status = RestoreVocabularyInto(
        vocab_path, registry->service_.vocab().get());
    if (!status.ok()) return status;
  }

  // 2. Restore databases in sorted-name order (deterministic open).
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& path = entry.path();
    if (path.extension() != kSnapshotSuffix) continue;
    std::optional<std::string> name = DecodeDbFileName(path.stem().string());
    if (!name.has_value()) {
      return Status::InvalidArgument("unrecognized snapshot file name '" +
                                     path.filename().string() + "'");
    }
    names.push_back(std::move(*name));
  }
  std::sort(names.begin(), names.end());

  for (const std::string& name : names) {
    Result<Database> db = OpenSnapshotInto(registry->SnapshotPath(name),
                                           registry->service_.vocab());
    if (!db.ok()) {
      return Status(db.status().code(), "database '" + name + "': " +
                                            db.status().message());
    }
    const uint64_t base_uid = db.value().uid();
    const uint64_t base_revision = db.value().revision();
    const std::string wal_path = registry->WalPath(name);
    bool have_wal = fs::exists(wal_path);
    if (have_wal) {
      // Stale-generation check (see the Open doc comment): a crash
      // between SaveSnapshot and CreateWal leaves the previous
      // generation's WAL beside the new snapshot. Its groups were all
      // applied to the live database before the snapshot captured it,
      // so the snapshot subsumes them: discard and start a fresh WAL. A
      // base revision AHEAD of the snapshot is impossible under the
      // snapshot-then-WAL write order and stays a hard error (it falls
      // through to ReplayWal's identity check).
      Result<WalHeaderInfo> header = InspectWalHeader(wal_path);
      if (!header.ok()) {
        return Status(header.status().code(), "database '" + name + "': " +
                                                  header.status().message());
      }
      if (header.value().db_uid != base_uid ||
          header.value().base_revision < base_revision) {
        have_wal = false;
      }
    }
    if (have_wal) {
      Result<WalReplayStats> replay =
          ReplayWal(wal_path, base_uid, base_revision, &db.value());
      if (!replay.ok()) {
        return Status(replay.status().code(), "database '" + name + "': " +
                                                  replay.status().message());
      }
      if (replay.value().truncated_tail) {
        // Drop the torn bytes NOW: an append after them would commit a
        // group the next open can never reach past the damage.
        fs::resize_file(wal_path, replay.value().clean_prefix_bytes, ec);
        if (ec) {
          return Status::InvalidArgument(
              "database '" + name + "': cannot truncate torn WAL tail: " +
              ec.message());
        }
      }
    } else {
      Status status = CreateWal(wal_path, base_uid, base_revision);
      if (!status.ok()) return status;
    }
    Result<DbInfo> info =
        registry->service_.Register(name, std::move(db.value()));
    if (!info.ok()) return info.status();
    registry->base_[name] = {base_uid, base_revision};
  }
  return registry;
}

Status DurableRegistry::PersistVocabulary() {
  return SaveVocabulary(*service_.vocab(),
                        (fs::path(dir_) / kVocabFileName).string());
}

Result<DbInfo> DurableRegistry::PersistDatabase(const std::string& name) {
  // Pin the published version: the snapshot on disk must be internally
  // consistent even if a writer publishes while we serialize.
  EvaluationService::DatabasePtr db = service_.Snapshot(name);
  if (db == nullptr) {
    return Status::InvalidArgument("unknown database '" + name + "'");
  }
  Status status = SaveSnapshot(*db, SnapshotPath(name));
  if (!status.ok()) return status;
  status = CreateWal(WalPath(name), db->uid(), db->revision());
  if (!status.ok()) return status;
  status = PersistVocabulary();
  if (!status.ok()) return status;
  base_[name] = {db->uid(), db->revision()};
  // The fresh WAL was written atomically and fsynced; nothing un-synced
  // remains for this database.
  dirty_.erase(name);
  return DbInfo{name, db->SizeAtoms(), db->uid(), db->revision()};
}

Result<DbInfo> DurableRegistry::Load(const std::string& name,
                                     const std::string& text) {
  Result<DbInfo> info = service_.Load(name, text);
  if (!info.ok()) return info;
  return PersistDatabase(name);
}

Result<DbInfo> DurableRegistry::AppendText(const std::string& name,
                                           const std::string& text) {
  Result<std::vector<WalRecord>> records =
      ParseMutationText(text, service_.vocab());
  if (!records.ok()) return records.status();
  // Parsing may have registered new predicates; persist the vocabulary
  // before anything that could reference them is durable.
  Status status = PersistVocabulary();
  if (!status.ok()) return status;
  // Single-writer publish path: the mutation is applied to a fork of the
  // published version first (a record the database rejects — e.g. a sort
  // clash with existing constants — must never reach the log, or replay
  // would diverge), WAL-logged once it is known good, and only then
  // republished. A group that fails to log never becomes visible to
  // readers; a crash between log and publish re-applies the group from
  // the WAL on the next open, converging to the same content. Readers
  // keep serving the old version throughout.
  Result<DbInfo> info = service_.Mutate(
      name,
      [&](Database* db) { return ApplyWalRecords(records.value(), db); },
      [&](const Database&) {
        return AppendWalGroup(WalPath(name), records.value(),
                              sync_.policy == WalSyncPolicy::kCommit);
      });
  if (!info.ok()) return info;
  if (sync_.policy != WalSyncPolicy::kCommit) {
    dirty_.insert(name);
    if (sync_.policy == WalSyncPolicy::kInterval &&
        std::chrono::steady_clock::now() - last_interval_flush_ >=
            std::chrono::milliseconds(sync_.interval_ms)) {
      Status flush = Flush();
      if (!flush.ok()) return flush;
    }
  }
  return info;
}

Status DurableRegistry::Flush() {
  while (!dirty_.empty()) {
    const std::string name = *dirty_.begin();
    Status status = SyncWal(WalPath(name));
    if (!status.ok()) return status;
    dirty_.erase(name);
  }
  last_interval_flush_ = std::chrono::steady_clock::now();
  return Status::Ok();
}

Result<DbInfo> DurableRegistry::Compact(const std::string& name) {
  return PersistDatabase(name);
}

Status DurableRegistry::CompactAll() {
  for (const std::string& name : service_.database_names()) {
    Result<DbInfo> info = Compact(name);
    if (!info.ok()) return info.status();
  }
  return Status::Ok();
}

Result<uint64_t> DurableRegistry::WalBytes(const std::string& name) const {
  std::error_code ec;
  uint64_t size = fs::file_size(WalPath(name), ec);
  if (ec) {
    return Status::InvalidArgument("cannot stat WAL of '" + name +
                                   "': " + ec.message());
  }
  return size;
}

}  // namespace iodb::storage
