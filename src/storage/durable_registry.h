// DurableRegistry: the persistence layer under EvaluationService.
//
// A registry binds an EvaluationService to a directory:
//
//   <dir>/vocab.iodb      the shared vocabulary (predicates in id order
//                         + the persisted vocabulary uid, so plan-cache
//                         keys — (vocab uid, plan fingerprint) — mean
//                         the same thing after a restart)
//   <dir>/<name>.snap     one snapshot per named database
//                         (storage/snapshot.h; carries the database's
//                         (uid, revision) identity)
//   <dir>/<name>.wal      the mutations appended since that snapshot
//                         (storage/wal.h; replayed on open)
//
// Open(dir) restores the vocabulary, then every named database
// (snapshot decode + WAL replay) into a fresh service — after a
// kill-and-restart, LOADed databases are back under their names with
// the identities every (uid, revision)-keyed cache expects. Database
// names are percent-encoded into file names, so any name the line
// protocol accepts is storable.
//
// Mutations flow through the registry (Load / AppendText / Compact), so
// the on-disk state always describes the in-memory state. Evaluations
// go straight to service() — the registry adds no overhead on the read
// path.

#ifndef IODB_STORAGE_DURABLE_REGISTRY_H_
#define IODB_STORAGE_DURABLE_REGISTRY_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "service/service.h"
#include "storage/wal.h"
#include "util/status.h"

namespace iodb::storage {

class DurableRegistry {
 public:
  /// Opens (creating the directory if needed) and restores every
  /// persisted database. Returns a pointer so the service's address is
  /// stable for the registry's lifetime. `sync` sets the WAL flush
  /// policy for appends (see WalSyncPolicy).
  ///
  /// Stale-WAL rule: a crash between a snapshot write and the WAL reset
  /// that follows it (Load / Compact are snapshot-then-WAL) leaves a new
  /// snapshot beside the previous generation's WAL. Open detects this —
  /// the WAL header's uid differs from the snapshot's, or its base
  /// revision is BEHIND the snapshot's — and discards the WAL: every
  /// group in it was applied to the live database before the snapshot
  /// captured it, so the snapshot subsumes it. A WAL whose base revision
  /// is AHEAD of the snapshot cannot arise from any crash of the
  /// snapshot-then-WAL order and stays a hard error.
  static Result<std::unique_ptr<DurableRegistry>> Open(
      const std::string& dir, ServiceOptions options = {},
      WalSyncOptions sync = {});

  /// The serving layer over the restored databases. Evaluations,
  /// batches and stats go through here unchanged.
  EvaluationService& service() { return service_; }
  const EvaluationService& service() const { return service_; }

  const std::string& dir() const { return dir_; }

  /// Parses and registers a database under `name` (replacing any
  /// previous registration) and persists it: fresh snapshot, fresh
  /// (empty) WAL, updated vocabulary sidecar.
  Result<DbInfo> Load(const std::string& name, const std::string& text);

  /// Appends database-format statements to the registered database
  /// `name` as one WAL group: parses, applies to the live database, and
  /// logs the group — replay-on-open reapplies exactly the same
  /// records, so a restarted registry converges to the same content and
  /// revision.
  Result<DbInfo> AppendText(const std::string& name, const std::string& text);

  /// Folds the WAL into a fresh snapshot (write current state, reset the
  /// WAL to empty on the new base identity).
  Result<DbInfo> Compact(const std::string& name);

  /// Compacts every registered database.
  Status CompactAll();

  /// fsyncs every WAL with un-synced appends (kNone / kInterval
  /// policies; a no-op under kCommit). The serving shutdown path.
  Status Flush();

  const WalSyncOptions& sync_options() const { return sync_; }

  /// Current WAL size in bytes (test/inspection hook).
  Result<uint64_t> WalBytes(const std::string& name) const;

  std::string SnapshotPath(const std::string& name) const;
  std::string WalPath(const std::string& name) const;

  /// Percent-encodes a database name into a file stem (bytes outside
  /// [A-Za-z0-9_-] become %XX), and back. Decode returns nullopt for a
  /// malformed encoding.
  static std::string EncodeDbFileName(const std::string& name);
  static std::optional<std::string> DecodeDbFileName(const std::string& stem);

 private:
  DurableRegistry(std::string dir, ServiceOptions options,
                  WalSyncOptions sync)
      : dir_(std::move(dir)),
        service_(options),
        sync_(sync),
        last_interval_flush_(std::chrono::steady_clock::now()) {}

  Status PersistVocabulary();
  /// Snapshot + fresh WAL + vocabulary for the registered database.
  Result<DbInfo> PersistDatabase(const std::string& name);

  std::string dir_;
  EvaluationService service_;
  WalSyncOptions sync_;
  // Per database: the (uid, revision) base identity of the snapshot on
  // disk — the identity the WAL header is bound to.
  std::map<std::string, std::pair<uint64_t, uint64_t>> base_;
  // Databases whose WAL has appends not yet fsynced (kNone / kInterval).
  std::set<std::string> dirty_;
  std::chrono::steady_clock::time_point last_interval_flush_;
};

}  // namespace iodb::storage

#endif  // IODB_STORAGE_DURABLE_REGISTRY_H_
