#include "storage/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"

namespace iodb::storage {

Status WriteFull(int fd, std::string_view bytes, const std::string& what) {
  const char* data = bytes.data();
  size_t left = bytes.size();
  while (left > 0) {
    size_t chunk = left;
    // Short-write seam: cap every chunk at one byte so the resume loop
    // provably runs (the kernel is allowed to do this to us any time).
    if (failpoint::Check("io-short-write") != failpoint::Action::kOff) {
      chunk = 1;
    }
    ssize_t n = ::write(fd, data, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument("error writing " + what + ": " +
                                     std::strerror(errno));
    }
    data += n;
    left -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status ReadFull(int fd, std::string* out, const std::string& what) {
  char buffer[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::InvalidArgument("error reading " + what + ": " +
                                     std::strerror(errno));
    }
    if (n == 0) return Status::Ok();
    out->append(buffer, static_cast<size_t>(n));
  }
}

Status FsyncFd(int fd, const std::string& what) {
  while (::fsync(fd) != 0) {
    if (errno == EINTR) continue;
    return Status::InvalidArgument("fsync of " + what + " failed: " +
                                   std::strerror(errno));
  }
  return Status::Ok();
}

Result<int> OpenFd(const std::string& path, int flags, int mode,
                   const std::string& what) {
  for (;;) {
    int fd = ::open(path.c_str(), flags, mode);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return Status::InvalidArgument("cannot open " + what + " '" + path +
                                   "': " + std::strerror(errno));
  }
}

}  // namespace iodb::storage
