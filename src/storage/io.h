// EINTR-safe raw-I/O helpers shared by every storage-layer syscall site
// (WAL append, snapshot write, WriteFileAtomic, file slurps).
//
// The serving layer is signal-rich — self-pipe shutdown, per-session
// cancellation, timers — so interrupted syscalls are routine, and a
// short write() that is not resumed corrupts the WAL tail. Every raw
// read/write/fsync in src/storage/ goes through these wrappers:
//
//   * WriteFull  — loops until every byte is written; EINTR retried.
//   * ReadFull   — loops until EOF or the cap; EINTR retried.
//   * FsyncFd    — fsync with EINTR retry.
//   * OpenFd     — open with EINTR retry (slow devices, O_CREAT on NFS).
//
// Failpoint "io-short-write": armed (action error), WriteFull caps every
// write() chunk at one byte, forcing the resume loop to run once per
// byte — the regression proof that short writes are handled. Hits()
// counts the chunks actually issued.

#ifndef IODB_STORAGE_IO_H_
#define IODB_STORAGE_IO_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace iodb::storage {

/// Writes all of `bytes` to `fd`, resuming after EINTR and short
/// writes. `what` names the destination in error messages.
Status WriteFull(int fd, std::string_view bytes, const std::string& what);

/// Reads from `fd` until EOF, appending to `*out` (existing content is
/// kept), resuming after EINTR and short reads.
Status ReadFull(int fd, std::string* out, const std::string& what);

/// fsync(fd) with EINTR retry.
Status FsyncFd(int fd, const std::string& what);

/// open(2) with EINTR retry. Returns the fd, or a status naming `what`.
Result<int> OpenFd(const std::string& path, int flags, int mode,
                   const std::string& what);

}  // namespace iodb::storage

#endif  // IODB_STORAGE_IO_H_
