#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "stats/stats.h"
#include "storage/codec.h"
#include "storage/io.h"
#include "util/failpoint.h"

namespace iodb::storage {

namespace {

constexpr char kMagic[8] = {'I', 'O', 'D', 'B', 'S', 'N', 'A', 'P'};
// Written little-endian; a reader that decodes it as anything but this
// value is mis-decoding multi-byte integers.
constexpr uint32_t kEndianTag = 0x1A2B3C4D;

// Section ids, in file order. Ids 1-6 are the mandatory v1 set; 7 is
// the optional statistics section introduced by format v2.
enum SectionId : uint32_t {
  kSectionVocabulary = 1,
  kSectionConstants = 2,
  kSectionFactSegments = 3,
  kSectionOrderAtoms = 4,
  kSectionInequalities = 5,
  kSectionIdentity = 6,
  kSectionStatistics = 7,
};
constexpr uint32_t kNumRequiredSections = 6;
constexpr uint32_t kMaxSectionId = 7;

constexpr size_t kHeaderBytes = 8 + 4 + 4 + 4 + 8;
constexpr size_t kTableEntryBytes = 4 + 4 + 8 + 8 + 8;

Status Corrupt(const std::string& message) {
  return Status::InvalidArgument("snapshot: " + message);
}

// --- section encoders --------------------------------------------------------

std::string EncodeVocabularySection(const Vocabulary& vocab) {
  std::string out;
  AppendU64(&out, vocab.uid());
  AppendU32(&out, static_cast<uint32_t>(vocab.num_predicates()));
  for (int p = 0; p < vocab.num_predicates(); ++p) {
    const PredicateInfo& info = vocab.predicate(p);
    AppendString(&out, info.name);
    AppendU32(&out, static_cast<uint32_t>(info.arity()));
    for (Sort sort : info.arg_sorts) {
      AppendU8(&out, static_cast<uint8_t>(sort));
    }
  }
  return out;
}

std::string EncodeConstantsSection(const Database& db) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(db.num_object_constants()));
  for (int i = 0; i < db.num_object_constants(); ++i) {
    AppendString(&out, db.object_name(i));
  }
  AppendU32(&out, static_cast<uint32_t>(db.num_order_constants()));
  for (int i = 0; i < db.num_order_constants(); ++i) {
    AppendString(&out, db.order_name(i));
  }
  return out;
}

// Predicate-bucketed flat argument segments: for each predicate, the
// tuple count followed by count*arity argument ids in signature order —
// the FactIndex bucket layout, so opening a snapshot is a straight
// decode into the shape evaluation wants.
std::string EncodeFactSegments(const Database& db) {
  const Vocabulary& vocab = *db.vocab();
  std::vector<std::vector<int>> buckets(
      static_cast<size_t>(vocab.num_predicates()));
  std::vector<uint64_t> counts(static_cast<size_t>(vocab.num_predicates()),
                               0);
  for (const ProperAtom& atom : db.proper_atoms()) {
    std::vector<int>& bucket = buckets[static_cast<size_t>(atom.pred)];
    for (const Term& term : atom.args) bucket.push_back(term.id);
    ++counts[static_cast<size_t>(atom.pred)];
  }
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(vocab.num_predicates()));
  for (int p = 0; p < vocab.num_predicates(); ++p) {
    AppendU32(&out, static_cast<uint32_t>(vocab.predicate(p).arity()));
    AppendU64(&out, counts[static_cast<size_t>(p)]);
    for (int id : buckets[static_cast<size_t>(p)]) {
      AppendU32(&out, static_cast<uint32_t>(id));
    }
  }
  return out;
}

std::string EncodeOrderAtomsSection(const Database& db) {
  std::string out;
  AppendU64(&out, db.order_atoms().size());
  for (const OrderAtom& atom : db.order_atoms()) {
    AppendU32(&out, static_cast<uint32_t>(atom.lhs));
    AppendU32(&out, static_cast<uint32_t>(atom.rhs));
    AppendU8(&out, static_cast<uint8_t>(atom.rel));
  }
  return out;
}

std::string EncodeInequalitiesSection(const Database& db) {
  std::string out;
  AppendU64(&out, db.inequalities().size());
  for (const InequalityAtom& atom : db.inequalities()) {
    AppendU32(&out, static_cast<uint32_t>(atom.lhs));
    AppendU32(&out, static_cast<uint32_t>(atom.rhs));
  }
  return out;
}

std::string EncodeIdentitySection(const Database& db) {
  std::string out;
  AppendU64(&out, db.uid());
  AppendU64(&out, db.revision());
  return out;
}

std::string AssembleFile(const std::vector<std::pair<uint32_t, std::string>>&
                             sections) {
  // Compute payload offsets: header, table, then payloads in order.
  std::string table;
  uint64_t offset = kHeaderBytes + kTableEntryBytes * sections.size();
  for (const auto& [id, payload] : sections) {
    AppendU32(&table, id);
    AppendU32(&table, 0);  // reserved
    AppendU64(&table, offset);
    AppendU64(&table, payload.size());
    AppendU64(&table, Fnv1a64(payload));
    offset += payload.size();
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kSnapshotFormatVersion);
  AppendU32(&out, kEndianTag);
  AppendU32(&out, static_cast<uint32_t>(sections.size()));
  AppendU64(&out, Fnv1a64(table));
  out += table;
  for (const auto& [id, payload] : sections) out += payload;
  return out;
}

// --- decoding ----------------------------------------------------------------

// Verified section table: id -> payload view. `present` distinguishes
// an absent optional section from a present-but-empty payload.
struct SectionMap {
  uint32_t version = 0;
  std::string_view payload[kMaxSectionId + 1];
  bool present[kMaxSectionId + 1] = {};
  std::vector<SectionInfo> infos;
};

Status ReadSectionMap(std::string_view bytes, const char expected_magic[8],
                      SectionMap* map) {
  ByteReader reader(bytes);
  std::string_view magic;
  Status status = reader.ReadBytes(8, &magic);
  if (!status.ok()) return Corrupt(status.message());
  if (magic != std::string_view(expected_magic, 8)) {
    return Corrupt("bad magic (not a snapshot file)");
  }
  uint32_t version = 0, endian = 0, count = 0;
  uint64_t table_checksum = 0;
  if (!(status = reader.ReadU32(&version)).ok() ||
      !(status = reader.ReadU32(&endian)).ok() ||
      !(status = reader.ReadU32(&count)).ok() ||
      !(status = reader.ReadU64(&table_checksum)).ok()) {
    return Corrupt(status.message());
  }
  if (version < 1 || version > kSnapshotFormatVersion) {
    return Corrupt("unsupported format version " + std::to_string(version) +
                   " (this reader understands versions 1-" +
                   std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (endian != kEndianTag) {
    return Corrupt("endian tag mismatch (corrupt header)");
  }
  // v1 files carry exactly the six mandatory sections; v2 may add the
  // optional statistics section.
  const uint32_t max_id = version >= 2 ? kMaxSectionId : kNumRequiredSections;
  if (count < kNumRequiredSections || count > max_id) {
    return Corrupt("expected " + std::to_string(kNumRequiredSections) +
                   (version >= 2 ? "-" + std::to_string(max_id) : "") +
                   " sections, found " + std::to_string(count));
  }
  map->version = version;
  std::string_view table;
  status = reader.ReadBytes(kTableEntryBytes * count, &table);
  if (!status.ok()) return Corrupt(status.message());
  if (Fnv1a64(table) != table_checksum) {
    return Corrupt("section table checksum mismatch");
  }
  ByteReader table_reader(table);
  std::unordered_set<uint32_t> seen;
  for (uint32_t i = 0; i < count; ++i) {
    SectionInfo info;
    uint32_t reserved = 0;
    (void)table_reader.ReadU32(&info.id);
    (void)table_reader.ReadU32(&reserved);
    (void)table_reader.ReadU64(&info.offset);
    (void)table_reader.ReadU64(&info.length);
    (void)table_reader.ReadU64(&info.checksum);
    if (info.id < 1 || info.id > max_id) {
      return Corrupt("unknown section id " + std::to_string(info.id) +
                     " (written by a newer version?)");
    }
    if (!seen.insert(info.id).second) {
      return Corrupt("duplicate section id " + std::to_string(info.id));
    }
    if (info.offset > bytes.size() ||
        info.length > bytes.size() - info.offset) {
      return Corrupt("section " + std::string(SectionInfo::Name(info.id)) +
                     " extends past end of file");
    }
    std::string_view payload =
        bytes.substr(static_cast<size_t>(info.offset),
                     static_cast<size_t>(info.length));
    if (Fnv1a64(payload) != info.checksum) {
      return Corrupt("section " + std::string(SectionInfo::Name(info.id)) +
                     " checksum mismatch");
    }
    map->payload[info.id] = payload;
    map->present[info.id] = true;
    map->infos.push_back(info);
  }
  for (uint32_t id = 1; id <= kNumRequiredSections; ++id) {
    if (!map->present[id]) {
      return Corrupt("missing mandatory section " +
                     std::string(SectionInfo::Name(id)));
    }
  }
  return Status::Ok();
}

struct DecodedVocabulary {
  uint64_t uid = 0;
  std::vector<PredicateInfo> predicates;
};

Status DecodeVocabularySection(std::string_view payload,
                               DecodedVocabulary* out) {
  ByteReader reader(payload);
  Status status;
  uint32_t num_preds = 0;
  if (!(status = reader.ReadU64(&out->uid)).ok() ||
      !(status = reader.ReadU32(&num_preds)).ok()) {
    return Corrupt(status.message());
  }
  out->predicates.reserve(num_preds);
  std::unordered_set<std::string> names;
  for (uint32_t p = 0; p < num_preds; ++p) {
    PredicateInfo info;
    uint32_t arity = 0;
    if (!(status = reader.ReadString(&info.name)).ok() ||
        !(status = reader.ReadU32(&arity)).ok()) {
      return Corrupt(status.message());
    }
    if (!names.insert(info.name).second) {
      return Corrupt("duplicate predicate name '" + info.name + "'");
    }
    info.arg_sorts.reserve(arity);
    for (uint32_t a = 0; a < arity; ++a) {
      uint8_t sort = 0;
      if (!(status = reader.ReadU8(&sort)).ok()) {
        return Corrupt(status.message());
      }
      if (sort > 1) return Corrupt("bad sort byte");
      info.arg_sorts.push_back(static_cast<Sort>(sort));
    }
    out->predicates.push_back(std::move(info));
  }
  if (!reader.AtEnd()) return Corrupt("trailing bytes in vocabulary section");
  return Status::Ok();
}

struct DecodedConstants {
  std::vector<std::string> object_names;
  std::vector<std::string> order_names;
};

Status DecodeConstantsSection(std::string_view payload,
                              DecodedConstants* out) {
  ByteReader reader(payload);
  Status status;
  for (int sort = 0; sort < 2; ++sort) {
    std::vector<std::string>& table =
        sort == 0 ? out->object_names : out->order_names;
    uint32_t count = 0;
    if (!(status = reader.ReadU32(&count)).ok()) {
      return Corrupt(status.message());
    }
    if (count > reader.remaining() / 4) {  // each name needs >= 4 bytes
      return Corrupt("constant count extends past its section");
    }
    table.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string name;
      if (!(status = reader.ReadString(&name)).ok()) {
        return Corrupt(status.message());
      }
      table.push_back(std::move(name));
    }
  }
  // Duplicate names (one name denotes one typed constant) are detected
  // by RestoreConstantTables during interning — no extra pass here.
  if (!reader.AtEnd()) return Corrupt("trailing bytes in constants section");
  return Status::Ok();
}

// The shared tail of both decode entry points: `pred_map[file_id]` is
// the id in `db->vocab()` (identity when restoring into a fresh
// vocabulary).
Status DecodeBody(const SectionMap& map, const std::vector<int>& pred_map,
                  const std::vector<PredicateInfo>& file_preds,
                  DecodedConstants constants, Database* db) {
  const uint32_t num_objects =
      static_cast<uint32_t>(constants.object_names.size());
  const uint32_t num_orders =
      static_cast<uint32_t>(constants.order_names.size());
  Status interned =
      db->RestoreConstantTables(std::move(constants.object_names),
                                std::move(constants.order_names));
  if (!interned.ok()) return Corrupt(interned.message());

  // Fact segments: each predicate bucket is one block read, decoded and
  // range-validated as a flat array, then bulk-appended — the fast path
  // that makes a snapshot open a decode instead of a parse.
  {
    ByteReader reader(map.payload[kSectionFactSegments]);
    Status status;
    uint32_t num_preds = 0;
    if (!(status = reader.ReadU32(&num_preds)).ok()) {
      return Corrupt(status.message());
    }
    if (num_preds != file_preds.size()) {
      return Corrupt("fact segment count disagrees with vocabulary");
    }
    std::vector<int> scratch;
    std::vector<uint32_t> limits;
    for (uint32_t p = 0; p < num_preds; ++p) {
      const PredicateInfo& info = file_preds[p];
      uint32_t arity = 0;
      uint64_t count = 0;
      if (!(status = reader.ReadU32(&arity)).ok() ||
          !(status = reader.ReadU64(&count)).ok()) {
        return Corrupt(status.message());
      }
      if (arity != static_cast<uint32_t>(info.arity())) {
        return Corrupt("fact segment arity disagrees with signature of '" +
                       info.name + "'");
      }
      // Bound the decode work before trusting `count`: a tuple needs
      // 4*arity payload bytes (nullary tuples need none, so cap them
      // separately rather than spin on a corrupt count).
      if (arity == 0 ? count > (uint64_t{1} << 20)
                     : count > reader.remaining() /
                                   (static_cast<uint64_t>(arity) * 4)) {
        return Corrupt("fact segment of '" + info.name +
                       "' extends past its section");
      }
      const size_t values = static_cast<size_t>(count) * arity;
      std::string_view block;
      if (!(status = reader.ReadBytes(values * 4, &block)).ok()) {
        return Corrupt(status.message());
      }
      limits.assign(arity, 0);
      for (uint32_t a = 0; a < arity; ++a) {
        limits[a] =
            info.arg_sorts[a] == Sort::kObject ? num_objects : num_orders;
      }
      scratch.resize(values);
      const unsigned char* src =
          reinterpret_cast<const unsigned char*>(block.data());
      for (size_t i = 0; i < values; ++i) {
        const uint32_t id = static_cast<uint32_t>(src[4 * i]) |
                            static_cast<uint32_t>(src[4 * i + 1]) << 8 |
                            static_cast<uint32_t>(src[4 * i + 2]) << 16 |
                            static_cast<uint32_t>(src[4 * i + 3]) << 24;
        if (id >= limits[i % arity]) {
          return Corrupt("argument id out of range in facts of '" +
                         info.name + "'");
        }
        scratch[i] = static_cast<int>(id);
      }
      db->AppendFactSegment(pred_map[p], scratch.data(),
                            static_cast<size_t>(count));
    }
    if (!reader.AtEnd()) {
      return Corrupt("trailing bytes in fact segments section");
    }
  }

  // Order atoms.
  {
    ByteReader reader(map.payload[kSectionOrderAtoms]);
    Status status;
    uint64_t count = 0;
    if (!(status = reader.ReadU64(&count)).ok()) {
      return Corrupt(status.message());
    }
    if (count > reader.remaining() / 9) {  // 9 bytes per order atom
      return Corrupt("order atom count extends past its section");
    }
    db->ReserveAtoms(0, static_cast<size_t>(count), 0);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t lhs = 0, rhs = 0;
      uint8_t rel = 0;
      if (!(status = reader.ReadU32(&lhs)).ok() ||
          !(status = reader.ReadU32(&rhs)).ok() ||
          !(status = reader.ReadU8(&rel)).ok()) {
        return Corrupt(status.message());
      }
      if (lhs >= num_orders || rhs >= num_orders || rel > 1) {
        return Corrupt("order atom out of range");
      }
      db->AddOrderAtom(static_cast<int>(lhs), static_cast<int>(rhs),
                       static_cast<OrderRel>(rel));
    }
    if (!reader.AtEnd()) {
      return Corrupt("trailing bytes in order atoms section");
    }
  }

  // Inequalities.
  {
    ByteReader reader(map.payload[kSectionInequalities]);
    Status status;
    uint64_t count = 0;
    if (!(status = reader.ReadU64(&count)).ok()) {
      return Corrupt(status.message());
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t lhs = 0, rhs = 0;
      if (!(status = reader.ReadU32(&lhs)).ok() ||
          !(status = reader.ReadU32(&rhs)).ok()) {
        return Corrupt(status.message());
      }
      if (lhs >= num_orders || rhs >= num_orders) {
        return Corrupt("inequality out of range");
      }
      db->AddInequality(static_cast<int>(lhs), static_cast<int>(rhs));
    }
    if (!reader.AtEnd()) {
      return Corrupt("trailing bytes in inequalities section");
    }
  }

  // Identity: adopt the persisted (uid, revision) last, after every
  // mutator above has run.
  {
    ByteReader reader(map.payload[kSectionIdentity]);
    Status status;
    uint64_t uid = 0, revision = 0;
    if (!(status = reader.ReadU64(&uid)).ok() ||
        !(status = reader.ReadU64(&revision)).ok()) {
      return Corrupt(status.message());
    }
    if (!reader.AtEnd()) {
      return Corrupt("trailing bytes in identity section");
    }
    db->RestoreIdentity(uid, revision);
  }

  // Statistics (v2+, optional): install after RestoreIdentity so the
  // freshness stamp matches the restored revision. Persisted stats
  // reference the FILE vocabulary's predicate ids, so a registry-open
  // that remapped any predicate drops them (rebuilt lazily on demand).
  if (map.present[kSectionStatistics]) {
    bool identity_map = true;
    for (size_t p = 0; p < pred_map.size(); ++p) {
      identity_map = identity_map && pred_map[p] == static_cast<int>(p);
    }
    if (identity_map) {
      Result<stats::DatabaseStats> decoded =
          stats::DecodeStats(map.payload[kSectionStatistics]);
      if (!decoded.ok()) {
        return Corrupt("statistics section: " + decoded.status().message());
      }
      // Identity mismatch (a hand-assembled file) is tolerated, not
      // fatal: statistics are advisory, so the install is skipped and
      // the stats rebuild lazily, exactly like a pre-v2 snapshot.
      (void)stats::InstallPersistedStats(*db, std::move(decoded.value()));
    }
  }
  return Status::Ok();
}

Result<Database> DecodeImpl(std::string_view bytes, VocabularyPtr vocab) {
  SectionMap map;
  Status status = ReadSectionMap(bytes, kMagic, &map);
  if (!status.ok()) return status;

  DecodedVocabulary file_vocab;
  status = DecodeVocabularySection(map.payload[kSectionVocabulary],
                                   &file_vocab);
  if (!status.ok()) return status;
  DecodedConstants constants;
  status = DecodeConstantsSection(map.payload[kSectionConstants], &constants);
  if (!status.ok()) return status;

  const bool fresh_vocab = vocab == nullptr;
  if (fresh_vocab) vocab = std::make_shared<Vocabulary>();
  std::vector<int> pred_map;
  pred_map.reserve(file_vocab.predicates.size());
  for (PredicateInfo& info : file_vocab.predicates) {
    Result<int> id = vocab->GetOrAddPredicate(info.name, info.arg_sorts);
    if (!id.ok()) {
      return Corrupt("predicate '" + info.name +
                     "' clashes with the target vocabulary: " +
                     id.status().message());
    }
    pred_map.push_back(id.value());
  }
  if (fresh_vocab) vocab->RestoreUid(file_vocab.uid);

  Database db(vocab);
  status = DecodeBody(map, pred_map, file_vocab.predicates,
                      std::move(constants), &db);
  if (!status.ok()) return status;
  return db;
}

}  // namespace

const char* SectionInfo::Name(uint32_t id) {
  switch (id) {
    case kSectionVocabulary: return "vocabulary";
    case kSectionConstants: return "constants";
    case kSectionFactSegments: return "fact-segments";
    case kSectionOrderAtoms: return "order-atoms";
    case kSectionInequalities: return "inequalities";
    case kSectionIdentity: return "identity";
    case kSectionStatistics: return "statistics";
    default: return "unknown";
  }
}

std::string SnapshotInfo::ToString() const {
  auto line = [](const char* name, uint64_t value) {
    std::string out = name;
    while (out.size() < 22) out += ' ';
    return out + std::to_string(value) + "\n";
  };
  std::string out;
  out += line("format-version", format_version);
  out += line("file-bytes", file_bytes);
  out += line("vocab-uid", vocab_uid);
  out += line("db-uid", db_uid);
  out += line("revision", revision);
  out += line("predicates", num_predicates);
  out += line("object-constants", num_object_constants);
  out += line("order-constants", num_order_constants);
  out += line("proper-atoms", num_proper_atoms);
  out += line("order-atoms", num_order_atoms);
  out += line("inequalities", num_inequalities);
  for (const SectionInfo& section : sections) {
    std::ostringstream entry;
    entry << "section " << SectionInfo::Name(section.id) << " offset="
          << section.offset << " bytes=" << section.length << " fnv1a64=0x"
          << std::hex << section.checksum << "\n";
    out += entry.str();
  }
  {
    std::string state = "statistics            ";
    state += !has_statistics ? "absent (pre-v2 snapshot; rebuilt on open)"
             : statistics_fresh
                 ? "persisted (fresh)"
                 : "persisted (STALE: identity mismatch, rebuilt on open)";
    out += state + "\n";
  }
  out += statistics;
  return out;
}

std::string EncodeSnapshot(const Database& db) {
  std::vector<std::pair<uint32_t, std::string>> sections;
  sections.emplace_back(kSectionVocabulary,
                        EncodeVocabularySection(*db.vocab()));
  sections.emplace_back(kSectionConstants, EncodeConstantsSection(db));
  sections.emplace_back(kSectionFactSegments, EncodeFactSegments(db));
  sections.emplace_back(kSectionOrderAtoms, EncodeOrderAtomsSection(db));
  sections.emplace_back(kSectionInequalities, EncodeInequalitiesSection(db));
  sections.emplace_back(kSectionIdentity, EncodeIdentitySection(db));
  // Statistics last: a pure function of content + identity, so the
  // whole file stays a pure function of the database (byte-stable
  // re-encode whether the stats were persisted or rebuilt).
  sections.emplace_back(kSectionStatistics,
                        stats::EncodeStats(*stats::StatsFor(db)));
  return AssembleFile(sections);
}

Result<Database> DecodeSnapshot(std::string_view bytes) {
  return DecodeImpl(bytes, nullptr);
}

Result<Database> DecodeSnapshotInto(std::string_view bytes,
                                    VocabularyPtr vocab) {
  IODB_CHECK(vocab != nullptr);
  return DecodeImpl(bytes, std::move(vocab));
}

Result<SnapshotInfo> InspectSnapshot(std::string_view bytes) {
  SectionMap map;
  Status status = ReadSectionMap(bytes, kMagic, &map);
  if (!status.ok()) return status;
  DecodedVocabulary file_vocab;
  status = DecodeVocabularySection(map.payload[kSectionVocabulary],
                                   &file_vocab);
  if (!status.ok()) return status;
  DecodedConstants constants;
  status = DecodeConstantsSection(map.payload[kSectionConstants], &constants);
  if (!status.ok()) return status;

  SnapshotInfo info;
  info.format_version = map.version;
  info.file_bytes = bytes.size();
  info.vocab_uid = file_vocab.uid;
  info.num_predicates = static_cast<uint32_t>(file_vocab.predicates.size());
  info.num_object_constants =
      static_cast<uint32_t>(constants.object_names.size());
  info.num_order_constants =
      static_cast<uint32_t>(constants.order_names.size());
  info.sections = map.infos;

  // Summary counts straight from the section payloads (validated the
  // same way DecodeBody validates counts against their section bounds).
  {
    ByteReader reader(map.payload[kSectionFactSegments]);
    uint32_t num_preds = 0;
    Status read = reader.ReadU32(&num_preds);
    if (!read.ok() || num_preds != file_vocab.predicates.size()) {
      return Corrupt("fact segment count disagrees with vocabulary");
    }
    for (uint32_t p = 0; p < num_preds; ++p) {
      uint32_t arity = 0;
      uint64_t count = 0;
      if (!(read = reader.ReadU32(&arity)).ok() ||
          !(read = reader.ReadU64(&count)).ok()) {
        return Corrupt(read.message());
      }
      if (arity == 0 ? count > (uint64_t{1} << 20)
                     : count > reader.remaining() /
                                   (static_cast<uint64_t>(arity) * 4)) {
        return Corrupt("fact segment extends past its section");
      }
      std::string_view skipped;
      if (!(read = reader.ReadBytes(
                static_cast<size_t>(count * arity * 4), &skipped))
               .ok()) {
        return Corrupt(read.message());
      }
      info.num_proper_atoms += count;
    }
  }
  {
    ByteReader reader(map.payload[kSectionOrderAtoms]);
    Status read = reader.ReadU64(&info.num_order_atoms);
    if (!read.ok()) return Corrupt(read.message());
  }
  {
    ByteReader reader(map.payload[kSectionInequalities]);
    Status read = reader.ReadU64(&info.num_inequalities);
    if (!read.ok()) return Corrupt(read.message());
  }
  {
    ByteReader reader(map.payload[kSectionIdentity]);
    Status read;
    if (!(read = reader.ReadU64(&info.db_uid)).ok() ||
        !(read = reader.ReadU64(&info.revision)).ok()) {
      return Corrupt(read.message());
    }
  }
  if (map.present[kSectionStatistics]) {
    Result<stats::DatabaseStats> decoded =
        stats::DecodeStats(map.payload[kSectionStatistics]);
    if (!decoded.ok()) {
      return Corrupt("statistics section: " + decoded.status().message());
    }
    info.has_statistics = true;
    info.statistics_fresh = decoded.value().db_uid == info.db_uid &&
                            decoded.value().db_revision == info.revision;
    info.statistics = stats::RenderStats(decoded.value());
  }
  return info;
}

Status SaveSnapshot(const Database& db, const std::string& path) {
  return WriteFileAtomic(path, EncodeSnapshot(db));
}

Result<Database> OpenSnapshot(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshot(bytes.value());
}

Result<Database> OpenSnapshotInto(const std::string& path,
                                  VocabularyPtr vocab) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  return DecodeSnapshotInto(bytes.value(), std::move(vocab));
}

Result<SnapshotInfo> InspectSnapshotFile(const std::string& path) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  Result<SnapshotInfo> info = InspectSnapshot(bytes.value());
  return info;
}

// --- vocabulary sidecar ------------------------------------------------------

namespace {
constexpr char kVocabMagic[8] = {'I', 'O', 'D', 'B', 'V', 'O', 'C', 'B'};
}  // namespace

std::string EncodeVocabulary(const Vocabulary& vocab) {
  std::string payload = EncodeVocabularySection(vocab);
  std::string out;
  out.append(kVocabMagic, sizeof(kVocabMagic));
  AppendU32(&out, kSnapshotFormatVersion);
  AppendU32(&out, kEndianTag);
  AppendU64(&out, payload.size());
  AppendU64(&out, Fnv1a64(payload));
  out += payload;
  return out;
}

Status SaveVocabulary(const Vocabulary& vocab, const std::string& path) {
  return WriteFileAtomic(path, EncodeVocabulary(vocab));
}

Status RestoreVocabularyInto(const std::string& path, Vocabulary* vocab) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  ByteReader reader(bytes.value());
  std::string_view magic;
  Status status = reader.ReadBytes(8, &magic);
  if (!status.ok()) return Corrupt(status.message());
  if (magic != std::string_view(kVocabMagic, 8)) {
    return Corrupt("bad magic (not a vocabulary file)");
  }
  uint32_t version = 0, endian = 0;
  uint64_t length = 0, checksum = 0;
  if (!(status = reader.ReadU32(&version)).ok() ||
      !(status = reader.ReadU32(&endian)).ok() ||
      !(status = reader.ReadU64(&length)).ok() ||
      !(status = reader.ReadU64(&checksum)).ok()) {
    return Corrupt(status.message());
  }
  // The sidecar payload has not changed across format versions; accept
  // every version this reader knows.
  if (version < 1 || version > kSnapshotFormatVersion) {
    return Corrupt("unsupported vocabulary file version " +
                   std::to_string(version));
  }
  if (endian != kEndianTag) {
    return Corrupt("endian tag mismatch (corrupt header)");
  }
  std::string_view payload;
  status = reader.ReadBytes(static_cast<size_t>(length), &payload);
  if (!status.ok()) return Corrupt(status.message());
  if (Fnv1a64(payload) != checksum) {
    return Corrupt("vocabulary payload checksum mismatch");
  }
  DecodedVocabulary decoded;
  status = DecodeVocabularySection(payload, &decoded);
  if (!status.ok()) return status;
  // Register in persisted id order: on a fresh vocabulary this
  // reproduces the persisted ids exactly, which is what keeps plan
  // fingerprints comparable across restarts.
  for (size_t p = 0; p < decoded.predicates.size(); ++p) {
    PredicateInfo& info = decoded.predicates[p];
    Result<int> id = vocab->GetOrAddPredicate(info.name, info.arg_sorts);
    if (!id.ok()) return id.status();
    if (id.value() != static_cast<int>(p)) {
      return Corrupt("predicate '" + info.name +
                     "' restored at id " + std::to_string(id.value()) +
                     ", persisted at " + std::to_string(p) +
                     " (restore into a fresh vocabulary)");
    }
  }
  vocab->RestoreUid(decoded.uid);
  return Status::Ok();
}

// --- file helpers ------------------------------------------------------------

Result<std::string> ReadFileBytes(const std::string& path) {
  Result<int> opened = OpenFd(path, O_RDONLY | O_CLOEXEC, 0, "file");
  if (!opened.ok()) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  const int fd = opened.value();
  std::string bytes;
  Status status = ReadFull(fd, &bytes, "'" + path + "'");
  ::close(fd);
  if (!status.ok()) return status;
  return bytes;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  Status status = failpoint::CheckAndMaybeFail("snapshot-write-before-tmp");
  if (!status.ok()) return status;

  const std::string tmp = path + ".tmp";
  Result<int> opened = OpenFd(
      tmp, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644, "temp file");
  if (!opened.ok()) return opened.status();
  const int fd = opened.value();
  // Torn-write seam: stage a strict prefix of the temp file, then act.
  // The target file is untouched either way — that is the atomicity
  // being tested.
  const failpoint::Action torn = failpoint::Check("snapshot-write-torn");
  size_t to_write = bytes.size();
  if (torn != failpoint::Action::kOff) to_write /= 2;
  status = WriteFull(fd, bytes.substr(0, to_write), "'" + tmp + "'");
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  if (torn == failpoint::Action::kCrash) failpoint::CrashNow();
  if (torn == failpoint::Action::kError) {
    ::close(fd);
    return Status::InvalidArgument(
        "failpoint 'snapshot-write-torn' injected partial write");
  }
  // fsync BEFORE rename: without it the rename can reach the directory
  // while the data has not reached the platter, and a power cut leaves a
  // complete-looking file of garbage under the final name.
  status = FsyncFd(fd, "'" + tmp + "'");
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) {
    return Status::InvalidArgument("close of '" + tmp +
                                   "' failed: " + std::strerror(errno));
  }

  status = failpoint::CheckAndMaybeFail("snapshot-before-rename");
  if (!status.ok()) return status;
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::InvalidArgument("cannot rename '" + tmp + "' to '" + path +
                                   "': " + ec.message());
  }
  // fsync the parent directory so the rename itself is durable.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  Result<int> dir_fd = OpenFd(dir.empty() ? "." : dir,
                              O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0,
                              "parent directory");
  if (dir_fd.ok()) {
    (void)FsyncFd(dir_fd.value(), "parent directory of '" + path + "'");
    ::close(dir_fd.value());
  }
  return failpoint::CheckAndMaybeFail("snapshot-after-rename");
}

}  // namespace iodb::storage
