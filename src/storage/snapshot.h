// Versioned, checksummed binary snapshots of Vocabulary + Database.
//
// A snapshot is the durable form of one database: the interned symbol
// tables (predicates, object/order constants), the facts laid out as
// predicate-bucketed flat argument segments (the same shape FactIndex
// buckets use at evaluation time, and the reason a snapshot open is a
// decode instead of a parse), the order atoms and inequalities, and the
// persisted (uid, revision) identity — so a database restored from disk
// is recognized by every (uid, revision)-keyed cache (NormView, per-plan
// transformed views) as the content it saw before the restart.
//
// File layout (all integers little-endian; see storage/codec.h and
// docs/SNAPSHOT_FORMAT.md for the byte-level spec):
//
//   header:   magic "IODBSNAP" | u32 version | u32 endian tag
//             | u32 section count | u64 section-table checksum
//   table:    per section: u32 id | u32 reserved | u64 offset
//             | u64 length | u64 FNV-1a-64 checksum of the payload
//   payloads: vocabulary, constants, fact segments, order atoms,
//             inequalities, identity, statistics (v2+, optional)
//
// Determinism: encoding is a pure function of database content — facts
// are written bucketed by predicate id (insertion order within a
// bucket), so encode(decode(encode(db))) == encode(db) byte for byte.
//
// Robustness: decoding never crashes on corrupt input. Every read is
// bounds-checked, every section checksummed, and every id range-checked
// before it reaches a Database mutator; failures come back as Status.

#ifndef IODB_STORAGE_SNAPSHOT_H_
#define IODB_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/database.h"
#include "util/status.h"

namespace iodb::storage {

/// Current snapshot format version. Version 2 adds the optional
/// statistics section (id 7); readers accept versions 1 and 2 — a v1
/// file simply has no persisted statistics and rebuilds them lazily.
/// See docs/SNAPSHOT_FORMAT.md for the versioning rules.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// One section-table entry, as stored (offsets are absolute file
/// offsets).
struct SectionInfo {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum = 0;

  /// Human name of a v1 section id ("vocabulary", "constants", ...).
  static const char* Name(uint32_t id);
};

/// Parsed header + summary counts (the `iodb_pack inspect` payload).
struct SnapshotInfo {
  uint32_t format_version = 0;
  uint64_t vocab_uid = 0;
  uint64_t db_uid = 0;
  uint64_t revision = 0;
  uint32_t num_predicates = 0;
  uint32_t num_object_constants = 0;
  uint32_t num_order_constants = 0;
  uint64_t num_proper_atoms = 0;
  uint64_t num_order_atoms = 0;
  uint64_t num_inequalities = 0;
  uint64_t file_bytes = 0;
  /// Statistics section (format v2+): present, fresh (the persisted
  /// stats describe exactly this snapshot's identity — stale means the
  /// file was hand-assembled or cross-wired), and the rendered stats.
  bool has_statistics = false;
  bool statistics_fresh = false;
  std::string statistics;
  std::vector<SectionInfo> sections;

  /// Multi-line "name value" rendering.
  std::string ToString() const;
};

/// Encodes `db` (with its vocabulary) into snapshot bytes.
std::string EncodeSnapshot(const Database& db);

/// Decodes a snapshot into a Database over a FRESH vocabulary restored
/// from the file (predicate ids and the vocabulary uid are exactly the
/// persisted ones). This is the standalone-open used by iodb_eval
/// --db-snapshot.
Result<Database> DecodeSnapshot(std::string_view bytes);

/// Decodes a snapshot into a Database over the caller's `vocab`
/// (registering absent predicates and remapping persisted predicate ids
/// by name). The database (uid, revision) identity is restored; the
/// vocabulary keeps its own identity. This is the registry-open: every
/// database of a directory shares the service vocabulary.
Result<Database> DecodeSnapshotInto(std::string_view bytes,
                                    VocabularyPtr vocab);

/// Reads the header, section table and summary counts without building a
/// Database. Verifies every checksum.
Result<SnapshotInfo> InspectSnapshot(std::string_view bytes);

/// File convenience wrappers. Saves are atomic (write to a sibling temp
/// file, then rename), so a crash mid-save never leaves a torn snapshot
/// under the target name.
Status SaveSnapshot(const Database& db, const std::string& path);
Result<Database> OpenSnapshot(const std::string& path);
Result<Database> OpenSnapshotInto(const std::string& path,
                                  VocabularyPtr vocab);
Result<SnapshotInfo> InspectSnapshotFile(const std::string& path);

/// Vocabulary-only file (the registry's shared-vocabulary sidecar:
/// restoring it first pins the vocabulary uid and the predicate id
/// order, so plan-cache keys survive a restart).
std::string EncodeVocabulary(const Vocabulary& vocab);
Status SaveVocabulary(const Vocabulary& vocab, const std::string& path);
/// Registers the persisted predicates into `vocab` (in persisted id
/// order) and restores the persisted uid. Fails if an existing predicate
/// clashes in signature or position.
Status RestoreVocabularyInto(const std::string& path, Vocabulary* vocab);

/// Shared small-file helpers (also used by the WAL).
Result<std::string> ReadFileBytes(const std::string& path);
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace iodb::storage

#endif  // IODB_STORAGE_SNAPSHOT_H_
