#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>

#include "core/parser.h"
#include "storage/codec.h"
#include "storage/io.h"
#include "storage/snapshot.h"
#include "util/failpoint.h"

namespace iodb::storage {

namespace {

constexpr char kWalMagic[8] = {'I', 'O', 'D', 'B', 'W', 'A', 'L', '1'};
constexpr uint32_t kWalFormatVersion = 1;
constexpr uint32_t kEndianTag = 0x1A2B3C4D;
// magic + version + endian + db_uid + base_revision + header checksum.
constexpr size_t kWalHeaderBytes = 8 + 4 + 4 + 8 + 8 + 8;

Status WalError(const std::string& message) {
  return Status::InvalidArgument("wal: " + message);
}

std::string EncodeRecordPayload(const WalRecord& record) {
  std::string payload;
  switch (record.kind) {
    case WalRecord::Kind::kBegin:
    case WalRecord::Kind::kCommit:
      break;
    case WalRecord::Kind::kFact:
      AppendString(&payload, record.pred);
      AppendU32(&payload, static_cast<uint32_t>(record.args.size()));
      for (const std::string& arg : record.args) {
        AppendString(&payload, arg);
      }
      break;
    case WalRecord::Kind::kOrder:
      AppendString(&payload, record.lhs);
      AppendU8(&payload, static_cast<uint8_t>(record.rel));
      AppendString(&payload, record.rhs);
      break;
    case WalRecord::Kind::kNotEqual:
      AppendString(&payload, record.lhs);
      AppendString(&payload, record.rhs);
      break;
  }
  return payload;
}

// Record wire form: u8 type | u32 payload length | payload | u64
// FNV-1a-64 over (type byte + payload).
void AppendRecord(std::string* out, const WalRecord& record) {
  const std::string payload = EncodeRecordPayload(record);
  AppendU8(out, static_cast<uint8_t>(record.kind));
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  *out += payload;
  std::string checked;
  checked.push_back(static_cast<char>(record.kind));
  checked += payload;
  AppendU64(out, Fnv1a64(checked));
}

Status DecodeRecordPayload(WalRecord::Kind kind, std::string_view payload,
                           WalRecord* record) {
  ByteReader reader(payload);
  Status status;
  record->kind = kind;
  switch (kind) {
    case WalRecord::Kind::kBegin:
    case WalRecord::Kind::kCommit:
      break;
    case WalRecord::Kind::kFact: {
      uint32_t argc = 0;
      if (!(status = reader.ReadString(&record->pred)).ok() ||
          !(status = reader.ReadU32(&argc)).ok()) {
        return WalError(status.message());
      }
      if (argc > reader.remaining()) {
        return WalError("fact record argument count extends past record");
      }
      record->args.resize(argc);
      for (uint32_t i = 0; i < argc; ++i) {
        if (!(status = reader.ReadString(&record->args[i])).ok()) {
          return WalError(status.message());
        }
      }
      break;
    }
    case WalRecord::Kind::kOrder: {
      uint8_t rel = 0;
      if (!(status = reader.ReadString(&record->lhs)).ok() ||
          !(status = reader.ReadU8(&rel)).ok() ||
          !(status = reader.ReadString(&record->rhs)).ok()) {
        return WalError(status.message());
      }
      if (rel > 1) return WalError("bad order relation byte");
      record->rel = static_cast<OrderRel>(rel);
      break;
    }
    case WalRecord::Kind::kNotEqual:
      if (!(status = reader.ReadString(&record->lhs)).ok() ||
          !(status = reader.ReadString(&record->rhs)).ok()) {
        return WalError(status.message());
      }
      break;
  }
  if (!reader.AtEnd()) return WalError("trailing bytes in record payload");
  return Status::Ok();
}

// Decodes and validates a WAL header from `reader` (positioned at the
// start of the file). Leaves the reader just past the header.
Status DecodeWalHeader(ByteReader& reader, WalHeaderInfo* info) {
  std::string_view magic;
  Status status = reader.ReadBytes(8, &magic);
  if (!status.ok()) return WalError("missing header: " + status.message());
  if (magic != std::string_view(kWalMagic, 8)) {
    return WalError("bad magic (not a WAL file)");
  }
  uint32_t version = 0, endian = 0;
  uint64_t header_checksum = 0;
  if (!(status = reader.ReadU32(&version)).ok() ||
      !(status = reader.ReadU32(&endian)).ok() ||
      !(status = reader.ReadU64(&info->db_uid)).ok() ||
      !(status = reader.ReadU64(&info->base_revision)).ok() ||
      !(status = reader.ReadU64(&header_checksum)).ok()) {
    return WalError("truncated header: " + status.message());
  }
  {
    std::string body;
    AppendU32(&body, version);
    AppendU32(&body, endian);
    AppendU64(&body, info->db_uid);
    AppendU64(&body, info->base_revision);
    if (Fnv1a64(body) != header_checksum) {
      return WalError("header checksum mismatch");
    }
  }
  if (version != kWalFormatVersion) {
    return WalError("unsupported WAL version " + std::to_string(version));
  }
  if (endian != kEndianTag) return WalError("endian tag mismatch");
  return Status::Ok();
}

// Pre-checks the sort of an order-constant name so a clashing record
// comes back as a Status instead of aborting inside GetOrAddConstant.
Status RequireOrderSort(const Database& db, const std::string& name) {
  if (db.FindConstant(name, Sort::kObject).has_value()) {
    return WalError("constant '" + name +
                    "' is an object constant but used in an order atom");
  }
  return Status::Ok();
}

}  // namespace

Result<std::vector<WalRecord>> ParseMutationText(const std::string& text,
                                                 VocabularyPtr vocab) {
  // The statement grammar IS the database grammar, so the front half is
  // the parser; the parsed temp database is then re-read as records, and
  // the records are the single source of truth for application + replay.
  Result<Database> parsed = ParseDatabase(text, std::move(vocab));
  if (!parsed.ok()) return parsed.status();
  const Database& db = parsed.value();
  std::vector<WalRecord> records;
  records.reserve(db.proper_atoms().size() + db.order_atoms().size() +
                  db.inequalities().size());
  for (const ProperAtom& atom : db.proper_atoms()) {
    WalRecord record;
    record.kind = WalRecord::Kind::kFact;
    record.pred = db.vocab()->predicate(atom.pred).name;
    record.args.reserve(atom.args.size());
    for (const Term& term : atom.args) {
      record.args.push_back(term.sort == Sort::kObject
                                ? db.object_name(term.id)
                                : db.order_name(term.id));
    }
    records.push_back(std::move(record));
  }
  for (const OrderAtom& atom : db.order_atoms()) {
    WalRecord record;
    record.kind = WalRecord::Kind::kOrder;
    record.lhs = db.order_name(atom.lhs);
    record.rel = atom.rel;
    record.rhs = db.order_name(atom.rhs);
    records.push_back(std::move(record));
  }
  for (const InequalityAtom& atom : db.inequalities()) {
    WalRecord record;
    record.kind = WalRecord::Kind::kNotEqual;
    record.lhs = db.order_name(atom.lhs);
    record.rhs = db.order_name(atom.rhs);
    records.push_back(std::move(record));
  }
  return records;
}

Status ApplyWalRecords(const std::vector<WalRecord>& records, Database* db) {
  for (const WalRecord& record : records) {
    switch (record.kind) {
      case WalRecord::Kind::kFact: {
        Status status = db->AddFact(record.pred, record.args);
        if (!status.ok()) return status;
        break;
      }
      case WalRecord::Kind::kOrder: {
        Status status = RequireOrderSort(*db, record.lhs);
        if (!status.ok()) return status;
        status = RequireOrderSort(*db, record.rhs);
        if (!status.ok()) return status;
        db->AddOrder(record.lhs, record.rel, record.rhs);
        break;
      }
      case WalRecord::Kind::kNotEqual: {
        Status status = RequireOrderSort(*db, record.lhs);
        if (!status.ok()) return status;
        status = RequireOrderSort(*db, record.rhs);
        if (!status.ok()) return status;
        db->AddNotEqual(record.lhs, record.rhs);
        break;
      }
      case WalRecord::Kind::kBegin:
      case WalRecord::Kind::kCommit:
        return WalError("group delimiter in a mutation record list");
    }
  }
  return Status::Ok();
}

Status CreateWal(const std::string& path, uint64_t db_uid,
                 uint64_t base_revision) {
  std::string body;
  AppendU32(&body, kWalFormatVersion);
  AppendU32(&body, kEndianTag);
  AppendU64(&body, db_uid);
  AppendU64(&body, base_revision);
  std::string out;
  out.append(kWalMagic, sizeof(kWalMagic));
  out += body;
  AppendU64(&out, Fnv1a64(body));
  return WriteFileAtomic(path, out);
}

Status AppendWalGroup(const std::string& path,
                      const std::vector<WalRecord>& records, bool sync) {
  std::string group;
  WalRecord delimiter;
  delimiter.kind = WalRecord::Kind::kBegin;
  AppendRecord(&group, delimiter);
  for (const WalRecord& record : records) {
    if (record.kind == WalRecord::Kind::kBegin ||
        record.kind == WalRecord::Kind::kCommit) {
      return WalError("group delimiter in a mutation record list");
    }
    AppendRecord(&group, record);
  }
  delimiter.kind = WalRecord::Kind::kCommit;
  AppendRecord(&group, delimiter);

  Status status = failpoint::CheckAndMaybeFail("wal-append-before-write");
  if (!status.ok()) return status;

  Result<int> opened =
      OpenFd(path, O_WRONLY | O_APPEND | O_CLOEXEC, 0, "WAL for append");
  if (!opened.ok()) return opened.status();
  const int fd = opened.value();
  // Torn-write seam: stage a strict prefix of the group, then act — the
  // on-disk shape a crash mid-write() leaves (replay must discard it).
  const failpoint::Action torn = failpoint::Check("wal-append-torn");
  if (torn != failpoint::Action::kOff) {
    (void)WriteFull(fd, std::string_view(group).substr(0, group.size() / 2),
                    "torn WAL prefix");
    (void)FsyncFd(fd, "torn WAL prefix");
    if (torn == failpoint::Action::kCrash) failpoint::CrashNow();
    ::close(fd);
    return WalError("failpoint 'wal-append-torn' injected partial append");
  }
  status = WriteFull(fd, group, "WAL '" + path + "'");
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  // A crash here leaves the full group in the page cache but maybe not
  // on the platter: committed for process death, torn for power loss.
  status = failpoint::CheckAndMaybeFail("wal-append-before-sync");
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  if (sync) {
    status = FsyncFd(fd, "WAL '" + path + "'");
    if (!status.ok()) {
      ::close(fd);
      return status;
    }
  }
  status = failpoint::CheckAndMaybeFail("wal-append-after-sync");
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  if (::close(fd) != 0) {
    return WalError("close of '" + path +
                    "' failed: " + std::strerror(errno));
  }
  return Status::Ok();
}

Status SyncWal(const std::string& path) {
  Result<int> opened =
      OpenFd(path, O_WRONLY | O_CLOEXEC, 0, "WAL for sync");
  if (!opened.ok()) return opened.status();
  const int fd = opened.value();
  Status status = FsyncFd(fd, "WAL '" + path + "'");
  ::close(fd);
  return status;
}

std::optional<WalSyncPolicy> ParseWalSyncPolicy(const std::string& name) {
  if (name == "none") return WalSyncPolicy::kNone;
  if (name == "commit") return WalSyncPolicy::kCommit;
  if (name == "interval") return WalSyncPolicy::kInterval;
  return std::nullopt;
}

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kCommit:
      return "commit";
    case WalSyncPolicy::kInterval:
      return "interval";
  }
  return "unknown";
}

Result<WalHeaderInfo> InspectWalHeader(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return WalError("cannot open '" + path + "'");
  std::string header(kWalHeaderBytes, '\0');
  file.read(header.data(), static_cast<std::streamsize>(header.size()));
  header.resize(static_cast<size_t>(file.gcount()));
  ByteReader reader(header);
  WalHeaderInfo info;
  Status status = DecodeWalHeader(reader, &info);
  if (!status.ok()) return status;
  return info;
}

Result<WalReplayStats> ReplayWal(const std::string& path,
                                 uint64_t expect_db_uid,
                                 uint64_t expect_base_revision,
                                 Database* db) {
  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  ByteReader reader(bytes.value());

  // Header. A file too short to hold it counts as torn only if it is a
  // strict prefix of a valid header; simplest correct rule: a short or
  // mismatched header is a hard error (the registry always writes the
  // header atomically via CreateWal, so a torn header never occurs in
  // the crash model — only record appends tear).
  WalHeaderInfo header;
  Status status = DecodeWalHeader(reader, &header);
  if (!status.ok()) return status;
  if (header.db_uid != expect_db_uid ||
      header.base_revision != expect_base_revision) {
    return WalError(
        "WAL belongs to snapshot identity (uid=" +
        std::to_string(header.db_uid) + ", revision=" +
        std::to_string(header.base_revision) + "), expected (uid=" +
        std::to_string(expect_db_uid) + ", revision=" +
        std::to_string(expect_base_revision) + ")");
  }

  WalReplayStats stats;
  stats.clean_prefix_bytes = reader.position();  // end of the header
  bool in_group = false;
  std::vector<WalRecord> group;
  while (!reader.AtEnd()) {
    // A record that runs past EOF at any field is a torn tail: stop and
    // discard the open group. Anything structurally complete but wrong
    // (bad checksum, unknown type, delimiter misuse) is a hard error.
    uint8_t type = 0;
    uint32_t length = 0;
    if (!reader.ReadU8(&type).ok() || !reader.ReadU32(&length).ok()) {
      stats.truncated_tail = true;
      break;
    }
    std::string_view payload;
    uint64_t checksum = 0;
    if (!reader.ReadBytes(length, &payload).ok() ||
        !reader.ReadU64(&checksum).ok()) {
      stats.truncated_tail = true;
      break;
    }
    std::string checked;
    checked.push_back(static_cast<char>(type));
    checked.append(payload.data(), payload.size());
    if (Fnv1a64(checked) != checksum) {
      return WalError("record checksum mismatch at offset " +
                      std::to_string(reader.position()));
    }
    if (type < 1 || type > 5) {
      return WalError("unknown record type " + std::to_string(type));
    }
    const WalRecord::Kind kind = static_cast<WalRecord::Kind>(type);
    WalRecord record;
    status = DecodeRecordPayload(kind, payload, &record);
    if (!status.ok()) return status;

    if (kind == WalRecord::Kind::kBegin) {
      if (in_group) return WalError("BEGIN inside an open group");
      in_group = true;
      group.clear();
    } else if (kind == WalRecord::Kind::kCommit) {
      if (!in_group) return WalError("COMMIT without BEGIN");
      status = ApplyWalRecords(group, db);
      if (!status.ok()) return status;
      stats.records_applied += static_cast<long long>(group.size());
      ++stats.groups_applied;
      stats.clean_prefix_bytes = reader.position();
      in_group = false;
    } else {
      if (!in_group) return WalError("mutation record outside a group");
      group.push_back(std::move(record));
    }
  }
  if (in_group) stats.truncated_tail = true;  // uncommitted group discarded
  return stats;
}

}  // namespace iodb::storage
