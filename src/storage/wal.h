// Write-ahead log of database mutations.
//
// A WAL file sits next to a snapshot and records the mutations applied
// to the database SINCE that snapshot, as name-based records (predicate
// and constant names, not ids), grouped into atomic BEGIN ... COMMIT
// units. Opening a database is: decode the snapshot, then replay the
// WAL's committed groups through the exact same application path the
// live mutation used — so the restored database has the same facts, the
// same interned ids, and (because every mutator bump is replayed) the
// same revision counter the live one had.
//
// Crash-recovery contract (tested byte-by-byte in
// tests/storage_wal_test.cc): for ANY prefix of a WAL file, replay
// either
//   * applies a clean prefix of the committed groups (a torn tail — an
//     incomplete record or an uncommitted group — is discarded and
//     reported via WalReplayStats::truncated_tail), or
//   * fails with a checksum/format Status.
// It never crashes and never applies a partial group.
//
// Durability: AppendWalGroup writes the group in one write() and, when
// `sync` is set, fsync()s before returning — a committed group then
// survives power loss, not just process death. Callers that batch
// durability (WalSyncPolicy::kNone / kInterval in the registry) pass
// sync=false and call SyncWal at their flush points. The crash-recovery
// contract above covers both shapes: an unsynced torn tail is discarded
// on replay exactly like a torn synced append.

#ifndef IODB_STORAGE_WAL_H_
#define IODB_STORAGE_WAL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace iodb::storage {

/// One logged mutation, by name (ids are process-local; names are the
/// durable identity). Kind values are the on-disk record type bytes.
struct WalRecord {
  enum class Kind : uint8_t {
    kBegin = 1,     // group delimiter (internal to the file format)
    kFact = 2,      // pred(args...): Database::AddFact
    kOrder = 3,     // lhs rel rhs:   Database::AddOrder
    kNotEqual = 4,  // lhs != rhs:    Database::AddNotEqual
    kCommit = 5,    // group delimiter (internal to the file format)
  };

  Kind kind = Kind::kFact;
  // kFact:
  std::string pred;
  std::vector<std::string> args;
  // kOrder / kNotEqual:
  std::string lhs;
  std::string rhs;
  OrderRel rel = OrderRel::kLt;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Parses database-format statement text (facts, order chains,
/// inequalities, predicate declarations) into mutation records,
/// registering any new predicates into `vocab`. This is the shared
/// front half of every WAL-logged mutation: the serving APPEND verb and
/// DurableRegistry::AppendText both parse through here, and replay
/// applies the identical records.
Result<std::vector<WalRecord>> ParseMutationText(const std::string& text,
                                                 VocabularyPtr vocab);

/// Applies mutation records to `db` in order. All failures (unknown
/// sort clashes, arity mismatches) are reported as Status — never a
/// crash — and may leave a prefix of `records` applied; WAL-logged
/// callers apply to the durable state first, so a failed apply is a
/// corrupt-input error, not a torn transaction.
Status ApplyWalRecords(const std::vector<WalRecord>& records, Database* db);

/// Creates (or truncates) the WAL at `path` with a header binding it to
/// the snapshot identity it applies on top of.
Status CreateWal(const std::string& path, uint64_t db_uid,
                 uint64_t base_revision);

/// When appended WAL groups reach the disk platter (the --wal-sync
/// serving flag; enforced by DurableRegistry).
enum class WalSyncPolicy {
  kNone,     // never fsync (fastest; durability = filesystem's promise)
  kCommit,   // fsync every committed group (the default)
  kInterval  // fsync at most every interval_ms, and on Flush()/shutdown
};

struct WalSyncOptions {
  WalSyncPolicy policy = WalSyncPolicy::kCommit;
  /// kInterval: maximum milliseconds an acknowledged group may sit
  /// un-fsynced.
  long long interval_ms = 50;
};

/// Parses "none" / "commit" / "interval"; nullopt otherwise.
std::optional<WalSyncPolicy> ParseWalSyncPolicy(const std::string& name);
const char* WalSyncPolicyName(WalSyncPolicy policy);

/// Appends one committed group (BEGIN, records..., COMMIT) to an
/// existing WAL. The group bytes are written in one write(); with
/// `sync` the file is fsync()ed before returning (power-loss durable),
/// without it the bytes are only in the page cache until SyncWal.
Status AppendWalGroup(const std::string& path,
                      const std::vector<WalRecord>& records,
                      bool sync = true);

/// fsync()s the WAL file (the kNone/kInterval flush point).
Status SyncWal(const std::string& path);

/// The snapshot identity a WAL is bound to (its header fields).
struct WalHeaderInfo {
  uint64_t db_uid = 0;
  uint64_t base_revision = 0;
};

/// Reads and validates just the header of the WAL at `path`. Used by the
/// registry to detect a stale WAL generation (crash between snapshot
/// write and WAL reset) before committing to a full replay.
Result<WalHeaderInfo> InspectWalHeader(const std::string& path);

/// Replay summary.
struct WalReplayStats {
  long long groups_applied = 0;
  long long records_applied = 0;
  /// True if the file ended inside a record or an uncommitted group
  /// (the torn tail was discarded — the normal crash shape).
  bool truncated_tail = false;
  /// File offset just past the last committed group (the header alone
  /// when none committed). When `truncated_tail` is set the caller must
  /// truncate the file to this length before appending again — a group
  /// appended after torn bytes would be unreachable garbage that turns
  /// the next open into a checksum error.
  uint64_t clean_prefix_bytes = 0;
};

/// Replays the committed groups of the WAL at `path` onto `db`. The
/// header must match the identity of the snapshot `db` was restored
/// from (`expect_db_uid`, `expect_base_revision`); a mismatch means the
/// WAL belongs to a different snapshot generation and is a hard error.
Result<WalReplayStats> ReplayWal(const std::string& path,
                                 uint64_t expect_db_uid,
                                 uint64_t expect_base_revision, Database* db);

}  // namespace iodb::storage

#endif  // IODB_STORAGE_WAL_H_
