// Write-ahead log of database mutations.
//
// A WAL file sits next to a snapshot and records the mutations applied
// to the database SINCE that snapshot, as name-based records (predicate
// and constant names, not ids), grouped into atomic BEGIN ... COMMIT
// units. Opening a database is: decode the snapshot, then replay the
// WAL's committed groups through the exact same application path the
// live mutation used — so the restored database has the same facts, the
// same interned ids, and (because every mutator bump is replayed) the
// same revision counter the live one had.
//
// Crash-recovery contract (tested byte-by-byte in
// tests/storage_wal_test.cc): for ANY prefix of a WAL file, replay
// either
//   * applies a clean prefix of the committed groups (a torn tail — an
//     incomplete record or an uncommitted group — is discarded and
//     reported via WalReplayStats::truncated_tail), or
//   * fails with a checksum/format Status.
// It never crashes and never applies a partial group.
//
// Durability note: writes are flushed to the OS on every append; the
// format is fsync-friendly (append-only, self-delimiting records) but
// this layer does not fsync — a serving deployment that needs
// power-loss durability should run on a journaled filesystem or add an
// fsync hook at the AppendWalGroup seam.

#ifndef IODB_STORAGE_WAL_H_
#define IODB_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "graph/digraph.h"
#include "util/status.h"

namespace iodb::storage {

/// One logged mutation, by name (ids are process-local; names are the
/// durable identity). Kind values are the on-disk record type bytes.
struct WalRecord {
  enum class Kind : uint8_t {
    kBegin = 1,     // group delimiter (internal to the file format)
    kFact = 2,      // pred(args...): Database::AddFact
    kOrder = 3,     // lhs rel rhs:   Database::AddOrder
    kNotEqual = 4,  // lhs != rhs:    Database::AddNotEqual
    kCommit = 5,    // group delimiter (internal to the file format)
  };

  Kind kind = Kind::kFact;
  // kFact:
  std::string pred;
  std::vector<std::string> args;
  // kOrder / kNotEqual:
  std::string lhs;
  std::string rhs;
  OrderRel rel = OrderRel::kLt;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Parses database-format statement text (facts, order chains,
/// inequalities, predicate declarations) into mutation records,
/// registering any new predicates into `vocab`. This is the shared
/// front half of every WAL-logged mutation: the serving APPEND verb and
/// DurableRegistry::AppendText both parse through here, and replay
/// applies the identical records.
Result<std::vector<WalRecord>> ParseMutationText(const std::string& text,
                                                 VocabularyPtr vocab);

/// Applies mutation records to `db` in order. All failures (unknown
/// sort clashes, arity mismatches) are reported as Status — never a
/// crash — and may leave a prefix of `records` applied; WAL-logged
/// callers apply to the durable state first, so a failed apply is a
/// corrupt-input error, not a torn transaction.
Status ApplyWalRecords(const std::vector<WalRecord>& records, Database* db);

/// Creates (or truncates) the WAL at `path` with a header binding it to
/// the snapshot identity it applies on top of.
Status CreateWal(const std::string& path, uint64_t db_uid,
                 uint64_t base_revision);

/// Appends one committed group (BEGIN, records..., COMMIT) to an
/// existing WAL. The group bytes are written in one buffered write and
/// flushed before returning.
Status AppendWalGroup(const std::string& path,
                      const std::vector<WalRecord>& records);

/// Replay summary.
struct WalReplayStats {
  long long groups_applied = 0;
  long long records_applied = 0;
  /// True if the file ended inside a record or an uncommitted group
  /// (the torn tail was discarded — the normal crash shape).
  bool truncated_tail = false;
  /// File offset just past the last committed group (the header alone
  /// when none committed). When `truncated_tail` is set the caller must
  /// truncate the file to this length before appending again — a group
  /// appended after torn bytes would be unreachable garbage that turns
  /// the next open into a checksum error.
  uint64_t clean_prefix_bytes = 0;
};

/// Replays the committed groups of the WAL at `path` onto `db`. The
/// header must match the identity of the snapshot `db` was restored
/// from (`expect_db_uid`, `expect_base_revision`); a mismatch means the
/// WAL belongs to a different snapshot generation and is a hard error.
Result<WalReplayStats> ReplayWal(const std::string& path,
                                 uint64_t expect_db_uid,
                                 uint64_t expect_base_revision, Database* db);

}  // namespace iodb::storage

#endif  // IODB_STORAGE_WAL_H_
