#include "util/budget.h"

namespace iodb {

void ExecBudget::SetDeadlineAfterMs(long long ms) {
  if (ms < 0) {
    has_deadline_ = false;
  } else {
    SetDeadline(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(ms));
    return;
  }
  limited_ = has_deadline_ || step_limit_ >= 0 || cancel_ != nullptr;
}

void ExecBudget::SetDeadline(std::chrono::steady_clock::time_point deadline) {
  has_deadline_ = true;
  deadline_ = deadline;
  limited_ = true;
}

void ExecBudget::SetStepLimit(long long steps) {
  step_limit_ = steps < 0 ? -1 : steps;
  limited_ = has_deadline_ || step_limit_ >= 0 || cancel_ != nullptr;
}

void ExecBudget::SetCancelToken(const CancelToken* token) {
  cancel_ = token;
  limited_ = has_deadline_ || step_limit_ >= 0 || cancel_ != nullptr;
}

bool ExecBudget::ChargeSlow() {
  if (exhausted()) return false;
  const long long n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (step_limit_ >= 0 && n > step_limit_) {
    Trip(BudgetExhaustion::kSteps);
    return false;
  }
  if ((n & (kCheckStride - 1)) == 0) return ProbeDeadlineAndToken();
  return true;
}

bool ExecBudget::Poll() {
  if (!limited_) return true;
  if (exhausted()) return false;
  if (step_limit_ >= 0 &&
      steps_.load(std::memory_order_relaxed) > step_limit_) {
    Trip(BudgetExhaustion::kSteps);
    return false;
  }
  return ProbeDeadlineAndToken();
}

bool ExecBudget::ProbeDeadlineAndToken() {
  if (cancel_ != nullptr && cancel_->cancelled()) {
    Trip(BudgetExhaustion::kCancelled);
    return false;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    Trip(BudgetExhaustion::kDeadline);
    return false;
  }
  return true;
}

void ExecBudget::Trip(BudgetExhaustion kind) {
  int expected = static_cast<int>(BudgetExhaustion::kNone);
  exhaustion_.compare_exchange_strong(expected, static_cast<int>(kind),
                                      std::memory_order_relaxed);
}

void ExecBudget::MergePartial(const Partial& partial) {
  std::lock_guard<std::mutex> lock(partial_mu_);
  partial_.states_visited += partial.states_visited;
  partial_.models_enumerated += partial.models_enumerated;
  partial_.groups_pushed += partial.groups_pushed;
  partial_.groups_popped += partial.groups_popped;
  partial_.reach_probes += partial.reach_probes;
  partial_.assignments_tried += partial.assignments_tried;
}

ExecBudget::Partial ExecBudget::partial() const {
  std::lock_guard<std::mutex> lock(partial_mu_);
  return partial_;
}

Status ExecBudget::ToStatus(const std::string& what) const {
  const Partial p = partial();
  const std::string detail =
      what + " after " + std::to_string(steps_charged()) +
      " step(s); partial: states=" + std::to_string(p.states_visited) +
      " models=" + std::to_string(p.models_enumerated) +
      " pushes=" + std::to_string(p.groups_pushed) +
      " probes=" + std::to_string(p.reach_probes);
  switch (exhaustion()) {
    case BudgetExhaustion::kCancelled:
      return Status::Cancelled("evaluation cancelled: " + detail);
    case BudgetExhaustion::kSteps:
      return Status::DeadlineExceeded("step budget exhausted: " + detail);
    case BudgetExhaustion::kDeadline:
      return Status::DeadlineExceeded("deadline exceeded: " + detail);
    case BudgetExhaustion::kNone:
      break;
  }
  IODB_CHECK(false);  // ToStatus requires an exhausted budget
  return Status::DeadlineExceeded(detail);
}

}  // namespace iodb
