// Cooperative execution governance: deadlines, step budgets, cancellation.
//
// Enumeration over indefinite order databases is coNP-hard (Theorem 3.2),
// so a serving deployment must be able to bound, cancel, and degrade any
// single evaluation. ExecBudget is the shared governance object threaded
// through every engine: it carries an optional wall-clock deadline, an
// optional step budget, and an optional external CancelToken. Engines call
// Charge() once per unit of search work (an enumeration push, a search
// state, a path); when the budget trips, every holder sees a sticky
// exhausted flag on its next charge and unwinds cooperatively.
//
// Cost model: an unlimited budget (no deadline, no step limit, no token)
// short-circuits Charge() to a single predicate test, and engines take a
// null ExecBudget* on the default path, so governance is free when unused.
// A limited budget pays one relaxed atomic increment per step; the
// expensive probes (steady_clock::now, the cancel flag) run only every
// kCheckStride steps, which bounds deadline overshoot to ~kCheckStride
// units of search work.
//
// Determinism contract (pinned by tests/budget_test.cc and the
// conformance fuzzer): a governed run that does NOT exhaust its budget is
// bit-identical to an ungoverned run — verdict, countermodel, and every
// work counter — because a budget is observationally passive until it
// trips. This holds for the sharded-parallel engines too: the budget is
// thread-safe and shared, and a non-tripped budget never changes any
// worker's control flow.

#ifndef IODB_UTIL_BUDGET_H_
#define IODB_UTIL_BUDGET_H_

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>

#include "util/status.h"

namespace iodb {

/// External cancellation flag. The canceller (another thread, a signal
/// handler via a relay, a batch coordinator) calls Cancel(); every
/// ExecBudget holding the token observes it at its next stride check.
class CancelToken {
 public:
  void Cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a budget tripped. kNone means the budget is still live.
enum class BudgetExhaustion {
  kNone = 0,
  kDeadline,  // wall-clock deadline passed
  kSteps,     // step budget spent
  kCancelled  // the CancelToken fired
};

/// Shared, thread-safe execution budget. Configure before handing it to
/// an evaluation (the setters are not synchronized against Charge());
/// share one instance across all workers of a parallel evaluation.
class ExecBudget {
 public:
  /// Steps between wall-clock / cancel-token probes. Work units are an
  /// enumeration push or a search state — each costs far under 40 µs —
  /// so 256 strides keeps deadline overshoot well under the 10 ms bound.
  static constexpr long long kCheckStride = 256;

  ExecBudget() = default;
  ExecBudget(const ExecBudget&) = delete;
  ExecBudget& operator=(const ExecBudget&) = delete;

  /// Arms a wall-clock deadline `ms` milliseconds from now (< 0 clears).
  void SetDeadlineAfterMs(long long ms);
  void SetDeadline(std::chrono::steady_clock::time_point deadline);
  /// Arms a step budget: Charge() fails after `steps` units (< 0 clears).
  void SetStepLimit(long long steps);
  /// Attaches an external cancellation token (nullptr detaches).
  void SetCancelToken(const CancelToken* token);

  /// True if any limit is armed — the engines' one-branch fast path.
  bool limited() const { return limited_; }

  /// Counts one unit of search work. Returns true to continue, false once
  /// the budget is exhausted (sticky: every later call returns false).
  bool Charge() {
    if (!limited_) return true;
    return ChargeSlow();
  }

  /// Immediate full check (deadline + cancel + steps) without charging a
  /// step — used at evaluation entry so a request that is already over
  /// deadline fails fast instead of starting work. Returns true if live.
  bool Poll();

  /// True once any limit has tripped. Cheap (one relaxed load).
  bool exhausted() const {
    return exhaustion_.load(std::memory_order_relaxed) !=
           static_cast<int>(BudgetExhaustion::kNone);
  }
  BudgetExhaustion exhaustion() const {
    return static_cast<BudgetExhaustion>(
        exhaustion_.load(std::memory_order_relaxed));
  }
  /// Steps charged so far (exact across threads).
  long long steps_charged() const {
    return steps_.load(std::memory_order_relaxed);
  }

  /// Partial work counters salvaged from an exhausted evaluation — the
  /// "partial ModelCheckStats" side channel. The evaluation layer merges
  /// the counters it accumulated before the trip; callers (service,
  /// tools, tests) read them off the budget after a typed failure. Plain
  /// long longs so util/ stays below core/ in the layer DAG.
  struct Partial {
    long long states_visited = 0;
    long long models_enumerated = 0;
    long long groups_pushed = 0;
    long long groups_popped = 0;
    long long reach_probes = 0;
    long long assignments_tried = 0;
  };
  void MergePartial(const Partial& partial);
  Partial partial() const;

  /// Renders the exhausted budget as a typed Status: kCancelled for a
  /// fired token, kDeadlineExceeded for a passed deadline or a spent step
  /// budget (the message tells them apart). `what` names the evaluation
  /// ("engine brute-force", "batch group 2"). Must be exhausted.
  Status ToStatus(const std::string& what) const;

 private:
  bool ChargeSlow();
  /// The stride probe: deadline + token. Trips and returns false on hit.
  bool ProbeDeadlineAndToken();
  void Trip(BudgetExhaustion kind);

  bool limited_ = false;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  long long step_limit_ = -1;
  const CancelToken* cancel_ = nullptr;

  std::atomic<long long> steps_{0};
  std::atomic<int> exhaustion_{static_cast<int>(BudgetExhaustion::kNone)};

  mutable std::mutex partial_mu_;
  Partial partial_{};
};

}  // namespace iodb

#endif  // IODB_UTIL_BUDGET_H_
