// Checked assertions for internal invariants.
//
// IODB_CHECK is active in all build modes: violating an invariant in a
// query-evaluation engine silently corrupts answers, so we prefer an abort
// with a message. The cost is negligible relative to the graph algorithms.

#ifndef IODB_UTIL_CHECK_H_
#define IODB_UTIL_CHECK_H_

// iodb requires C++20. Fail here with one readable message instead of the
// cryptic errors a pre-C++20 -std= flag produces from defaulted operator==
// (graph/digraph.h, logic/cnf.h) and std::popcount (core/types.cc).
// MSVC keeps __cplusplus at 199711L unless /Zc:__cplusplus; _MSVC_LANG
// always reports the real language version.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "iodb requires C++20: compile with /std:c++20 or newer"
#endif
#elif __cplusplus < 202002L
#error "iodb requires C++20: compile with -std=c++20 or newer"
#endif

#include <cstdio>
#include <cstdlib>

namespace iodb {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "IODB_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace iodb

#define IODB_CHECK(expr)                                       \
  do {                                                         \
    if (!(expr)) {                                             \
      ::iodb::internal::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (false)

#define IODB_CHECK_EQ(a, b) IODB_CHECK((a) == (b))
#define IODB_CHECK_NE(a, b) IODB_CHECK((a) != (b))
#define IODB_CHECK_LT(a, b) IODB_CHECK((a) < (b))
#define IODB_CHECK_LE(a, b) IODB_CHECK((a) <= (b))
#define IODB_CHECK_GT(a, b) IODB_CHECK((a) > (b))
#define IODB_CHECK_GE(a, b) IODB_CHECK((a) >= (b))

#endif  // IODB_UTIL_CHECK_H_
