#include "util/failpoint.h"

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <mutex>

namespace iodb {
namespace failpoint {
namespace {

struct Armed {
  Action action = Action::kOff;
  long long skip = 0;   // hits to pass through before triggering
  long long hits = 0;   // cumulative evaluations
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Armed> points;

  Registry() { ParseEnv(); }

  // IODB_FAILPOINTS="name=error;other=crash:3" — ';' or ',' separated,
  // action one of error|crash, optional ":N" skip count. Malformed
  // entries are ignored (fault injection must never break a clean run).
  void ParseEnv() {
    const char* env = std::getenv("IODB_FAILPOINTS");
    if (env == nullptr) return;
    std::string spec(env);
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t end = spec.find_first_of(";,", pos);
      if (end == std::string::npos) end = spec.size();
      std::string entry = spec.substr(pos, end - pos);
      pos = end + 1;
      const size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0) continue;
      std::string name = entry.substr(0, eq);
      std::string rhs = entry.substr(eq + 1);
      long long skip = 0;
      const size_t colon = rhs.find(':');
      if (colon != std::string::npos) {
        skip = std::atoll(rhs.c_str() + colon + 1);
        rhs = rhs.substr(0, colon);
      }
      Action action;
      if (rhs == "error") {
        action = Action::kError;
      } else if (rhs == "crash") {
        action = Action::kCrash;
      } else {
        continue;
      }
      points[name] = Armed{action, skip < 0 ? 0 : skip, 0};
    }
  }
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: alive at _exit
  return *registry;
}

}  // namespace

void Arm(const std::string& name, Action action, long long skip) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points[name] = Armed{action, skip < 0 ? 0 : skip, 0};
}

void Disarm(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it != reg.points.end()) it->second.action = Action::kOff;
}

void DisarmAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.points.clear();
}

long long Hits(const std::string& name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  return it == reg.points.end() ? 0 : it->second.hits;
}

Action Check(const char* name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(name);
  if (it == reg.points.end()) return Action::kOff;
  Armed& armed = it->second;
  ++armed.hits;
  if (armed.action == Action::kOff) return Action::kOff;
  if (armed.skip > 0) {
    --armed.skip;
    return Action::kOff;
  }
  return armed.action;
}

void CrashNow() { _exit(kCrashExitCode); }

Status CheckAndMaybeFail(const char* name) {
  switch (Check(name)) {
    case Action::kOff:
      return Status::Ok();
    case Action::kError:
      return Status::InvalidArgument(std::string("failpoint '") + name +
                                     "' injected error");
    case Action::kCrash:
      CrashNow();
  }
  return Status::Ok();
}

Scoped::Scoped(std::string name, Action action, long long skip)
    : name_(std::move(name)) {
  Arm(name_, action, skip);
}

Scoped::~Scoped() { Disarm(name_); }

}  // namespace failpoint
}  // namespace iodb
