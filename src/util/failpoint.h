// Failpoints: named fault-injection seams for the storage I/O paths.
//
// A failpoint is a named hook compiled into a code path (see the catalog
// in docs/ROBUSTNESS.md). Disarmed, it costs one mutex-guarded map probe
// on a cold path and does nothing. Armed, it either
//   - injects an error: the seam returns a Status naming the failpoint,
//     exercising the error-unwind of the caller, or
//   - crashes: the process _exit()s on the spot with kCrashExitCode,
//     simulating a power-cut / SIGKILL in the middle of an I/O sequence
//     (no destructors, no stream flushes — exactly what a crash leaves).
//
// Arming is programmatic (Arm/Disarm, or a ScopedFailpoint in tests) or
// via the environment: IODB_FAILPOINTS="name=error;other=crash:3" parsed
// on first use. The optional ":N" skips the first N hits before
// triggering, so a schedule can place the fault at the N-th WAL append
// rather than the first. The crash-torture harness forks a child, arms
// one failpoint from the catalog at a seeded position, runs a workload
// until the process dies, and asserts recovery in the parent.

#ifndef IODB_UTIL_FAILPOINT_H_
#define IODB_UTIL_FAILPOINT_H_

#include <string>

#include "util/status.h"

namespace iodb {
namespace failpoint {

/// What an armed failpoint does when reached.
enum class Action {
  kOff = 0,  // disarmed (the default for every name)
  kError,    // the seam reports an injected Status
  kCrash     // the process _exit()s at the seam
};

/// Exit code of a kCrash trigger — distinctive so the torture harness can
/// tell an injected crash from a genuine abort.
inline constexpr int kCrashExitCode = 86;

/// Arms `name`. `skip` hits pass through before the action triggers
/// (skip = 0 triggers on the first hit). Re-arming resets the hit count.
void Arm(const std::string& name, Action action, long long skip = 0);
/// Disarms `name` (keeps its hit count readable).
void Disarm(const std::string& name);
/// Disarms everything and clears all hit counts (test isolation).
void DisarmAll();

/// Cumulative times `name` was evaluated (armed or not, but only names
/// that were armed at least once are tracked; 0 for unknown names).
long long Hits(const std::string& name);

/// The seam: records a hit and returns the action to take now. kCrash is
/// NOT executed here — callers that need to stage a partial write first
/// (torn-write seams) call CrashNow() themselves after staging.
Action Check(const char* name);

/// Immediate simulated crash: _exit(kCrashExitCode).
[[noreturn]] void CrashNow();

/// The common seam shape: OK when disarmed or still skipping; on kError,
/// an injected kInvalidArgument status naming the failpoint (the same
/// code real I/O failures on these paths use); on kCrash, CrashNow() —
/// this call does not return.
Status CheckAndMaybeFail(const char* name);

/// RAII arming for tests: arms on construction, disarms on destruction.
class Scoped {
 public:
  Scoped(std::string name, Action action, long long skip = 0);
  ~Scoped();
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string name_;
};

}  // namespace failpoint
}  // namespace iodb

#endif  // IODB_UTIL_FAILPOINT_H_
