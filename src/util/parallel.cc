#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace iodb {

int DefaultWorkerCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(int n, int num_workers, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (num_workers <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<int> next{0};
  auto worker = [&]() {
    while (true) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      fn(i);
    }
  };
  const int spawned = std::min(num_workers, n) - 1;
  std::vector<std::thread> threads;
  threads.reserve(spawned);
  for (int t = 0; t < spawned; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& thread : threads) thread.join();
}

}  // namespace iodb
