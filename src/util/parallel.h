// A minimal worker pool: index-sharded parallel-for over [0, n).
//
// Workers pull indices from one atomic counter (dynamic load balancing —
// enumeration subtrees and fleet databases are wildly uneven), run the
// body, and join before the call returns. The body must synchronize any
// state shared across indices itself; writing to a per-index slot needs
// no synchronization. Exceptions must not escape the body.

#ifndef IODB_UTIL_PARALLEL_H_
#define IODB_UTIL_PARALLEL_H_

#include <functional>

namespace iodb {

/// A sensible worker count for this machine (hardware concurrency,
/// at least 1).
int DefaultWorkerCount();

/// Runs fn(0..n-1), sharded over up to `num_workers` threads (the calling
/// thread is one of them). num_workers <= 1 or n <= 1 degrades to a plain
/// serial loop on the calling thread.
void ParallelFor(int n, int num_workers, const std::function<void(int)>& fn);

}  // namespace iodb

#endif  // IODB_UTIL_PARALLEL_H_
