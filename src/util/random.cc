#include "util/random.h"

namespace iodb {

uint64_t Rng::Next() {
  // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush when used as a
  // stream; perfectly adequate for test-instance generation.
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  IODB_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  IODB_CHECK_LE(lo, hi);
  return lo + static_cast<int>(
                  Uniform(static_cast<uint64_t>(hi) - lo + 1));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  constexpr double kInv = 1.0 / 18446744073709551616.0;  // 2^-64
  return static_cast<double>(Next()) * kInv < p;
}

}  // namespace iodb
