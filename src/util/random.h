// Deterministic pseudo-random number generation for workload generators and
// property tests. All randomized code in the library takes an explicit
// `Rng&` so results are reproducible from a seed.

#ifndef IODB_UTIL_RANDOM_H_
#define IODB_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace iodb {

/// SplitMix64-based generator: tiny, fast, and adequate for workloads.
class Rng {
 public:
  /// Seeds the generator. Two `Rng`s with the same seed produce identical
  /// streams on all platforms.
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  /// Returns the next 64 uniformly random bits.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = Uniform(i);
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element of `items`, which must be nonempty.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    IODB_CHECK(!items.empty());
    return items[Uniform(items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace iodb

#endif  // IODB_UTIL_RANDOM_H_
