#include "util/status.h"

namespace iodb {
namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInconsistent:
      return "INCONSISTENT";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace iodb
