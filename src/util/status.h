// Lightweight Status / Result types for fallible operations.
//
// The library does not throw exceptions across its public API (parser
// errors, inconsistent inputs and malformed constructions are reported as
// values). This mirrors the Status idiom of production database codebases.

#ifndef IODB_UTIL_STATUS_H_
#define IODB_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace iodb {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (parser, bad arity, bad sort)
  kInconsistent,      // database/query has no model (cyclic order graph)
  kUnsupported,        // operation not defined for this input class
  kResourceExhausted,  // configured search limit exceeded
  kDeadlineExceeded,   // wall-clock deadline or step budget exhausted
  kCancelled           // external cancellation (CancelToken) observed
};

/// Outcome of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  /// Returns an kInvalidArgument status with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }

  /// Returns an kInconsistent status with the given message.
  static Status Inconsistent(std::string message) {
    return Status(StatusCode::kInconsistent, std::move(message));
  }

  /// Returns an kUnsupported status with the given message.
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }

  /// Returns a kResourceExhausted status with the given message.
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }

  /// Returns a kDeadlineExceeded status with the given message.
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  /// Returns a kCancelled status with the given message.
  static Status Cancelled(std::string message) {
    return Status(StatusCode::kCancelled, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. `value()` aborts if the result is an error; call
/// `ok()` first on untrusted paths.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    IODB_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; the result must be OK.
  const T& value() const& {
    IODB_CHECK(ok());
    return *value_;
  }
  T& value() & {
    IODB_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    IODB_CHECK(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace iodb

#endif  // IODB_UTIL_STATUS_H_
