// Small string helpers used across the library (joining, splitting,
// identifier checks). Kept dependency-free.

#ifndef IODB_UTIL_STRINGS_H_
#define IODB_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace iodb {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece and
/// dropping empty pieces.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True if `text` is a valid identifier: [A-Za-z_][A-Za-z0-9_']*.
bool IsIdentifier(std::string_view text);

}  // namespace iodb

#endif  // IODB_UTIL_STRINGS_H_
