#include "workload/generators.h"

namespace iodb {
namespace {

std::string PredName(int i) { return "P" + std::to_string(i); }

// Random nonempty-ish label assignment; a point may end up unlabelled,
// which is fine (unlabelled points are pure order information).
void AddRandomLabels(Database& db, const std::string& constant,
                     int num_predicates, double label_probability, Rng& rng) {
  for (int p = 0; p < num_predicates; ++p) {
    if (rng.Bernoulli(label_probability)) {
      Status s = db.AddFact(PredName(p), {constant});
      IODB_CHECK(s.ok());
    }
  }
}

}  // namespace

void DeclareMonadicPredicates(Vocabulary& vocab, int num_predicates) {
  for (int p = 0; p < num_predicates; ++p) {
    vocab.MustAddPredicate(PredName(p), {Sort::kOrder});
  }
}

Database RandomMonadicDb(const MonadicDbParams& params, VocabularyPtr vocab,
                         Rng& rng) {
  DeclareMonadicPredicates(*vocab, params.num_predicates);
  Database db(std::move(vocab));
  for (int chain = 0; chain < params.num_chains; ++chain) {
    std::string prev;
    for (int i = 0; i < params.chain_length; ++i) {
      std::string name =
          "c" + std::to_string(chain) + "_" + std::to_string(i);
      db.GetOrAddConstant(name, Sort::kOrder);
      AddRandomLabels(db, name, params.num_predicates,
                      params.label_probability, rng);
      if (!prev.empty()) {
        db.AddOrder(prev,
                    rng.Bernoulli(params.le_probability) ? OrderRel::kLe
                                                         : OrderRel::kLt,
                    name);
      }
      prev = name;
    }
  }
  return db;
}

Query RandomConjunctiveMonadicQuery(int num_vars, int num_predicates,
                                    double edge_probability,
                                    double label_probability,
                                    double le_probability,
                                    VocabularyPtr vocab, Rng& rng) {
  DeclareMonadicPredicates(*vocab, num_predicates);
  Query query(std::move(vocab));
  QueryConjunct& conjunct = query.AddDisjunct();
  auto var = [](int i) { return "t" + std::to_string(i); };
  for (int i = 0; i < num_vars; ++i) {
    conjunct.Exists(var(i));
    for (int p = 0; p < num_predicates; ++p) {
      if (rng.Bernoulli(label_probability)) {
        conjunct.Atom(PredName(p), {var(i)});
      }
    }
  }
  for (int i = 0; i < num_vars; ++i) {
    for (int j = i + 1; j < num_vars; ++j) {
      if (rng.Bernoulli(edge_probability)) {
        conjunct.Order(var(i),
                       rng.Bernoulli(le_probability) ? OrderRel::kLe
                                                     : OrderRel::kLt,
                       var(j));
      }
    }
  }
  return query;
}

namespace {

void AddSequentialDisjunct(Query& query, int length, int num_predicates,
                           double label_probability, double le_probability,
                           int disjunct_index, Rng& rng) {
  QueryConjunct& conjunct = query.AddDisjunct();
  auto var = [&](int i) {
    return "d" + std::to_string(disjunct_index) + "_t" + std::to_string(i);
  };
  for (int i = 0; i < length; ++i) {
    conjunct.Exists(var(i));
    // Ensure at least one label per variable so patterns are nontrivial.
    int forced = rng.UniformInt(0, num_predicates - 1);
    conjunct.Atom(PredName(forced), {var(i)});
    for (int p = 0; p < num_predicates; ++p) {
      if (p != forced && rng.Bernoulli(label_probability)) {
        conjunct.Atom(PredName(p), {var(i)});
      }
    }
    if (i > 0) {
      conjunct.Order(var(i - 1),
                     rng.Bernoulli(le_probability) ? OrderRel::kLe
                                                   : OrderRel::kLt,
                     var(i));
    }
  }
}

}  // namespace

Query RandomSequentialQuery(int length, int num_predicates,
                            double label_probability, double le_probability,
                            VocabularyPtr vocab, Rng& rng) {
  DeclareMonadicPredicates(*vocab, num_predicates);
  Query query(std::move(vocab));
  AddSequentialDisjunct(query, length, num_predicates, label_probability,
                        le_probability, 0, rng);
  return query;
}

Query RandomDisjunctiveSequentialQuery(int num_disjuncts, int length,
                                       int num_predicates,
                                       double label_probability,
                                       double le_probability,
                                       VocabularyPtr vocab, Rng& rng) {
  DeclareMonadicPredicates(*vocab, num_predicates);
  Query query(std::move(vocab));
  for (int d = 0; d < num_disjuncts; ++d) {
    AddSequentialDisjunct(query, length, num_predicates, label_probability,
                          le_probability, d, rng);
  }
  return query;
}

FlexiWord RandomWord(int length, int num_predicates, double label_probability,
                     Rng& rng) {
  FlexiWord word;
  for (int i = 0; i < length; ++i) {
    PredSet symbol(num_predicates);
    symbol.Add(rng.UniformInt(0, num_predicates - 1));
    for (int p = 0; p < num_predicates; ++p) {
      if (rng.Bernoulli(label_probability)) symbol.Add(p);
    }
    word.symbols.push_back(std::move(symbol));
    if (i > 0) word.rels.push_back(OrderRel::kLt);
  }
  return word;
}

Database AlignmentDb(const std::string& sequence1,
                     const std::string& sequence2, VocabularyPtr vocab) {
  Database db(std::move(vocab));
  int chain = 0;
  for (const std::string* seq : {&sequence1, &sequence2}) {
    std::string prev;
    for (size_t i = 0; i < seq->size(); ++i) {
      std::string pred(1, (*seq)[i]);
      db.vocab()->MustAddPredicate(pred, {Sort::kOrder});
      std::string name =
          "s" + std::to_string(chain) + "_" + std::to_string(i);
      db.GetOrAddConstant(name, Sort::kOrder);
      Status s = db.AddFact(pred, {name});
      IODB_CHECK(s.ok());
      if (!prev.empty()) db.AddOrder(prev, OrderRel::kLt, name);
      prev = name;
    }
    ++chain;
  }
  return db;
}

Query AlignmentViolationQuery(
    const std::vector<std::pair<char, char>>& forbidden_pairs,
    VocabularyPtr vocab) {
  Query query(vocab);
  int index = 0;
  for (const auto& [a, b] : forbidden_pairs) {
    vocab->MustAddPredicate(std::string(1, a), {Sort::kOrder});
    vocab->MustAddPredicate(std::string(1, b), {Sort::kOrder});
    QueryConjunct& conjunct = query.AddDisjunct();
    std::string t = "t" + std::to_string(index++);
    conjunct.Exists(t);
    conjunct.Atom(std::string(1, a), {t});
    conjunct.Atom(std::string(1, b), {t});
  }
  return query;
}

std::string RandomDnaSequence(int length, Rng& rng) {
  static constexpr char kBases[] = {'C', 'G', 'A', 'T'};
  std::string out;
  for (int i = 0; i < length; ++i) {
    out.push_back(kBases[rng.UniformInt(0, 3)]);
  }
  return out;
}

}  // namespace iodb
