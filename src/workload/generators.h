// Random instance generators for tests and benchmarks.
//
// The database families follow the paper's motivating shape: a width-k
// database records the reports of k observers, each a chain of labelled
// events, with the chains mutually unordered (Section 1 / Section 2's
// width discussion).

#ifndef IODB_WORKLOAD_GENERATORS_H_
#define IODB_WORKLOAD_GENERATORS_H_

#include <string>
#include <vector>

#include "core/database.h"
#include "core/flexiword.h"
#include "core/query.h"
#include "util/random.h"

namespace iodb {

/// Parameters for random monadic databases.
struct MonadicDbParams {
  int num_chains = 2;        // observers (the width bound)
  int chain_length = 10;     // events per observer
  int num_predicates = 3;    // monadic predicates P0..P_{n-1}
  double label_probability = 0.5;  // per (point, predicate)
  double le_probability = 0.2;     // chain edge is "<=" instead of "<"
};

/// Declares P0..P_{n-1} (monadic order) in `vocab` if absent.
void DeclareMonadicPredicates(Vocabulary& vocab, int num_predicates);

/// A union of `num_chains` labelled chains: width <= num_chains.
Database RandomMonadicDb(const MonadicDbParams& params, VocabularyPtr vocab,
                         Rng& rng);

/// A random conjunctive monadic query: a random dag over `num_vars` order
/// variables (edge i->j with the given probability for i < j), random
/// labels.
Query RandomConjunctiveMonadicQuery(int num_vars, int num_predicates,
                                    double edge_probability,
                                    double label_probability,
                                    double le_probability,
                                    VocabularyPtr vocab, Rng& rng);

/// A random sequential monadic query of the given length.
Query RandomSequentialQuery(int length, int num_predicates,
                            double label_probability, double le_probability,
                            VocabularyPtr vocab, Rng& rng);

/// A disjunction of random sequential queries.
Query RandomDisjunctiveSequentialQuery(int num_disjuncts, int length,
                                       int num_predicates,
                                       double label_probability,
                                       double le_probability,
                                       VocabularyPtr vocab, Rng& rng);

/// A random plain word (all separators "<", nonempty symbols).
FlexiWord RandomWord(int length, int num_predicates, double label_probability,
                     Rng& rng);

/// Gene alignment (Example 1.2): the two sequences become two chains of
/// monadic facts over predicates named by the alphabet letters.
Database AlignmentDb(const std::string& sequence1,
                     const std::string& sequence2, VocabularyPtr vocab);

/// The alignment integrity violation query: a disjunct ∃t [A(t) ∧ B(t)]
/// for every forbidden co-aligned pair (A, B). The sequences admit an
/// alignment satisfying the constraints iff the database does NOT entail
/// this query.
Query AlignmentViolationQuery(
    const std::vector<std::pair<char, char>>& forbidden_pairs,
    VocabularyPtr vocab);

/// A random DNA-like sequence over {C, G, A, T}.
std::string RandomDnaSequence(int length, Rng& rng);

}  // namespace iodb

#endif  // IODB_WORKLOAD_GENERATORS_H_
