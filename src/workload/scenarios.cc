#include "workload/scenarios.h"

namespace iodb {
namespace {

// Adds the two DNF disjuncts of the integrity-violation formula Ψ of
// Example 1.1: ∃x t1 t2 t3 t4 w [IC(t1,t2,x) ∧ IC(t3,t4,x) ∧ t1<w<t2 ∧
// t3<w<t4 ∧ (t1<t3 ∨ t2<t4)], split on the inner disjunction.
void AddIntegrityDisjuncts(Query& query) {
  for (int variant = 0; variant < 2; ++variant) {
    QueryConjunct& conjunct = query.AddDisjunct();
    for (const char* v : {"x", "t1", "t2", "t3", "t4", "w"}) {
      conjunct.Exists(v);
    }
    conjunct.Atom("IC", {"t1", "t2", "x"});
    conjunct.Atom("IC", {"t3", "t4", "x"});
    conjunct.Order("t1", OrderRel::kLt, "w");
    conjunct.Order("w", OrderRel::kLt, "t2");
    conjunct.Order("t3", OrderRel::kLt, "w");
    conjunct.Order("w", OrderRel::kLt, "t4");
    if (variant == 0) {
      conjunct.Order("t1", OrderRel::kLt, "t3");
    } else {
      conjunct.Order("t2", OrderRel::kLt, "t4");
    }
  }
}

// Adds the disjunct Φ(agent): ∃t1..t4 [IC(t1,t2,agent) ∧ IC(t3,t4,agent) ∧
// t1<t3]. If `agent_is_variable`, `agent` is existentially quantified
// ("did someone enter twice?"); otherwise it is the constant A or B.
void AddTwiceDisjunct(Query& query, const std::string& agent,
                      bool agent_is_variable) {
  QueryConjunct& conjunct = query.AddDisjunct();
  if (agent_is_variable) conjunct.Exists(agent);
  for (const char* v : {"t1", "t2", "t3", "t4"}) conjunct.Exists(v);
  conjunct.Atom("IC", {"t1", "t2", agent});
  conjunct.Atom("IC", {"t3", "t4", agent});
  conjunct.Order("t1", OrderRel::kLt, "t3");
}

}  // namespace

EspionageScenario MakeEspionageScenario() {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("IC", {Sort::kOrder, Sort::kOrder, Sort::kObject});

  Database db(vocab);
  // The guard's log: A in, A out, later B in (times unknown).
  db.AddOrder("z1", OrderRel::kLt, "z2");
  db.AddOrder("z2", OrderRel::kLt, "z3");
  db.AddOrder("z3", OrderRel::kLt, "z4");
  IODB_CHECK(db.AddFact("IC", {"z1", "z2", "A"}).ok());
  IODB_CHECK(db.AddFact("IC", {"z3", "z4", "B"}).ok());
  // Agent A's testimony: B entered while A was inside; A left before B.
  db.AddOrder("u1", OrderRel::kLt, "u2");
  db.AddOrder("u2", OrderRel::kLt, "u3");
  db.AddOrder("u3", OrderRel::kLt, "u4");
  IODB_CHECK(db.AddFact("IC", {"u1", "u3", "A"}).ok());
  IODB_CHECK(db.AddFact("IC", {"u2", "u4", "B"}).ok());

  EspionageScenario scenario{vocab,        db,           Query(vocab),
                             Query(vocab), Query(vocab), Query(vocab),
                             Query(vocab)};
  AddIntegrityDisjuncts(scenario.integrity);

  AddIntegrityDisjuncts(scenario.twice_a);
  AddTwiceDisjunct(scenario.twice_a, "A", false);

  AddIntegrityDisjuncts(scenario.twice_b);
  AddTwiceDisjunct(scenario.twice_b, "B", false);

  AddIntegrityDisjuncts(scenario.twice_either);
  AddTwiceDisjunct(scenario.twice_either, "A", false);
  AddTwiceDisjunct(scenario.twice_either, "B", false);

  AddIntegrityDisjuncts(scenario.twice_someone);
  AddTwiceDisjunct(scenario.twice_someone, "x", true);

  return scenario;
}

EspionagePlans PrepareEspionagePlans(const EspionageScenario& scenario) {
  EntailOptions dense;
  dense.semantics = OrderSemantics::kRational;
  return EspionagePlans{
      MustPrepare(scenario.vocab, scenario.integrity, dense),
      MustPrepare(scenario.vocab, scenario.twice_a, dense),
      MustPrepare(scenario.vocab, scenario.twice_b, dense),
      MustPrepare(scenario.vocab, scenario.twice_either, dense),
      MustPrepare(scenario.vocab, scenario.twice_someone, dense)};
}

SchedulingScenario MakeSchedulingScenario(int num_workers,
                                          int tasks_per_worker, Rng& rng) {
  return MakeSchedulingScenario(num_workers, tasks_per_worker, rng,
                                std::make_shared<Vocabulary>());
}

SchedulingScenario MakeSchedulingScenario(int num_workers,
                                          int tasks_per_worker, Rng& rng,
                                          VocabularyPtr vocab) {
  for (const char* pred : {"Acquire", "Compute", "Release"}) {
    vocab->MustAddPredicate(pred, {Sort::kOrder});
  }

  Database db(vocab);
  for (int w = 0; w < num_workers; ++w) {
    std::string prev;
    for (int i = 0; i < tasks_per_worker; ++i) {
      std::string name = "w" + std::to_string(w) + "_" + std::to_string(i);
      db.GetOrAddConstant(name, Sort::kOrder);
      const char* kind;
      if (i == 0) {
        kind = "Acquire";
      } else if (i == tasks_per_worker - 1) {
        kind = "Release";
      } else {
        kind = rng.Bernoulli(0.3) ? "Acquire" : "Compute";
      }
      IODB_CHECK(db.AddFact(kind, {name}).ok());
      if (!prev.empty()) db.AddOrder(prev, OrderRel::kLt, name);
      prev = name;
    }
  }

  SchedulingScenario scenario{vocab, db, Query(vocab)};
  QueryConjunct& conjunct = scenario.forbidden.AddDisjunct();
  conjunct.Exists("t1").Exists("t2");
  conjunct.Atom("Release", {"t1"});
  conjunct.Order("t1", OrderRel::kLt, "t2");
  conjunct.Atom("Acquire", {"t2"});
  return scenario;
}

PreparedQuery PrepareForbiddenPlan(const SchedulingScenario& scenario) {
  return MustPrepare(scenario.vocab, scenario.forbidden);
}

}  // namespace iodb
