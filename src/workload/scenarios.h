// The paper's worked scenarios as reusable fixtures.
//
// Espionage (Example 1.1): the security-compound investigation. The
// guard's log and agent A's testimony underdetermine the time line; the
// intended conclusion is that *someone* entered the compound twice, while
// neither agent can be individually charged.
//
// Scheduling (nonlinear planning, Section 1): a partially ordered plan
// whose linearizations are the possible executions; countermodel
// enumeration lists the executions avoiding a forbidden pattern.

#ifndef IODB_WORKLOAD_SCENARIOS_H_
#define IODB_WORKLOAD_SCENARIOS_H_

#include "core/database.h"
#include "core/prepare.h"
#include "core/query.h"
#include "util/random.h"

namespace iodb {

/// The Example 1.1 fixture.
struct EspionageScenario {
  VocabularyPtr vocab;
  Database db;        // guard's log + agent A's testimony
  Query integrity;    // Ψ: overlapping-but-distinct interval violation
  Query twice_a;      // Ψ ∨ Φ(A)
  Query twice_b;      // Ψ ∨ Φ(B)
  Query twice_either; // Ψ ∨ Φ(A) ∨ Φ(B)
  Query twice_someone;// Ψ ∨ ∃x Φ(x)

  /// Expected verdicts under the RATIONAL order semantics (time is dense;
  /// the integrity constraint's in-between point w makes the queries
  /// nontight, so the semantics matters): twice_either and twice_someone
  /// are entailed; twice_a and twice_b are not. Verified in tests.
};
EspionageScenario MakeEspionageScenario();

/// The five scenario queries compiled once under the rational semantics
/// (time is dense in Example 1.1). This is the repeated-evaluation
/// fixture: every question against the evolving evidence reuses a plan.
struct EspionagePlans {
  PreparedQuery integrity;
  PreparedQuery twice_a;
  PreparedQuery twice_b;
  PreparedQuery twice_either;
  PreparedQuery twice_someone;
};
EspionagePlans PrepareEspionagePlans(const EspionageScenario& scenario);

/// A partially ordered plan: `num_workers` chains of `tasks_per_worker`
/// steps, each step labelled with one of the monadic step-kind predicates
/// Acquire / Compute / Release.
struct SchedulingScenario {
  VocabularyPtr vocab;
  Database db;
  /// Forbidden execution pattern: some Release strictly before some
  /// Acquire of the same... (monadic abstraction: ∃t1t2 [Release(t1) ∧
  /// t1 < t2 ∧ Acquire(t2)]). Valid schedules are the countermodels.
  Query forbidden;
};
SchedulingScenario MakeSchedulingScenario(int num_workers,
                                          int tasks_per_worker, Rng& rng);

/// As above, but interning the step-kind predicates into a caller-provided
/// vocabulary, so a fleet of scenario databases can share one compiled
/// plan (PreparedQuery::EvaluateBatch).
SchedulingScenario MakeSchedulingScenario(int num_workers,
                                          int tasks_per_worker, Rng& rng,
                                          VocabularyPtr vocab);

/// The forbidden-pattern query of `scenario`, compiled once (finite
/// semantics). Valid-schedule enumeration and repeated what-if checks
/// against plan variants all evaluate this one plan.
PreparedQuery PrepareForbiddenPlan(const SchedulingScenario& scenario);

}  // namespace iodb

#endif  // IODB_WORKLOAD_SCENARIOS_H_
