// ExecBudget / CancelToken semantics and the engine governance
// invariants (util/budget.h, core/prepare.h):
//
//   * an unlimited budget is observationally free and a governed run
//     that does not exhaust it is bit-identical to an ungoverned run
//     (verdict, countermodel, every work counter);
//   * exhaustion surfaces as the typed kDeadlineExceeded / kCancelled
//     status with partial work counters attached to the budget;
//   * a wall-clock deadline is honored promptly (stride-bounded
//     overshoot) even in the middle of an astronomically large
//     enumeration.

#include "util/budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/parser.h"
#include "core/prepare.h"
#include "core/printer.h"
#include "util/check.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

TEST(ExecBudgetTest, UnlimitedBudgetIsPassive) {
  ExecBudget budget;
  EXPECT_FALSE(budget.limited());
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(budget.Charge());
  EXPECT_TRUE(budget.Poll());
  EXPECT_FALSE(budget.exhausted());
  EXPECT_EQ(budget.steps_charged(), 0);  // fast path does not count
}

TEST(ExecBudgetTest, StepLimitTripsStickyAndTyped) {
  ExecBudget budget;
  budget.SetStepLimit(10);
  EXPECT_TRUE(budget.limited());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(budget.Charge()) << "step " << i;
  }
  EXPECT_FALSE(budget.Charge());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(budget.exhaustion(), BudgetExhaustion::kSteps);
  // Sticky: every later charge and poll fails.
  EXPECT_FALSE(budget.Charge());
  EXPECT_FALSE(budget.Poll());

  Status status = budget.ToStatus("unit test");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("step budget"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("unit test"), std::string::npos);
}

TEST(ExecBudgetTest, ExpiredDeadlineFailsAdmission) {
  ExecBudget budget;
  budget.SetDeadlineAfterMs(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(budget.Poll());
  EXPECT_EQ(budget.exhaustion(), BudgetExhaustion::kDeadline);
  EXPECT_EQ(budget.ToStatus("admission").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(ExecBudgetTest, CancelTokenObservedAndTyped) {
  CancelToken token;
  ExecBudget budget;
  budget.SetCancelToken(&token);
  EXPECT_TRUE(budget.limited());
  EXPECT_TRUE(budget.Poll());
  token.Cancel();
  EXPECT_FALSE(budget.Poll());
  EXPECT_EQ(budget.exhaustion(), BudgetExhaustion::kCancelled);
  EXPECT_EQ(budget.ToStatus("cancel test").code(), StatusCode::kCancelled);
}

TEST(ExecBudgetTest, PartialCountersAccumulate) {
  ExecBudget budget;
  ExecBudget::Partial first;
  first.states_visited = 3;
  first.groups_pushed = 7;
  budget.MergePartial(first);
  ExecBudget::Partial second;
  second.states_visited = 2;
  second.models_enumerated = 5;
  budget.MergePartial(second);
  EXPECT_EQ(budget.partial().states_visited, 5);
  EXPECT_EQ(budget.partial().groups_pushed, 7);
  EXPECT_EQ(budget.partial().models_enumerated, 5);
}

// --- Engine governance -----------------------------------------------------

// A database whose minimal-model space is astronomically large: three
// mutually unordered chains of 7 interleave in 21!/(7!)^3 ≈ 4·10^8
// ways, so any full enumeration must be cut short by the budget.
std::string HardDbText() {
  // R is declared but labels nothing (the hard query needs it).
  std::string out = "pred R(order)\n";
  for (char chain : {'a', 'b', 'c'}) {
    for (int i = 1; i <= 7; ++i) {
      out += std::string("P(") + chain + std::to_string(i) + ")\n";
      if (i > 1) {
        out += std::string(1, chain) + std::to_string(i - 1) + " < " +
               chain + std::to_string(i) + "\n";
      }
    }
  }
  return out;
}

struct HardInstance {
  VocabularyPtr vocab = std::make_shared<Vocabulary>();
  Database db;
  Query query;

  HardInstance()
      : db([&] {
          Result<Database> parsed = ParseDatabase(HardDbText(), vocab);
          IODB_CHECK(parsed.ok());
          return std::move(parsed.value());
        }()),
        query([&] {
          // R labels nothing, so the query is false in every model and
          // its countermodels are ALL minimal models of the database.
          Result<Query> parsed = ParseQuery(
              "exists t1 t2: R(t1) & t1 < t2 & R(t2)", vocab);
          IODB_CHECK(parsed.ok());
          return std::move(parsed.value());
        }()) {}
};

TEST(BudgetGovernanceTest, StepBudgetCutsEnumerationWithPartialStats) {
  HardInstance instance;
  ExecBudget budget;
  budget.SetStepLimit(500);
  long long seen = 0;
  Result<long long> result = EnumerateCountermodels(
      instance.db, instance.query,
      [&](const FiniteModel&) {
        ++seen;
        return true;
      },
      {}, &budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("step budget"), std::string::npos)
      << result.status().message();
  EXPECT_GE(budget.steps_charged(), 500);
  // Partial progress was salvaged onto the budget.
  const ExecBudget::Partial partial = budget.partial();
  EXPECT_GT(partial.states_visited + partial.groups_pushed +
                partial.models_enumerated,
            0);
}

TEST(BudgetGovernanceTest, DeadlineIsHonoredPromptly) {
  HardInstance instance;
  ExecBudget budget;
  constexpr long long kDeadlineMs = 25;
  budget.SetDeadlineAfterMs(kDeadlineMs);
  const auto start = std::chrono::steady_clock::now();
  Result<long long> result = EnumerateCountermodels(
      instance.db, instance.query, [](const FiniteModel&) { return true; },
      {}, &budget);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(budget.exhaustion(), BudgetExhaustion::kDeadline);
  // The stride probe bounds overshoot to well under 10 ms of work on
  // this workload; the assertion is looser only to absorb CI scheduling
  // noise and sanitizer slowdowns.
  EXPECT_LT(elapsed_ms, kDeadlineMs + 150)
      << "deadline overshoot " << (elapsed_ms - kDeadlineMs) << " ms";
}

TEST(BudgetGovernanceTest, CancelTokenAbortsInFlightEvaluation) {
  HardInstance instance;
  CancelToken token;
  ExecBudget budget;
  budget.SetCancelToken(&token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  Result<long long> result = EnumerateCountermodels(
      instance.db, instance.query, [](const FiniteModel&) { return true; },
      {}, &budget);
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(budget.exhaustion(), BudgetExhaustion::kCancelled);
}

// Draws the fuzzer's instance families (small) for identity testing.
struct SmallInstance {
  Database db;
  Query query;
};

SmallInstance DrawSmall(uint64_t seed, const VocabularyPtr& vocab) {
  Rng rng(seed);
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 2);
  params.chain_length = rng.UniformInt(2, 4);
  params.num_predicates = 2;
  params.label_probability = 0.5;
  params.le_probability = 0.2;
  Database db = RandomMonadicDb(params, vocab, rng);
  Query query =
      rng.UniformInt(0, 1) == 0
          ? RandomConjunctiveMonadicQuery(rng.UniformInt(2, 3), 2, 0.5, 0.5,
                                          0.3, vocab, rng)
          : RandomDisjunctiveSequentialQuery(2, rng.UniformInt(2, 3), 2, 0.4,
                                             0.3, vocab, rng);
  return SmallInstance{std::move(db), std::move(query)};
}

// THE governance invariant: a budget that never trips must not change
// anything — verdict, countermodel, or any work counter — for any
// engine the instance admits.
TEST(BudgetGovernanceTest, NonExhaustedGovernedRunIsBitIdentical) {
  auto vocab = std::make_shared<Vocabulary>();
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    SmallInstance instance = DrawSmall(seed, vocab);
    for (EngineKind engine :
         {EngineKind::kAuto, EngineKind::kBruteForce,
          EngineKind::kDisjunctiveSearch}) {
      EntailOptions options;
      options.engine = engine;
      options.want_countermodel = true;
      Result<EntailResult> plain = Entails(instance.db, instance.query,
                                           options);
      ASSERT_TRUE(plain.ok()) << plain.status().ToString();
      ExecBudget budget;
      budget.SetStepLimit(1LL << 60);
      budget.SetDeadlineAfterMs(1LL << 40);
      Result<EntailResult> governed =
          Entails(instance.db, instance.query, options, &budget);
      ASSERT_TRUE(governed.ok()) << governed.status().ToString();
      EXPECT_FALSE(budget.exhausted());

      const EntailResult& a = plain.value();
      const EntailResult& b = governed.value();
      ASSERT_EQ(a.entailed, b.entailed) << "seed " << seed;
      EXPECT_EQ(a.engine_used, b.engine_used) << "seed " << seed;
      EXPECT_EQ(a.states_visited, b.states_visited) << "seed " << seed;
      EXPECT_EQ(a.models_enumerated, b.models_enumerated) << "seed " << seed;
      EXPECT_EQ(a.groups_pushed, b.groups_pushed) << "seed " << seed;
      EXPECT_EQ(a.groups_popped, b.groups_popped) << "seed " << seed;
      ASSERT_EQ(a.countermodel.has_value(), b.countermodel.has_value())
          << "seed " << seed;
      if (a.countermodel.has_value()) {
        EXPECT_EQ(a.countermodel->ToString(), b.countermodel->ToString())
            << "seed " << seed;
      }
    }
  }
}

// The sharded-parallel path with a shared (huge) budget must agree with
// the ungoverned parallel path — the budget is thread-safe and a
// non-tripped budget never changes a worker's control flow.
TEST(BudgetGovernanceTest, ParallelGovernedVerdictMatches) {
  auto vocab = std::make_shared<Vocabulary>();
  for (uint64_t seed = 100; seed < 120; ++seed) {
    SmallInstance instance = DrawSmall(seed, vocab);
    EntailOptions options;
    Result<PreparedQuery> plan = Prepare(vocab, instance.query, options);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    std::vector<const Database*> dbs{&instance.db};
    std::vector<Result<EntailResult>> plain =
        plan.value().ParallelEvaluateBatch(dbs, 4);
    ExecBudget budget;
    budget.SetStepLimit(1LL << 60);
    std::vector<Result<EntailResult>> governed =
        plan.value().ParallelEvaluateBatch(dbs, 4, &budget);
    ASSERT_EQ(plain.size(), 1u);
    ASSERT_EQ(governed.size(), 1u);
    ASSERT_TRUE(plain[0].ok()) << plain[0].status().ToString();
    ASSERT_TRUE(governed[0].ok()) << governed[0].status().ToString();
    EXPECT_EQ(plain[0].value().entailed, governed[0].value().entailed)
        << "seed " << seed;
    EXPECT_FALSE(budget.exhausted());
  }
}

// A countermodel found before the trip stays a definite "not entailed":
// force a budget so small the search cannot finish, on an instance
// whose first countermodel is immediate — the verdict must never be an
// exhausted "entailed".
TEST(BudgetGovernanceTest, ExhaustedRunNeverClaimsEntailment) {
  auto vocab = std::make_shared<Vocabulary>();
  for (uint64_t seed = 200; seed < 260; ++seed) {
    SmallInstance instance = DrawSmall(seed, vocab);
    EntailOptions options;
    Result<EntailResult> oracle = Entails(instance.db, instance.query,
                                          options);
    ASSERT_TRUE(oracle.ok());
    Rng rng(seed);
    ExecBudget budget;
    budget.SetStepLimit(rng.UniformInt(0, 12));
    Result<EntailResult> governed =
        Entails(instance.db, instance.query, options, &budget);
    if (governed.ok()) {
      EXPECT_EQ(governed.value().entailed, oracle.value().entailed)
          << "seed " << seed;
    } else {
      EXPECT_EQ(governed.status().code(), StatusCode::kDeadlineExceeded)
          << "seed " << seed << ": " << governed.status().ToString();
    }
  }
}

}  // namespace
}  // namespace iodb
