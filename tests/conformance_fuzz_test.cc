// Randomized cross-engine conformance fuzzer: the safety net under the
// serving layer.
//
// Each seeded instance draws a k-observer database (RandomMonadicDb) and
// a query from one of the generator families (conjunctive monadic /
// sequential / disjunctive sequential), then decides entailment through
// every applicable path:
//
//   * Entails() with engine=auto (the facade),
//   * the brute-force engine, incremental and legacy-rebuild cores,
//   * the bounded-width and path-decomposition engines (conjunctive
//     monadic instances),
//   * the disjunctive-search engine,
//   * the EvaluationService single-request path (which also round-trips
//     the query through Print -> Parse and the plan cache),
//   * the EvaluationService batch path (requests chunked through
//     EvalBatch onto the worker pool), and
//   * the cost-based planner sweep: costing off (the engine runs above),
//     costing on over the database's real statistics, and costing on
//     over randomly perturbed statistics — the planner is advisory by
//     contract, so even garbage estimates may only change schedules,
//     never verdicts.
//
// All verdicts must be identical. A mismatch aborts the suite and prints
// a self-contained repro: the seed plus the database and query rendered
// by the printer (both parse back with tools/iodb_eval).
//
// Knobs (environment):
//   IODB_FUZZ_ITERATIONS  instance count (default 2000; nightly CI
//                         raises it — see .github/workflows/ci.yml)
//   IODB_FUZZ_SEED        run exactly one instance with this seed (the
//                         repro knob: take the seed from a failure log)

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/entail_bruteforce.h"
#include "core/printer.h"
#include "service/service.h"
#include "stats/cost_model.h"
#include "stats/stats.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

int FuzzIterations() {
  const char* env = std::getenv("IODB_FUZZ_ITERATIONS");
  if (env != nullptr) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 2000;  // ~1 s; the nightly CI profile runs far more
}

std::optional<uint64_t> FuzzSingleSeed() {
  const char* env = std::getenv("IODB_FUZZ_SEED");
  if (env == nullptr) return std::nullopt;
  return std::strtoull(env, nullptr, 10);
}

// Seeds are absolute (not derived from the iteration index at run time),
// so any failing instance reruns alone via IODB_FUZZ_SEED.
constexpr uint64_t kSeedBase = 20260730000ULL;

// One named verdict source.
struct Verdict {
  std::string source;
  bool entailed = false;
};

// The drawn instance. All queries are constant-free and monadic-order
// (the generator families), so the disjunctive engine always applies and
// the conjunctive engines apply iff the query has one disjunct.
struct Instance {
  Database db;
  Query query;
  OrderSemantics semantics = OrderSemantics::kFinite;
  int family = 0;  // 0 = conjunctive, 1 = sequential, 2 = disjunctive
};

Instance DrawInstance(uint64_t seed, const VocabularyPtr& vocab) {
  Rng rng(seed);
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 3);
  // Keep the brute-force search spaces small: 3 mutually unordered
  // chains blow up the interleaving count, so they stay short.
  params.chain_length =
      params.num_chains == 3 ? rng.UniformInt(2, 3) : rng.UniformInt(2, 5);
  params.num_predicates = rng.UniformInt(2, 3);
  params.label_probability = rng.UniformInt(30, 70) / 100.0;
  params.le_probability = rng.UniformInt(0, 40) / 100.0;
  Database db = RandomMonadicDb(params, vocab, rng);

  const int family = rng.UniformInt(0, 2);
  Query query = [&] {
    switch (family) {
      case 0:
        return RandomConjunctiveMonadicQuery(
            rng.UniformInt(2, 4), params.num_predicates,
            /*edge_probability=*/rng.UniformInt(30, 60) / 100.0,
            /*label_probability=*/rng.UniformInt(30, 70) / 100.0,
            /*le_probability=*/0.3, vocab, rng);
      case 1:
        return RandomSequentialQuery(rng.UniformInt(2, 5),
                                     params.num_predicates,
                                     /*label_probability=*/0.4,
                                     /*le_probability=*/0.3, vocab, rng);
      default:
        return RandomDisjunctiveSequentialQuery(
            rng.UniformInt(2, 3), rng.UniformInt(2, 4),
            params.num_predicates, /*label_probability=*/0.4,
            /*le_probability=*/0.3, vocab, rng);
    }
  }();

  // Mostly finite semantics; the Z and Q reductions get a steady trickle.
  OrderSemantics semantics = OrderSemantics::kFinite;
  const int roll = rng.UniformInt(0, 9);
  if (roll == 8) semantics = OrderSemantics::kInteger;
  if (roll == 9) semantics = OrderSemantics::kRational;

  return Instance{std::move(db), std::move(query), semantics, family};
}

// The self-contained repro block printed on any mismatch. Both payloads
// are in the parser's format:
//   iodb_eval <(echo "$db") "$query" --semantics=...
std::string Repro(uint64_t seed, const Instance& instance) {
  std::string out;
  out += "=== conformance repro (seed " + std::to_string(seed) + ") ===\n";
  out += "rerun: IODB_FUZZ_SEED=" + std::to_string(seed) +
         " ./conformance_fuzz_test\n";
  out += std::string("semantics: ") + OrderSemanticsName(instance.semantics) +
         "\n";
  out += "--- database ---\n" + ToString(instance.db);
  out += "--- query ---\n" + ToString(instance.query) + "\n";
  return out;
}

// Random statistics perturbation for the costing sweep: counts are
// zeroed, shrunk or inflated across magnitude classes and the validity
// bit may flip. Structurally a legal DatabaseStats, numerically lies —
// the cost model must stay crash-free and verdict-neutral on it.
stats::DatabaseStats PerturbStats(stats::DatabaseStats s, Rng& rng) {
  auto scale = [&rng](long long value) -> long long {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        return 0;
      case 1:
        return value / 2;
      case 2:
        return value * 16 + 1;
      default:
        return value;
    }
  };
  for (stats::PredicateStats& ps : s.predicates) {
    ps.tuples = scale(ps.tuples);
    for (long long& d : ps.distinct_args) d = scale(d);
  }
  for (auto& [pred, count] : s.label_points) count = scale(count);
  for (stats::LabelPairStats& pair : s.label_pairs) {
    pair.points = scale(pair.points);
  }
  s.points = static_cast<int>(scale(s.points));
  s.edges = static_cast<int>(scale(s.edges));
  s.strict_edges = static_cast<int>(scale(s.strict_edges));
  s.dag_depth = static_cast<int>(scale(s.dag_depth));
  s.level_width = static_cast<int>(scale(s.level_width));
  s.components = static_cast<int>(scale(s.components));
  if (rng.Bernoulli(0.2)) s.order_stats_valid = !s.order_stats_valid;
  return s;
}

// Collects every applicable engine verdict for the instance. Returns
// nullopt (with a recorded failure) if any path errors out.
std::optional<std::vector<Verdict>> EngineVerdicts(const Instance& instance,
                                                   uint64_t seed) {
  std::vector<Verdict> verdicts;
  EntailOptions options;
  options.semantics = instance.semantics;

  auto run = [&](const char* source, EngineKind engine) -> bool {
    EntailOptions forced = options;
    forced.engine = engine;
    Result<EntailResult> result = Entails(instance.db, instance.query,
                                          forced);
    if (!result.ok()) {
      ADD_FAILURE() << source << " failed: " << result.status().ToString();
      return false;
    }
    verdicts.push_back({source, result.value().entailed});
    return true;
  };

  if (!run("entails-auto", EngineKind::kAuto)) return std::nullopt;

  // Costing sweep. "entails-auto" above is the costing-off baseline
  // (options.planner defaults to null); the same instance is re-decided
  // with the real statistics-backed planner and with a planner fed
  // perturbed statistics.
  {
    EntailOptions costed = options;
    costed.planner = stats::PlannerFor(instance.db);
    Result<EntailResult> result =
        Entails(instance.db, instance.query, costed);
    if (!result.ok()) {
      ADD_FAILURE() << "costed-auto failed: " << result.status().ToString();
      return std::nullopt;
    }
    verdicts.push_back({"costed-auto", result.value().entailed});

    Rng perturb_rng(seed ^ 0xC057ED57A7511CA1ULL);
    EntailOptions perturbed = options;
    perturbed.planner = std::make_shared<const stats::CostModel>(
        std::make_shared<const stats::DatabaseStats>(
            PerturbStats(*stats::StatsFor(instance.db), perturb_rng)));
    result = Entails(instance.db, instance.query, perturbed);
    if (!result.ok()) {
      ADD_FAILURE() << "costed-perturbed failed: "
                    << result.status().ToString();
      return std::nullopt;
    }
    verdicts.push_back({"costed-perturbed", result.value().entailed});
  }

  if (!run("brute-force", EngineKind::kBruteForce)) return std::nullopt;
  if (!run("disjunctive-search", EngineKind::kDisjunctiveSearch)) {
    return std::nullopt;
  }
  if (instance.family != 2) {  // conjunctive instance
    if (!run("bounded-width", EngineKind::kBoundedWidth)) return std::nullopt;
    if (!run("path-decomposition", EngineKind::kPathDecomposition)) {
      return std::nullopt;
    }
  }

  // The legacy rebuild-per-model brute-force core, run directly on the
  // normalized pair (it implements the finite semantics only).
  if (instance.semantics == OrderSemantics::kFinite) {
    Result<NormDb> ndb = Normalize(instance.db);
    Result<NormQuery> nquery = NormalizeQuery(instance.query);
    if (!ndb.ok() || !nquery.ok()) {
      ADD_FAILURE() << "normalization failed on a generated instance";
      return std::nullopt;
    }
    BruteForceOptions rebuild;
    rebuild.use_incremental = false;
    verdicts.push_back(
        {"brute-force-rebuild",
         EntailBruteForce(ndb.value(), nquery.value(), rebuild).entailed});
  }
  return verdicts;
}

TEST(ConformanceFuzzTest, AllEnginesAndServiceAgree) {
  // One service shared by the whole corpus: its vocabulary hosts every
  // generated instance, its plan cache churns through the random query
  // stream (hits, misses and evictions included), and the fuzz loop
  // doubles as a soak test of the serving layer.
  EvaluationService service;

  const std::optional<uint64_t> single = FuzzSingleSeed();
  const int iterations = single.has_value() ? 1 : FuzzIterations();

  // Batch accumulator: every chunk is re-served through EvalBatch and
  // compared against the verdicts the single-request path produced.
  constexpr int kBatchChunk = 32;
  std::vector<EvalRequest> pending_requests;
  std::vector<bool> pending_expected;
  std::vector<uint64_t> pending_seeds;
  auto flush_batch = [&] {
    if (pending_requests.empty()) return;
    std::vector<Result<EvalResponse>> responses =
        service.EvalBatch(pending_requests);
    ASSERT_EQ(responses.size(), pending_requests.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].ok())
          << "service-batch failed (seed " << pending_seeds[i]
          << "): " << responses[i].status().ToString();
      ASSERT_EQ(responses[i].value().entailed, pending_expected[i])
          << "service-batch disagrees with the single-request path for "
             "seed "
          << pending_seeds[i];
    }
    pending_requests.clear();
    pending_expected.clear();
    pending_seeds.clear();
  };

  for (int i = 0; i < iterations; ++i) {
    const uint64_t seed =
        single.has_value() ? *single : kSeedBase + static_cast<uint64_t>(i);
    Instance instance = DrawInstance(seed, service.vocab());

    std::optional<std::vector<Verdict>> verdicts =
        EngineVerdicts(instance, seed);
    ASSERT_TRUE(verdicts.has_value()) << Repro(seed, instance);

    // The service path: registers the database and round-trips the query
    // through the printer, the parser, the plan cache and Evaluate.
    const std::string db_name = "fuzz" + std::to_string(i);
    ASSERT_TRUE(
        service.Register(db_name, Database(instance.db)).ok())
        << Repro(seed, instance);
    EvalRequest request;
    request.db = db_name;
    request.query = ToString(instance.query);
    request.options.semantics = instance.semantics;
    Result<EvalResponse> response = service.Eval(request);
    ASSERT_TRUE(response.ok()) << "service-eval failed: "
                               << response.status().ToString() << "\n"
                               << Repro(seed, instance);
    verdicts->push_back({"service-eval", response.value().entailed});

    const bool expected = verdicts->front().entailed;
    for (const Verdict& verdict : *verdicts) {
      if (verdict.entailed != expected) {
        std::string table;
        for (const Verdict& v : *verdicts) {
          table += "  " + v.source + ": " +
                   (v.entailed ? "ENTAILED" : "NOT ENTAILED") + "\n";
        }
        FAIL() << "engines disagree:\n" << table << Repro(seed, instance);
      }
    }

    // Governance conformance, small budget: a tiny random step budget
    // must never corrupt a verdict. Either the run completes and matches
    // the oracle, or it fails with the typed exhaustion status — a
    // definite yes/no from an exhausted run would be a soundness bug.
    if (i % 4 == 0) {
      Rng gov_rng(seed ^ 0x9E3779B97F4A7C15ULL);
      ExecBudget small;
      small.SetStepLimit(gov_rng.UniformInt(1, 50));
      EntailOptions gov_options;
      gov_options.semantics = instance.semantics;
      Result<EntailResult> governed =
          Entails(instance.db, instance.query, gov_options, &small);
      if (governed.ok()) {
        ASSERT_EQ(governed.value().entailed, expected)
            << "governed non-exhausted run disagrees with the oracle\n"
            << Repro(seed, instance);
      } else {
        ASSERT_TRUE(governed.status().code() ==
                        StatusCode::kDeadlineExceeded ||
                    governed.status().code() == StatusCode::kCancelled)
            << "governed run failed with a non-exhaustion status: "
            << governed.status().ToString() << "\n"
            << Repro(seed, instance);
      }
    }

    // Governance conformance, huge budget: a budget that never trips is
    // observationally passive — verdict AND every work counter must be
    // bit-identical to the ungoverned run.
    if (i % 8 == 0) {
      EntailOptions gov_options;
      gov_options.semantics = instance.semantics;
      Result<EntailResult> plain =
          Entails(instance.db, instance.query, gov_options);
      ExecBudget huge;
      huge.SetStepLimit(1LL << 60);
      Result<EntailResult> governed =
          Entails(instance.db, instance.query, gov_options, &huge);
      ASSERT_TRUE(plain.ok()) << Repro(seed, instance);
      ASSERT_TRUE(governed.ok()) << Repro(seed, instance);
      EXPECT_EQ(governed.value().entailed, plain.value().entailed)
          << Repro(seed, instance);
      EXPECT_EQ(governed.value().states_visited, plain.value().states_visited)
          << Repro(seed, instance);
      EXPECT_EQ(governed.value().models_enumerated,
                plain.value().models_enumerated)
          << Repro(seed, instance);
      EXPECT_EQ(governed.value().groups_pushed, plain.value().groups_pushed)
          << Repro(seed, instance);
      EXPECT_EQ(governed.value().groups_popped, plain.value().groups_popped)
          << Repro(seed, instance);
    }

    pending_requests.push_back(std::move(request));
    pending_expected.push_back(expected);
    pending_seeds.push_back(seed);
    if (static_cast<int>(pending_requests.size()) >= kBatchChunk) {
      flush_batch();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  flush_batch();

  // The corpus must have actually exercised both verdicts and the cache.
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<long long>(iterations) * 2);  // eval + batch replay
  if (!single.has_value()) {
    EXPECT_GT(stats.plan_cache.hits, 0);
    EXPECT_GT(stats.plan_cache.misses, 0);
  }
}

}  // namespace
}  // namespace iodb
