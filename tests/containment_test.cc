// Proposition 2.10: containment of relational conjunctive queries with
// inequalities via indefinite-order entailment, cross-validated against
// the Chandra–Merlin homomorphism test on the order-free fragment.

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/relational.h"
#include "core/parser.h"
#include "util/random.h"

namespace iodb {
namespace {

RelationalQuery MakeQuery(QueryConjunct body, std::vector<std::string> head) {
  return RelationalQuery{std::move(body), std::move(head)};
}

TEST(ContainmentTest, ClassicHomomorphismCase) {
  // Q1 = {(): E(x,y) ∧ E(y,z)} ⊆ Q2 = {(): E(u,v)}: contained.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("E", {Sort::kObject, Sort::kObject});
  QueryConjunct b1;
  b1.Exists("x").Exists("y").Exists("z");
  b1.Atom("E", {"x", "y"}).Atom("E", {"y", "z"});
  QueryConjunct b2;
  b2.Exists("u").Exists("v");
  b2.Atom("E", {"u", "v"});
  RelationalQuery q1 = MakeQuery(b1, {});
  RelationalQuery q2 = MakeQuery(b2, {});

  Result<ContainmentResult> forward =
      Contained(q1, q2, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(forward.ok());
  EXPECT_TRUE(forward.value().contained);
  Result<bool> hom_fwd = HomomorphismContained(q1, q2);
  ASSERT_TRUE(hom_fwd.ok());
  EXPECT_TRUE(hom_fwd.value());

  // Reverse fails: a single edge need not extend to a 2-path.
  Result<ContainmentResult> backward =
      Contained(q2, q1, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(backward.ok());
  EXPECT_FALSE(backward.value().contained);
  Result<bool> hom_bwd = HomomorphismContained(q2, q1);
  ASSERT_TRUE(hom_bwd.ok());
  EXPECT_FALSE(hom_bwd.value());
}

TEST(ContainmentTest, HeadVariablesRespected) {
  // Q1 = {x : E(x,y)} vs Q2 = {x : E(x,x)}: not contained (Q2 demands a
  // self-loop); the converse holds.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("E", {Sort::kObject, Sort::kObject});
  QueryConjunct b1;
  b1.Exists("x").Exists("y");
  b1.Atom("E", {"x", "y"});
  QueryConjunct b2;
  b2.Exists("x");
  b2.Atom("E", {"x", "x"});
  RelationalQuery q1 = MakeQuery(b1, {"x"});
  RelationalQuery q2 = MakeQuery(b2, {"x"});

  Result<ContainmentResult> r12 =
      Contained(q1, q2, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(r12.ok());
  EXPECT_FALSE(r12.value().contained);
  Result<ContainmentResult> r21 =
      Contained(q2, q1, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(r21.ok());
  EXPECT_TRUE(r21.value().contained);
}

TEST(ContainmentTest, OrderAtomsInBodies) {
  // Q1 = {(): A(t1) ∧ A(t2) ∧ A(t3) ∧ t1<t2<t3} ⊆ {(): A(s1) ∧ A(s2) ∧
  // s1<s2} but not conversely.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("A", {Sort::kOrder});
  QueryConjunct b1;
  b1.Exists("t1").Exists("t2").Exists("t3");
  b1.Atom("A", {"t1"}).Atom("A", {"t2"}).Atom("A", {"t3"});
  b1.Order("t1", OrderRel::kLt, "t2").Order("t2", OrderRel::kLt, "t3");
  QueryConjunct b2;
  b2.Exists("s1").Exists("s2");
  b2.Atom("A", {"s1"}).Atom("A", {"s2"});
  b2.Order("s1", OrderRel::kLt, "s2");
  RelationalQuery q1 = MakeQuery(b1, {});
  RelationalQuery q2 = MakeQuery(b2, {});

  Result<ContainmentResult> fwd =
      Contained(q1, q2, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(fwd.ok());
  EXPECT_TRUE(fwd.value().contained);
  Result<ContainmentResult> bwd =
      Contained(q2, q1, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(bwd.ok());
  EXPECT_FALSE(bwd.value().contained);
  // The homomorphism test refuses order atoms.
  EXPECT_FALSE(HomomorphismContained(q1, q2).ok());
}

TEST(ContainmentTest, LeVersusLtContainment) {
  // {(): A(t1) ∧ A(t2) ∧ t1<t2} ⊆ {(): A(s1) ∧ A(s2) ∧ s1<=s2}: yes.
  // The converse: s1<=s2 can be witnessed with s1=s2, so no.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("A", {Sort::kOrder});
  QueryConjunct strict;
  strict.Exists("t1").Exists("t2");
  strict.Atom("A", {"t1"}).Atom("A", {"t2"});
  strict.Order("t1", OrderRel::kLt, "t2");
  QueryConjunct weak;
  weak.Exists("s1").Exists("s2");
  weak.Atom("A", {"s1"}).Atom("A", {"s2"});
  weak.Order("s1", OrderRel::kLe, "s2");
  RelationalQuery q_strict = MakeQuery(strict, {});
  RelationalQuery q_weak = MakeQuery(weak, {});

  Result<ContainmentResult> fwd =
      Contained(q_strict, q_weak, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(fwd.ok());
  EXPECT_TRUE(fwd.value().contained);
  Result<ContainmentResult> bwd =
      Contained(q_weak, q_strict, vocab, OrderSemantics::kFinite);
  ASSERT_TRUE(bwd.ok());
  EXPECT_FALSE(bwd.value().contained);
}

TEST(ContainmentTest, HomomorphismAgreesOnRandomOrderFreeQueries) {
  Rng rng(99);
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("R", {Sort::kObject, Sort::kObject});
  for (int trial = 0; trial < 40; ++trial) {
    auto random_body = [&](const std::string& prefix) {
      QueryConjunct body;
      int num_vars = rng.UniformInt(2, 4);
      for (int i = 0; i < num_vars; ++i) {
        body.Exists(prefix + std::to_string(i));
      }
      int num_atoms = rng.UniformInt(1, 4);
      for (int a = 0; a < num_atoms; ++a) {
        std::string lhs = prefix + std::to_string(rng.UniformInt(0, num_vars - 1));
        std::string rhs = prefix + std::to_string(rng.UniformInt(0, num_vars - 1));
        body.Atom("R", {lhs, rhs});
      }
      return body;
    };
    RelationalQuery q1 = MakeQuery(random_body("x"), {});
    RelationalQuery q2 = MakeQuery(random_body("y"), {});
    Result<bool> hom = HomomorphismContained(q1, q2);
    ASSERT_TRUE(hom.ok());
    Result<ContainmentResult> red =
        Contained(q1, q2, vocab, OrderSemantics::kFinite);
    ASSERT_TRUE(red.ok());
    EXPECT_EQ(hom.value(), red.value().contained) << "trial " << trial;
  }
}

TEST(AnswerSetTest, SimpleJoin) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("E", {Sort::kObject, Sort::kObject});
  // Model: objects a, b, c with E(a,b), E(b,c).
  FiniteModel model;
  model.vocab = vocab;
  model.object_names = {"a", "b", "c"};
  model.other_facts.push_back(
      {*vocab->FindPredicate("E"),
       {{Sort::kObject, 0}, {Sort::kObject, 1}}});
  model.other_facts.push_back(
      {*vocab->FindPredicate("E"),
       {{Sort::kObject, 1}, {Sort::kObject, 2}}});

  QueryConjunct body;
  body.Exists("x").Exists("y").Exists("z");
  body.Atom("E", {"x", "y"}).Atom("E", {"y", "z"});
  RelationalQuery query = MakeQuery(body, {"x", "z"});
  Result<std::vector<AnswerTuple>> answers =
      AnswerSet(model, query, *vocab);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  EXPECT_EQ(answers.value()[0][0].id, 0);  // x = a
  EXPECT_EQ(answers.value()[0][1].id, 2);  // z = c
}

TEST(AnswerSetTest, OrderedModel) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("A", {Sort::kOrder});
  FiniteModel model;
  model.vocab = vocab;
  model.num_points = 3;
  model.point_labels.assign(3, PredSet(1));
  model.point_labels[0].Add(0);
  model.point_labels[2].Add(0);

  QueryConjunct body;
  body.Exists("t").Exists("s");
  body.Atom("A", {"t"}).Atom("A", {"s"});
  body.Order("t", OrderRel::kLt, "s");
  RelationalQuery query = MakeQuery(body, {"t", "s"});
  Result<std::vector<AnswerTuple>> answers =
      AnswerSet(model, query, *vocab);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers.value().size(), 1u);
  EXPECT_EQ(answers.value()[0][0].id, 0);
  EXPECT_EQ(answers.value()[0][1].id, 2);
}

TEST(ContainmentTest, ArityMismatchRejected) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("E", {Sort::kObject, Sort::kObject});
  QueryConjunct b;
  b.Exists("x").Exists("y");
  b.Atom("E", {"x", "y"});
  Result<ContainmentResult> r =
      Contained(MakeQuery(b, {"x"}), MakeQuery(b, {}), vocab,
                OrderSemantics::kFinite);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace iodb
