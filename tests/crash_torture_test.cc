// Crash-torture harness for the storage layer.
//
// Each schedule forks a child that runs a deterministic seeded workload
// (LOAD + APPENDs + COMPACTs under a seeded WAL flush policy) against a
// fresh directory and dies mid-flight: either a kCrash failpoint from
// the storage catalog armed at a seeded skip position (simulating a
// power cut inside an I/O sequence, torn bytes included), a raw SIGKILL
// between operations, or — some schedules — not at all. The parent then
// asserts the recovery contract:
//
//   1. DurableRegistry::Open succeeds on whatever the child left behind;
//   2. the recovered database is a CONSISTENT PREFIX of the workload:
//      its (revision, canonical text) equals some prefix state of a
//      parent-side mirror replay of the same seeded operations;
//   3. recovery is a fixpoint with identity intact: compact + reopen +
//      recompact re-encodes the snapshot and the vocabulary sidecar
//      byte-identically (the snapshot bytes carry uid and revision, so
//      byte equality pins the identity too).
//
// The schedule count comes from IODB_TORTURE_ITERATIONS (the CI
// crash-torture job runs >= 1000); a failing seed is printed in every
// assertion message and reruns with the same build + seed range.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/parser.h"
#include "core/printer.h"
#include "storage/durable_registry.h"
#include "storage/wal.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace iodb {
namespace {

namespace fs = std::filesystem;

constexpr char kBaseText[] = "P(u)\nQ(v)\nu < v\n";
constexpr char kDbName[] = "t";

// The storage failpoint catalog (docs/ROBUSTNESS.md).
constexpr const char* kCatalog[] = {
    "wal-append-before-write", "wal-append-torn",
    "wal-append-before-sync",  "wal-append-after-sync",
    "snapshot-write-before-tmp", "snapshot-write-torn",
    "snapshot-before-rename",  "snapshot-after-rename",
    "registry-open",
};
constexpr int kCatalogSize = static_cast<int>(std::size(kCatalog));

// One deterministic workload step. The statement text is a function of
// the step index alone, so the parent can mirror the child exactly.
struct Op {
  bool is_compact = false;
  std::string text;
};

std::vector<Op> MakeOps(uint64_t seed) {
  Rng rng(seed);
  const int n = rng.UniformInt(4, 10);
  std::vector<Op> ops;
  for (int i = 0; i < n; ++i) {
    if (rng.UniformInt(0, 3) == 0) {
      ops.push_back({true, ""});
    } else {
      const std::string a = "x" + std::to_string(i) + "a";
      const std::string b = "x" + std::to_string(i) + "b";
      ops.push_back(
          {false, "P(" + a + ")\nQ(" + b + ")\n" + a + " < " + b + "\n"});
    }
  }
  return ops;
}

// The seeded crash schedule (an rng stream independent of MakeOps, so
// the operation list never depends on the fault placement).
struct Schedule {
  storage::WalSyncOptions sync;
  enum class Fault { kFailpoint, kSigkill, kNone } fault = Fault::kNone;
  const char* failpoint = nullptr;
  long long failpoint_skip = 0;
  int kill_before_op = 0;  // kSigkill: raise before this op index
};

Schedule MakeSchedule(uint64_t seed, int num_ops) {
  Rng rng(seed ^ 0xDEADBEEFCAFEF00DULL);
  Schedule schedule;
  switch (rng.UniformInt(0, 2)) {
    case 0:
      schedule.sync.policy = storage::WalSyncPolicy::kCommit;
      break;
    case 1:
      schedule.sync.policy = storage::WalSyncPolicy::kNone;
      break;
    default:
      schedule.sync.policy = storage::WalSyncPolicy::kInterval;
      schedule.sync.interval_ms = rng.UniformInt(0, 20);
      break;
  }
  const int mode = rng.UniformInt(0, 7);
  if (mode <= 5) {
    schedule.fault = Schedule::Fault::kFailpoint;
    schedule.failpoint = kCatalog[rng.UniformInt(0, kCatalogSize - 1)];
    schedule.failpoint_skip = rng.UniformInt(0, 6);
  } else if (mode == 6) {
    schedule.fault = Schedule::Fault::kSigkill;
    schedule.kill_before_op = rng.UniformInt(0, num_ops);
  }
  return schedule;
}

// Child body: never returns. Exit codes — 0 workload completed,
// kCrashExitCode (86) injected crash, SIGKILL self-raised; anything
// else is a genuine child-side failure the parent reports.
[[noreturn]] void RunChild(const std::string& dir, uint64_t seed) {
  const std::vector<Op> ops = MakeOps(seed);
  const Schedule schedule = MakeSchedule(seed, static_cast<int>(ops.size()));
  if (schedule.fault == Schedule::Fault::kFailpoint) {
    failpoint::Arm(schedule.failpoint, failpoint::Action::kCrash,
                   schedule.failpoint_skip);
  }
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(dir, {}, schedule.sync);
  if (!registry.ok()) _exit(11);
  if (!registry.value()->Load(kDbName, kBaseText).ok()) _exit(12);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (schedule.fault == Schedule::Fault::kSigkill &&
        static_cast<int>(i) == schedule.kill_before_op) {
      kill(getpid(), SIGKILL);
    }
    if (ops[i].is_compact) {
      if (!registry.value()->Compact(kDbName).ok()) _exit(13);
    } else {
      if (!registry.value()->AppendText(kDbName, ops[i].text).ok()) _exit(14);
    }
  }
  if (schedule.fault == Schedule::Fault::kSigkill &&
      schedule.kill_before_op == static_cast<int>(ops.size())) {
    kill(getpid(), SIGKILL);
  }
  _exit(0);
}

// Canonical content form: ToString prints facts in intern (insertion)
// order, which legitimately differs between a WAL-replayed database and
// a decoded snapshot (snapshots store the canonical sorted form). The
// CONTENT is a set, so compare sorted lines.
std::string CanonicalText(const Database& db) {
  std::istringstream in(ToString(db));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

// The (revision, canonical text) states the workload passes through —
// computed in the parent by replaying the same mutations through the
// same parse/apply path the registry logs and replays. uids are
// process-local, so identity across the fork is (revision, text).
struct MirrorState {
  uint64_t revision = 0;
  std::string text;
};

std::vector<MirrorState> MirrorStates(uint64_t seed) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(kBaseText, vocab);
  EXPECT_TRUE(db.ok());
  std::vector<MirrorState> states;
  states.push_back({db.value().revision(), CanonicalText(db.value())});
  for (const Op& op : MakeOps(seed)) {
    if (op.is_compact) continue;  // compaction never changes content
    Result<std::vector<storage::WalRecord>> records =
        storage::ParseMutationText(op.text, vocab);
    EXPECT_TRUE(records.ok());
    EXPECT_TRUE(storage::ApplyWalRecords(records.value(), &db.value()).ok());
    states.push_back({db.value().revision(), CanonicalText(db.value())});
  }
  return states;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CrashTortureTest : public testing::Test {
 protected:
  static long long Iterations() {
    const char* env = std::getenv("IODB_TORTURE_ITERATIONS");
    if (env != nullptr) {
      const long long n = std::atoll(env);
      if (n > 0) return n;
    }
    return 250;  // local default; the CI crash-torture job sets >= 1000
  }
};

TEST_F(CrashTortureTest, RecoversToConsistentPrefixWithIdentityIntact) {
  const long long iterations = Iterations();
  const std::string root =
      (fs::path(testing::TempDir()) / "crash_torture").string();
  fs::remove_all(root);
  fs::create_directories(root);

  for (long long seed = 1; seed <= iterations; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed) +
                 " (rerun: IODB_TORTURE_ITERATIONS=" + std::to_string(seed) +
                 " with the failing seed as the last schedule)");
    const std::string dir =
        (fs::path(root) / ("s" + std::to_string(seed))).string();
    fs::remove_all(dir);

    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      RunChild(dir, static_cast<uint64_t>(seed));  // never returns
    }
    int wait_status = 0;
    ASSERT_EQ(waitpid(child, &wait_status, 0), child);
    if (WIFEXITED(wait_status)) {
      const int code = WEXITSTATUS(wait_status);
      ASSERT_TRUE(code == 0 || code == failpoint::kCrashExitCode)
          << "child exited with unexpected code " << code;
    } else {
      ASSERT_TRUE(WIFSIGNALED(wait_status) &&
                  WTERMSIG(wait_status) == SIGKILL)
          << "child died abnormally (status " << wait_status << ")";
    }

    // 1. Whatever the crash left behind must open.
    Result<std::unique_ptr<storage::DurableRegistry>> reopened =
        storage::DurableRegistry::Open(dir, {});
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

    const Database* db = reopened.value()->service().database(kDbName);
    if (db == nullptr) {
      // The crash landed before the initial LOAD became durable; an
      // empty registry is the k=0 prefix.
      fs::remove_all(dir);
      continue;
    }

    // 2. Consistent prefix: the recovered state must be one the
    //    workload actually passed through.
    const std::vector<MirrorState> mirror =
        MirrorStates(static_cast<uint64_t>(seed));
    const uint64_t revision = db->revision();
    const std::string text = CanonicalText(*db);
    bool matched = false;
    for (const MirrorState& state : mirror) {
      if (state.revision == revision && state.text == text) {
        matched = true;
        break;
      }
    }
    ASSERT_TRUE(matched)
        << "recovered state (revision " << revision
        << ") is not a prefix of the workload:\n"
        << text;

    // 3. Recovery fixpoint with identity intact: compact, reopen,
    //    recompact — snapshot and vocabulary bytes must not move.
    const std::string snap_path = reopened.value()->SnapshotPath(kDbName);
    const std::string vocab_path = (fs::path(dir) / "vocab.iodb").string();
    ASSERT_TRUE(reopened.value()->CompactAll().ok());
    reopened.value().reset();
    const std::string snap_bytes = ReadFileBytes(snap_path);
    const std::string vocab_bytes = ReadFileBytes(vocab_path);
    ASSERT_FALSE(snap_bytes.empty());

    Result<std::unique_ptr<storage::DurableRegistry>> again =
        storage::DurableRegistry::Open(dir, {});
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    const Database* db2 = again.value()->service().database(kDbName);
    ASSERT_NE(db2, nullptr);
    EXPECT_EQ(db2->revision(), revision);
    EXPECT_EQ(CanonicalText(*db2), text);
    ASSERT_TRUE(again.value()->CompactAll().ok());
    again.value().reset();
    EXPECT_EQ(ReadFileBytes(snap_path), snap_bytes)
        << "snapshot re-encode is not byte-identical";
    EXPECT_EQ(ReadFileBytes(vocab_path), vocab_bytes)
        << "vocabulary re-encode is not byte-identical";

    fs::remove_all(dir);
  }
  fs::remove_all(root);
}

}  // namespace
}  // namespace iodb
