#include <gtest/gtest.h>

#include "core/database.h"
#include "core/printer.h"

namespace iodb {
namespace {

VocabularyPtr MakeVocab() { return std::make_shared<Vocabulary>(); }

TEST(VocabularyTest, PredicateInterning) {
  Vocabulary vocab;
  int p = vocab.MustAddPredicate("P", {Sort::kOrder});
  EXPECT_EQ(vocab.MustAddPredicate("P", {Sort::kOrder}), p);
  EXPECT_EQ(vocab.FindPredicate("P"), std::optional<int>(p));
  EXPECT_EQ(vocab.FindPredicate("Q"), std::nullopt);
  Result<int> conflict =
      vocab.GetOrAddPredicate("P", {Sort::kObject});
  EXPECT_FALSE(conflict.ok());
  EXPECT_TRUE(vocab.AllMonadicOrder());
  vocab.MustAddPredicate("R", {Sort::kObject, Sort::kOrder});
  EXPECT_FALSE(vocab.AllMonadicOrder());
}

TEST(PredSetTest, Operations) {
  PredSet a(4);
  EXPECT_TRUE(a.Empty());
  a.Add(1);
  a.Add(70);  // grows past the initial capacity
  EXPECT_TRUE(a.Contains(1));
  EXPECT_TRUE(a.Contains(70));
  EXPECT_FALSE(a.Contains(0));
  EXPECT_EQ(a.Count(), 2);
  EXPECT_EQ(a.Elements(), (std::vector<int>{1, 70}));

  PredSet b;
  b.Add(1);
  EXPECT_TRUE(b.IsSubsetOf(a));
  EXPECT_FALSE(a.IsSubsetOf(b));
  b.UnionWith(a);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  a.Remove(70);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a.Contains(70));
}

TEST(PredSetTest, EqualityIgnoresCapacity) {
  PredSet a(1), b(200);
  a.Add(0);
  b.Add(0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(DatabaseTest, ConstantsAndFacts) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("IC", {Sort::kOrder, Sort::kOrder, Sort::kObject});
  Database db(vocab);
  db.AddOrder("z1", OrderRel::kLt, "z2");
  EXPECT_TRUE(db.AddFact("IC", {"z1", "z2", "A"}).ok());
  EXPECT_EQ(db.num_order_constants(), 2);
  EXPECT_EQ(db.num_object_constants(), 1);
  EXPECT_EQ(db.FindConstant("A", Sort::kObject), std::optional<int>(0));
  EXPECT_EQ(db.FindConstant("A", Sort::kOrder), std::nullopt);
  EXPECT_EQ(db.SizeAtoms(), 2);
}

TEST(DatabaseTest, AddFactInfersSortsFromDeclaration) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  // "u" is fresh; the declared signature makes it an order constant.
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  EXPECT_EQ(db.num_order_constants(), 1);
  EXPECT_EQ(db.num_object_constants(), 0);
}

TEST(DatabaseTest, AddFactConflictingSortFails) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("R", {Sort::kObject});
  Database db(vocab);
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  EXPECT_FALSE(db.AddFact("R", {"u"}).ok());  // u is already order-sort
}

TEST(NormalizeTest, MergesLeCycles) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  Database db(vocab);
  // u <= v <= u merges; both labels land on the merged point.
  db.AddOrder("u", OrderRel::kLe, "v");
  db.AddOrder("v", OrderRel::kLe, "u");
  db.AddOrder("v", OrderRel::kLt, "w");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  EXPECT_TRUE(db.AddFact("Q", {"v"}).ok());
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  const NormDb& n = norm.value();
  EXPECT_EQ(n.num_points(), 2);
  int uv = n.point_of_constant[*db.FindConstant("u", Sort::kOrder)];
  EXPECT_EQ(uv, n.point_of_constant[*db.FindConstant("v", Sort::kOrder)]);
  EXPECT_TRUE(n.labels[uv].Contains(*vocab->FindPredicate("P")));
  EXPECT_TRUE(n.labels[uv].Contains(*vocab->FindPredicate("Q")));
  EXPECT_EQ(n.dag.num_edges(), 1);
  EXPECT_EQ(n.dag.edges()[0].rel, OrderRel::kLt);
  EXPECT_EQ(n.PointName(uv), "u=v");
}

TEST(NormalizeTest, LtInsideCycleInconsistent) {
  auto vocab = MakeVocab();
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("v", OrderRel::kLe, "u");
  Result<NormDb> norm = Normalize(db);
  ASSERT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kInconsistent);
}

TEST(NormalizeTest, SelfLoopLeDropped) {
  auto vocab = MakeVocab();
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLe, "u");
  db.AddOrder("u", OrderRel::kLt, "v");
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().num_points(), 2);
  EXPECT_EQ(norm.value().dag.num_edges(), 1);
}

TEST(NormalizeTest, EdgeDedupPrefersStrict) {
  auto vocab = MakeVocab();
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLe, "v");
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("u", OrderRel::kLe, "v");
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  ASSERT_EQ(norm.value().dag.num_edges(), 1);
  EXPECT_EQ(norm.value().dag.edges()[0].rel, OrderRel::kLt);
}

TEST(NormalizeTest, InequalityCollapseInconsistent) {
  auto vocab = MakeVocab();
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLe, "v");
  db.AddOrder("v", OrderRel::kLe, "u");
  db.AddNotEqual("u", "v");
  Result<NormDb> norm = Normalize(db);
  ASSERT_FALSE(norm.ok());
  EXPECT_EQ(norm.status().code(), StatusCode::kInconsistent);
}

TEST(NormalizeTest, InequalityKeptAndDeduped) {
  auto vocab = MakeVocab();
  Database db(vocab);
  db.AddNotEqual("u", "v");
  db.AddNotEqual("v", "u");
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().inequalities.size(), 1u);
}

TEST(NormalizeTest, NaryAtomsRemapped) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("IC", {Sort::kOrder, Sort::kOrder, Sort::kObject});
  Database db(vocab);
  db.AddOrder("a", OrderRel::kLe, "b");
  db.AddOrder("b", OrderRel::kLe, "a");
  EXPECT_TRUE(db.AddFact("IC", {"a", "b", "X"}).ok());
  EXPECT_TRUE(db.AddFact("IC", {"b", "a", "X"}).ok());  // duplicate after merge
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(norm.value().other_atoms.size(), 1u);
  EXPECT_FALSE(norm.value().OrderFactsAreMonadic());
}

TEST(WidthTest, ObserversExample) {
  // Two observers with 3 events each: width 2 (Section 1 reading).
  auto vocab = MakeVocab();
  Database db(vocab);
  db.AddOrder("a1", OrderRel::kLt, "a2");
  db.AddOrder("a2", OrderRel::kLt, "a3");
  db.AddOrder("b1", OrderRel::kLt, "b2");
  db.AddOrder("b2", OrderRel::kLt, "b3");
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(Width(norm.value()), 2);
}

TEST(PrinterTest, DatabaseRoundTripText) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLt, "v");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  std::string text = ToString(db);
  EXPECT_NE(text.find("P(u)"), std::string::npos);
  EXPECT_NE(text.find("u < v"), std::string::npos);
}

TEST(PrinterTest, DotOutput) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("u", OrderRel::kLe, "w");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  std::string dot = DotOfDb(norm.value());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // the <= edge
  EXPECT_NE(dot.find("{P}"), std::string::npos);
}

TEST(NormViewTest, MemoizedUntilMutation) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  db.AddOrder("u", OrderRel::kLt, "v");
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  uint64_t revision = db.revision();

  Result<const NormDb*> first = db.NormView();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(db.norm_view_computations(), 1);
  EXPECT_EQ(first.value()->num_points(), 2);
  EXPECT_EQ(db.revision(), revision);  // reading does not mutate

  // Back-to-back views reuse the computation: pointer identity.
  Result<const NormDb*> second = db.NormView();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), first.value());
  EXPECT_EQ(db.norm_view_computations(), 1);

  // Every mutation kind invalidates: proper atom, order atom, inequality,
  // bare constant.
  EXPECT_TRUE(db.AddFact("P", {"v"}).ok());
  EXPECT_GT(db.revision(), revision);
  Result<const NormDb*> after_fact = db.NormView();
  ASSERT_TRUE(after_fact.ok());
  EXPECT_EQ(db.norm_view_computations(), 2);
  EXPECT_TRUE(after_fact.value()->labels[1].Contains(0));

  db.AddOrder("v", OrderRel::kLt, "w");
  ASSERT_TRUE(db.NormView().ok());
  EXPECT_EQ(db.norm_view_computations(), 3);

  db.AddNotEqual("u", "w");
  ASSERT_TRUE(db.NormView().ok());
  EXPECT_EQ(db.norm_view_computations(), 4);

  db.GetOrAddConstant("z", Sort::kOrder);
  Result<const NormDb*> after_constant = db.NormView();
  ASSERT_TRUE(after_constant.ok());
  EXPECT_EQ(db.norm_view_computations(), 5);
  EXPECT_EQ(after_constant.value()->num_points(), 4);

  // Re-interning an existing constant is a no-op and keeps the view.
  db.GetOrAddConstant("z", Sort::kOrder);
  ASSERT_TRUE(db.NormView().ok());
  EXPECT_EQ(db.norm_view_computations(), 5);
}

TEST(NormViewTest, FailureMemoizedToo) {
  Database db(MakeVocab());
  db.AddOrder("u", OrderRel::kLt, "v");
  db.AddOrder("v", OrderRel::kLt, "u");
  EXPECT_FALSE(db.NormView().ok());
  EXPECT_FALSE(db.NormView().ok());
  EXPECT_EQ(db.norm_view_computations(), 1);
}

TEST(NormViewTest, CopiesShareTheViewButNotMutations) {
  auto vocab = MakeVocab();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Database db(vocab);
  EXPECT_TRUE(db.AddFact("P", {"u"}).ok());
  Result<const NormDb*> original = db.NormView();
  ASSERT_TRUE(original.ok());

  Database copy = db;
  EXPECT_NE(copy.uid(), db.uid());  // fresh identity
  // The copy reuses the cached view (identical content, zero recompute)...
  Result<const NormDb*> copied = copy.NormView();
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied.value(), original.value());

  // ...until it diverges; the original's view is untouched.
  EXPECT_TRUE(copy.AddFact("P", {"w"}).ok());
  Result<const NormDb*> diverged = copy.NormView();
  ASSERT_TRUE(diverged.ok());
  EXPECT_EQ(diverged.value()->num_points(), 2);
  Result<const NormDb*> still_original = db.NormView();
  ASSERT_TRUE(still_original.ok());
  EXPECT_EQ(still_original.value(), original.value());
  EXPECT_EQ(still_original.value()->num_points(), 1);
}

TEST(TermVecTest, InlineAndSpilledSemantics) {
  TermVec small{{Sort::kOrder, 1}, {Sort::kOrder, 2}};
  EXPECT_EQ(small.size(), 2u);
  EXPECT_EQ(small[1].id, 2);

  TermVec big;
  for (int i = 0; i < 5; ++i) big.push_back({Sort::kObject, i});
  EXPECT_EQ(big.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(big[static_cast<size_t>(i)].id, i);

  // Copies are independent; equality is elementwise.
  TermVec copy = big;
  EXPECT_EQ(copy, big);
  copy.push_back({Sort::kObject, 99});
  EXPECT_EQ(big.size(), 5u);
  EXPECT_FALSE(copy == big);
}

TEST(TermVecTest, MovedFromIsEmptyAndReusable) {
  // A moved-from TermVec must stay internally consistent (size follows
  // the spill buffer), whether it was inline or spilled.
  for (int count : {1, 2, 3, 7}) {
    TermVec source;
    for (int i = 0; i < count; ++i) source.push_back({Sort::kOrder, i});
    TermVec target = std::move(source);
    EXPECT_EQ(target.size(), static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(target[static_cast<size_t>(i)].id, i);
    }
    EXPECT_EQ(source.size(), 0u);  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(source.empty());
    source.push_back({Sort::kObject, 42});  // reusable after move
    EXPECT_EQ(source.size(), 1u);
    EXPECT_EQ(source[0].id, 42);

    TermVec assigned;
    assigned.push_back({Sort::kObject, 7});
    assigned = std::move(target);
    EXPECT_EQ(assigned.size(), static_cast<size_t>(count));
    EXPECT_EQ(target.size(), 0u);  // NOLINT(bugprone-use-after-move)
  }
}

TEST(DatabaseTest, RestoreConstantTablesRejectsDuplicates) {
  // Duplicate names (same or cross sort) are a Status, never a crash,
  // and the database stays usable afterwards.
  auto vocab = MakeVocab();
  {
    Database db(vocab);
    Status status = db.RestoreConstantTables({"a", "a"}, {});
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("duplicate"), std::string::npos);
    EXPECT_EQ(db.num_object_constants(), 0);
    EXPECT_EQ(db.GetOrAddConstant("fresh", Sort::kObject), 0);
  }
  {
    Database db(vocab);
    Status status = db.RestoreConstantTables({"x"}, {"x"});
    ASSERT_FALSE(status.ok());
  }
  {
    Database db(vocab);
    ASSERT_TRUE(db.RestoreConstantTables({"a", "b"}, {"u", "v"}).ok());
    EXPECT_EQ(db.object_name(1), "b");
    EXPECT_EQ(db.FindConstant("u", Sort::kOrder), std::optional<int>(0));
    EXPECT_EQ(db.revision(), 4u);  // one bump per restored constant
  }
}

}  // namespace
}  // namespace iodb
