// DurableRegistry tests (storage/durable_registry.h): kill-and-restart
// semantics. A registry opened on the directory of a previous registry
// must restore every named database with identical content AND
// identical identity — database (uid, revision) and the shared
// vocabulary uid — so plan fingerprints and every (uid, revision)-keyed
// cache mean the same thing after the restart.

#include "storage/durable_registry.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

#include "storage/snapshot.h"

namespace iodb {
namespace {

namespace fs = std::filesystem;

using storage::DurableRegistry;

// Fresh directory per test, removed on destruction.
struct TempStore {
  explicit TempStore(const std::string& name)
      : path(testing::TempDir() + "/iodb_registry_" + name) {
    fs::remove_all(path);
  }
  ~TempStore() { fs::remove_all(path); }
  std::string path;
};

Result<std::unique_ptr<DurableRegistry>> OpenStore(const TempStore& store) {
  return DurableRegistry::Open(store.path);
}

constexpr char kBaseText[] = "P(u)\nQ(v)\nu < v\n";
constexpr char kQuery[] = "exists t1 t2: P(t1) & t1 < t2 & Q(t2)";

TEST(DurableRegistry, LoadPersistsAndReopenRestoresIdentity) {
  TempStore store("load_reopen");
  uint64_t uid = 0, revision = 0, vocab_uid = 0;
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok()) << registry.status().ToString();
    Result<DbInfo> info = registry.value()->Load("base", kBaseText);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().atoms, 3);
    uid = info.value().uid;
    revision = info.value().revision;
    vocab_uid = registry.value()->service().vocab()->uid();

    EvalRequest request;
    request.db = "base";
    request.query = kQuery;
    Result<EvalResponse> response = registry.value()->service().Eval(request);
    ASSERT_TRUE(response.ok());
    EXPECT_TRUE(response.value().entailed);
  }  // registry destroyed = process killed

  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->service().database_names(),
            std::vector<std::string>{"base"});
  const Database* db = reopened.value()->service().database("base");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->uid(), uid);
  EXPECT_EQ(db->revision(), revision);
  EXPECT_EQ(reopened.value()->service().vocab()->uid(), vocab_uid);

  EvalRequest request;
  request.db = "base";
  request.query = kQuery;
  Result<EvalResponse> response = reopened.value()->service().Eval(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response.value().entailed);
}

TEST(DurableRegistry, AppendTextIsWalLoggedAndReplayed) {
  TempStore store("append_replay");
  uint64_t live_revision = 0;
  int live_atoms = 0;
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry.value()->Load("base", kBaseText).ok());
    Result<DbInfo> info =
        registry.value()->AppendText("base", "R(w)\nv < w\n");
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().atoms, 5);
    Result<DbInfo> info2 = registry.value()->AppendText("base", "P(w)\n");
    ASSERT_TRUE(info2.ok());
    live_revision = info2.value().revision;
    live_atoms = info2.value().atoms;
    // Two groups in the WAL beyond the header.
    Result<uint64_t> wal_bytes = registry.value()->WalBytes("base");
    ASSERT_TRUE(wal_bytes.ok());
    EXPECT_GT(wal_bytes.value(), 40u);
  }

  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Database* db = reopened.value()->service().database("base");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->SizeAtoms(), live_atoms);
  EXPECT_EQ(db->revision(), live_revision);

  EvalRequest request;
  request.db = "base";
  request.query = "exists t: R(t) & P(t)";
  Result<EvalResponse> response = reopened.value()->service().Eval(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().entailed);  // w carries both R and P
}

TEST(DurableRegistry, CompactFoldsWalAndPreservesState) {
  TempStore store("compact");
  int live_atoms = 0;
  uint64_t live_revision = 0;
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry.value()->Load("base", kBaseText).ok());
    ASSERT_TRUE(registry.value()->AppendText("base", "R(w)\nv < w\n").ok());
    Result<uint64_t> before = registry.value()->WalBytes("base");
    ASSERT_TRUE(before.ok());
    Result<DbInfo> info = registry.value()->Compact("base");
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    live_atoms = info.value().atoms;
    live_revision = info.value().revision;
    Result<uint64_t> after = registry.value()->WalBytes("base");
    ASSERT_TRUE(after.ok());
    EXPECT_LT(after.value(), before.value());  // log folded into snapshot
  }
  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Database* db = reopened.value()->service().database("base");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->SizeAtoms(), live_atoms);
  EXPECT_EQ(db->revision(), live_revision);
}

TEST(DurableRegistry, MultipleDatabasesShareOneVocabulary) {
  TempStore store("multi");
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    // `u <= u` marks u as an order constant, so P registers as an
    // order predicate both databases can share.
    ASSERT_TRUE(registry.value()->Load("alpha", "P(u)\nu <= u\n").ok());
    ASSERT_TRUE(registry.value()->Load("beta", "P(x)\nQ(y)\nx < y\n").ok());
  }
  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->service().database_names(),
            (std::vector<std::string>{"alpha", "beta"}));
  // One shared vocabulary: predicate ids comparable across databases.
  EXPECT_EQ(reopened.value()->service().database("alpha")->vocab().get(),
            reopened.value()->service().database("beta")->vocab().get());
  // A plan compiled once serves both (smoke: both answer).
  EvalRequest request;
  request.db = "alpha";
  request.query = "exists t: P(t)";
  EXPECT_TRUE(reopened.value()->service().Eval(request).ok());
  request.db = "beta";
  EXPECT_TRUE(reopened.value()->service().Eval(request).ok());
}

TEST(DurableRegistry, LoadReplacesAndRestartSeesTheReplacement) {
  TempStore store("replace");
  uint64_t second_uid = 0;
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry.value()->Load("base", kBaseText).ok());
    Result<DbInfo> info = registry.value()->Load("base", "P(only)\n");
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info.value().atoms, 1);
    second_uid = info.value().uid;
  }
  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_TRUE(reopened.ok());
  const Database* db = reopened.value()->service().database("base");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->SizeAtoms(), 1);
  EXPECT_EQ(db->uid(), second_uid);
}

TEST(DurableRegistry, HostileDatabaseNamesAreEncodedSafely) {
  TempStore store("names");
  const std::string hostile = "../we ird/na%me.snap";
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    Result<DbInfo> info = registry.value()->Load(hostile, "P(u)\n");
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    // The file landed INSIDE the store directory.
    EXPECT_TRUE(fs::exists(registry.value()->SnapshotPath(hostile)));
    EXPECT_EQ(fs::path(registry.value()->SnapshotPath(hostile))
                  .parent_path()
                  .string(),
              store.path);
  }
  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NE(reopened.value()->service().database(hostile), nullptr);
}

TEST(DurableRegistry, FileNameEncodingRoundTrips) {
  const std::string names[] = {"base", "a b", "../x", "emoji\xF0\x9F\x8C\x90",
                               "%25", "UPPER_lower-123"};
  for (const std::string& name : names) {
    const std::string encoded = DurableRegistry::EncodeDbFileName(name);
    for (char c : encoded) {
      EXPECT_TRUE((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '%')
          << "unsafe byte in encoding of '" << name << "'";
    }
    EXPECT_EQ(DurableRegistry::DecodeDbFileName(encoded), name);
  }
  EXPECT_FALSE(DurableRegistry::DecodeDbFileName("bad%zz").has_value());
  EXPECT_FALSE(DurableRegistry::DecodeDbFileName("trunc%4").has_value());
  EXPECT_FALSE(DurableRegistry::DecodeDbFileName("sp ace").has_value());
}

TEST(DurableRegistry, AppendToUnknownDatabaseFails) {
  TempStore store("unknown");
  Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
  ASSERT_TRUE(registry.ok());
  EXPECT_FALSE(registry.value()->AppendText("nosuch", "P(u)\n").ok());
  EXPECT_FALSE(registry.value()->Compact("nosuch").ok());
}

TEST(DurableRegistry, TornWalTailIsTruncatedSoAppendsStayReachable) {
  // Crash model: a group append torn mid-write. Open must drop the torn
  // bytes, so a post-recovery append lands after the clean prefix and
  // the NEXT open still succeeds — an append after garbage would be
  // acknowledged and then unreachable forever.
  TempStore store("torn_tail");
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry.value()->Load("base", kBaseText).ok());
    ASSERT_TRUE(registry.value()->AppendText("base", "R(w)\nv < w\n").ok());
  }
  const std::string wal_path =
      (fs::path(store.path) / "base.wal").string();
  const uint64_t full_size = fs::file_size(wal_path);
  fs::resize_file(wal_path, full_size - 3);  // tear the last record

  int recovered_atoms = 0;
  {
    Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    recovered_atoms = reopened.value()->service().database("base")->SizeAtoms();
    EXPECT_LT(fs::file_size(wal_path), full_size - 3);  // tail dropped
    Result<DbInfo> info =
        reopened.value()->AppendText("base", "S(x)\nw < x\n");
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info.value().atoms, recovered_atoms + 2);
  }
  // The open after the post-recovery append must see everything.
  Result<std::unique_ptr<DurableRegistry>> again = OpenStore(store);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value()->service().database("base")->SizeAtoms(),
            recovered_atoms + 2);
  EvalRequest request;
  request.db = "base";
  request.query = "exists t: S(t)";
  Result<EvalResponse> response = again.value()->service().Eval(request);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response.value().entailed);
}

TEST(DurableRegistry, CorruptSnapshotSurfacesAsAnOpenError) {
  TempStore store("corrupt");
  {
    Result<std::unique_ptr<DurableRegistry>> registry = OpenStore(store);
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(registry.value()->Load("base", kBaseText).ok());
  }
  // Flip a byte in the snapshot body.
  const std::string snap_path =
      (fs::path(store.path) / "base.snap").string();
  Result<std::string> bytes = storage::ReadFileBytes(snap_path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupt = bytes.value();
  corrupt[corrupt.size() / 2] =
      static_cast<char>(corrupt[corrupt.size() / 2] ^ 0x5A);
  ASSERT_TRUE(storage::WriteFileAtomic(snap_path, corrupt).ok());
  Result<std::unique_ptr<DurableRegistry>> reopened = OpenStore(store);
  ASSERT_FALSE(reopened.ok());
  EXPECT_NE(reopened.status().message().find("base"), std::string::npos);
}

}  // namespace
}  // namespace iodb
