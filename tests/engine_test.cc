#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/model_check.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace iodb {
namespace {

TEST(EngineTest, EngineNamesRoundTrip) {
  for (EngineKind kind :
       {EngineKind::kAuto, EngineKind::kBruteForce,
        EngineKind::kPathDecomposition, EngineKind::kBoundedWidth,
        EngineKind::kDisjunctiveSearch}) {
    EXPECT_EQ(ParseEngineKind(EngineKindName(kind)), std::optional(kind));
  }
  // Historical CLI shorthands stay accepted.
  EXPECT_EQ(ParseEngineKind("paths"),
            std::optional(EngineKind::kPathDecomposition));
  EXPECT_EQ(ParseEngineKind("disjunctive"),
            std::optional(EngineKind::kDisjunctiveSearch));
  EXPECT_EQ(ParseEngineKind("warp-drive"), std::nullopt);
  EXPECT_EQ(ParseEngineKind(""), std::nullopt);
}

TEST(EngineTest, AutoPicksBoundedWidthForConjunctiveMonadic) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> result = Entails(db.value(), query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entailed);
  EXPECT_EQ(result.value().engine_used, EngineKind::kBoundedWidth);
}

TEST(EngineTest, AutoPicksDisjunctiveForDisjunctions) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred P(order)\npred Q(order)\nP(u)\nQ(v)", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t: P(t) | exists s: Q(s)", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> result = Entails(db.value(), query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entailed);
  EXPECT_EQ(result.value().engine_used, EngineKind::kDisjunctiveSearch);
}

TEST(EngineTest, AutoPicksBruteForceForNaryPredicates) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred B(object, order)\nB(a, t1)\nt1 < t2", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists x s: B(x, s)", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> result = Entails(db.value(), query.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().entailed);
  EXPECT_EQ(result.value().engine_used, EngineKind::kBruteForce);
}

TEST(EngineTest, ForcedEngineUnsupportedMismatch) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred B(object, order)\nB(a, t1)", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists x s: B(x, s)", vocab);
  ASSERT_TRUE(query.ok());
  EntailOptions options;
  options.engine = EngineKind::kBoundedWidth;
  Result<EntailResult> result = Entails(db.value(), query.value(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(EngineTest, InconsistentDatabaseReported) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("u < v\nv < u", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists t1 t2: t1 < t2", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> result = Entails(db.value(), query.value());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInconsistent);
}

TEST(EngineTest, ObjectPartSplitEvaluatesGroundFacts) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    pred Person(object)
    pred P(order)
    Person(alice)
    P(u)
    u < v
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  // Object component true + order component true.
  Result<Query> yes =
      ParseQuery("exists x t: Person(x) & P(t)", vocab);
  ASSERT_TRUE(yes.ok());
  Result<EntailResult> r1 = Entails(db.value(), yes.value());
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1.value().entailed);
  // The order part runs on a monadic engine despite the object atom.
  EXPECT_EQ(r1.value().engine_used, EngineKind::kBoundedWidth);

  // Unknown predicates surface as errors during normalization.
  Result<Query> unknown = ParseQuery("exists x t: Dog(x) & P(t)", vocab);
  ASSERT_TRUE(unknown.ok());  // parsing is syntactic
  Result<EntailResult> bad = Entails(db.value(), unknown.value());
  EXPECT_FALSE(bad.ok());

  // Object component false: the disjunct dies.
  vocab->MustAddPredicate("Dog", {Sort::kObject});
  Result<Query> no2 = ParseQuery("exists x t: Dog(x) & P(t)", vocab);
  ASSERT_TRUE(no2.ok());
  Result<EntailResult> r2 = Entails(db.value(), no2.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().entailed);
}

TEST(EngineTest, ConstantsInQueries) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nQ(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  // ∃t: u < t ∧ Q(t) — u is the database constant.
  Result<Query> query = ParseQuery("exists t: u < t & Q(t)", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> r = Entails(db.value(), query.value());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().entailed);

  // ∃t: v < t — nothing is known to be after v.
  Result<Query> query2 = ParseQuery("exists t: v < t & P(t)", vocab);
  ASSERT_TRUE(query2.ok());
  Result<EntailResult> r2 = Entails(db.value(), query2.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().entailed);
}

TEST(EngineTest, QueryInequalitiesRewrittenForMonadicEngines) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nP(v)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & P(t2) & t1 != t2", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> r = Entails(db.value(), query.value());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().entailed);
  EXPECT_EQ(r.value().engine_used, EngineKind::kDisjunctiveSearch);

  // Without the strict edge the two P-points may merge: not entailed.
  auto vocab2 = std::make_shared<Vocabulary>();
  Result<Database> db2 = ParseDatabase("P(u)\nP(v)\nu <= v", vocab2);
  ASSERT_TRUE(db2.ok());
  Result<Query> query2 =
      ParseQuery("exists t1 t2: P(t1) & P(t2) & t1 != t2", vocab2);
  ASSERT_TRUE(query2.ok());
  Result<EntailResult> r2 = Entails(db2.value(), query2.value());
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value().entailed);
}

TEST(EngineTest, DatabaseInequalitiesUseSection7Engine) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("P(u)\nP(v)\nu != v", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & P(t2) & t1 < t2", vocab);
  ASSERT_TRUE(query.ok());
  Result<EntailResult> r = Entails(db.value(), query.value());
  ASSERT_TRUE(r.ok());
  // u != v forces two distinct points; one of them is before the other in
  // every model, so the query is entailed. The monadic query over a
  // "!="-database routes to the Section 7 variant of Theorem 5.3.
  EXPECT_TRUE(r.value().entailed);
  EXPECT_EQ(r.value().engine_used, EngineKind::kDisjunctiveSearch);
}

TEST(EngineTest, Section7EngineAgreesWithBruteForceOnNeqDatabases) {
  for (int seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 77000);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 2;
    Database db = RandomMonadicDb(params, vocab, rng);
    // Random cross-chain inequalities.
    for (int i = 0; i < 3; ++i) {
      if (rng.Bernoulli(0.6)) {
        db.AddNotEqual("c0_" + std::to_string(rng.UniformInt(0, 2)),
                       "c1_" + std::to_string(rng.UniformInt(0, 2)));
      }
    }
    Query query = RandomDisjunctiveSequentialQuery(
        rng.UniformInt(1, 2), rng.UniformInt(1, 3), 2, 0.3, 0.3, vocab, rng);
    EntailOptions brute;
    brute.engine = EngineKind::kBruteForce;
    Result<EntailResult> reference = Entails(db, query, brute);
    ASSERT_TRUE(reference.ok());
    EntailOptions fast;
    fast.engine = EngineKind::kDisjunctiveSearch;
    Result<EntailResult> result = Entails(db, query, fast);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().entailed, reference.value().entailed)
        << "seed " << seed;
  }
}

TEST(EngineTest, CountermodelRequested) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred P(order)\npred Q(order)\nP(u)\nQ(v)", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2: P(t1) & t1 < t2 & Q(t2)", vocab);
  ASSERT_TRUE(query.ok());
  EntailOptions options;
  options.want_countermodel = true;
  Result<EntailResult> r = Entails(db.value(), query.value(), options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().entailed);
  ASSERT_TRUE(r.value().countermodel.has_value());
  Result<NormQuery> nq = NormalizeQuery(query.value());
  ASSERT_TRUE(nq.ok());
  EXPECT_FALSE(Satisfies(*r.value().countermodel, nq.value()));
}

TEST(EngineTest, TrivialQueryAlwaysEntailed) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Query query(vocab);
  query.AddDisjunct();  // empty conjunction = TRUE
  Result<EntailResult> r = Entails(db, query);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().entailed);
}

TEST(EngineTest, ForcedEnginesAgreeOnRandomInstances) {
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 31000);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 3;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query =
        RandomConjunctiveMonadicQuery(3, 3, 0.4, 0.4, 0.3, vocab, rng);
    std::optional<bool> reference;
    for (EngineKind kind :
         {EngineKind::kBruteForce, EngineKind::kPathDecomposition,
          EngineKind::kBoundedWidth, EngineKind::kDisjunctiveSearch,
          EngineKind::kAuto}) {
      EntailOptions options;
      options.engine = kind;
      Result<EntailResult> r = Entails(db, query, options);
      ASSERT_TRUE(r.ok());
      if (!reference.has_value()) {
        reference = r.value().entailed;
      } else {
        EXPECT_EQ(r.value().entailed, *reference)
            << "seed " << seed << " engine " << EngineKindName(kind);
      }
    }
  }
}

}  // namespace
}  // namespace iodb
// --- Countermodel enumeration through the facade ----------------------------

#include <set>
#include <string>

#include "core/minimal_models.h"

namespace iodb {
namespace {

TEST(EnumerateCountermodelsTest, MonadicSchedulesMatchBruteForce) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    pred A(order)
    pred R(order)
    A(w0a); R(w0r); w0a < w0r
    A(w1a); R(w1r); w1a < w1r
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> forbidden =
      ParseQuery("exists t1 t2: R(t1) & t1 < t2 & A(t2)", vocab);
  ASSERT_TRUE(forbidden.ok());

  // Facade enumeration (distinct models).
  std::set<std::string> via_facade;
  Result<long long> reported = EnumerateCountermodels(
      db.value(), forbidden.value(), [&](const FiniteModel& model) {
        via_facade.insert(model.ToString());
        return true;
      });
  ASSERT_TRUE(reported.ok());
  EXPECT_GE(reported.value(), static_cast<long long>(via_facade.size()));

  // Reference: all minimal models falsifying the query.
  Result<NormDb> ndb = Normalize(db.value());
  Result<NormQuery> nq = NormalizeQuery(forbidden.value());
  ASSERT_TRUE(ndb.ok());
  ASSERT_TRUE(nq.ok());
  std::set<std::string> expected;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    FiniteModel model = BuildMinimalModel(ndb.value(), groups);
    if (!Satisfies(model, nq.value())) expected.insert(model.ToString());
    return true;
  };
  ForEachMinimalModel(ndb.value(), visitor);
  EXPECT_EQ(via_facade, expected);
  EXPECT_FALSE(expected.empty());  // some valid schedule exists
}

TEST(EnumerateCountermodelsTest, NaryFallback) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase(R"(
    pred B(object, order)
    B(a, t1)
    B(b, t2)
  )",
                                      vocab);
  ASSERT_TRUE(db.ok());
  // "a occurs strictly before b": countermodels are the orders where it
  // does not (b <= a): two of the three minimal models.
  Result<Query> query =
      ParseQuery("exists s1 s2: B(a, s1) & s1 < s2 & B(b, s2)", vocab);
  ASSERT_TRUE(query.ok());
  long long distinct = 0;
  Result<long long> reported = EnumerateCountermodels(
      db.value(), query.value(), [&](const FiniteModel&) {
        ++distinct;
        return true;
      });
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(distinct, 2);
}

TEST(EnumerateCountermodelsTest, EntailedQueryHasNone) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db = ParseDatabase("pred P(order)\nP(u)", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query = ParseQuery("exists t: P(t)", vocab);
  ASSERT_TRUE(query.ok());
  Result<long long> reported = EnumerateCountermodels(
      db.value(), query.value(), [](const FiniteModel&) { return true; });
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(reported.value(), 0);
}

TEST(EnumerateCountermodelsTest, EarlyStopRespected) {
  auto vocab = std::make_shared<Vocabulary>();
  Result<Database> db =
      ParseDatabase("pred P(order)\nP(u)\nP(v)\nP(w)", vocab);
  ASSERT_TRUE(db.ok());
  Result<Query> query =
      ParseQuery("exists t1 t2 t3 t4: P(t1) & t1<t2 & P(t2) & t2<t3 & "
                 "P(t3) & t3<t4 & P(t4)",
                 vocab);
  ASSERT_TRUE(query.ok());
  long long seen = 0;
  Result<long long> reported = EnumerateCountermodels(
      db.value(), query.value(), [&](const FiniteModel&) {
        return ++seen < 2;
      });
  ASSERT_TRUE(reported.ok());
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace iodb
