// Cross-engine agreement: the brute-force minimal-model engine is the
// semantic reference; the SEQ/path engine (Lemma 4.1), the bounded-width
// engine (Theorem 4.7), the disjunctive engine (Theorem 5.3) and the
// compiled basis (Section 6) must agree with it on random monadic
// instances, and countermodels must actually falsify the query.

#include <gtest/gtest.h>

#include <set>

#include "core/entail_bounded_width.h"
#include "core/entail_bruteforce.h"
#include "core/entail_disjunctive.h"
#include "core/entail_paths.h"
#include "core/minimal_models.h"
#include "core/model_check.h"
#include "core/wqo.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct Instance {
  NormDb db;
  NormQuery query;
};

Instance RandomConjunctiveInstance(uint64_t seed) {
  Rng rng(seed);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 3);
  params.chain_length = rng.UniformInt(1, 4);
  params.num_predicates = 3;
  params.label_probability = 0.5;
  params.le_probability = 0.3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Query query = RandomConjunctiveMonadicQuery(
      rng.UniformInt(1, 4), 3, 0.4, 0.4, 0.3, vocab, rng);
  Result<NormDb> ndb = Normalize(db);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(ndb.ok());
  IODB_CHECK(nq.ok());
  return {std::move(ndb.value()), std::move(nq.value())};
}

Instance RandomDisjunctiveInstance(uint64_t seed) {
  Rng rng(seed + 5000);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 2);
  params.chain_length = rng.UniformInt(1, 4);
  params.num_predicates = 3;
  params.label_probability = 0.6;
  params.le_probability = 0.3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Query query = RandomDisjunctiveSequentialQuery(
      rng.UniformInt(1, 3), rng.UniformInt(1, 3), 3, 0.3, 0.3, vocab, rng);
  Result<NormDb> ndb = Normalize(db);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(ndb.ok());
  IODB_CHECK(nq.ok());
  return {std::move(ndb.value()), std::move(nq.value())};
}

class ConjunctiveEnginesTest : public ::testing::TestWithParam<int> {};

TEST_P(ConjunctiveEnginesTest, AllEnginesAgree) {
  Instance inst = RandomConjunctiveInstance(GetParam());
  ASSERT_EQ(inst.query.disjuncts.size(), 1u);
  const NormConjunct& conjunct = inst.query.disjuncts[0];

  bool brute = EntailBruteForce(inst.db, inst.query).entailed;
  bool paths = EntailByPaths(inst.db, conjunct).entailed;
  bool bounded = EntailBoundedWidth(inst.db, conjunct).entailed;
  bool disjunctive = EntailDisjunctive(inst.db, inst.query).entailed;
  bool basis =
      CompiledQuery::CompileConjunctive(conjunct).Entails(inst.db);

  EXPECT_EQ(paths, brute) << "seed " << GetParam();
  EXPECT_EQ(bounded, brute) << "seed " << GetParam();
  EXPECT_EQ(disjunctive, brute) << "seed " << GetParam();
  EXPECT_EQ(basis, brute) << "seed " << GetParam();
}

TEST_P(ConjunctiveEnginesTest, BoundedWidthCountermodelFalsifies) {
  Instance inst = RandomConjunctiveInstance(GetParam());
  const NormConjunct& conjunct = inst.query.disjuncts[0];
  BoundedWidthOutcome outcome = EntailBoundedWidth(inst.db, conjunct, true);
  if (!outcome.entailed) {
    ASSERT_TRUE(outcome.countermodel.has_value());
    EXPECT_FALSE(Satisfies(*outcome.countermodel, inst.query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConjunctiveEnginesTest,
                         ::testing::Range(0, 80));

class DisjunctiveEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(DisjunctiveEngineTest, AgreesWithBruteForce) {
  Instance inst = RandomDisjunctiveInstance(GetParam());
  bool brute = EntailBruteForce(inst.db, inst.query).entailed;
  DisjunctiveOutcome outcome = EntailDisjunctive(inst.db, inst.query);
  EXPECT_EQ(outcome.entailed, brute) << "seed " << GetParam();
  if (!outcome.entailed) {
    ASSERT_TRUE(outcome.countermodel.has_value());
    EXPECT_FALSE(Satisfies(*outcome.countermodel, inst.query));
  }
}

TEST_P(DisjunctiveEngineTest, EnumerationMatchesBruteForceCountermodels) {
  Instance inst = RandomDisjunctiveInstance(GetParam());
  // Reference: all minimal models falsifying the query.
  std::set<std::string> expected;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    FiniteModel model = BuildMinimalModel(inst.db, groups);
    if (!Satisfies(model, inst.query)) expected.insert(model.ToString());
    return true;
  };
  ForEachMinimalModel(inst.db, visitor);

  // Engine enumeration (may report duplicates; compare as sets).
  std::set<std::string> actual;
  DisjunctiveOptions options;
  options.on_countermodel = [&](const FiniteModel& model) {
    EXPECT_FALSE(Satisfies(model, inst.query));
    actual.insert(model.ToString());
    return true;
  };
  EntailDisjunctive(inst.db, inst.query, options);
  EXPECT_EQ(actual, expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjunctiveEngineTest,
                         ::testing::Range(0, 60));

TEST(MonotonicityTest, AddingFactsPreservesEntailment) {
  // D ⊆ D' (atomwise) and D |= Φ imply D' |= Φ.
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 900);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 3;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query = RandomConjunctiveMonadicQuery(3, 3, 0.4, 0.4, 0.3, vocab,
                                                rng);
    Result<NormQuery> nq = NormalizeQuery(query);
    ASSERT_TRUE(nq.ok());
    Result<NormDb> before = Normalize(db);
    ASSERT_TRUE(before.ok());
    bool entailed_before =
        EntailBruteForce(before.value(), nq.value()).entailed;

    // Extend with extra facts and order atoms.
    Database extended = db;
    extended.AddOrder("c0_0", OrderRel::kLe, "extra");
    ASSERT_TRUE(extended.AddFact("P0", {"extra"}).ok());
    ASSERT_TRUE(extended.AddFact("P1", {"c0_0"}).ok());
    Result<NormDb> after = Normalize(extended);
    ASSERT_TRUE(after.ok());
    bool entailed_after =
        EntailBruteForce(after.value(), nq.value()).entailed;
    if (entailed_before) {
      EXPECT_TRUE(entailed_after) << "seed " << seed;
    }
  }
}

TEST(BruteForceTest, PruningDoesNotChangeVerdict) {
  for (int seed = 0; seed < 25; ++seed) {
    Instance inst = RandomDisjunctiveInstance(seed + 4242);
    BruteForceOptions no_prune;
    no_prune.prune_satisfied_prefix = false;
    EXPECT_EQ(EntailBruteForce(inst.db, inst.query).entailed,
              EntailBruteForce(inst.db, inst.query, no_prune).entailed)
        << "seed " << seed;
  }
}

TEST(BruteForceTest, TrivialQueryShortCircuits) {
  Instance inst = RandomConjunctiveInstance(1);
  NormQuery trivial;
  trivial.vocab = inst.query.vocab;
  trivial.trivially_true = true;
  BruteForceOutcome outcome = EntailBruteForce(inst.db, trivial);
  EXPECT_TRUE(outcome.entailed);
  EXPECT_EQ(outcome.models_enumerated, 0);
}

TEST(BruteForceTest, FalseQueryYieldsCountermodel) {
  Instance inst = RandomConjunctiveInstance(2);
  NormQuery false_query;
  false_query.vocab = inst.query.vocab;  // zero disjuncts
  BruteForceOutcome outcome = EntailBruteForce(inst.db, false_query);
  EXPECT_FALSE(outcome.entailed);
  EXPECT_TRUE(outcome.countermodel.has_value());
}

TEST(BoundedWidthTest, EmptyDatabase) {
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, 2);
  Database db(vocab);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  PredSet label;
  label.Add(0);
  FlexiWord pattern;
  pattern.symbols.push_back(label);
  NormConjunct conjunct = ConjunctOfFlexiWord(pattern, 2);
  BoundedWidthOutcome outcome =
      EntailBoundedWidth(norm.value(), conjunct, true);
  EXPECT_FALSE(outcome.entailed);
  ASSERT_TRUE(outcome.countermodel.has_value());
  EXPECT_EQ(outcome.countermodel->num_points, 0);
}

// ---------------------------------------------------------------------------
// Differential coverage of the incremental reachability paths: for each
// engine, the default (index/mask) path must reproduce the oracle path's
// full outcome — verdict, state count, and the countermodel sequence.
// ---------------------------------------------------------------------------

// Width-2 instances with > 64 points: exercises the interval-probe and
// push/pop-counter paths that the word-mask fast path cannot serve.
Instance LargeConjunctiveInstance(uint64_t seed) {
  Rng rng(seed + 77000);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = 2;
  params.chain_length = 40;
  params.num_predicates = 3;
  params.label_probability = 0.5;
  params.le_probability = 0.3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Query query = RandomConjunctiveMonadicQuery(
      rng.UniformInt(2, 5), 3, 0.4, 0.4, 0.3, vocab, rng);
  Result<NormDb> ndb = Normalize(db);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(ndb.ok());
  IODB_CHECK(nq.ok());
  return {std::move(ndb.value()), std::move(nq.value())};
}

TEST_P(ConjunctiveEnginesTest, BoundedWidthIncrementalMatchesOracle) {
  Instance inst = RandomConjunctiveInstance(GetParam());
  const NormConjunct& conjunct = inst.query.disjuncts[0];
  BoundedWidthOutcome fast = EntailBoundedWidth(
      inst.db, conjunct, /*want_countermodel=*/true,
      /*already_reduced=*/false, /*use_incremental=*/true);
  BoundedWidthOutcome oracle = EntailBoundedWidth(
      inst.db, conjunct, /*want_countermodel=*/true,
      /*already_reduced=*/false, /*use_incremental=*/false);
  EXPECT_EQ(fast.entailed, oracle.entailed) << "seed " << GetParam();
  EXPECT_EQ(fast.states_visited, oracle.states_visited)
      << "seed " << GetParam();
  ASSERT_EQ(fast.countermodel.has_value(), oracle.countermodel.has_value());
  if (fast.countermodel.has_value()) {
    EXPECT_EQ(fast.countermodel->ToString(), oracle.countermodel->ToString())
        << "seed " << GetParam();
  }
  if (!fast.entailed) {
    EXPECT_GT(fast.check_stats.reach_probes, 0) << "seed " << GetParam();
  }
}

TEST_P(DisjunctiveEngineTest, IncrementalMatchesOraclePath) {
  Instance inst = RandomDisjunctiveInstance(GetParam());
  // Enumeration mode: the two paths must report the same countermodels in
  // the same order (the fast path preserves group enumeration order).
  std::vector<std::string> fast_seq;
  std::vector<std::string> oracle_seq;
  DisjunctiveOptions fast_options;
  fast_options.use_incremental = true;
  fast_options.on_countermodel = [&](const FiniteModel& model) {
    fast_seq.push_back(model.ToString());
    return true;
  };
  DisjunctiveOutcome fast = EntailDisjunctive(inst.db, inst.query,
                                              fast_options);
  DisjunctiveOptions oracle_options;
  oracle_options.use_incremental = false;
  oracle_options.on_countermodel = [&](const FiniteModel& model) {
    oracle_seq.push_back(model.ToString());
    return true;
  };
  DisjunctiveOutcome oracle = EntailDisjunctive(inst.db, inst.query,
                                                oracle_options);
  EXPECT_EQ(fast.entailed, oracle.entailed) << "seed " << GetParam();
  EXPECT_EQ(fast.states_visited, oracle.states_visited)
      << "seed " << GetParam();
  EXPECT_EQ(fast.countermodels_reported, oracle.countermodels_reported)
      << "seed " << GetParam();
  EXPECT_EQ(fast_seq, oracle_seq) << "seed " << GetParam();
}

class LargeInstanceTest : public ::testing::TestWithParam<int> {};

TEST_P(LargeInstanceTest, BoundedWidthCounterPathMatchesOracle) {
  Instance inst = LargeConjunctiveInstance(GetParam());
  ASSERT_GT(inst.db.num_points(), 64);
  const NormConjunct& conjunct = inst.query.disjuncts[0];
  BoundedWidthOutcome fast = EntailBoundedWidth(
      inst.db, conjunct, /*want_countermodel=*/true,
      /*already_reduced=*/false, /*use_incremental=*/true);
  BoundedWidthOutcome oracle = EntailBoundedWidth(
      inst.db, conjunct, /*want_countermodel=*/true,
      /*already_reduced=*/false, /*use_incremental=*/false);
  EXPECT_EQ(fast.entailed, oracle.entailed) << "seed " << GetParam();
  EXPECT_EQ(fast.states_visited, oracle.states_visited)
      << "seed " << GetParam();
  ASSERT_EQ(fast.countermodel.has_value(), oracle.countermodel.has_value());
  if (fast.countermodel.has_value()) {
    EXPECT_EQ(fast.countermodel->ToString(), oracle.countermodel->ToString())
        << "seed " << GetParam();
  }
}

TEST_P(LargeInstanceTest, DisjunctiveIntervalPathMatchesOracle) {
  Instance inst = LargeConjunctiveInstance(GetParam() + 500);
  ASSERT_GT(inst.db.num_points(), 64);
  DisjunctiveOptions fast_options;
  fast_options.use_incremental = true;
  DisjunctiveOutcome fast = EntailDisjunctive(inst.db, inst.query,
                                              fast_options);
  DisjunctiveOptions oracle_options;
  oracle_options.use_incremental = false;
  DisjunctiveOutcome oracle = EntailDisjunctive(inst.db, inst.query,
                                                oracle_options);
  EXPECT_EQ(fast.entailed, oracle.entailed) << "seed " << GetParam();
  EXPECT_EQ(fast.states_visited, oracle.states_visited)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LargeInstanceTest, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Cross-revision context reuse: an append that extends the dag at its
// tail grows the previous revision's index (no rebuild); a divergent
// re-normalization falls back to a fresh build. Either way the answers
// match the closure oracle.
// ---------------------------------------------------------------------------

void ExpectContextMatchesClosure(const NormDb& db,
                                 const EnumerationContext& ctx) {
  EnumerationContext oracle(db, EnumerationContext::Mode::kClosure);
  for (int u = 0; u < db.num_points(); ++u) {
    for (int v = 0; v < db.num_points(); ++v) {
      EXPECT_EQ(ctx.Reaches(u, v), oracle.Reaches(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(SharedContextReuseTest, SmallDagDerivesMasksFromClosure) {
  // At mask width (<= 64 points) the context skips the index entirely:
  // the dense closure is the cheaper build and the word masks answer
  // every probe. One build is still reported through index_rebuilds().
  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  for (int i = 0; i + 1 < 6; ++i) {
    db.AddOrder("a" + std::to_string(i),
                i % 2 == 0 ? OrderRel::kLt : OrderRel::kLe,
                "a" + std::to_string(i + 1));
  }
  Result<const NormDb*> view = db.NormView();
  ASSERT_TRUE(view.ok());
  auto ctx = SharedEnumerationContext(*view.value());
  EXPECT_EQ(ctx->index, nullptr);
  EXPECT_TRUE(ctx->has_masks);
  EXPECT_EQ(ctx->index_rebuilds(), 1);
  ExpectContextMatchesClosure(*view.value(), *ctx);
}

// A 66-point chain a0 < a1 <= a2 < ... — just past mask width, so the
// context runs on the interval-list index and the cross-revision reuse
// machinery engages.
Database LongChainDb(std::shared_ptr<Vocabulary> vocab, int n) {
  Database db(std::move(vocab));
  for (int i = 0; i + 1 < n; ++i) {
    db.AddOrder("a" + std::to_string(i),
                i % 2 == 0 ? OrderRel::kLt : OrderRel::kLe,
                "a" + std::to_string(i + 1));
  }
  return db;
}

TEST(SharedContextReuseTest, TailAppendGrowsPreviousIndex) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = LongChainDb(vocab, 66);
  Result<const NormDb*> view1 = db.NormView();
  ASSERT_TRUE(view1.ok());
  auto ctx1 = SharedEnumerationContext(*view1.value());
  ASSERT_NE(ctx1->index, nullptr);
  EXPECT_EQ(ctx1->index->rebuilds(), 1);

  // Tail append: new points, edges lexicographically after the old ones.
  db.AddOrder("a65", OrderRel::kLt, "b0");
  db.AddOrder("b0", OrderRel::kLe, "b1");
  Result<const NormDb*> view2 = db.NormView();
  ASSERT_TRUE(view2.ok());
  auto ctx2 = SharedEnumerationContext(*view2.value());
  ASSERT_NE(ctx2->index, nullptr);
  EXPECT_EQ(ctx2->index->rebuilds(), 1) << "append should not rebuild";
  EXPECT_EQ(ctx2->index->delta_edges(), 2u);
  ExpectContextMatchesClosure(*view2.value(), *ctx2);
  // The memoized slot now holds the grown context.
  EXPECT_EQ(SharedEnumerationContext(*view2.value()).get(), ctx2.get());
}

TEST(SharedContextReuseTest, DivergentRenormalizationRebuilds) {
  auto vocab = std::make_shared<Vocabulary>();
  Database db = LongChainDb(vocab, 66);
  db.AddOrder("m1", OrderRel::kLt, "a0");
  db.AddOrder("m2", OrderRel::kLt, "a0");
  Result<const NormDb*> view1 = db.NormView();
  ASSERT_TRUE(view1.ok());
  auto ctx1 = SharedEnumerationContext(*view1.value());
  ASSERT_NE(ctx1->index, nullptr);
  const int points1 = view1.value()->num_points();

  // Merging m1 and m2 (m1 <= m2 <= m1) renumbers points: the old edge
  // log is no longer a prefix, so the context is rebuilt from scratch.
  db.AddOrder("m1", OrderRel::kLe, "m2");
  db.AddOrder("m2", OrderRel::kLe, "m1");
  Result<const NormDb*> view2 = db.NormView();
  ASSERT_TRUE(view2.ok());
  auto ctx2 = SharedEnumerationContext(*view2.value());
  ASSERT_NE(ctx2->index, nullptr);
  EXPECT_EQ(ctx2->index->rebuilds(), 1);
  EXPECT_EQ(ctx2->index->delta_edges(), 0u);
  EXPECT_EQ(view2.value()->num_points(), points1 - 1);
  ExpectContextMatchesClosure(*view2.value(), *ctx2);
}

}  // namespace
}  // namespace iodb
