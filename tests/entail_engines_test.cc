// Cross-engine agreement: the brute-force minimal-model engine is the
// semantic reference; the SEQ/path engine (Lemma 4.1), the bounded-width
// engine (Theorem 4.7), the disjunctive engine (Theorem 5.3) and the
// compiled basis (Section 6) must agree with it on random monadic
// instances, and countermodels must actually falsify the query.

#include <gtest/gtest.h>

#include <set>

#include "core/entail_bounded_width.h"
#include "core/entail_bruteforce.h"
#include "core/entail_disjunctive.h"
#include "core/entail_paths.h"
#include "core/minimal_models.h"
#include "core/model_check.h"
#include "core/wqo.h"
#include "workload/generators.h"

namespace iodb {
namespace {

struct Instance {
  NormDb db;
  NormQuery query;
};

Instance RandomConjunctiveInstance(uint64_t seed) {
  Rng rng(seed);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 3);
  params.chain_length = rng.UniformInt(1, 4);
  params.num_predicates = 3;
  params.label_probability = 0.5;
  params.le_probability = 0.3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Query query = RandomConjunctiveMonadicQuery(
      rng.UniformInt(1, 4), 3, 0.4, 0.4, 0.3, vocab, rng);
  Result<NormDb> ndb = Normalize(db);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(ndb.ok());
  IODB_CHECK(nq.ok());
  return {std::move(ndb.value()), std::move(nq.value())};
}

Instance RandomDisjunctiveInstance(uint64_t seed) {
  Rng rng(seed + 5000);
  auto vocab = std::make_shared<Vocabulary>();
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 2);
  params.chain_length = rng.UniformInt(1, 4);
  params.num_predicates = 3;
  params.label_probability = 0.6;
  params.le_probability = 0.3;
  Database db = RandomMonadicDb(params, vocab, rng);
  Query query = RandomDisjunctiveSequentialQuery(
      rng.UniformInt(1, 3), rng.UniformInt(1, 3), 3, 0.3, 0.3, vocab, rng);
  Result<NormDb> ndb = Normalize(db);
  Result<NormQuery> nq = NormalizeQuery(query);
  IODB_CHECK(ndb.ok());
  IODB_CHECK(nq.ok());
  return {std::move(ndb.value()), std::move(nq.value())};
}

class ConjunctiveEnginesTest : public ::testing::TestWithParam<int> {};

TEST_P(ConjunctiveEnginesTest, AllEnginesAgree) {
  Instance inst = RandomConjunctiveInstance(GetParam());
  ASSERT_EQ(inst.query.disjuncts.size(), 1u);
  const NormConjunct& conjunct = inst.query.disjuncts[0];

  bool brute = EntailBruteForce(inst.db, inst.query).entailed;
  bool paths = EntailByPaths(inst.db, conjunct).entailed;
  bool bounded = EntailBoundedWidth(inst.db, conjunct).entailed;
  bool disjunctive = EntailDisjunctive(inst.db, inst.query).entailed;
  bool basis =
      CompiledQuery::CompileConjunctive(conjunct).Entails(inst.db);

  EXPECT_EQ(paths, brute) << "seed " << GetParam();
  EXPECT_EQ(bounded, brute) << "seed " << GetParam();
  EXPECT_EQ(disjunctive, brute) << "seed " << GetParam();
  EXPECT_EQ(basis, brute) << "seed " << GetParam();
}

TEST_P(ConjunctiveEnginesTest, BoundedWidthCountermodelFalsifies) {
  Instance inst = RandomConjunctiveInstance(GetParam());
  const NormConjunct& conjunct = inst.query.disjuncts[0];
  BoundedWidthOutcome outcome = EntailBoundedWidth(inst.db, conjunct, true);
  if (!outcome.entailed) {
    ASSERT_TRUE(outcome.countermodel.has_value());
    EXPECT_FALSE(Satisfies(*outcome.countermodel, inst.query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConjunctiveEnginesTest,
                         ::testing::Range(0, 80));

class DisjunctiveEngineTest : public ::testing::TestWithParam<int> {};

TEST_P(DisjunctiveEngineTest, AgreesWithBruteForce) {
  Instance inst = RandomDisjunctiveInstance(GetParam());
  bool brute = EntailBruteForce(inst.db, inst.query).entailed;
  DisjunctiveOutcome outcome = EntailDisjunctive(inst.db, inst.query);
  EXPECT_EQ(outcome.entailed, brute) << "seed " << GetParam();
  if (!outcome.entailed) {
    ASSERT_TRUE(outcome.countermodel.has_value());
    EXPECT_FALSE(Satisfies(*outcome.countermodel, inst.query));
  }
}

TEST_P(DisjunctiveEngineTest, EnumerationMatchesBruteForceCountermodels) {
  Instance inst = RandomDisjunctiveInstance(GetParam());
  // Reference: all minimal models falsifying the query.
  std::set<std::string> expected;
  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    FiniteModel model = BuildMinimalModel(inst.db, groups);
    if (!Satisfies(model, inst.query)) expected.insert(model.ToString());
    return true;
  };
  ForEachMinimalModel(inst.db, visitor);

  // Engine enumeration (may report duplicates; compare as sets).
  std::set<std::string> actual;
  DisjunctiveOptions options;
  options.on_countermodel = [&](const FiniteModel& model) {
    EXPECT_FALSE(Satisfies(model, inst.query));
    actual.insert(model.ToString());
    return true;
  };
  EntailDisjunctive(inst.db, inst.query, options);
  EXPECT_EQ(actual, expected) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisjunctiveEngineTest,
                         ::testing::Range(0, 60));

TEST(MonotonicityTest, AddingFactsPreservesEntailment) {
  // D ⊆ D' (atomwise) and D |= Φ imply D' |= Φ.
  for (int seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 900);
    auto vocab = std::make_shared<Vocabulary>();
    MonadicDbParams params;
    params.num_chains = 2;
    params.chain_length = 3;
    params.num_predicates = 3;
    Database db = RandomMonadicDb(params, vocab, rng);
    Query query = RandomConjunctiveMonadicQuery(3, 3, 0.4, 0.4, 0.3, vocab,
                                                rng);
    Result<NormQuery> nq = NormalizeQuery(query);
    ASSERT_TRUE(nq.ok());
    Result<NormDb> before = Normalize(db);
    ASSERT_TRUE(before.ok());
    bool entailed_before =
        EntailBruteForce(before.value(), nq.value()).entailed;

    // Extend with extra facts and order atoms.
    Database extended = db;
    extended.AddOrder("c0_0", OrderRel::kLe, "extra");
    ASSERT_TRUE(extended.AddFact("P0", {"extra"}).ok());
    ASSERT_TRUE(extended.AddFact("P1", {"c0_0"}).ok());
    Result<NormDb> after = Normalize(extended);
    ASSERT_TRUE(after.ok());
    bool entailed_after =
        EntailBruteForce(after.value(), nq.value()).entailed;
    if (entailed_before) {
      EXPECT_TRUE(entailed_after) << "seed " << seed;
    }
  }
}

TEST(BruteForceTest, PruningDoesNotChangeVerdict) {
  for (int seed = 0; seed < 25; ++seed) {
    Instance inst = RandomDisjunctiveInstance(seed + 4242);
    BruteForceOptions no_prune;
    no_prune.prune_satisfied_prefix = false;
    EXPECT_EQ(EntailBruteForce(inst.db, inst.query).entailed,
              EntailBruteForce(inst.db, inst.query, no_prune).entailed)
        << "seed " << seed;
  }
}

TEST(BruteForceTest, TrivialQueryShortCircuits) {
  Instance inst = RandomConjunctiveInstance(1);
  NormQuery trivial;
  trivial.vocab = inst.query.vocab;
  trivial.trivially_true = true;
  BruteForceOutcome outcome = EntailBruteForce(inst.db, trivial);
  EXPECT_TRUE(outcome.entailed);
  EXPECT_EQ(outcome.models_enumerated, 0);
}

TEST(BruteForceTest, FalseQueryYieldsCountermodel) {
  Instance inst = RandomConjunctiveInstance(2);
  NormQuery false_query;
  false_query.vocab = inst.query.vocab;  // zero disjuncts
  BruteForceOutcome outcome = EntailBruteForce(inst.db, false_query);
  EXPECT_FALSE(outcome.entailed);
  EXPECT_TRUE(outcome.countermodel.has_value());
}

TEST(BoundedWidthTest, EmptyDatabase) {
  auto vocab = std::make_shared<Vocabulary>();
  DeclareMonadicPredicates(*vocab, 2);
  Database db(vocab);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  PredSet label;
  label.Add(0);
  FlexiWord pattern;
  pattern.symbols.push_back(label);
  NormConjunct conjunct = ConjunctOfFlexiWord(pattern, 2);
  BoundedWidthOutcome outcome =
      EntailBoundedWidth(norm.value(), conjunct, true);
  EXPECT_FALSE(outcome.entailed);
  ASSERT_TRUE(outcome.countermodel.has_value());
  EXPECT_EQ(outcome.countermodel->num_points, 0);
}

}  // namespace
}  // namespace iodb
