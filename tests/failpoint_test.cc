// Failpoint framework semantics (util/failpoint.h) and its wiring into
// the storage I/O seams: skip counts, hit accounting, RAII scoping,
// injected-error unwinding through DurableRegistry, and the crash action
// (exercised via gtest death tests — the child produced by the death
// test takes the _exit(86) so this process survives).

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "storage/durable_registry.h"

namespace iodb {
namespace {

namespace fs = std::filesystem;

constexpr char kBaseText[] = "P(u)\nQ(v)\nu < v\n";

struct TempStore {
  std::string dir;
  explicit TempStore(const std::string& name)
      : dir((fs::path(testing::TempDir()) / name).string()) {
    fs::remove_all(dir);
  }
  ~TempStore() { fs::remove_all(dir); }
};

class FailpointTest : public testing::Test {
 protected:
  void SetUp() override { failpoint::DisarmAll(); }
  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedCheckIsOff) {
  EXPECT_EQ(failpoint::Check("never-armed"), failpoint::Action::kOff);
  EXPECT_TRUE(failpoint::CheckAndMaybeFail("never-armed").ok());
  EXPECT_EQ(failpoint::Hits("never-armed"), 0);
}

TEST_F(FailpointTest, SkipCountDelaysTrigger) {
  failpoint::Arm("fp-skip", failpoint::Action::kError, /*skip=*/2);
  EXPECT_TRUE(failpoint::CheckAndMaybeFail("fp-skip").ok());
  EXPECT_TRUE(failpoint::CheckAndMaybeFail("fp-skip").ok());
  Status third = failpoint::CheckAndMaybeFail("fp-skip");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(third.message().find("fp-skip"), std::string::npos)
      << third.message();
  // Once triggered it keeps firing.
  EXPECT_FALSE(failpoint::CheckAndMaybeFail("fp-skip").ok());
  EXPECT_EQ(failpoint::Hits("fp-skip"), 4);
}

TEST_F(FailpointTest, DisarmStopsTriggerAndRearmResetsHits) {
  failpoint::Arm("fp-rearm", failpoint::Action::kError);
  EXPECT_FALSE(failpoint::CheckAndMaybeFail("fp-rearm").ok());
  failpoint::Disarm("fp-rearm");
  EXPECT_TRUE(failpoint::CheckAndMaybeFail("fp-rearm").ok());
  // Re-arming with a skip starts counting from zero again.
  failpoint::Arm("fp-rearm", failpoint::Action::kError, /*skip=*/1);
  EXPECT_TRUE(failpoint::CheckAndMaybeFail("fp-rearm").ok());
  EXPECT_FALSE(failpoint::CheckAndMaybeFail("fp-rearm").ok());
}

TEST_F(FailpointTest, ScopedArmsAndDisarms) {
  {
    failpoint::Scoped scoped("fp-scoped", failpoint::Action::kError);
    EXPECT_FALSE(failpoint::CheckAndMaybeFail("fp-scoped").ok());
  }
  EXPECT_TRUE(failpoint::CheckAndMaybeFail("fp-scoped").ok());
}

TEST_F(FailpointTest, CrashActionExitsWithDistinctiveCode) {
  EXPECT_EXIT(
      {
        failpoint::Arm("fp-crash", failpoint::Action::kCrash);
        (void)failpoint::CheckAndMaybeFail("fp-crash");
      },
      testing::ExitedWithCode(failpoint::kCrashExitCode), "");
}

TEST_F(FailpointTest, CheckReturnsCrashWithoutExecutingIt) {
  // Torn-write seams must be able to stage a partial write between the
  // decision and the crash: Check() only reports the action.
  failpoint::Arm("fp-torn", failpoint::Action::kCrash);
  EXPECT_EQ(failpoint::Check("fp-torn"), failpoint::Action::kCrash);
  failpoint::Disarm("fp-torn");
}

// --- Storage-seam wiring ---------------------------------------------------

TEST_F(FailpointTest, WalAppendErrorUnwindsThroughRegistry) {
  TempStore store("failpoint_wal_error");
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(store.dir, {});
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  ASSERT_TRUE(registry.value()->Load("t", kBaseText).ok());

  {
    failpoint::Scoped scoped("wal-append-before-write",
                             failpoint::Action::kError);
    Result<DbInfo> info =
        registry.value()->AppendText("t", "P(w)\nv < w\n");
    ASSERT_FALSE(info.ok());
    EXPECT_NE(info.status().message().find("wal-append-before-write"),
              std::string::npos)
        << info.status().ToString();
  }
  // Disarmed, the same append goes through.
  EXPECT_TRUE(registry.value()->AppendText("t", "P(w2)\nv < w2\n").ok());
}

TEST_F(FailpointTest, TornAppendLeavesRecoverablePrefix) {
  TempStore store("failpoint_wal_torn");
  {
    Result<std::unique_ptr<storage::DurableRegistry>> registry =
        storage::DurableRegistry::Open(store.dir, {});
    ASSERT_TRUE(registry.ok()) << registry.status().ToString();
    ASSERT_TRUE(registry.value()->Load("t", kBaseText).ok());
    ASSERT_TRUE(registry.value()->AppendText("t", "P(w)\nv < w\n").ok());
    // The error flavor of the torn seam writes HALF the group bytes,
    // fsyncs them, and reports an injected status — the on-disk WAL now
    // genuinely ends in a torn group.
    failpoint::Scoped scoped("wal-append-torn", failpoint::Action::kError);
    Result<DbInfo> info =
        registry.value()->AppendText("t", "Q(x)\nw < x\n");
    ASSERT_FALSE(info.ok());
    EXPECT_NE(info.status().message().find("wal-append-torn"),
              std::string::npos)
        << info.status().ToString();
  }
  // Reopen: replay must stop at the checksum-clean prefix (the first
  // append survives, the torn group is discarded and truncated away).
  Result<std::unique_ptr<storage::DurableRegistry>> reopened =
      storage::DurableRegistry::Open(store.dir, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Database* db = reopened.value()->service().database("t");
  ASSERT_NE(db, nullptr);
  // Base (u, v) plus the first append's w; the torn x never happened.
  EXPECT_EQ(db->num_order_constants(), 3);
  // The torn tail was truncated, so a fresh append lands cleanly.
  ASSERT_TRUE(reopened.value()->AppendText("t", "Q(y)\nw < y\n").ok());
  Result<std::unique_ptr<storage::DurableRegistry>> again =
      storage::DurableRegistry::Open(store.dir, {});
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value()->service().database("t")->num_order_constants(), 4);
}

TEST_F(FailpointTest, SnapshotErrorLeavesPreviousSnapshotIntact) {
  TempStore store("failpoint_snap_error");
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(store.dir, {});
  ASSERT_TRUE(registry.ok()) << registry.status().ToString();
  ASSERT_TRUE(registry.value()->Load("t", kBaseText).ok());
  ASSERT_TRUE(registry.value()->AppendText("t", "P(w)\nv < w\n").ok());

  {
    // The torn flavor writes half the tmp file then errors: the real
    // snapshot must be untouched because the write goes to a tmp path
    // that is only renamed over the target after a successful fsync.
    failpoint::Scoped scoped("snapshot-write-torn", failpoint::Action::kError);
    EXPECT_FALSE(registry.value()->Compact("t").ok());
  }
  registry.value().reset();

  Result<std::unique_ptr<storage::DurableRegistry>> reopened =
      storage::DurableRegistry::Open(store.dir, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Database* db = reopened.value()->service().database("t");
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->num_order_constants(), 3);
}

TEST_F(FailpointTest, RegistryOpenFailpointInjects) {
  TempStore store("failpoint_open");
  failpoint::Scoped scoped("registry-open", failpoint::Action::kError);
  Result<std::unique_ptr<storage::DurableRegistry>> registry =
      storage::DurableRegistry::Open(store.dir, {});
  ASSERT_FALSE(registry.ok());
  EXPECT_NE(registry.status().message().find("registry-open"),
            std::string::npos);
}

}  // namespace
}  // namespace iodb
