#include <gtest/gtest.h>

#include <algorithm>

#include "core/flexiword.h"
#include "core/parser.h"
#include "workload/generators.h"

namespace iodb {
namespace {

// Builds a PredSet from ids.
PredSet Set(std::initializer_list<int> ids) {
  PredSet s;
  for (int id : ids) s.Add(id);
  return s;
}

// Builds a flexi-word from symbol sets and relation string like "<-<=".
FlexiWord Word(std::vector<PredSet> symbols, std::vector<OrderRel> rels) {
  FlexiWord w;
  w.symbols = std::move(symbols);
  w.rels = std::move(rels);
  return w;
}

constexpr OrderRel kLt = OrderRel::kLt;
constexpr OrderRel kLe = OrderRel::kLe;

TEST(FlexiWordTest, IsWordAndToString) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  FlexiWord w = Word({Set({0, 1}), Set({0})}, {kLe});
  EXPECT_FALSE(w.IsWord());
  EXPECT_EQ(w.ToString(*vocab), "[P,Q] <= [P]");
  FlexiWord v = Word({Set({0}), Set({1})}, {kLt});
  EXPECT_TRUE(v.IsWord());
}

TEST(SubwordTest, PaperExample) {
  // [P,Q] P R is a subword of [P,Q,R] [R] [P,R] [P,Q,R]  (P=0,Q=1,R=2).
  FlexiWord p = Word({Set({0, 1}), Set({0}), Set({2})}, {kLt, kLt});
  FlexiWord q = Word(
      {Set({0, 1, 2}), Set({2}), Set({0, 2}), Set({0, 1, 2})},
      {kLt, kLt, kLt});
  EXPECT_TRUE(IsSubword(p, q));
  EXPECT_FALSE(IsSubword(q, p));
}

TEST(SubwordTest, OrderMatters) {
  FlexiWord p = Word({Set({0}), Set({1})}, {kLt});
  FlexiWord q = Word({Set({1}), Set({0})}, {kLt});
  EXPECT_FALSE(IsSubword(p, q));
  EXPECT_TRUE(IsSubword(p, p));
  EXPECT_TRUE(IsSubword(FlexiWord{}, q));  // empty word embeds anywhere
}

TEST(WordSatisfiesTest, LeAllowsSamePoint) {
  // Pattern [P] <= [Q] matches a single point labelled {P,Q}.
  FlexiWord model = Word({Set({0, 1})}, {});
  EXPECT_TRUE(WordSatisfies(model, Word({Set({0}), Set({1})}, {kLe})));
  EXPECT_FALSE(WordSatisfies(model, Word({Set({0}), Set({1})}, {kLt})));
}

TEST(WordSatisfiesTest, GreedyAcrossPoints) {
  FlexiWord model = Word({Set({0}), Set({1}), Set({0})}, {kLt, kLt});
  // [P] < [P] needs two P-points.
  EXPECT_TRUE(WordSatisfies(model, Word({Set({0}), Set({0})}, {kLt})));
  // [P] < [P] < [P] needs three.
  EXPECT_FALSE(
      WordSatisfies(model, Word({Set({0}), Set({0}), Set({0})},
                                {kLt, kLt})));
  // [P] <= [P] is satisfied by a single P-point? No: <= allows the same
  // point, so one P-point suffices.
  EXPECT_TRUE(WordSatisfies(Word({Set({0})}, {}),
                            Word({Set({0}), Set({0})}, {kLe})));
}

TEST(WordSatisfiesTest, EmptyPattern) {
  EXPECT_TRUE(WordSatisfies(FlexiWord{}, FlexiWord{}));
  EXPECT_TRUE(WordSatisfies(Word({Set({0})}, {}), FlexiWord{}));
  EXPECT_FALSE(WordSatisfies(FlexiWord{}, Word({Set({0})}, {})));
  // The empty symbol matches any point.
  EXPECT_TRUE(WordSatisfies(Word({Set({0})}, {}), Word({PredSet()}, {})));
}

TEST(FlexiEntailsTest, WidthOneCases) {
  // Database [P] <= [Q] entails pattern [P] <= [Q] and [P] (and [Q]) but
  // not [P] < [Q] (the two constants may be merged? No: entailment asks
  // ALL models; [P]<[Q] fails in the merged model).
  FlexiWord db = Word({Set({0}), Set({1})}, {kLe});
  EXPECT_TRUE(FlexiEntails(db, Word({Set({0}), Set({1})}, {kLe})));
  EXPECT_TRUE(FlexiEntails(db, Word({Set({0})}, {})));
  EXPECT_TRUE(FlexiEntails(db, Word({Set({1})}, {})));
  EXPECT_FALSE(FlexiEntails(db, Word({Set({0}), Set({1})}, {kLt})));

  // Database [P] < [Q] entails both variants.
  FlexiWord strict = Word({Set({0}), Set({1})}, {kLt});
  EXPECT_TRUE(FlexiEntails(strict, Word({Set({0}), Set({1})}, {kLt})));
  EXPECT_TRUE(FlexiEntails(strict, Word({Set({0}), Set({1})}, {kLe})));
}

TEST(FlexiEntailsTest, MergedLabelsDoNotConjure) {
  // Database [P] <= [Q]: the merged model has {P,Q} at one point, so the
  // pattern [P,Q] is NOT entailed (the strict model separates them).
  FlexiWord db = Word({Set({0}), Set({1})}, {kLe});
  EXPECT_FALSE(FlexiEntails(db, Word({Set({0, 1})}, {})));
}

TEST(FlexiEntailsTest, ReflexivityAndTransitivityOnRandoms) {
  Rng rng(17);
  std::vector<FlexiWord> words;
  for (int i = 0; i < 12; ++i) {
    words.push_back(RandomWord(rng.UniformInt(1, 5), 3, 0.4, rng));
  }
  for (const FlexiWord& w : words) {
    EXPECT_TRUE(FlexiEntails(w, w));  // q |= q
  }
  for (const FlexiWord& a : words) {
    for (const FlexiWord& b : words) {
      for (const FlexiWord& c : words) {
        if (FlexiEntails(a, b) && FlexiEntails(b, c)) {
          EXPECT_TRUE(FlexiEntails(a, c));
        }
      }
    }
  }
}

TEST(FlexiEntailsTest, AgreesWithSubwordOnWords) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    FlexiWord p = RandomWord(rng.UniformInt(1, 4), 3, 0.3, rng);
    FlexiWord q = RandomWord(rng.UniformInt(1, 6), 3, 0.5, rng);
    EXPECT_EQ(FlexiEntails(q, p), IsSubword(p, q)) << "trial " << trial;
  }
}

TEST(PathsTest, Fig5Paths) {
  // The Figure 5 query has exactly the two paths
  // [P,Q] < [P] <= [S] and [P,Q] < [P] < [R].
  auto vocab = std::make_shared<Vocabulary>();
  for (const char* n : {"P", "Q", "R", "S"}) {
    vocab->MustAddPredicate(n, {Sort::kOrder});
  }
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("t1").Exists("t2").Exists("t3").Exists("t4");
  c.Atom("P", {"t1"}).Atom("Q", {"t1"}).Atom("P", {"t2"});
  c.Atom("R", {"t3"}).Atom("S", {"t4"});
  c.Order("t1", OrderRel::kLt, "t2");
  c.Order("t2", OrderRel::kLt, "t3");
  c.Order("t2", OrderRel::kLe, "t4");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  std::vector<FlexiWord> paths = ConjunctPaths(norm.value().disjuncts[0]);
  ASSERT_EQ(paths.size(), 2u);
  std::vector<std::string> rendered;
  for (const FlexiWord& p : paths) rendered.push_back(p.ToString(*vocab));
  std::sort(rendered.begin(), rendered.end());
  EXPECT_EQ(rendered[0], "[P,Q] < [P] < [R]");
  EXPECT_EQ(rendered[1], "[P,Q] < [P] <= [S]");
}

TEST(PathsTest, TransitiveEdgeDoesNotDuplicatePaths) {
  // u <= v, v <= w plus the derived u <= w: still one maximal path.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("u").Exists("v").Exists("w");
  c.Atom("P", {"u"}).Atom("P", {"v"}).Atom("P", {"w"});
  c.Order("u", OrderRel::kLe, "v");
  c.Order("v", OrderRel::kLe, "w");
  c.Order("u", OrderRel::kLe, "w");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  EXPECT_EQ(ConjunctPaths(norm.value().disjuncts[0]).size(), 1u);
}

TEST(PathsTest, IsolatedVertexIsAPath) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Query query(vocab);
  query.AddDisjunct().Exists("t").Atom("P", {"t"});
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  std::vector<FlexiWord> paths = ConjunctPaths(norm.value().disjuncts[0]);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].size(), 1);
}

TEST(SequentialPatternTest, ChainWithDerivedRelations) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("a").Exists("b").Exists("cc");
  c.Atom("P", {"a"}).Atom("Q", {"b"}).Atom("P", {"cc"});
  c.Order("a", OrderRel::kLe, "b");
  c.Order("b", OrderRel::kLt, "cc");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  const NormConjunct& nc = norm.value().disjuncts[0];
  ASSERT_TRUE(nc.IsSequential());
  FlexiWord pattern = SequentialPattern(nc);
  EXPECT_EQ(pattern.ToString(*vocab), "[P] <= [Q] < [P]");
}

TEST(DbConversionTest, DbOfFlexiWordRoundTrip) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  vocab->MustAddPredicate("Q", {Sort::kOrder});
  FlexiWord w = Word({Set({0}), Set({0, 1}), Set({1})}, {kLt, kLe});
  Database db = DbOfFlexiWord(w, vocab);
  Result<NormDb> norm = Normalize(db);
  ASSERT_TRUE(norm.ok());
  std::vector<FlexiWord> paths = DbPaths(norm.value());
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], w);
}

TEST(DbConversionTest, ConjunctOfFlexiWord) {
  FlexiWord w = Word({Set({0}), Set({1})}, {kLt});
  NormConjunct conjunct = ConjunctOfFlexiWord(w, 2);
  EXPECT_EQ(conjunct.num_order_vars(), 2);
  EXPECT_TRUE(conjunct.IsSequential());
  EXPECT_EQ(SequentialPattern(conjunct), w);
}

TEST(WordOfModelTest, Basic) {
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<Database> db = ParseDatabase("P(u)\nu < v", vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> norm = Normalize(db.value());
  ASSERT_TRUE(norm.ok());
  FiniteModel model = BuildMinimalModel(norm.value(), {{0}, {1}});
  FlexiWord word = WordOfModel(model);
  EXPECT_EQ(word.size(), 2);
  EXPECT_TRUE(word.IsWord());
  EXPECT_TRUE(word.symbols[0].Contains(0));
  EXPECT_TRUE(word.symbols[1].Empty());
}

}  // namespace
}  // namespace iodb
// --- Regression: paths with a strict atom parallel to a "<=" path ----------

#include "core/entail_bounded_width.h"
#include "core/entail_bruteforce.h"
#include "core/entail_disjunctive.h"
#include "core/entail_paths.h"

namespace iodb {
namespace {

TEST(PathsTest, StrictShortcutIsAGenuinePath) {
  // Φ = ∃a z b [P(a) ∧ P(b) ∧ a<=z ∧ z<=b ∧ a<b]: the atom a<b is not
  // implied by the "<=" chain, so Paths(Φ) = {[P]<=[]<=[P], [P]<[P]}.
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("a").Exists("z").Exists("b");
  c.Atom("P", {"a"}).Atom("P", {"b"});
  c.Order("a", OrderRel::kLe, "z");
  c.Order("z", OrderRel::kLe, "b");
  c.Order("a", OrderRel::kLt, "b");
  Result<NormQuery> norm = NormalizeQuery(query);
  ASSERT_TRUE(norm.ok());
  std::vector<FlexiWord> paths = ConjunctPaths(norm.value().disjuncts[0]);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(PathsTest, StrictShortcutEntailmentRegression) {
  // Same query over D = [P(u), P(v), u <= v]: in the merged model the
  // strict atom fails, so D must NOT entail Φ. (This is the case that a
  // Hasse-cover reduction would get wrong.)
  auto vocab = std::make_shared<Vocabulary>();
  vocab->MustAddPredicate("P", {Sort::kOrder});
  Result<Database> db = ParseDatabase("P(u)\nP(v)\nu <= v", vocab);
  ASSERT_TRUE(db.ok());
  Result<NormDb> ndb = Normalize(db.value());
  ASSERT_TRUE(ndb.ok());

  Query query(vocab);
  QueryConjunct& c = query.AddDisjunct();
  c.Exists("a").Exists("z").Exists("b");
  c.Atom("P", {"a"}).Atom("P", {"b"});
  c.Order("a", OrderRel::kLe, "z");
  c.Order("z", OrderRel::kLe, "b");
  c.Order("a", OrderRel::kLt, "b");
  Result<NormQuery> nq = NormalizeQuery(query);
  ASSERT_TRUE(nq.ok());
  // All engines must agree on "not entailed".
  EXPECT_FALSE(EntailBruteForce(ndb.value(), nq.value()).entailed);
  EXPECT_FALSE(EntailByPaths(ndb.value(), nq.value().disjuncts[0]).entailed);
  EXPECT_FALSE(
      EntailBoundedWidth(ndb.value(), nq.value().disjuncts[0]).entailed);
  EXPECT_FALSE(EntailDisjunctive(ndb.value(), nq.value()).entailed);

  // With a strict database edge all engines flip to entailed.
  auto vocab2 = std::make_shared<Vocabulary>();
  vocab2->MustAddPredicate("P", {Sort::kOrder});
  Result<Database> db2 = ParseDatabase("P(u)\nP(v)\nu < v", vocab2);
  ASSERT_TRUE(db2.ok());
  Result<NormDb> ndb2 = Normalize(db2.value());
  ASSERT_TRUE(ndb2.ok());
  EXPECT_TRUE(EntailBruteForce(ndb2.value(), nq.value()).entailed);
  EXPECT_TRUE(
      EntailBoundedWidth(ndb2.value(), nq.value().disjuncts[0]).entailed);
}

}  // namespace
}  // namespace iodb
