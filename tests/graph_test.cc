#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/antichains.h"
#include "graph/digraph.h"
#include "graph/matching.h"
#include "graph/scc.h"
#include "graph/topo.h"
#include "graph/width.h"
#include "util/random.h"

namespace iodb {
namespace {

TEST(DigraphTest, Basics) {
  Digraph g(3);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLe);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  ASSERT_EQ(g.out(0).size(), 1u);
  EXPECT_EQ(g.out(0)[0].vertex, 1);
  EXPECT_EQ(g.out(0)[0].rel, OrderRel::kLt);
  ASSERT_EQ(g.in(2).size(), 1u);
  EXPECT_EQ(g.in(2)[0].vertex, 1);
  EXPECT_EQ(g.AddVertex(), 3);
}

TEST(SccTest, ChainHasSingletons) {
  Digraph g(3);
  g.AddEdge(0, 1, OrderRel::kLe);
  g.AddEdge(1, 2, OrderRel::kLe);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3);
  EXPECT_NE(scc.component[0], scc.component[1]);
  EXPECT_NE(scc.component[1], scc.component[2]);
}

TEST(SccTest, CycleMerges) {
  Digraph g(4);
  g.AddEdge(0, 1, OrderRel::kLe);
  g.AddEdge(1, 2, OrderRel::kLe);
  g.AddEdge(2, 0, OrderRel::kLe);
  g.AddEdge(2, 3, OrderRel::kLt);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2);
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[1], scc.component[2]);
  EXPECT_NE(scc.component[2], scc.component[3]);
}

TEST(SccTest, ReverseTopologicalNumbering) {
  Digraph g(2);
  g.AddEdge(0, 1, OrderRel::kLt);
  SccResult scc = StronglyConnectedComponents(g);
  // Edge from component of 0 to component of 1 implies comp(0) > comp(1).
  EXPECT_GT(scc.component[0], scc.component[1]);
}

TEST(TopoTest, OrderAndCycle) {
  Digraph g(3);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLt);
  std::vector<int> order = TopologicalOrder(g);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(HasCycle(g));
  g.AddEdge(2, 0, OrderRel::kLe);
  EXPECT_TRUE(HasCycle(g));
  EXPECT_TRUE(TopologicalOrder(g).empty());
}

TEST(TopoTest, Reachability) {
  // 0 -<- 1 -<=- 2,  0 -<=- 3
  Digraph g(4);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLe);
  g.AddEdge(0, 3, OrderRel::kLe);
  Reachability r = ComputeReachability(g);
  EXPECT_TRUE(r.reach.Get(0, 0));
  EXPECT_TRUE(r.reach.Get(0, 2));
  EXPECT_TRUE(r.reach.Get(0, 3));
  EXPECT_FALSE(r.reach.Get(3, 0));
  EXPECT_FALSE(r.reach.Get(2, 0));
  // Strict reach: 0 -> 1 -> 2 via a "<" edge; 0 -> 3 only via "<=".
  EXPECT_TRUE(r.strict.Get(0, 1));
  EXPECT_TRUE(r.strict.Get(0, 2));
  EXPECT_FALSE(r.strict.Get(0, 3));
  EXPECT_FALSE(r.strict.Get(1, 1));
  EXPECT_FALSE(r.strict.Get(1, 2));
}

TEST(TopoTest, StrictReachThroughLaterEdge) {
  // 0 -<=- 1 -<- 2: 0 strictly reaches 2 (path crosses "<").
  Digraph g(3);
  g.AddEdge(0, 1, OrderRel::kLe);
  g.AddEdge(1, 2, OrderRel::kLt);
  Reachability r = ComputeReachability(g);
  EXPECT_TRUE(r.strict.Get(0, 2));
  EXPECT_FALSE(r.strict.Get(0, 1));
}

TEST(TopoTest, MinorVertices) {
  // Example 2.4: u < v < w, u <= t <= w. Minors: u and t.
  Digraph g(4);  // u=0 v=1 w=2 t=3
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLt);
  g.AddEdge(0, 3, OrderRel::kLe);
  g.AddEdge(3, 2, OrderRel::kLe);
  std::vector<bool> alive(4, true);
  std::vector<bool> minor = MinorVertices(g, alive);
  EXPECT_TRUE(minor[0]);
  EXPECT_FALSE(minor[1]);
  EXPECT_FALSE(minor[2]);
  EXPECT_TRUE(minor[3]);
  // After deleting u and t, v becomes the only minor.
  alive[0] = alive[3] = false;
  minor = MinorVertices(g, alive);
  EXPECT_TRUE(minor[1]);
  EXPECT_FALSE(minor[2]);
}

TEST(TopoTest, MinimalVertices) {
  Digraph g(3);
  g.AddEdge(0, 2, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLe);
  std::vector<bool> alive(3, true);
  EXPECT_EQ(MinimalVertices(g, alive), (std::vector<int>{0, 1}));
  alive[0] = false;
  EXPECT_EQ(MinimalVertices(g, alive), (std::vector<int>{1}));
}

TEST(MatchingTest, Simple) {
  // Perfect matching on a 3x3 bipartite cycle-ish graph.
  std::vector<std::vector<int>> adj{{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(MaxBipartiteMatching(3, 3, adj), 3);
}

TEST(MatchingTest, Bottleneck) {
  // All left vertices can only use right vertex 0.
  std::vector<std::vector<int>> adj{{0}, {0}, {0}};
  std::vector<int> match;
  EXPECT_EQ(MaxBipartiteMatching(3, 1, adj, &match), 1);
  int matched = 0;
  for (int m : match) matched += m != -1;
  EXPECT_EQ(matched, 1);
}

TEST(WidthTest, ChainAndAntichain) {
  Digraph chain(4);
  chain.AddEdge(0, 1, OrderRel::kLt);
  chain.AddEdge(1, 2, OrderRel::kLe);
  chain.AddEdge(2, 3, OrderRel::kLt);
  EXPECT_EQ(DagWidth(chain), 1);

  Digraph antichain(4);
  EXPECT_EQ(DagWidth(antichain), 4);
  EXPECT_EQ(MaxAntichain(antichain).size(), 4u);

  Digraph empty(0);
  EXPECT_EQ(DagWidth(empty), 0);
}

TEST(WidthTest, TwoChains) {
  // Two chains of three: width 2.
  Digraph g(6);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLt);
  g.AddEdge(3, 4, OrderRel::kLt);
  g.AddEdge(4, 5, OrderRel::kLt);
  EXPECT_EQ(DagWidth(g), 2);
  std::vector<int> antichain = MaxAntichain(g);
  ASSERT_EQ(antichain.size(), 2u);
  // Its members must be in different chains.
  EXPECT_NE(antichain[0] / 3, antichain[1] / 3);
}

TEST(WidthTest, Diamond) {
  // 0 < {1,2} < 3: width 2.
  Digraph g(4);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(0, 2, OrderRel::kLt);
  g.AddEdge(1, 3, OrderRel::kLt);
  g.AddEdge(2, 3, OrderRel::kLt);
  EXPECT_EQ(DagWidth(g), 2);
}

TEST(WidthTest, RandomAgainstBruteForce) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.UniformInt(1, 7);
    Digraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.3)) {
          g.AddEdge(i, j, rng.Bernoulli(0.5) ? OrderRel::kLt : OrderRel::kLe);
        }
      }
    }
    Reachability r = ComputeReachability(g);
    // Brute-force max antichain over all subsets.
    int best = 0;
    for (int mask = 1; mask < (1 << n); ++mask) {
      bool ok = true;
      for (int i = 0; i < n && ok; ++i) {
        for (int j = 0; j < n && ok; ++j) {
          if (i != j && ((mask >> i) & 1) && ((mask >> j) & 1) &&
              r.reach.Get(i, j)) {
            ok = false;
          }
        }
      }
      if (ok) best = std::max(best, __builtin_popcount(mask));
    }
    EXPECT_EQ(DagWidth(g), best) << "trial " << trial;
  }
}

TEST(AntichainsTest, EnumeratesAll) {
  // Poset: 0 < 1, 2 isolated. Antichains: {0},{1},{2},{0,2},{1,2}.
  auto comparable = [](int a, int b) {
    return (a == 0 && b == 1) || (a == 1 && b == 0);
  };
  std::set<std::vector<int>> seen;
  ForEachAntichain({0, 1, 2}, comparable,
                   [&](const std::vector<int>& a) {
                     seen.insert(a);
                     return true;
                   });
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_TRUE(seen.contains(std::vector<int>{0, 2}));
  EXPECT_FALSE(seen.contains(std::vector<int>{0, 1}));
}

TEST(AntichainsTest, EarlyStop) {
  int count = 0;
  ForEachAntichain({0, 1, 2, 3}, [](int, int) { return false; },
                   [&](const std::vector<int>&) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

}  // namespace
}  // namespace iodb
// --- Labelled transitive reduction -----------------------------------------

#include "graph/topo.h"

namespace iodb {
namespace {

TEST(TransitiveReduceTest, DropsImpliedEdges) {
  // u <= v <= w plus derived u <= w: the derived edge goes.
  Digraph g(3);
  g.AddEdge(0, 1, OrderRel::kLe);
  g.AddEdge(1, 2, OrderRel::kLe);
  g.AddEdge(0, 2, OrderRel::kLe);
  Digraph r = TransitiveReduce(g);
  EXPECT_EQ(r.num_edges(), 2);
}

TEST(TransitiveReduceTest, KeepsStrictEdgeParallelToLePath) {
  // u < w alongside u <= z <= w: the strict edge is NOT implied.
  Digraph g(3);  // u=0 z=1 w=2
  g.AddEdge(0, 1, OrderRel::kLe);
  g.AddEdge(1, 2, OrderRel::kLe);
  g.AddEdge(0, 2, OrderRel::kLt);
  Digraph r = TransitiveReduce(g);
  EXPECT_EQ(r.num_edges(), 3);
}

TEST(TransitiveReduceTest, DropsStrictEdgeImpliedByStrictPath) {
  // u < z <= w implies u < w.
  Digraph g(3);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(1, 2, OrderRel::kLe);
  g.AddEdge(0, 2, OrderRel::kLt);
  Digraph r = TransitiveReduce(g);
  EXPECT_EQ(r.num_edges(), 2);
}

TEST(TransitiveReduceTest, DropsLeParallelToStrict) {
  // u < v plus u <= v: the weak edge is implied by the strict one...
  // but after normalization dedup only one edge exists per pair; simulate
  // the pre-dedup shape to document the behavior.
  Digraph g(2);
  g.AddEdge(0, 1, OrderRel::kLt);
  g.AddEdge(0, 1, OrderRel::kLe);
  Digraph r = TransitiveReduce(g);
  EXPECT_EQ(r.num_edges(), 1);
  EXPECT_EQ(r.edges()[0].rel, OrderRel::kLt);
}

TEST(TransitiveReduceTest, TournamentCollapsesToChain) {
  // Complete "<" tournament on n vertices reduces to the n-1 chain.
  const int n = 6;
  Digraph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) g.AddEdge(i, j, OrderRel::kLt);
  }
  Digraph r = TransitiveReduce(g);
  EXPECT_EQ(r.num_edges(), n - 1);
}

TEST(TransitiveReduceTest, PreservesReachabilityAndStrictness) {
  Rng rng(123);
  for (int trial = 0; trial < 30; ++trial) {
    int n = rng.UniformInt(2, 7);
    Digraph g(n);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng.Bernoulli(0.5)) {
          g.AddEdge(i, j, rng.Bernoulli(0.5) ? OrderRel::kLt : OrderRel::kLe);
        }
      }
    }
    Digraph r = TransitiveReduce(g);
    EXPECT_LE(r.num_edges(), g.num_edges());
    Reachability before = ComputeReachability(g);
    Reachability after = ComputeReachability(r);
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        EXPECT_EQ(before.reach.Get(u, v), after.reach.Get(u, v))
            << "trial " << trial;
        EXPECT_EQ(before.strict.Get(u, v), after.strict.Get(u, v))
            << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace iodb
