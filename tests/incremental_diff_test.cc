// Differential tests for the incremental evaluation core.
//
// The incremental engines (ModelBuilder + FactIndex + compiled matchers,
// and the count-maintaining enumerator) must be observationally identical
// to the legacy rebuild-per-model path, which is kept behind
// BruteForceOptions::use_incremental = false as the reference oracle:
// same verdicts, same enumeration order, same work counters where the
// semantics pin them, and bit-identical countermodels.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/entail_bruteforce.h"
#include "core/minimal_models.h"
#include "core/model.h"
#include "core/model_builder.h"
#include "core/model_check.h"
#include "core/model_matcher.h"
#include "graph/topo.h"
#include "util/random.h"
#include "workload/generators.h"

namespace iodb {
namespace {

// ---------------------------------------------------------------------------
// Reference enumerator: a literal transcription of the pre-incremental
// algorithm (recompute minor vertices per node via MinorVertices). Used to
// pin the new enumerator's visit order exactly.

struct ReferenceEnumerator {
  const NormDb& db;
  const ModelVisitor& visitor;
  Reachability reach;
  std::vector<bool> alive;
  int alive_count;
  std::vector<std::vector<int>> groups;

  ReferenceEnumerator(const NormDb& d, const ModelVisitor& v)
      : db(d),
        visitor(v),
        reach(ComputeReachability(d.dag)),
        alive(d.num_points(), true),
        alive_count(d.num_points()) {}

  bool Comparable(int u, int v) const {
    return reach.reach.Get(u, v) || reach.reach.Get(v, u);
  }

  bool Recurse() {
    if (alive_count == 0) {
      return visitor.on_model == nullptr || visitor.on_model(groups);
    }
    std::vector<bool> minor = MinorVertices(db.dag, alive);
    std::vector<int> candidates;
    for (int v = 0; v < db.num_points(); ++v) {
      if (alive[v] && minor[v]) candidates.push_back(v);
    }
    std::vector<int> chosen;
    return EnumerateAntichains(candidates, 0, chosen);
  }

  bool EnumerateAntichains(const std::vector<int>& candidates, size_t next,
                           std::vector<int>& chosen) {
    for (size_t i = next; i < candidates.size(); ++i) {
      int v = candidates[i];
      bool independent = true;
      for (int u : chosen) {
        if (Comparable(u, v)) {
          independent = false;
          break;
        }
      }
      if (!independent) continue;
      chosen.push_back(v);
      std::vector<int> group;
      for (int m : candidates) {
        for (int a : chosen) {
          if (reach.reach.Get(m, a)) {
            group.push_back(m);
            break;
          }
        }
      }
      bool group_ok = true;
      for (const auto& [u, w] : db.inequalities) {
        bool has_u = false, has_w = false;
        for (int g : group) {
          has_u = has_u || g == u;
          has_w = has_w || g == w;
        }
        if (has_u && has_w) {
          group_ok = false;
          break;
        }
      }
      if (group_ok &&
          (visitor.on_group == nullptr ||
           visitor.on_group(static_cast<int>(groups.size()), group))) {
        for (int g : group) alive[g] = false;
        alive_count -= static_cast<int>(group.size());
        groups.push_back(group);
        bool keep_going = Recurse();
        groups.pop_back();
        for (int g : group) alive[g] = true;
        alive_count += static_cast<int>(group.size());
        if (!keep_going) return false;
      }
      if (!EnumerateAntichains(candidates, i + 1, chosen)) return false;
      chosen.pop_back();
    }
    return true;
  }
};

std::vector<std::string> EnumerationTrace(
    const NormDb& db, bool reference,
    const std::vector<std::vector<int>>* prefix = nullptr) {
  std::vector<std::string> trace;
  ModelVisitor visitor;
  visitor.on_group = [&](int depth, const std::vector<int>& group) {
    std::string line = "g" + std::to_string(depth) + ":";
    for (int g : group) line += " " + std::to_string(g);
    trace.push_back(line);
    return true;
  };
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    trace.push_back("model: " + BuildMinimalModel(db, groups).ToString());
    return true;
  };
  if (reference) {
    EXPECT_EQ(prefix, nullptr);
    ReferenceEnumerator e(db, visitor);
    e.Recurse();
  } else if (prefix != nullptr) {
    ForEachMinimalModelFrom(db, *prefix, visitor);
  } else {
    ForEachMinimalModel(db, visitor);
  }
  return trace;
}

NormDb MustNormalize(const Database& db) {
  Result<NormDb> norm = Normalize(db);
  IODB_CHECK(norm.ok());
  return std::move(norm.value());
}

// A corpus entry: a random monadic database, optionally decorated with
// inequalities and n-ary facts so every engine feature is exercised.
Database RandomCorpusDb(uint64_t seed, VocabularyPtr vocab) {
  Rng rng(seed);
  MonadicDbParams params;
  params.num_chains = rng.UniformInt(1, 3);
  params.chain_length = rng.UniformInt(1, 3);
  params.num_predicates = rng.UniformInt(1, 3);
  params.label_probability = 0.6;
  params.le_probability = 0.4;
  Database db = RandomMonadicDb(params, vocab, rng);
  // Sprinkle inequalities between random order constants.
  const int points = db.num_order_constants();
  if (points >= 2 && rng.Bernoulli(0.5)) {
    for (int k = 0; k < 2; ++k) {
      int u = rng.UniformInt(0, points - 1);
      int v = rng.UniformInt(0, points - 1);
      if (u != v) db.AddInequality(u, v);
    }
  }
  // A binary predicate mixing order and object sorts, plus ground object
  // facts, so the fact index and the object/order machinery engage
  // ("c0_0" is the first chain point RandomMonadicDb interned).
  if (rng.Bernoulli(0.6)) {
    IODB_CHECK(db.AddFact("Owns", {"alice", "c0_0"}).ok());
    if (rng.Bernoulli(0.5)) {
      IODB_CHECK(db.AddFact("Knows", {"alice", "bob"}).ok());
    }
  }
  return db;
}

Query RandomCorpusQuery(uint64_t seed, VocabularyPtr vocab) {
  Rng rng(seed);
  const int num_preds = 2;
  if (rng.Bernoulli(0.5)) {
    return RandomDisjunctiveSequentialQuery(rng.UniformInt(1, 2),
                                            rng.UniformInt(1, 3), num_preds,
                                            0.5, 0.4, vocab, rng);
  }
  Query query = RandomConjunctiveMonadicQuery(rng.UniformInt(1, 3), num_preds,
                                              0.4, 0.5, 0.4, vocab, rng);
  if (rng.Bernoulli(0.4)) {
    // Add an object atom to one disjunct so the query leaves the monadic
    // fragment and the matcher's object/fact machinery runs.
    Query mixed(vocab);
    QueryConjunct conjunct = query.disjuncts()[0];
    conjunct.Exists("x").Atom("Owns", {"x", conjunct.variables[0]});
    mixed.AddDisjunct(conjunct);
    return mixed;
  }
  return query;
}

TEST(IncrementalEnumeratorTest, TraceMatchesReferenceOnRandomCorpus) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db = RandomCorpusDb(seed, vocab);
    NormDb norm = MustNormalize(db);
    EXPECT_EQ(EnumerationTrace(norm, /*reference=*/true),
              EnumerationTrace(norm, /*reference=*/false))
        << "seed " << seed;
  }
}

TEST(IncrementalEnumeratorTest, PrefixSeededSubtreesPartitionTheForest) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db = RandomCorpusDb(seed, vocab);
    NormDb norm = MustNormalize(db);
    if (norm.num_points() == 0) continue;

    // Roots = the first-level group choices.
    std::vector<std::vector<int>> roots;
    ModelVisitor collect;
    collect.on_group = [&](int, const std::vector<int>& group) {
      roots.push_back(group);
      return false;
    };
    ForEachMinimalModel(norm, collect);

    // Concatenating the per-root subtree model sequences in root order
    // reproduces the full enumeration's model sequence.
    std::vector<std::string> full;
    ModelVisitor models_only;
    models_only.on_model = [&](const std::vector<std::vector<int>>& groups) {
      full.push_back(BuildMinimalModel(norm, groups).ToString());
      return true;
    };
    ForEachMinimalModel(norm, models_only);

    std::vector<std::string> sharded;
    for (const std::vector<int>& root : roots) {
      std::vector<std::vector<int>> prefix{root};
      ModelVisitor sub;
      sub.on_model = [&](const std::vector<std::vector<int>>& groups) {
        sharded.push_back(BuildMinimalModel(norm, groups).ToString());
        return true;
      };
      ForEachMinimalModelFrom(norm, prefix, sub);
    }
    EXPECT_EQ(full, sharded) << "seed " << seed;
  }
}

TEST(ModelBuilderTest, SnapshotMatchesBuildPrefixModelAtEveryNode) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db = RandomCorpusDb(seed, vocab);
    NormDb norm = MustNormalize(db);
    ModelBuilder builder(norm);
    std::vector<std::vector<int>> prefix;
    long long checked = 0;
    ModelVisitor visitor;
    visitor.on_group = [&](int depth, const std::vector<int>& group) {
      prefix.resize(depth);
      prefix.push_back(group);
      builder.PushGroup(depth, group);
      EXPECT_EQ(builder.Snapshot().ToString(),
                BuildPrefixModel(norm, prefix).ToString());
      return ++checked < 200;  // bound the walk; prefixes vary enough
    };
    visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
      builder.PopToDepth(static_cast<int>(groups.size()));
      EXPECT_EQ(builder.Snapshot().ToString(),
                BuildMinimalModel(norm, groups).ToString());
      return true;
    };
    ForEachMinimalModel(norm, visitor);
  }
}

TEST(CompiledMatcherTest, AgreesWithGenericSatisfiesOnEveryMinimalModel) {
  long long models_checked = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db = RandomCorpusDb(seed, vocab);
    Query query = RandomCorpusQuery(seed + 1000, vocab);
    Result<NormQuery> norm_query = NormalizeQuery(query);
    if (!norm_query.ok()) continue;  // query may use unseen predicates
    NormDb norm = MustNormalize(db);
    QueryMatcher matcher(norm_query.value());
    ModelVisitor visitor;
    visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
      FiniteModel model = BuildMinimalModel(norm, groups);
      FactIndex index = FactIndex::FromModel(model);
      const bool reference = Satisfies(model, norm_query.value());
      EXPECT_EQ(matcher.Matches(model, &index), reference)
          << "seed " << seed << " model " << model.ToString();
      EXPECT_EQ(matcher.Matches(model, nullptr), reference)
          << "seed " << seed << " (no index) model " << model.ToString();
      ++models_checked;
      return true;
    };
    ForEachMinimalModel(norm, visitor);
  }
  EXPECT_GT(models_checked, 100);  // the corpus actually exercised us
}

void ExpectSameOutcome(const BruteForceOutcome& incremental,
                       const BruteForceOutcome& rebuild, uint64_t seed) {
  EXPECT_EQ(incremental.entailed, rebuild.entailed) << "seed " << seed;
  EXPECT_EQ(incremental.limit_hit, rebuild.limit_hit) << "seed " << seed;
  EXPECT_EQ(incremental.models_enumerated, rebuild.models_enumerated)
      << "seed " << seed;
  EXPECT_EQ(incremental.prefixes_pruned, rebuild.prefixes_pruned)
      << "seed " << seed;
  ASSERT_EQ(incremental.countermodel.has_value(),
            rebuild.countermodel.has_value())
      << "seed " << seed;
  if (incremental.countermodel.has_value()) {
    EXPECT_EQ(incremental.countermodel->ToString(),
              rebuild.countermodel->ToString())
        << "seed " << seed;
  }
}

TEST(IncrementalBruteForceTest, MatchesRebuildPathOnRandomCorpus) {
  for (uint64_t seed = 0; seed < 60; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db = RandomCorpusDb(seed, vocab);
    Query query = RandomCorpusQuery(seed + 500, vocab);
    Result<NormQuery> norm_query = NormalizeQuery(query);
    if (!norm_query.ok()) continue;
    NormDb norm = MustNormalize(db);

    for (bool prune : {true, false}) {
      BruteForceOptions incremental_options;
      incremental_options.prune_satisfied_prefix = prune;
      BruteForceOptions rebuild_options = incremental_options;
      rebuild_options.use_incremental = false;
      ExpectSameOutcome(
          EntailBruteForce(norm, norm_query.value(), incremental_options),
          EntailBruteForce(norm, norm_query.value(), rebuild_options), seed);
    }
  }
}

TEST(IncrementalBruteForceTest, MatchesRebuildUnderModelBudget) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db = RandomCorpusDb(seed, vocab);
    Query query = RandomCorpusQuery(seed + 250, vocab);
    Result<NormQuery> norm_query = NormalizeQuery(query);
    if (!norm_query.ok()) continue;
    NormDb norm = MustNormalize(db);

    BruteForceOptions incremental_options;
    incremental_options.prune_satisfied_prefix = false;
    incremental_options.max_models = 3;
    BruteForceOptions rebuild_options = incremental_options;
    rebuild_options.use_incremental = false;
    ExpectSameOutcome(
        EntailBruteForce(norm, norm_query.value(), incremental_options),
        EntailBruteForce(norm, norm_query.value(), rebuild_options), seed);
  }
}

}  // namespace
}  // namespace iodb
