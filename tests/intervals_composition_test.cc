// Exhaustive validation of the interval layer: for every ordered pair of
// Allen relations (r1, r2), the possible relations between I and K given
// I r1 J and J r2 K (the classical composition table) are computed by the
// probe-based implementation and cross-checked against ground truth from
// minimal-model enumeration over the six endpoints. 169 compositions per
// run; a handful of canonical entries are additionally pinned by name.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/intervals.h"
#include "core/minimal_models.h"

namespace iodb {
namespace {

// Ground truth: which Allen relations hold between I and K in some
// minimal model of `db`? Positions are compared through the sort groups.
std::set<AllenRelation> BruteRelations(const Database& db, const Interval& i,
                                       const Interval& k) {
  Result<NormDb> norm = Normalize(db);
  std::set<AllenRelation> out;
  if (!norm.ok()) return out;
  auto point = [&](const std::string& name) {
    return norm.value()
        .point_of_constant[*db.FindConstant(name, Sort::kOrder)];
  };
  int is = point(i.start), ie = point(i.end);
  int ks = point(k.start), ke = point(k.end);

  ModelVisitor visitor;
  visitor.on_model = [&](const std::vector<std::vector<int>>& groups) {
    int pos[4] = {-1, -1, -1, -1};
    for (size_t g = 0; g < groups.size(); ++g) {
      for (int p : groups[g]) {
        if (p == is) pos[0] = static_cast<int>(g);
        if (p == ie) pos[1] = static_cast<int>(g);
        if (p == ks) pos[2] = static_cast<int>(g);
        if (p == ke) pos[3] = static_cast<int>(g);
      }
    }
    // Classify the model's relation between (pos[0], pos[1]) and
    // (pos[2], pos[3]).
    auto classify = [&]() -> AllenRelation {
      if (pos[1] < pos[2]) return AllenRelation::kBefore;
      if (pos[1] == pos[2]) return AllenRelation::kMeets;
      if (pos[3] < pos[0]) return AllenRelation::kAfter;
      if (pos[3] == pos[0]) return AllenRelation::kMetBy;
      // Interiors overlap from here on.
      if (pos[0] == pos[2] && pos[1] == pos[3]) return AllenRelation::kEquals;
      if (pos[0] == pos[2]) {
        return pos[1] < pos[3] ? AllenRelation::kStarts
                               : AllenRelation::kStartedBy;
      }
      if (pos[1] == pos[3]) {
        return pos[0] > pos[2] ? AllenRelation::kFinishes
                               : AllenRelation::kFinishedBy;
      }
      if (pos[0] > pos[2] && pos[1] < pos[3]) return AllenRelation::kDuring;
      if (pos[2] > pos[0] && pos[3] < pos[1]) return AllenRelation::kContains;
      return pos[0] < pos[2] ? AllenRelation::kOverlaps
                             : AllenRelation::kOverlappedBy;
    };
    out.insert(classify());
    return true;
  };
  ForEachMinimalModel(norm.value(), visitor);
  return out;
}

class CompositionTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(CompositionTest, ProbesMatchModelEnumeration) {
  auto [idx1, idx2] = GetParam();
  AllenRelation r1 = AllAllenRelations()[idx1];
  AllenRelation r2 = AllAllenRelations()[idx2];

  auto vocab = std::make_shared<Vocabulary>();
  Database db(vocab);
  Interval i{"i1", "i2"}, j{"j1", "j2"}, k{"k1", "k2"};
  for (const Interval* iv : {&i, &j, &k}) DeclareInterval(db, *iv);
  AddAllenConstraint(db, i, j, r1);
  AddAllenConstraint(db, j, k, r2);

  Result<std::vector<AllenRelation>> fast = PossibleRelations(db, i, k);
  ASSERT_TRUE(fast.ok());
  std::set<AllenRelation> fast_set(fast.value().begin(), fast.value().end());
  std::set<AllenRelation> brute = BruteRelations(db, i, k);
  EXPECT_EQ(fast_set, brute)
      << AllenRelationName(r1) << " ; " << AllenRelationName(r2);
  EXPECT_FALSE(fast_set.empty());  // consistent constraints: some relation
}

std::vector<std::pair<int, int>> AllPairs() {
  std::vector<std::pair<int, int>> pairs;
  for (int a = 0; a < 13; ++a) {
    for (int b = 0; b < 13; ++b) pairs.push_back({a, b});
  }
  return pairs;
}

INSTANTIATE_TEST_SUITE_P(AllenTable, CompositionTest,
                         ::testing::ValuesIn(AllPairs()));

TEST(CompositionTableTest, CanonicalEntries) {
  auto compose = [](AllenRelation r1, AllenRelation r2) {
    auto vocab = std::make_shared<Vocabulary>();
    Database db(vocab);
    Interval i{"i1", "i2"}, j{"j1", "j2"}, k{"k1", "k2"};
    for (const Interval* iv : {&i, &j, &k}) DeclareInterval(db, *iv);
    AddAllenConstraint(db, i, j, r1);
    AddAllenConstraint(db, j, k, r2);
    Result<std::vector<AllenRelation>> possible =
        PossibleRelations(db, i, k);
    IODB_CHECK(possible.ok());
    std::set<AllenRelation> out(possible.value().begin(),
                                possible.value().end());
    return out;
  };

  // before ; before = {before}
  EXPECT_EQ(compose(AllenRelation::kBefore, AllenRelation::kBefore),
            (std::set<AllenRelation>{AllenRelation::kBefore}));
  // meets ; meets = {before}
  EXPECT_EQ(compose(AllenRelation::kMeets, AllenRelation::kMeets),
            (std::set<AllenRelation>{AllenRelation::kBefore}));
  // meets ; met-by: I.end = J.start = K.end, so I and K share their end
  // point — the finishes family.
  EXPECT_EQ(compose(AllenRelation::kMeets, AllenRelation::kMetBy),
            (std::set<AllenRelation>{AllenRelation::kFinishes,
                                     AllenRelation::kFinishedBy,
                                     AllenRelation::kEquals}));
  // during ; during = {during}
  EXPECT_EQ(compose(AllenRelation::kDuring, AllenRelation::kDuring),
            (std::set<AllenRelation>{AllenRelation::kDuring}));
  // equals is the identity of composition.
  for (AllenRelation r : AllAllenRelations()) {
    EXPECT_EQ(compose(AllenRelation::kEquals, r),
              (std::set<AllenRelation>{r}))
        << AllenRelationName(r);
    EXPECT_EQ(compose(r, AllenRelation::kEquals),
              (std::set<AllenRelation>{r}))
        << AllenRelationName(r);
  }
  // overlaps ; overlaps = {before, meets, overlaps}
  EXPECT_EQ(compose(AllenRelation::kOverlaps, AllenRelation::kOverlaps),
            (std::set<AllenRelation>{AllenRelation::kBefore,
                                     AllenRelation::kMeets,
                                     AllenRelation::kOverlaps}));
  // before ; after = all thirteen relations (total ignorance).
  EXPECT_EQ(compose(AllenRelation::kBefore, AllenRelation::kAfter).size(),
            13u);
}

}  // namespace
}  // namespace iodb
